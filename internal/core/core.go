// Package core implements the two disk allocation policies the paper
// compares:
//
//   - Original: the traditional FFS policy. Blocks are allocated one at
//     a time; when the block following the previous one is taken, the
//     allocator settles for the next free block it finds, paying no
//     attention to the size of the free region that block sits in. No
//     reallocation ever happens.
//
//   - Realloc: McKusick's 4.4BSD-Lite enhancement (ffs_reallocblks).
//     Initial allocation is identical, but before a cluster of dirty,
//     logically sequential blocks is written to disk, the policy tries
//     to relocate the whole run into a single free cluster — preferring
//     placement immediately after the file's previous cluster, so
//     clusters chain end to end into layouts longer than maxcontig.
//
// Both are ffs.Policy implementations; the mechanism they share lives
// in internal/ffs, the decision logic here.
package core

import "ffsage/internal/ffs"

// Original is the traditional FFS allocation policy: no reallocation.
type Original struct{}

// Name implements ffs.Policy.
func (Original) Name() string { return "ffs" }

// FlushCluster implements ffs.Policy as a no-op: whatever the
// block-at-a-time allocator chose is what reaches disk.
func (Original) FlushCluster(*ffs.FileSystem, *ffs.File, int, int) {}

// Realloc is the 4.4BSD realloc allocation policy.
//
// The zero value reproduces the quirk the paper documents in Section 4:
// reallocation is not invoked until a file fills its second block, so
// two-block files whose second block is a fragment tail keep their
// original — often discontiguous — placement. Setting
// ReallocSingleBlocks ablates the quirk (used by the A3 ablation
// bench).
type Realloc struct {
	// ReallocSingleBlocks also engages the relocation machinery for
	// single-block runs, removing the paper's two-block-file dip.
	ReallocSingleBlocks bool
	// InGroupOnly restricts the cluster search to the preferred
	// cylinder group, disabling the ffs_hashalloc fallback across
	// groups — the A5 ablation, which shows the cross-group search is
	// what sustains the policy on a nearly full disk.
	InGroupOnly bool
}

// Name implements ffs.Policy.
func (r Realloc) Name() string {
	switch {
	case r.ReallocSingleBlocks:
		return "ffs+realloc(single)"
	case r.InGroupOnly:
		return "ffs+realloc(incg)"
	default:
		return "ffs+realloc"
	}
}

// FlushCluster implements ffs.Policy: given the dirty run [start, end)
// of f, decide whether to relocate it and do so through the file
// system's cluster mechanism.
func (r Realloc) FlushCluster(fs *ffs.FileSystem, f *ffs.File, start, end int) {
	n := end - start
	if n <= 0 || n > fs.P.MaxContig {
		return
	}
	if !r.ReallocSingleBlocks && n == 1 {
		// Single-buffer "clusters" never reach the clustering code.
		// This is the quirk the paper documents: a file that has not
		// filled its second block flushes a one-block run, so its
		// (possibly discontiguous) first placement survives.
		return
	}
	fpb := fs.FragsPerBlock()
	pref, cgIdx := fs.ReallocPref(f, start)
	contiguous := f.RunIsContiguous(start, end, fpb)
	placed := pref == ffs.NilDaddr || f.Blocks[start] == pref
	if contiguous && placed {
		return // nothing to gain
	}
	fs.Stats.ClusterAttempts++
	if contiguous && pref != ffs.NilDaddr {
		// The run is internally fine but does not chain to the
		// previous cluster. Move it only if the exact chained
		// placement is free; migrating a contiguous run to another
		// arbitrary spot buys nothing.
		fs.TryReallocRun(f, start, end, cgIdx, pref)
		return
	}
	// The run is internally fragmented: first try the chained
	// placement, then any free cluster — searching across cylinder
	// groups in hashalloc order, as ffs_reallocblks does through
	// ffs_hashalloc(ffs_clusteralloc).
	if pref != ffs.NilDaddr && fs.TryReallocRun(f, start, end, cgIdx, pref) {
		return
	}
	if r.InGroupOnly {
		fs.TryReallocRun(f, start, end, cgIdx, ffs.NilDaddr)
		return
	}
	if cg := fs.FindClusterCg(cgIdx, n); cg >= 0 {
		fs.TryReallocRun(f, start, end, cg, ffs.NilDaddr)
	}
}
