package core

import (
	"fmt"
	"math/rand"
	"testing"

	"ffsage/internal/ffs"
)

func smallParams() ffs.Params {
	p := ffs.PaperParams()
	p.SizeBytes = 16 << 20
	p.NumCg = 4
	return p
}

func newFs(t *testing.T, policy ffs.Policy) *ffs.FileSystem {
	t.Helper()
	fs, err := ffs.NewFileSystem(smallParams(), policy)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// fragmentGroup fills the root's cylinder group completely with
// single-block files, then frees a checkerboard of one-block holes and
// one contiguous run of clusterLen blocks. Subsequent allocations in
// the group must choose between the scattered holes (what the original
// policy's first-free search takes) and the lone cluster (what the
// realloc policy finds through the cluster summary).
func fragmentGroup(t *testing.T, fs *ffs.FileSystem, clusterLen int) {
	t.Helper()
	bs := int64(fs.P.BlockSize)
	fpb := fs.FragsPerBlock()
	var fill []*ffs.File
	for i := 0; fs.Cg(0).NBFree() > 0; i++ {
		f, err := fs.CreateFile(fs.Root(), fmt.Sprintf("fill%d", i), bs, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fs.CgOf(f.Blocks[0]).Index == 0 {
			fill = append(fill, f)
		}
	}
	if len(fill) < 60+2*clusterLen {
		t.Fatalf("only %d fill files landed in group 0", len(fill))
	}
	// One-block holes.
	for i := 10; i < 50; i += 2 {
		if err := fs.Delete(fill[i]); err != nil {
			t.Fatal(err)
		}
	}
	// One contiguous free run: find consecutive-block files past the
	// checkerboard region and free them together.
	for j := 52; j+clusterLen < len(fill); j++ {
		ok := true
		for k := 1; k < clusterLen; k++ {
			if fill[j+k].Blocks[0] != fill[j].Blocks[0]+ffs.Daddr(k*fpb) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for k := 0; k < clusterLen; k++ {
			if err := fs.Delete(fill[j+k]); err != nil {
				t.Fatal(err)
			}
		}
		probe := clusterLen
		if probe > fs.P.MaxContig {
			probe = fs.P.MaxContig
		}
		if !fs.Cg(0).HasCluster(probe) {
			t.Fatal("freed run did not register as a cluster")
		}
		return
	}
	t.Fatal("no consecutive fill files found for the cluster")
}

func TestPolicyNames(t *testing.T) {
	if (Original{}).Name() != "ffs" {
		t.Error((Original{}).Name())
	}
	if (Realloc{}).Name() != "ffs+realloc" {
		t.Error(Realloc{}.Name())
	}
	if (Realloc{ReallocSingleBlocks: true}).Name() != "ffs+realloc(single)" {
		t.Error("single-block variant name")
	}
}

func TestOriginalLeavesFragmentedLayout(t *testing.T) {
	fs := newFs(t, Original{})
	fragmentGroup(t, fs, 8)
	// A 4-block file allocated into 1-block holes cannot be contiguous
	// under the original policy, even though an 8-block cluster exists.
	f, err := fs.CreateFile(fs.Root(), "victim", 4*int64(fs.P.BlockSize), 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.RunIsContiguous(0, 4, fs.FragsPerBlock()) {
		t.Fatalf("original policy produced a contiguous file in checkerboard free space: %v", f.Blocks)
	}
	if err := fs.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestReallocRescuesFragmentedRun(t *testing.T) {
	fs := newFs(t, Realloc{})
	fragmentGroup(t, fs, 8)
	// The same 4-block file: initial allocation lands in the holes,
	// but FlushCluster must relocate the run into the free expanse
	// beyond the checkerboard.
	f, err := fs.CreateFile(fs.Root(), "victim", 4*int64(fs.P.BlockSize), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !f.RunIsContiguous(0, 4, fs.FragsPerBlock()) {
		t.Fatalf("realloc failed to cluster the file: %v", f.Blocks)
	}
	if fs.Stats.ClusterMoves == 0 {
		t.Error("no cluster move recorded")
	}
	if err := fs.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestReallocChainsClustersEndToEnd(t *testing.T) {
	fs := newFs(t, Realloc{})
	// A 12-block file needs two clusters (7 + 5); realloc should chain
	// them into one 12-block contiguous run on an empty group.
	f, err := fs.CreateFile(fs.Root(), "chain", 96<<10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !f.RunIsContiguous(0, 12, fs.FragsPerBlock()) {
		t.Fatalf("two clusters did not chain: extents %d", f.ExtentCount(fs.FragsPerBlock()))
	}
	if err := fs.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestReallocTwoBlockQuirk(t *testing.T) {
	fs := newFs(t, Realloc{})
	fragmentGroup(t, fs, 8)
	// 9 KB: one full block plus a 1-fragment tail. The flush run is a
	// single block, so the clustering code never engages and the file
	// may stay split — exactly the paper's two-block-file dip.
	before := fs.Stats.ClusterMoves
	if _, err := fs.CreateFile(fs.Root(), "two", 9<<10, 1); err != nil {
		t.Fatal(err)
	}
	if fs.Stats.ClusterMoves != before {
		t.Error("realloc engaged for a file that never filled its second block")
	}
	// A 16 KB file (two full blocks) does engage it.
	f, err := fs.CreateFile(fs.Root(), "full", 16<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !f.RunIsContiguous(0, 2, fs.FragsPerBlock()) {
		t.Error("16KB file not clustered")
	}
}

func TestReallocSkipsWellPlacedRuns(t *testing.T) {
	fs := newFs(t, Realloc{})
	if _, err := fs.CreateFile(fs.Root(), "seq", 56<<10, 0); err != nil {
		t.Fatal(err)
	}
	// On an empty file system the initial allocation is already
	// perfect; no moves should happen.
	if fs.Stats.ClusterMoves != 0 {
		t.Errorf("ClusterMoves = %d on empty fs, want 0", fs.Stats.ClusterMoves)
	}
}

func TestReallocAggregateAdvantage(t *testing.T) {
	// Random create/delete churn on both policies: realloc must end
	// with a clearly higher fraction of contiguous blocks.
	frag := func(policy ffs.Policy) (contig, total int) {
		fs, err := ffs.NewFileSystem(smallParams(), policy)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		var live []*ffs.File
		for op := 0; op < 600; op++ {
			if len(live) > 20 && rng.Intn(5) < 2 {
				k := rng.Intn(len(live))
				if err := fs.Delete(live[k]); err != nil {
					t.Fatal(err)
				}
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			size := 1 << (10 + rng.Intn(7)) // 1KB..64KB
			f, err := fs.CreateFile(fs.Root(), fmt.Sprintf("f%d", op), int64(size), op)
			if err != nil {
				continue
			}
			live = append(live, f)
		}
		if err := fs.Check(); err != nil {
			t.Fatal(err)
		}
		fpb := fs.FragsPerBlock()
		for _, f := range live {
			for i := 1; i < len(f.Blocks); i++ {
				total++
				if f.Blocks[i] == f.Blocks[i-1]+ffs.Daddr(fpb) {
					contig++
				}
			}
		}
		return contig, total
	}
	oc, ot := frag(Original{})
	rc, rt := frag(Realloc{})
	orig := float64(oc) / float64(ot)
	re := float64(rc) / float64(rt)
	t.Logf("layout: original %.3f (%d/%d), realloc %.3f (%d/%d)", orig, oc, ot, re, rc, rt)
	if re <= orig {
		t.Errorf("realloc layout %.3f not better than original %.3f", re, orig)
	}
}

func TestReallocSingleBlocksVariant(t *testing.T) {
	fs := newFs(t, Realloc{ReallocSingleBlocks: true})
	if _, err := fs.CreateFile(fs.Root(), "f", 30<<10, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Check(); err != nil {
		t.Fatal(err)
	}
}
