package policy

import (
	"sort"
	"strings"
	"testing"

	"ffsage/internal/core"
	"ffsage/internal/ffs"
)

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	if len(names) < 5 {
		t.Errorf("registry has %d policies, want ≥ 5: %v", len(names), names)
	}
	for _, want := range []string{"ffs", "ffs+realloc", "ffs+extent", "ffs+firstfit", "ffs+bestfit", "ssd"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q: %v", want, names)
		}
	}
	// Slugs must stay unique: they name fragment files and CI matrix legs.
	slugs := map[string]string{}
	for _, n := range names {
		s := Slug(n)
		if prev, dup := slugs[s]; dup {
			t.Errorf("slug collision: %q and %q both slug to %q", prev, n, s)
		}
		slugs[s] = n
	}
}

func TestRegisterRejections(t *testing.T) {
	if err := Register("", func() ffs.Policy { return core.Original{} }); err == nil {
		t.Error("empty name accepted")
	}
	if err := Register("x", nil); err == nil {
		t.Error("nil factory accepted")
	}
	if err := Register("ffs", func() ffs.Policy { return core.Original{} }); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := Register("not-its-name", func() ffs.Policy { return core.Original{} }); err == nil {
		t.Error("name/factory mismatch accepted")
	}
}

func TestNewBuildsEachRegisteredPolicy(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, p.Name())
		}
	}
	_, err := New("nope")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	if !strings.Contains(err.Error(), "ffs+realloc") {
		t.Errorf("unknown-policy error does not list registered names: %v", err)
	}
}

func TestCanonicalName(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := CanonicalName(p)
		if !ok || got != name {
			t.Errorf("CanonicalName(New(%q)) = %q, %v", name, got, ok)
		}
	}
	// Ad-hoc ablation variants are NOT canonical: they must fall back to
	// full-value cache keys.
	for _, p := range []ffs.Policy{
		core.Realloc{InGroupOnly: true},
		core.Realloc{ReallocSingleBlocks: true},
		nil,
	} {
		if name, ok := CanonicalName(p); ok {
			t.Errorf("CanonicalName(%#v) = %q, want not canonical", p, name)
		}
	}
}
