// Package policy is the allocation-policy lab: a registry of named
// ffs.Policy implementations and the contenders that generalize the
// paper's two-way comparison into an N-way tournament.
//
// The paper compares exactly two in-cylinder-group policies — the
// original block-at-a-time allocator and McKusick's realloc
// enhancement (both in internal/core). The registry re-registers those
// two and adds contenders the 1996 study could not or did not
// evaluate:
//
//   - "ffs+extent" reserves a contiguous run at a file's first write
//     and grows it in place, re-homing to the largest free run when the
//     reservation dies (extent.go);
//   - "ffs+firstfit" / "ffs+bestfit" are one implementation
//     parameterized by the free-run selection discipline (fit.go);
//   - "ssd" is a seek-free cost model that ignores rotational placement
//     entirely and optimizes only run contiguity (ssd.go).
//
// Registered names are the canonical policy identity: the experiment
// cache keys aged images by them (experiments.policyKey), agesrv job
// specs validate against them, and the tournament driver enumerates
// them. Registration rejects duplicate or mismatched names, so a
// registered name can never silently alias two different policies.
package policy

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"

	"ffsage/internal/core"
	"ffsage/internal/ffs"
)

var (
	mu        sync.Mutex
	factories = map[string]func() ffs.Policy{}
)

func init() {
	// The paper's two policies first, then the lab's contenders.
	MustRegister("ffs", func() ffs.Policy { return core.Original{} })
	MustRegister("ffs+realloc", func() ffs.Policy { return core.Realloc{} })
	MustRegister("ffs+extent", func() ffs.Policy { return Extent{} })
	MustRegister("ffs+firstfit", func() ffs.Policy { return Fit{} })
	MustRegister("ffs+bestfit", func() ffs.Policy { return Fit{Best: true} })
	MustRegister("ssd", func() ffs.Policy { return SSD{} })
}

// Register adds a named policy factory to the registry. The name must
// be non-empty, unused, and equal to the Name() of the policy the
// factory builds — the last check is what makes registered names
// collision-free cache keys.
func Register(name string, factory func() ffs.Policy) error {
	if name == "" {
		return fmt.Errorf("policy: empty name")
	}
	if factory == nil {
		return fmt.Errorf("policy: nil factory for %q", name)
	}
	if got := factory().Name(); got != name {
		return fmt.Errorf("policy: registering %q but factory builds %q", name, got)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := factories[name]; dup {
		return fmt.Errorf("policy: duplicate name %q", name)
	}
	factories[name] = factory
	return nil
}

// MustRegister is Register for init-time registration with literal
// names.
func MustRegister(name string, factory func() ffs.Policy) {
	if err := Register(name, factory); err != nil {
		//lint:ignore ffsvet/nopanic init-time registration with literal names; a failure is a programmer error pinned by the package's own tests, never reachable from replayed disk state
		panic(err)
	}
}

// Names returns the registered policy names in sorted order — the
// deterministic enumeration every consumer (tournament, CI matrix,
// flag parsing) iterates in.
func Names() []string {
	mu.Lock()
	defer mu.Unlock()
	names := make([]string, 0, len(factories))
	for name := range factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// New builds the named policy, or lists the valid names in the error.
func New(name string) (ffs.Policy, error) {
	mu.Lock()
	f := factories[name]
	mu.Unlock()
	if f == nil {
		return nil, fmt.Errorf("policy: unknown policy %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return f(), nil
}

// Resolve is New with the legacy spellings the pre-registry tools
// accepted: the name is lowercased, "orig"/"original" mean "ffs", and
// "realloc" means "ffs+realloc".
func Resolve(name string) (ffs.Policy, error) {
	n := strings.ToLower(name)
	switch n {
	case "orig", "original":
		n = "ffs"
	case "realloc":
		n = "ffs+realloc"
	}
	return New(n)
}

// CanonicalName reports the registry name identifying p, and whether p
// is exactly the registered policy of that name (same type and flag
// values, not just the same display name). Ad-hoc variants — say an
// ablation's re-flagged Realloc — are not canonical and must be keyed
// by their full value instead.
func CanonicalName(p ffs.Policy) (string, bool) {
	if p == nil {
		return "", false
	}
	name := p.Name()
	mu.Lock()
	f := factories[name]
	mu.Unlock()
	if f == nil || !reflect.DeepEqual(f(), p) {
		return "", false
	}
	return name, true
}

// Slug converts a policy name to its file/matrix-safe form: '+' and
// '(' become '-', ')' is dropped. Slugs of registered names stay
// unique and are used for fragment file names, checkpoint arm slugs,
// and benchmark row names.
func Slug(name string) string {
	return strings.NewReplacer("+", "-", "(", "-", ")", "").Replace(name)
}
