package policy

import "ffsage/internal/ffs"

// SSD is a seek-free cost-model policy: on flash there is no
// rotational latency and no cylinder distance, so the only layout
// property worth paying relocation bookkeeping for is run contiguity —
// contiguous runs become single large transfer commands, which is
// where flash bandwidth comes from. The policy therefore ignores every
// rotational input the paper's policies honour: it never chains a run
// after the file's previous cluster (inter-cluster adjacency buys
// nothing without a disk arm), and it scans cylinder groups in flat
// index order rather than the quadratic-rehash order FFS uses to
// spread seeks (see EXPERIMENTS.md for why this deliberately breaks
// the paper's assumptions).
type SSD struct{}

// Name implements ffs.Policy.
func (SSD) Name() string { return "ssd" }

// FlushCluster implements ffs.Policy: if the run is internally
// fragmented, move it into the tightest free run anywhere on the
// device. Single-block runs are already maximal transfers and are
// never moved.
func (SSD) FlushCluster(fs *ffs.FileSystem, f *ffs.File, start, end int) {
	n := end - start
	if n <= 1 || n > fs.P.MaxContig {
		return
	}
	if f.RunIsContiguous(start, end, fs.FragsPerBlock()) {
		return
	}
	fs.Stats.ClusterAttempts++
	for cg := 0; cg < fs.NumCg(); cg++ {
		b := fs.Cg(cg).FindFreeRun(n, ffs.BestFit)
		if b < 0 {
			continue
		}
		fs.TryReallocRun(f, start, end, cg, fs.BlockAddr(cg, b))
		return
	}
}
