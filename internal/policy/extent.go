package policy

import "ffsage/internal/ffs"

// Extent is cluster-first allocation: a file's first flushed run is
// treated as the opening of a reserved extent, placed at the head of
// the largest free run available so subsequent clusters can grow it in
// place. Later runs chain into the reservation when its next address
// is free; when it is not (the reservation died — another file claimed
// the headroom), the run is re-homed at the head of the largest free
// run still standing, opening a new reservation there.
//
// Unlike realloc, Extent engages for single-block runs too: the
// reservation must be made at the first write, which for most files is
// a one-block flush.
type Extent struct{}

// Name implements ffs.Policy.
func (Extent) Name() string { return "ffs+extent" }

// FlushCluster implements ffs.Policy.
func (Extent) FlushCluster(fs *ffs.FileSystem, f *ffs.File, start, end int) {
	n := end - start
	if n <= 0 || n > fs.P.MaxContig {
		return
	}
	fpb := fs.FragsPerBlock()
	pref, cgIdx := fs.ReallocPref(f, start)
	contiguous := f.RunIsContiguous(start, end, fpb)
	if contiguous && pref != ffs.NilDaddr && f.Blocks[start] == pref {
		return // growing inside the reserved extent
	}
	if contiguous && pref == ffs.NilDaddr {
		if start > 0 {
			return // section start: the mandatory seek breaks the extent
		}
		if fs.FreeRunAfter(f.Blocks[end-1], 1) > 0 {
			return // first write landed with headroom: reservation holds
		}
		// First write landed in a dead end; re-home it.
	}
	fs.Stats.ClusterAttempts++
	if pref != ffs.NilDaddr && fs.TryReallocRun(f, start, end, cgIdx, pref) {
		return // chained into the reservation
	}
	// Reserve anew: find the group holding the largest free-run class
	// still available (searching in hashalloc order from the chain
	// target so reservations stay near their files), then take the
	// head of that group's longest sufficient run.
	for want := fs.P.MaxContig; want >= n; want-- {
		cg := fs.FindClusterCg(cgIdx, want)
		if cg < 0 {
			continue
		}
		if b := fs.Cg(cg).FindFreeRun(n, ffs.LargestFit); b >= 0 {
			fs.TryReallocRun(f, start, end, cg, fs.BlockAddr(cg, b))
		}
		return
	}
}
