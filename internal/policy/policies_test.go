package policy

import (
	"fmt"
	"testing"

	"ffsage/internal/ffs"
	"ffsage/internal/layout"
)

// churn fragments the free map and then writes cluster-spanning files
// through it: create a corpus, delete every other file, create a
// second generation into the holes. Every FlushCluster path (chained,
// contiguous, fragmented, re-homed) fires under this sequence.
func churn(t *testing.T, fs *ffs.FileSystem) {
	t.Helper()
	root := fs.Root()
	sizes := []int64{600, 12 << 10, 56 << 10, 120 << 10, 300 << 10}
	var gen1 []*ffs.File
	for i := 0; i < 60; i++ {
		f, err := fs.CreateFile(root, fmt.Sprintf("a%03d", i), sizes[i%len(sizes)], 0)
		if err != nil {
			t.Fatalf("create a%03d: %v", i, err)
		}
		gen1 = append(gen1, f)
	}
	for i, f := range gen1 {
		if i%2 == 0 {
			if err := fs.Delete(f); err != nil {
				t.Fatalf("delete gen1[%d]: %v", i, err)
			}
		}
	}
	for i := 0; i < 30; i++ {
		if _, err := fs.CreateFile(root, fmt.Sprintf("b%03d", i), 120<<10, 1); err != nil {
			t.Fatalf("create b%03d: %v", i, err)
		}
	}
}

// TestPoliciesKeepInvariants runs every registered policy through the
// churn and requires a clean Check and agreement between the
// incremental layout score and the full rescan — the per-policy core
// of the tournament property test, at unit-test cost.
func TestPoliciesKeepInvariants(t *testing.T) {
	p := ffs.PaperParams()
	p.SizeBytes = 16 << 20
	p.NumCg = 4
	for _, name := range Names() {
		t.Run(Slug(name), func(t *testing.T) {
			pol, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			fs, err := ffs.NewFileSystem(p, pol)
			if err != nil {
				t.Fatal(err)
			}
			churn(t, fs)
			if err := fs.Check(); err != nil {
				t.Fatalf("Check after churn: %v", err)
			}
			if got, want := fs.LayoutScore(), layout.FsAggregate(fs); got != want {
				t.Errorf("incremental layout score %v != rescan %v", got, want)
			}
			if name != "ffs" && fs.Stats.ClusterAttempts == 0 {
				t.Errorf("%s: relocation machinery never engaged", name)
			}
		})
	}
}

// TestRelocatingPoliciesMove pins that each relocating contender
// actually performs moves under fragmentation (a policy that silently
// never fires would still pass the invariant test above).
func TestRelocatingPoliciesMove(t *testing.T) {
	p := ffs.PaperParams()
	p.SizeBytes = 16 << 20
	p.NumCg = 4
	for _, name := range []string{"ffs+realloc", "ffs+extent", "ffs+firstfit", "ffs+bestfit", "ssd"} {
		t.Run(Slug(name), func(t *testing.T) {
			pol, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			fs, err := ffs.NewFileSystem(p, pol)
			if err != nil {
				t.Fatal(err)
			}
			churn(t, fs)
			if fs.Stats.ClusterMoves == 0 {
				t.Errorf("%s performed no cluster moves under fragmentation", name)
			}
		})
	}
}
