package policy

import "ffsage/internal/ffs"

// Fit is the realloc algorithm with the free-run selection discipline
// made explicit: one implementation serving both "ffs+firstfit" and
// "ffs+bestfit". The realloc mechanism's built-in search
// (ffs.CylGroup.allocCluster) is chain-aware — it prefers a run with
// room to spare so the next cluster can chain after this one. Fit
// bypasses that heuristic and places the run itself: first-fit takes
// the earliest sufficient free run, best-fit full-scans the group for
// the tightest one (the A4 ablation's question asked of the placement
// instead of the mechanism).
type Fit struct {
	// Best selects the tightest-fit run instead of the first
	// sufficient one.
	Best bool
}

// Name implements ffs.Policy.
func (p Fit) Name() string {
	if p.Best {
		return "ffs+bestfit"
	}
	return "ffs+firstfit"
}

// FlushCluster implements ffs.Policy: the realloc decision structure
// (chain to the previous cluster when its exact placement is free),
// with the fallback placement chosen by this policy's fit discipline
// rather than the mechanism's chain-aware scan.
func (p Fit) FlushCluster(fs *ffs.FileSystem, f *ffs.File, start, end int) {
	n := end - start
	if n <= 1 || n > fs.P.MaxContig {
		// Keep the paper's single-buffer quirk for parity with realloc:
		// one-block runs never reach the clustering code.
		return
	}
	fpb := fs.FragsPerBlock()
	pref, cgIdx := fs.ReallocPref(f, start)
	contiguous := f.RunIsContiguous(start, end, fpb)
	if contiguous && (pref == ffs.NilDaddr || f.Blocks[start] == pref) {
		return // nothing to gain
	}
	fs.Stats.ClusterAttempts++
	if pref != ffs.NilDaddr && fs.TryReallocRun(f, start, end, cgIdx, pref) {
		return // chained exactly after the previous cluster
	}
	if contiguous {
		// Internally fine; only the chained placement was worth a move.
		return
	}
	fit := ffs.FirstFit
	if p.Best {
		fit = ffs.BestFit
	}
	cg := fs.FindClusterCg(cgIdx, n)
	if cg < 0 {
		return
	}
	if b := fs.Cg(cg).FindFreeRun(n, fit); b >= 0 {
		fs.TryReallocRun(f, start, end, cg, fs.BlockAddr(cg, b))
	}
}
