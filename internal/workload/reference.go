package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ffsage/internal/trace"
)

// ReferenceResult is what the reference generator produces: the exact
// operation stream the source file system experienced (the "Real" line
// of Figure 1) and the nightly snapshots an observer recorded (the raw
// material for the reconstructed workload, Figure 1's "Simulated"
// line).
type ReferenceResult struct {
	GroundTruth *trace.Workload
	Snapshots   []trace.Snapshot
	// EndLiveFiles is the live file count after the last day.
	EndLiveFiles int
	// EndUsedBytes is the fragment-rounded bytes in use at the end.
	EndUsedBytes int64
}

type refFile struct {
	ino   int64
	dir   int
	size  int64
	ctime float64 // absolute seconds since day 0 start
	// heat is the file's long-term activity weight; a heavy-tailed
	// static draw, so rewrites concentrate on a stable working set
	// (the paper's hot set is ~10% of files holding ~19% of bytes).
	heat float64
	// listPos is the file's position in reference.liveList while live.
	listPos int32
}

type inoPool struct {
	cg       int
	ipg      int64
	nextSlot int64
	free     inoHeap // min-heap: FFS reuses the lowest free slot
}

func (p *inoPool) alloc() (int64, bool) {
	if len(p.free) > 0 {
		return p.free.pop(), true
	}
	if p.nextSlot >= p.ipg {
		return 0, false
	}
	ino := int64(p.cg)*p.ipg + p.nextSlot
	p.nextSlot++
	return ino, true
}

func (p *inoPool) release(ino int64) {
	p.free.push(ino)
}

// inoHeap is a min-heap of inode numbers. Hand-rolled rather than
// container/heap so pushes and pops do not box every value into an
// interface; pop order (always the minimum) is identical.
type inoHeap []int64

func (h *inoHeap) push(x int64) {
	*h = append(*h, x)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *inoHeap) pop() int64 {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	s = s[:n]
	for i := 0; ; {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if kid+1 < n && s[kid+1] < s[kid] {
			kid++
		}
		if s[i] <= s[kid] {
			break
		}
		s[i], s[kid] = s[kid], s[i]
		i = kid
	}
	return top
}

type reference struct {
	cfg Config
	rng *rand.Rand

	pools []*inoPool
	// files is an index-stable arena of file records; freeSlots holds
	// the indices of dead ones for reuse. byIno maps an inode number to
	// its arena index (-1 while dead) — inode numbers are dense, so a
	// flat slice replaces the old per-op map churn. liveList holds the
	// arena indices of live files for O(1) random victim selection.
	files     []refFile
	freeSlots []int32
	byIno     []int32
	liveList  []int32

	dirBase  []float64 // directory activity weights
	dirPhase []float64

	usedBytes   int64
	nextShortID int64

	ops   []trace.Op
	snaps []trace.Snapshot
	util  float64 // random-walk state after the ramp
}

// GenerateReference runs the reference activity simulation.
func GenerateReference(cfg Config) (*ReferenceResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &reference{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		byIno:       make([]int32, cfg.NumCg*cfg.InodesPerGroup),
		nextShortID: -1,
		util:        cfg.CruiseUtil,
	}
	for i := range r.byIno {
		r.byIno[i] = -1
	}
	for cg := 0; cg < cfg.NumCg; cg++ {
		r.pools = append(r.pools, &inoPool{cg: cg, ipg: int64(cfg.InodesPerGroup)})
	}
	for d := 0; d < cfg.NumDirs; d++ {
		r.dirBase = append(r.dirBase, 1/math.Pow(float64(d+1), 0.5))
		r.dirPhase = append(r.dirPhase, r.rng.Float64())
	}
	for day := 0; day < cfg.Days; day++ {
		r.simulateDay(day)
		r.snapshot(day)
	}
	sort.Slice(r.ops, func(i, j int) bool { return r.ops[i].Before(r.ops[j]) })
	return &ReferenceResult{
		GroundTruth:  &trace.Workload{Days: cfg.Days, Ops: r.ops},
		Snapshots:    r.snaps,
		EndLiveFiles: len(r.liveList),
		EndUsedBytes: r.usedBytes,
	}, nil
}

func fragRound(n int64) int64 { return (n + 1023) &^ 1023 }

// dirWeight returns directory d's activity weight on the given day;
// project activity waxes and wanes over ~90-day cycles.
func (r *reference) dirWeight(d, day int) float64 {
	return r.dirBase[d] * (1 + 0.5*math.Sin(2*math.Pi*(float64(day)/90+r.dirPhase[d])))
}

func (r *reference) pickDir(day int) int {
	total := 0.0
	for d := range r.dirBase {
		total += r.dirWeight(d, day)
	}
	x := r.rng.Float64() * total
	for d := range r.dirBase {
		x -= r.dirWeight(d, day)
		if x <= 0 {
			return d
		}
	}
	return len(r.dirBase) - 1
}

func (r *reference) dirCg(d int) int { return d % r.cfg.NumCg }

func (r *reference) allocIno(dir int) (int64, error) {
	start := r.dirCg(dir)
	for i := 0; i < r.cfg.NumCg; i++ {
		if ino, ok := r.pools[(start+i)%r.cfg.NumCg].alloc(); ok {
			return ino, nil
		}
	}
	return 0, fmt.Errorf("workload: all inode pools exhausted")
}

func (r *reference) inoCg(ino int64) int {
	return int(ino/int64(r.cfg.InodesPerGroup)) % r.cfg.NumCg
}

// addLive claims an arena slot for f, registers it live, and returns
// its arena index.
func (r *reference) addLive(f refFile) int32 {
	var idx int32
	if n := len(r.freeSlots); n > 0 {
		idx = r.freeSlots[n-1]
		r.freeSlots = r.freeSlots[:n-1]
		r.files[idx] = f
	} else {
		idx = int32(len(r.files))
		r.files = append(r.files, f)
	}
	r.files[idx].listPos = int32(len(r.liveList))
	r.byIno[f.ino] = idx
	r.liveList = append(r.liveList, idx)
	r.usedBytes += fragRound(f.size)
	return idx
}

func (r *reference) removeLive(ino int64) {
	idx := r.byIno[ino]
	f := &r.files[idx]
	last := int32(len(r.liveList) - 1)
	moved := r.liveList[last]
	r.liveList[f.listPos] = moved
	r.files[moved].listPos = f.listPos
	r.liveList = r.liveList[:last]
	r.byIno[ino] = -1
	r.freeSlots = append(r.freeSlots, idx)
	r.usedBytes -= fragRound(f.size)
	r.pools[r.inoCg(ino)].release(ino)
}

// createFile performs a long-lived create at the given time.
func (r *reference) createFile(day int, sec float64, dir int, size int64) error {
	ino, err := r.allocIno(dir)
	if err != nil {
		return err
	}
	r.addLive(refFile{
		ino: ino, dir: dir, size: size,
		ctime: float64(day)*86400 + sec,
		heat:  math.Exp(2 * r.rng.NormFloat64()),
	})
	r.ops = append(r.ops, trace.Op{
		Day: day, Sec: sec, Kind: trace.OpCreate,
		ID: ino, Cg: r.inoCg(ino), Size: size,
	})
	return nil
}

// pickRewriteTarget selects a file to modify, weighting by the file's
// static heat and its size: the same working set of large, active
// files (simulation outputs, mailboxes, logs) absorbs most rewrites.
func (r *reference) pickRewriteTarget() *refFile {
	var best *refFile
	bestW := -1.0
	for k := 0; k < 12; k++ {
		f := &r.files[r.liveList[r.rng.Intn(len(r.liveList))]]
		w := f.heat * math.Pow(float64(f.size)+1024, 0.5)
		if w > bestW {
			best, bestW = f, w
		}
	}
	return best
}

// pickVictim selects a file for deletion, biased toward larger and
// younger files (big experiment outputs and build trees come and go;
// old small files linger — [Satyanarayanan81]).
func (r *reference) pickVictim(day int) *refFile {
	if len(r.liveList) == 0 {
		return nil
	}
	var best *refFile
	bestW := -1.0
	now := float64(day) * 86400
	for k := 0; k < 6; k++ {
		f := &r.files[r.liveList[r.rng.Intn(len(r.liveList))]]
		ageDays := (now - f.ctime) / 86400
		if ageDays < 0.1 {
			ageDays = 0.1
		}
		w := math.Pow(float64(f.size)+1024, 0.3) * math.Exp(-ageDays/8) * (0.5 + r.rng.Float64()) / (0.2 + f.heat)
		if w > bestW {
			best, bestW = f, w
		}
	}
	return best
}

func (r *reference) targetUtil(day int) float64 {
	c := r.cfg
	if day < c.RampDays {
		frac := float64(day) / float64(c.RampDays)
		return c.StartUtil + frac*(c.CruiseUtil-c.StartUtil)
	}
	// Mean-reverting wander around the cruise level, a slow seasonal
	// wave, and one mid-period spike toward the peak (the paper's
	// contour: "for most of the ten month period utilization was
	// greater than 70%, reaching a high of 90%").
	r.util += 0.15*(c.CruiseUtil-r.util) + r.rng.NormFloat64()*0.012
	u := r.util + 0.03*math.Sin(2*math.Pi*float64(day)/77)
	// A mid-period spike reaches the peak ("reaching a high of 90%"),
	// stressing the allocators while the system is fullest...
	spikeDay := float64(c.RampDays) + 0.55*float64(c.Days-c.RampDays)
	sd := (float64(day) - spikeDay) / 14
	u += (c.PeakUtil - c.CruiseUtil) * math.Exp(-sd*sd)
	// ...and the period ends moderately full (cruise plus ~8 points),
	// the state the paper's benchmarks measure.
	climbStart := 0.85 * float64(c.Days)
	if f := float64(day); f > climbStart {
		u += 0.10 * (f - climbStart) / (float64(c.Days) - climbStart)
	}
	lo, hi := c.CruiseUtil-0.05, c.PeakUtil
	if u < lo {
		u = lo
	}
	if u > hi {
		u = hi
	}
	return u
}

func (r *reference) simulateDay(day int) {
	c := r.cfg
	mult := lognormMul(r.rng, 0.5)
	if r.rng.Float64() < c.BurstProb {
		mult *= c.BurstMul
	}
	churn := c.ChurnBytesPerDay * mult
	if day == 0 {
		// The replay period starts at the year's low point; everything
		// already on the file system materializes as day-0 creates.
		churn += c.StartUtil * float64(c.FsBytes)
	}
	target := int64(r.targetUtil(day) * float64(c.FsBytes))
	delta := target - r.usedBytes

	// Rewrites: modify existing files in place, biased toward large
	// files (regenerated outputs, appended logs) so the byte budget is
	// spent on few operations, as on the source system.
	rewriteBytes := int64(c.RewriteFrac * churn)
	for written := int64(0); written < rewriteBytes && len(r.liveList) > 0; {
		f := r.pickRewriteTarget()
		newSize := int64(float64(f.size) * (0.7 + 0.6*r.rng.Float64()))
		if newSize < 1 {
			newSize = 1
		}
		sec := r.secAfter(day, f.ctime)
		r.usedBytes += fragRound(newSize) - fragRound(f.size)
		f.size = newSize
		f.ctime = float64(day)*86400 + sec
		r.ops = append(r.ops, trace.Op{
			Day: day, Sec: sec, Kind: trace.OpRewrite,
			ID: f.ino, Cg: r.inoCg(f.ino), Size: newSize,
		})
		written += newSize
	}

	createBudget := int64(churn * (1 - c.RewriteFrac))
	deleteBudget := createBudget
	if delta > 0 {
		createBudget += delta
	} else {
		deleteBudget += -delta
	}

	for written := int64(0); written < createBudget; {
		size := c.LongSize.Sample(r.rng)
		if err := r.createFile(day, workdaySec(r.rng), r.pickDir(day), size); err != nil {
			break
		}
		written += size
	}
	// Deletes are driven by two pressures: the byte budget (big, young
	// files go first) and the population target (the live-file count
	// tracks utilization; without this, small files would accumulate
	// without bound).
	popTarget := int(float64(target) / c.MeanLiveBytes)
	freed, deleted := int64(0), 0
	for len(r.liveList) > 40 {
		needBytes := freed < deleteBudget
		needCount := len(r.liveList) > popTarget
		if !needBytes && !needCount || deleted > 20000 {
			break
		}
		var f *refFile
		if needBytes {
			f = r.pickVictim(day)
		} else {
			// Population trimming removes small files so the byte
			// controller is barely disturbed.
			for k := 0; k < 3; k++ {
				cand := &r.files[r.liveList[r.rng.Intn(len(r.liveList))]]
				if f == nil || cand.size < f.size {
					f = cand
				}
			}
		}
		if f == nil {
			break
		}
		freed += f.size
		deleted++
		sec := r.secAfter(day, f.ctime)
		r.removeLive(f.ino)
		r.ops = append(r.ops, trace.Op{
			Day: day, Sec: sec, Kind: trace.OpDelete,
			ID: f.ino, Cg: r.inoCg(f.ino),
		})
	}

	// Short-lived files: created and gone before the nightly snapshot.
	nShort := int(c.ShortPairsPerDay * math.Sqrt(mult) * (0.6 + 0.8*r.rng.Float64()))
	for i := 0; i < nShort; i++ {
		dir := r.pickDir(day)
		size := c.ShortSize.Sample(r.rng)
		start := workdaySec(r.rng)
		life := r.rng.ExpFloat64() * 2 * 3600
		end := start + life
		if end > 86399.9 {
			end = 86399.9
		}
		if end <= start {
			end = start + 0.1
		}
		id := r.nextShortID
		r.nextShortID--
		cg := r.dirCg(dir)
		r.ops = append(r.ops,
			trace.Op{Day: day, Sec: start, Kind: trace.OpCreate, ID: id, Cg: cg, Size: size, ShortLived: true},
			trace.Op{Day: day, Sec: end, Kind: trace.OpDelete, ID: id, Cg: cg, ShortLived: true},
		)
	}
}

// secAfter draws a time of day that falls strictly after the given
// absolute ctime when that ctime lies within the same day, so an
// operation on a file created earlier today sorts after its creation.
func (r *reference) secAfter(day int, ctime float64) float64 {
	sec := workdaySec(r.rng)
	created := ctime - float64(day)*86400
	if created >= 0 && sec <= created {
		room := 86399.9 - created
		if room < 0 {
			room = 0
		}
		sec = created + 0.001 + room*r.rng.Float64()
	}
	return sec
}

func (r *reference) snapshot(day int) {
	files := make([]trace.FileMeta, 0, len(r.liveList))
	for _, idx := range r.liveList {
		f := &r.files[idx]
		files = append(files, trace.FileMeta{Ino: f.ino, Size: f.size, CTime: f.ctime})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Ino < files[j].Ino })
	r.snaps = append(r.snaps, trace.Snapshot{Day: day, Files: files})
}
