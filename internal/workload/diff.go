package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"ffsage/internal/trace"
)

// Diff reconstructs a replayable operation stream from a series of
// nightly snapshots, applying the paper's heuristics (Section 3.1):
//
//   - an inode present in snapshot k+1 but not k was created; its inode
//     change time is taken as the creation time ("files are seldom
//     modified after they are first written" [Ousterhout85]);
//   - an inode present in both with a changed ctime (or size) was
//     modified, treated as a remove-and-rewrite at the new ctime;
//   - an inode present in k but not k+1 was deleted at an unknown time;
//     deletion times are drawn randomly from the range in which the
//     day's other operations occur.
//
// The first snapshot's contents materialize as creations (the paper
// starts from the year's utilization low point on an empty test file
// system). ipg maps inode numbers to source cylinder groups. The rng
// supplies the random deletion times only.
func Diff(snaps []trace.Snapshot, numCg, ipg int, rng *rand.Rand) (*trace.Workload, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("workload: no snapshots to diff")
	}
	if numCg <= 0 || ipg <= 0 {
		return nil, fmt.Errorf("workload: bad inode geometry %d/%d", numCg, ipg)
	}
	inoCg := func(ino int64) int { return int(ino/int64(ipg)) % numCg }

	var ops []trace.Op
	// Two snapshot-sized maps are reused across the whole series (the
	// roles swap each interval; clear() keeps the grown buckets) instead
	// of allocating a fresh map per snapshot.
	prev := map[int64]trace.FileMeta{}
	cur := map[int64]trace.FileMeta{}
	var dead []int64
	lastDay := 0
	for si, snap := range snaps {
		if si > 0 && snap.Day <= snaps[si-1].Day {
			return nil, fmt.Errorf("workload: snapshots out of order at day %d", snap.Day)
		}
		lastDay = snap.Day
		// Track the time range of known operations this interval so
		// random deletion times land amid real activity.
		loSec, hiSec := 9.0*3600, 18.0*3600
		noteTime := func(ctime float64) {
			sec := ctime - float64(snap.Day)*86400
			if sec < 0 || sec >= 86400 {
				return // a creation attributed to an earlier day
			}
			if sec < loSec {
				loSec = sec
			}
			if sec > hiSec {
				hiSec = sec
			}
		}
		for _, f := range snap.Files {
			if f.IsDir {
				continue
			}
			cur[f.Ino] = f
			old, existed := prev[f.Ino]
			switch {
			case !existed:
				day, sec := splitCTime(f.CTime, snap.Day)
				noteTime(f.CTime)
				ops = append(ops, trace.Op{
					Day: day, Sec: sec, Kind: trace.OpCreate,
					ID: f.Ino, Cg: inoCg(f.Ino), Size: f.Size,
				})
			case old.CTime != f.CTime || old.Size != f.Size:
				day, sec := splitCTime(f.CTime, snap.Day)
				noteTime(f.CTime)
				ops = append(ops, trace.Op{
					Day: day, Sec: sec, Kind: trace.OpRewrite,
					ID: f.Ino, Cg: inoCg(f.Ino), Size: f.Size,
				})
			}
		}
		// Collect the interval's deletions in sorted inode order before
		// drawing their times: iterating the map directly would pair
		// inodes with rng draws in map order, making the reconstructed
		// stream differ from run to run.
		dead = dead[:0]
		for ino := range prev {
			if _, still := cur[ino]; !still {
				dead = append(dead, ino)
			}
		}
		sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
		for _, ino := range dead {
			sec := loSec + rng.Float64()*(hiSec-loSec)
			ops = append(ops, trace.Op{
				Day: snap.Day, Sec: sec, Kind: trace.OpDelete,
				ID: ino, Cg: inoCg(ino),
			})
		}
		prev, cur = cur, prev
		clear(cur)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].Before(ops[j]) })
	return &trace.Workload{Days: lastDay + 1, Ops: ops}, nil
}

// splitCTime converts an absolute ctime into (day, sec), clamping into
// the interval that ends at snapDay (a snapshot can only reveal
// operations up to its own day).
func splitCTime(ctime float64, snapDay int) (int, float64) {
	day := int(ctime / 86400)
	if day > snapDay {
		day = snapDay
	}
	if day < 0 {
		day = 0
	}
	sec := ctime - float64(day)*86400
	if sec < 0 {
		sec = 0
	}
	if sec >= 86400 {
		sec = 86399
	}
	return day, sec
}
