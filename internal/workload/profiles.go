package workload

// Profiles implement the paper's future-work direction (§6): "generate
// a variety of different aging workloads representative of different
// file system usage patterns, such as news, database, and personal
// computing workloads ... to determine the file system design
// parameters that are best suited for each type of workload."
//
// Each profile reshapes the reference generator around one usage
// pattern while keeping the byte volume comparable, so aged layouts are
// attributable to workload *character* rather than intensity.

// Profile identifies a usage pattern.
type Profile string

// The supported usage patterns.
const (
	// ProfileResearch is the paper's source system: a research group's
	// home directories (the DefaultConfig calibration).
	ProfileResearch Profile = "research"
	// ProfileNews models a Usenet spool: torrents of small files
	// created continuously and expired in age order a few days later.
	// Extreme create/delete churn, almost no rewrites, no large files.
	ProfileNews Profile = "news"
	// ProfileDatabase models a database server: a handful of very
	// large, long-lived files absorbing continual in-place rewrite
	// traffic, plus small log files that rotate.
	ProfileDatabase Profile = "database"
	// ProfilePersonal models a single user's workstation: modest
	// activity, strong diurnal shape, medium files, a large standing
	// population of rarely touched documents.
	ProfilePersonal Profile = "personal"
)

// Profiles lists the supported patterns.
func Profiles() []Profile {
	return []Profile{ProfileResearch, ProfileNews, ProfileDatabase, ProfilePersonal}
}

// ProfileConfig returns a generator configuration for the pattern,
// derived from the default calibration.
func ProfileConfig(p Profile, seed int64) Config {
	c := DefaultConfig(seed)
	switch p {
	case ProfileResearch:
		// The default calibration.
	case ProfileNews:
		// A spool: everything is churn. Small articles, lifetimes of a
		// few days (expire), very high operation counts, no rewrite
		// traffic, utilization pinned high.
		c.ChurnBytesPerDay = 160 << 20
		c.RewriteFrac = 0.02
		c.LongSize = SizeDist{MedianBytes: 3 << 10, Sigma: 1.3, MaxBytes: 256 << 10}
		c.ShortSize = SizeDist{MedianBytes: 2 << 10, Sigma: 1.2, MaxBytes: 64 << 10}
		c.ShortPairsPerDay = 2500
		c.MeanLiveBytes = 6 << 10
		c.NumDirs = 120 // one per active newsgroup
		c.BurstProb = 0.02
	case ProfileDatabase:
		// Few files, big files, rewrites dominate; the standing
		// population barely changes.
		c.ChurnBytesPerDay = 120 << 20
		c.RewriteFrac = 0.9
		c.LongSize = SizeDist{MedianBytes: 2 << 20, Sigma: 1.2, MaxBytes: 64 << 20}
		c.ShortSize = SizeDist{MedianBytes: 16 << 10, Sigma: 1.2, MaxBytes: 1 << 20}
		c.ShortPairsPerDay = 40 // sort spills, dump staging
		c.MeanLiveBytes = 3 << 20
		c.NumDirs = 6
		c.BurstProb = 0.01
	case ProfilePersonal:
		// One user: light churn, bursty editing, documents linger.
		c.ChurnBytesPerDay = 18 << 20
		c.RewriteFrac = 0.45
		c.LongSize = SizeDist{MedianBytes: 14 << 10, Sigma: 2.1, MaxBytes: 8 << 20}
		c.ShortSize = SizeDist{MedianBytes: 4 << 10, Sigma: 1.6, MaxBytes: 1 << 20}
		c.ShortPairsPerDay = 150
		c.MeanLiveBytes = 36 << 10
		c.NumDirs = 14
		c.BurstProb = 0.12
		c.BurstMul = 5
	default:
		// Unknown profiles fall back to the default calibration so the
		// caller's Validate sees a usable configuration; callers that
		// care use KnownProfile first.
	}
	return c
}

// KnownProfile reports whether p names a supported pattern.
func KnownProfile(p Profile) bool {
	for _, q := range Profiles() {
		if q == p {
			return true
		}
	}
	return false
}
