package workload

import (
	"math/rand"

	"ffsage/internal/trace"
)

// Build is the end-to-end pipeline: simulate the reference system, take
// its snapshots, reconstruct a workload from them, and merge in the
// synthetic NFS trace. It returns both the ground-truth stream (the
// paper's "Real" file system) and the reconstructed aging workload (the
// paper's "Simulated" one), which Figure 1 compares.
type Build struct {
	Config    Config
	Reference *ReferenceResult
	// Reconstructed is the snapshot-diffed workload with short-lived
	// activity merged in — the workload the paper's aging tool
	// replays.
	Reconstructed *trace.Workload
	// TraceDays is the synthetic NFS trace used for the merge.
	TraceDays []trace.TraceDay
}

// BuildPaperWorkload runs the full pipeline with the default
// calibration and the given seed.
func BuildPaperWorkload(seed int64) (*Build, error) {
	return BuildWorkload(DefaultConfig(seed), DefaultNFSTraceConfig(seed+1))
}

// BuildWorkload runs the full pipeline with explicit configurations.
func BuildWorkload(cfg Config, nfsCfg NFSTraceConfig) (*Build, error) {
	ref, err := GenerateReference(cfg)
	if err != nil {
		return nil, err
	}
	tdays, err := GenerateNFSTrace(nfsCfg)
	if err != nil {
		return nil, err
	}
	// Seed offsets keep the differ's random delete times and the
	// merger's trace-day draws independent of the generator streams.
	diffed, err := Diff(ref.Snapshots, cfg.NumCg, cfg.InodesPerGroup, rand.New(rand.NewSource(cfg.Seed+101)))
	if err != nil {
		return nil, err
	}
	merged, err := Merge(diffed, tdays, cfg.NumCg, rand.New(rand.NewSource(cfg.Seed+202)))
	if err != nil {
		return nil, err
	}
	return &Build{
		Config:        cfg,
		Reference:     ref,
		Reconstructed: merged,
		TraceDays:     tdays,
	}, nil
}
