// Package workload generates the ten-month aging workload of the paper
// (Section 3.1) from synthetic stand-ins for its two data sources:
//
//   - a reference activity generator that simulates the day-to-day life
//     of the source file system (a research group's 502 MB home
//     directory partition) and emits both the ground-truth operation
//     stream and the nightly snapshots an observer would have taken;
//
//   - an NFS-style trace generator producing the same-day create/delete
//     pairs the snapshots cannot see.
//
// The snapshot differ (Diff) and the trace merger (Merge) then rebuild
// a replayable workload from those artifacts using exactly the paper's
// heuristics, so the reconstruction error the paper measures in Figure
// 1 has a live analogue here.
package workload

import "fmt"

// Config parameterizes the reference generator. DefaultConfig matches
// the paper's published aggregates; the knobs exist for the ablation
// benches and for generating the "news/database/personal computing"
// style variants the paper's future work proposes.
type Config struct {
	// Days is the length of the simulated period (300 ≈ ten months).
	Days int
	// NumCg and InodesPerGroup describe the source file system's inode
	// geometry, which maps inode numbers to cylinder groups.
	NumCg          int
	InodesPerGroup int
	// NumDirs is the number of active directories (home and project
	// directories of "one professor and three students").
	NumDirs int
	// FsBytes is the source partition size.
	FsBytes int64
	// StartUtil is the initial utilization (the paper starts at the
	// snapshot year's low point, 9%).
	StartUtil float64
	// RampDays and CruiseUtil shape the utilization contour: linear
	// ramp from StartUtil to CruiseUtil over RampDays, then a random
	// walk between CruiseUtil and PeakUtil.
	RampDays   int
	CruiseUtil float64
	PeakUtil   float64

	// ChurnBytesPerDay is the mean volume created (and deleted) by
	// long-lived file turnover on a typical day, beyond what the
	// utilization ramp requires.
	ChurnBytesPerDay float64
	// BurstProb and BurstMul make some days much busier (builds,
	// experiment output), matching the sharp drops in the paper's
	// layout curves.
	BurstProb float64
	BurstMul  float64
	// RewriteFrac is the fraction of long-lived churn performed as
	// in-place rewrites (modify = delete + recreate) rather than
	// create/delete of distinct files.
	RewriteFrac float64
	// MeanLiveBytes is the expected mean size of a standing file; the
	// generator holds the live-file count near
	// utilization·FsBytes/MeanLiveBytes, so the population tracks the
	// utilization contour (the paper ends with ~8.8k files at ~75%).
	MeanLiveBytes float64

	// LongSize and ShortSize are the file size distributions for
	// long-lived and short-lived files.
	LongSize  SizeDist
	ShortSize SizeDist

	// ShortPairsPerDay is the mean number of same-day create/delete
	// pairs (trace studies: most files live less than a day).
	ShortPairsPerDay float64

	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns the configuration calibrated to the paper's
// workload summary: ~300 days, ~800k operations, ~48.6 GB written,
// ~8.8k live files at the end, utilization 9% → 70–90%.
func DefaultConfig(seed int64) Config {
	return Config{
		Days:             300,
		NumCg:            27,
		InodesPerGroup:   4800,
		NumDirs:          40,
		FsBytes:          502 << 20,
		StartUtil:        0.09,
		RampDays:         70,
		CruiseUtil:       0.72,
		PeakUtil:         0.90,
		ChurnBytesPerDay: 80 << 20,
		BurstProb:        0.07,
		BurstMul:         3.5,
		RewriteFrac:      0.6,
		MeanLiveBytes:    40 << 10,
		LongSize:         SizeDist{MedianBytes: 12 << 10, Sigma: 2.5, MaxBytes: 4 << 20},
		ShortSize:        SizeDist{MedianBytes: 16 << 10, Sigma: 2.0, MaxBytes: 8 << 20},
		ShortPairsPerDay: 700,
		Seed:             seed,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Days <= 0:
		return fmt.Errorf("workload: days %d", c.Days)
	case c.NumCg <= 0 || c.InodesPerGroup <= 0:
		return fmt.Errorf("workload: inode geometry %d/%d", c.NumCg, c.InodesPerGroup)
	case c.NumDirs <= 0:
		return fmt.Errorf("workload: dirs %d", c.NumDirs)
	case c.FsBytes <= 0:
		return fmt.Errorf("workload: fs bytes %d", c.FsBytes)
	case c.StartUtil <= 0 || c.StartUtil >= 1 || c.CruiseUtil <= c.StartUtil || c.PeakUtil < c.CruiseUtil || c.PeakUtil >= 1:
		return fmt.Errorf("workload: utilization contour %v/%v/%v", c.StartUtil, c.CruiseUtil, c.PeakUtil)
	case c.ChurnBytesPerDay < 0 || c.ShortPairsPerDay < 0:
		return fmt.Errorf("workload: negative activity")
	case c.RewriteFrac < 0 || c.RewriteFrac > 1:
		return fmt.Errorf("workload: rewrite fraction %v", c.RewriteFrac)
	case c.MeanLiveBytes <= 0:
		return fmt.Errorf("workload: mean live bytes %v", c.MeanLiveBytes)
	}
	if err := c.LongSize.Validate(); err != nil {
		return err
	}
	return c.ShortSize.Validate()
}
