package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ffsage/internal/trace"
)

// fastConfig returns a small configuration for unit tests.
func fastConfig(seed int64) Config {
	c := DefaultConfig(seed)
	c.Days = 20
	c.ChurnBytesPerDay = 10 << 20
	c.ShortPairsPerDay = 50
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Days = 0 },
		func(c *Config) { c.NumCg = 0 },
		func(c *Config) { c.NumDirs = 0 },
		func(c *Config) { c.FsBytes = 0 },
		func(c *Config) { c.StartUtil = 0 },
		func(c *Config) { c.PeakUtil = 1.5 },
		func(c *Config) { c.CruiseUtil = 0.01 },
		func(c *Config) { c.RewriteFrac = 2 },
		func(c *Config) { c.MeanLiveBytes = 0 },
		func(c *Config) { c.LongSize.Sigma = 0 },
		func(c *Config) { c.ShortPairsPerDay = -1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig(1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSizeDist(t *testing.T) {
	d := SizeDist{MedianBytes: 4096, Sigma: 2, MaxBytes: 1 << 20}
	rng := rand.New(rand.NewSource(7))
	var below, above int
	for i := 0; i < 4000; i++ {
		s := d.Sample(rng)
		if s < 1 || s > d.MaxBytes {
			t.Fatalf("sample %d out of range", s)
		}
		if s < 4096 {
			below++
		} else {
			above++
		}
	}
	// The median should split samples roughly evenly.
	ratio := float64(below) / 4000
	if ratio < 0.42 || ratio > 0.58 {
		t.Errorf("fraction below median = %v, want ≈ 0.5", ratio)
	}
	if d.MeanBytes() < 4096 {
		t.Error("lognormal mean below median")
	}
}

func TestWorkdaySecInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		s := workdaySec(rng)
		if s < 0 || s >= 86400 {
			t.Fatalf("workdaySec = %v", s)
		}
	}
}

func TestReferenceInvariants(t *testing.T) {
	res, err := GenerateReference(fastConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) != 20 {
		t.Fatalf("%d snapshots", len(res.Snapshots))
	}
	// Ops sorted; every delete follows a create of the same ID; no
	// double-creates of a live ID.
	live := map[int64]bool{}
	var prev trace.Op
	for i, op := range res.GroundTruth.Ops {
		if i > 0 && op.Before(prev) {
			t.Fatalf("ops out of order at %d", i)
		}
		prev = op
		switch op.Kind {
		case trace.OpCreate:
			if live[op.ID] {
				t.Fatalf("create of live id %d", op.ID)
			}
			live[op.ID] = true
		case trace.OpDelete:
			if !live[op.ID] {
				t.Fatalf("delete of dead id %d", op.ID)
			}
			delete(live, op.ID)
		case trace.OpRewrite:
			if !live[op.ID] {
				t.Fatalf("rewrite of dead id %d", op.ID)
			}
		}
		if op.Cg < 0 || op.Cg >= 27 {
			t.Fatalf("op cg %d", op.Cg)
		}
	}
	// Snapshot files never include short-lived IDs (negative).
	for _, s := range res.Snapshots {
		for _, f := range s.Files {
			if f.Ino < 0 {
				t.Fatal("short-lived file leaked into a snapshot")
			}
		}
		for i := 1; i < len(s.Files); i++ {
			if s.Files[i].Ino <= s.Files[i-1].Ino {
				t.Fatal("snapshot not sorted by ino")
			}
		}
	}
	// Live count at the end matches the last snapshot.
	if res.EndLiveFiles != len(res.Snapshots[len(res.Snapshots)-1].Files) {
		t.Errorf("EndLiveFiles %d != last snapshot %d",
			res.EndLiveFiles, len(res.Snapshots[len(res.Snapshots)-1].Files))
	}
}

func TestReferenceDeterminism(t *testing.T) {
	a, err := GenerateReference(fastConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateReference(fastConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.GroundTruth.Ops) != len(b.GroundTruth.Ops) {
		t.Fatalf("op counts differ: %d vs %d", len(a.GroundTruth.Ops), len(b.GroundTruth.Ops))
	}
	for i := range a.GroundTruth.Ops {
		if a.GroundTruth.Ops[i] != b.GroundTruth.Ops[i] {
			t.Fatalf("op %d differs", i)
		}
	}
	c, err := GenerateReference(fastConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.GroundTruth.Ops) == len(c.GroundTruth.Ops) &&
		a.GroundTruth.Ops[0] == c.GroundTruth.Ops[0] {
		t.Error("different seeds produced identical streams")
	}
}

func TestDiffReconstruction(t *testing.T) {
	// Hand-built snapshots exercising each heuristic.
	day0 := trace.Snapshot{Day: 0, Files: []trace.FileMeta{
		{Ino: 100, Size: 5000, CTime: 3600},
		{Ino: 200, Size: 9000, CTime: 7200},
	}}
	day1 := trace.Snapshot{Day: 1, Files: []trace.FileMeta{
		{Ino: 100, Size: 5000, CTime: 3600},       // unchanged
		{Ino: 300, Size: 777, CTime: 86400 + 600}, // created day 1
	}}
	day2 := trace.Snapshot{Day: 2, Files: []trace.FileMeta{
		{Ino: 100, Size: 6000, CTime: 2*86400 + 100}, // modified day 2
		{Ino: 300, Size: 777, CTime: 86400 + 600},
	}}
	wl, err := Diff([]trace.Snapshot{day0, day1, day2}, 27, 4800, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if wl.Days != 3 {
		t.Errorf("days = %d", wl.Days)
	}
	var kinds []string
	for _, op := range wl.Ops {
		kinds = append(kinds, op.Kind.String())
	}
	// Expected: create 100 (day 0), create 200 (day 0), create 300
	// (day 1), delete 200 (day 1), rewrite 100 (day 2).
	want := map[trace.OpKind]int{trace.OpCreate: 3, trace.OpDelete: 1, trace.OpRewrite: 1}
	got := map[trace.OpKind]int{}
	for _, op := range wl.Ops {
		got[op.Kind]++
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%v: %d ops, want %d (%v)", k, got[k], n, kinds)
		}
	}
	for _, op := range wl.Ops {
		if op.ID == 200 && op.Kind == trace.OpDelete && op.Day != 1 {
			t.Errorf("delete of 200 on day %d, want 1", op.Day)
		}
		if op.ID == 100 && op.Kind == trace.OpRewrite && op.Size != 6000 {
			t.Errorf("rewrite size %d", op.Size)
		}
	}
}

func TestDiffErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Diff(nil, 27, 4800, rng); err == nil {
		t.Error("empty snapshots accepted")
	}
	snaps := []trace.Snapshot{{Day: 5}, {Day: 5}}
	if _, err := Diff(snaps, 27, 4800, rng); err == nil {
		t.Error("out-of-order snapshots accepted")
	}
	if _, err := Diff([]trace.Snapshot{{Day: 0}}, 0, 4800, rng); err == nil {
		t.Error("bad geometry accepted")
	}
}

// Property: replaying the diffed workload reproduces the live-file set
// of every snapshot (same IDs and sizes).
func TestQuickDiffReplaysToSnapshots(t *testing.T) {
	f := func(seed int64) bool {
		cfg := fastConfig(seed)
		cfg.Days = 10
		res, err := GenerateReference(cfg)
		if err != nil {
			return false
		}
		wl, err := Diff(res.Snapshots, cfg.NumCg, cfg.InodesPerGroup, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		// Replay op stream into a map, checking against each snapshot
		// at end of day.
		live := map[int64]int64{}
		i := 0
		for _, snap := range res.Snapshots {
			for i < len(wl.Ops) && wl.Ops[i].Day <= snap.Day {
				op := wl.Ops[i]
				switch op.Kind {
				case trace.OpCreate, trace.OpRewrite:
					live[op.ID] = op.Size
				case trace.OpDelete:
					delete(live, op.ID)
				}
				i++
			}
			if len(live) != len(snap.Files) {
				return false
			}
			for _, f := range snap.Files {
				if live[f.Ino] != f.Size {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestNFSTraceGeneration(t *testing.T) {
	cfg := DefaultNFSTraceConfig(9)
	days, err := GenerateNFSTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != cfg.Days {
		t.Fatalf("%d days", len(days))
	}
	total := 0
	for _, d := range days {
		total += len(d.Files)
		for _, f := range d.Files {
			if f.CreateSec < 0 || f.DeleteSec >= 86400 || f.DeleteSec < f.CreateSec {
				t.Fatalf("bad lifetime %+v", f)
			}
			if f.Dir < 0 || f.Dir >= cfg.NumDirs {
				t.Fatalf("bad dir %d", f.Dir)
			}
			if f.Size < 1 {
				t.Fatalf("bad size %d", f.Size)
			}
		}
	}
	mean := float64(total) / float64(len(days))
	if mean < cfg.PairsPerDay/3 || mean > cfg.PairsPerDay*3 {
		t.Errorf("mean pairs/day = %v, config %v", mean, cfg.PairsPerDay)
	}
	if _, err := GenerateNFSTrace(NFSTraceConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestMergeAddsShortLived(t *testing.T) {
	base := &trace.Workload{Days: 2, Ops: []trace.Op{
		{Day: 0, Sec: 100, Kind: trace.OpCreate, ID: 1, Cg: 5, Size: 100},
		{Day: 0, Sec: 200, Kind: trace.OpCreate, ID: 2, Cg: 5, Size: 100},
		{Day: 1, Sec: 100, Kind: trace.OpCreate, ID: 3, Cg: 7, Size: 100},
	}}
	tdays := []trace.TraceDay{{Files: []trace.ShortLivedFile{
		{Dir: 0, CreateSec: 40000, DeleteSec: 41000, Size: 500},
		{Dir: 0, CreateSec: 42000, DeleteSec: 43000, Size: 600},
		{Dir: 1, CreateSec: 50000, DeleteSec: 51000, Size: 700},
	}}}
	merged, err := Merge(base, tdays, 27, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// 3 base + 2 days × 3 pairs × 2 ops.
	if len(merged.Ops) != 3+12 {
		t.Fatalf("%d ops", len(merged.Ops))
	}
	// The busiest trace dir (0, two files) must join the busiest group
	// of each day (day 0: cg 5; day 1: cg 7).
	for _, op := range merged.Ops {
		if !op.ShortLived {
			continue
		}
		if op.ID >= 0 {
			t.Error("short-lived op with non-negative id")
		}
	}
	day0cg, day1cg := map[int]int{}, map[int]int{}
	for _, op := range merged.Ops {
		if op.ShortLived && op.Kind == trace.OpCreate {
			if op.Day == 0 {
				day0cg[op.Cg]++
			} else {
				day1cg[op.Cg]++
			}
		}
	}
	if day0cg[5] != 2 {
		t.Errorf("day 0 busiest group got %v", day0cg)
	}
	if day1cg[7] != 2 {
		t.Errorf("day 1 busiest group got %v", day1cg)
	}
	// Base must not be modified.
	if len(base.Ops) != 3 {
		t.Error("merge mutated input")
	}
}

func TestMergeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := &trace.Workload{Days: 1}
	if _, err := Merge(base, nil, 27, rng); err == nil {
		t.Error("no trace days accepted")
	}
	if _, err := Merge(base, []trace.TraceDay{{}}, 0, rng); err == nil {
		t.Error("bad group count accepted")
	}
}

func TestMergeTimeShiftKeepsOrdering(t *testing.T) {
	base := &trace.Workload{Days: 1, Ops: []trace.Op{
		{Day: 0, Sec: 86000, Kind: trace.OpCreate, ID: 1, Cg: 0, Size: 10},
	}}
	// A pair near end of day: the shift toward the base peak must keep
	// delete after create.
	tdays := []trace.TraceDay{{Files: []trace.ShortLivedFile{
		{Dir: 0, CreateSec: 86300, DeleteSec: 86399, Size: 10},
	}}}
	merged, err := Merge(base, tdays, 4, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	var cs, ds float64 = -1, -1
	for _, op := range merged.Ops {
		if op.ShortLived && op.Kind == trace.OpCreate {
			cs = op.Sec
		}
		if op.ShortLived && op.Kind == trace.OpDelete {
			ds = op.Sec
		}
	}
	if cs < 0 || ds <= cs {
		t.Errorf("create at %v, delete at %v", cs, ds)
	}
}

func TestBuildPaperWorkloadSmall(t *testing.T) {
	cfg := fastConfig(77)
	nfs := DefaultNFSTraceConfig(78)
	nfs.PairsPerDay = 40 // scale the trace to the small reference
	b, err := BuildWorkload(cfg, nfs)
	if err != nil {
		t.Fatal(err)
	}
	gt := b.Reference.GroundTruth.Summarize()
	rc := b.Reconstructed.Summarize()
	if gt.Ops == 0 || rc.Ops == 0 {
		t.Fatal("empty workloads")
	}
	// The reconstruction loses intra-day activity: it must not see
	// more distinct long-lived operations than the truth, and both
	// must be broadly similar in magnitude.
	if math.Abs(float64(rc.Ops-gt.Ops)) > 0.8*float64(gt.Ops) {
		t.Errorf("op counts wildly different: truth %d, reconstructed %d", gt.Ops, rc.Ops)
	}
	if b.Reconstructed.Days != cfg.Days {
		t.Errorf("days = %d", b.Reconstructed.Days)
	}
}
