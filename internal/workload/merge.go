package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"ffsage/internal/trace"
)

// Merge integrates short-lived file activity from the NFS trace into a
// snapshot-derived workload, following Section 3.1 of the paper:
//
//   - for each day of the snapshot workload, one trace day is selected
//     at random;
//   - the trace day's directories are matched to the cylinder groups
//     with the most changes that day (busiest trace directory → busiest
//     group);
//   - each directory's operations are time-shifted so they coincide
//     with the peak of activity in the group they join.
//
// Short-lived files receive synthetic negative IDs so they can never
// collide with snapshot-derived inode numbers. The result is a new
// workload; the input is not modified.
func Merge(base *trace.Workload, traceDays []trace.TraceDay, numCg int, rng *rand.Rand) (*trace.Workload, error) {
	if len(traceDays) == 0 {
		return nil, fmt.Errorf("workload: no trace days to merge")
	}
	if numCg <= 0 {
		return nil, fmt.Errorf("workload: bad group count %d", numCg)
	}
	// Index base operations by day: count first, then carve per-day
	// views out of one backing slice instead of growing map values.
	counts := make([]int, base.Days)
	for _, op := range base.Ops {
		if op.Day >= 0 && op.Day < base.Days {
			counts[op.Day]++
		}
	}
	byDay := make([][]trace.Op, base.Days)
	backing := make([]trace.Op, 0, len(base.Ops))
	for day, n := range counts {
		start := len(backing)
		backing = backing[:start+n]
		byDay[day] = backing[start:start:len(backing)]
	}
	for _, op := range base.Ops {
		if op.Day >= 0 && op.Day < base.Days {
			byDay[op.Day] = append(byDay[op.Day], op)
		}
	}
	// Draw every day's trace day up front — the draw order (one per day,
	// empty or not) is part of the deterministic rng sequence — so the
	// merged slice can be sized exactly: two ops per short-lived file.
	tds := make([]trace.TraceDay, base.Days)
	extra := 0
	for day := range tds {
		tds[day] = traceDays[rng.Intn(len(traceDays))]
		extra += 2 * len(tds[day].Files)
	}
	merged := make([]trace.Op, len(base.Ops), len(base.Ops)+extra)
	copy(merged, base.Ops)
	nextID := int64(-1)

	type cgAct struct {
		cg      int
		ops     int
		meanSec float64
	}
	acts := make([]cgAct, numCg)
	dirFiles := map[int][]trace.ShortLivedFile{}
	var dirs []int

	for day := 0; day < base.Days; day++ {
		td := tds[day]
		if len(td.Files) == 0 {
			continue
		}
		// Rank the day's groups by operation count; compute each
		// group's mean operation time as its activity peak.
		for cg := range acts {
			acts[cg] = cgAct{cg: cg}
		}
		for _, op := range byDay[day] {
			if op.Cg >= 0 && op.Cg < numCg {
				acts[op.Cg].ops++
				acts[op.Cg].meanSec += op.Sec
			}
		}
		for i := range acts {
			if acts[i].ops > 0 {
				acts[i].meanSec /= float64(acts[i].ops)
			} else {
				acts[i].meanSec = 13 * 3600
			}
		}
		sort.SliceStable(acts, func(i, j int) bool { return acts[i].ops > acts[j].ops })

		// Rank trace directories by their op counts and group their
		// files. The map and rank slice are reused across days.
		clear(dirFiles)
		for _, f := range td.Files {
			dirFiles[f.Dir] = append(dirFiles[f.Dir], f)
		}
		dirs = dirs[:0]
		for d := range dirFiles {
			dirs = append(dirs, d)
		}
		sort.Slice(dirs, func(i, j int) bool {
			if len(dirFiles[dirs[i]]) != len(dirFiles[dirs[j]]) {
				return len(dirFiles[dirs[i]]) > len(dirFiles[dirs[j]])
			}
			return dirs[i] < dirs[j]
		})

		for rank, d := range dirs {
			target := acts[rank%numCg]
			files := dirFiles[d]
			// Time-shift this directory's activity so its mean lands
			// on the target group's activity peak.
			var mean float64
			for _, f := range files {
				mean += f.CreateSec
			}
			mean /= float64(len(files))
			shift := target.meanSec - mean
			for _, f := range files {
				cs := clampSec(f.CreateSec + shift)
				ds := clampSec(f.DeleteSec + shift)
				if ds <= cs {
					// Keep the delete strictly after the create even at
					// the end-of-day clamp; a Sec marginally past
					// midnight only affects ordering, which is what we
					// want.
					ds = cs + 0.5
				}
				id := nextID
				nextID--
				merged = append(merged,
					trace.Op{Day: day, Sec: cs, Kind: trace.OpCreate, ID: id, Cg: target.cg, Size: f.Size, ShortLived: true},
					trace.Op{Day: day, Sec: ds, Kind: trace.OpDelete, ID: id, Cg: target.cg, ShortLived: true},
				)
			}
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Before(merged[j]) })
	return &trace.Workload{Days: base.Days, Ops: merged}, nil
}

func clampSec(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 86399 {
		return 86399
	}
	return s
}
