package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// SizeDist is a truncated log-normal file size distribution — the
// long-standing empirical shape of UNIX file sizes ([Satyanarayanan81],
// [Ousterhout85]): a small median with a heavy tail of large files that
// dominates the bytes written.
type SizeDist struct {
	MedianBytes float64
	Sigma       float64 // log-space standard deviation
	MaxBytes    int64
}

// Validate checks the distribution parameters.
func (d SizeDist) Validate() error {
	if d.MedianBytes <= 0 || d.Sigma <= 0 || d.MaxBytes <= int64(d.MedianBytes) {
		return fmt.Errorf("workload: bad size distribution %+v", d)
	}
	return nil
}

// Sample draws one file size in bytes (≥ 1).
func (d SizeDist) Sample(rng *rand.Rand) int64 {
	v := math.Exp(math.Log(d.MedianBytes) + d.Sigma*rng.NormFloat64())
	if v < 1 {
		v = 1
	}
	if v > float64(d.MaxBytes) {
		v = float64(d.MaxBytes)
	}
	return int64(v)
}

// MeanBytes returns the analytical mean of the untruncated distribution
// (useful for converting byte budgets into expected op counts).
func (d SizeDist) MeanBytes() float64 {
	return d.MedianBytes * math.Exp(d.Sigma*d.Sigma/2)
}

// workdaySec draws a time of day (seconds) biased toward working hours:
// a normal around 14:30 with a 3.5 h spread, folded into [0, 86400).
func workdaySec(rng *rand.Rand) float64 {
	s := 14.5*3600 + rng.NormFloat64()*3.5*3600
	for s < 0 {
		s += 86400
	}
	return math.Mod(s, 86400)
}

// lognormMul draws a day-to-day activity multiplier with median 1.
func lognormMul(rng *rand.Rand, sigma float64) float64 {
	return math.Exp(sigma * rng.NormFloat64())
}
