package workload

import (
	"fmt"
	"math"
	"math/rand"

	"ffsage/internal/trace"
)

// NFSTraceConfig parameterizes the synthetic stand-in for the Network
// Appliance NFS traces [Hitz94][Blackwell95]: multiple traced days of
// same-day create/delete pairs, grouped by directory. The traced system
// is not the source file system — the paper borrowed short-lived
// behaviour from a different server — so its parameters deliberately
// differ from the reference generator's.
type NFSTraceConfig struct {
	Days         int     // number of traced days
	NumDirs      int     // directories observed in the trace
	PairsPerDay  float64 // mean same-day create/delete pairs per day
	MeanLifeSecs float64 // mean lifetime of a short-lived file
	Size         SizeDist
	Seed         int64
}

// DefaultNFSTraceConfig returns a trace shaped like the paper's: a few
// weeks of busy-server days. Pair volume sits below the reference
// system's actual short-lived activity — the traces were taken on a
// different machine — which is one source of the reconstruction error
// Figure 1 measures.
func DefaultNFSTraceConfig(seed int64) NFSTraceConfig {
	return NFSTraceConfig{
		Days:         21,
		NumDirs:      30,
		PairsPerDay:  600,
		MeanLifeSecs: 2 * 3600,
		Size:         SizeDist{MedianBytes: 12 << 10, Sigma: 1.9, MaxBytes: 8 << 20},
		Seed:         seed,
	}
}

// GenerateNFSTrace produces the synthetic trace days.
func GenerateNFSTrace(cfg NFSTraceConfig) ([]trace.TraceDay, error) {
	if cfg.Days <= 0 || cfg.NumDirs <= 0 || cfg.PairsPerDay <= 0 || cfg.MeanLifeSecs <= 0 {
		return nil, fmt.Errorf("workload: bad NFS trace config %+v", cfg)
	}
	if err := cfg.Size.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	days := make([]trace.TraceDay, cfg.Days)
	for d := range days {
		n := int(cfg.PairsPerDay * lognormMul(rng, 0.45))
		files := make([]trace.ShortLivedFile, 0, n)
		for i := 0; i < n; i++ {
			// Directory popularity is Zipf-like: a few build/spool
			// directories dominate.
			dir := int(float64(cfg.NumDirs) * math.Pow(rng.Float64(), 1.6))
			if dir >= cfg.NumDirs {
				dir = cfg.NumDirs - 1
			}
			start := workdaySec(rng)
			end := start + rng.ExpFloat64()*cfg.MeanLifeSecs
			if end > 86399.9 {
				end = 86399.9
			}
			if end <= start {
				end = start + 0.1
			}
			files = append(files, trace.ShortLivedFile{
				Dir:       dir,
				CreateSec: start,
				DeleteSec: end,
				Size:      cfg.Size.Sample(rng),
			})
		}
		days[d] = trace.TraceDay{Files: files}
	}
	return days, nil
}
