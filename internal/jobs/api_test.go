package jobs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"ffsage/internal/queue"
)

// newTestServer starts a Manager on a memory queue behind httptest.
func newTestServer(t *testing.T, opts Options) (*Manager, *httptest.Server) {
	t.Helper()
	if opts.Queue == nil {
		opts.Queue = queue.NewMemory()
	}
	m, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	return m, srv
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestAPISubmitAndResult(t *testing.T) {
	m, srv := newTestServer(t, fastOpts(t.TempDir()))

	resp := postJSON(t, srv.URL+"/jobs", `{"id":"api1","days":4,"seed":42}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var created struct{ ID, State string }
	if err := json.Unmarshal([]byte(body), &created); err != nil {
		t.Fatal(err)
	}
	if created.ID != "api1" || created.State != "pending" {
		t.Fatalf("created %+v", created)
	}

	waitState(t, m.Queue(), "api1", queue.Done)

	resp, err := http.Get(srv.URL + "/jobs/api1")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"state": "done"`) {
		t.Fatalf("status: %d %s", resp.StatusCode, body)
	}

	resp, err = http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"api1"`) {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}

	resp, err = http.Get(srv.URL + "/jobs/api1/result")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, body)
	}
	var res Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("result body: %v\n%s", err, body)
	}
	if res.ID != "api1" || res.Days != 4 {
		t.Fatalf("result %+v", res)
	}

	resp, err = http.Get(srv.URL + "/jobs/api1/events")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"stream":"job.days"`) {
		t.Fatalf("events: %d %s", resp.StatusCode, body)
	}
}

func TestAPISubmitRejections(t *testing.T) {
	_, srv := newTestServer(t, fastOpts(t.TempDir()))

	for _, tc := range []struct {
		name, body string
		wantErr    string
	}{
		{"malformed json", `{not json`, "decoding spec"},
		{"unknown field", `{"days":4,"seed":1,"bogus":true}`, "decoding spec"},
		{"bad bounds", `{"days":-1,"seed":1}`, "days"},
		{"bad fault plan", `{"days":4,"seed":1,"faults":"crash@op:nope"}`, "crash@op:nope"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, srv.URL+"/jobs", tc.body)
			body := readBody(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("%d %s", resp.StatusCode, body)
			}
			if !strings.Contains(body, tc.wantErr) {
				t.Fatalf("error %s does not mention %q", body, tc.wantErr)
			}
		})
	}
}

func TestAPIDuplicateAndShedding(t *testing.T) {
	opts := fastOpts(t.TempDir())
	opts.MaxPending = 1
	m, srv := newTestServer(t, opts)

	// Occupy the only worker — for the whole test, so the job is far
	// longer than it needs: Close interrupts it anyway.
	resp := postJSON(t, srv.URL+"/jobs", `{"id":"busy","days":365,"seed":7}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitState(t, m.Queue(), "busy", queue.Running)

	// Shedding is checked before duplicates, so probe the conflict
	// while the pending slot is still free.
	resp = postJSON(t, srv.URL+"/jobs", `{"id":"busy","days":30,"seed":7}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate id: %d %s", resp.StatusCode, body)
	}

	resp = postJSON(t, srv.URL+"/jobs", `{"id":"waiting","days":4,"seed":7}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}

	resp = postJSON(t, srv.URL+"/jobs", `{"id":"shed","days":4,"seed":7}`)
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over the bound: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestAPIResultForUnresolvedJobs(t *testing.T) {
	opts := fastOpts(t.TempDir())
	m, srv := newTestServer(t, opts)

	resp, err := http.Get(srv.URL + "/jobs/ghost/result")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d %s", resp.StatusCode, body)
	}

	// A job that times out every attempt dead-letters; its result is Gone.
	resp = postJSON(t, srv.URL+"/jobs", `{"id":"doomed","days":400,"seed":7,"timeout_sec":0.001,"max_attempts":1}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitState(t, m.Queue(), "doomed", queue.Dead)
	resp, err = http.Get(srv.URL + "/jobs/doomed/result")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("dead job result: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, CauseTimeout) {
		t.Fatalf("410 body does not carry the typed cause: %s", body)
	}
}

// TestAPISpansAndImage covers the artifact endpoints added with the
// span tracer: /spans serves the persisted span stream, /image streams
// the aged image with honest headers, and both follow /result's state
// semantics (404 while unresolved, 410 once dead).
func TestAPISpansAndImage(t *testing.T) {
	m, srv := newTestServer(t, fastOpts(t.TempDir()))

	resp := postJSON(t, srv.URL+"/jobs", `{"id":"art","days":4,"seed":42}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitState(t, m.Queue(), "art", queue.Done)

	resp, err := http.Get(srv.URL + "/jobs/art/spans")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spans: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("spans Content-Type = %q", ct)
	}
	if !strings.Contains(body, `"header":"spans"`) || !strings.Contains(body, `"span":"replay"`) {
		t.Errorf("span stream incomplete:\n%.400s", body)
	}
	// The served stream is the artifact byte for byte.
	disk, err := os.ReadFile(filepath.Join(m.jobDir("art"), "spans.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if body != string(disk) {
		t.Error("served spans differ from the spans.jsonl artifact")
	}

	resp, err = http.Get(srv.URL + "/jobs/art/image")
	if err != nil {
		t.Fatal(err)
	}
	img := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("image: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("image Content-Type = %q", ct)
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(img)) {
		t.Errorf("Content-Length %s, body %d bytes", cl, len(img))
	}
	wantImg, err := os.ReadFile(filepath.Join(m.jobDir("art"), "image.ffi"))
	if err != nil {
		t.Fatal(err)
	}
	if img != string(wantImg) {
		t.Error("served image differs from the image.ffi artifact")
	}

	for _, ep := range []string{"/jobs/ghost/spans", "/jobs/ghost/image"} {
		resp, err := http.Get(srv.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		if body := readBody(t, resp); resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: %d %s", ep, resp.StatusCode, body)
		}
	}
}

// TestAPIOperationalSurface exercises /healthz, /readyz, /metrics, and
// the request-id middleware against a serving Manager.
func TestAPIOperationalSurface(t *testing.T) {
	opts := fastOpts(t.TempDir())
	m, srv := newTestServer(t, opts)

	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(srv.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
			t.Fatalf("%s: %d %s", ep, resp.StatusCode, body)
		}
		if resp.Header.Get("X-Request-Id") == "" {
			t.Errorf("%s response missing X-Request-Id", ep)
		}
	}

	// A caller-chosen request id is echoed back.
	req, _ := http.NewRequest("GET", srv.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "trace-me-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if got := resp.Header.Get("X-Request-Id"); got != "trace-me-7" {
		t.Errorf("X-Request-Id = %q, want echo", got)
	}

	resp = postJSON(t, srv.URL+"/jobs", `{"id":"opsjob","days":4,"seed":42}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitState(t, m.Queue(), "opsjob", queue.Done)

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE agesrv_jobs_submitted_total counter",
		"agesrv_jobs_submitted_total 1",
		"# TYPE agesrv_queue_depth gauge",
		`agesrv_jobs{state="done"} 1`,
		`agesrv_http_requests_total{path="/jobs",code="201"} 1`,
		"agesrv_http_request_seconds_bucket{path=",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// Every line must parse as exposition format: comment or
	// name{labels} value.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i < 0 || i == len(line)-1 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// Readiness flips once the manager starts draining.
	m.Close()
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after Close: %d %s", resp.StatusCode, body)
	}
	if resp2, err := http.Get(srv.URL + "/healthz"); err == nil {
		if readBody(t, resp2); resp2.StatusCode != http.StatusOK {
			t.Errorf("/healthz after Close: %d", resp2.StatusCode)
		}
	}
}

// TestAPIReadyzReportsWedgedQueue points readiness at the queue's Err:
// a WAL that can no longer append must turn the daemon unready.
func TestAPIReadyzReportsWedgedQueue(t *testing.T) {
	dir := t.TempDir()
	wal, err := queue.Open(filepath.Join(dir, "queue.wal"))
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts(dir)
	opts.Queue = wal
	_, srv := newTestServer(t, opts)

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if readBody(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy WAL: %d", resp.StatusCode)
	}

	// Close the log file out from under the queue: the next append
	// fails and wedges it.
	wal.Close()
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("wedged WAL: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "queue unwritable") {
		t.Errorf("503 body %q does not name the queue", body)
	}
}

// TestRouteLabelBoundsCardinality pins the label normalizer: path
// parameters collapse, junk collapses to "other".
func TestRouteLabelBoundsCardinality(t *testing.T) {
	for path, want := range map[string]string{
		"/jobs":                     "/jobs",
		"/jobs/job-000001":          "/jobs/{id}",
		"/jobs/job-000001/result":   "/jobs/{id}/result",
		"/jobs/x/spans":             "/jobs/{id}/spans",
		"/jobs/x/image":             "/jobs/{id}/image",
		"/jobs/x/events":            "/jobs/{id}/events",
		"/jobs/x/steal":             "other",
		"/metrics":                  "/metrics",
		"/healthz":                  "/healthz",
		"/readyz":                   "/readyz",
		"/debug/pprof/heap":         "/debug/pprof",
		"/totally/random/path":      "other",
		"/jobs/../../../etc/passwd": "other",
	} {
		r := httptest.NewRequest("GET", "http://x"+path, nil)
		if got := routeLabel(r); got != want {
			t.Errorf("routeLabel(%s) = %q, want %q", path, got, want)
		}
	}
}

// TestAPIEventsFollowStreamsLive attaches a follow-mode client to a
// running job and requires at least one per-day progress event to
// arrive before the job resolves, then the stream to terminate cleanly.
func TestAPIEventsFollowStreamsLive(t *testing.T) {
	m, srv := newTestServer(t, fastOpts(t.TempDir()))

	resp := postJSON(t, srv.URL+"/jobs", `{"id":"live","days":60,"seed":7}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitState(t, m.Queue(), "live", queue.Running)

	client := &http.Client{Timeout: 120 * time.Second}
	resp, err := client.Get(srv.URL + "/jobs/live/events?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp) // blocks until the job resolves
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"stream":"job.progress"`) {
		t.Fatalf("follow stream carried no progress events:\n%.400s", body)
	}
	rec, _ := m.Queue().Get("live")
	if rec.State != queue.Done {
		t.Fatalf("job finished %v after the stream closed", rec.State)
	}
}
