package jobs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ffsage/internal/queue"
)

// newTestServer starts a Manager on a memory queue behind httptest.
func newTestServer(t *testing.T, opts Options) (*Manager, *httptest.Server) {
	t.Helper()
	if opts.Queue == nil {
		opts.Queue = queue.NewMemory()
	}
	m, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	return m, srv
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestAPISubmitAndResult(t *testing.T) {
	m, srv := newTestServer(t, fastOpts(t.TempDir()))

	resp := postJSON(t, srv.URL+"/jobs", `{"id":"api1","days":4,"seed":42}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var created struct{ ID, State string }
	if err := json.Unmarshal([]byte(body), &created); err != nil {
		t.Fatal(err)
	}
	if created.ID != "api1" || created.State != "pending" {
		t.Fatalf("created %+v", created)
	}

	waitState(t, m.Queue(), "api1", queue.Done)

	resp, err := http.Get(srv.URL + "/jobs/api1")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"state": "done"`) {
		t.Fatalf("status: %d %s", resp.StatusCode, body)
	}

	resp, err = http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"api1"`) {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}

	resp, err = http.Get(srv.URL + "/jobs/api1/result")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, body)
	}
	var res Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("result body: %v\n%s", err, body)
	}
	if res.ID != "api1" || res.Days != 4 {
		t.Fatalf("result %+v", res)
	}

	resp, err = http.Get(srv.URL + "/jobs/api1/events")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"stream":"job.days"`) {
		t.Fatalf("events: %d %s", resp.StatusCode, body)
	}
}

func TestAPISubmitRejections(t *testing.T) {
	_, srv := newTestServer(t, fastOpts(t.TempDir()))

	for _, tc := range []struct {
		name, body string
		wantErr    string
	}{
		{"malformed json", `{not json`, "decoding spec"},
		{"unknown field", `{"days":4,"seed":1,"bogus":true}`, "decoding spec"},
		{"bad bounds", `{"days":-1,"seed":1}`, "days"},
		{"bad fault plan", `{"days":4,"seed":1,"faults":"crash@op:nope"}`, "crash@op:nope"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, srv.URL+"/jobs", tc.body)
			body := readBody(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("%d %s", resp.StatusCode, body)
			}
			if !strings.Contains(body, tc.wantErr) {
				t.Fatalf("error %s does not mention %q", body, tc.wantErr)
			}
		})
	}
}

func TestAPIDuplicateAndShedding(t *testing.T) {
	opts := fastOpts(t.TempDir())
	opts.MaxPending = 1
	m, srv := newTestServer(t, opts)

	// Occupy the only worker — for the whole test, so the job is far
	// longer than it needs: Close interrupts it anyway.
	resp := postJSON(t, srv.URL+"/jobs", `{"id":"busy","days":365,"seed":7}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitState(t, m.Queue(), "busy", queue.Running)

	// Shedding is checked before duplicates, so probe the conflict
	// while the pending slot is still free.
	resp = postJSON(t, srv.URL+"/jobs", `{"id":"busy","days":30,"seed":7}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate id: %d %s", resp.StatusCode, body)
	}

	resp = postJSON(t, srv.URL+"/jobs", `{"id":"waiting","days":4,"seed":7}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}

	resp = postJSON(t, srv.URL+"/jobs", `{"id":"shed","days":4,"seed":7}`)
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over the bound: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestAPIResultForUnresolvedJobs(t *testing.T) {
	opts := fastOpts(t.TempDir())
	m, srv := newTestServer(t, opts)

	resp, err := http.Get(srv.URL + "/jobs/ghost/result")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d %s", resp.StatusCode, body)
	}

	// A job that times out every attempt dead-letters; its result is Gone.
	resp = postJSON(t, srv.URL+"/jobs", `{"id":"doomed","days":400,"seed":7,"timeout_sec":0.001,"max_attempts":1}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitState(t, m.Queue(), "doomed", queue.Dead)
	resp, err = http.Get(srv.URL + "/jobs/doomed/result")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("dead job result: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, CauseTimeout) {
		t.Fatalf("410 body does not carry the typed cause: %s", body)
	}
}

// TestAPIEventsFollowStreamsLive attaches a follow-mode client to a
// running job and requires at least one per-day progress event to
// arrive before the job resolves, then the stream to terminate cleanly.
func TestAPIEventsFollowStreamsLive(t *testing.T) {
	m, srv := newTestServer(t, fastOpts(t.TempDir()))

	resp := postJSON(t, srv.URL+"/jobs", `{"id":"live","days":60,"seed":7}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitState(t, m.Queue(), "live", queue.Running)

	client := &http.Client{Timeout: 120 * time.Second}
	resp, err := client.Get(srv.URL + "/jobs/live/events?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp) // blocks until the job resolves
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"stream":"job.progress"`) {
		t.Fatalf("follow stream carried no progress events:\n%.400s", body)
	}
	rec, _ := m.Queue().Get("live")
	if rec.State != queue.Done {
		t.Fatalf("job finished %v after the stream closed", rec.State)
	}
}
