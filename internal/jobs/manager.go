package jobs

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ffsage/internal/aging"
	"ffsage/internal/faults"
	"ffsage/internal/obs"
	"ffsage/internal/queue"
	"ffsage/internal/runner"
	"ffsage/internal/trace"
)

// Failure-cause prefixes. A dead-lettered job's Cause always starts
// with one of these, so operators (and tests) can classify failures
// without parsing prose.
const (
	// CauseSpec marks a job whose stored spec no longer validates — a
	// deterministic failure no retry can fix.
	CauseSpec = "spec"
	// CauseTimeout marks attempts that exceeded the spec's timeout_sec.
	CauseTimeout = "timeout"
	// CauseReplay marks a hard replay error (corrupt checkpoint image,
	// inconsistent file system) — also deterministic.
	CauseReplay = "replay"
	// CauseArtifacts marks a failure writing result artifacts —
	// environmental (disk full, permissions) and therefore retried.
	CauseArtifacts = "artifacts"
)

// ErrBusy is returned by Submit when the pending queue is at its bound;
// the HTTP layer translates it to 429 + Retry-After.
var ErrBusy = errors.New("jobs: queue full, retry later")

// Options configure a Manager. The zero value of every field has a
// usable default except Dir, which is required.
type Options struct {
	// Dir is the daemon state root: Dir/queue.wal plus one
	// Dir/jobs/<id>/ directory per job (checkpoint and artifacts).
	Dir string
	// Queue overrides the default WAL queue at Dir/queue.wal; tests
	// pass queue.NewMemory().
	Queue queue.Queue
	// Workers bounds concurrently running jobs (default 2).
	Workers int
	// MaxPending is the load-shedding bound on queued jobs (default 64).
	MaxPending int
	// BackoffBase and BackoffMax shape the retry schedule (defaults
	// 50ms and 2s; see Backoff).
	BackoffBase, BackoffMax time.Duration
	// Poll is the dispatcher's idle wakeup interval (default 250ms);
	// submissions and retries wake it immediately.
	Poll time.Duration
	// OnCrash is invoked when a job's fault plan simulates a process
	// crash. The job is left Running and untouched in the queue —
	// exactly the durable state a real kill at that instant would leave
	// — so the caller decides whether to die for real (cmd/agesrv
	// exits) or to hand the state directory to a fresh Manager (the
	// crash tests).
	OnCrash func(id string, c *faults.Crash)
	// Logf receives operational log lines (default: discarded).
	Logf func(format string, args ...any)
	// Ops receives wall-clock operational telemetry: lifecycle counters
	// (submitted/shed/retried/dead/completed/recovered jobs) that the
	// daemon's /metrics endpoint exposes. Defaults to obs.Ops(), the
	// process-wide operational registry; tests pass a fresh one. This
	// registry is deliberately unreachable from checkpoint and artifact
	// paths — ffsvet's snapshotpure analyzer enforces the split.
	Ops *obs.Registry
}

// Manager owns the daemon's job lifecycle: it recovers and resumes
// in-flight jobs at startup, dispatches pending jobs to a bounded
// runner pool, and applies the retry/dead-letter policy. Construct
// with Open, stop with Close.
type Manager struct {
	opts Options
	q    queue.Queue
	dir  string
	ops  *obs.Registry

	ctx    context.Context
	cancel context.CancelFunc
	pool   *runner.Group
	slots  chan struct{}
	wake   chan struct{}

	resumeDone   chan struct{}
	dispatchDone chan struct{}

	liveMu sync.Mutex
	live   map[string]*obs.Registry

	reqID atomic.Int64 // HTTP middleware's request-id generator

	closeOnce sync.Once
	closeErr  error
}

// Open starts a Manager over the state in opts.Dir. Jobs the previous
// process left Running are re-dispatched first, as resumptions: they
// continue from their latest checkpoint, never re-fire their fault
// plan, and are acknowledged exactly once.
func Open(opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("jobs: Options.Dir is required")
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.MaxPending <= 0 {
		opts.MaxPending = 64
	}
	if opts.Poll <= 0 {
		opts.Poll = 250 * time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Ops == nil {
		opts.Ops = obs.Ops()
	}
	if err := os.MkdirAll(filepath.Join(opts.Dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("jobs: state dir: %w", err)
	}
	q := opts.Queue
	if q == nil {
		var err error
		q, err = queue.Open(filepath.Join(opts.Dir, "queue.wal"))
		if err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:         opts,
		q:            q,
		dir:          opts.Dir,
		ops:          opts.Ops,
		ctx:          ctx,
		cancel:       cancel,
		pool:         runner.NewWithWorkers(ctx, opts.Workers),
		slots:        make(chan struct{}, opts.Workers),
		wake:         make(chan struct{}, 1),
		resumeDone:   make(chan struct{}),
		dispatchDone: make(chan struct{}),
		live:         map[string]*obs.Registry{},
	}

	// Recovery: the Running records are exactly the jobs the previous
	// process held when it died. Dispatch them before any pending work.
	resume := q.Running()
	if n := len(resume); n > 0 {
		m.opts.Logf("jobs: recovering %d in-flight job(s)", n)
		m.ops.Counter("agesrv_jobs_recovered_total").Add(int64(n))
	}
	go func() {
		defer close(m.resumeDone)
		for _, rec := range resume {
			if !m.acquireSlot() {
				return
			}
			m.spawn(rec, true)
		}
	}()
	go m.dispatch()
	return m, nil
}

// Queue exposes the underlying queue for read-only inspection (the
// HTTP layer's Get/List).
func (m *Manager) Queue() queue.Queue { return m.q }

// Submit validates and enqueues one job, returning its ID. It applies
// load shedding (ErrBusy) before touching the queue; duplicate IDs
// surface as queue.ErrExists.
func (m *Manager) Submit(sp *Spec) (string, error) {
	if err := sp.Normalize(); err != nil {
		return "", err
	}
	if m.q.Depth() >= m.opts.MaxPending {
		m.ops.Counter("agesrv_jobs_shed_total").Inc()
		return "", fmt.Errorf("%w (%d pending)", ErrBusy, m.q.Depth())
	}
	if sp.ID == "" {
		sp.ID = m.freshID()
	}
	b, err := json.Marshal(sp)
	if err != nil {
		return "", fmt.Errorf("jobs: encoding spec: %w", err)
	}
	if err := m.q.Enqueue(sp.ID, b); err != nil {
		return "", err
	}
	m.ops.Counter("agesrv_jobs_submitted_total").Inc()
	m.wakeUp()
	return sp.ID, nil
}

// freshID returns the lowest job-NNNNNN not present in the queue.
func (m *Manager) freshID() string {
	used := map[string]bool{}
	for _, r := range m.q.List() {
		used[r.ID] = true
	}
	//lint:ignore ffsvet/ctxloop bounded: at most len(used)+1 iterations before an unused ID is found
	for i := 1; ; i++ {
		id := fmt.Sprintf("job-%06d", i)
		if !used[id] {
			return id
		}
	}
}

// Close drains the Manager gracefully: dispatching stops, running jobs
// are interrupted and write a final checkpoint at their exact operation
// cursor, and their queue records stay Running — the durable statement
// that a restart must resume them. Pending and dead jobs persist as-is.
func (m *Manager) Close() error {
	m.closeOnce.Do(func() {
		m.cancel()
		<-m.dispatchDone
		<-m.resumeDone
		// Workers observe the cancelled context at the next operation
		// boundary, checkpoint, and return without resolving their job.
		if _, err := m.pool.Wait(); err != nil && !errors.Is(err, context.Canceled) {
			m.opts.Logf("jobs: draining pool: %v", err)
		}
		m.closeErr = m.q.Close()
	})
	return m.closeErr
}

// wakeUp nudges the dispatcher without blocking.
func (m *Manager) wakeUp() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// acquireSlot blocks until a worker slot frees up; false on shutdown.
func (m *Manager) acquireSlot() bool {
	select {
	case m.slots <- struct{}{}:
		return true
	case <-m.ctx.Done():
		return false
	}
}

// spawn hands one claimed record to the pool. The worker owns the slot
// and always returns nil: job failures are queue-state transitions, not
// pool errors, so one bad job never cancels its siblings.
func (m *Manager) spawn(rec queue.Record, resumed bool) {
	m.pool.Go("job:"+rec.ID, func(ctx context.Context) error {
		defer func() { <-m.slots }()
		m.run(ctx, rec, resumed)
		return nil
	})
}

// dispatch is the Manager's main loop: claim pending jobs whenever a
// worker slot is free, park otherwise.
func (m *Manager) dispatch() {
	defer close(m.dispatchDone)
	select {
	case <-m.resumeDone:
	case <-m.ctx.Done():
		return
	}
	for {
		for m.ctx.Err() == nil {
			if !m.acquireSlot() {
				return
			}
			rec, ok, err := m.q.Dequeue()
			if !ok || err != nil {
				<-m.slots
				if err != nil {
					m.opts.Logf("jobs: dequeue: %v", err)
				}
				break
			}
			m.spawn(rec, false)
		}
		select {
		case <-m.ctx.Done():
			return
		case <-m.wake:
		case <-time.After(m.opts.Poll):
		}
	}
}

// run executes one delivery of one job and applies the outcome policy.
func (m *Manager) run(ctx context.Context, rec queue.Record, resumed bool) {
	defer m.dropLive(rec.ID)
	var sp Spec
	if err := json.Unmarshal(rec.Spec, &sp); err != nil {
		m.bury(rec.ID, fmt.Sprintf("%s: stored spec undecodable: %v", CauseSpec, err))
		return
	}
	if err := sp.Normalize(); err != nil {
		m.bury(rec.ID, fmt.Sprintf("%s: %v", CauseSpec, err))
		return
	}
	crash, err := m.execute(ctx, rec, &sp, resumed)
	switch {
	case crash != nil:
		// Simulated process death: leave every piece of durable state
		// exactly as it is — the job stays Running in the WAL, its
		// latest checkpoint stays on disk — and tell the owner. From
		// here on, this state directory is indistinguishable from one a
		// real SIGKILL left behind.
		m.opts.Logf("jobs: %s: simulated crash: %v", rec.ID, crash)
		if m.opts.OnCrash != nil {
			m.opts.OnCrash(rec.ID, crash)
		}
	case err == nil:
		m.ops.Counter("agesrv_jobs_completed_total").Inc()
		if aerr := m.q.Ack(rec.ID); aerr != nil {
			m.opts.Logf("jobs: acking %s: %v", rec.ID, aerr)
		}
	case errors.Is(err, aging.ErrInterrupted) && m.ctx.Err() != nil:
		// Graceful shutdown: the replay already checkpointed at its
		// exact cursor. Leaving the record Running is what makes the
		// next Open resume it.
		m.opts.Logf("jobs: %s: interrupted for shutdown at checkpoint", rec.ID)
	case errors.Is(err, aging.ErrInterrupted):
		// Per-job timeout. Progress up to the final checkpoint is kept:
		// the retry resumes rather than starting over.
		m.retryOrBury(rec, &sp,
			fmt.Sprintf("%s: attempt %d exceeded %gs", CauseTimeout, rec.Attempt, sp.TimeoutSec))
	case errors.Is(err, errArtifacts):
		// Environmental write failure; worth retrying.
		m.retryOrBury(rec, &sp, fmt.Sprintf("%s: attempt %d: %v", CauseArtifacts, rec.Attempt, err))
	default:
		// Deterministic replay failure: retrying reproduces it.
		m.bury(rec.ID, fmt.Sprintf("%s: %v", CauseReplay, err))
	}
}

// retryOrBury applies the bounded-retry policy after a failed attempt.
func (m *Manager) retryOrBury(rec queue.Record, sp *Spec, cause string) {
	if rec.Attempt >= sp.MaxAttempts {
		m.bury(rec.ID, cause+"; retries exhausted")
		return
	}
	d := Backoff(rec.ID, rec.Attempt, m.opts.BackoffBase, m.opts.BackoffMax)
	m.opts.Logf("jobs: %s: %s; retrying in %v", rec.ID, cause, d)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-m.ctx.Done():
		// Shutdown mid-backoff: stay Running; the restart resumes from
		// the checkpoint immediately, which strictly beats re-waiting.
		return
	case <-t.C:
	}
	if err := m.q.Nack(rec.ID, cause); err != nil {
		m.opts.Logf("jobs: nacking %s: %v", rec.ID, err)
		return
	}
	m.ops.Counter("agesrv_jobs_retried_total").Inc()
	m.wakeUp()
}

// bury dead-letters a job with its typed cause.
func (m *Manager) bury(id, cause string) {
	m.opts.Logf("jobs: burying %s: %s", id, cause)
	m.ops.Counter("agesrv_jobs_dead_total").Inc()
	if err := m.q.Bury(id, cause); err != nil {
		m.opts.Logf("jobs: burying %s: %v", id, err)
	}
}

// errArtifacts tags artifact-write failures for the retry policy.
var errArtifacts = errors.New("jobs: writing artifacts")

// execute runs one attempt: rebuild inputs, resume from the latest
// checkpoint if one exists, replay, and on success persist artifacts.
// A simulated crash is returned separately — it is an outcome, not an
// error to handle.
func (m *Manager) execute(ctx context.Context, rec queue.Record, sp *Spec, resumed bool) (*faults.Crash, error) {
	policy, err := sp.policy()
	if err != nil {
		return nil, err
	}
	wl, err := sp.buildWorkload()
	if err != nil {
		return nil, err
	}
	jdir := m.jobDir(rec.ID)
	if err := os.MkdirAll(jdir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: %v", errArtifacts, err)
	}

	reg := obs.NewRegistry()
	m.setLive(rec.ID, reg)
	sc := reg.Scope("job")
	prog := sc.Tracer("progress")

	jctx := ctx
	if sp.TimeoutSec > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, time.Duration(sp.TimeoutSec*float64(time.Second)))
		defer cancel()
	}

	cp := m.loadCheckpoint(rec.ID)
	opts := aging.Options{
		Ctx:             jctx,
		CheckpointEvery: sp.CheckpointDays,
		Checkpoint:      func(c *trace.Checkpoint) error { return m.saveCheckpoint(rec.ID, c) },
		Obs:             sc,
		Progress: func(day int, score, util float64) {
			prog.Emit(float64(day), "day",
				obs.I("day", int64(day)), obs.F("layout", score), obs.F("util", util))
		},
	}
	// The fault plan belongs to the job's first fresh run only. A
	// resumed or checkpointed run re-firing crash@op would crash-loop
	// forever; ResumeReplay documents the same rule.
	if cp == nil && !resumed && sp.Faults != "" {
		opts.Faults, err = faults.Parse(sp.Faults)
		if err != nil {
			return nil, err
		}
	}

	var res *aging.Result
	if cp != nil {
		res, err = aging.ResumeReplay(policy, wl, cp, opts)
	} else {
		res, err = aging.Replay(sp.params(), policy, wl, opts)
	}
	var crash *faults.Crash
	if errors.As(err, &crash) {
		return crash, nil
	}
	if err != nil {
		return nil, err
	}
	if err := m.writeArtifacts(jdir, sp, res, wl); err != nil {
		return nil, fmt.Errorf("%w: %v", errArtifacts, err)
	}
	return nil, nil
}

// Result is the persisted summary of a completed job (result.json).
// Every field is derived from resume-safe state, so an interrupted and
// resumed job writes byte-identical JSON to an uninterrupted one.
type Result struct {
	ID          string    `json:"id"`
	Policy      string    `json:"policy"`
	Days        int       `json:"days"`
	FinalLayout float64   `json:"final_layout"`
	FinalUtil   float64   `json:"final_util"`
	FileCount   int       `json:"file_count"`
	SkippedOps  int       `json:"skipped_ops"`
	NoSpaceOps  int       `json:"nospace_ops"`
	FaultedOps  int       `json:"faulted_ops"`
	LayoutByDay []float64 `json:"layout_by_day"`
	UtilByDay   []float64 `json:"util_by_day"`
	ImageBytes  int       `json:"image_bytes"`
	ImageSHA256 string    `json:"image_sha256"`
}

// writeArtifacts persists a finished job: the aged image, the
// deterministic metrics, events, and span snapshots (aging.PublishResult
// into a fresh registry — the resume-safe view), and last the result.json
// summary, whose presence marks the artifact set complete. All writes
// are atomic renames, and the whole set is rewritten identically if the
// process dies between writing artifacts and acking the job.
func (m *Manager) writeArtifacts(jdir string, sp *Spec, res *aging.Result, wl *trace.Workload) error {
	areg := obs.NewRegistry()
	aging.PublishResult(areg.Scope("job"), res, wl)
	var ev, met, sps, img bytes.Buffer
	if err := areg.WriteEvents(&ev); err != nil {
		return err
	}
	if err := areg.WriteMetrics(&met); err != nil {
		return err
	}
	if err := areg.WriteSpans(&sps); err != nil {
		return err
	}
	if err := res.Fs.SaveImage(&img); err != nil {
		return err
	}
	sum := sha256.Sum256(img.Bytes())
	out := Result{
		ID:          sp.ID,
		Policy:      sp.Policy,
		Days:        wl.Days,
		FinalLayout: res.LayoutByDay.FinalOr(0),
		FinalUtil:   res.UtilByDay.FinalOr(0),
		FileCount:   res.Fs.FileCount(),
		SkippedOps:  res.SkippedOps,
		NoSpaceOps:  res.NoSpaceOps,
		FaultedOps:  res.FaultedOps,
		LayoutByDay: res.LayoutByDay.Values(),
		UtilByDay:   res.UtilByDay.Values(),
		ImageBytes:  img.Len(),
		ImageSHA256: hex.EncodeToString(sum[:]),
	}
	rj, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	rj = append(rj, '\n')
	for _, f := range []struct {
		name string
		data []byte
	}{
		{"image.ffi", img.Bytes()},
		{"events.jsonl", ev.Bytes()},
		{"metrics.txt", met.Bytes()},
		{"spans.jsonl", sps.Bytes()},
		{"result.json", rj},
	} {
		if err := writeAtomic(filepath.Join(jdir, f.name), f.data); err != nil {
			return err
		}
	}
	return nil
}

// jobDir returns the job's state directory (IDs are validated to be
// single safe path components).
func (m *Manager) jobDir(id string) string { return filepath.Join(m.dir, "jobs", id) }

// checkpointPath is where a job's latest checkpoint lives.
func (m *Manager) checkpointPath(id string) string {
	return filepath.Join(m.jobDir(id), "checkpoint.ffc")
}

// saveCheckpoint atomically replaces the job's checkpoint file. Because
// the write is tmp+fsync+rename, a kill at any instant leaves either
// the old or the new checkpoint — never a torn one.
func (m *Manager) saveCheckpoint(id string, cp *trace.Checkpoint) error {
	var buf bytes.Buffer
	if err := trace.WriteCheckpoint(&buf, cp); err != nil {
		return err
	}
	return writeAtomic(m.checkpointPath(id), buf.Bytes())
}

// loadCheckpoint returns the job's latest checkpoint, or nil when there
// is none or it does not decode (a corrupt checkpoint degrades the job
// to a fresh run — slower, never wrong).
func (m *Manager) loadCheckpoint(id string) *trace.Checkpoint {
	data, err := os.ReadFile(m.checkpointPath(id))
	if err != nil {
		return nil
	}
	cp, err := trace.ReadCheckpoint(bytes.NewReader(data))
	if err != nil {
		m.opts.Logf("jobs: %s: checkpoint unreadable, restarting from scratch: %v", id, err)
		return nil
	}
	return cp
}

// writeAtomic writes data to path via a same-directory temp file,
// fsync, and rename.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// setLive registers a running job's live registry for the event API.
func (m *Manager) setLive(id string, reg *obs.Registry) {
	m.liveMu.Lock()
	m.live[id] = reg
	m.liveMu.Unlock()
}

// dropLive forgets a job's live registry once its delivery ends.
func (m *Manager) dropLive(id string) {
	m.liveMu.Lock()
	delete(m.live, id)
	m.liveMu.Unlock()
}

// liveRegistry returns the live registry of a running job, if any.
func (m *Manager) liveRegistry(id string) *obs.Registry {
	m.liveMu.Lock()
	defer m.liveMu.Unlock()
	return m.live[id]
}
