package jobs

import (
	"hash/fnv"
	"math/rand"
	"time"
)

// Backoff returns the delay before job id's next delivery after its
// attempt-th failed one: exponential in the attempt (base·2^(attempt-1)
// capped at max) with jitter drawn from a generator seeded on the job
// ID and attempt. The jitter decorrelates a herd of jobs failing
// together without sacrificing reproducibility — the same job retries
// on the same schedule in every run of a test, which is what lets the
// retry tests assert timing-adjacent behavior without flaking.
func Backoff(id string, attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if max < base {
		max = base
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Seed on (id, attempt) so the sequence of delays for one job is
	// fixed but differs between jobs.
	h := fnv.New64a()
	h.Write([]byte(id))
	seed := int64(h.Sum64() ^ uint64(attempt)*0x9e3779b97f4a7c15)
	rng := rand.New(rand.NewSource(seed))
	// Equal-jitter: [d/2, d]. Keeps a floor (retries are never
	// immediate) while spreading the herd across half the window.
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}
