package jobs

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ffsage/internal/obs"
	"ffsage/internal/queue"
)

// fastOpts returns Manager options tuned for tests: tight polling and
// near-zero backoff so retries and dispatch latency do not dominate.
// Each test gets a private operational registry so assertions on
// lifecycle counters never see another test's traffic.
func fastOpts(dir string) Options {
	return Options{
		Dir:         dir,
		Workers:     1,
		Poll:        2 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Ops:         obs.NewRegistry(),
	}
}

// testSpec is a job small enough to age in well under a second.
func testSpec(id string, days int) *Spec {
	return &Spec{ID: id, Days: days, Seed: 42}
}

// waitState polls until the job reaches want. An unexpected dead-letter
// fails immediately with its cause rather than timing out.
func waitState(t *testing.T, q queue.Queue, id string, want queue.State) queue.Record {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		rec, ok := q.Get(id)
		if ok && rec.State == want {
			return rec
		}
		if ok && want != queue.Dead && rec.State == queue.Dead {
			t.Fatalf("%s dead-lettered: %s", id, rec.Cause)
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s to reach %v (now %+v, present=%v)", id, want, rec, ok)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// artifactNames is the complete artifact set of a Done job.
var artifactNames = [...]string{"result.json", "events.jsonl", "metrics.txt", "spans.jsonl", "image.ffi"}

// readArtifacts returns the job's artifact files by name.
func readArtifacts(t *testing.T, dir, id string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range artifactNames {
		data, err := os.ReadFile(filepath.Join(dir, "jobs", id, name))
		if err != nil {
			t.Fatalf("artifact %s: %v", name, err)
		}
		out[name] = data
	}
	return out
}

func TestJobRunsToCompletion(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts(dir)
	opts.Queue = queue.NewMemory()
	m, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	id, err := m.Submit(testSpec("", 4))
	if err != nil {
		t.Fatal(err)
	}
	if id != "job-000001" {
		t.Fatalf("assigned id %q", id)
	}
	rec := waitState(t, m.Queue(), id, queue.Done)
	if rec.Attempt != 1 {
		t.Fatalf("done after %d attempts, want 1", rec.Attempt)
	}

	art := readArtifacts(t, dir, id)
	var res Result
	if err := json.Unmarshal(art["result.json"], &res); err != nil {
		t.Fatalf("result.json: %v", err)
	}
	if res.ID != id || res.Days != 4 || len(res.LayoutByDay) != 4 {
		t.Fatalf("result %+v", res)
	}
	if res.FinalLayout <= 0 || res.FinalUtil <= 0 || res.FileCount <= 0 {
		t.Fatalf("implausible result %+v", res)
	}
	if res.ImageBytes != len(art["image.ffi"]) {
		t.Fatalf("image is %d bytes, result says %d", len(art["image.ffi"]), res.ImageBytes)
	}
	if !strings.Contains(string(art["events.jsonl"]), `"stream":"job.days"`) {
		t.Error("events.jsonl missing the per-day stream")
	}
	if !strings.Contains(string(art["metrics.txt"]), "counter job.days 4") {
		t.Errorf("metrics.txt missing the days counter:\n%s", art["metrics.txt"])
	}

	// Exactly-once at the API boundary: the same ID cannot be
	// resubmitted and run twice.
	if _, err := m.Submit(testSpec(id, 4)); !errors.Is(err, queue.ErrExists) {
		t.Fatalf("resubmitting a done id: %v", err)
	}
}

func TestUndecodableSpecIsDeadLettered(t *testing.T) {
	q := queue.NewMemory()
	if err := q.Enqueue("broken", []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	opts := fastOpts(t.TempDir())
	opts.Queue = q
	m, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	rec := waitState(t, q, "broken", queue.Dead)
	if !strings.HasPrefix(rec.Cause, CauseSpec+":") {
		t.Fatalf("cause %q, want %s prefix", rec.Cause, CauseSpec)
	}
}

// TestTimeoutRetriesThenDeadLetters: a timeout every attempt exhausts
// the bounded retries and dead-letters the job with a typed cause —
// and every attempt left a checkpoint, so each retry resumed rather
// than starting over.
func TestTimeoutRetriesThenDeadLetters(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts(dir)
	opts.Queue = queue.NewMemory()
	m, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// 400 days is far more replay than even a grossly late 1ms timer
	// allows, so every attempt reliably times out mid-run.
	sp := testSpec("t1", 400)
	sp.TimeoutSec = 0.001
	sp.MaxAttempts = 3
	if _, err := m.Submit(sp); err != nil {
		t.Fatal(err)
	}
	rec := waitState(t, m.Queue(), "t1", queue.Dead)
	if rec.Attempt != 3 {
		t.Fatalf("dead after %d attempts, want 3", rec.Attempt)
	}
	if !strings.HasPrefix(rec.Cause, CauseTimeout+":") || !strings.Contains(rec.Cause, "retries exhausted") {
		t.Fatalf("cause %q", rec.Cause)
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs", "t1", "checkpoint.ffc")); err != nil {
		t.Fatalf("timed-out attempts left no checkpoint: %v", err)
	}
}

func TestSubmitShedsLoadAtBound(t *testing.T) {
	opts := fastOpts(t.TempDir())
	opts.Queue = queue.NewMemory()
	opts.MaxPending = 1
	m, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if _, err := m.Submit(testSpec("run", 12)); err != nil {
		t.Fatal(err)
	}
	waitState(t, m.Queue(), "run", queue.Running) // occupies the only worker
	if _, err := m.Submit(testSpec("wait", 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(testSpec("shed", 4)); !errors.Is(err, ErrBusy) {
		t.Fatalf("submit over the bound: %v", err)
	}
}

// TestGracefulShutdownResumesByteIdentical is the SIGTERM contract:
// Close interrupts the running job at an operation boundary with a
// final checkpoint and leaves it Running; a fresh Manager over the same
// state directory resumes it exactly once and writes artifacts
// byte-identical to an uninterrupted run's.
func TestGracefulShutdownResumesByteIdentical(t *testing.T) {
	sp := testSpec("steady", 10)

	// Reference: the same job run without interruption (WAL-backed,
	// like the real daemon).
	refDir := t.TempDir()
	mr, err := Open(fastOpts(refDir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mr.Submit(sp); err != nil {
		t.Fatal(err)
	}
	waitState(t, mr.Queue(), sp.ID, queue.Done)
	ref := readArtifacts(t, refDir, sp.ID)
	if err := mr.Close(); err != nil {
		t.Fatal(err)
	}

	// Interrupted: wait for the first periodic checkpoint, then drain.
	dir := t.TempDir()
	m1, err := Open(fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Submit(sp); err != nil {
		t.Fatal(err)
	}
	cpPath := filepath.Join(dir, "jobs", sp.ID, "checkpoint.ffc")
	for start := time.Now(); ; {
		if _, err := os.Stat(cpPath); err == nil {
			break
		}
		if rec, ok := m1.Queue().Get(sp.ID); ok && rec.State == queue.Done {
			break // outran the shutdown; equivalence below still holds
		}
		if time.Since(start) > 120*time.Second {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(time.Millisecond)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rec := waitState(t, m2.Queue(), sp.ID, queue.Done)
	if rec.Attempt != 1 {
		t.Fatalf("resumed job recorded %d attempts, want 1 (no redelivery)", rec.Attempt)
	}
	got := readArtifacts(t, dir, sp.ID)
	for _, name := range artifactNames {
		if string(got[name]) != string(ref[name]) {
			t.Errorf("%s differs from the uninterrupted run (%d vs %d bytes)",
				name, len(got[name]), len(ref[name]))
		}
	}
}

func TestBackoffDeterministicBoundedGrowing(t *testing.T) {
	base, max := 50*time.Millisecond, 2*time.Second
	var prev time.Duration
	for attempt := 1; attempt <= 8; attempt++ {
		d1 := Backoff("job-x", attempt, base, max)
		d2 := Backoff("job-x", attempt, base, max)
		if d1 != d2 {
			t.Fatalf("attempt %d: nondeterministic backoff %v vs %v", attempt, d1, d2)
		}
		if d1 < base/2 || d1 > max {
			t.Fatalf("attempt %d: %v outside [%v, %v]", attempt, d1, base/2, max)
		}
		if d1 < prev/2 {
			t.Fatalf("attempt %d: %v collapsed below half of previous %v", attempt, d1, prev)
		}
		prev = d1
	}
	if Backoff("job-x", 3, base, max) == Backoff("job-y", 3, base, max) {
		t.Error("different jobs share identical jitter")
	}
}
