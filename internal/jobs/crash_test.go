package jobs

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"ffsage/internal/faults"
	"ffsage/internal/queue"
)

// TestKillRestartDifferential is the daemon's crash-safety acceptance
// test: a job carrying a fault plan dies mid-run at 100 seeded kill
// points (operation-indexed crashes, some with torn final writes, plus
// day-boundary crashes). At the instant of death the worker has touched
// nothing durable — the job is still Running in the WAL and its latest
// checkpoint sits on disk — so handing the state directory to a fresh
// Manager is exactly a process restart after SIGKILL. The restarted
// Manager must resume the job exactly once (no redelivery, no lost
// acknowledgment) and produce all four artifacts byte-identical to an
// uninterrupted run's.
func TestKillRestartDifferential(t *testing.T) {
	const (
		seed    = 1996
		days    = 8
		nPoints = 100
	)
	base := testSpec("victim", days)
	base.Seed = seed
	base.CheckpointDays = 2

	// Reference artifacts: the same job, uninterrupted, through the
	// same daemon pipeline.
	refDir := t.TempDir()
	mr, err := Open(fastOpts(refDir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mr.Submit(base); err != nil {
		t.Fatal(err)
	}
	waitState(t, mr.Queue(), base.ID, queue.Done)
	ref := readArtifacts(t, refDir, base.ID)
	if err := mr.Close(); err != nil {
		t.Fatal(err)
	}

	wl, err := base.buildWorkload()
	if err != nil {
		t.Fatal(err)
	}
	points := faults.CrashPoints(seed, nPoints, len(wl.Ops))
	if len(points) < nPoints {
		t.Fatalf("only %d crash points available over %d ops", len(points), len(wl.Ops))
	}
	if testing.Short() {
		points = points[:10]
	}

	for i, opIdx := range points {
		// Rotate through the crash shapes: plain op crash, torn-write
		// crash, and day-boundary crash.
		spec := fmt.Sprintf("crash@op:%d", opIdx)
		switch i % 4 {
		case 1:
			spec = fmt.Sprintf("tear@op:%d", opIdx)
		case 3:
			// Days are 0-based and the crash fires at the first operation
			// whose day is >= D, so D must stay below the last day.
			spec = fmt.Sprintf("crash@day:%d", 1+opIdx%(days-1))
		}
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			sp := *base
			sp.Faults = spec

			crashed := make(chan *faults.Crash, 1)
			opts1 := fastOpts(dir)
			opts1.OnCrash = func(id string, c *faults.Crash) { crashed <- c }
			m1, err := Open(opts1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m1.Submit(&sp); err != nil {
				t.Fatal(err)
			}
			select {
			case <-crashed:
			case <-time.After(120 * time.Second):
				t.Fatal("fault plan never crashed the job")
			}
			// The dying process leaves: job Running in the WAL, latest
			// checkpoint (if any) on disk, no artifacts, no ack.
			if err := m1.Close(); err != nil {
				t.Fatal(err)
			}
			if rec, ok := queueState(t, dir, sp.ID); !ok || rec.State != queue.Running {
				t.Fatalf("after the kill the job is %+v, want Running", rec)
			}

			// Restart over the same state directory.
			m2, err := Open(fastOpts(dir))
			if err != nil {
				t.Fatal(err)
			}
			defer m2.Close()
			rec := waitState(t, m2.Queue(), sp.ID, queue.Done)
			if rec.Attempt != 1 {
				t.Fatalf("job recorded %d deliveries, want exactly 1 (no requeue after kill)", rec.Attempt)
			}
			got := readArtifacts(t, dir, sp.ID)
			for _, name := range artifactNames {
				if string(got[name]) != string(ref[name]) {
					t.Errorf("%s differs from the uninterrupted run (%d vs %d bytes)",
						name, len(got[name]), len(ref[name]))
				}
			}
		})
	}
}

// queueState reopens the WAL read-only-style to inspect a closed
// manager's durable queue state, then releases it again.
func queueState(t *testing.T, dir, id string) (queue.Record, bool) {
	t.Helper()
	q, err := queue.Open(dir + "/queue.wal")
	if err != nil {
		t.Fatalf("inspecting queue: %v", err)
	}
	defer q.Close()
	return q.Get(id)
}

// TestDoneJobsAreNeverRerun: restarting over a directory whose job
// already completed leaves it untouched — Done records replay from the
// WAL and the dispatcher has nothing to claim.
func TestDoneJobsAreNeverRerun(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	id, err := m1.Submit(testSpec("", 4))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1.Queue(), id, queue.Done)
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	var crashes atomic.Int64
	opts := fastOpts(dir)
	opts.OnCrash = func(string, *faults.Crash) { crashes.Add(1) }
	m2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	time.Sleep(50 * time.Millisecond) // give a buggy dispatcher time to misbehave
	rec, ok := m2.Queue().Get(id)
	if !ok || rec.State != queue.Done || rec.Attempt != 1 {
		t.Fatalf("done job after restart: %+v", rec)
	}
	if n := crashes.Load(); n != 0 {
		t.Fatalf("restart fired %d crashes", n)
	}
}
