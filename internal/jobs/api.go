package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ffsage/internal/obs"
	"ffsage/internal/queue"
)

// maxSpecBody bounds a POST /jobs body; specs are a handful of scalars.
const maxSpecBody = 64 << 10

// followPollInterval paces follow-mode event streaming.
const followPollInterval = 50 * time.Millisecond

// Handler returns the daemon's HTTP API:
//
//	POST /jobs              submit a Spec; 201 {"id","state"} on accept,
//	                        400 invalid spec, 409 duplicate id,
//	                        429 + Retry-After when load shedding
//	GET  /jobs              list all jobs and the queue depth
//	GET  /jobs/{id}         one job's state, attempt count, and cause
//	GET  /jobs/{id}/events  JSONL event stream; ?follow=1 streams per-day
//	                        progress live until the job resolves
//	GET  /jobs/{id}/result  the result.json of a Done job; 404 with the
//	                        current state otherwise, 410 for dead jobs
//	GET  /jobs/{id}/spans   the span-stream JSONL of a Done job; same
//	                        404/410 semantics as /result
//	GET  /jobs/{id}/image   the aged image artifact of a Done job,
//	                        streamed as application/octet-stream with
//	                        Content-Length; same 404/410 semantics
//	GET  /metrics           operational telemetry, Prometheus text format
//	GET  /healthz           liveness: 200 "ok" while the process serves
//	GET  /readyz            readiness: 503 once the manager is shutting
//	                        down or the queue's WAL has wedged
//
// Every response carries an X-Request-Id (echoed from the request or
// generated), and every request is counted and timed per route in the
// Manager's operational registry.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", m.handleSubmit)
	mux.HandleFunc("GET /jobs", m.handleList)
	mux.HandleFunc("GET /jobs/{id}", m.handleGet)
	mux.HandleFunc("GET /jobs/{id}/events", m.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/result", m.handleResult)
	mux.HandleFunc("GET /jobs/{id}/spans", m.handleSpans)
	mux.HandleFunc("GET /jobs/{id}/image", m.handleImage)
	mux.HandleFunc("GET /metrics", m.handleMetrics)
	mux.HandleFunc("GET /healthz", m.handleHealthz)
	mux.HandleFunc("GET /readyz", m.handleReadyz)
	return m.instrument(mux)
}

// httpSecondsBounds buckets request latency from sub-millisecond cache
// hits to multi-second follow streams.
var httpSecondsBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5}

// routeLabel maps a request path to a bounded set of metric labels —
// path parameters collapse to {id} and unknown paths to "other", so a
// scanner probing random URLs cannot blow up series cardinality.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch p {
	case "/jobs", "/metrics", "/healthz", "/readyz":
		return p
	}
	if strings.HasPrefix(p, "/debug/pprof/") {
		return "/debug/pprof"
	}
	if rest, ok := strings.CutPrefix(p, "/jobs/"); ok {
		i := strings.IndexByte(rest, '/')
		if i < 0 {
			return "/jobs/{id}"
		}
		switch sub := rest[i:]; sub {
		case "/events", "/result", "/spans", "/image":
			return "/jobs/{id}" + sub
		}
	}
	return "other"
}

// obsResponseWriter records the status code and body size while
// delegating everything — including Flush, which the follow-mode event
// stream depends on — to the wrapped writer.
type obsResponseWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *obsResponseWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *obsResponseWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *obsResponseWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *obsResponseWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument is the daemon's request middleware: it assigns (or echoes)
// the X-Request-Id, logs one structured line per request, and feeds the
// per-route counter and latency histogram in the operational registry.
func (m *Manager) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = fmt.Sprintf("req-%08d", m.reqID.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		rw := &obsResponseWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rw, r)
		if rw.status == 0 {
			rw.status = http.StatusOK
		}
		dur := time.Since(start).Seconds()
		route := routeLabel(r)
		m.ops.Counter(fmt.Sprintf(`agesrv_http_requests_total{path=%q,code="%d"}`, route, rw.status)).Inc()
		h := m.ops.Histogram(fmt.Sprintf(`agesrv_http_request_seconds{path=%q}`, route), httpSecondsBounds)
		h.Observe(dur, dur)
		m.opts.Logf("http: req_id=%s method=%s path=%s route=%s status=%d bytes=%d dur_ms=%.3f",
			id, r.Method, r.URL.Path, route, rw.status, rw.bytes, dur*1e3)
	})
}

// jobStatus is the wire form of one job's queue record.
type jobStatus struct {
	ID      string          `json:"id"`
	State   string          `json:"state"`
	Attempt int             `json:"attempt"`
	Cause   string          `json:"cause,omitempty"`
	Spec    json.RawMessage `json:"spec,omitempty"`
}

func statusOf(rec queue.Record) jobStatus {
	return jobStatus{
		ID:      rec.ID,
		State:   rec.State.String(),
		Attempt: rec.Attempt,
		Cause:   rec.Cause,
		Spec:    json.RawMessage(rec.Spec),
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The connection is the only place this error could go.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		writeError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	id, err := m.Submit(&sp)
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, queue.ErrExists):
		writeError(w, http.StatusConflict, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSON(w, http.StatusCreated, map[string]string{"id": id, "state": "pending"})
	}
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	recs := m.q.List()
	out := struct {
		Depth int         `json:"depth"`
		Jobs  []jobStatus `json:"jobs"`
	}{Depth: m.q.Depth(), Jobs: make([]jobStatus, 0, len(recs))}
	for _, rec := range recs {
		out.Jobs = append(out.Jobs, statusOf(rec))
	}
	writeJSON(w, http.StatusOK, out)
}

func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	rec, ok := m.q.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, statusOf(rec))
}

func (m *Manager) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := m.q.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	switch rec.State {
	case queue.Done:
		data, err := os.ReadFile(m.jobDir(id) + "/result.json")
		if err != nil {
			writeError(w, http.StatusInternalServerError, "result missing: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case queue.Dead:
		writeJSON(w, http.StatusGone, statusOf(rec))
	default:
		writeJSON(w, http.StatusNotFound, statusOf(rec))
	}
}

// handleSpans serves a Done job's persisted span stream (spans.jsonl)
// with the same state semantics as /result: 404 with the current status
// while unresolved, 410 for dead jobs. Spans are derived from the
// finished replay (aging.PublishResult), so there is no live form — a
// running job has events to follow, not spans.
func (m *Manager) handleSpans(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := m.q.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	switch rec.State {
	case queue.Done:
		data, err := os.ReadFile(filepath.Join(m.jobDir(id), "spans.jsonl"))
		if err != nil {
			writeError(w, http.StatusInternalServerError, "spans missing: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write(data)
	case queue.Dead:
		writeJSON(w, http.StatusGone, statusOf(rec))
	default:
		writeJSON(w, http.StatusNotFound, statusOf(rec))
	}
}

// handleImage streams a Done job's aged image artifact without
// buffering it: the image is the largest artifact by far, so it goes
// out as a copy from the file with an honest Content-Length. State
// semantics match /result.
func (m *Manager) handleImage(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := m.q.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	switch rec.State {
	case queue.Done:
		f, err := os.Open(filepath.Join(m.jobDir(id), "image.ffi"))
		if err != nil {
			writeError(w, http.StatusInternalServerError, "image missing: %v", err)
			return
		}
		defer f.Close()
		fi, err := f.Stat()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "image stat: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
		// Past this point the error has nowhere to go but the connection.
		_, _ = io.Copy(w, f)
	case queue.Dead:
		writeJSON(w, http.StatusGone, statusOf(rec))
	default:
		writeJSON(w, http.StatusNotFound, statusOf(rec))
	}
}

// handleMetrics refreshes the scrape-time gauges (queue depth, jobs by
// state, WAL size and recovery facts) and renders the operational
// registry in Prometheus text exposition format. Only wall-clock
// telemetry lives here; the deterministic per-job registries are served
// by /jobs/{id}/events and friends.
func (m *Manager) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m.ops.Gauge("agesrv_queue_depth").Set(float64(m.q.Depth()))
	var byState [4]int
	for _, rec := range m.q.List() {
		if int(rec.State) < len(byState) {
			byState[rec.State]++
		}
	}
	for st, n := range byState {
		m.ops.Gauge(fmt.Sprintf(`agesrv_jobs{state=%q}`, queue.State(st))).Set(float64(n))
	}
	if wal, ok := m.q.(*queue.WAL); ok {
		if fi, err := os.Stat(wal.Path()); err == nil {
			m.ops.Gauge("agesrv_wal_bytes").Set(float64(fi.Size()))
		}
		m.ops.Gauge("agesrv_wal_recovered_records").Set(float64(wal.Recovered.Records))
		m.ops.Gauge("agesrv_wal_compacted").Set(boolGauge(wal.Recovered.Compacted))
		m.ops.Gauge("agesrv_wal_truncated_tail").Set(boolGauge(wal.Recovered.TruncatedTail))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// The connection is the only place a write error could go.
	_ = m.ops.WritePrometheus(w)
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// handleHealthz is pure liveness: the process is up and serving.
func (m *Manager) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports whether the daemon should receive traffic: 503
// once Close began (jobs are draining, submissions would race shutdown)
// or the queue backend wedged (a WAL append/sync failure means no
// mutation can be made durable).
func (m *Manager) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := m.ctx.Err(); err != nil {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	if err := m.q.Err(); err != nil {
		http.Error(w, fmt.Sprintf("queue unwritable: %v", err), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// liveStreams are the event streams a running job emits: one "day"
// event per completed simulated day on progress, and checkpoint /
// fault / crash / interrupted incidents on run.
var liveStreams = [...]string{"job.progress", "job.run"}

func (m *Manager) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := m.q.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	follow := r.URL.Query().Get("follow") == "1"
	w.Header().Set("Content-Type", "application/x-ndjson")

	// Following an unresolved job streams it live; a resolved one
	// falls through to its persisted artifact.
	if follow && (rec.State == queue.Pending || rec.State == queue.Running) {
		m.followEvents(w, r, id)
		return
	}
	if reg := m.liveRegistry(id); reg != nil {
		// One-shot snapshot of everything buffered so far. The write
		// error has nowhere to go but the connection itself.
		_ = reg.WriteEvents(w)
		return
	}
	// Not running: serve the persisted artifact (empty for jobs that
	// never produced one — pending or dead).
	data, err := os.ReadFile(m.jobDir(id) + "/events.jsonl")
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Write(data)
}

// followEvents streams a job's events incrementally: every new event
// on the live streams is written (and flushed) as it appears, until
// the job resolves, the client goes away, or the daemon shuts down.
// The job may not have started yet — a worker registers its live
// registry only once the replay is set up — so the loop waits through
// pending/starting phases and rebinds if a retry brings a fresh
// registry (whose sequence numbers restart).
func (m *Manager) followEvents(w http.ResponseWriter, r *http.Request, id string) {
	flusher, _ := w.(http.Flusher)
	var reg *obs.Registry
	lastSeq := map[string]int64{}
	emitNew := func() {
		if reg == nil {
			return
		}
		for _, stream := range liveStreams {
			for _, ev := range reg.Tracer(stream).Events() {
				if ev.Seq < lastSeq[stream] {
					continue
				}
				lastSeq[stream] = ev.Seq + 1
				_ = obs.AppendEventJSON(w, stream, ev)
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	t := time.NewTicker(followPollInterval)
	defer t.Stop()
	for {
		if cur := m.liveRegistry(id); cur != nil && cur != reg {
			reg = cur
			clear(lastSeq)
		}
		emitNew()
		rec, ok := m.q.Get(id)
		if !ok || (rec.State != queue.Running && rec.State != queue.Pending) {
			emitNew() // trailing events emitted after the state change
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-m.ctx.Done():
			return
		case <-t.C:
		}
	}
}
