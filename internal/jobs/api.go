package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"ffsage/internal/obs"
	"ffsage/internal/queue"
)

// maxSpecBody bounds a POST /jobs body; specs are a handful of scalars.
const maxSpecBody = 64 << 10

// followPollInterval paces follow-mode event streaming.
const followPollInterval = 50 * time.Millisecond

// Handler returns the daemon's HTTP API:
//
//	POST /jobs              submit a Spec; 201 {"id","state"} on accept,
//	                        400 invalid spec, 409 duplicate id,
//	                        429 + Retry-After when load shedding
//	GET  /jobs              list all jobs and the queue depth
//	GET  /jobs/{id}         one job's state, attempt count, and cause
//	GET  /jobs/{id}/events  JSONL event stream; ?follow=1 streams per-day
//	                        progress live until the job resolves
//	GET  /jobs/{id}/result  the result.json of a Done job; 404 with the
//	                        current state otherwise, 410 for dead jobs
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", m.handleSubmit)
	mux.HandleFunc("GET /jobs", m.handleList)
	mux.HandleFunc("GET /jobs/{id}", m.handleGet)
	mux.HandleFunc("GET /jobs/{id}/events", m.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/result", m.handleResult)
	return mux
}

// jobStatus is the wire form of one job's queue record.
type jobStatus struct {
	ID      string          `json:"id"`
	State   string          `json:"state"`
	Attempt int             `json:"attempt"`
	Cause   string          `json:"cause,omitempty"`
	Spec    json.RawMessage `json:"spec,omitempty"`
}

func statusOf(rec queue.Record) jobStatus {
	return jobStatus{
		ID:      rec.ID,
		State:   rec.State.String(),
		Attempt: rec.Attempt,
		Cause:   rec.Cause,
		Spec:    json.RawMessage(rec.Spec),
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The connection is the only place this error could go.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		writeError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	id, err := m.Submit(&sp)
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, queue.ErrExists):
		writeError(w, http.StatusConflict, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSON(w, http.StatusCreated, map[string]string{"id": id, "state": "pending"})
	}
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	recs := m.q.List()
	out := struct {
		Depth int         `json:"depth"`
		Jobs  []jobStatus `json:"jobs"`
	}{Depth: m.q.Depth(), Jobs: make([]jobStatus, 0, len(recs))}
	for _, rec := range recs {
		out.Jobs = append(out.Jobs, statusOf(rec))
	}
	writeJSON(w, http.StatusOK, out)
}

func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	rec, ok := m.q.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, statusOf(rec))
}

func (m *Manager) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := m.q.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	switch rec.State {
	case queue.Done:
		data, err := os.ReadFile(m.jobDir(id) + "/result.json")
		if err != nil {
			writeError(w, http.StatusInternalServerError, "result missing: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case queue.Dead:
		writeJSON(w, http.StatusGone, statusOf(rec))
	default:
		writeJSON(w, http.StatusNotFound, statusOf(rec))
	}
}

// liveStreams are the event streams a running job emits: one "day"
// event per completed simulated day on progress, and checkpoint /
// fault / crash / interrupted incidents on run.
var liveStreams = [...]string{"job.progress", "job.run"}

func (m *Manager) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := m.q.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	follow := r.URL.Query().Get("follow") == "1"
	w.Header().Set("Content-Type", "application/x-ndjson")

	// Following an unresolved job streams it live; a resolved one
	// falls through to its persisted artifact.
	if follow && (rec.State == queue.Pending || rec.State == queue.Running) {
		m.followEvents(w, r, id)
		return
	}
	if reg := m.liveRegistry(id); reg != nil {
		// One-shot snapshot of everything buffered so far. The write
		// error has nowhere to go but the connection itself.
		_ = reg.WriteEvents(w)
		return
	}
	// Not running: serve the persisted artifact (empty for jobs that
	// never produced one — pending or dead).
	data, err := os.ReadFile(m.jobDir(id) + "/events.jsonl")
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Write(data)
}

// followEvents streams a job's events incrementally: every new event
// on the live streams is written (and flushed) as it appears, until
// the job resolves, the client goes away, or the daemon shuts down.
// The job may not have started yet — a worker registers its live
// registry only once the replay is set up — so the loop waits through
// pending/starting phases and rebinds if a retry brings a fresh
// registry (whose sequence numbers restart).
func (m *Manager) followEvents(w http.ResponseWriter, r *http.Request, id string) {
	flusher, _ := w.(http.Flusher)
	var reg *obs.Registry
	lastSeq := map[string]int64{}
	emitNew := func() {
		if reg == nil {
			return
		}
		for _, stream := range liveStreams {
			for _, ev := range reg.Tracer(stream).Events() {
				if ev.Seq < lastSeq[stream] {
					continue
				}
				lastSeq[stream] = ev.Seq + 1
				_ = obs.AppendEventJSON(w, stream, ev)
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	t := time.NewTicker(followPollInterval)
	defer t.Stop()
	for {
		if cur := m.liveRegistry(id); cur != nil && cur != reg {
			reg = cur
			clear(lastSeq)
		}
		emitNew()
		rec, ok := m.q.Get(id)
		if !ok || (rec.State != queue.Running && rec.State != queue.Pending) {
			emitNew() // trailing events emitted after the state change
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-m.ctx.Done():
			return
		case <-t.C:
		}
	}
}
