// Package jobs is the aging daemon's job layer: it defines the aging
// experiment a client submits (Spec), executes jobs from a durable
// internal/queue on an internal/runner worker pool (Manager), and
// serves the HTTP JSON API (api.go). The layer owns all the policy the
// queue deliberately does not: per-job timeouts, bounded retries with
// seeded-deterministic backoff, dead-lettering with a typed cause,
// load shedding, and — the point of the design — crash recovery that
// resumes in-flight jobs from their latest aging checkpoint and
// produces results byte-identical to an uninterrupted run.
package jobs

import (
	"fmt"

	"ffsage/internal/faults"
	"ffsage/internal/ffs"
	"ffsage/internal/policy"
	"ffsage/internal/trace"
	"ffsage/internal/workload"
)

// Spec describes one aging experiment. Everything a run needs is
// derived deterministically from the spec — the workload from the seed,
// the file system from the geometry — which is what lets a restarted
// daemon rebuild the exact inputs of an interrupted job from the bytes
// in the queue and resume it against its checkpoint.
//
// Zero-valued knobs take the documented defaults (a small 64 MiB /
// 8-group configuration that ages in seconds); paper-scale runs set
// the geometry and churn explicitly.
type Spec struct {
	// ID names the job; the daemon assigns job-NNNNNN when empty.
	// Client-chosen IDs make submission idempotent: re-submitting an
	// existing ID is rejected with 409 rather than running twice.
	ID string `json:"id,omitempty"`
	// Policy is the allocation policy, resolved against the
	// internal/policy registry: "ffs", "ffs+realloc" (the default),
	// "ffs+extent", "ffs+firstfit", "ffs+bestfit", "ssd", ... The
	// legacy spellings "orig"/"original" and "realloc" still work.
	Policy string `json:"policy,omitempty"`
	// Days is the number of simulated days to age (required).
	Days int `json:"days"`
	// Seed drives the workload generator.
	Seed int64 `json:"seed"`

	// NumCg and FsBytes set the simulated file system geometry
	// (defaults 8 groups, 64 MiB).
	NumCg   int   `json:"num_cg,omitempty"`
	FsBytes int64 `json:"fs_bytes,omitempty"`
	// ChurnBytesPerDay, ShortPairsPerDay, and LongMaxBytes scale the
	// workload to the file system (defaults 12 MiB, 60 pairs, 4 MiB).
	ChurnBytesPerDay float64 `json:"churn_bytes_per_day,omitempty"`
	ShortPairsPerDay float64 `json:"short_pairs_per_day,omitempty"`
	LongMaxBytes     int64   `json:"long_max_bytes,omitempty"`

	// CheckpointDays checkpoints the replay every k completed days
	// (default 1; 0 disables periodic checkpoints — a graceful shutdown
	// still writes a final one).
	CheckpointDays int `json:"checkpoint_days,omitempty"`
	// Faults is an internal/faults plan injected into the first fresh
	// run only — resumed and retried runs never re-fire it, so a
	// crash-fault job converges instead of crash-looping.
	Faults string `json:"faults,omitempty"`
	// TimeoutSec bounds one attempt's wall-clock run time (0 = none).
	// A timed-out attempt checkpoints before it stops, so the retry
	// resumes instead of starting over.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// MaxAttempts bounds deliveries before the job is dead-lettered
	// (default 3).
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// Spec bounds: generous engineering limits, not physics. They keep one
// malformed submission from exhausting the daemon.
const (
	maxSpecID      = 64
	maxSpecDays    = 3650
	maxNumCg       = 256
	minFsBytes     = 8 << 20
	maxFsBytes     = 4 << 30
	maxAttemptsCap = 10
)

// Normalize validates sp and fills defaulted fields in place. The error
// is client-facing (it becomes the HTTP 400 body); fault-plan errors
// keep their position-annotated form.
func (sp *Spec) Normalize() error {
	if err := checkID(sp.ID); err != nil {
		return err
	}
	if sp.Policy == "" {
		sp.Policy = "realloc"
	}
	if _, err := sp.policy(); err != nil {
		return err
	}
	if sp.Days <= 0 || sp.Days > maxSpecDays {
		return fmt.Errorf("jobs: days %d outside [1,%d]", sp.Days, maxSpecDays)
	}
	if sp.NumCg == 0 {
		sp.NumCg = 8
	}
	if sp.NumCg < 1 || sp.NumCg > maxNumCg {
		return fmt.Errorf("jobs: num_cg %d outside [1,%d]", sp.NumCg, maxNumCg)
	}
	if sp.FsBytes == 0 {
		sp.FsBytes = 64 << 20
	}
	if sp.FsBytes < minFsBytes || sp.FsBytes > maxFsBytes {
		return fmt.Errorf("jobs: fs_bytes %d outside [%d,%d]", sp.FsBytes, int64(minFsBytes), int64(maxFsBytes))
	}
	if sp.ChurnBytesPerDay == 0 {
		sp.ChurnBytesPerDay = 12 << 20
	}
	if sp.ChurnBytesPerDay < 0 {
		return fmt.Errorf("jobs: churn_bytes_per_day %g negative", sp.ChurnBytesPerDay)
	}
	if sp.ShortPairsPerDay == 0 {
		sp.ShortPairsPerDay = 60
	}
	if sp.ShortPairsPerDay < 0 {
		return fmt.Errorf("jobs: short_pairs_per_day %g negative", sp.ShortPairsPerDay)
	}
	if sp.LongMaxBytes == 0 {
		sp.LongMaxBytes = 4 << 20
	}
	if sp.LongMaxBytes < 1024 {
		return fmt.Errorf("jobs: long_max_bytes %d below one fragment", sp.LongMaxBytes)
	}
	if sp.CheckpointDays < 0 {
		return fmt.Errorf("jobs: checkpoint_days %d negative", sp.CheckpointDays)
	}
	if sp.Faults != "" {
		if _, err := faults.Parse(sp.Faults); err != nil {
			return err
		}
	}
	if sp.TimeoutSec < 0 {
		return fmt.Errorf("jobs: timeout_sec %g negative", sp.TimeoutSec)
	}
	if sp.MaxAttempts == 0 {
		sp.MaxAttempts = 3
	}
	if sp.MaxAttempts < 1 || sp.MaxAttempts > maxAttemptsCap {
		return fmt.Errorf("jobs: max_attempts %d outside [1,%d]", sp.MaxAttempts, maxAttemptsCap)
	}
	return nil
}

// checkID rejects IDs that could escape the per-job state directory or
// render badly in logs and URLs.
func checkID(id string) error {
	if len(id) > maxSpecID {
		return fmt.Errorf("jobs: id longer than %d bytes", maxSpecID)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("jobs: id %q: character %q not in [A-Za-z0-9._-]", id, r)
		}
	}
	if id == "." || id == ".." {
		return fmt.Errorf("jobs: id %q is a path component", id)
	}
	return nil
}

// policy resolves the named allocation policy against the registry in
// internal/policy (accepting the legacy spellings this API took before
// the registry existed: "orig", "realloc", ...).
func (sp *Spec) policy() (ffs.Policy, error) {
	p, err := policy.Resolve(sp.Policy)
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	return p, nil
}

// params builds the simulated file system geometry.
func (sp *Spec) params() ffs.Params {
	p := ffs.PaperParams()
	p.SizeBytes = sp.FsBytes
	p.NumCg = sp.NumCg
	return p
}

// buildWorkload regenerates the job's workload from its seed. The
// generator is deterministic, so a restarted daemon rebuilds exactly
// the stream the checkpoint was taken under (the checkpoint's workload
// hash guards the pairing).
func (sp *Spec) buildWorkload() (*trace.Workload, error) {
	cfg := workload.DefaultConfig(sp.Seed)
	cfg.Days = sp.Days
	cfg.NumCg = sp.NumCg
	cfg.FsBytes = sp.FsBytes
	cfg.ChurnBytesPerDay = sp.ChurnBytesPerDay
	cfg.ShortPairsPerDay = sp.ShortPairsPerDay
	cfg.LongSize.MaxBytes = sp.LongMaxBytes
	res, err := workload.GenerateReference(cfg)
	if err != nil {
		return nil, fmt.Errorf("jobs: generating workload: %w", err)
	}
	return res.GroundTruth, nil
}
