package aging

import (
	"errors"
	"fmt"
	"strconv"

	"ffsage/internal/ffs"
	"ffsage/internal/trace"
)

// stepper is the replay cursor: the mutable state one operation stream
// threads through replayFrom. Pulling it out of the loop lets the
// steady-state benchmark drive the exact production op path (via the
// exported Stepper) and keeps the per-op work allocation-free: file
// names for recurring workload IDs are formatted once and cached, and
// File objects come from the file system's recycling pool.
type stepper struct {
	fsys *ffs.FileSystem
	dirs []*ffs.File
	byID map[int64]*ffs.File
	// names caches the decimal form of snapshot-derived (non-negative)
	// workload IDs, which recur across delete/recreate and rewrite
	// cycles. Short-lived files carry unique negative IDs that are never
	// reused, so caching them would only grow the map.
	names map[int64]string
	// lastWritten is the most recently created file, the candidate for
	// a torn write at a crash. It is cleared before that file is
	// deleted: once recycled, the pointer may be handed to an unrelated
	// create, and a stale reference would tear the wrong file.
	lastWritten *ffs.File
}

func newStepper(fsys *ffs.FileSystem, dirs []*ffs.File, byID map[int64]*ffs.File) *stepper {
	return &stepper{fsys: fsys, dirs: dirs, byID: byID, names: make(map[int64]string)}
}

func (st *stepper) name(id int64) string {
	if id < 0 {
		return strconv.FormatInt(id, 10)
	}
	s, ok := st.names[id]
	if !ok {
		s = strconv.FormatInt(id, 10)
		st.names[id] = s
	}
	return s
}

// forget drops the tear-tracking reference if it points at f, which is
// about to be deleted (and possibly recycled).
func (st *stepper) forget(f *ffs.File) {
	if st.lastWritten == f {
		st.lastWritten = nil
	}
}

// applyOp applies one workload operation. It returns applied=false for
// the benign no-op case (delete or rewrite-delete of a file lost to an
// earlier skip records a skip without error). Allocation failures come
// back wrapped in the same messages Replay has always reported; the
// caller classifies them with errors.Is.
func (st *stepper) applyOp(op trace.Op) (applied bool, err error) {
	dir := st.dirs[op.Cg]
	switch op.Kind {
	case trace.OpCreate:
		if st.byID[op.ID] != nil {
			return false, fmt.Errorf("aging: create of live id %d", op.ID)
		}
		f, err := st.fsys.CreateFile(dir, st.name(op.ID), op.Size, op.Day)
		if err != nil {
			return false, fmt.Errorf("aging: create %d: %w", op.ID, err)
		}
		st.byID[op.ID] = f
		st.lastWritten = f
		return true, nil
	case trace.OpDelete:
		f := st.byID[op.ID]
		if f == nil {
			return false, nil
		}
		st.forget(f)
		if err := st.fsys.Delete(f); err != nil {
			return false, fmt.Errorf("aging: delete %d: %w", op.ID, err)
		}
		delete(st.byID, op.ID)
		return true, nil
	case trace.OpRewrite:
		// The paper's modify heuristic: remove (or truncate to zero) and
		// rewrite. The dying file's name (the formatted ID) is reused
		// rather than formatted again.
		f := st.byID[op.ID]
		name := ""
		if f != nil {
			name = f.Name
			st.forget(f)
			if err := st.fsys.Delete(f); err != nil {
				return false, fmt.Errorf("aging: rewrite-delete %d: %w", op.ID, err)
			}
			delete(st.byID, op.ID)
		} else {
			name = st.name(op.ID)
		}
		f, err := st.fsys.CreateFile(dir, name, op.Size, op.Day)
		if err != nil {
			return false, fmt.Errorf("aging: rewrite %d: %w", op.ID, err)
		}
		st.byID[op.ID] = f
		st.lastWritten = f
		return true, nil
	default:
		return false, fmt.Errorf("aging: op kind %v", op.Kind)
	}
}

// Stepper drives workload operations against a file system one at a
// time through the same code path replayFrom uses, without the
// day-cursor, checkpoint, or fault machinery. Benchmarks and tests use
// it to measure and pin down the steady-state per-operation cost.
type Stepper struct {
	st      *stepper
	Skipped int // ops absorbed without effect (lost deletes, ENOSPC)
	NoSpace int // the subset of Skipped that failed for space/inodes
}

// NewStepper prepares fsys for direct op application: the per-group
// directories are created (or found) and the live-file index is rebuilt
// from file names, as ResumeReplay does.
func NewStepper(fsys *ffs.FileSystem) (*Stepper, error) {
	dirs, err := GroupDirectories(fsys)
	if err != nil {
		return nil, err
	}
	byID := make(map[int64]*ffs.File, len(fsys.Files()))
	for _, f := range fsys.Files() {
		if f.IsDir {
			continue
		}
		id, err := strconv.ParseInt(f.Name, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("aging: file %q is not a workload file", f.Name)
		}
		if byID[id] != nil {
			return nil, fmt.Errorf("aging: two files for id %d", id)
		}
		byID[id] = f
	}
	return &Stepper{st: newStepper(fsys, dirs, byID)}, nil
}

// Apply applies one operation, absorbing the failures a replay absorbs
// (allocation exhaustion, deletes of missing files) into the Skipped
// and NoSpace counters. Any other failure is returned.
func (s *Stepper) Apply(op trace.Op) error {
	if op.Cg < 0 || op.Cg >= len(s.st.dirs) {
		return fmt.Errorf("aging: op cg %d outside [0,%d)", op.Cg, len(s.st.dirs))
	}
	applied, err := s.st.applyOp(op)
	if err != nil {
		if errors.Is(err, ffs.ErrNoSpace) || errors.Is(err, ffs.ErrNoInodes) {
			s.NoSpace++
			s.Skipped++
			return nil
		}
		return err
	}
	if !applied {
		s.Skipped++
	}
	return nil
}

// Fs returns the file system the stepper drives.
func (s *Stepper) Fs() *ffs.FileSystem { return s.st.fsys }

// Live returns the file currently registered for a workload ID, if any.
func (s *Stepper) Live(id int64) (*ffs.File, bool) {
	f := s.st.byID[id]
	return f, f != nil
}
