package aging

import (
	"ffsage/internal/ffs"
	"ffsage/internal/obs"
	"ffsage/internal/trace"
)

// PublishResult publishes a completed replay into the scope. Everything
// here is derived from resume-safe state — the Result's reconstructed
// daily series and op counters, the allocator statistics persisted in
// the image, and the workload itself — so a run resumed from a
// checkpoint publishes byte-identical metrics and events to the
// uninterrupted run. (During-replay incidents live on Options.Obs's
// "run" stream instead, outside this contract.)
//
// The "days" tracer stream gets one event per recorded day carrying the
// layout score, utilization, and the day's op mix counted straight from
// the workload.
func PublishResult(sc *obs.Scope, res *Result, wl *trace.Workload) {
	sc.Counter("days").Add(int64(len(res.LayoutByDay)))
	sc.Counter("ops.total").Add(int64(len(wl.Ops)))
	sc.Counter("ops.skipped").Add(int64(res.SkippedOps))
	sc.Counter("ops.nospace").Add(int64(res.NoSpaceOps))
	sc.Counter("ops.faulted").Add(int64(res.FaultedOps))

	st := res.Fs.Stats
	al := sc.Scope("alloc")
	al.Counter("blocks").Add(st.BlocksAllocated)
	al.Counter("frags").Add(st.FragAllocs)
	al.Counter("frag_extends").Add(st.FragExtends)
	al.Counter("frag_relocations").Add(st.FragRelocations)
	al.Counter("cluster_moves").Add(st.ClusterMoves)
	al.Counter("cluster_attempts").Add(st.ClusterAttempts)
	al.Counter("section_switches").Add(st.SectionSwitches)
	al.Counter("pref_hits").Add(st.PrefHits)
	al.Counter("same_cg_fallbacks").Add(st.SameCgFallbacks)
	al.Counter("cg_fallbacks").Add(st.CgFallbacks)
	al.Counter("files_created").Add(st.FilesCreated)
	al.Counter("files_deleted").Add(st.FilesDeleted)
	al.Counter("bytes_written").Add(st.BytesWritten)
	al.Counter("nospace_failures").Add(st.NoSpaceFailures)
	al.Counter("inode_exhaustions").Add(st.InodeExhaustions)

	if n := len(res.LayoutByDay); n > 0 {
		sc.Gauge("final.layout").Set(res.LayoutByDay[n-1].Value)
		sc.Gauge("final.util").Set(res.UtilByDay[n-1].Value)
	}

	// Per-day op mix, counted purely from the workload so the stream is
	// identical no matter where a resume picked up.
	type mix struct{ creates, deletes, rewrites int64 }
	byDay := make(map[int]*mix, wl.Days)
	for _, op := range wl.Ops {
		m := byDay[op.Day]
		if m == nil {
			m = &mix{}
			byDay[op.Day] = m
		}
		switch op.Kind {
		case trace.OpCreate:
			m.creates++
		case trace.OpDelete:
			m.deletes++
		case trace.OpRewrite:
			m.rewrites++
		}
	}
	tr := sc.TracerCap("days", len(res.LayoutByDay)+1)
	for i, pt := range res.LayoutByDay {
		var m mix
		if p := byDay[pt.Day]; p != nil {
			m = *p
		}
		tr.Emit(float64(pt.Day), "day",
			obs.I("day", int64(pt.Day)),
			obs.F("layout", pt.Value),
			obs.F("util", res.UtilByDay[i].Value),
			obs.I("creates", m.creates),
			obs.I("deletes", m.deletes),
			obs.I("rewrites", m.rewrites))
	}

	publishSpans(sc, res, wl)
}

// publishSpans emits the replay's hierarchical span stream, time in
// simulated days: one root "replay" span covering the recorded period,
// one "day" span per recorded day, one span per workload operation
// inside its day, and an "alloc" child under every space-allocating op
// carrying the requested bytes. Like the rest of PublishResult the
// stream is derived purely from resume-safe state (the Result's series
// and the workload), and spans are emitted in one fixed sequential
// order, so IDs — and the whole encoded stream — are byte-identical
// across worker counts and crash/resume. The ring keeps the most
// recent DefaultRingCap completed spans; the dump's header line says
// exactly how many older ones it evicted.
func publishSpans(sc *obs.Scope, res *Result, wl *trace.Workload) {
	days := res.LayoutByDay
	if len(days) == 0 {
		return
	}
	tr := sc.SpanTracer("spans")
	tr.Start(float64(days[0].Day)-1, "replay",
		obs.I("days", int64(len(days))), obs.I("ops", int64(len(wl.Ops))))
	oi := 0
	for i, pt := range days {
		tr.Start(float64(pt.Day)-1, "day", obs.I("day", int64(pt.Day)))
		for oi < len(wl.Ops) && wl.Ops[oi].Day <= pt.Day {
			op := &wl.Ops[oi]
			oi++
			t := float64(op.Day) - 1 + op.Sec/86400
			var name string
			switch op.Kind {
			case trace.OpCreate:
				name = "create"
			case trace.OpDelete:
				name = "delete"
			case trace.OpRewrite:
				name = "rewrite"
			default:
				name = "op"
			}
			// The attr is "file", not "id": the encoded span already has
			// an "id" key (its span ID) and JSONL objects must not carry
			// duplicate keys.
			tr.Start(t, name, obs.I("file", op.ID), obs.I("cg", int64(op.Cg)))
			if op.Kind == trace.OpCreate || op.Kind == trace.OpRewrite {
				tr.Start(t, "alloc", obs.I("bytes", op.Size))
				tr.End(t)
			}
			tr.End(t)
		}
		tr.End(float64(pt.Day), obs.F("layout", pt.Value), obs.F("util", res.UtilByDay[i].Value))
	}
	tr.End(float64(days[len(days)-1].Day),
		obs.F("final.layout", days[len(days)-1].Value))
}

// PublishArenaStats publishes the file system's File-recycling pool
// counters into the scope. These describe this process's execution,
// not the simulated disk state — a resumed run starts with an empty
// pool and legitimately reports different numbers — so they are kept
// out of PublishResult and its resume-determinism contract; callers
// that want them (cmd/repro's metrics dump) opt in explicitly.
func PublishArenaStats(sc *obs.Scope, fsys *ffs.FileSystem) {
	ps := fsys.PoolStats()
	ar := sc.Scope("arena")
	ar.Gauge("pooled").Set(float64(ps.Pooled))
	ar.Counter("news").Add(ps.News)
	ar.Counter("reuses").Add(ps.Reuses)
	ar.Counter("recycles").Add(ps.Recycles)
}
