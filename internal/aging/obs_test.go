package aging

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ffsage/internal/core"
	"ffsage/internal/faults"
	"ffsage/internal/obs"
	"ffsage/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// snapshotRun replays wl (or resumes from cp) and returns the published
// metrics, events, and span dumps.
func snapshotRun(t *testing.T, wl *trace.Workload, cp *trace.Checkpoint, opts Options) (metrics, events, spans string) {
	t.Helper()
	reg := obs.NewRegistry()
	opts.Obs = reg.Scope("aging.test")
	var res *Result
	var err error
	if cp != nil {
		res, err = ResumeReplay(core.Realloc{}, wl, cp, opts)
	} else {
		res, err = Replay(testParams(), core.Realloc{}, wl, opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	PublishResult(reg.Scope("aging.test"), res, wl)
	var m, e, s bytes.Buffer
	if err := reg.WriteMetrics(&m); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteEvents(&e); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteSpans(&s); err != nil {
		t.Fatal(err)
	}
	return m.String(), e.String(), s.String()
}

// TestPublishResultGolden pins the exact snapshot text of a small
// seeded replay. If this fails because metrics were intentionally
// added or renamed, regenerate with:
//
//	go test ./internal/aging -run PublishResultGolden -update
func TestPublishResultGolden(t *testing.T) {
	wl := testWorkload(11, 10)
	reg := obs.NewRegistry()
	res, err := Replay(testParams(), core.Realloc{}, wl, Options{Obs: reg.Scope("aging.golden")})
	if err != nil {
		t.Fatal(err)
	}
	PublishResult(reg.Scope("aging.golden"), res, wl)
	var buf bytes.Buffer
	if err := reg.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("metrics snapshot drifted from golden file (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

// TestPublishResultResumeIdentical crashes a checkpointing replay
// mid-run, resumes it, and requires the resumed run's published
// metrics, event streams, AND span streams to be byte-identical to an
// uninterrupted run's — the observability half of the
// resume-determinism contract.
func TestPublishResultResumeIdentical(t *testing.T) {
	wl := testWorkload(5, 14)

	wantMetrics, wantEvents, wantSpans := snapshotRun(t, wl, nil, Options{})
	if !strings.Contains(wantSpans, `"span":"replay"`) {
		t.Fatalf("span stream missing the replay root (vacuous comparison):\n%s", wantSpans)
	}

	var cps []*trace.Checkpoint
	_, err := Replay(testParams(), core.Realloc{}, wl, Options{
		Faults:          faults.MustParse("crash@day:9"),
		CheckpointEvery: 3,
		Checkpoint:      collectCheckpoints(t, &cps),
	})
	var crash *faults.Crash
	if !errors.As(err, &crash) {
		t.Fatalf("expected planned crash, got %v", err)
	}
	if len(cps) == 0 {
		t.Fatal("no checkpoints before the crash")
	}

	gotMetrics, gotEvents, gotSpans := snapshotRun(t, wl, cps[len(cps)-1], Options{})
	if gotMetrics != wantMetrics {
		t.Errorf("resumed metrics differ from uninterrupted run\ngot:\n%s\nwant:\n%s", gotMetrics, wantMetrics)
	}
	if gotEvents != wantEvents {
		t.Errorf("resumed events differ from uninterrupted run\ngot:\n%s\nwant:\n%s", gotEvents, wantEvents)
	}
	if gotSpans != wantSpans {
		t.Errorf("resumed spans differ from uninterrupted run\ngot:\n%s\nwant:\n%s", gotSpans, wantSpans)
	}
}

// TestRunStreamRecordsIncidents checks the non-resume-safe side
// channel: a crashed, checkpointing run logs its checkpoints and crash
// on the "run" tracer.
func TestRunStreamRecordsIncidents(t *testing.T) {
	wl := testWorkload(5, 14)
	reg := obs.NewRegistry()
	var cps []*trace.Checkpoint
	_, err := Replay(testParams(), core.Realloc{}, wl, Options{
		Obs:             reg.Scope("aging.test"),
		Faults:          faults.MustParse("crash@day:9"),
		CheckpointEvery: 3,
		Checkpoint:      collectCheckpoints(t, &cps),
	})
	var crash *faults.Crash
	if !errors.As(err, &crash) {
		t.Fatalf("expected planned crash, got %v", err)
	}
	tr := reg.Tracer("aging.test.run")
	var checkpoints, crashes int
	for _, ev := range tr.Events() {
		switch ev.Name {
		case "checkpoint":
			checkpoints++
		case "crash":
			crashes++
		}
	}
	if checkpoints != len(cps) {
		t.Errorf("%d checkpoint events, want %d", checkpoints, len(cps))
	}
	if crashes != 1 {
		t.Errorf("%d crash events, want 1", crashes)
	}
}
