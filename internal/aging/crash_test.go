package aging

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"ffsage/internal/core"
	"ffsage/internal/faults"
	"ffsage/internal/stats"
	"ffsage/internal/trace"
)

// collectCheckpoints returns a sink that round-trips every checkpoint
// through the binary codec — exactly what the on-disk path does — and
// keeps the decoded copies.
func collectCheckpoints(t *testing.T, out *[]*trace.Checkpoint) func(*trace.Checkpoint) error {
	return func(cp *trace.Checkpoint) error {
		var buf bytes.Buffer
		if err := trace.WriteCheckpoint(&buf, cp); err != nil {
			return err
		}
		got, err := trace.ReadCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return fmt.Errorf("checkpoint did not round-trip: %w", err)
		}
		*out = append(*out, got)
		return nil
	}
}

func sameSeries(t *testing.T, label string, got, want stats.Series) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d points, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: point %d is {%d %v}, want {%d %v}",
				label, i, got[i].Day, got[i].Value, want[i].Day, want[i].Value)
		}
	}
}

// TestCrashRecoveryDifferential is the differential crash-recovery
// harness: crash a replay at 100+ seeded operation boundaries (every
// third one with a torn final write), repair the interrupted file
// system to Check()-clean, then resume from the last checkpoint and
// require the resumed run's daily series to be byte-identical to an
// uninterrupted reference run.
func TestCrashRecoveryDifferential(t *testing.T) {
	const (
		seed       = 1996
		days       = 16
		nCrashes   = 100
		checkEvery = 2
	)
	wl := testWorkload(seed, days)
	policy := core.Realloc{}

	ref, err := Replay(testParams(), policy, wl, Options{})
	if err != nil {
		t.Fatal(err)
	}

	points := faults.CrashPoints(seed, nCrashes, len(wl.Ops))
	if len(points) < nCrashes {
		t.Fatalf("only %d crash points for %d ops", len(points), len(wl.Ops))
	}
	for i, opIdx := range points {
		spec := fmt.Sprintf("crash@op:%d", opIdx)
		if i%3 == 0 {
			spec = fmt.Sprintf("tear@op:%d", opIdx)
		}
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			var cps []*trace.Checkpoint
			res, err := Replay(testParams(), policy, wl, Options{
				Faults:          faults.MustParse(spec),
				CheckpointEvery: checkEvery,
				Checkpoint:      collectCheckpoints(t, &cps),
			})
			var crash *faults.Crash
			if !errors.As(err, &crash) {
				t.Fatalf("replay ended with %v, want a crash", err)
			}
			if crash.Op != opIdx {
				t.Fatalf("crashed at op %d, want %d", crash.Op, opIdx)
			}
			if res == nil || res.Fs == nil {
				t.Fatal("crash returned no partial result")
			}

			// The interrupted image must be repairable to Check-clean.
			rep, err := res.Fs.Repair()
			if err != nil {
				t.Fatalf("repair: %v", err)
			}
			if err := res.Fs.Check(); err != nil {
				t.Fatalf("post-repair check: %v (repair reported %s)", err, rep)
			}
			if crash.Torn && res.Fs.FileCount() > 1 && !rep.Any() {
				// A torn write usually leaves damage; zero fixes is only
				// plausible when nothing had been written yet.
				t.Logf("torn crash at op %d repaired nothing", opIdx)
			}

			// Resume from the last checkpoint written before the crash —
			// or from scratch when the crash beat the first checkpoint —
			// and require byte-identical series.
			var resumed *Result
			if len(cps) == 0 {
				resumed, err = Replay(testParams(), policy, wl, Options{})
			} else {
				resumed, err = ResumeReplay(policy, wl, cps[len(cps)-1], Options{})
			}
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			sameSeries(t, "layout", resumed.LayoutByDay, ref.LayoutByDay)
			sameSeries(t, "util", resumed.UtilByDay, ref.UtilByDay)
			if resumed.SkippedOps != ref.SkippedOps || resumed.NoSpaceOps != ref.NoSpaceOps {
				t.Fatalf("resumed counters %d/%d, want %d/%d",
					resumed.SkippedOps, resumed.NoSpaceOps, ref.SkippedOps, ref.NoSpaceOps)
			}
			if err := resumed.Fs.Check(); err != nil {
				t.Fatalf("resumed fs: %v", err)
			}
			if got, want := resumed.Fs.LayoutScore(), ref.Fs.LayoutScore(); got != want {
				t.Fatalf("resumed final layout %v, want %v", got, want)
			}
			if got, want := resumed.Fs.FileCount(), ref.Fs.FileCount(); got != want {
				t.Fatalf("resumed file count %d, want %d", got, want)
			}
		})
	}
}

// TestCrashAtDayBoundary crashes on a day condition and resumes.
func TestCrashAtDayBoundary(t *testing.T) {
	wl := testWorkload(7, 12)
	var cps []*trace.Checkpoint
	res, err := Replay(testParams(), core.Original{}, wl, Options{
		Faults:          faults.MustParse("crash@day:6"),
		CheckpointEvery: 3,
		Checkpoint:      collectCheckpoints(t, &cps),
	})
	var crash *faults.Crash
	if !errors.As(err, &crash) {
		t.Fatalf("got %v, want crash", err)
	}
	if crash.Day < 6 {
		t.Fatalf("crash fired on day %d, want >= 6", crash.Day)
	}
	if _, err := res.Fs.Repair(); err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 {
		t.Fatal("no checkpoints before a day-6 crash with k=3")
	}
	ref, err := Replay(testParams(), core.Original{}, wl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeReplay(core.Original{}, wl, cps[len(cps)-1], Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameSeries(t, "layout", resumed.LayoutByDay, ref.LayoutByDay)
}

// TestInjectedAllocFaultIsAbsorbed: a one-shot allocation fault loses
// that op but the replay completes with a consistent file system.
func TestInjectedAllocFaultIsAbsorbed(t *testing.T) {
	wl := testWorkload(11, 6)
	res, err := Replay(testParams(), core.Original{}, wl, Options{
		Faults:     faults.MustParse("ioerr@alloc:40"),
		CheckEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultedOps != 1 {
		t.Fatalf("FaultedOps %d, want 1", res.FaultedOps)
	}
	if res.SkippedOps < 1 {
		t.Fatalf("SkippedOps %d", res.SkippedOps)
	}
	if err := res.Fs.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestResumeGuards: resuming under the wrong workload or a doctored
// cursor is refused.
func TestResumeGuards(t *testing.T) {
	wl := testWorkload(5, 6)
	var cps []*trace.Checkpoint
	if _, err := Replay(testParams(), core.Original{}, wl, Options{
		CheckpointEvery: 2,
		Checkpoint:      collectCheckpoints(t, &cps),
	}); err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 {
		t.Fatal("no checkpoints")
	}
	cp := cps[0]

	other := testWorkload(6, 6)
	if _, err := ResumeReplay(core.Original{}, other, cp, Options{}); err == nil {
		t.Error("resume under a different workload accepted")
	}

	bad := *cp
	bad.NextOp = len(wl.Ops) + 5
	if _, err := ResumeReplay(core.Original{}, wl, &bad, Options{}); err == nil {
		t.Error("out-of-range cursor accepted")
	}

	short := *cp
	short.LayoutByDay = short.LayoutByDay[:len(short.LayoutByDay)-1]
	if _, err := ResumeReplay(core.Original{}, wl, &short, Options{}); err == nil {
		t.Error("series/cursor mismatch accepted")
	}

	// Resuming the final checkpoint of a finished run replays nothing
	// but still pads out the remaining days.
	last := cps[len(cps)-1]
	res, err := ResumeReplay(core.Original{}, wl, last, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LayoutByDay) != wl.Days {
		t.Fatalf("resumed series has %d days, want %d", len(res.LayoutByDay), wl.Days)
	}
}

// TestCorruptCrashImageNeedsRepair: after a torn crash the strict
// consistency check fails (the damage is real) and Repair mends it.
func TestCorruptCrashImageNeedsRepair(t *testing.T) {
	wl := testWorkload(13, 8)
	// Crash late enough that files exist for the tear to damage.
	res, err := Replay(testParams(), core.Original{}, wl, Options{
		Faults: faults.MustParse(fmt.Sprintf("tear@op:%d", len(wl.Ops)*3/4)),
	})
	var crash *faults.Crash
	if !errors.As(err, &crash) {
		t.Fatalf("got %v, want crash", err)
	}
	if err := res.Fs.Check(); err == nil {
		t.Skip("tear landed on a file state Check cannot distinguish")
	}
	rep, err := res.Fs.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Any() {
		t.Error("repair of a failing image reported no fixes")
	}
	if err := res.Fs.Check(); err != nil {
		t.Fatal(err)
	}
}
