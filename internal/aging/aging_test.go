package aging

import (
	"testing"

	"ffsage/internal/core"
	"ffsage/internal/ffs"
	"ffsage/internal/layout"
	"ffsage/internal/trace"
	"ffsage/internal/workload"
)

func testParams() ffs.Params {
	p := ffs.PaperParams()
	p.SizeBytes = 64 << 20
	p.NumCg = 8
	return p
}

func testWorkload(seed int64, days int) *trace.Workload {
	cfg := workload.DefaultConfig(seed)
	cfg.Days = days
	cfg.NumCg = 8
	cfg.FsBytes = 64 << 20
	cfg.ChurnBytesPerDay = 12 << 20
	cfg.ShortPairsPerDay = 60
	cfg.LongSize.MaxBytes = 4 << 20
	res, err := workload.GenerateReference(cfg)
	if err != nil {
		panic(err)
	}
	return res.GroundTruth
}

func TestGroupDirectoriesBijection(t *testing.T) {
	fsys, err := ffs.NewFileSystem(testParams(), core.Original{})
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := GroupDirectories(fsys)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != fsys.NumCg() {
		t.Fatalf("%d dirs", len(dirs))
	}
	for cg, d := range dirs {
		if fsys.InoToCg(d.Ino) != cg {
			t.Errorf("dir %s in cg %d, want %d", d.Name, fsys.InoToCg(d.Ino), cg)
		}
	}
	// Idempotent: calling again finds the same directories.
	again, err := GroupDirectories(fsys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dirs {
		if again[i] != dirs[i] {
			t.Error("second call created new directories")
		}
	}
}

func TestReplayBasics(t *testing.T) {
	wl := testWorkload(3, 12)
	res, err := Replay(testParams(), core.Original{}, wl, Options{CheckEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LayoutByDay) != 12 || len(res.UtilByDay) != 12 {
		t.Fatalf("series lengths %d/%d, want 12", len(res.LayoutByDay), len(res.UtilByDay))
	}
	for i, p := range res.LayoutByDay {
		if p.Day != i {
			t.Errorf("day %d at index %d", p.Day, i)
		}
		if p.Value < 0 || p.Value > 1 {
			t.Errorf("layout %v out of range", p.Value)
		}
	}
	if res.SkippedOps > len(wl.Ops)/100 {
		t.Errorf("%d skipped ops out of %d", res.SkippedOps, len(wl.Ops))
	}
	if err := res.Fs.Check(); err != nil {
		t.Fatal(err)
	}
	// Utilization should have grown past the starting point.
	if res.UtilByDay.Final() < 0.10 {
		t.Errorf("final utilization %v", res.UtilByDay.Final())
	}
}

func TestReplayDeterminism(t *testing.T) {
	wl := testWorkload(9, 8)
	a, err := Replay(testParams(), core.Realloc{}, wl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(testParams(), core.Realloc{}, wl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.LayoutByDay {
		if a.LayoutByDay[i] != b.LayoutByDay[i] {
			t.Fatalf("day %d: %v vs %v", i, a.LayoutByDay[i], b.LayoutByDay[i])
		}
	}
}

// The headline qualitative result (Figure 2): after identical aging,
// the realloc policy leaves less fragmentation than the original.
func TestReallocAgesBetter(t *testing.T) {
	wl := testWorkload(1996, 25)
	orig, err := Replay(testParams(), core.Original{}, wl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	re, err := Replay(testParams(), core.Realloc{}, wl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o, r := orig.LayoutByDay.Final(), re.LayoutByDay.Final()
	t.Logf("final layout: original %.3f, realloc %.3f", o, r)
	if r <= o {
		t.Errorf("realloc %.3f not better than original %.3f", r, o)
	}
	// Both decline from their first day (fragmentation accumulates).
	if orig.LayoutByDay[0].Value < o {
		t.Errorf("original layout improved with age: day0 %.3f, final %.3f",
			orig.LayoutByDay[0].Value, o)
	}
}

func TestReplayHandlesRewrites(t *testing.T) {
	ops := []trace.Op{
		{Day: 0, Sec: 1, Kind: trace.OpCreate, ID: 1, Cg: 0, Size: 50 << 10},
		{Day: 0, Sec: 2, Kind: trace.OpRewrite, ID: 1, Cg: 0, Size: 80 << 10},
		{Day: 1, Sec: 1, Kind: trace.OpRewrite, ID: 2, Cg: 3, Size: 10 << 10},
		{Day: 1, Sec: 2, Kind: trace.OpDelete, ID: 1, Cg: 0},
	}
	wl := &trace.Workload{Days: 2, Ops: ops}
	res, err := Replay(testParams(), core.Original{}, wl, Options{CheckEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	// ID 1 deleted; ID 2 rewritten-into-existence (rewrite of an
	// unseen file is a create).
	if res.Fs.FileCount() != 1 {
		t.Errorf("file count %d, want 1", res.Fs.FileCount())
	}
	if res.SkippedOps != 0 {
		t.Errorf("skipped %d", res.SkippedOps)
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	if _, err := Replay(testParams(), core.Original{}, &trace.Workload{}, Options{}); err == nil {
		t.Error("empty workload accepted")
	}
	bad := &trace.Workload{Days: 1, Ops: []trace.Op{
		{Day: 0, Kind: trace.OpCreate, ID: 1, Cg: 99, Size: 10},
	}}
	if _, err := Replay(testParams(), core.Original{}, bad, Options{}); err == nil {
		t.Error("bad cg accepted")
	}
	dup := &trace.Workload{Days: 1, Ops: []trace.Op{
		{Day: 0, Sec: 1, Kind: trace.OpCreate, ID: 1, Cg: 0, Size: 10},
		{Day: 0, Sec: 2, Kind: trace.OpCreate, ID: 1, Cg: 0, Size: 10},
	}}
	if _, err := Replay(testParams(), core.Original{}, dup, Options{}); err == nil {
		t.Error("duplicate create accepted")
	}
}

func TestReplaySurvivesFullDisk(t *testing.T) {
	p := testParams()
	p.SizeBytes = 8 << 20
	p.NumCg = 2
	var ops []trace.Op
	for i := 0; i < 40; i++ {
		ops = append(ops, trace.Op{
			Day: 0, Sec: float64(i), Kind: trace.OpCreate,
			ID: int64(i), Cg: i % 2, Size: 1 << 20,
		})
	}
	wl := &trace.Workload{Days: 1, Ops: ops}
	res, err := Replay(p, core.Realloc{}, wl, Options{CheckEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NoSpaceOps == 0 {
		t.Error("expected ENOSPC skips on a tiny disk")
	}
	if err := res.Fs.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalScoreEqualsRescan replays a workload under both
// policies and asserts that the O(1) incremental layout score recorded
// each day is bit-identical to the full O(files × blocks) rescan —
// the equality the repro pipeline's -slowscore cross-check relies on.
func TestIncrementalScoreEqualsRescan(t *testing.T) {
	wl := testWorkload(7, 15)
	for _, pol := range []ffs.Policy{core.Original{}, core.Realloc{}} {
		fast, err := Replay(testParams(), pol, wl, Options{})
		if err != nil {
			t.Fatalf("%s fast: %v", pol.Name(), err)
		}
		slow, err := Replay(testParams(), pol, wl, Options{SlowScore: true})
		if err != nil {
			t.Fatalf("%s slow: %v", pol.Name(), err)
		}
		if len(fast.LayoutByDay) != len(slow.LayoutByDay) {
			t.Fatalf("%s: series lengths %d vs %d", pol.Name(),
				len(fast.LayoutByDay), len(slow.LayoutByDay))
		}
		for i := range fast.LayoutByDay {
			f, s := fast.LayoutByDay[i], slow.LayoutByDay[i]
			if f.Day != s.Day || f.Value != s.Value {
				t.Fatalf("%s day %d: incremental %v, rescan %v",
					pol.Name(), f.Day, f.Value, s.Value)
			}
		}
		// The end-state counters agree with the rescan too.
		if got, want := fast.Fs.LayoutScore(), layout.FsAggregate(fast.Fs); got != want {
			t.Fatalf("%s: final LayoutScore %v, FsAggregate %v", pol.Name(), got, want)
		}
	}
}
