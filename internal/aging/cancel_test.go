package aging

import (
	"context"
	"errors"
	"testing"
	"time"

	"ffsage/internal/core"
	"ffsage/internal/trace"
)

// afterNPolls is a deterministic context: it reports cancellation after
// its Err method has been consulted n times. The replayer polls Err
// exactly once per operation (and once per trailing idle day), so the
// cancellation lands at a repeatable op boundary — which is what lets
// the test pin byte-identical resume behaviour rather than racing a
// timer.
type afterNPolls struct {
	n     int
	polls int
}

func (c *afterNPolls) Err() error {
	c.polls++
	if c.polls > c.n {
		return context.Canceled
	}
	return nil
}
func (c *afterNPolls) Done() <-chan struct{}             { return nil }
func (c *afterNPolls) Deadline() (time.Time, bool)       { return time.Time{}, false }
func (c *afterNPolls) Value(key interface{}) interface{} { return nil }

var _ context.Context = (*afterNPolls)(nil)

// TestCancelledReplayCheckpointsAndResumesByteIdentical is the graceful
// shutdown contract: cancelling a replay mid-run emits one final
// checkpoint at the exact operation cursor — including mid-day, and
// even before the first day has completed — and resuming from it yields
// daily series, counters, and a final file system byte-identical to an
// uninterrupted run.
func TestCancelledReplayCheckpointsAndResumesByteIdentical(t *testing.T) {
	wl := testWorkload(21, 10)
	ref, err := Replay(testParams(), core.Realloc{}, wl, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{1, 17, len(wl.Ops) / 3, len(wl.Ops) - 2} {
		var cps []*trace.Checkpoint
		res, err := Replay(testParams(), core.Realloc{}, wl, Options{
			Ctx:        &afterNPolls{n: n},
			Checkpoint: collectCheckpoints(t, &cps),
		})
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("n=%d: replay ended with %v, want ErrInterrupted", n, err)
		}
		if res == nil {
			t.Fatalf("n=%d: no partial result", n)
		}
		if len(cps) != 1 {
			t.Fatalf("n=%d: %d checkpoints, want exactly the final one", n, len(cps))
		}
		cp := cps[0]
		if cp.NextOp != n {
			t.Fatalf("n=%d: checkpoint cursor at op %d", n, cp.NextOp)
		}

		resumed, err := ResumeReplay(core.Realloc{}, wl, cp, Options{})
		if err != nil {
			t.Fatalf("n=%d: resume: %v", n, err)
		}
		sameSeries(t, "layout", resumed.LayoutByDay, ref.LayoutByDay)
		sameSeries(t, "util", resumed.UtilByDay, ref.UtilByDay)
		if resumed.SkippedOps != ref.SkippedOps || resumed.NoSpaceOps != ref.NoSpaceOps {
			t.Fatalf("n=%d: resumed counters %d/%d, want %d/%d",
				n, resumed.SkippedOps, resumed.NoSpaceOps, ref.SkippedOps, ref.NoSpaceOps)
		}
		if got, want := resumed.Fs.LayoutScore(), ref.Fs.LayoutScore(); got != want {
			t.Fatalf("n=%d: resumed layout %v, want %v", n, got, want)
		}
		if got, want := resumed.Fs.FileCount(), ref.Fs.FileCount(); got != want {
			t.Fatalf("n=%d: resumed file count %d, want %d", n, got, want)
		}
	}
}

// TestCancelWithoutSinkStillStops: with no Checkpoint sink configured,
// cancellation still ends the replay with ErrInterrupted (and no
// checkpoint side effects to fail on).
func TestCancelWithoutSinkStillStops(t *testing.T) {
	wl := testWorkload(4, 6)
	_, err := Replay(testParams(), core.Original{}, wl, Options{Ctx: &afterNPolls{n: 25}})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("got %v, want ErrInterrupted", err)
	}
}

// TestUncancelledCtxIsFree: a live context does not perturb the run.
func TestUncancelledCtxIsFree(t *testing.T) {
	wl := testWorkload(5, 6)
	ref, err := Replay(testParams(), core.Original{}, wl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Replay(testParams(), core.Original{}, wl, Options{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	sameSeries(t, "layout", got.LayoutByDay, ref.LayoutByDay)
	sameSeries(t, "util", got.UtilByDay, ref.UtilByDay)
}
