// Package aging replays an aging workload against a simulated FFS,
// reproducing Section 3.2 of the paper: one directory is created per
// cylinder group (FFS's directory placement spreads them one per
// group), and every file is created in the directory matching the
// cylinder group its inode occupied on the original system, so each
// group sees the same allocation and deallocation request stream the
// original group did. After each simulated day the aggregate layout
// score is recorded — the data behind Figures 1 and 2.
//
// Replays can carry a fault plan (internal/faults) that injects
// allocation failures and crashes, and can checkpoint their full state
// every K days; ResumeReplay continues from a checkpoint and, because
// images persist the allocator's rotors and statistics, produces the
// byte-identical daily series an uninterrupted run would have.
package aging

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strconv"

	"ffsage/internal/faults"
	"ffsage/internal/ffs"
	"ffsage/internal/layout"
	"ffsage/internal/obs"
	"ffsage/internal/stats"
	"ffsage/internal/trace"
)

// Options tune a replay.
type Options struct {
	// CheckEvery runs the file system's consistency checker after
	// every n-th day (0 disables; checks are O(file system size)).
	CheckEvery int
	// Progress, when non-nil, receives a callback after each day.
	Progress func(day int, score float64, util float64)
	// SlowScore computes the daily layout score with the full
	// O(files × blocks) rescan instead of the file system's
	// incrementally maintained counters. The two are equal by
	// construction (tests and Check() assert it); the rescan survives
	// as a cross-check path behind cmd/repro's -slowscore flag.
	SlowScore bool

	// Faults, when non-nil and non-empty, is installed as the
	// allocator's fault hook and polled for crashes at every operation
	// boundary. A crash ends the replay with an error wrapping
	// *faults.Crash; the partial Result (including the possibly-corrupt
	// file system) is still returned for inspection and Repair.
	Faults *faults.Plan

	// CheckpointEvery emits a checkpoint after every k-th completed
	// simulated day (0 disables). Checkpoint must be set when nonzero.
	CheckpointEvery int
	// Checkpoint receives each emitted checkpoint; returning an error
	// aborts the replay.
	Checkpoint func(cp *trace.Checkpoint) error

	// Obs, when non-nil, receives during-replay events on its "run"
	// tracer stream: checkpoints written, injected faults, and crashes,
	// keyed on the simulated day. These describe what happened to *this*
	// run (an interrupted run logs its crash; its resumption does not),
	// so they are intentionally outside the resume-determinism contract;
	// the resume-safe summary lives in PublishResult.
	Obs *obs.Scope

	// NoArena disables the file system's File-recycling pool for this
	// replay (the -arena=off escape hatch). Allocation decisions are
	// identical either way; the differential tests assert byte-identical
	// results.
	NoArena bool

	// Ctx, when non-nil, is polled at every operation and day boundary.
	// Once it is cancelled the replay stops, emits a final checkpoint at
	// the exact cursor when a Checkpoint sink is configured (even with
	// CheckpointEvery zero), and returns an error wrapping
	// ErrInterrupted plus the context's cause. Resuming from that
	// checkpoint produces series byte-identical to an uninterrupted run,
	// which is what lets a daemon drain on SIGTERM without losing or
	// perturbing in-flight work.
	Ctx context.Context
}

// ErrInterrupted reports that a replay stopped because its
// Options.Ctx was cancelled — a graceful interruption with a final
// checkpoint, as opposed to a fault-plan *faults.Crash.
var ErrInterrupted = errors.New("aging: replay interrupted")

// Result is the outcome of a replay.
type Result struct {
	// Fs is the aged file system.
	Fs *ffs.FileSystem
	// LayoutByDay is the aggregate layout score at the end of each day.
	LayoutByDay stats.Series
	// UtilByDay is the utilization at the end of each day.
	UtilByDay stats.Series
	// SkippedOps counts operations that could not be applied (ENOSPC
	// creations, deletes of files lost to earlier skips, injected
	// allocation faults).
	SkippedOps int
	// NoSpaceOps counts creations/rewrites that failed for space.
	NoSpaceOps int
	// FaultedOps counts operations lost to injected allocation faults.
	FaultedOps int
}

// Replay builds an empty file system with the given parameters and
// policy, then applies the workload.
func Replay(p ffs.Params, policy ffs.Policy, wl *trace.Workload, opts Options) (*Result, error) {
	fsys, err := ffs.NewFileSystem(p, policy)
	if err != nil {
		return nil, err
	}
	return ReplayOn(fsys, wl, opts)
}

// ReplayOn applies the workload to an existing (normally empty) file
// system.
func ReplayOn(fsys *ffs.FileSystem, wl *trace.Workload, opts Options) (*Result, error) {
	if len(wl.Ops) == 0 {
		return nil, fmt.Errorf("aging: empty workload")
	}
	dirs, err := GroupDirectories(fsys)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Fs:          fsys,
		LayoutByDay: make(stats.Series, 0, wl.Days),
		UtilByDay:   make(stats.Series, 0, wl.Days),
	}
	if opts.NoArena {
		fsys.SetPooling(false)
	}
	byID := make(map[int64]*ffs.File, 1024)
	return replayFrom(fsys, wl, opts, dirs, byID, res, 0, wl.Ops[0].Day)
}

// ResumeReplay continues a checkpointed replay to completion. The
// workload must be the one the checkpoint was taken under (guarded by
// its hash); the produced Result's series are byte-identical to what
// the uninterrupted run would have recorded.
//
// A resumed run does not re-fire the original run's fault plan; pass
// opts.Faults only to inject new faults into the remainder.
func ResumeReplay(policy ffs.Policy, wl *trace.Workload, cp *trace.Checkpoint, opts Options) (*Result, error) {
	if len(wl.Ops) == 0 {
		return nil, fmt.Errorf("aging: empty workload")
	}
	if got := trace.HashWorkload(wl); got != cp.WorkloadHash {
		return nil, fmt.Errorf("aging: checkpoint was taken under a different workload (hash %016x, want %016x)",
			cp.WorkloadHash, got)
	}
	// Day == firstDay-1 is legitimate: a cancellation checkpoint taken
	// before the first day completed carries empty series.
	firstDay := wl.Ops[0].Day
	if cp.Day < firstDay-1 || cp.NextOp > len(wl.Ops) {
		return nil, fmt.Errorf("aging: checkpoint cursor (day %d, op %d) outside workload", cp.Day, cp.NextOp)
	}
	wantDays := cp.Day - firstDay + 1
	if len(cp.LayoutByDay) != wantDays || len(cp.UtilByDay) != wantDays {
		return nil, fmt.Errorf("aging: checkpoint carries %d recorded days, want %d",
			len(cp.LayoutByDay), wantDays)
	}
	fsys, err := ffs.LoadImage(bytes.NewReader(cp.Image), policy)
	if err != nil {
		return nil, fmt.Errorf("aging: loading checkpoint image: %w", err)
	}
	if opts.NoArena {
		fsys.SetPooling(false)
	}
	dirs, err := GroupDirectories(fsys)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Fs:          fsys,
		LayoutByDay: make(stats.Series, 0, wl.Days),
		UtilByDay:   make(stats.Series, 0, wl.Days),
		SkippedOps:  int(cp.SkippedOps),
		NoSpaceOps:  int(cp.NoSpaceOps),
		FaultedOps:  int(cp.FaultedOps),
	}
	for k, v := range cp.LayoutByDay {
		res.LayoutByDay = append(res.LayoutByDay, stats.TimePoint{Day: firstDay + k, Value: v})
	}
	for k, v := range cp.UtilByDay {
		res.UtilByDay = append(res.UtilByDay, stats.TimePoint{Day: firstDay + k, Value: v})
	}
	// The replayer keys live files by workload ID, and every file it
	// creates is named after its ID, so the index rebuilds from names.
	byID := make(map[int64]*ffs.File, len(fsys.Files()))
	for _, f := range fsys.Files() {
		if f.IsDir {
			continue
		}
		id, err := strconv.ParseInt(f.Name, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("aging: checkpoint image has non-workload file %q", f.Name)
		}
		if byID[id] != nil {
			return nil, fmt.Errorf("aging: checkpoint image has two files for id %d", id)
		}
		byID[id] = f
	}
	return replayFrom(fsys, wl, opts, dirs, byID, res, cp.NextOp, cp.Day+1)
}

// replayFrom is the replay core: it applies wl.Ops[startOp:] with the
// day cursor starting at day, recording each completed day into res.
func replayFrom(fsys *ffs.FileSystem, wl *trace.Workload, opts Options, dirs []*ffs.File,
	byID map[int64]*ffs.File, res *Result, startOp, day int) (*Result, error) {

	if opts.CheckpointEvery > 0 && opts.Checkpoint == nil {
		return nil, fmt.Errorf("aging: CheckpointEvery set without a Checkpoint sink")
	}
	if opts.Faults != nil && !opts.Faults.Empty() {
		fsys.FaultHook = opts.Faults
		defer func() { fsys.FaultHook = nil }()
	}
	var wlHash uint64
	if opts.Checkpoint != nil {
		wlHash = trace.HashWorkload(wl)
	}
	var runTr *obs.Tracer
	if opts.Obs != nil {
		runTr = opts.Obs.Tracer("run")
	}

	// writeCheckpoint persists the replay state at a cursor: lastDay is
	// the last fully completed day (firstDay-1 when none is), nextOp the
	// index of the first operation not yet applied.
	writeCheckpoint := func(lastDay, nextOp int) error {
		var img bytes.Buffer
		if err := fsys.SaveImage(&img); err != nil {
			return fmt.Errorf("aging: day %d checkpoint image: %w", lastDay, err)
		}
		cp := &trace.Checkpoint{
			Day:          lastDay,
			NextOp:       nextOp,
			SkippedOps:   int64(res.SkippedOps),
			NoSpaceOps:   int64(res.NoSpaceOps),
			FaultedOps:   int64(res.FaultedOps),
			LayoutByDay:  res.LayoutByDay.Values(),
			UtilByDay:    res.UtilByDay.Values(),
			WorkloadHash: wlHash,
			Image:        img.Bytes(),
		}
		if err := opts.Checkpoint(cp); err != nil {
			return fmt.Errorf("aging: day %d checkpoint: %w", lastDay, err)
		}
		if runTr != nil {
			runTr.Emit(float64(lastDay), "checkpoint",
				obs.I("day", int64(lastDay)), obs.I("next_op", int64(nextOp)))
		}
		return nil
	}

	// interrupted ends a cancelled replay: one final checkpoint at the
	// exact cursor (so a resume loses no applied work), an event on the
	// run stream, and a typed error naming the cause.
	interrupted := func(nextOp int) error {
		if opts.Checkpoint != nil {
			if err := writeCheckpoint(day-1, nextOp); err != nil {
				return err
			}
		}
		if runTr != nil {
			runTr.Emit(float64(day), "interrupted",
				obs.I("day", int64(day)), obs.I("op", int64(nextOp)))
		}
		return fmt.Errorf("%w at op %d (day %d): %v", ErrInterrupted, nextOp, day, context.Cause(opts.Ctx))
	}

	// endDay closes the current simulated day: record the series point,
	// then (on schedule) consistency-check and checkpoint. nextOp is the
	// index of the first operation not yet applied, i.e. the resume
	// cursor a checkpoint taken now must carry.
	endDay := func(nextOp int) error {
		// O(1) per day from the allocator's incremental counters; the
		// SlowScore rescan is the equal-by-construction cross-check.
		score := fsys.LayoutScore()
		if opts.SlowScore {
			score = layout.FsAggregate(fsys)
		}
		util := fsys.Utilization()
		res.LayoutByDay = append(res.LayoutByDay, stats.TimePoint{Day: day, Value: score})
		res.UtilByDay = append(res.UtilByDay, stats.TimePoint{Day: day, Value: util})
		if opts.Progress != nil {
			opts.Progress(day, score, util)
		}
		if opts.CheckEvery > 0 && (day+1)%opts.CheckEvery == 0 {
			if err := fsys.Check(); err != nil {
				return fmt.Errorf("aging: day %d consistency: %w", day, err)
			}
		}
		if opts.CheckpointEvery > 0 && (day+1)%opts.CheckpointEvery == 0 {
			if err := writeCheckpoint(day, nextOp); err != nil {
				return err
			}
		}
		return nil
	}

	// skippable reports whether a create/rewrite failure is one the
	// replay absorbs (the op is lost, the run continues): allocation
	// exhaustion, as in the paper's 90%-full runs, or an injected fault.
	skippable := func(err error) bool {
		if errors.Is(err, ffs.ErrNoSpace) || errors.Is(err, ffs.ErrNoInodes) {
			res.NoSpaceOps++
			return true
		}
		if errors.Is(err, faults.ErrInjected) {
			res.FaultedOps++
			if runTr != nil {
				runTr.Emit(float64(day), "fault", obs.I("day", int64(day)))
			}
			return true
		}
		return false
	}

	st := newStepper(fsys, dirs, byID)
	for i := startOp; i < len(wl.Ops); i++ {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return res, interrupted(i)
		}
		op := wl.Ops[i]
		for day < op.Day {
			if err := endDay(i); err != nil {
				return res, err
			}
			day++
		}
		if c := opts.Faults.CrashBefore(i, op.Day); c != nil {
			if c.Torn && st.lastWritten != nil {
				fsys.TearFile(st.lastWritten)
			}
			if runTr != nil {
				runTr.Emit(float64(day), "crash",
					obs.I("day", int64(day)), obs.I("op", int64(i)), obs.B("torn", c.Torn))
			}
			return res, fmt.Errorf("aging: %w", c)
		}
		if op.Cg < 0 || op.Cg >= len(dirs) {
			return res, fmt.Errorf("aging: op cg %d outside [0,%d)", op.Cg, len(dirs))
		}
		applied, err := st.applyOp(op)
		if err != nil {
			if skippable(err) {
				res.SkippedOps++
				continue
			}
			return res, err
		}
		if !applied {
			res.SkippedOps++
		}
	}
	// Record the in-progress day and pad out idle trailing days. A
	// resume whose checkpoint already covered the final day records
	// nothing more.
	for ; day < wl.Days; day++ {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return res, interrupted(len(wl.Ops))
		}
		if err := endDay(len(wl.Ops)); err != nil {
			return res, err
		}
	}
	return res, nil
}

// GroupDirectories creates (or finds) one directory per cylinder group
// under the root and returns them indexed by cylinder group. It relies
// on ffs_dirpref spreading consecutive new directories across groups
// and verifies the resulting mapping is a bijection.
func GroupDirectories(fsys *ffs.FileSystem) ([]*ffs.File, error) {
	n := fsys.NumCg()
	dirs := make([]*ffs.File, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("cg%02d", i)
		d, ok := fsys.Lookup(fsys.Root(), name)
		if !ok {
			var err error
			d, err = fsys.Mkdir(fsys.Root(), name, 0)
			if err != nil {
				return nil, fmt.Errorf("aging: mkdir %s: %w", name, err)
			}
		}
		cg := fsys.InoToCg(d.Ino)
		if dirs[cg] != nil {
			return nil, fmt.Errorf("aging: directories %s and %s share group %d",
				dirs[cg].Name, d.Name, cg)
		}
		dirs[cg] = d
	}
	for cg, d := range dirs {
		if d == nil {
			return nil, fmt.Errorf("aging: no directory for group %d", cg)
		}
	}
	return dirs, nil
}
