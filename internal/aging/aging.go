// Package aging replays an aging workload against a simulated FFS,
// reproducing Section 3.2 of the paper: one directory is created per
// cylinder group (FFS's directory placement spreads them one per
// group), and every file is created in the directory matching the
// cylinder group its inode occupied on the original system, so each
// group sees the same allocation and deallocation request stream the
// original group did. After each simulated day the aggregate layout
// score is recorded — the data behind Figures 1 and 2.
package aging

import (
	"errors"
	"fmt"
	"strconv"

	"ffsage/internal/ffs"
	"ffsage/internal/layout"
	"ffsage/internal/stats"
	"ffsage/internal/trace"
)

// Options tune a replay.
type Options struct {
	// CheckEvery runs the file system's consistency checker after
	// every n-th day (0 disables; checks are O(file system size)).
	CheckEvery int
	// Progress, when non-nil, receives a callback after each day.
	Progress func(day int, score float64, util float64)
	// SlowScore computes the daily layout score with the full
	// O(files × blocks) rescan instead of the file system's
	// incrementally maintained counters. The two are equal by
	// construction (tests and Check() assert it); the rescan survives
	// as a cross-check path behind cmd/repro's -slowscore flag.
	SlowScore bool
}

// Result is the outcome of a replay.
type Result struct {
	// Fs is the aged file system.
	Fs *ffs.FileSystem
	// LayoutByDay is the aggregate layout score at the end of each day.
	LayoutByDay stats.Series
	// UtilByDay is the utilization at the end of each day.
	UtilByDay stats.Series
	// SkippedOps counts operations that could not be applied (ENOSPC
	// creations, deletes of files lost to earlier skips).
	SkippedOps int
	// NoSpaceOps counts creations/rewrites that failed for space.
	NoSpaceOps int
}

// Replay builds an empty file system with the given parameters and
// policy, then applies the workload.
func Replay(p ffs.Params, policy ffs.Policy, wl *trace.Workload, opts Options) (*Result, error) {
	fsys, err := ffs.NewFileSystem(p, policy)
	if err != nil {
		return nil, err
	}
	return ReplayOn(fsys, wl, opts)
}

// ReplayOn applies the workload to an existing (normally empty) file
// system.
func ReplayOn(fsys *ffs.FileSystem, wl *trace.Workload, opts Options) (*Result, error) {
	if len(wl.Ops) == 0 {
		return nil, fmt.Errorf("aging: empty workload")
	}
	dirs, err := GroupDirectories(fsys)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Fs:          fsys,
		LayoutByDay: make(stats.Series, 0, wl.Days),
		UtilByDay:   make(stats.Series, 0, wl.Days),
	}

	byID := make(map[int64]*ffs.File, 1024)
	day := wl.Ops[0].Day
	endDay := func() {
		// O(1) per day from the allocator's incremental counters; the
		// SlowScore rescan is the equal-by-construction cross-check.
		score := fsys.LayoutScore()
		if opts.SlowScore {
			score = layout.FsAggregate(fsys)
		}
		util := fsys.Utilization()
		res.LayoutByDay = append(res.LayoutByDay, stats.TimePoint{Day: day, Value: score})
		res.UtilByDay = append(res.UtilByDay, stats.TimePoint{Day: day, Value: util})
		if opts.Progress != nil {
			opts.Progress(day, score, util)
		}
		if opts.CheckEvery > 0 && (day+1)%opts.CheckEvery == 0 {
			if err := fsys.Check(); err != nil {
				panic(fmt.Sprintf("aging: day %d consistency: %v", day, err))
			}
		}
	}

	for _, op := range wl.Ops {
		for day < op.Day {
			endDay()
			day++
		}
		if op.Cg < 0 || op.Cg >= len(dirs) {
			return nil, fmt.Errorf("aging: op cg %d outside [0,%d)", op.Cg, len(dirs))
		}
		dir := dirs[op.Cg]
		switch op.Kind {
		case trace.OpCreate:
			if byID[op.ID] != nil {
				return nil, fmt.Errorf("aging: create of live id %d", op.ID)
			}
			f, err := fsys.CreateFile(dir, strconv.FormatInt(op.ID, 10), op.Size, op.Day)
			if err != nil {
				if errors.Is(err, ffs.ErrNoSpace) || errors.Is(err, ffs.ErrNoInodes) {
					res.NoSpaceOps++
					res.SkippedOps++
					continue
				}
				return nil, fmt.Errorf("aging: create %d: %w", op.ID, err)
			}
			byID[op.ID] = f
		case trace.OpDelete:
			f := byID[op.ID]
			if f == nil {
				res.SkippedOps++
				continue
			}
			if err := fsys.Delete(f); err != nil {
				return nil, fmt.Errorf("aging: delete %d: %w", op.ID, err)
			}
			delete(byID, op.ID)
		case trace.OpRewrite:
			// The paper's modify heuristic: remove (or truncate to
			// zero) and rewrite. The dying file's name (the formatted
			// ID) is reused rather than formatted again.
			f := byID[op.ID]
			name := ""
			if f != nil {
				name = f.Name
				if err := fsys.Delete(f); err != nil {
					return nil, fmt.Errorf("aging: rewrite-delete %d: %w", op.ID, err)
				}
				delete(byID, op.ID)
			} else {
				name = strconv.FormatInt(op.ID, 10)
			}
			f, err := fsys.CreateFile(dir, name, op.Size, op.Day)
			if err != nil {
				if errors.Is(err, ffs.ErrNoSpace) || errors.Is(err, ffs.ErrNoInodes) {
					res.NoSpaceOps++
					res.SkippedOps++
					continue
				}
				return nil, fmt.Errorf("aging: rewrite %d: %w", op.ID, err)
			}
			byID[op.ID] = f
		default:
			return nil, fmt.Errorf("aging: op kind %v", op.Kind)
		}
	}
	endDay()
	for d := day + 1; d < wl.Days; d++ {
		day = d
		endDay()
	}
	return res, nil
}

// GroupDirectories creates (or finds) one directory per cylinder group
// under the root and returns them indexed by cylinder group. It relies
// on ffs_dirpref spreading consecutive new directories across groups
// and verifies the resulting mapping is a bijection.
func GroupDirectories(fsys *ffs.FileSystem) ([]*ffs.File, error) {
	n := fsys.NumCg()
	dirs := make([]*ffs.File, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("cg%02d", i)
		d, ok := fsys.Lookup(fsys.Root(), name)
		if !ok {
			var err error
			d, err = fsys.Mkdir(fsys.Root(), name, 0)
			if err != nil {
				return nil, fmt.Errorf("aging: mkdir %s: %w", name, err)
			}
		}
		cg := fsys.InoToCg(d.Ino)
		if dirs[cg] != nil {
			return nil, fmt.Errorf("aging: directories %s and %s share group %d",
				dirs[cg].Name, d.Name, cg)
		}
		dirs[cg] = d
	}
	for cg, d := range dirs {
		if d == nil {
			return nil, fmt.Errorf("aging: no directory for group %d", cg)
		}
	}
	return dirs, nil
}
