package aging

import (
	"bytes"
	"errors"
	"testing"

	"ffsage/internal/core"
	"ffsage/internal/faults"
	"ffsage/internal/trace"
)

// agedImage replays wl under opts and returns the serialized aged
// image.
func agedImage(t *testing.T, wl *trace.Workload, opts Options) []byte {
	t.Helper()
	res, err := Replay(testParams(), core.Realloc{}, wl, opts)
	if err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if err := res.Fs.SaveImage(&img); err != nil {
		t.Fatal(err)
	}
	return img.Bytes()
}

// TestArenaOffIdenticalResults: the File-recycling arena is a pure
// memory-management change, so -arena=off must produce byte-identical
// aged images and published metrics/event snapshots. This is the
// differential backstop behind every arena optimization.
func TestArenaOffIdenticalResults(t *testing.T) {
	wl := testWorkload(17, 12)

	imgOn := agedImage(t, wl, Options{})
	imgOff := agedImage(t, wl, Options{NoArena: true})
	if !bytes.Equal(imgOn, imgOff) {
		t.Errorf("aged images differ between arena on (%d bytes) and off (%d bytes)",
			len(imgOn), len(imgOff))
	}

	mOn, eOn, sOn := snapshotRun(t, wl, nil, Options{})
	mOff, eOff, sOff := snapshotRun(t, wl, nil, Options{NoArena: true})
	if mOn != mOff {
		t.Errorf("metrics snapshots differ\narena on:\n%s\narena off:\n%s", mOn, mOff)
	}
	if eOn != eOff {
		t.Errorf("event snapshots differ\narena on:\n%s\narena off:\n%s", eOn, eOff)
	}
	if sOn != sOff {
		t.Errorf("span snapshots differ\narena on:\n%s\narena off:\n%s", sOn, sOff)
	}
}

// TestArenaOffIdenticalAcrossCrashResume crashes a checkpointing
// arena-on replay, resumes it with the arena disabled (and vice
// versa), and requires the published snapshots to match an
// uninterrupted arena-on run byte for byte: pooling state is process
// memory, never checkpoint state, so any on/off mix across the crash
// boundary converges to the same result.
func TestArenaOffIdenticalAcrossCrashResume(t *testing.T) {
	wl := testWorkload(5, 14)
	wantMetrics, wantEvents, wantSpans := snapshotRun(t, wl, nil, Options{})

	for _, tc := range []struct {
		name             string
		crashed, resumed Options
	}{
		{"crash-on-resume-off", Options{}, Options{NoArena: true}},
		{"crash-off-resume-on", Options{NoArena: true}, Options{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.crashed
			opts.Faults = faults.MustParse("crash@day:9")
			opts.CheckpointEvery = 3
			var cps []*trace.Checkpoint
			opts.Checkpoint = collectCheckpoints(t, &cps)
			_, err := Replay(testParams(), core.Realloc{}, wl, opts)
			var crash *faults.Crash
			if !errors.As(err, &crash) {
				t.Fatalf("expected planned crash, got %v", err)
			}
			if len(cps) == 0 {
				t.Fatal("no checkpoints before the crash")
			}
			gotMetrics, gotEvents, gotSpans := snapshotRun(t, wl, cps[len(cps)-1], tc.resumed)
			if gotMetrics != wantMetrics {
				t.Errorf("resumed metrics differ from uninterrupted arena-on run\ngot:\n%s\nwant:\n%s",
					gotMetrics, wantMetrics)
			}
			if gotEvents != wantEvents {
				t.Errorf("resumed events differ from uninterrupted arena-on run\ngot:\n%s\nwant:\n%s",
					gotEvents, wantEvents)
			}
			if gotSpans != wantSpans {
				t.Errorf("resumed spans differ from uninterrupted arena-on run\ngot:\n%s\nwant:\n%s",
					gotSpans, wantSpans)
			}
		})
	}
}

// TestArenaRecyclesFiles sanity-checks the pool itself: a replay that
// deletes files reuses their File records instead of allocating fresh
// ones, and -arena=off really disables that.
func TestArenaRecyclesFiles(t *testing.T) {
	wl := testWorkload(23, 10)
	res, err := Replay(testParams(), core.Realloc{}, wl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := res.Fs.PoolStats()
	if ps.Recycles == 0 || ps.Reuses == 0 {
		t.Errorf("arena never cycled: %+v", ps)
	}
	res, err = Replay(testParams(), core.Realloc{}, wl, Options{NoArena: true})
	if err != nil {
		t.Fatal(err)
	}
	if ps := res.Fs.PoolStats(); ps.Recycles != 0 || ps.Reuses != 0 || ps.Pooled != 0 {
		t.Errorf("arena disabled but still cycled: %+v", ps)
	}
}
