// Package bitset provides a fixed-size bitmap with the run-oriented
// queries needed by FFS cylinder-group free maps: set/clear/test single
// bits, count bits in a range, and search for runs of set bits.
//
// By convention throughout this repository a set bit means "free", to
// match the sense of the FFS cg_blksfree map.
package bitset

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Set is a fixed-length bitmap. The zero value is unusable; construct
// with New. Bit indices run from 0 to Len()-1.
type Set struct {
	n     int
	words []uint64
}

// New returns a Set of n bits, all clear.
func New(n int) *Set {
	if n < 0 {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("bitset: negative size %d", n))
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the number of bits in the set.
func (s *Set) Len() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// rangeMask returns a word mask covering bits [off, off+n) of a single
// word. Callers guarantee 0 ≤ off, 0 < n, off+n ≤ 64.
func rangeMask(off, n int) uint64 {
	if n >= wordBits {
		return ^uint64(0)
	}
	return (uint64(1)<<uint(n) - 1) << uint(off)
}

// SetRange sets bits [lo, hi), word-wise.
func (s *Set) SetRange(lo, hi int) {
	if lo < 0 || hi > s.n || lo > hi {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("bitset: bad range [%d,%d) of %d", lo, hi, s.n))
	}
	for lo < hi {
		w := lo / wordBits
		end := (w + 1) * wordBits
		if end > hi {
			end = hi
		}
		s.words[w] |= rangeMask(lo%wordBits, end-lo)
		lo = end
	}
}

// ClearRange clears bits [lo, hi), word-wise.
func (s *Set) ClearRange(lo, hi int) {
	if lo < 0 || hi > s.n || lo > hi {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("bitset: bad range [%d,%d) of %d", lo, hi, s.n))
	}
	for lo < hi {
		w := lo / wordBits
		end := (w + 1) * wordBits
		if end > hi {
			end = hi
		}
		s.words[w] &^= rangeMask(lo%wordBits, end-lo)
		lo = end
	}
}

// TestRange reports whether every bit in [lo, hi) is set. An empty range
// is vacuously true.
func (s *Set) TestRange(lo, hi int) bool {
	if lo < 0 || hi > s.n || lo > hi {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("bitset: bad range [%d,%d) of %d", lo, hi, s.n))
	}
	for lo < hi {
		w := lo / wordBits
		end := (w + 1) * wordBits
		if end > hi {
			end = hi
		}
		m := rangeMask(lo%wordBits, end-lo)
		if s.words[w]&m != m {
			return false
		}
		lo = end
	}
	return true
}

// Mask8 returns bits [start, start+width) packed into the low bits of a
// byte: bit i of the result reports bit start+i of the set. width must
// be at most 8. FFS free maps align fragment groups on power-of-two
// boundaries, so in practice the extraction never crosses a word, but
// the straddling case is handled for generality.
func (s *Set) Mask8(start, width int) uint8 {
	if start < 0 || width < 0 || width > 8 || start+width > s.n {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("bitset: bad mask [%d,%d) of %d", start, start+width, s.n))
	}
	w := start / wordBits
	off := uint(start % wordBits)
	v := s.words[w] >> off
	if int(off)+width > wordBits {
		v |= s.words[w+1] << (wordBits - off)
	}
	return uint8(v) & uint8(uint(1)<<uint(width)-1)
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// CountRange returns the number of set bits in [lo, hi), word-wise.
func (s *Set) CountRange(lo, hi int) int {
	if lo < 0 || hi > s.n || lo > hi {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("bitset: bad range [%d,%d) of %d", lo, hi, s.n))
	}
	c := 0
	for lo < hi {
		w := lo / wordBits
		end := (w + 1) * wordBits
		if end > hi {
			end = hi
		}
		c += bits.OnesCount64(s.words[w] & rangeMask(lo%wordBits, end-lo))
		lo = end
	}
	return c
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	w := i / wordBits
	// Mask off bits below i in the first word.
	cur := s.words[w] & (^uint64(0) << uint(i%wordBits))
	for {
		if cur != 0 {
			idx := w*wordBits + bits.TrailingZeros64(cur)
			if idx >= s.n {
				return -1
			}
			return idx
		}
		w++
		if w >= len(s.words) {
			return -1
		}
		cur = s.words[w]
	}
}

// NextClear returns the index of the first clear bit at or after i, or -1
// if there is none.
func (s *Set) NextClear(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	w := i / wordBits
	cur := ^s.words[w] & (^uint64(0) << uint(i%wordBits))
	for {
		if cur != 0 {
			idx := w*wordBits + bits.TrailingZeros64(cur)
			if idx >= s.n {
				return -1
			}
			return idx
		}
		w++
		if w >= len(s.words) {
			return -1
		}
		cur = ^s.words[w]
	}
}

// runLengthFrom returns the length of the run of set bits starting at
// i, truncated at max when max > 0. All-ones words are consumed whole,
// so long runs cost one word operation per 64 bits instead of one test
// per bit. Bits at index ≥ s.n are never set, so the run cannot
// overrun the logical length.
func (s *Set) runLengthFrom(i, max int) int {
	n := 0
	w := i / wordBits
	off := i % wordBits
	for w < len(s.words) {
		word := s.words[w] >> uint(off)
		// The shift fills the top with zeros, so the complement's
		// trailing-zero count — the run of ones from bit 0 — is
		// bounded by the bits available in this word.
		run := bits.TrailingZeros64(^word)
		avail := wordBits - off
		n += run
		if max > 0 && n >= max {
			return max
		}
		if run < avail {
			return n
		}
		w++
		off = 0
	}
	return n
}

// RunLengthAt returns the length of the run of set bits starting exactly
// at i (0 if bit i is clear). The run is truncated at max when max > 0.
func (s *Set) RunLengthAt(i int, max int) int {
	s.check(i)
	if !s.Test(i) {
		return 0
	}
	return s.runLengthFrom(i, max)
}

// FindRun searches [lo, hi) for the first run of at least length set
// bits and returns its start index, or -1 if none exists. A run may not
// extend past hi. Both the skip to the next set bit and the run count
// proceed word-wise, so scanning a mostly-full free map costs one or
// two word operations per candidate run rather than one test per bit.
func (s *Set) FindRun(lo, hi, length int) int {
	if length <= 0 {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("bitset: FindRun length %d", length))
	}
	if lo < 0 || hi > s.n || lo > hi {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("bitset: bad range [%d,%d) of %d", lo, hi, s.n))
	}
	i := lo
	for {
		i = s.NextSet(i)
		if i < 0 || i+length > hi {
			return -1
		}
		run := s.runLengthFrom(i, length)
		if run >= length {
			return i
		}
		i += run
	}
}

// FindRunNearest searches [lo, hi) for a run of at least length set bits,
// preferring the run whose start is closest to pref (absolute distance).
// Returns -1 if no such run exists.
func (s *Set) FindRunNearest(lo, hi, length, pref int) int {
	best := -1
	bestDist := int(^uint(0) >> 1)
	i := lo
	for {
		start := s.FindRun(i, hi, length)
		if start < 0 {
			break
		}
		d := start - pref
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = start, d
		}
		if start >= pref {
			// Runs only get farther from pref from here on.
			break
		}
		// Skip past this run, word-wise. A run reaching hi means no
		// later candidate start exists below hi.
		next := start + s.runLengthFrom(start, 0)
		if next >= hi {
			break
		}
		i = next
	}
	return best
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Equal reports whether two sets have identical length and contents.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if o.words[i] != w {
			return false
		}
	}
	return true
}

// String renders the set as a compact 0/1 string, for tests and debugging
// of small maps. Sets longer than 256 bits are summarized.
func (s *Set) String() string {
	if s.n > 256 {
		return fmt.Sprintf("bitset{len=%d set=%d}", s.n, s.Count())
	}
	buf := make([]byte, s.n)
	for i := 0; i < s.n; i++ {
		if s.Test(i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}
