package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAllClear(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	for i := 0; i < 130; i++ {
		if s.Test(i) {
			t.Fatalf("bit %d set in new set", i)
		}
	}
}

func TestSetClearTest(t *testing.T) {
	s := New(100)
	for _, i := range []int{0, 1, 63, 64, 65, 99} {
		s.Set(i)
		if !s.Test(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Error("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
}

func TestRangeOps(t *testing.T) {
	s := New(200)
	s.SetRange(10, 150)
	if got := s.Count(); got != 140 {
		t.Fatalf("Count after SetRange = %d, want 140", got)
	}
	if !s.TestRange(10, 150) {
		t.Error("TestRange(10,150) = false, want true")
	}
	if s.TestRange(9, 150) {
		t.Error("TestRange(9,150) = true, want false")
	}
	if !s.TestRange(20, 20) {
		t.Error("empty TestRange should be true")
	}
	s.ClearRange(50, 60)
	if got := s.CountRange(10, 150); got != 130 {
		t.Fatalf("CountRange = %d, want 130", got)
	}
	if s.TestRange(10, 150) {
		t.Error("TestRange over cleared hole should be false")
	}
}

func TestNextSetNextClear(t *testing.T) {
	s := New(300)
	s.Set(5)
	s.Set(64)
	s.Set(299)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {65, 299}, {299, 299},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	full := New(130)
	full.SetRange(0, 130)
	if got := full.NextClear(0); got != -1 {
		t.Errorf("NextClear on full = %d, want -1", got)
	}
	full.Clear(129)
	if got := full.NextClear(0); got != 129 {
		t.Errorf("NextClear = %d, want 129", got)
	}
	if got := s.NextSet(300); got != -1 {
		t.Errorf("NextSet past end = %d, want -1", got)
	}
}

func TestRunLengthAt(t *testing.T) {
	s := New(64)
	s.SetRange(10, 20)
	if got := s.RunLengthAt(10, 0); got != 10 {
		t.Errorf("RunLengthAt(10) = %d, want 10", got)
	}
	if got := s.RunLengthAt(15, 0); got != 5 {
		t.Errorf("RunLengthAt(15) = %d, want 5", got)
	}
	if got := s.RunLengthAt(10, 3); got != 3 {
		t.Errorf("RunLengthAt(10,max=3) = %d, want 3", got)
	}
	if got := s.RunLengthAt(9, 0); got != 0 {
		t.Errorf("RunLengthAt(9) = %d, want 0", got)
	}
}

func TestFindRun(t *testing.T) {
	s := New(100)
	s.SetRange(4, 6)   // run of 2
	s.SetRange(30, 37) // run of 7
	s.SetRange(90, 100)

	if got := s.FindRun(0, 100, 2); got != 4 {
		t.Errorf("FindRun len 2 = %d, want 4", got)
	}
	if got := s.FindRun(0, 100, 3); got != 30 {
		t.Errorf("FindRun len 3 = %d, want 30", got)
	}
	if got := s.FindRun(0, 100, 8); got != 90 {
		t.Errorf("FindRun len 8 = %d, want 90", got)
	}
	if got := s.FindRun(0, 100, 11); got != -1 {
		t.Errorf("FindRun len 11 = %d, want -1", got)
	}
	// A run may not extend past hi.
	if got := s.FindRun(0, 95, 8); got != -1 {
		t.Errorf("FindRun len 8 bounded at 95 = %d, want -1", got)
	}
}

func TestFindRunNearest(t *testing.T) {
	s := New(100)
	s.SetRange(10, 14)
	s.SetRange(60, 64)
	if got := s.FindRunNearest(0, 100, 4, 0); got != 10 {
		t.Errorf("nearest to 0 = %d, want 10", got)
	}
	if got := s.FindRunNearest(0, 100, 4, 99); got != 60 {
		t.Errorf("nearest to 99 = %d, want 60", got)
	}
	if got := s.FindRunNearest(0, 100, 4, 38); got != 60 {
		t.Errorf("nearest to 38 = %d, want 60 (dist 22 vs 28)", got)
	}
	if got := s.FindRunNearest(0, 100, 4, 30); got != 10 {
		t.Errorf("nearest to 30 = %d, want 10 (dist 20 vs 30)", got)
	}
	if got := s.FindRunNearest(0, 100, 5, 30); got != -1 {
		t.Errorf("nearest len 5 = %d, want -1", got)
	}
}

func TestCloneEqual(t *testing.T) {
	s := New(77)
	s.SetRange(3, 40)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Clear(10)
	if s.Equal(c) {
		t.Fatal("mutated clone still equal")
	}
	if s.Test(10) != true {
		t.Fatal("mutating clone changed original")
	}
}

func TestString(t *testing.T) {
	s := New(8)
	s.Set(0)
	s.Set(7)
	if got := s.String(); got != "10000001" {
		t.Errorf("String = %q", got)
	}
	big := New(1000)
	if got := big.String(); got != "bitset{len=1000 set=0}" {
		t.Errorf("big String = %q", got)
	}
}

func TestPanics(t *testing.T) {
	s := New(10)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Test(-1)", func() { s.Test(-1) })
	mustPanic("Set(10)", func() { s.Set(10) })
	mustPanic("SetRange bad", func() { s.SetRange(5, 3) })
	mustPanic("FindRun len 0", func() { s.FindRun(0, 10, 0) })
	mustPanic("New(-1)", func() { New(-1) })
}

// Property: Count equals the number of indices where Test is true, under
// any random sequence of Set/Clear operations.
func TestQuickCountConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		s := New(n)
		ref := make([]bool, n)
		for op := 0; op < 300; op++ {
			i := rng.Intn(n)
			if rng.Intn(2) == 0 {
				s.Set(i)
				ref[i] = true
			} else {
				s.Clear(i)
				ref[i] = false
			}
		}
		want := 0
		for i, b := range ref {
			if s.Test(i) != b {
				return false
			}
			if b {
				want++
			}
		}
		return s.Count() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: FindRun returns a genuine run of set bits within bounds, and
// -1 only when no such run exists (verified against a naive scan).
func TestQuickFindRunMatchesNaive(t *testing.T) {
	naive := func(s *Set, lo, hi, length int) int {
		for i := lo; i+length <= hi; i++ {
			ok := true
			for j := i; j < i+length; j++ {
				if !s.Test(j) {
					ok = false
					break
				}
			}
			if ok {
				return i
			}
		}
		return -1
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(400)
		s := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) > 0 {
				s.Set(i)
			}
		}
		length := 1 + rng.Intn(9)
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo)
		return s.FindRun(lo, hi, length) == naive(s, lo, hi, length)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: NextSet/NextClear agree with naive scans.
func TestQuickNextMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		s := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				s.Set(i)
			}
		}
		from := rng.Intn(n + 2)
		wantSet, wantClear := -1, -1
		for i := from; i < n; i++ {
			if wantSet < 0 && s.Test(i) {
				wantSet = i
			}
			if wantClear < 0 && !s.Test(i) {
				wantClear = i
			}
		}
		if from >= n {
			return s.NextSet(from) == -1 && s.NextClear(from) == -1
		}
		return s.NextSet(from) == wantSet && s.NextClear(from) == wantClear
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// bitwiseFindRun is the pre-optimization bit-by-bit reference: NextSet
// to a candidate, then one Test per bit of the run. The benchmarks
// below compare it against the word-wise FindRun on the allocator's
// worst case, a mostly-set map.
func bitwiseFindRun(s *Set, lo, hi, length int) int {
	i := lo
	for {
		i = s.NextSet(i)
		if i < 0 || i+length > hi {
			return -1
		}
		run := 1
		for run < length && s.Test(i+run) {
			run++
		}
		if run >= length {
			return i
		}
		i += run
	}
}

// denseMap returns an n-bit map with fill of its bits set: long runs of
// set bits punctuated by single clear bits — the shape of a
// cylinder-group free map on a mostly-free (or, inverted, mostly-full)
// disk, where run searches must wade through all-ones words.
func denseMap(n int, fill float64) *Set {
	s := New(n)
	s.SetRange(0, n)
	gap := int(1 / (1 - fill))
	for i := gap - 1; i < n; i += gap {
		s.Clear(i)
	}
	return s
}

func TestRunLengthFromMatchesBitwise(t *testing.T) {
	s := denseMap(1024, 0.9)
	// Also exercise word boundaries explicitly.
	s.ClearRange(300, 320)
	s.SetRange(64, 192)
	for i := 0; i < s.Len(); i++ {
		want := 0
		for j := i; j < s.Len() && s.Test(j); j++ {
			want++
		}
		if !s.Test(i) {
			continue
		}
		if got := s.RunLengthAt(i, 0); got != want {
			t.Fatalf("RunLengthAt(%d) = %d, want %d", i, got, want)
		}
		if got := s.RunLengthAt(i, 5); got != min(want, 5) {
			t.Fatalf("RunLengthAt(%d, max 5) = %d, want %d", i, got, min(want, 5))
		}
	}
}

func TestFindRunDenseMatchesBitwise(t *testing.T) {
	s := denseMap(4096, 0.9)
	for _, length := range []int{1, 2, 7, 9, 63, 64, 65, 200} {
		for lo := 0; lo < 256; lo += 37 {
			want := bitwiseFindRun(s, lo, s.Len(), length)
			if got := s.FindRun(lo, s.Len(), length); got != want {
				t.Fatalf("FindRun(%d, n, %d) = %d, want %d", lo, length, got, want)
			}
		}
	}
}

// BenchmarkFindRunDense measures FindRun on a 90%-set map searching
// for a run longer than any present (the worst case: the whole map is
// scanned). The word-wise scan covers all-ones words 64 bits at a
// time; BenchmarkFindRunDenseBitwise is the old per-bit reference.
func BenchmarkFindRunDense(b *testing.B) {
	s := denseMap(1<<20, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.FindRun(0, s.Len(), 64) != -1 {
			b.Fatal("unexpected run")
		}
	}
	b.SetBytes(int64(s.Len() / 8))
}

func BenchmarkFindRunDenseBitwise(b *testing.B) {
	s := denseMap(1<<20, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bitwiseFindRun(s, 0, s.Len(), 64) != -1 {
			b.Fatal("unexpected run")
		}
	}
	b.SetBytes(int64(s.Len() / 8))
}

// BenchmarkFindRunNearestDense exercises the preference search the
// realloc policy's cluster allocator performs on a fragmented group.
func BenchmarkFindRunNearestDense(b *testing.B) {
	s := denseMap(1<<18, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FindRunNearest(0, s.Len(), 8, s.Len()/2)
	}
}
