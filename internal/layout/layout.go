// Package layout implements the paper's fragmentation metric (Section
// 3.3): the layout score. A block is optimally allocated when it is
// physically contiguous with the previous block of the same file; a
// file's layout score is the fraction of its blocks that are optimal,
// excluding the first block (which has no previous block). One-block
// files have no defined score. The aggregate layout score of a file
// system is the fraction of all scoreable blocks that are optimal.
package layout

import (
	"sort"

	"ffsage/internal/ffs"
	"ffsage/internal/stats"
)

// FileScore returns the layout score of f and the number of scoreable
// blocks. ok is false for files with fewer than two blocks, whose score
// is undefined. A file's trailing fragment run counts as a block, as in
// the paper (two-block files are "one block and a partial second").
func FileScore(f *ffs.File, fpb int) (score float64, blocks int, ok bool) {
	n := len(f.Blocks)
	if n < 2 {
		return 0, 0, false
	}
	optimal := 0
	for i := 1; i < n; i++ {
		if f.Blocks[i] == f.Blocks[i-1]+ffs.Daddr(fpb) {
			optimal++
		}
	}
	return float64(optimal) / float64(n-1), n - 1, true
}

// Aggregate returns the aggregate layout score over the given files:
// total optimal blocks / total scoreable blocks. Files with fewer than
// two blocks contribute nothing. It returns 1.0 when no file is
// scoreable (an empty file system is perfectly laid out).
func Aggregate(files []*ffs.File, fpb int) float64 {
	optimal, total := 0, 0
	for _, f := range files {
		n := len(f.Blocks)
		if n < 2 {
			continue
		}
		total += n - 1
		for i := 1; i < n; i++ {
			if f.Blocks[i] == f.Blocks[i-1]+ffs.Daddr(fpb) {
				optimal++
			}
		}
	}
	if total == 0 {
		return 1.0
	}
	return float64(optimal) / float64(total)
}

// AllFiles returns the file system's plain files (directories
// excluded), in inode order for determinism.
func AllFiles(fsys *ffs.FileSystem) []*ffs.File {
	out := make([]*ffs.File, 0, len(fsys.Files()))
	for _, f := range fsys.Files() {
		if !f.IsDir {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ino < out[j].Ino })
	return out
}

// FsAggregate returns the aggregate layout score of every plain file on
// the file system — the number the paper plots in Figures 1 and 2 — by
// full rescan. The counts are exact integers, so no file ordering (and
// hence no sort) is needed; the file system's incrementally maintained
// LayoutScore returns the identical value in O(1), which is what the
// aging replayer uses per day. This rescan remains the independent
// cross-check (cmd/repro -slowscore, and Check()).
func FsAggregate(fsys *ffs.FileSystem) float64 {
	fpb := fsys.FragsPerBlock()
	optimal, total := 0, 0
	for _, f := range fsys.Files() {
		if f.IsDir {
			continue
		}
		n := len(f.Blocks)
		if n < 2 {
			continue
		}
		total += n - 1
		for i := 1; i < n; i++ {
			if f.Blocks[i] == f.Blocks[i-1]+ffs.Daddr(fpb) {
				optimal++
			}
		}
	}
	if total == 0 {
		return 1.0
	}
	return float64(optimal) / float64(total)
}

// BySize distributes files into the given size buckets and computes the
// aggregate layout score of each (Figures 3, 5 and 6). Files outside
// every bucket, and files with undefined scores, are skipped. The
// returned buckets have Files, Blocks and Score populated.
func BySize(files []*ffs.File, fpb int, buckets []stats.SizeBucket) []stats.SizeBucket {
	out := make([]stats.SizeBucket, len(buckets))
	copy(out, buckets)
	optimal := make([]int, len(buckets))
	for _, f := range files {
		idx := stats.BucketIndex(out, f.Size)
		if idx < 0 {
			continue
		}
		n := len(f.Blocks)
		if n < 2 {
			continue
		}
		out[idx].Files++
		out[idx].Blocks += n - 1
		for i := 1; i < n; i++ {
			if f.Blocks[i] == f.Blocks[i-1]+ffs.Daddr(fpb) {
				optimal[idx]++
			}
		}
	}
	for i := range out {
		if out[i].Blocks > 0 {
			out[i].Score = float64(optimal[i]) / float64(out[i].Blocks)
		}
	}
	return out
}

// HotFiles returns the plain files modified on or after fromDay — the
// paper's approximation of the file system's active set (Section 5.2),
// sorted by directory then inode so that reads visit one cylinder
// group's files together, as the paper's benchmark did.
func HotFiles(fsys *ffs.FileSystem, fromDay int) []*ffs.File {
	out := make([]*ffs.File, 0, len(fsys.Files())/4)
	for _, f := range fsys.Files() {
		if !f.IsDir && f.ModDay >= fromDay {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := 0, 0
		if out[i].Parent != nil {
			di = out[i].Parent.Ino
		}
		if out[j].Parent != nil {
			dj = out[j].Parent.Ino
		}
		if di != dj {
			return di < dj
		}
		return out[i].Ino < out[j].Ino
	})
	return out
}

// TotalBytes sums the sizes of the given files.
func TotalBytes(files []*ffs.File) int64 {
	var n int64
	for _, f := range files {
		n += f.Size
	}
	return n
}

// NonOptimalFraction returns 1 - Aggregate: the paper's "percentage of
// file blocks non-optimally allocated" (its Section 4 improvement
// figure compares these).
func NonOptimalFraction(files []*ffs.File, fpb int) float64 {
	return 1 - Aggregate(files, fpb)
}

// IntraFileSeeks counts the disk-arm repositionings a sequential read
// of every file would require: one per non-contiguous block transition,
// plus one per indirect block fetched outside the data stream. This is
// the quantity behind the paper's concluding claim that "the
// reallocation algorithm decreases the number of intra-file disk seeks
// by more than 50%" (§7).
func IntraFileSeeks(files []*ffs.File, fpb int) int {
	seeks := 0
	for _, f := range files {
		prevEnd := ffs.NilDaddr
		for _, e := range f.ReadSequence(fpb) {
			if prevEnd != ffs.NilDaddr && e.Addr != prevEnd {
				seeks++
			}
			prevEnd = e.Addr + ffs.Daddr(e.Frags)
		}
	}
	return seeks
}
