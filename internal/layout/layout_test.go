package layout

import (
	"testing"

	"ffsage/internal/core"
	"ffsage/internal/ffs"
	"ffsage/internal/stats"
)

const fpb = 8

// fileWithBlocks fabricates a file whose block addresses are given in
// block units (multiplied out to fragment addresses).
func fileWithBlocks(size int64, blockAddrs ...int64) *ffs.File {
	f := &ffs.File{Size: size, TailFrags: fpb}
	for _, b := range blockAddrs {
		f.Blocks = append(f.Blocks, ffs.Daddr(b*fpb))
	}
	return f
}

func TestFileScorePerfect(t *testing.T) {
	f := fileWithBlocks(4*8192, 10, 11, 12, 13)
	s, n, ok := FileScore(f, fpb)
	if !ok || s != 1.0 || n != 3 {
		t.Errorf("score=%v n=%d ok=%v, want 1.0 3 true", s, n, ok)
	}
}

func TestFileScoreWorst(t *testing.T) {
	f := fileWithBlocks(3*8192, 10, 20, 30)
	s, _, ok := FileScore(f, fpb)
	if !ok || s != 0.0 {
		t.Errorf("score=%v, want 0", s)
	}
}

func TestFileScoreMixed(t *testing.T) {
	// 10,11 contiguous; 20 not; 21 contiguous → 2/3.
	f := fileWithBlocks(4*8192, 10, 11, 20, 21)
	s, n, _ := FileScore(f, fpb)
	if n != 3 || s < 0.66 || s > 0.67 {
		t.Errorf("score=%v n=%d, want 2/3 of 3", s, n)
	}
}

func TestFileScoreUndefined(t *testing.T) {
	if _, _, ok := FileScore(fileWithBlocks(8192, 10), fpb); ok {
		t.Error("one-block file has a defined score")
	}
	if _, _, ok := FileScore(fileWithBlocks(0), fpb); ok {
		t.Error("empty file has a defined score")
	}
}

func TestAggregateWeightsByBlocks(t *testing.T) {
	// One perfect 2-block file (1 scoreable) + one broken 11-block file
	// (10 scoreable, 0 optimal) → 1/11.
	files := []*ffs.File{
		fileWithBlocks(2*8192, 10, 11),
		fileWithBlocks(11*8192, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000, 1100),
	}
	got := Aggregate(files, fpb)
	want := 1.0 / 11.0
	if got < want-1e-9 || got > want+1e-9 {
		t.Errorf("aggregate = %v, want %v", got, want)
	}
}

func TestAggregateEmpty(t *testing.T) {
	if got := Aggregate(nil, fpb); got != 1.0 {
		t.Errorf("empty aggregate = %v, want 1", got)
	}
	if got := NonOptimalFraction(nil, fpb); got != 0 {
		t.Errorf("empty non-optimal = %v", got)
	}
}

func TestBySize(t *testing.T) {
	buckets := stats.PowerOfTwoBuckets(16<<10, 64<<10)
	files := []*ffs.File{
		fileWithBlocks(16<<10, 10, 11),         // 16KB perfect
		fileWithBlocks(16<<10, 20, 30),         // 16KB broken
		fileWithBlocks(32<<10, 40, 41, 42, 43), // 32KB perfect
		fileWithBlocks(8192, 99),               // unscoreable
	}
	got := BySize(files, fpb, buckets)
	if got[0].Files != 2 || got[0].Blocks != 2 || got[0].Score != 0.5 {
		t.Errorf("16KB bucket = %+v", got[0])
	}
	if got[1].Files != 1 || got[1].Score != 1.0 {
		t.Errorf("32KB bucket = %+v", got[1])
	}
	if got[2].Files != 0 {
		t.Errorf("64KB bucket = %+v", got[2])
	}
}

func TestOnRealFileSystem(t *testing.T) {
	p := ffs.PaperParams()
	p.SizeBytes = 16 << 20
	p.NumCg = 4
	fsys, err := ffs.NewFileSystem(p, core.Realloc{})
	if err != nil {
		t.Fatal(err)
	}
	for i, size := range []int64{16 << 10, 56 << 10, 5 << 10, 100 << 10} {
		if _, err := fsys.CreateFile(fsys.Root(), string(rune('a'+i)), size, i); err != nil {
			t.Fatal(err)
		}
	}
	files := AllFiles(fsys)
	if len(files) != 4 {
		t.Fatalf("AllFiles = %d", len(files))
	}
	// On an empty fs with realloc, everything except the post-indirect
	// block should be contiguous; aggregate well above 0.9.
	if agg := FsAggregate(fsys); agg < 0.9 {
		t.Errorf("fresh-fs aggregate = %v", agg)
	}
	if tb := TotalBytes(files); tb != (16+56+5+100)<<10 {
		t.Errorf("TotalBytes = %d", tb)
	}
}

func TestHotFiles(t *testing.T) {
	p := ffs.PaperParams()
	p.SizeBytes = 16 << 20
	p.NumCg = 4
	fsys, err := ffs.NewFileSystem(p, core.Original{})
	if err != nil {
		t.Fatal(err)
	}
	old, _ := fsys.CreateFile(fsys.Root(), "old", 10<<10, 5)
	hot1, _ := fsys.CreateFile(fsys.Root(), "hot1", 10<<10, 270)
	hot2, _ := fsys.CreateFile(fsys.Root(), "hot2", 10<<10, 299)
	_ = old
	got := HotFiles(fsys, 270)
	if len(got) != 2 {
		t.Fatalf("hot = %d files", len(got))
	}
	seen := map[*ffs.File]bool{got[0]: true, got[1]: true}
	if !seen[hot1] || !seen[hot2] {
		t.Error("wrong hot set")
	}
}

func TestIntraFileSeeks(t *testing.T) {
	// A perfect 3-block file: zero seeks. A fully scattered one: two.
	perfect := fileWithBlocks(3*8192, 10, 11, 12)
	broken := fileWithBlocks(3*8192, 10, 20, 30)
	if got := IntraFileSeeks([]*ffs.File{perfect}, fpb); got != 0 {
		t.Errorf("perfect file seeks = %d", got)
	}
	if got := IntraFileSeeks([]*ffs.File{broken}, fpb); got != 2 {
		t.Errorf("broken file seeks = %d, want 2", got)
	}
	if got := IntraFileSeeks([]*ffs.File{perfect, broken}, fpb); got != 2 {
		t.Errorf("combined seeks = %d, want 2", got)
	}
	// An indirect block outside the stream adds a seek on each side.
	withInd := fileWithBlocks(14*8192, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 100, 101)
	withInd.Indirects = []ffs.Indirect{{BeforeLbn: 12, Addr: ffs.Daddr(99 * fpb), Level: 1}}
	// blocks 0..11 contiguous; indirect at 99; data 100,101 contiguous:
	// transitions: 21→ind (seek), ind(99+1=100)→100 contiguous → 1 seek.
	if got := IntraFileSeeks([]*ffs.File{withInd}, fpb); got != 1 {
		t.Errorf("indirect seeks = %d, want 1", got)
	}
}
