package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The frame codec is the durability envelope shared by everything this
// repository persists for crash recovery: a 4-byte magic, a uvarint
// format version, a uvarint payload length, the payload, and a CRC-32
// (IEEE) of the payload. The length prefix plus trailing checksum means
// a frame truncated by the very crash it was meant to survive — or bit
// flips acquired at rest — is detected on read rather than trusted
// silently. Checkpoints (checkpoint.go) are single frames; the aging
// daemon's write-ahead queue log is a sequence of them.

// CorruptError reports that a persisted artifact failed structural
// validation: bad magic, unsupported version, truncation, an implausible
// length, or a checksum mismatch. Decoders in this package never panic
// on malformed input; every failure surfaces as (or wraps) a
// *CorruptError so callers can distinguish damaged state from I/O
// plumbing failures and degrade deliberately — fall back to an earlier
// checkpoint, truncate a torn log tail, or refuse to resume.
type CorruptError struct {
	What string // artifact being decoded, e.g. "checkpoint", "queue WAL record"
	Msg  string // what failed validation
	Err  error  // underlying cause, when one exists (io.ErrUnexpectedEOF for truncation)
}

func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("trace: corrupt %s: %s: %v", e.What, e.Msg, e.Err)
	}
	return fmt.Sprintf("trace: corrupt %s: %s", e.What, e.Msg)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// Truncated reports whether the corruption is consistent with the data
// simply stopping mid-frame — the signature a crash leaves on the tail
// of an append-only log, as opposed to bit rot in the middle of it.
func (e *CorruptError) Truncated() bool {
	return errors.Is(e.Err, io.ErrUnexpectedEOF) || errors.Is(e.Err, io.EOF)
}

// corruptf builds a *CorruptError with a formatted message.
func corruptf(what string, format string, args ...any) error {
	return &CorruptError{What: what, Msg: fmt.Sprintf(format, args...)}
}

// corruptWrap builds a *CorruptError carrying an underlying cause.
func corruptWrap(what, msg string, err error) error {
	return &CorruptError{What: what, Msg: msg, Err: err}
}

// WriteFrame writes one checksummed frame.
func WriteFrame(w io.Writer, magic [4]byte, version uint64, payload []byte) error {
	var hdr bytes.Buffer
	hdr.Write(magic[:])
	var buf [binary.MaxVarintLen64]byte
	hdr.Write(buf[:binary.PutUvarint(buf[:], version)])
	hdr.Write(buf[:binary.PutUvarint(buf[:], uint64(len(payload)))])
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(crc[:])
	return err
}

// ReadFrame reads and verifies one frame, returning its payload. At a
// clean end of input (zero bytes before the magic) it returns io.EOF
// unwrapped, so log readers can distinguish "no more frames" from "a
// frame was torn"; every other failure is a *CorruptError. what names
// the artifact in error messages. maxLen bounds how large a payload the
// reader will buffer, so a corrupted length prefix cannot demand an
// absurd allocation.
func ReadFrame(r io.Reader, magic [4]byte, version uint64, maxLen uint64, what string) ([]byte, error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, corruptWrap(what, "reading magic", err)
	}
	if m != magic {
		return nil, corruptf(what, "bad magic %q (want %q)", m[:], magic[:])
	}
	br := byteReader{r}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, corruptWrap(what, "reading version", eofToUnexpected(err))
	}
	if v != version {
		return nil, corruptf(what, "version %d not supported (want %d)", v, version)
	}
	plen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, corruptWrap(what, "reading length", eofToUnexpected(err))
	}
	if plen > maxLen {
		return nil, corruptf(what, "implausible payload length %d (max %d)", plen, maxLen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, corruptWrap(what, "payload truncated", eofToUnexpected(err))
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, corruptWrap(what, "checksum missing", eofToUnexpected(err))
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, corruptf(what, "checksum mismatch (%08x != %08x)", got, want)
	}
	return payload, nil
}

// eofToUnexpected normalizes the bare io.EOF that varint and ReadFull
// readers return mid-structure: inside a frame any EOF is truncation.
func eofToUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// byteReader adapts an io.Reader for binary.ReadUvarint without
// swallowing bytes into a buffer the caller would then miss.
type byteReader struct{ r io.Reader }

func (b byteReader) ReadByte() (byte, error) {
	var one [1]byte
	_, err := io.ReadFull(b.r, one[:])
	return one[0], err
}
