package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// maxDays bounds the day fields a text workload may carry; beyond it
// the input is surely malformed (the paper's runs span 300 days).
const maxDays = 1 << 20

// WriteWorkloadText emits the workload in a line-oriented text format
// for inspection and diffing:
//
//	# ffsage workload days=<n>
//	<day> <sec> <kind> <id> <cg> <size> [short]
func WriteWorkloadText(w io.Writer, wl *Workload) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# ffsage workload days=%d\n", wl.Days); err != nil {
		return err
	}
	for _, op := range wl.Ops {
		short := ""
		if op.ShortLived {
			short = " short"
		}
		if _, err := fmt.Fprintf(bw, "%d %.3f %s %d %d %d%s\n",
			op.Day, op.Sec, op.Kind, op.ID, op.Cg, op.Size, short); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadWorkloadText parses the text format.
func ReadWorkloadText(r io.Reader) (*Workload, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	wl := &Workload{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if _, after, ok := strings.Cut(line, "days="); ok {
				fields := strings.Fields(after)
				if len(fields) == 0 {
					return nil, fmt.Errorf("trace: line %d: empty days=", lineNo)
				}
				d, err := strconv.Atoi(fields[0])
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: bad days: %w", lineNo, err)
				}
				if d < 0 || d > maxDays {
					return nil, fmt.Errorf("trace: line %d: days %d out of range [0,%d]", lineNo, d, maxDays)
				}
				wl.Days = d
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) < 6 || len(f) > 7 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want 6 or 7", lineNo, len(f))
		}
		var op Op
		var err error
		if op.Day, err = strconv.Atoi(f[0]); err != nil {
			return nil, fmt.Errorf("trace: line %d day: %w", lineNo, err)
		}
		if op.Day < 0 || op.Day > maxDays {
			return nil, fmt.Errorf("trace: line %d: day %d out of range [0,%d]", lineNo, op.Day, maxDays)
		}
		if op.Sec, err = strconv.ParseFloat(f[1], 64); err != nil {
			return nil, fmt.Errorf("trace: line %d sec: %w", lineNo, err)
		}
		if math.IsNaN(op.Sec) || math.IsInf(op.Sec, 0) || op.Sec < 0 {
			return nil, fmt.Errorf("trace: line %d: sec %v not a non-negative finite time", lineNo, op.Sec)
		}
		switch f[2] {
		case "create":
			op.Kind = OpCreate
		case "delete":
			op.Kind = OpDelete
		case "rewrite":
			op.Kind = OpRewrite
		default:
			return nil, fmt.Errorf("trace: line %d: kind %q", lineNo, f[2])
		}
		if op.ID, err = strconv.ParseInt(f[3], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d id: %w", lineNo, err)
		}
		if op.Cg, err = strconv.Atoi(f[4]); err != nil {
			return nil, fmt.Errorf("trace: line %d cg: %w", lineNo, err)
		}
		if op.Cg < 0 {
			return nil, fmt.Errorf("trace: line %d: negative cg %d", lineNo, op.Cg)
		}
		if op.Size, err = strconv.ParseInt(f[5], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d size: %w", lineNo, err)
		}
		if op.Size < 0 {
			return nil, fmt.Errorf("trace: line %d: negative size %d", lineNo, op.Size)
		}
		if len(f) == 7 {
			if f[6] != "short" {
				return nil, fmt.Errorf("trace: line %d: unknown trailing field %q", lineNo, f[6])
			}
			op.ShortLived = true
		}
		wl.Ops = append(wl.Ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return wl, nil
}
