package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

var testMagic = [4]byte{'T', 'S', 'T', '1'}

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, {0x01}, bytes.Repeat([]byte{0xab, 0x00}, 5000)} {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, testMagic, 3, payload); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(bytes.NewReader(buf.Bytes()), testMagic, 3, 1<<20, "test frame")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload %d bytes round-tripped to %d bytes", len(payload), len(got))
		}
	}
}

func TestFrameCleanEOFVersusTornTail(t *testing.T) {
	// Zero bytes at the magic is a clean end-of-log: bare io.EOF.
	if _, err := ReadFrame(bytes.NewReader(nil), testMagic, 1, 1<<20, "test frame"); err != io.EOF {
		t.Fatalf("empty input: %v, want io.EOF", err)
	}
	// Any bytes followed by a stop is a torn frame: a *CorruptError
	// that reports Truncated.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, testMagic, 1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for cut := 1; cut < len(b); cut++ {
		_, err := ReadFrame(bytes.NewReader(b[:cut]), testMagic, 1, 1<<20, "test frame")
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("truncation at %d: %v, want *CorruptError", cut, err)
		}
		if !ce.Truncated() {
			t.Errorf("truncation at %d not reported as Truncated: %v", cut, err)
		}
	}
}

func TestFrameRejectsWrongMagicVersionAndLength(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, testMagic, 2, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes()), [4]byte{'N', 'O', 'P', 'E'}, 2, 1<<20, "x"); !errors.As(err, &ce) {
		t.Fatalf("wrong magic: %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes()), testMagic, 3, 1<<20, "x"); !errors.As(err, &ce) {
		t.Fatalf("wrong version: %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(buf.Bytes()), testMagic, 2, 2, "x"); !errors.As(err, &ce) {
		t.Fatalf("payload over maxLen: %v", err)
	}
	if ce.Truncated() {
		t.Error("over-length payload misreported as truncation")
	}
}

// TestCheckpointDecodeNeverPanicsOrLies is the exhaustive single-fault
// sweep behind the crash-safety story: every prefix truncation and
// every single-bit flip of a valid checkpoint must be rejected with a
// typed *CorruptError — never a panic, and never a silent success
// (CRC-32 detects all single-bit errors; flips in the header fail
// structural checks first).
func TestCheckpointDecodeNeverPanicsOrLies(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()

	mustCorrupt := func(label string, data []byte) {
		t.Helper()
		cp, err := ReadCheckpoint(bytes.NewReader(data))
		if err == nil {
			t.Fatalf("%s: accepted (day %d)", label, cp.Day)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: error %v is not a *CorruptError", label, err)
		}
	}

	for cut := 0; cut < len(b); cut++ {
		mustCorrupt("truncated", b[:cut])
	}
	mut := make([]byte, len(b))
	for pos := 0; pos < len(b); pos++ {
		for bit := 0; bit < 8; bit++ {
			copy(mut, b)
			mut[pos] ^= 1 << bit
			mustCorrupt("bit-flipped", mut)
		}
	}
}
