package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzWorkloadTextRoundTrip feeds arbitrary text to the workload
// parser. The parser must never panic; when it accepts the input, the
// parse→write→parse→write cycle must be idempotent (the second write
// byte-identical to the first), which pins down silent data loss —
// fields dropped, reordered, or re-rounded on the way through.
func FuzzWorkloadTextRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteWorkloadText(&seed, sampleWorkload()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("# ffsage workload days=3\n0 1.000 create 5 2 4096\n")
	f.Add("0 1.000 create 5 2 4096 short\n")
	f.Add("0 1.0 delete 5 2 0\n\n# comment\n")
	f.Add("0 NaN create 1 1 1\n")
	f.Add("0 1.0 create 1 1 -5\n")
	f.Add("-1 1.0 create 1 1 1\n")
	f.Add("0 1.0 create 1 1 1 shorty\n")
	f.Add("# days=99999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		wl, err := ReadWorkloadText(strings.NewReader(input))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		var first bytes.Buffer
		if err := WriteWorkloadText(&first, wl); err != nil {
			t.Fatalf("writing accepted workload: %v", err)
		}
		wl2, err := ReadWorkloadText(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := WriteWorkloadText(&second, wl2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("text codec not idempotent:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
		}
	})
}

// FuzzReadWorkload feeds arbitrary bytes to the binary workload reader:
// it must reject or accept without panicking or over-allocating.
func FuzzReadWorkload(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteWorkload(&seed, sampleWorkload()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("FFW1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		_, _ = ReadWorkload(bytes.NewReader(input))
	})
}

// FuzzReadCheckpoint feeds arbitrary bytes to the checkpoint reader:
// anything that is not a well-formed, checksummed checkpoint must be
// rejected without panicking, and every rejection must be the typed
// *CorruptError the recovery paths switch on.
func FuzzReadCheckpoint(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteCheckpoint(&seed, sampleCheckpoint()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("FFC1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		_, err := ReadCheckpoint(bytes.NewReader(input))
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("rejection %v is not a *CorruptError", err)
			}
		}
	})
}

// FuzzReadFrame feeds arbitrary bytes to the generic frame reader (the
// envelope under checkpoints and the aging daemon's queue WAL): it must
// return the payload, io.EOF on empty input, or a *CorruptError —
// never panic. When it does accept, re-encoding the payload must
// reproduce a decodable frame.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteFrame(&seed, [4]byte{'F', 'F', 'Q', '1'}, 1, []byte("record")); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("FFQ1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		magic := [4]byte{'F', 'F', 'Q', '1'}
		payload, err := ReadFrame(bytes.NewReader(input), magic, 1, 1<<20, "fuzz frame")
		if err != nil {
			var ce *CorruptError
			if err != io.EOF && !errors.As(err, &ce) {
				t.Fatalf("rejection %v is neither io.EOF nor *CorruptError", err)
			}
			return
		}
		var again bytes.Buffer
		if err := WriteFrame(&again, magic, 1, payload); err != nil {
			t.Fatal(err)
		}
		back, err := ReadFrame(bytes.NewReader(again.Bytes()), magic, 1, 1<<20, "fuzz frame")
		if err != nil || !bytes.Equal(back, payload) {
			t.Fatalf("accepted payload did not round-trip: %v", err)
		}
	})
}
