package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary format: a magic+version header, then a varint-encoded record
// stream. All integers are unsigned/zig-zag varints; times are float64
// bits. The format is append-friendly and streamable.

var (
	workloadMagic = [4]byte{'F', 'F', 'W', '1'}
	snapshotMagic = [4]byte{'F', 'F', 'S', '1'}
)

type countingWriter struct {
	w *bufio.Writer
}

func (cw countingWriter) uv(x uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	_, err := cw.w.Write(buf[:n])
	return err
}

func (cw countingWriter) sv(x int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], x)
	_, err := cw.w.Write(buf[:n])
	return err
}

func (cw countingWriter) f64(x float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
	_, err := cw.w.Write(buf[:])
	return err
}

type reader struct {
	r *bufio.Reader
}

func (rd reader) uv() (uint64, error) { return binary.ReadUvarint(rd.r) }
func (rd reader) sv() (int64, error)  { return binary.ReadVarint(rd.r) }

func (rd reader) f64() (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(rd.r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// WriteWorkload serializes w in the binary workload format.
func WriteWorkload(w io.Writer, wl *Workload) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(workloadMagic[:]); err != nil {
		return err
	}
	cw := countingWriter{bw}
	if err := cw.uv(uint64(wl.Days)); err != nil {
		return err
	}
	if err := cw.uv(uint64(len(wl.Ops))); err != nil {
		return err
	}
	for _, op := range wl.Ops {
		flags := uint64(op.Kind)
		if op.ShortLived {
			flags |= 0x80
		}
		if err := cw.uv(flags); err != nil {
			return err
		}
		if err := cw.uv(uint64(op.Day)); err != nil {
			return err
		}
		if err := cw.f64(op.Sec); err != nil {
			return err
		}
		if err := cw.sv(op.ID); err != nil {
			return err
		}
		if err := cw.uv(uint64(op.Cg)); err != nil {
			return err
		}
		if err := cw.sv(op.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadWorkload deserializes a binary workload.
func ReadWorkload(r io.Reader) (*Workload, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != workloadMagic {
		return nil, fmt.Errorf("trace: bad workload magic %q", magic[:])
	}
	rd := reader{br}
	days, err := rd.uv()
	if err != nil {
		return nil, err
	}
	n, err := rd.uv()
	if err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("trace: implausible op count %d", n)
	}
	wl := &Workload{Days: int(days), Ops: make([]Op, 0, n)}
	for i := uint64(0); i < n; i++ {
		var op Op
		flags, err := rd.uv()
		if err != nil {
			return nil, fmt.Errorf("trace: op %d: %w", i, err)
		}
		op.Kind = OpKind(flags &^ 0x80)
		op.ShortLived = flags&0x80 != 0
		if op.Kind < OpCreate || op.Kind > OpRewrite {
			return nil, fmt.Errorf("trace: op %d: bad kind %d", i, op.Kind)
		}
		day, err := rd.uv()
		if err != nil {
			return nil, err
		}
		op.Day = int(day)
		if op.Sec, err = rd.f64(); err != nil {
			return nil, err
		}
		if op.ID, err = rd.sv(); err != nil {
			return nil, err
		}
		cg, err := rd.uv()
		if err != nil {
			return nil, err
		}
		op.Cg = int(cg)
		if op.Size, err = rd.sv(); err != nil {
			return nil, err
		}
		wl.Ops = append(wl.Ops, op)
	}
	return wl, nil
}

// WriteSnapshots serializes a series of snapshots.
func WriteSnapshots(w io.Writer, snaps []Snapshot) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	cw := countingWriter{bw}
	if err := cw.uv(uint64(len(snaps))); err != nil {
		return err
	}
	for _, s := range snaps {
		if err := cw.uv(uint64(s.Day)); err != nil {
			return err
		}
		if err := cw.uv(uint64(len(s.Files))); err != nil {
			return err
		}
		for _, f := range s.Files {
			if err := cw.sv(f.Ino); err != nil {
				return err
			}
			if err := cw.sv(f.Size); err != nil {
				return err
			}
			if err := cw.f64(f.CTime); err != nil {
				return err
			}
			d := uint64(0)
			if f.IsDir {
				d = 1
			}
			if err := cw.uv(d); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadSnapshots deserializes a snapshot series.
func ReadSnapshots(r io.Reader) ([]Snapshot, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("trace: bad snapshot magic %q", magic[:])
	}
	rd := reader{br}
	n, err := rd.uv()
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("trace: implausible snapshot count %d", n)
	}
	snaps := make([]Snapshot, 0, n)
	for i := uint64(0); i < n; i++ {
		var s Snapshot
		day, err := rd.uv()
		if err != nil {
			return nil, err
		}
		s.Day = int(day)
		nf, err := rd.uv()
		if err != nil {
			return nil, err
		}
		if nf > 1<<26 {
			return nil, fmt.Errorf("trace: implausible file count %d", nf)
		}
		s.Files = make([]FileMeta, 0, nf)
		for j := uint64(0); j < nf; j++ {
			var f FileMeta
			if f.Ino, err = rd.sv(); err != nil {
				return nil, err
			}
			if f.Size, err = rd.sv(); err != nil {
				return nil, err
			}
			if f.CTime, err = rd.f64(); err != nil {
				return nil, err
			}
			d, err := rd.uv()
			if err != nil {
				return nil, err
			}
			f.IsDir = d != 0
			s.Files = append(s.Files, f)
		}
		snaps = append(snaps, s)
	}
	return snaps, nil
}
