// Package trace defines the data that flows through the aging pipeline
// — file-system snapshots, NFS-style short-lived file traces, and the
// replayable operation log — together with compact binary and
// human-readable text serializations for all of them.
//
// These are the reproduction's stand-ins for the paper's two source
// data sets: the nightly Harvard file-system snapshots [Smith94] and
// the Network Appliance NFS traces [Blackwell95]. See DESIGN.md §2 for
// the substitution argument.
package trace

import "fmt"

// OpKind is a replayable file operation.
type OpKind uint8

const (
	// OpCreate creates a file of Size bytes.
	OpCreate OpKind = iota + 1
	// OpDelete removes the file.
	OpDelete
	// OpRewrite models the paper's modify heuristic: the file is
	// removed (or truncated to zero) and rewritten at Size bytes.
	OpRewrite
)

func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpDelete:
		return "delete"
	case OpRewrite:
		return "rewrite"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one operation in the aging workload. Time is expressed as a day
// number plus seconds within the day; ordering is (Day, Sec, ID).
type Op struct {
	Day  int
	Sec  float64
	Kind OpKind
	// ID identifies the file across operations. For snapshot-derived
	// files it encodes the original system's inode number; short-lived
	// files carry synthetic IDs. IDs are unique per live file.
	ID int64
	// Cg is the cylinder group the file occupied on the original
	// system (ino / ipg there); the replayer routes the file to the
	// matching per-group directory, per Section 3.2 of the paper.
	Cg int
	// Size in bytes; meaningful for OpCreate and OpRewrite.
	Size int64
	// ShortLived marks operations merged in from the NFS trace.
	ShortLived bool
}

// Before reports whether a sorts before b. The order is total —
// (Day, Sec, ID, Kind) — so sorting an op stream is deterministic even
// with coincident timestamps, and a same-instant create/delete pair of
// one ID replays create-first.
func (a Op) Before(b Op) bool {
	if a.Day != b.Day {
		return a.Day < b.Day
	}
	if a.Sec != b.Sec {
		return a.Sec < b.Sec
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	return a.Kind < b.Kind
}

// FileMeta is one file's record in a nightly snapshot: what [Smith94]
// captured (inode number, change time, type, size; we do not need the
// block list on the source side).
type FileMeta struct {
	Ino   int64
	Size  int64
	CTime float64 // inode change time, absolute seconds since day 0
	IsDir bool
}

// Snapshot is the state of the source file system at the end of a day.
type Snapshot struct {
	Day   int
	Files []FileMeta // sorted by Ino
}

// ShortLivedFile is one same-day create/delete pair extracted from the
// NFS trace: the paper's unit for augmenting the snapshot workload.
type ShortLivedFile struct {
	Dir       int // directory key within the trace day
	CreateSec float64
	DeleteSec float64
	Size      int64
}

// TraceDay is the short-lived file activity of one traced day.
type TraceDay struct {
	Files []ShortLivedFile
}

// Workload is a complete replayable aging workload.
type Workload struct {
	Days int
	Ops  []Op // sorted by (Day, Sec, ID)
}

// Stats summarizes a workload the way the paper reports it (Section
// 3.1: "approximately 800,000 file operations that write 48.6 gigabytes
// of data").
type Stats struct {
	Ops          int
	Creates      int
	Deletes      int
	Rewrites     int
	ShortLived   int
	BytesWritten int64
}

// Summarize computes workload statistics.
func (w *Workload) Summarize() Stats {
	var s Stats
	s.Ops = len(w.Ops)
	for _, op := range w.Ops {
		switch op.Kind {
		case OpCreate:
			s.Creates++
			s.BytesWritten += op.Size
		case OpDelete:
			s.Deletes++
		case OpRewrite:
			s.Rewrites++
			s.BytesWritten += op.Size
		}
		if op.ShortLived {
			s.ShortLived++
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("%d ops (%d create, %d delete, %d rewrite; %d short-lived), %.1f GB written",
		s.Ops, s.Creates, s.Deletes, s.Rewrites, s.ShortLived,
		float64(s.BytesWritten)/(1<<30))
}
