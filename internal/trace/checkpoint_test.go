package trace

import (
	"bytes"
	"reflect"
	"testing"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Day:          41,
		NextOp:       123456,
		SkippedOps:   3,
		NoSpaceOps:   1,
		FaultedOps:   2,
		LayoutByDay:  []float64{1, 0.95, 0.91},
		UtilByDay:    []float64{0.1, 0.2, 0.3},
		WorkloadHash: 0xdeadbeefcafef00d,
		Image:        bytes.Repeat([]byte{0x42, 0x17, 0x00}, 1000),
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cp := sampleCheckpoint()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", cp, got)
	}
}

func TestCheckpointDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, cut := range []int{0, 2, 5, 20, len(b) / 2, len(b) - 1} {
		if _, err := ReadCheckpoint(bytes.NewReader(b[:cut])); err == nil {
			t.Errorf("checkpoint truncated at %d accepted", cut)
		}
	}
}

func TestCheckpointDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Flip one bit anywhere past the header: the CRC must catch it. (A
	// flip inside the length prefix is caught as truncation instead.)
	for _, pos := range []int{8, 20, len(b) / 2, len(b) - 2} {
		mut := append([]byte(nil), b...)
		mut[pos] ^= 0x10
		if _, err := ReadCheckpoint(bytes.NewReader(mut)); err == nil {
			t.Errorf("bit flip at %d accepted", pos)
		}
	}
}

func TestCheckpointRejectsUnknownVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, sampleCheckpoint()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 0x7f // version varint follows the 4-byte magic
	if _, err := ReadCheckpoint(bytes.NewReader(b)); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestHashWorkloadDistinguishesWorkloads(t *testing.T) {
	a := sampleWorkload()
	b := sampleWorkload()
	if HashWorkload(a) != HashWorkload(b) {
		t.Fatal("identical workloads hash differently")
	}
	b.Ops[2].Size++
	if HashWorkload(a) == HashWorkload(b) {
		t.Fatal("different workloads hash identically")
	}
}
