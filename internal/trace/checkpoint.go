package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"math"
)

// Checkpoint format: one frame (see frame.go) — magic, format version,
// payload length, payload, CRC-32 (IEEE) of the payload. The length
// prefix plus trailing checksum means a checkpoint truncated by the
// very crash it was meant to survive is detected on read rather than
// resumed from silently.
//
// The payload carries the replay cursor and accumulated report series;
// the file system itself rides along as an opaque image blob
// (ffs.SaveImage), so this package needs no knowledge of ffs.

var checkpointMagic = [4]byte{'F', 'F', 'C', '1'}

// checkpointVersion is bumped whenever the payload layout changes;
// readers reject versions they do not know.
const checkpointVersion = 1

// maxCheckpointPayload bounds how much a reader will buffer; quick-scale
// images are ~1 MB, full-scale well under this.
const maxCheckpointPayload = 1 << 31

// Checkpoint is a resumable aging-replay state.
type Checkpoint struct {
	Day    int // last fully completed simulated day
	NextOp int // index of the first operation not yet applied

	SkippedOps int64
	NoSpaceOps int64
	FaultedOps int64

	// Per-day series for days 0..Day, in day order.
	LayoutByDay []float64
	UtilByDay   []float64

	// WorkloadHash guards against resuming under a different workload;
	// see HashWorkload.
	WorkloadHash uint64

	// Image is the serialized file system (ffs.SaveImage).
	Image []byte
}

// WriteCheckpoint serializes cp to w.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error {
	var payload bytes.Buffer
	bw := bufio.NewWriter(&payload)
	cw := countingWriter{bw}
	for _, v := range []int64{int64(cp.Day), int64(cp.NextOp), cp.SkippedOps, cp.NoSpaceOps, cp.FaultedOps} {
		if err := cw.sv(v); err != nil {
			return err
		}
	}
	if err := cw.uv(cp.WorkloadHash); err != nil {
		return err
	}
	for _, series := range [][]float64{cp.LayoutByDay, cp.UtilByDay} {
		if err := cw.uv(uint64(len(series))); err != nil {
			return err
		}
		for _, v := range series {
			if err := cw.f64(v); err != nil {
				return err
			}
		}
	}
	if err := cw.uv(uint64(len(cp.Image))); err != nil {
		return err
	}
	if _, err := bw.Write(cp.Image); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return WriteFrame(w, checkpointMagic, checkpointVersion, payload.Bytes())
}

// ReadCheckpoint deserializes and verifies a checkpoint. A truncated,
// corrupted, or future-versioned checkpoint yields a *CorruptError
// (possibly wrapped), never a panic; the caller should fall back to an
// earlier checkpoint or a fresh run.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	const what = "checkpoint"
	payload, err := ReadFrame(r, checkpointMagic, checkpointVersion, maxCheckpointPayload, what)
	if err != nil {
		if err == io.EOF {
			return nil, corruptWrap(what, "reading magic", io.ErrUnexpectedEOF)
		}
		return nil, err
	}

	prd := reader{bufio.NewReader(bytes.NewReader(payload))}
	cp := &Checkpoint{}
	var vals [5]int64
	for i := range vals {
		if vals[i], err = prd.sv(); err != nil {
			return nil, corruptWrap(what, fmt.Sprintf("field %d", i), eofToUnexpected(err))
		}
	}
	day, nextOp := vals[0], vals[1]
	cp.SkippedOps, cp.NoSpaceOps, cp.FaultedOps = vals[2], vals[3], vals[4]
	if day < -1 || day > maxDays || nextOp < 0 || nextOp > math.MaxInt32 {
		return nil, corruptf(what, "cursor (day %d, op %d) out of range", day, nextOp)
	}
	cp.Day, cp.NextOp = int(day), int(nextOp)
	if cp.WorkloadHash, err = prd.uv(); err != nil {
		return nil, corruptWrap(what, "workload hash", eofToUnexpected(err))
	}
	for i, series := range []*[]float64{&cp.LayoutByDay, &cp.UtilByDay} {
		n, err := prd.uv()
		if err != nil {
			return nil, corruptWrap(what, fmt.Sprintf("series %d", i), eofToUnexpected(err))
		}
		if n > maxDays+1 {
			return nil, corruptf(what, "series %d has %d entries", i, n)
		}
		s := make([]float64, 0, n)
		for j := uint64(0); j < n; j++ {
			v, err := prd.f64()
			if err != nil {
				return nil, corruptWrap(what, fmt.Sprintf("series %d entry %d", i, j), eofToUnexpected(err))
			}
			s = append(s, v)
		}
		*series = s
	}
	ilen, err := prd.uv()
	if err != nil {
		return nil, corruptWrap(what, "image length", eofToUnexpected(err))
	}
	if ilen > uint64(len(payload)) {
		return nil, corruptf(what, "image length %d exceeds payload", ilen)
	}
	cp.Image = make([]byte, ilen)
	if _, err := io.ReadFull(prd.r, cp.Image); err != nil {
		return nil, corruptWrap(what, "image truncated", eofToUnexpected(err))
	}
	return cp, nil
}

// HashWorkload returns a stable fingerprint of a workload (FNV-64a over
// its binary encoding), stored in checkpoints so a resume under a
// different workload is refused instead of silently diverging.
func HashWorkload(wl *Workload) uint64 {
	h := fnv.New64a()
	if err := WriteWorkload(h, wl); err != nil {
		// Writing to a hash cannot fail; keep the signature clean.
		//lint:ignore ffsvet/nopanic hash.Hash.Write is documented to never return an error
		panic(err)
	}
	return h.Sum64()
}
