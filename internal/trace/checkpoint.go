package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
)

// Checkpoint format: magic, format version, payload length, payload,
// CRC-32 (IEEE) of the payload. The length prefix plus trailing
// checksum means a checkpoint truncated by the very crash it was meant
// to survive is detected on read rather than resumed from silently.
//
// The payload carries the replay cursor and accumulated report series;
// the file system itself rides along as an opaque image blob
// (ffs.SaveImage), so this package needs no knowledge of ffs.

var checkpointMagic = [4]byte{'F', 'F', 'C', '1'}

// checkpointVersion is bumped whenever the payload layout changes;
// readers reject versions they do not know.
const checkpointVersion = 1

// maxCheckpointPayload bounds how much a reader will buffer; quick-scale
// images are ~1 MB, full-scale well under this.
const maxCheckpointPayload = 1 << 31

// Checkpoint is a resumable aging-replay state.
type Checkpoint struct {
	Day    int // last fully completed simulated day
	NextOp int // index of the first operation not yet applied

	SkippedOps int64
	NoSpaceOps int64
	FaultedOps int64

	// Per-day series for days 0..Day, in day order.
	LayoutByDay []float64
	UtilByDay   []float64

	// WorkloadHash guards against resuming under a different workload;
	// see HashWorkload.
	WorkloadHash uint64

	// Image is the serialized file system (ffs.SaveImage).
	Image []byte
}

// WriteCheckpoint serializes cp to w.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error {
	var payload bytes.Buffer
	bw := bufio.NewWriter(&payload)
	cw := countingWriter{bw}
	for _, v := range []int64{int64(cp.Day), int64(cp.NextOp), cp.SkippedOps, cp.NoSpaceOps, cp.FaultedOps} {
		if err := cw.sv(v); err != nil {
			return err
		}
	}
	if err := cw.uv(cp.WorkloadHash); err != nil {
		return err
	}
	for _, series := range [][]float64{cp.LayoutByDay, cp.UtilByDay} {
		if err := cw.uv(uint64(len(series))); err != nil {
			return err
		}
		for _, v := range series {
			if err := cw.f64(v); err != nil {
				return err
			}
		}
	}
	if err := cw.uv(uint64(len(cp.Image))); err != nil {
		return err
	}
	if _, err := bw.Write(cp.Image); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	out := bufio.NewWriter(w)
	if _, err := out.Write(checkpointMagic[:]); err != nil {
		return err
	}
	ocw := countingWriter{out}
	if err := ocw.uv(checkpointVersion); err != nil {
		return err
	}
	if err := ocw.uv(uint64(payload.Len())); err != nil {
		return err
	}
	if _, err := out.Write(payload.Bytes()); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := out.Write(crc[:]); err != nil {
		return err
	}
	return out.Flush()
}

// ReadCheckpoint deserializes and verifies a checkpoint. A truncated,
// corrupted, or future-versioned checkpoint is an error; the caller
// should fall back to an earlier checkpoint or a fresh run.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading checkpoint magic: %w", err)
	}
	if magic != checkpointMagic {
		return nil, fmt.Errorf("trace: bad checkpoint magic %q", magic[:])
	}
	rd := reader{br}
	version, err := rd.uv()
	if err != nil {
		return nil, fmt.Errorf("trace: checkpoint version: %w", err)
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("trace: checkpoint version %d not supported (want %d)", version, checkpointVersion)
	}
	plen, err := rd.uv()
	if err != nil {
		return nil, fmt.Errorf("trace: checkpoint length: %w", err)
	}
	if plen > maxCheckpointPayload {
		return nil, fmt.Errorf("trace: implausible checkpoint payload %d bytes", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("trace: checkpoint truncated: %w", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("trace: checkpoint checksum missing: %w", err)
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("trace: checkpoint checksum mismatch (%08x != %08x)", got, want)
	}

	prd := reader{bufio.NewReader(bytes.NewReader(payload))}
	cp := &Checkpoint{}
	var vals [5]int64
	for i := range vals {
		if vals[i], err = prd.sv(); err != nil {
			return nil, fmt.Errorf("trace: checkpoint field %d: %w", i, err)
		}
	}
	day, nextOp := vals[0], vals[1]
	cp.SkippedOps, cp.NoSpaceOps, cp.FaultedOps = vals[2], vals[3], vals[4]
	if day < -1 || day > maxDays || nextOp < 0 || nextOp > math.MaxInt32 {
		return nil, fmt.Errorf("trace: checkpoint cursor (day %d, op %d) out of range", day, nextOp)
	}
	cp.Day, cp.NextOp = int(day), int(nextOp)
	if cp.WorkloadHash, err = prd.uv(); err != nil {
		return nil, fmt.Errorf("trace: checkpoint workload hash: %w", err)
	}
	for i, series := range []*[]float64{&cp.LayoutByDay, &cp.UtilByDay} {
		n, err := prd.uv()
		if err != nil {
			return nil, fmt.Errorf("trace: checkpoint series %d: %w", i, err)
		}
		if n > maxDays+1 {
			return nil, fmt.Errorf("trace: checkpoint series %d has %d entries", i, n)
		}
		s := make([]float64, 0, n)
		for j := uint64(0); j < n; j++ {
			v, err := prd.f64()
			if err != nil {
				return nil, fmt.Errorf("trace: checkpoint series %d entry %d: %w", i, j, err)
			}
			s = append(s, v)
		}
		*series = s
	}
	ilen, err := prd.uv()
	if err != nil {
		return nil, fmt.Errorf("trace: checkpoint image length: %w", err)
	}
	if ilen > plen {
		return nil, fmt.Errorf("trace: checkpoint image length %d exceeds payload", ilen)
	}
	cp.Image = make([]byte, ilen)
	if _, err := io.ReadFull(prd.r, cp.Image); err != nil {
		return nil, fmt.Errorf("trace: checkpoint image truncated: %w", err)
	}
	return cp, nil
}

// HashWorkload returns a stable fingerprint of a workload (FNV-64a over
// its binary encoding), stored in checkpoints so a resume under a
// different workload is refused instead of silently diverging.
func HashWorkload(wl *Workload) uint64 {
	h := fnv.New64a()
	if err := WriteWorkload(h, wl); err != nil {
		// Writing to a hash cannot fail; keep the signature clean.
		//lint:ignore ffsvet/nopanic hash.Hash.Write is documented to never return an error
		panic(err)
	}
	return h.Sum64()
}
