package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleWorkload() *Workload {
	return &Workload{
		Days: 3,
		Ops: []Op{
			{Day: 0, Sec: 10.5, Kind: OpCreate, ID: 101, Cg: 2, Size: 4096},
			{Day: 0, Sec: 50000, Kind: OpDelete, ID: 101, Cg: 2},
			{Day: 1, Sec: 3.25, Kind: OpCreate, ID: -7, Cg: 0, Size: 123, ShortLived: true},
			{Day: 2, Sec: 9, Kind: OpRewrite, ID: 200, Cg: 26, Size: 1 << 30},
		},
	}
}

func TestWorkloadBinaryRoundTrip(t *testing.T) {
	wl := sampleWorkload()
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, wl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wl, got) {
		t.Errorf("round trip mismatch:\nwant %+v\ngot  %+v", wl, got)
	}
}

func TestWorkloadTextRoundTrip(t *testing.T) {
	wl := sampleWorkload()
	var buf bytes.Buffer
	if err := WriteWorkloadText(&buf, wl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorkloadText(&buf)
	if err != nil {
		t.Fatalf("%v\ntext:\n%s", err, buf.String())
	}
	if wl.Days != got.Days || len(wl.Ops) != len(got.Ops) {
		t.Fatalf("shape mismatch: %+v vs %+v", wl, got)
	}
	for i := range wl.Ops {
		a, b := wl.Ops[i], got.Ops[i]
		// Text format rounds Sec to milliseconds.
		if a.Day != b.Day || a.Kind != b.Kind || a.ID != b.ID || a.Cg != b.Cg ||
			a.Size != b.Size || a.ShortLived != b.ShortLived {
			t.Errorf("op %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snaps := []Snapshot{
		{Day: 0, Files: []FileMeta{{Ino: 4, Size: 100, CTime: 55.5}, {Ino: 9, Size: 0, CTime: 60, IsDir: true}}},
		{Day: 1, Files: nil},
	}
	var buf bytes.Buffer
	if err := WriteSnapshots(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshots(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Day != 0 || len(got[0].Files) != 2 || got[1].Day != 1 {
		t.Fatalf("got %+v", got)
	}
	if !reflect.DeepEqual(snaps[0].Files, got[0].Files) {
		t.Errorf("files mismatch: %+v vs %+v", snaps[0].Files, got[0].Files)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := ReadWorkload(strings.NewReader("XXXXgarbage")); err == nil {
		t.Error("bad workload magic accepted")
	}
	if _, err := ReadSnapshots(strings.NewReader("YYYYgarbage")); err == nil {
		t.Error("bad snapshot magic accepted")
	}
	if _, err := ReadWorkload(strings.NewReader("FF")); err == nil {
		t.Error("truncated magic accepted")
	}
}

func TestTruncatedWorkload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, sampleWorkload()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, cut := range []int{5, 10, len(b) - 3} {
		if _, err := ReadWorkload(bytes.NewReader(b[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestTextParserErrors(t *testing.T) {
	bad := []string{
		"0 1.0 frobnicate 1 2 3",
		"0 1.0 create x 2 3",
		"0 y create 1 2 3",
		"only three fields",
	}
	for _, line := range bad {
		if _, err := ReadWorkloadText(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestOpOrdering(t *testing.T) {
	a := Op{Day: 1, Sec: 5, ID: 10}
	b := Op{Day: 1, Sec: 5, ID: 11}
	c := Op{Day: 1, Sec: 6, ID: 1}
	d := Op{Day: 2, Sec: 0, ID: 0}
	if !a.Before(b) || !b.Before(c) || !c.Before(d) || d.Before(a) {
		t.Error("ordering broken")
	}
}

func TestSummarize(t *testing.T) {
	s := sampleWorkload().Summarize()
	if s.Ops != 4 || s.Creates != 2 || s.Deletes != 1 || s.Rewrites != 1 || s.ShortLived != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.BytesWritten != 4096+123+1<<30 {
		t.Errorf("bytes = %d", s.BytesWritten)
	}
	if !strings.Contains(s.String(), "4 ops") {
		t.Errorf("String = %q", s.String())
	}
}

// Property: random workloads survive the binary round trip bit-exactly.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		wl := &Workload{Days: rng.Intn(500), Ops: make([]Op, 0)}
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			wl.Ops = append(wl.Ops, Op{
				Day:        rng.Intn(500),
				Sec:        rng.Float64() * 86400,
				Kind:       OpKind(1 + rng.Intn(3)),
				ID:         rng.Int63() - rng.Int63(),
				Cg:         rng.Intn(27),
				Size:       rng.Int63n(1 << 25),
				ShortLived: rng.Intn(2) == 0,
			})
		}
		var buf bytes.Buffer
		if err := WriteWorkload(&buf, wl); err != nil {
			return false
		}
		got, err := ReadWorkload(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(wl, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the text parser never panics on arbitrary line soup — it
// either parses or returns an error.
func TestQuickTextParserRobust(t *testing.T) {
	tokens := []string{"0", "-3", "1.5", "create", "delete", "rewrite", "short",
		"#", "days=", "days=x", "9999999999999999999999", "NaN", "", "\t"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		for i := 0; i < 20; i++ {
			n := rng.Intn(8)
			for j := 0; j < n; j++ {
				sb.WriteString(tokens[rng.Intn(len(tokens))])
				sb.WriteByte(' ')
			}
			sb.WriteByte('\n')
		}
		_, err := ReadWorkloadText(strings.NewReader(sb.String()))
		_ = err // error or success are both fine; panics are not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the binary reader never panics on corrupted bytes.
func TestQuickBinaryReaderRobust(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, sampleWorkload()); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := append([]byte(nil), base...)
		for i := 0; i < 1+rng.Intn(5); i++ {
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		}
		_, err := ReadWorkload(bytes.NewReader(b))
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
