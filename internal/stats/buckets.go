package stats

import (
	"fmt"
	"sort"
)

// SizeBucket is one point on a layout-score-vs-file-size curve
// (Figures 3, 5 and 6 of the paper): all files whose size falls in
// (Lo, Hi] bytes, the weighted score across them, and how many files and
// blocks contributed.
type SizeBucket struct {
	Lo, Hi int64 // bytes, half-open (Lo, Hi]
	Label  string
	Files  int
	Blocks int     // scoreable blocks (excludes first blocks)
	Score  float64 // aggregate layout score of the bucket
}

// PowerOfTwoBuckets returns size buckets (lo, hi] covering [minSize,
// maxSize] with power-of-two boundaries, labelled in KB as in the paper's
// x axes (16, 32, ..., 16384). minSize and maxSize must be positive
// powers of two with minSize < maxSize.
func PowerOfTwoBuckets(minSize, maxSize int64) []SizeBucket {
	if minSize <= 0 || maxSize <= minSize {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("stats: bad bucket bounds [%d,%d]", minSize, maxSize))
	}
	var out []SizeBucket
	lo := minSize / 2
	for hi := minSize; hi <= maxSize; hi *= 2 {
		out = append(out, SizeBucket{Lo: lo, Hi: hi, Label: sizeLabel(hi)})
		lo = hi
	}
	return out
}

func sizeLabel(bytes int64) string {
	switch {
	case bytes >= 1<<20 && bytes%(1<<20) == 0:
		return fmt.Sprintf("%dMB", bytes>>20)
	case bytes >= 1<<10:
		return fmt.Sprintf("%dKB", bytes>>10)
	default:
		return fmt.Sprintf("%dB", bytes)
	}
}

// BucketIndex returns the index of the bucket containing size, or -1.
func BucketIndex(buckets []SizeBucket, size int64) int {
	i := sort.Search(len(buckets), func(i int) bool { return buckets[i].Hi >= size })
	if i < len(buckets) && size > buckets[i].Lo && size <= buckets[i].Hi {
		return i
	}
	return -1
}

// TimePoint is one day of a layout-over-time series (Figures 1 and 2).
type TimePoint struct {
	Day   int
	Value float64
}

// Series is a daily time series.
type Series []TimePoint

// Final returns the last value of the series; it panics when empty.
func (s Series) Final() float64 {
	if len(s) == 0 {
		//lint:ignore ffsvet/nopanic precondition panic: empty series is a caller bug; FinalOr is the fallible accessor
		panic("stats: Final of empty series")
	}
	return s[len(s)-1].Value
}

// FinalOr returns the last value of the series, or def when the series
// is empty (a truncated or zero-day run recorded nothing).
func (s Series) FinalOr(def float64) float64 {
	if len(s) == 0 {
		return def
	}
	return s[len(s)-1].Value
}

// At returns the value recorded for day d, or the nearest earlier day's
// value; it panics when the series is empty or d precedes the first day.
func (s Series) At(d int) float64 {
	if len(s) == 0 {
		//lint:ignore ffsvet/nopanic precondition panic: empty series is a caller bug; AtOr is the fallible accessor
		panic("stats: At of empty series")
	}
	i := sort.Search(len(s), func(i int) bool { return s[i].Day > d })
	if i == 0 {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("stats: day %d precedes series start %d", d, s[0].Day))
	}
	return s[i-1].Value
}

// AtOr is At with a default for an empty series or a day before the
// series start.
func (s Series) AtOr(d int, def float64) float64 {
	if len(s) == 0 || d < s[0].Day {
		return def
	}
	return s.At(d)
}

// Values returns the series' values in day order.
func (s Series) Values() []float64 {
	vals := make([]float64, len(s))
	for i, p := range s {
		vals[i] = p.Value
	}
	return vals
}

// MeanValue returns the mean of the series' values.
func (s Series) MeanValue() float64 {
	vals := make([]float64, len(s))
	for i, p := range s {
		vals[i] = p.Value
	}
	return Mean(vals)
}
