package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{2, 4, 6}); !almost(got, 4) {
		t.Errorf("Mean = %v, want 4", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev single = %v", got)
	}
	// Sample sd of {2,4,4,4,5,5,7,9} is ~2.138.
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.1380899) > 1e-6 {
		t.Errorf("StdDev = %v, want ~2.138", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Min(empty) did not panic")
		}
	}()
	Min(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{9}, 75); got != 9 {
		t.Errorf("Percentile single = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !almost(s.Mean, 2) || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.RelStdDev() <= 0 {
		t.Errorf("RelStdDev = %v", s.RelStdDev())
	}
	zero := Summarize(nil)
	if zero.N != 0 || zero.RelStdDev() != 0 {
		t.Errorf("Summarize(nil) = %+v", zero)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestPowerOfTwoBuckets(t *testing.T) {
	bs := PowerOfTwoBuckets(16<<10, 16<<20)
	if len(bs) != 11 {
		t.Fatalf("len = %d, want 11 (16KB..16MB)", len(bs))
	}
	if bs[0].Label != "16KB" || bs[0].Lo != 8<<10 || bs[0].Hi != 16<<10 {
		t.Errorf("first bucket = %+v", bs[0])
	}
	if bs[10].Label != "16MB" || bs[10].Hi != 16<<20 {
		t.Errorf("last bucket = %+v", bs[10])
	}
}

func TestBucketIndex(t *testing.T) {
	bs := PowerOfTwoBuckets(16<<10, 1<<20)
	cases := []struct {
		size int64
		want int
	}{
		{16 << 10, 0},   // exactly 16KB → first bucket
		{8<<10 + 1, 0},  // just above lo
		{8 << 10, -1},   // at lo is excluded
		{17 << 10, 1},   // (16KB,32KB]
		{1 << 20, 6},    // exactly 1MB → last
		{1<<20 + 1, -1}, // beyond
		{1, -1},         // tiny
	}
	for _, c := range cases {
		if got := BucketIndex(bs, c.size); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestSeries(t *testing.T) {
	s := Series{{1, 0.9}, {2, 0.8}, {5, 0.7}}
	if got := s.Final(); got != 0.7 {
		t.Errorf("Final = %v", got)
	}
	if got := s.At(2); got != 0.8 {
		t.Errorf("At(2) = %v", got)
	}
	if got := s.At(4); got != 0.8 {
		t.Errorf("At(4) = %v (nearest earlier)", got)
	}
	if got := s.At(9); got != 0.7 {
		t.Errorf("At(9) = %v", got)
	}
	if got := s.MeanValue(); !almost(got, 0.8) {
		t.Errorf("MeanValue = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("At before start did not panic")
		}
	}()
	s.At(0)
}

// Property: percentile is monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev || v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: every size in (minSize/2, maxSize] maps to exactly one bucket.
func TestQuickBucketCoverage(t *testing.T) {
	bs := PowerOfTwoBuckets(16<<10, 32<<20)
	f := func(raw uint32) bool {
		size := int64(raw)%(32<<20) + 1
		idx := BucketIndex(bs, size)
		if size <= 8<<10 {
			return idx == -1
		}
		if idx < 0 {
			return false
		}
		b := bs[idx]
		return size > b.Lo && size <= b.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
