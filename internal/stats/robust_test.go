package stats

import (
	"math/rand"
	"testing"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1}, 2},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.xs); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
	// Input must not be reordered.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median reordered its input: %v", xs)
	}
}

func TestMADRobustToOutlier(t *testing.T) {
	base := []float64{10, 11, 9, 10, 10, 12, 9}
	spiked := append(append([]float64(nil), base...), 1e9)
	if got, want := MAD(base), 1.0; got != want {
		t.Fatalf("MAD(base) = %v, want %v", got, want)
	}
	if MAD(spiked) > 2 {
		t.Errorf("MAD moved to %v on one outlier; should stay near 1", MAD(spiked))
	}
	if MAD([]float64{7}) != 0 || MAD(nil) != 0 {
		t.Errorf("MAD of degenerate input should be 0")
	}
}

func TestBootstrapCIDeterministicInSeed(t *testing.T) {
	xs := []float64{10, 12, 11, 13, 10, 11, 12, 14, 10, 11}
	lo1, hi1 := BootstrapCI(xs, 0.95, 200, rand.New(rand.NewSource(42)))
	lo2, hi2 := BootstrapCI(xs, 0.95, 200, rand.New(rand.NewSource(42)))
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatalf("same seed gave different intervals: [%v,%v] vs [%v,%v]", lo1, hi1, lo2, hi2)
	}
	if lo1 > hi1 {
		t.Fatalf("inverted interval [%v, %v]", lo1, hi1)
	}
	m := Median(xs)
	if m < lo1 || m > hi1 {
		t.Errorf("median %v outside its own CI [%v, %v]", m, lo1, hi1)
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	if lo, hi := BootstrapCI(nil, 0.95, 100, rand.New(rand.NewSource(1))); lo != 0 || hi != 0 {
		t.Errorf("empty input: got [%v, %v], want [0, 0]", lo, hi)
	}
	if lo, hi := BootstrapCI([]float64{7}, 0.95, 100, rand.New(rand.NewSource(1))); lo != 7 || hi != 7 {
		t.Errorf("single sample: got [%v, %v], want [7, 7]", lo, hi)
	}
}
