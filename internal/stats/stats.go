// Package stats provides the small set of summary statistics used by the
// aging study: means and deviations for repeated benchmark runs,
// power-of-two file-size buckets for the layout-vs-size figures, and
// daily time series for the layout-over-time figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator),
// or 0 when fewer than two samples are present.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Min returns the smallest element of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It panics on an empty
// slice or out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds the statistics the paper reports for repeated benchmark
// runs ("executed ten times ... standard deviations smaller than 1.5% of
// the mean").
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}
}

// RelStdDev returns the standard deviation as a fraction of the mean
// (coefficient of variation), or 0 when the mean is 0.
func (s Summary) RelStdDev() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.StdDev / math.Abs(s.Mean)
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g [%.4g,%.4g]", s.N, s.Mean, s.StdDev, s.Min, s.Max)
}
