package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Robust summaries for wall-clock benchmark samples (internal/perfbench).
// Timing distributions are skewed and spiky — a single descheduling
// event can double one sample — so the benchmark harness reports the
// median with a MAD spread and a bootstrap confidence interval instead
// of mean ± stddev. Everything here is a pure function of its inputs;
// the bootstrap draws its resamples from a caller-seeded generator, so
// the summary of a fixed sample set is byte-for-byte reproducible.

// Median returns the middle value of xs (the mean of the two middle
// values for even lengths), or 0 for an empty slice. xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// MAD returns the median absolute deviation from the median, a robust
// spread estimate: unlike the standard deviation, one wild outlier
// moves it hardly at all. It returns 0 for fewer than two samples.
func MAD(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - m)
	}
	return Median(dev)
}

// BootstrapCI returns a percentile-bootstrap confidence interval for
// the median of xs: resamples sample sets of the same size with
// replacement, takes each one's median, and reports the (1-conf)/2 and
// (1+conf)/2 percentiles of those medians. The resampling indices come
// from rng, so a fixed (xs, conf, resamples, seed) always yields the
// same interval. Degenerate inputs collapse sensibly: an empty xs
// yields (0, 0), and a single sample yields (x, x).
func BootstrapCI(xs []float64, conf float64, resamples int, rng *rand.Rand) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	if len(xs) == 1 || resamples < 1 {
		m := Median(xs)
		return m, m
	}
	medians := make([]float64, resamples)
	resample := make([]float64, len(xs))
	for i := range medians {
		for j := range resample {
			resample[j] = xs[rng.Intn(len(xs))]
		}
		medians[i] = Median(resample)
	}
	alpha := (1 - conf) / 2 * 100
	return Percentile(medians, alpha), Percentile(medians, 100-alpha)
}
