package disk

import (
	"math/rand"
	"testing"
)

func TestQueueFCFSMatchesDirectCalls(t *testing.T) {
	direct := New(PaperParams())
	queued := New(PaperParams())
	q := NewQueue(queued, FCFS)
	lbas := []int64{500000, 100000, 900000, 100128}
	want := 0.0
	for _, lba := range lbas {
		want += direct.Write(lba, 16)
		q.Submit(lba, 16, true)
	}
	if got := q.Drain(); got != want {
		t.Errorf("FCFS drain %v, direct %v", got, want)
	}
	if q.Len() != 0 {
		t.Errorf("queue not empty after drain")
	}
}

func TestElevatorBeatsFCFSOnScatteredWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var lbas []int64
	for i := 0; i < 200; i++ {
		lbas = append(lbas, rng.Int63n(3_000_000))
	}
	run := func(disc Discipline) float64 {
		d := New(PaperParams())
		q := NewQueue(d, disc)
		for _, lba := range lbas {
			q.Submit(lba, 16, true)
		}
		return q.Drain()
	}
	fcfs, elev := run(FCFS), run(Elevator)
	if elev >= fcfs {
		t.Errorf("elevator %v not faster than fcfs %v on scattered writes", elev, fcfs)
	}
	// The sorted sweep should cut seek time substantially.
	if elev > 0.8*fcfs {
		t.Errorf("elevator %v saved <20%% over fcfs %v", elev, fcfs)
	}
}

func TestCoalesceMergesAdjacent(t *testing.T) {
	reqs := []queuedReq{
		{lba: 100, nsect: 16, write: true},
		{lba: 116, nsect: 16, write: true},  // adjacent, same kind → merge
		{lba: 132, nsect: 16, write: false}, // adjacent, different kind
		{lba: 200, nsect: 16, write: true},  // gap
	}
	out := coalesce(reqs)
	if len(out) != 3 {
		t.Fatalf("%d requests after coalesce, want 3", len(out))
	}
	if out[0].nsect != 32 {
		t.Errorf("merged nsect = %d, want 32", out[0].nsect)
	}
}

func TestCoalesceRecoversRotations(t *testing.T) {
	// 8 adjacent 8 KB writes, submitted in order: uncoalesced, each
	// pays its own rotational realignment; coalesced they become one
	// 64 KB transfer.
	run := func(disc Discipline) float64 {
		d := New(PaperParams())
		q := NewQueue(d, disc)
		for i := int64(0); i < 8; i++ {
			q.Submit(1_000_000+16*i, 16, true)
		}
		return q.Drain()
	}
	plain, merged := run(Elevator), run(ElevatorCoalesce)
	if merged >= plain/3 {
		t.Errorf("coalesced %v not ≪ elevator %v", merged, plain)
	}
}

func TestQueueValidation(t *testing.T) {
	d := New(PaperParams())
	defer func() {
		if recover() == nil {
			t.Error("bad request accepted")
		}
	}()
	NewQueue(d, FCFS).Submit(-1, 16, true)
}

func TestDisciplineString(t *testing.T) {
	if FCFS.String() != "fcfs" || Elevator.String() != "elevator" ||
		ElevatorCoalesce.String() != "elevator+coalesce" {
		t.Error("discipline names")
	}
	if Discipline(9).String() == "" {
		t.Error("unknown discipline name empty")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad discipline accepted")
		}
	}()
	NewQueue(d(), Discipline(9))
}

func d() *Disk { return New(PaperParams()) }
