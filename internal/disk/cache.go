package disk

import (
	"container/list"
	"fmt"
)

// BlockCache is an LRU buffer cache in front of a partition, modelling
// the machine's file-system buffer cache (the paper's test machine had
// 64 MB of memory). Reads of cached blocks cost memory-copy time
// instead of disk time; reads of uncached blocks go to the partition
// in maximal contiguous runs (so the drive's read-ahead still sees
// streams) and populate the cache. Writes are write-through: they pay
// full disk cost and refresh the cache.
type BlockCache struct {
	part       *Partition
	blockBytes int64
	capacity   int // blocks
	copyRate   float64

	lru   *list.List // of blockNo, front = most recent
	index map[int64]*list.Element

	hits, misses int64
}

// memoryCopyRate is the modelled rate of serving a cached block to the
// application (mid-1990s memcpy through the VM layer).
const memoryCopyRate = 60e6

// NewBlockCache wraps part with capacityBytes of cache in blockBytes
// units.
func NewBlockCache(part *Partition, blockBytes, capacityBytes int64) *BlockCache {
	if blockBytes <= 0 || capacityBytes < blockBytes {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("disk: bad cache geometry block=%d capacity=%d", blockBytes, capacityBytes))
	}
	return &BlockCache{
		part:       part,
		blockBytes: blockBytes,
		capacity:   int(capacityBytes / blockBytes),
		copyRate:   memoryCopyRate,
		lru:        list.New(),
		index:      make(map[int64]*list.Element),
	}
}

// Stats returns cache hits and misses in blocks.
func (c *BlockCache) Stats() (hits, misses int64) { return c.hits, c.misses }

func (c *BlockCache) touch(b int64) {
	if e, ok := c.index[b]; ok {
		c.lru.MoveToFront(e)
		return
	}
	c.index[b] = c.lru.PushFront(b)
	for c.lru.Len() > c.capacity {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.index, old.Value.(int64))
	}
}

func (c *BlockCache) cached(b int64) bool {
	_, ok := c.index[b]
	return ok
}

// Read reads n bytes at byte offset off, serving cached blocks from
// memory, and returns the elapsed time in seconds.
func (c *BlockCache) Read(off, n int64) float64 {
	if off%c.blockBytes != 0 || n <= 0 {
		// Sub-block requests (fragments) bypass the cache model and
		// pay disk cost; FFS caches whole buffers, and fragment tails
		// share a buffer with their block, but modelling that adds
		// nothing the study needs.
		return c.part.Read(off, n)
	}
	elapsed := 0.0
	first := off / c.blockBytes
	nblocks := (n + c.blockBytes - 1) / c.blockBytes
	for i := int64(0); i < nblocks; {
		b := first + i
		if c.cached(b) {
			c.hits++
			elapsed += float64(c.blockBytes) / c.copyRate
			c.touch(b)
			i++
			continue
		}
		// Collect the maximal run of misses and read it in one go.
		run := int64(1)
		for i+run < nblocks && !c.cached(first+i+run) {
			run++
		}
		bytes := run * c.blockBytes
		if i*c.blockBytes+bytes > n {
			bytes = n - i*c.blockBytes
		}
		elapsed += c.part.Read(off+i*c.blockBytes, bytes)
		for j := int64(0); j < run; j++ {
			c.misses++
			c.touch(b + j)
		}
		i += run
	}
	return elapsed
}

// Write writes through to the partition and refreshes the cache.
func (c *BlockCache) Write(off, n int64) float64 {
	elapsed := c.part.Write(off, n)
	if off%c.blockBytes == 0 {
		first := off / c.blockBytes
		for b := first; b < first+(n+c.blockBytes-1)/c.blockBytes; b++ {
			c.touch(b)
		}
	}
	return elapsed
}
