package disk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestST32430NBasics(t *testing.T) {
	g := ST32430N()
	if got := g.TotalBytes(); got < 2_000_000_000 || got > 2_200_000_000 {
		t.Errorf("capacity = %d, want ~2.1GB", got)
	}
	// 5411 RPM → 11.09 ms/rev.
	if rp := g.RotationPeriod(); math.Abs(rp-0.011088) > 1e-4 {
		t.Errorf("rotation period = %v, want ~11.09ms", rp)
	}
	// Media rate ≈ 116*512/11.09ms ≈ 5.36 MB/s.
	if mr := g.MediaRate(); mr < 5.0e6 || mr > 5.7e6 {
		t.Errorf("media rate = %v, want ~5.36 MB/s", mr)
	}
}

func TestLocateLbaRoundTrip(t *testing.T) {
	g := ST32430N()
	cases := []int64{0, 1, 115, 116, 116*9 - 1, 116 * 9, g.TotalSectors() - 1}
	for _, lba := range cases {
		chs := g.Locate(lba)
		if back := g.Lba(chs); back != lba {
			t.Errorf("round trip %d → %+v → %d", lba, chs, back)
		}
	}
	if got := g.Locate(0); got != (Chs{0, 0, 0}) {
		t.Errorf("Locate(0) = %+v", got)
	}
	if got := g.Locate(116 * 9); got != (Chs{1, 0, 0}) {
		t.Errorf("Locate(spc) = %+v", got)
	}
}

func TestLocatePanics(t *testing.T) {
	g := ST32430N()
	for _, lba := range []int64{-1, g.TotalSectors()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Locate(%d) did not panic", lba)
				}
			}()
			g.Locate(lba)
		}()
	}
}

func TestQuickLocateRoundTrip(t *testing.T) {
	g := ST32430N()
	f := func(seed int64) bool {
		lba := rand.New(rand.NewSource(seed)).Int63n(g.TotalSectors())
		return g.Lba(g.Locate(lba)) == lba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeekCurveFitsAnchors(t *testing.T) {
	s := ST32430NSeek()
	g := ST32430N()
	if got := s.Time(0); got != 0 {
		t.Errorf("Time(0) = %v", got)
	}
	if got := s.Time(1); math.Abs(got-1.7e-3) > 1e-6 {
		t.Errorf("Time(1) = %v, want 1.7ms", got)
	}
	if got := s.Time(g.Cylinders / 3); math.Abs(got-11e-3) > 1e-5 {
		t.Errorf("Time(avg) = %v, want 11ms", got)
	}
	if got := s.Time(g.Cylinders - 1); math.Abs(got-21e-3) > 1e-5 {
		t.Errorf("Time(full) = %v, want 21ms", got)
	}
	if s.MaxDistance() != g.Cylinders-1 {
		t.Errorf("MaxDistance = %d", s.MaxDistance())
	}
}

func TestSeekCurveMonotoneNonNegative(t *testing.T) {
	s := ST32430NSeek()
	prev := 0.0
	for d := 1; d <= s.MaxDistance(); d += 7 {
		tm := s.Time(d)
		if tm <= 0 {
			t.Fatalf("Time(%d) = %v, non-positive", d, tm)
		}
		if tm+1e-9 < prev {
			t.Fatalf("Time(%d) = %v < Time(prev) = %v", d, tm, prev)
		}
		prev = tm
	}
	// Symmetric in sign.
	if s.Time(-100) != s.Time(100) {
		t.Error("seek not symmetric in direction")
	}
}

func TestFitSeekCurvePanics(t *testing.T) {
	cases := []struct {
		name                  string
		cyl                   int
		single, average, full float64
	}{
		{"few cylinders", 4, 1e-3, 2e-3, 3e-3},
		{"non-increasing", 1000, 2e-3, 2e-3, 3e-3},
		{"zero single", 1000, 0, 2e-3, 3e-3},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			FitSeekCurve(c.cyl, c.single, c.average, c.full)
		}()
	}
}
