package disk

import "fmt"

// Per-request time attribution: every drive request (after splitting at
// MaxTransfer) is classified by how it was served and by its size, and
// its duration is split into the four places a request spends time —
// seek, rotational latency, media/bus transfer, and controller
// overhead. The aggregate Stats time totals are *derived* from this
// matrix (see Stats), so the split always reconciles exactly with the
// totals: the paper's Figure 4 throughput numbers decompose into
// explained latency with no residual.

// ReqClass says how a request was served.
type ReqClass int

const (
	// ReqReadHit is a read served from the drive's read-ahead buffer:
	// no mechanical delay, transfer time only.
	ReqReadHit ReqClass = iota
	// ReqReadMech is a read paying the full mechanical path.
	ReqReadMech
	// ReqWrite is a write (always mechanical in this model).
	ReqWrite
	NumReqClasses
)

// ClassLabel returns the metric-name segment for a request class.
func ClassLabel(c ReqClass) string {
	switch c {
	case ReqReadHit:
		return "read.hit"
	case ReqReadMech:
		return "read.mech"
	case ReqWrite:
		return "write"
	}
	return fmt.Sprintf("class%d", int(c))
}

// sizeBucketBounds are the request-size class upper bounds in bytes
// (inclusive), with an implicit +Inf bucket last. Requests are split at
// the controller's MaxTransfer before classification, so with the
// paper's 64 KB limit the last bucket stays empty — it exists for
// configurations with larger transfers.
var sizeBucketBounds = [...]int64{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}

// NumSizeBuckets is the number of request-size classes.
const NumSizeBuckets = len(sizeBucketBounds) + 1

// SizeBucket returns the size class of a request of n bytes.
func SizeBucket(n int64) int {
	for i, ub := range sizeBucketBounds {
		if n <= ub {
			return i
		}
	}
	return len(sizeBucketBounds)
}

// SizeBucketBounds returns the bucket upper bounds in bytes (the +Inf
// bucket is implicit), for building matching obs histograms.
func SizeBucketBounds() []float64 {
	out := make([]float64, len(sizeBucketBounds))
	for i, b := range sizeBucketBounds {
		out[i] = float64(b)
	}
	return out
}

// SizeBucketLabel returns a human label for size class i ("le4K",
// "gt64K").
func SizeBucketLabel(i int) string {
	if i < len(sizeBucketBounds) {
		return fmt.Sprintf("le%dK", sizeBucketBounds[i]>>10)
	}
	return fmt.Sprintf("gt%dK", sizeBucketBounds[len(sizeBucketBounds)-1]>>10)
}

// TimeSplit is one attribution cell: how many requests landed here and
// where their time went, in seconds.
type TimeSplit struct {
	Count    int64
	Seek     float64
	Rot      float64
	Transfer float64
	Overhead float64
}

// Total returns the cell's summed duration.
func (t TimeSplit) Total() float64 { return t.Seek + t.Rot + t.Transfer + t.Overhead }

func (t *TimeSplit) add(o TimeSplit) {
	t.Count += o.Count
	t.Seek += o.Seek
	t.Rot += o.Rot
	t.Transfer += o.Transfer
	t.Overhead += o.Overhead
}

// Attribution is the full per-request time-attribution matrix. It is a
// fixed-size value type so Stats stays comparable and copyable.
type Attribution [NumReqClasses][NumSizeBuckets]TimeSplit

// Add accumulates one request's split into (class, sizeBucket).
func (a *Attribution) Add(c ReqClass, bucket int, t TimeSplit) { a[c][bucket].add(t) }

// Merge accumulates o cell-wise, in fixed matrix order; merging the
// same operands in the same order always yields the same floats.
func (a *Attribution) Merge(o *Attribution) {
	for c := range a {
		for b := range a[c] {
			a[c][b].add(o[c][b])
		}
	}
}

// Class returns the class-c row summed across size buckets, in bucket
// order.
func (a *Attribution) Class(c ReqClass) TimeSplit {
	var t TimeSplit
	for b := range a[c] {
		t.add(a[c][b])
	}
	return t
}

// Totals sums the matrix. The iteration is class-major with a per-class
// subtotal, matching exactly how callers that sum Class() results
// arrive at the same floats — this is the reconciliation contract
// between Stats' time totals and the attribution histograms.
func (a *Attribution) Totals() TimeSplit {
	var t TimeSplit
	for c := ReqClass(0); c < NumReqClasses; c++ {
		t.add(a.Class(c))
	}
	return t
}
