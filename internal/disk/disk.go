package disk

import "fmt"

// Params collects the tunable pieces of the storage-stack model. All
// times are seconds, all rates bytes/second.
type Params struct {
	Geom Geometry
	Seek SeekCurve

	// BusRate is the host transfer rate (fast SCSI-2 behind PCI).
	BusRate float64
	// CtlOverhead is the fixed per-request cost: command setup,
	// interrupt, driver. Every request issued to the drive pays it.
	CtlOverhead float64
	// HeadSwitch is the time to activate an adjacent head (also charged
	// when a transfer walks onto the next track; the drive's skew hides
	// the rotational cost, so only the switch itself is charged).
	HeadSwitch float64
	// MaxTransfer is the controller's largest single transfer in bytes;
	// larger requests are split and each piece pays CtlOverhead. The
	// paper's configuration: 64 KB.
	MaxTransfer int
	// TrackBuffer is the drive's read-ahead buffer size in bytes
	// (512 KB on the ST32430N). A read that continues, or lands a short
	// forward gap after, the previous read is served from the buffer at
	// the media/bus rate with no seek or rotational delay.
	TrackBuffer int
	// ReadAheadSlack is how many sectors of forward gap a buffered read
	// may skip and still hit the buffer (the drive has read past them
	// anyway). One track's worth is the model default.
	ReadAheadSlack int
	// InitialSpin offsets the platter's starting angle by this many
	// seconds of rotation. The paper ran each benchmark ten times; in a
	// deterministic simulation the honest analogue of run-to-run noise
	// is the arbitrary rotational phase each run begins at, which this
	// parameter varies.
	InitialSpin float64
}

// PaperParams returns the storage model for the paper's benchmark
// machine (Table 1): ST32430N, BusLogic 946C, PCI, 64 KB max transfer,
// 512 KB track buffer.
func PaperParams() Params {
	g := ST32430N()
	return Params{
		Geom:           g,
		Seek:           ST32430NSeek(),
		BusRate:        10e6, // fast SCSI-2
		CtlOverhead:    0.7e-3,
		HeadSwitch:     1.0e-3,
		MaxTransfer:    64 << 10,
		TrackBuffer:    512 << 10,
		ReadAheadSlack: 116,
	}
}

// SparcStation1Params returns the storage model of the earlier study
// the paper compares itself to in §5.1 ([Seltzer95]'s SparcStation 1):
// a comparable disk behind a far slower host path. The paper argues its
// own larger speedups come from the PCI machine's higher bus bandwidth
// raising the seek-to-transfer ratio; swapping these parameters into
// the benchmarks reproduces that argument (the A6 study).
func SparcStation1Params() Params {
	p := PaperParams()
	p.BusRate = 1.5e6    // SS1 SCSI effective host rate
	p.CtlOverhead = 2e-3 // slower CPU and controller
	return p
}

// Stats accumulates what the disk spent its time on, for tests,
// debugging and the ablation benches. The four time totals are derived
// from the per-request attribution matrix when Stats() snapshots them
// (always in the same fixed order), so SeekTime is *exactly* the sum of
// Attr's seek cells — the observability layer's reconciliation
// guarantee, asserted by tests.
type Stats struct {
	Reads, Writes     int64 // requests after splitting
	SectorsRead       int64
	SectorsWritten    int64
	BufferHits        int64   // read requests served by read-ahead
	SeekTime          float64 // seconds; = Attr.Totals().Seek
	RotTime           float64 // = Attr.Totals().Rot
	TransferTime      float64 // = Attr.Totals().Transfer
	OverheadTime      float64 // = Attr.Totals().Overhead
	SeekCount         int64   // non-zero-distance seeks
	CylindersTraveled int64
	IOErrors          int64 // injected faults retried (see SetFaultHook)

	// Attr splits every request's duration by how it was served and by
	// request size; see attr.go.
	Attr Attribution
}

// Add returns the cell-wise sum of two snapshots, with the time totals
// recomputed from the merged attribution so the reconciliation
// invariant survives aggregation across disks.
func (s Stats) Add(o Stats) Stats {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.SectorsRead += o.SectorsRead
	s.SectorsWritten += o.SectorsWritten
	s.BufferHits += o.BufferHits
	s.SeekCount += o.SeekCount
	s.CylindersTraveled += o.CylindersTraveled
	s.IOErrors += o.IOErrors
	s.Attr.Merge(&o.Attr)
	t := s.Attr.Totals()
	s.SeekTime, s.RotTime, s.TransferTime, s.OverheadTime = t.Seek, t.Rot, t.Transfer, t.Overhead
	return s
}

// IOFaultHook is the fault-injection point for the disk model. It is a
// structural interface so fault plans (internal/faults) can live in a
// package that does not import disk.
type IOFaultHook interface {
	// BeforeIO is consulted once per drive request (after splitting at
	// MaxTransfer). A non-nil error injects a recoverable medium error:
	// the drive retries the request after a lost revolution plus a
	// controller round-trip, which is how real drives surface soft
	// errors — as latency, not failure.
	BeforeIO(write bool, lba int64, nsect int) error
}

// Disk is a single-actuator disk with a deterministic clock. It is not
// safe for concurrent use; every benchmark drives its own Disk.
//
// The clock only advances through Read, Write and Idle; rotational
// position is derived from the clock, so "thinking too long" between two
// sequential writes naturally costs a missed revolution.
type Disk struct {
	p Params

	now    float64 // simulated seconds since spin-up
	curCyl int

	// Read-ahead state: the drive streams ahead of the last read.
	raValid bool
	raFrom  int64 // first LBA that is (or will be) buffered
	raCyl   int   // cylinder the read-ahead stream is on

	faults IOFaultHook

	stats Stats
}

// New returns a disk with the head at cylinder zero and the platter at
// the phase implied by InitialSpin.
func New(p Params) *Disk {
	if p.Geom.TotalSectors() == 0 {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic("disk: zero-size geometry")
	}
	if p.MaxTransfer <= 0 || p.MaxTransfer%p.Geom.SectorSize != 0 {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("disk: bad MaxTransfer %d", p.MaxTransfer))
	}
	if p.InitialSpin < 0 {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("disk: negative initial spin %v", p.InitialSpin))
	}
	return &Disk{p: p, now: p.InitialSpin}
}

// Params returns the model parameters the disk was built with.
func (d *Disk) Params() Params { return d.p }

// Now returns the current simulated time in seconds.
func (d *Disk) Now() float64 { return d.now }

// Stats returns a copy of the accumulated statistics, with the time
// totals computed from the attribution matrix in its fixed order.
func (d *Disk) Stats() Stats {
	st := d.stats
	t := st.Attr.Totals()
	st.SeekTime, st.RotTime, st.TransferTime, st.OverheadTime = t.Seek, t.Rot, t.Transfer, t.Overhead
	return st
}

// ResetStats zeroes the statistics without touching the clock or head.
func (d *Disk) ResetStats() { d.stats = Stats{} }

// SetFaultHook installs (or, with nil, removes) the fault-injection
// hook consulted before every drive request.
func (d *Disk) SetFaultHook(h IOFaultHook) { d.faults = h }

// Idle advances the clock without disk activity (host compute time).
func (d *Disk) Idle(seconds float64) {
	if seconds < 0 {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic("disk: negative idle")
	}
	d.now += seconds
}

// angleSectors returns the sector index currently under the heads,
// as a float in [0, SectorsPerTrack).
func (d *Disk) angleSectors() float64 {
	spt := float64(d.p.Geom.SectorsPerTrack)
	rev := d.now / d.p.Geom.RotationPeriod()
	frac := rev - float64(int64(rev))
	return frac * spt
}

// Read performs a read of nsect sectors at lba, advancing the clock, and
// returns the request's duration in seconds. Requests larger than
// MaxTransfer are issued as several back-to-back transfers.
func (d *Disk) Read(lba int64, nsect int) float64 {
	return d.access(lba, nsect, false)
}

// Write performs a write of nsect sectors at lba, advancing the clock,
// and returns the request's duration in seconds.
func (d *Disk) Write(lba int64, nsect int) float64 {
	return d.access(lba, nsect, true)
}

func (d *Disk) access(lba int64, nsect int, write bool) float64 {
	if nsect <= 0 {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("disk: non-positive transfer %d", nsect))
	}
	if lba < 0 || lba+int64(nsect) > d.p.Geom.TotalSectors() {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("disk: access [%d,%d) out of range", lba, lba+int64(nsect)))
	}
	start := d.now
	maxSect := d.p.MaxTransfer / d.p.Geom.SectorSize
	for nsect > 0 {
		chunk := nsect
		if chunk > maxSect {
			chunk = maxSect
		}
		d.request(lba, chunk, write)
		lba += int64(chunk)
		nsect -= chunk
	}
	return d.now - start
}

// request issues one ≤MaxTransfer request to the drive, attributing
// its duration to exactly one (class, size) attribution cell.
func (d *Disk) request(lba int64, nsect int, write bool) {
	g := d.p.Geom
	split := TimeSplit{Count: 1}
	d.now += d.p.CtlOverhead
	split.Overhead += d.p.CtlOverhead

	if d.faults != nil {
		if err := d.faults.BeforeIO(write, lba, nsect); err != nil {
			// Recoverable medium error: the drive retries after a lost
			// revolution, and the controller pays another round-trip.
			d.stats.IOErrors++
			penalty := g.RotationPeriod() + d.p.CtlOverhead
			d.now += penalty
			split.Overhead += penalty
		}
	}

	bucket := SizeBucket(int64(nsect) * int64(g.SectorSize))
	if write {
		d.stats.Writes++
		d.stats.SectorsWritten += int64(nsect)
		// A write lands wherever the platters happen to be: full
		// mechanical path, and it invalidates the read-ahead stream.
		d.raValid = false
		split.Seek, split.Rot, split.Transfer = d.mechanicalTransfer(lba, nsect)
		d.stats.Attr.Add(ReqWrite, bucket, split)
		return
	}

	d.stats.Reads++
	d.stats.SectorsRead += int64(nsect)
	if d.bufferHit(lba, nsect) {
		d.stats.BufferHits++
		// Served at the slower of bus rate and the media rate at which
		// the drive keeps streaming ahead. Track and cylinder switches
		// inside the stream are hidden by the format's skew.
		bytes := float64(nsect * g.SectorSize)
		busT := bytes / d.p.BusRate
		mediaT := float64(lba+int64(nsect)-d.raFrom) * g.SectorTime()
		t := busT
		if mediaT > t {
			t = mediaT
		}
		d.now += t
		split.Transfer += t
		d.stats.Attr.Add(ReqReadHit, bucket, split)
		d.advanceReadAhead(lba, nsect)
		return
	}
	split.Seek, split.Rot, split.Transfer = d.mechanicalTransfer(lba, nsect)
	d.stats.Attr.Add(ReqReadMech, bucket, split)
	d.advanceReadAhead(lba, nsect)
}

// bufferHit reports whether a read of [lba, lba+nsect) is served by the
// drive's read-ahead: it must start at or a short forward gap past the
// stream position, and fit within the buffer.
func (d *Disk) bufferHit(lba int64, nsect int) bool {
	if !d.raValid || d.p.TrackBuffer == 0 {
		return false
	}
	if lba < d.raFrom {
		return false // backward: the stream has moved on
	}
	gap := lba - d.raFrom
	if gap > int64(d.p.ReadAheadSlack) {
		return false
	}
	bufSectors := int64(d.p.TrackBuffer / d.p.Geom.SectorSize)
	return gap+int64(nsect) <= bufSectors
}

// advanceReadAhead records that the drive is now streaming from the end
// of this read.
func (d *Disk) advanceReadAhead(lba int64, nsect int) {
	end := lba + int64(nsect)
	d.raValid = true
	d.raFrom = end
	if end < d.p.Geom.TotalSectors() {
		d.raCyl = d.p.Geom.Locate(end).Cyl
	}
	d.curCyl = d.p.Geom.Locate(end - 1).Cyl
}

// mechanicalTransfer performs seek + rotational latency + media
// transfer for one request, returning the three components so the
// caller can attribute them. Track and cylinder boundaries crossed
// mid-transfer cost nothing extra: the disk's format skew exists
// precisely to let sequential transfers stream across them, and
// charging them here would silently shift the rotational phase that
// the lost-rotation write behaviour depends on.
func (d *Disk) mechanicalTransfer(lba int64, nsect int) (seek, rot, xfer float64) {
	g := d.p.Geom
	loc := g.Locate(lba)

	// Seek.
	dist := loc.Cyl - d.curCyl
	if dist < 0 {
		dist = -dist
	}
	seek = d.p.Seek.Time(dist)
	if dist == 0 && seek == 0 {
		// Same cylinder: a head switch may still be needed; charge it
		// unconditionally at half weight as an average over "same head"
		// and "different head" cases, keeping the model deterministic
		// without tracking the active head.
		seek = d.p.HeadSwitch / 2
	}
	d.now += seek
	if dist > 0 {
		d.stats.SeekCount++
		d.stats.CylindersTraveled += int64(dist)
	}
	d.curCyl = loc.Cyl

	// Rotational latency: wait for the start sector to come around.
	cur := d.angleSectors()
	target := float64(loc.Sect)
	waitSectors := target - cur
	if waitSectors < 0 {
		waitSectors += float64(g.SectorsPerTrack)
	}
	rot = waitSectors * g.SectorTime()
	d.now += rot

	// Media transfer; skew hides boundary crossings.
	xfer = float64(nsect) * g.SectorTime()
	// The host transfer overlaps the media transfer via the drive
	// buffer; the slower of the two dominates.
	busT := float64(nsect*g.SectorSize) / d.p.BusRate
	if busT > xfer {
		xfer = busT
	}
	d.now += xfer
	d.curCyl = g.Locate(lba + int64(nsect) - 1).Cyl
	return seek, rot, xfer
}
