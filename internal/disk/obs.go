package disk

import "ffsage/internal/obs"

// PublishStats publishes a Stats snapshot into the scope: the integer
// request counters, and one weighted histogram per (request class, time
// component) whose buckets are the request-size classes and whose
// weights are seconds. Histogram sums reconcile exactly with the
// snapshot's time totals because both are accumulated in the same fixed
// bucket order (see Attribution.Totals).
//
// Callers must follow the single-writer convention: one scope per disk
// (or per deterministic aggregation), published sequentially.
func PublishStats(sc *obs.Scope, st Stats) {
	sc.Counter("requests.read").Add(st.Reads)
	sc.Counter("requests.write").Add(st.Writes)
	sc.Counter("sectors.read").Add(st.SectorsRead)
	sc.Counter("sectors.written").Add(st.SectorsWritten)
	sc.Counter("buffer_hits").Add(st.BufferHits)
	sc.Counter("seeks").Add(st.SeekCount)
	sc.Counter("cylinders_traveled").Add(st.CylindersTraveled)
	sc.Counter("io_errors").Add(st.IOErrors)

	bounds := SizeBucketBounds()
	for c := ReqClass(0); c < NumReqClasses; c++ {
		cs := sc.Scope(ClassLabel(c))
		seek := cs.Histogram("seek_s", bounds)
		rot := cs.Histogram("rot_s", bounds)
		xfer := cs.Histogram("transfer_s", bounds)
		ovh := cs.Histogram("overhead_s", bounds)
		for b := 0; b < NumSizeBuckets; b++ {
			cell := st.Attr[c][b]
			seek.AddBucket(b, cell.Count, cell.Seek)
			rot.AddBucket(b, cell.Count, cell.Rot)
			xfer.AddBucket(b, cell.Count, cell.Transfer)
			ovh.AddBucket(b, cell.Count, cell.Overhead)
		}
	}
}
