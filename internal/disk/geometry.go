// Package disk models the benchmark machine's storage stack — a Seagate
// ST32430N behind a BusLogic 946C SCSI controller on a PCI bus (Table 1
// of the paper) — at the level of detail the paper's performance effects
// require: a seek-time curve, rotational position that advances with
// simulated time, track-buffer read-ahead on reads, no write-behind on
// writes, and a 64 KB controller transfer limit.
//
// Two effects central to the paper fall out of this model rather than
// being special-cased:
//
//   - back-to-back writes of physically contiguous data lose a full
//     rotation per request (the disk rotates past the target sector while
//     the next command is issued), which is why the paper's realloc file
//     systems can out-write the raw device; and
//   - sequential reads do not lose rotations, because the drive's track
//     buffer keeps reading ahead.
package disk

import "fmt"

// Geometry describes the physical layout of a disk. The model treats
// sectors-per-track as constant (the ST32430N is zoned; the paper quotes
// the average, 116, which we adopt for determinism — see DESIGN.md §2).
type Geometry struct {
	Cylinders       int // seek distance domain
	Heads           int // tracks per cylinder
	SectorsPerTrack int
	SectorSize      int // bytes
	RPM             int
}

// ST32430N returns the paper's disk geometry (Table 1, hardware columns).
func ST32430N() Geometry {
	return Geometry{
		Cylinders:       3992,
		Heads:           9,
		SectorsPerTrack: 116,
		SectorSize:      512,
		RPM:             5411,
	}
}

// TotalSectors returns the number of addressable sectors.
func (g Geometry) TotalSectors() int64 {
	return int64(g.Cylinders) * int64(g.Heads) * int64(g.SectorsPerTrack)
}

// TotalBytes returns the capacity in bytes.
func (g Geometry) TotalBytes() int64 {
	return g.TotalSectors() * int64(g.SectorSize)
}

// RotationPeriod returns the time of one revolution in seconds.
func (g Geometry) RotationPeriod() float64 {
	return 60.0 / float64(g.RPM)
}

// SectorTime returns the media time to pass one sector under the head.
func (g Geometry) SectorTime() float64 {
	return g.RotationPeriod() / float64(g.SectorsPerTrack)
}

// MediaRate returns the sustained media transfer rate in bytes/second.
func (g Geometry) MediaRate() float64 {
	return float64(g.SectorsPerTrack*g.SectorSize) / g.RotationPeriod()
}

// Chs is a cylinder/head/sector address.
type Chs struct {
	Cyl, Head, Sect int
}

// Locate maps a logical block address to its cylinder/head/sector.
func (g Geometry) Locate(lba int64) Chs {
	if lba < 0 || lba >= g.TotalSectors() {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("disk: lba %d out of range [0,%d)", lba, g.TotalSectors()))
	}
	spc := int64(g.Heads) * int64(g.SectorsPerTrack)
	return Chs{
		Cyl:  int(lba / spc),
		Head: int((lba % spc) / int64(g.SectorsPerTrack)),
		Sect: int(lba % int64(g.SectorsPerTrack)),
	}
}

// Lba maps a cylinder/head/sector address back to a logical block address.
func (g Geometry) Lba(c Chs) int64 {
	if c.Cyl < 0 || c.Cyl >= g.Cylinders || c.Head < 0 || c.Head >= g.Heads ||
		c.Sect < 0 || c.Sect >= g.SectorsPerTrack {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("disk: bad chs %+v", c))
	}
	return (int64(c.Cyl)*int64(g.Heads)+int64(c.Head))*int64(g.SectorsPerTrack) + int64(c.Sect)
}
