package disk

import (
	"fmt"
	"sort"
)

// Discipline is a request-queue scheduling policy.
type Discipline int

// The disciplines the era's drivers used.
const (
	// FCFS dispatches requests in arrival order.
	FCFS Discipline = iota
	// Elevator sorts the queue by ascending disk address and services
	// it in one sweep (the BSD disksort(9) discipline, simplified to a
	// single batch).
	Elevator
	// ElevatorCoalesce additionally merges physically adjacent
	// requests of the same kind before dispatch — the driver-level
	// sibling of the file system's clustering.
	ElevatorCoalesce
)

func (d Discipline) String() string {
	switch d {
	case FCFS:
		return "fcfs"
	case Elevator:
		return "elevator"
	case ElevatorCoalesce:
		return "elevator+coalesce"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Queue models a driver request queue in front of a disk. Requests
// accumulate with Submit (no simulated time passes) and execute with
// Drain, which dispatches them in the discipline's order and returns
// the elapsed time. It lets the benchmarks separate what good *layout*
// buys (the paper's subject) from what good *scheduling* buys.
type Queue struct {
	disk    *Disk
	disc    Discipline
	pending []queuedReq
}

type queuedReq struct {
	seq   int
	lba   int64
	nsect int
	write bool
}

// NewQueue returns an empty queue over d.
func NewQueue(d *Disk, disc Discipline) *Queue {
	if disc < FCFS || disc > ElevatorCoalesce {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("disk: unknown discipline %d", disc))
	}
	return &Queue{disk: d, disc: disc}
}

// Len returns the number of pending requests.
func (q *Queue) Len() int { return len(q.pending) }

// Submit enqueues a request; lba/nsect follow Disk.Read conventions.
func (q *Queue) Submit(lba int64, nsect int, write bool) {
	if nsect <= 0 || lba < 0 || lba+int64(nsect) > q.disk.p.Geom.TotalSectors() {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("disk: bad queued request [%d,%d)", lba, lba+int64(nsect)))
	}
	q.pending = append(q.pending, queuedReq{seq: len(q.pending), lba: lba, nsect: nsect, write: write})
}

// Drain dispatches every pending request in the discipline's order and
// returns the total elapsed time in seconds. The queue is empty
// afterwards.
func (q *Queue) Drain() float64 {
	reqs := q.pending
	q.pending = nil
	switch q.disc {
	case FCFS:
		// Arrival order.
	case Elevator, ElevatorCoalesce:
		sort.Slice(reqs, func(i, j int) bool {
			if reqs[i].lba != reqs[j].lba {
				return reqs[i].lba < reqs[j].lba
			}
			return reqs[i].seq < reqs[j].seq
		})
		if q.disc == ElevatorCoalesce {
			reqs = coalesce(reqs)
		}
	}
	elapsed := 0.0
	for _, r := range reqs {
		if r.write {
			elapsed += q.disk.Write(r.lba, r.nsect)
		} else {
			elapsed += q.disk.Read(r.lba, r.nsect)
		}
	}
	return elapsed
}

// coalesce merges sorted, physically adjacent same-kind requests; the
// disk still splits merged requests at its transfer limit.
func coalesce(sorted []queuedReq) []queuedReq {
	out := sorted[:0]
	for _, r := range sorted {
		n := len(out)
		if n > 0 && out[n-1].write == r.write &&
			out[n-1].lba+int64(out[n-1].nsect) == r.lba {
			out[n-1].nsect += r.nsect
			continue
		}
		out = append(out, r)
	}
	return out
}
