package disk

import (
	"bytes"
	"strings"
	"testing"

	"ffsage/internal/obs"
)

// driveMixedTraffic issues a deterministic mix of mechanical reads,
// buffered re-reads, writes, and multi-chunk transfers.
func driveMixedTraffic(d *Disk) {
	d.Read(100000, 16)
	d.Read(100016, 16) // buffer hit: continues the stream
	d.Write(900000, 16)
	d.Read(5000, 200) // splits at MaxTransfer
	d.Write(5000, 300)
	d.Idle(0.01)
	d.Read(5200, 8)
}

// TestAttributionReconcilesExactly pins the observability contract:
// the Stats time totals are exactly the attribution matrix's sums — no
// epsilon — and the totals account for the full simulated duration.
func TestAttributionReconcilesExactly(t *testing.T) {
	d := newTestDisk()
	start := d.Now()
	driveMixedTraffic(d)
	st := d.Stats()

	var seek, rot, xfer, ovh float64
	var n int64
	for c := ReqClass(0); c < NumReqClasses; c++ {
		cl := st.Attr.Class(c)
		seek += cl.Seek
		rot += cl.Rot
		xfer += cl.Transfer
		ovh += cl.Overhead
		n += cl.Count
	}
	if st.SeekTime != seek || st.RotTime != rot || st.TransferTime != xfer || st.OverheadTime != ovh {
		t.Errorf("totals do not reconcile exactly:\nstats (%v %v %v %v)\nattr  (%v %v %v %v)",
			st.SeekTime, st.RotTime, st.TransferTime, st.OverheadTime, seek, rot, xfer, ovh)
	}
	if n != st.Reads+st.Writes {
		t.Errorf("attribution count %d != %d requests", n, st.Reads+st.Writes)
	}
	if got := st.Attr.Class(ReqReadHit).Count; got != st.BufferHits {
		t.Errorf("read-hit count %d != BufferHits %d", got, st.BufferHits)
	}
	if got := st.Attr.Class(ReqWrite).Count; got != st.Writes {
		t.Errorf("write count %d != Writes %d", got, st.Writes)
	}
	// Every simulated second outside Idle is attributed somewhere.
	total := st.SeekTime + st.RotTime + st.TransferTime + st.OverheadTime
	if diff := (d.Now() - start) - 0.01 - total; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("unattributed time %v", diff)
	}
}

func TestStatsAddRecomputesTotals(t *testing.T) {
	d1, d2 := newTestDisk(), newTestDisk()
	driveMixedTraffic(d1)
	d2.Write(40000, 64)
	d2.Read(40000, 64)
	sum := d1.Stats().Add(d2.Stats())
	tt := sum.Attr.Totals()
	if sum.SeekTime != tt.Seek || sum.RotTime != tt.Rot ||
		sum.TransferTime != tt.Transfer || sum.OverheadTime != tt.Overhead {
		t.Error("Add did not recompute time totals from the merged attribution")
	}
	if sum.Reads != d1.Stats().Reads+d2.Stats().Reads {
		t.Errorf("Reads = %d", sum.Reads)
	}
}

func TestSizeBucketing(t *testing.T) {
	cases := map[int64]int{
		512:           0,
		4 << 10:       0,
		(4 << 10) + 1: 1,
		8 << 10:       1,
		16 << 10:      2,
		32 << 10:      3,
		64 << 10:      4,
		65 << 10:      5,
	}
	for n, want := range cases {
		if got := SizeBucket(n); got != want {
			t.Errorf("SizeBucket(%d) = %d, want %d", n, got, want)
		}
	}
	if SizeBucketLabel(0) != "le4K" || SizeBucketLabel(NumSizeBuckets-1) != "gt64K" {
		t.Errorf("labels: %q %q", SizeBucketLabel(0), SizeBucketLabel(NumSizeBuckets-1))
	}
}

// TestPublishStatsReconciles publishes a snapshot and checks the obs
// histograms carry the same totals, summed the same way.
func TestPublishStatsReconciles(t *testing.T) {
	d := newTestDisk()
	driveMixedTraffic(d)
	st := d.Stats()
	reg := obs.NewRegistry()
	PublishStats(reg.Scope("disk.test"), st)

	var seek float64
	var count int64
	for c := ReqClass(0); c < NumReqClasses; c++ {
		h := reg.Scope("disk.test").Scope(ClassLabel(c)).Histogram("seek_s", SizeBucketBounds())
		seek += h.Sum()
		count += h.Count()
	}
	if seek != st.SeekTime {
		t.Errorf("published seek sum %v != stats %v", seek, st.SeekTime)
	}
	if count != st.Reads+st.Writes {
		t.Errorf("published count %d != %d", count, st.Reads+st.Writes)
	}
	if got := reg.Counter("disk.test.buffer_hits").Value(); got != st.BufferHits {
		t.Errorf("buffer_hits counter %d != %d", got, st.BufferHits)
	}
	var buf bytes.Buffer
	if err := reg.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hist disk.test.read.mech.seek_s le=4096") {
		t.Errorf("snapshot missing attribution histogram:\n%s", buf.String())
	}
}
