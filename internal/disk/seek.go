package disk

import (
	"fmt"
	"math"
)

// SeekCurve models seek time as t(d) = a + b·√d + c·d for a seek of d
// cylinders (d ≥ 1; t(0) = 0). The three coefficients are fitted to the
// drive's single-cylinder, average (one-third stroke), and full-stroke
// seek times, the three numbers drive vendors published in the era.
type SeekCurve struct {
	a, b, c   float64
	cylinders int
}

// FitSeekCurve solves for the curve passing through
// (1, single), (cylinders/3, average), (cylinders-1, full).
// Times are in seconds. It panics when the inputs are not increasing or
// the system is singular (which cannot happen for distinct positive
// distances).
func FitSeekCurve(cylinders int, single, average, full float64) SeekCurve {
	if cylinders < 16 {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("disk: too few cylinders %d for seek fit", cylinders))
	}
	if !(0 < single && single < average && average < full) {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("disk: seek times not increasing: %v %v %v", single, average, full))
	}
	d1, d2, d3 := 1.0, float64(cylinders)/3, float64(cylinders-1)
	// Solve the 3x3 linear system
	//   a + b√di + c·di = ti
	// by Gaussian elimination.
	m := [3][4]float64{
		{1, math.Sqrt(d1), d1, single},
		{1, math.Sqrt(d2), d2, average},
		{1, math.Sqrt(d3), d3, full},
	}
	for col := 0; col < 3; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		m[col], m[piv] = m[piv], m[col]
		if math.Abs(m[col][col]) < 1e-12 {
			//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
			panic("disk: singular seek fit")
		}
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for k := col; k < 4; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	return SeekCurve{
		a:         m[0][3] / m[0][0],
		b:         m[1][3] / m[1][1],
		c:         m[2][3] / m[2][2],
		cylinders: cylinders,
	}
}

// ST32430NSeek returns the seek curve used throughout the reproduction:
// average 11 ms (Table 1), with era-typical 1.7 ms track-to-track and
// 21 ms full-stroke endpoints.
func ST32430NSeek() SeekCurve {
	return FitSeekCurve(ST32430N().Cylinders, 1.7e-3, 11e-3, 21e-3)
}

// Time returns the seek time in seconds for a move of d cylinders.
// Negative distances are folded; a zero-distance seek is free. The curve
// is clamped below at 40% of the single-cylinder time so that a poor fit
// can never return a negative or absurdly small positive time.
func (s SeekCurve) Time(d int) float64 {
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 0
	}
	t := s.a + s.b*math.Sqrt(float64(d)) + s.c*float64(d)
	min := 0.4 * (s.a + s.b + s.c) // 40% of t(1)
	if t < min {
		t = min
	}
	return t
}

// MaxDistance returns the largest meaningful seek distance.
func (s SeekCurve) MaxDistance() int { return s.cylinders - 1 }
