package disk

import "fmt"

// Partition is a contiguous sector range of a disk exposed with
// byte-offset addressing, the unit on which a file system is built. The
// paper's 502 MB file system occupies roughly a quarter of the 2.1 GB
// drive; PaperPartition places it in the middle third, where the average
// seek behaviour of the drive applies.
type Partition struct {
	disk    *Disk
	start   int64 // first LBA
	sectors int64
}

// NewPartition carves [startLBA, startLBA+sectors) out of d.
func NewPartition(d *Disk, startLBA, sectors int64) *Partition {
	if startLBA < 0 || sectors <= 0 || startLBA+sectors > d.p.Geom.TotalSectors() {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("disk: partition [%d,%d) outside disk", startLBA, startLBA+sectors))
	}
	return &Partition{disk: d, start: startLBA, sectors: sectors}
}

// PaperPartition returns a 502 MB partition of d starting at one quarter
// of the way into the drive.
func PaperPartition(d *Disk) *Partition {
	size := int64(502<<20) / int64(d.p.Geom.SectorSize)
	start := d.p.Geom.TotalSectors() / 4
	return NewPartition(d, start, size)
}

// Disk returns the underlying disk.
func (p *Partition) Disk() *Disk { return p.disk }

// Bytes returns the partition's size in bytes.
func (p *Partition) Bytes() int64 { return p.sectors * int64(p.disk.p.Geom.SectorSize) }

func (p *Partition) toSectors(off, n int64) (lba int64, nsect int) {
	ss := int64(p.disk.p.Geom.SectorSize)
	if off < 0 || n <= 0 || off%ss != 0 || n%ss != 0 {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("disk: unaligned partition access off=%d n=%d", off, n))
	}
	if off+n > p.Bytes() {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("disk: partition access [%d,%d) beyond %d", off, off+n, p.Bytes()))
	}
	return p.start + off/ss, int(n / ss)
}

// Read reads n bytes at byte offset off and returns the duration in
// seconds. Offsets and lengths must be sector-aligned.
func (p *Partition) Read(off, n int64) float64 {
	lba, nsect := p.toSectors(off, n)
	return p.disk.Read(lba, nsect)
}

// Write writes n bytes at byte offset off and returns the duration in
// seconds.
func (p *Partition) Write(off, n int64) float64 {
	lba, nsect := p.toSectors(off, n)
	return p.disk.Write(lba, nsect)
}

// RawThroughput measures the raw-device sequential throughput of the
// partition (the "Raw Read/Write Throughput" reference lines in the
// paper's Figure 4): totalBytes of I/O in requestSize units starting at
// offset zero. It returns bytes/second. The partition's clock advances.
func (p *Partition) RawThroughput(totalBytes, requestSize int64, write bool) float64 {
	if requestSize <= 0 || totalBytes < requestSize {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic("disk: bad raw throughput request")
	}
	if totalBytes > p.Bytes() {
		totalBytes = p.Bytes()
	}
	var elapsed float64
	var done int64
	for off := int64(0); off+requestSize <= totalBytes; off += requestSize {
		if write {
			elapsed += p.Write(off, requestSize)
		} else {
			elapsed += p.Read(off, requestSize)
		}
		done += requestSize
	}
	return float64(done) / elapsed
}
