package disk

import "testing"

func newCacheRig(capacityBytes int64) (*BlockCache, *Disk) {
	d := New(PaperParams())
	part := PaperPartition(d)
	return NewBlockCache(part, 8<<10, capacityBytes), d
}

func TestCacheSecondReadIsFast(t *testing.T) {
	c, _ := newCacheRig(4 << 20)
	cold := c.Read(0, 1<<20)
	warm := c.Read(0, 1<<20)
	if warm > cold/5 {
		t.Errorf("warm read %v not ≪ cold %v", warm, cold)
	}
	hits, misses := c.Stats()
	if misses != 128 || hits != 128 {
		t.Errorf("hits=%d misses=%d, want 128/128", hits, misses)
	}
}

func TestCacheLRUScanAnomaly(t *testing.T) {
	// A sequential scan larger than the cache evicts everything before
	// it is re-read: the second pass misses completely (the knee the
	// hot-file study measures).
	c, _ := newCacheRig(1 << 20) // 1 MB cache
	c.Read(0, 2<<20)             // 2 MB scan
	c.Read(0, 2<<20)
	hits, misses := c.Stats()
	if hits != 0 {
		t.Errorf("hits=%d on repeated over-size scan, want 0 (LRU)", hits)
	}
	if misses != 512 {
		t.Errorf("misses=%d, want 512", misses)
	}
}

func TestCacheWriteThroughPopulates(t *testing.T) {
	c, d := newCacheRig(4 << 20)
	before := d.Stats().Writes
	c.Write(0, 64<<10)
	if d.Stats().Writes == before {
		t.Error("write did not reach the disk")
	}
	c.Read(0, 64<<10)
	hits, _ := c.Stats()
	if hits != 8 {
		t.Errorf("hits=%d after write-through, want 8", hits)
	}
}

func TestCacheSubBlockBypasses(t *testing.T) {
	c, _ := newCacheRig(4 << 20)
	c.Read(1024, 1024) // unaligned fragment read
	hits, misses := c.Stats()
	if hits != 0 || misses != 0 {
		t.Errorf("fragment read touched the cache: %d/%d", hits, misses)
	}
}

func TestCachePanicsOnBadGeometry(t *testing.T) {
	d := New(PaperParams())
	part := PaperPartition(d)
	defer func() {
		if recover() == nil {
			t.Error("bad geometry accepted")
		}
	}()
	NewBlockCache(part, 8<<10, 1<<10)
}
