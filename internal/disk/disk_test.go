package disk

import (
	"math"
	"testing"
)

func newTestDisk() *Disk { return New(PaperParams()) }

func TestNewPanicsOnBadParams(t *testing.T) {
	p := PaperParams()
	p.MaxTransfer = 1000 // not sector aligned
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad MaxTransfer did not panic")
			}
		}()
		New(p)
	}()
}

func TestIdleAdvancesClock(t *testing.T) {
	d := newTestDisk()
	d.Idle(0.5)
	if d.Now() != 0.5 {
		t.Errorf("Now = %v", d.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative idle did not panic")
		}
	}()
	d.Idle(-1)
}

func TestSingleReadCost(t *testing.T) {
	d := newTestDisk()
	// 8 KB read at a random spot: overhead + seek + rotation + transfer.
	dur := d.Read(500000, 16)
	p := d.Params()
	min := p.CtlOverhead + 16*p.Geom.SectorTime()
	max := p.CtlOverhead + p.Seek.Time(p.Seek.MaxDistance()) +
		p.Geom.RotationPeriod() + 17*p.Geom.SectorTime() + p.HeadSwitch
	if dur < min || dur > max {
		t.Errorf("read duration %v outside [%v,%v]", dur, min, max)
	}
	st := d.Stats()
	if st.Reads != 1 || st.SectorsRead != 16 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSequentialReadsHitReadAhead(t *testing.T) {
	d := newTestDisk()
	d.Read(100000, 128) // prime the stream (64 KB)
	dur := d.Read(100128, 128)
	st := d.Stats()
	if st.BufferHits != 1 {
		t.Fatalf("BufferHits = %d, want 1", st.BufferHits)
	}
	// A buffered 64 KB read should take about media/bus time, far less
	// than a rotation + seek.
	p := d.Params()
	maxOK := p.CtlOverhead + 128*p.Geom.SectorTime() + 3*p.HeadSwitch + p.Seek.Time(1)
	if dur > maxOK {
		t.Errorf("buffered read took %v, want <= %v", dur, maxOK)
	}
}

func TestReadAheadSkipsSmallForwardGap(t *testing.T) {
	d := newTestDisk()
	d.Read(100000, 128)
	// Skip 16 sectors forward (a small layout hole) — still buffered.
	d.Read(100144, 128)
	if st := d.Stats(); st.BufferHits != 1 {
		t.Errorf("BufferHits = %d, want 1 (small forward gap)", st.BufferHits)
	}
	// A big jump misses.
	d.Read(900000, 128)
	if st := d.Stats(); st.BufferHits != 1 {
		t.Errorf("BufferHits = %d after far jump, want still 1", st.BufferHits)
	}
	// Backward read misses.
	d.Read(100000, 16)
	if st := d.Stats(); st.BufferHits != 1 {
		t.Errorf("BufferHits = %d after backward read, want still 1", st.BufferHits)
	}
}

func TestWriteInvalidatesReadAhead(t *testing.T) {
	d := newTestDisk()
	d.Read(100000, 128)
	d.Write(500000, 16)
	d.Read(100128, 128) // would have been a hit
	if st := d.Stats(); st.BufferHits != 0 {
		t.Errorf("BufferHits = %d, want 0 after intervening write", st.BufferHits)
	}
}

// The paper's central write effect: back-to-back sequential writes lose
// most of a rotation per request, so sequential write throughput is far
// below sequential read throughput.
func TestSequentialWriteLosesRotation(t *testing.T) {
	d := newTestDisk()
	p := d.Params()
	d.Write(100000, 128) // position the head; angle now just past the end
	second := d.Write(100128, 128)
	// The second write should cost at least ~0.75 of a rotation of pure
	// latency beyond overhead+transfer.
	lat := second - p.CtlOverhead - 128*p.Geom.SectorTime() - p.HeadSwitch
	if lat < 0.75*p.Geom.RotationPeriod() {
		t.Errorf("sequential write rotational loss = %v, want >= 0.75 rev (%v)",
			lat, p.Geom.RotationPeriod())
	}
}

func TestReadFarFasterThanWriteSequential(t *testing.T) {
	d := newTestDisk()
	part := PaperPartition(d)
	read := part.RawThroughput(8<<20, 64<<10, false)
	write := part.RawThroughput(8<<20, 64<<10, true)
	if read < 1.5*write {
		t.Errorf("raw read %v not ≫ raw write %v", read, write)
	}
	// Raw read should be near the media rate (within 25%).
	if mr := d.Params().Geom.MediaRate(); read < 0.75*mr {
		t.Errorf("raw read %v too far below media rate %v", read, mr)
	}
}

func TestMaxTransferSplitting(t *testing.T) {
	d := newTestDisk()
	// 256 KB = 4 × 64 KB requests.
	d.Read(100000, 512)
	if st := d.Stats(); st.Reads != 4 {
		t.Errorf("Reads = %d, want 4 after splitting", st.Reads)
	}
}

func TestAccessValidation(t *testing.T) {
	d := newTestDisk()
	for name, f := range map[string]func(){
		"zero length":  func() { d.Read(0, 0) },
		"negative lba": func() { d.Read(-1, 1) },
		"past end":     func() { d.Write(d.Params().Geom.TotalSectors()-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestStatsAccounting(t *testing.T) {
	d := newTestDisk()
	d.Read(100000, 16)
	d.Write(900000, 16)
	st := d.Stats()
	if st.SeekCount < 1 {
		t.Errorf("SeekCount = %d", st.SeekCount)
	}
	total := st.SeekTime + st.RotTime + st.TransferTime + st.OverheadTime
	if math.Abs(total-d.Now()) > 1e-9 {
		t.Errorf("stats sum %v != clock %v", total, d.Now())
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero")
	}
	if d.Now() == 0 {
		t.Error("ResetStats should not reset clock")
	}
}

func TestPartitionMapping(t *testing.T) {
	d := newTestDisk()
	p := NewPartition(d, 1000, 2048)
	if p.Bytes() != 2048*512 {
		t.Errorf("Bytes = %d", p.Bytes())
	}
	if p.Disk() != d {
		t.Error("Disk() mismatch")
	}
	p.Read(0, 1024)
	p.Write(512, 512)
	for name, f := range map[string]func(){
		"unaligned offset": func() { p.Read(100, 512) },
		"unaligned length": func() { p.Read(0, 100) },
		"past end":         func() { p.Read(2048*512-512, 1024) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPaperPartitionSize(t *testing.T) {
	d := newTestDisk()
	p := PaperPartition(d)
	if p.Bytes() != 502<<20 {
		t.Errorf("paper partition = %d bytes, want 502MB", p.Bytes())
	}
}

func TestNewPartitionBounds(t *testing.T) {
	d := newTestDisk()
	defer func() {
		if recover() == nil {
			t.Error("oversize partition did not panic")
		}
	}()
	NewPartition(d, d.Params().Geom.TotalSectors()-10, 20)
}

// Raw write throughput should sit near bytes/(transfer+rotation) per
// request — the "lost rotation" régime the paper describes.
func TestRawWriteMatchesLostRotationModel(t *testing.T) {
	d := newTestDisk()
	part := PaperPartition(d)
	got := part.RawThroughput(8<<20, 64<<10, true)
	p := d.Params()
	reqBytes := 64.0 * 1024
	xfer := reqBytes / p.Geom.MediaRate()
	// Expected period per request ≈ overhead + rotational realignment +
	// transfer; realignment averages most of a revolution.
	loT := reqBytes / (p.CtlOverhead + p.Geom.RotationPeriod() + xfer + 3*p.HeadSwitch)
	hiT := reqBytes / (p.CtlOverhead + 0.5*p.Geom.RotationPeriod() + xfer)
	if got < 0.8*loT || got > 1.2*hiT {
		t.Errorf("raw write %v outside lost-rotation band [%v,%v]", got, loT, hiT)
	}
}
