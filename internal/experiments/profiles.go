package experiments

import (
	"fmt"

	"ffsage/internal/aging"
	"ffsage/internal/bench"
	"ffsage/internal/core"
	"ffsage/internal/ffs"
	"ffsage/internal/workload"
)

// ProfileResult compares the two allocation policies under one usage
// pattern — the cross-workload study the paper's §6 proposes.
type ProfileResult struct {
	Profile workload.Profile
	// Workload character actually generated.
	Ops          int
	BytesWritten int64
	EndFiles     int

	// Aged layout under each policy and the realloc advantage.
	LayoutFFS     float64
	LayoutRealloc float64
	// Hot-set read throughput under each policy (bytes/second).
	HotReadFFS     float64
	HotReadRealloc float64
}

// RunProfile ages both policies under the given usage pattern at the
// scale implied by cfg (days, fs size, groups are taken from cfg; the
// activity shape from the profile).
func RunProfile(cfg Config, p workload.Profile) (ProfileResult, error) {
	if !workload.KnownProfile(p) {
		return ProfileResult{}, fmt.Errorf("experiments: unknown profile %q", p)
	}
	wc := workload.ProfileConfig(p, cfg.Seed)
	// Adopt the run's scale.
	wc.Days = cfg.WorkloadCfg.Days
	wc.NumCg = cfg.WorkloadCfg.NumCg
	wc.FsBytes = cfg.WorkloadCfg.FsBytes
	wc.RampDays = cfg.WorkloadCfg.RampDays
	scale := float64(cfg.WorkloadCfg.FsBytes) / float64(502<<20)
	wc.ChurnBytesPerDay *= scale
	wc.ShortPairsPerDay *= scale
	b, err := workload.BuildWorkload(wc, cfg.NFSCfg)
	if err != nil {
		return ProfileResult{}, fmt.Errorf("profile %s: %w", p, err)
	}
	res := ProfileResult{Profile: p}
	sum := b.Reconstructed.Summarize()
	res.Ops = sum.Ops
	res.BytesWritten = sum.BytesWritten
	res.EndFiles = b.Reference.EndLiveFiles

	from := wc.Days - cfg.HotWindow
	for _, pol := range []ffs.Policy{core.Original{}, core.Realloc{}} {
		aged, err := aging.Replay(cfg.FsParams, pol, b.Reconstructed, aging.Options{})
		if err != nil {
			return ProfileResult{}, fmt.Errorf("profile %s under %s: %w", p, pol.Name(), err)
		}
		hot, err := bench.HotFiles(aged.Fs, cfg.DiskParams, from)
		if err != nil {
			return ProfileResult{}, fmt.Errorf("profile %s hot bench: %w", p, err)
		}
		switch pol.(type) {
		case core.Original:
			res.LayoutFFS = aged.LayoutByDay.Final()
			res.HotReadFFS = hot.ReadBps
		default:
			res.LayoutRealloc = aged.LayoutByDay.Final()
			res.HotReadRealloc = hot.ReadBps
		}
	}
	return res, nil
}

// RunProfiles runs every supported profile.
func RunProfiles(cfg Config) ([]ProfileResult, error) {
	var out []ProfileResult
	for _, p := range workload.Profiles() {
		r, err := RunProfile(cfg, p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
