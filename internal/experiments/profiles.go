package experiments

import (
	"context"
	"fmt"
	"math"

	"ffsage/internal/bench"
	"ffsage/internal/core"
	"ffsage/internal/ffs"
	"ffsage/internal/runner"
	"ffsage/internal/workload"
)

// ProfileResult compares the two allocation policies under one usage
// pattern — the cross-workload study the paper's §6 proposes.
type ProfileResult struct {
	Profile workload.Profile
	// Workload character actually generated.
	Ops          int
	BytesWritten int64
	EndFiles     int

	// Aged layout under each policy and the realloc advantage.
	LayoutFFS     float64
	LayoutRealloc float64
	// Hot-set read throughput under each policy (bytes/second).
	HotReadFFS     float64
	HotReadRealloc float64
}

// RunProfile ages both policies under the given usage pattern at the
// scale implied by cfg (days, fs size, groups are taken from cfg; the
// activity shape from the profile). The two policies age concurrently
// on the runner, on cached images when available.
func RunProfile(cfg Config, p workload.Profile) (ProfileResult, error) {
	if !workload.KnownProfile(p) {
		return ProfileResult{}, fmt.Errorf("experiments: unknown profile %q", p)
	}
	wc := workload.ProfileConfig(p, cfg.Seed)
	// Adopt the run's scale.
	wc.Days = cfg.WorkloadCfg.Days
	wc.NumCg = cfg.WorkloadCfg.NumCg
	wc.FsBytes = cfg.WorkloadCfg.FsBytes
	wc.RampDays = cfg.WorkloadCfg.RampDays
	scale := float64(cfg.WorkloadCfg.FsBytes) / float64(502<<20)
	wc.ChurnBytesPerDay *= scale
	wc.ShortPairsPerDay *= scale
	b, err := CachedBuild(wc, cfg.NFSCfg)
	if err != nil {
		return ProfileResult{}, fmt.Errorf("profile %s: %w", p, err)
	}
	res := ProfileResult{Profile: p}
	sum := b.Reconstructed.Summarize()
	res.Ops = sum.Ops
	res.BytesWritten = sum.BytesWritten
	res.EndFiles = b.Reference.EndLiveFiles

	from := wc.Days - cfg.HotWindow
	wlKey := workloadKey(wc, cfg.NFSCfg) + "|reconstructed"
	g := runner.New(context.Background())
	for _, pol := range []ffs.Policy{core.Original{}, core.Realloc{}} {
		g.Go(fmt.Sprintf("profile %s %s", p, pol.Name()), func(context.Context) error {
			aged, err := CachedAgedImage(cfg.FsParams, pol, b.Reconstructed, wlKey, cfg.agingOpts())
			if err != nil {
				return fmt.Errorf("profile %s under %s: %w", p, pol.Name(), err)
			}
			hot, err := bench.HotFiles(aged.Fs, cfg.DiskParams, from)
			if err != nil {
				return fmt.Errorf("profile %s hot bench: %w", p, err)
			}
			switch pol.(type) {
			case core.Original:
				res.LayoutFFS = aged.LayoutByDay.FinalOr(math.NaN())
				res.HotReadFFS = hot.ReadBps
			default:
				res.LayoutRealloc = aged.LayoutByDay.FinalOr(math.NaN())
				res.HotReadRealloc = hot.ReadBps
			}
			return nil
		})
	}
	if _, err := g.Wait(); err != nil {
		return ProfileResult{}, err
	}
	return res, nil
}

// RunProfiles runs every supported profile, concurrently.
func RunProfiles(cfg Config) ([]ProfileResult, error) {
	profiles := workload.Profiles()
	out := make([]ProfileResult, len(profiles))
	g := runner.New(context.Background())
	for i, p := range profiles {
		g.Go(fmt.Sprintf("profile %s", p), func(context.Context) error {
			r, err := RunProfile(cfg, p)
			if err != nil {
				return err
			}
			out[i] = r
			return nil
		})
	}
	if _, err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}
