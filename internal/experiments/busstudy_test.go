package experiments

import "testing"

// The §5.1 argument: the faster host path shows a larger *relative*
// benefit from good layout than the SparcStation-class path.
func TestBusStudy(t *testing.T) {
	s := sharedQuick(t)
	rs, err := BusStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("%d results", len(rs))
	}
	pci, sparc := rs[0], rs[1]
	t.Logf("PCI: ffs %.2f → realloc %.2f MB/s (+%.0f%%); SS1: %.2f → %.2f (+%.0f%%)",
		pci.ReadFFS/1e6, pci.ReadRealloc/1e6, 100*pci.Gain(),
		sparc.ReadFFS/1e6, sparc.ReadRealloc/1e6, 100*sparc.Gain())
	// Absolute throughput collapses behind the slow bus.
	if sparc.ReadFFS >= pci.ReadFFS {
		t.Error("slow bus not slower")
	}
	if sparc.ReadFFS > 1.6e6 {
		t.Errorf("SS1 read %.2f MB/s exceeds its bus", sparc.ReadFFS/1e6)
	}
	// The relative layout benefit shrinks on the slow path.
	if sparc.Gain() >= pci.Gain() {
		t.Errorf("SS1 relative gain %.2f not below PCI %.2f", sparc.Gain(), pci.Gain())
	}
	// Both paths still favour realloc.
	if sparc.Gain() <= 0 || pci.Gain() <= 0 {
		t.Error("realloc not faster on some path")
	}
}
