package experiments

import (
	"testing"

	"ffsage/internal/workload"
)

func TestProfileConfigsValidate(t *testing.T) {
	for _, p := range workload.Profiles() {
		c := workload.ProfileConfig(p, 1)
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
	if !workload.KnownProfile(workload.ProfileNews) {
		t.Error("news not known")
	}
	if workload.KnownProfile("mainframe") {
		t.Error("bogus profile known")
	}
	// Unknown profiles fall back to a valid default.
	if err := workload.ProfileConfig("mainframe", 1).Validate(); err != nil {
		t.Error(err)
	}
}

func TestRunProfileRejectsUnknown(t *testing.T) {
	if _, err := RunProfile(Quick(1), "mainframe"); err == nil {
		t.Error("unknown profile accepted")
	}
}

// The cross-profile study (the paper's §6 proposal): workload character
// determines how much the allocation policy matters.
func TestProfileStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("profile study is slow")
	}
	cfg := Quick(3)
	rs, err := RunProfiles(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[workload.Profile]ProfileResult{}
	for _, r := range rs {
		byName[r.Profile] = r
		// Realloc never hurts layout, under any pattern.
		if r.LayoutRealloc+0.02 < r.LayoutFFS {
			t.Errorf("%s: realloc %.3f worse than ffs %.3f", r.Profile, r.LayoutRealloc, r.LayoutFFS)
		}
	}
	news, db := byName[workload.ProfileNews], byName[workload.ProfileDatabase]
	research := byName[workload.ProfileResearch]
	// A news spool fragments far worse than home directories under the
	// original policy; a database barely fragments at all.
	if news.LayoutFFS >= research.LayoutFFS {
		t.Errorf("news layout %.3f not worse than research %.3f", news.LayoutFFS, research.LayoutFFS)
	}
	if db.LayoutFFS <= research.LayoutFFS {
		t.Errorf("database layout %.3f not better than research %.3f", db.LayoutFFS, research.LayoutFFS)
	}
	// The policy's benefit is workload-dependent: large for home
	// directories, marginal for the database.
	dbGain := db.LayoutRealloc - db.LayoutFFS
	resGain := research.LayoutRealloc - research.LayoutFFS
	if dbGain >= resGain {
		t.Errorf("database gain %.3f not below research gain %.3f", dbGain, resGain)
	}
	// Population character sanity.
	if news.EndFiles <= 2*research.EndFiles {
		t.Errorf("news population %d not ≫ research %d", news.EndFiles, research.EndFiles)
	}
	if db.EndFiles >= research.EndFiles/5 {
		t.Errorf("database population %d not ≪ research %d", db.EndFiles, research.EndFiles)
	}
}
