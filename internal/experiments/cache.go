package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ffsage/internal/aging"
	"ffsage/internal/ffs"
	"ffsage/internal/policy"
	"ffsage/internal/trace"
	"ffsage/internal/workload"
)

// The experiment pipelines repeatedly need the same two expensive
// artifacts: a generated workload (reference simulation + snapshot
// diff + NFS-trace merge) and an aged image (an ~800k-op replay).
// Several studies used to rebuild both per arm — the A2 quirk baseline,
// the A1 maxcontig=7 arm, the A4 chain-aware arm and the A5 cross-group
// arm all age the *same* (params, policy, workload) triple the Suite
// already aged. This process-wide cache builds each distinct artifact
// once, keyed by the full value of its inputs, and hands every consumer
// a private ffs.Clone() of the cached image — the clone is the
// concurrency boundary, so arms running on the parallel runner never
// share mutable state. Everything cached is a pure function of the
// key, which is what keeps -j N output identical to -j 1.

// buildEntry memoizes one workload construction (singleflight: the
// once runs the build; losers block until it finishes).
type buildEntry struct {
	once sync.Once
	b    *workload.Build
	err  error
}

// agedEntry memoizes one aging replay.
type agedEntry struct {
	once sync.Once
	res  *aging.Result
	err  error
}

var (
	cacheMu    sync.Mutex
	buildCache = map[string]*buildEntry{}
	agedCache  = map[string]*agedEntry{}

	// Hit/miss tallies for the repro timing footer. Which lookups hit
	// depends on arm scheduling (and, across a resume, on what the first
	// process built), so these are process diagnostics — printed to
	// stdout, never written into a metrics snapshot.
	buildHits, buildMisses atomic.Int64
	agedHits, agedMisses   atomic.Int64
)

// CacheCounts reports the process-wide cache lookup tallies: workload
// builds and aged images, hits and misses. A singleflight loser that
// blocked on a build in flight still counts as a hit — the work was
// shared.
func CacheCounts() (buildHit, buildMiss, agedHit, agedMiss int64) {
	return buildHits.Load(), buildMisses.Load(), agedHits.Load(), agedMisses.Load()
}

// workloadKey identifies a workload build by the full value of its
// configurations (both are flat structs of scalars).
func workloadKey(wc workload.Config, nc workload.NFSTraceConfig) string {
	return fmt.Sprintf("%+v|%+v", wc, nc)
}

// policyKey identifies a policy in the aged-image cache key. A
// registered policy is keyed by its registry canonical name —
// collision-free because registration rejects duplicate and mismatched
// Name() strings. Anything else (ablation variants, test doubles) is
// keyed by type and flag values, not just its display name, so ad-hoc
// variants never collide either.
func policyKey(p ffs.Policy) string {
	if name, ok := policy.CanonicalName(p); ok {
		return "reg:" + name
	}
	return fmt.Sprintf("adhoc:%s|%T%+v", p.Name(), p, p)
}

// CachedBuild returns the (possibly shared) workload build for the
// given configurations, constructing it at most once per process.
// Builds are read-only to every consumer.
func CachedBuild(wc workload.Config, nc workload.NFSTraceConfig) (*workload.Build, error) {
	key := workloadKey(wc, nc)
	cacheMu.Lock()
	e := buildCache[key]
	if e == nil {
		e = &buildEntry{}
		buildCache[key] = e
		buildMisses.Add(1)
	} else {
		buildHits.Add(1)
	}
	cacheMu.Unlock()
	e.once.Do(func() { e.b, e.err = workload.BuildWorkload(wc, nc) })
	return e.b, e.err
}

// CachedAgedImage replays wl (identified by wlKey, normally
// workloadKey plus the stream name) on a fresh file system under
// (params, policy) at most once per process, and returns a Result
// whose Fs is a private deep copy of the cached image. The series and
// counters are shared snapshots — they never change once aged.
func CachedAgedImage(params ffs.Params, policy ffs.Policy, wl *trace.Workload, wlKey string, opts aging.Options) (*aging.Result, error) {
	if opts.Progress != nil || opts.CheckEvery != 0 {
		// Side effects must not be deduplicated away.
		return aging.Replay(params, policy, wl, opts)
	}
	key := fmt.Sprintf("%+v|%s|%s|slow=%v", params, policyKey(policy), wlKey, opts.SlowScore)
	cacheMu.Lock()
	e := agedCache[key]
	if e == nil {
		e = &agedEntry{}
		agedCache[key] = e
		agedMisses.Add(1)
	} else {
		agedHits.Add(1)
	}
	cacheMu.Unlock()
	e.once.Do(func() { e.res, e.err = aging.Replay(params, policy, wl, opts) })
	if e.err != nil {
		return nil, e.err
	}
	out := *e.res
	out.Fs = e.res.Fs.Clone()
	return &out, nil
}

// ResetCaches drops every memoized build and image (tests that measure
// the cost of building them call this between iterations).
func ResetCaches() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	buildCache = map[string]*buildEntry{}
	agedCache = map[string]*agedEntry{}
	buildHits.Store(0)
	buildMisses.Store(0)
	agedHits.Store(0)
	agedMisses.Store(0)
}
