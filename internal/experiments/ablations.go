package experiments

import (
	"context"
	"fmt"
	"math"

	"ffsage/internal/bench"
	"ffsage/internal/core"
	"ffsage/internal/ffs"
	"ffsage/internal/layout"
	"ffsage/internal/runner"
	"ffsage/internal/stats"
)

// The ablation experiments probe the design decisions DESIGN.md calls
// out: the cluster size limit (A1), the two-block quirk (A2), the
// cluster-search fit discipline (A4), and the cross-group cluster
// search (A5). Each returns paper-style metrics so the benches can
// print comparable rows. Arms are independent, so each study fans them
// out on the runner; the workload build and any arm whose (params,
// policy) pair the Suite already aged — the maxcontig=7 point, the
// chain-aware fit, the cross-group search and the quirk baseline are
// all stock realloc aging — come straight from the cache.

// AblationResult is one ablation configuration's outcome.
type AblationResult struct {
	Label string
	// FinalLayout is the aggregate layout score after aging.
	FinalLayout float64
	// BenchLayout96 and BenchRead96 are the sequential benchmark's
	// layout and read throughput at the 96 KB point, the paper's most
	// sensitive size.
	BenchLayout96 float64
	BenchRead96   float64
	// ClusterMoves counts relocations performed during aging.
	ClusterMoves int64
}

// runAblation ages one file system variant and benches it at 96 KB.
// Both the workload and the aged image are cached, so arms sharing a
// configuration age once and bench on private clones.
func runAblation(cfg Config, label string, fp ffs.Params, policy ffs.Policy) (AblationResult, error) {
	b, err := CachedBuild(cfg.WorkloadCfg, cfg.NFSCfg)
	if err != nil {
		return AblationResult{}, err
	}
	wlKey := workloadKey(cfg.WorkloadCfg, cfg.NFSCfg) + "|reconstructed"
	res, err := CachedAgedImage(fp, policy, b.Reconstructed, wlKey, cfg.agingOpts())
	if err != nil {
		return AblationResult{}, fmt.Errorf("%s: %w", label, err)
	}
	seq, err := bench.SequentialIO(res.Fs, cfg.DiskParams, 96<<10, cfg.BenchTotal, cfg.WorkloadCfg.Days)
	if err != nil {
		return AblationResult{}, fmt.Errorf("%s bench: %w", label, err)
	}
	return AblationResult{
		Label:         label,
		FinalLayout:   res.LayoutByDay.FinalOr(math.NaN()),
		BenchLayout96: seq.LayoutScore,
		BenchRead96:   seq.ReadBps,
		ClusterMoves:  res.Fs.Stats.ClusterMoves,
	}, nil
}

// AblationMaxContig sweeps the cluster size limit (fs_maxcontig): the
// paper fixes it at 7 blocks (56 KB, the disk's transfer size); this
// measures what smaller and larger limits would have done.
func AblationMaxContig(cfg Config, values []int) ([]AblationResult, error) {
	out := make([]AblationResult, len(values))
	g := runner.New(context.Background())
	for i, mc := range values {
		fp := cfg.FsParams
		fp.MaxContig = mc
		label := fmt.Sprintf("maxcontig=%d", mc)
		g.Go("A1 "+label, func(context.Context) error {
			r, err := runAblation(cfg, label, fp, core.Realloc{})
			if err != nil {
				return err
			}
			out[i] = r
			return nil
		})
	}
	if _, err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// AblationQuirk compares the stock realloc policy against one that also
// engages for single-block runs, isolating the two-block-file dip the
// paper documents in Section 4. It returns the 16 KB size-bucket layout
// score of the aged images for both variants.
type QuirkResult struct {
	Label         string
	TwoBlockScore float64 // aged-image (8 KB, 16 KB] bucket
	FinalLayout   float64
}

// AblationQuirk runs the quirk ablation.
func AblationQuirk(cfg Config) ([]QuirkResult, error) {
	b, err := CachedBuild(cfg.WorkloadCfg, cfg.NFSCfg)
	if err != nil {
		return nil, err
	}
	wlKey := workloadKey(cfg.WorkloadCfg, cfg.NFSCfg) + "|reconstructed"
	pols := []core.Realloc{{}, {ReallocSingleBlocks: true}}
	out := make([]QuirkResult, len(pols))
	g := runner.New(context.Background())
	for i, pol := range pols {
		g.Go("A2 "+pol.Name(), func(context.Context) error {
			res, err := CachedAgedImage(cfg.FsParams, pol, b.Reconstructed, wlKey, cfg.agingOpts())
			if err != nil {
				return fmt.Errorf("%s: %w", pol.Name(), err)
			}
			buckets := layout.BySize(layout.AllFiles(res.Fs), cfg.FsParams.FragsPerBlock(),
				stats.PowerOfTwoBuckets(16<<10, 16<<20))
			out[i] = QuirkResult{
				Label:         pol.Name(),
				TwoBlockScore: buckets[0].Score,
				FinalLayout:   res.LayoutByDay.FinalOr(math.NaN()),
			}
			return nil
		})
	}
	if _, err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// AblationClusterFit compares the default chain-aware cluster fit with
// the literal 4.4BSD first-fit scan (A4).
func AblationClusterFit(cfg Config) ([]AblationResult, error) {
	fits := []bool{false, true}
	out := make([]AblationResult, len(fits))
	g := runner.New(context.Background())
	for i, firstFit := range fits {
		fp := cfg.FsParams
		fp.FirstFitClusters = firstFit
		label := "chain-aware fit"
		if firstFit {
			label = "first fit (4.4BSD literal)"
		}
		g.Go("A4 "+label, func(context.Context) error {
			r, err := runAblation(cfg, label, fp, core.Realloc{})
			if err != nil {
				return err
			}
			out[i] = r
			return nil
		})
	}
	if _, err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// AblationCrossCg compares the stock cross-group cluster search with a
// variant restricted to the preferred group (A5).
func AblationCrossCg(cfg Config) ([]AblationResult, error) {
	scopes := []bool{false, true}
	out := make([]AblationResult, len(scopes))
	g := runner.New(context.Background())
	for i, inCg := range scopes {
		label := "cross-group search"
		if inCg {
			label = "in-group only"
		}
		g.Go("A5 "+label, func(context.Context) error {
			r, err := runAblation(cfg, label, cfg.FsParams, core.Realloc{InGroupOnly: inCg})
			if err != nil {
				return err
			}
			out[i] = r
			return nil
		})
	}
	if _, err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}
