package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	"ffsage/internal/aging"
	"ffsage/internal/bench"
	"ffsage/internal/ffs"
	"ffsage/internal/layout"
	"ffsage/internal/policy"
	"ffsage/internal/runner"
	"ffsage/internal/stats"
	"ffsage/internal/trace"
)

// The tournament driver generalizes the paper's two-way comparison to
// N policies: each contender ages one cached image, is scored for
// layout, and runs the sequential and hot-file benchmarks; the result
// renders as one comparative report. The report decomposes into
// per-policy fragments — a summary row plus a detail section, each a
// pure function of that policy's entry — so CI can run one matrix leg
// per policy, upload the fragments, and assemble a report that is
// byte-identical to a single-process run (the fan-in diff proves it).

// TournamentEntry is one policy's tournament outcome.
type TournamentEntry struct {
	Name string
	// LayoutByDay and UtilByDay are the aging trajectories.
	LayoutByDay stats.Series
	UtilByDay   stats.Series
	// Seeks counts intra-file disk seeks on the aged image.
	Seeks int
	// Stats is the aged image's allocator accounting.
	Stats ffs.AllocStats
	// Seq is the Figure 4-style sequential sweep on the aged image;
	// Hot the Table 2-style hot-file benchmark.
	Seq []bench.SeqResult
	Hot bench.HotResult
}

// tournamentAge ages one arm, via the process-wide cache in the common
// case or through the Recovery wiring (checkpoint sink / resume /
// faults) when the caller configured one.
func tournamentAge(cfg Config, arm string, pol ffs.Policy, b wlRef) (*aging.Result, error) {
	if cfg.Recovery != nil {
		return ageArm(cfg, arm, pol, b.wl)
	}
	return CachedAgedImage(cfg.FsParams, pol, b.wl, b.key, cfg.agingOpts())
}

// wlRef pairs a workload with its cache key.
type wlRef struct {
	wl  *trace.Workload
	key string
}

// RegisteredPolicies instantiates the named policies from the
// registry, preserving order. It is the lookup used by cmd/tournament
// and cmd/repro, so both report unknown names with the registered list.
func RegisteredPolicies(names ...string) ([]ffs.Policy, error) {
	pols := make([]ffs.Policy, len(names))
	for i, name := range names {
		p, err := policy.New(name)
		if err != nil {
			return nil, err
		}
		pols[i] = p
	}
	return pols, nil
}

// Tournament ages one image per policy, scores it, and benches it.
// Entries come back in the order the policies were given; policy names
// must be unique (they key checkpoint arms and obs scopes). Everything
// reported is a pure function of (cfg, policy), so the report built
// from the entries is byte-identical for any worker count and across
// crash/resume.
func Tournament(cfg Config, policies ...ffs.Policy) ([]TournamentEntry, error) {
	if len(policies) == 0 {
		return nil, fmt.Errorf("experiments: tournament needs at least one policy")
	}
	seen := map[string]bool{}
	for _, p := range policies {
		if seen[p.Name()] {
			return nil, fmt.Errorf("experiments: tournament given policy %q twice", p.Name())
		}
		seen[p.Name()] = true
	}
	b, err := CachedBuild(cfg.WorkloadCfg, cfg.NFSCfg)
	if err != nil {
		return nil, err
	}
	ref := wlRef{wl: b.Reconstructed, key: workloadKey(cfg.WorkloadCfg, cfg.NFSCfg) + "|reconstructed"}
	days := cfg.WorkloadCfg.Days
	entries := make([]TournamentEntry, len(policies))
	results := make([]*aging.Result, len(policies))
	g := runner.New(context.Background())
	for i := range policies {
		i, pol := i, policies[i]
		slug := policy.Slug(pol.Name())
		g.Go("tournament "+slug, func(context.Context) error {
			res, err := tournamentAge(cfg, "tournament-"+slug, pol, ref)
			if err != nil {
				return fmt.Errorf("aging %s: %w", pol.Name(), err)
			}
			seq, err := bench.SequentialSweep(res.Fs, cfg.DiskParams, cfg.BenchSizes, cfg.BenchTotal, days)
			if err != nil {
				return fmt.Errorf("sweep on %s image: %w", pol.Name(), err)
			}
			hot, err := bench.HotFiles(res.Fs, cfg.DiskParams, days-cfg.HotWindow)
			if err != nil {
				return fmt.Errorf("hot files on %s image: %w", pol.Name(), err)
			}
			entries[i] = TournamentEntry{
				Name:        pol.Name(),
				LayoutByDay: res.LayoutByDay,
				UtilByDay:   res.UtilByDay,
				Seeks:       layout.IntraFileSeeks(layout.AllFiles(res.Fs), cfg.FsParams.FragsPerBlock()),
				Stats:       res.Fs.Stats,
				Seq:         seq,
				Hot:         hot,
			}
			results[i] = res
			return nil
		})
	}
	if _, err := g.Wait(); err != nil {
		return nil, err
	}
	if cfg.Obs != nil {
		// Sequentially, in entry order, after the barrier — the same
		// discipline as NewSuite, keeping every snapshot byte-identical
		// across -j levels.
		for i, pol := range policies {
			aging.PublishResult(cfg.Obs.Scope("tournament."+policy.Slug(pol.Name())), results[i], b.Reconstructed)
		}
	}
	return entries, nil
}

// benchNearest returns the sweep point whose file size is closest to
// want (ties to the smaller size).
func benchNearest(seq []bench.SeqResult, want int64) bench.SeqResult {
	best := bench.SeqResult{}
	for _, r := range seq {
		if best.FileSize == 0 ||
			abs64(r.FileSize-want) < abs64(best.FileSize-want) ||
			(abs64(r.FileSize-want) == abs64(best.FileSize-want) && r.FileSize < best.FileSize) {
			best = r
		}
	}
	return best
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// SummaryRow renders the entry's line of the comparative table.
func (e *TournamentEntry) SummaryRow() string {
	b96 := benchNearest(e.Seq, 96<<10)
	return fmt.Sprintf("  %-14s %8.3f %8.3f %8d %8d %6.1f%% %8.2f %8.2f %8.2f",
		e.Name,
		firstOr(e.LayoutByDay, math.NaN()), e.LayoutByDay.FinalOr(math.NaN()),
		e.Seeks, e.Stats.ClusterMoves,
		100*e.UtilByDay.FinalOr(math.NaN()),
		b96.ReadBps/1e6, e.Hot.ReadBps/1e6, e.Hot.WriteBps/1e6)
}

// firstOr returns the first day's value, or def for an empty series.
func firstOr(s stats.Series, def float64) float64 {
	if len(s) == 0 {
		return def
	}
	return s.At(s[0].Day)
}

// Section renders the entry's per-policy detail: the layout/utilization
// trajectory at ~12 sample days, the sequential sweep, the hot-file
// line, and the allocator accounting.
func (e *TournamentEntry) Section(days int) []string {
	lines := []string{
		"",
		"## " + e.Name,
		"  layout trajectory:",
		fmt.Sprintf("  %4s  %8s %7s", "day", "score", "util"),
	}
	step := days / 12
	if step < 1 {
		step = 1
	}
	for d := 0; d < days; d += step {
		lines = append(lines, fmt.Sprintf("  %4d  %8.3f %6.1f%%",
			d+1, e.LayoutByDay.AtOr(d, math.NaN()), 100*e.UtilByDay.AtOr(d, math.NaN())))
	}
	lines = append(lines, fmt.Sprintf("  %4d  %8.3f %6.1f%%",
		days, e.LayoutByDay.FinalOr(math.NaN()), 100*e.UtilByDay.FinalOr(math.NaN())))
	lines = append(lines, "  sequential sweep:",
		fmt.Sprintf("  %9s  %10s %10s %8s", "size", "write", "read", "layout"))
	for _, r := range e.Seq {
		lines = append(lines, fmt.Sprintf("  %8dK  %5.2f MB/s %5.2f MB/s %8.3f",
			r.FileSize>>10, r.WriteBps/1e6, r.ReadBps/1e6, r.LayoutScore))
	}
	lines = append(lines, fmt.Sprintf(
		"  hot files: %d files (%.1f%% of files, %.1f%% of bytes), read %.2f MB/s, write %.2f MB/s, layout %.3f",
		e.Hot.NFiles, 100*e.Hot.FracFiles, 100*e.Hot.FracBytes,
		e.Hot.ReadBps/1e6, e.Hot.WriteBps/1e6, e.Hot.LayoutScore))
	lines = append(lines, fmt.Sprintf(
		"  allocator: %d blocks, %d cluster moves / %d attempts, %d section switches, %d cg fallbacks",
		e.Stats.BlocksAllocated, e.Stats.ClusterMoves, e.Stats.ClusterAttempts,
		e.Stats.SectionSwitches, e.Stats.CgFallbacks))
	return lines
}

// Fragment renders the entry as its per-policy report fragment: the
// summary row on the first line, the detail section after. A CI matrix
// leg writes exactly these bytes; the fan-in assembles them without
// recomputing anything.
func (e *TournamentEntry) Fragment(days int) []byte {
	var sb strings.Builder
	sb.WriteString(e.SummaryRow())
	sb.WriteByte('\n')
	for _, l := range e.Section(days) {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

// TournamentTableHeader returns the comparative table's header line.
func TournamentTableHeader() string {
	return fmt.Sprintf("  %-14s %8s %8s %8s %8s %7s %8s %8s %8s",
		"policy", "day1", "final", "seeks", "moves", "util", "96K rd", "hot rd", "hot wr")
}

// WriteTournamentReport assembles the comparative report from
// per-policy fragments, in the order given (names[i] labels
// fragments[i]). Both the single-process run and the CI fan-in path
// call this with fragments produced by TournamentEntry.Fragment, so
// the two reports agree byte for byte.
func WriteTournamentReport(w io.Writer, scale string, seed int64, days int, names []string, fragments [][]byte) error {
	if len(names) != len(fragments) {
		return fmt.Errorf("experiments: %d names, %d fragments", len(names), len(fragments))
	}
	fmt.Fprintf(w, "policy tournament: %d policies, seed %d, %s, %d days aged\n",
		len(names), seed, scale, days)
	fmt.Fprintf(w, "policies: %s\n\n", strings.Join(names, ", "))
	fmt.Fprintln(w, TournamentTableHeader())
	sections := make([][]byte, 0, len(fragments))
	for i, frag := range fragments {
		row, section, ok := strings.Cut(string(frag), "\n")
		if !ok {
			return fmt.Errorf("experiments: fragment for %s has no summary row", names[i])
		}
		fmt.Fprintln(w, row)
		sections = append(sections, []byte(section))
	}
	for _, s := range sections {
		if _, err := w.Write(s); err != nil {
			return err
		}
	}
	return nil
}

// RenderTournament writes the full report for already-computed entries
// (the single-process path).
func RenderTournament(w io.Writer, scale string, seed int64, days int, entries []TournamentEntry) error {
	names := make([]string, len(entries))
	fragments := make([][]byte, len(entries))
	for i := range entries {
		names[i] = entries[i].Name
		fragments[i] = entries[i].Fragment(days)
	}
	return WriteTournamentReport(w, scale, seed, days, names, fragments)
}
