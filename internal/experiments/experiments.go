// Package experiments orchestrates the paper's complete evaluation:
// every table and figure has one entry point here, shared by the repro
// binary and the repository's benchmark suite. A Suite holds the
// expensive shared state (the generated workload and the two aged
// images) and computes each exhibit lazily.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"ffsage/internal/aging"
	"ffsage/internal/bench"
	"ffsage/internal/core"
	"ffsage/internal/disk"
	"ffsage/internal/faults"
	"ffsage/internal/ffs"
	"ffsage/internal/layout"
	"ffsage/internal/obs"
	"ffsage/internal/runner"
	"ffsage/internal/stats"
	"ffsage/internal/trace"
	"ffsage/internal/workload"
)

// Config scopes a reproduction run. Full is the paper-scale setup;
// Quick is a reduced configuration for fast iteration and the unit
// benchmark suite.
type Config struct {
	Seed        int64
	FsParams    ffs.Params
	WorkloadCfg workload.Config
	NFSCfg      workload.NFSTraceConfig
	DiskParams  disk.Params
	// BenchTotal is the sequential benchmark corpus (32 MB in the
	// paper); BenchSizes the file-size sweep.
	BenchTotal int64
	BenchSizes []int64
	// HotWindow is the hot-set recency window in days (one month).
	HotWindow int
	// SlowScore switches every aging replay's daily layout score to
	// the full O(files × blocks) rescan instead of the allocator's
	// incremental counters — the cross-check path behind cmd/repro's
	// -slowscore flag. The two are equal by construction.
	SlowScore bool
	// NoArena disables the file systems' File-recycling pools for the
	// aging replays (cmd/repro's -arena=off escape hatch). Allocation
	// decisions — and so every report, figure, and metric — are
	// identical either way.
	NoArena bool
	// Recovery wires fault injection and checkpoint/resume into the
	// three aging arms (cmd/repro's -faults / -checkpoint flags). A
	// non-nil Recovery bypasses the process-wide aged-image cache:
	// faulted or resumed replays are side-effecting and must run.
	Recovery *Recovery
	// Obs, when non-nil, receives the run's deterministic metrics and
	// events: each aging arm's summary under aging.<arm> (published
	// sequentially in arm order after the parallel replays finish, so
	// float accumulation order never depends on scheduling) and the
	// aggregated disk accounting of the Figure 4 sweep and Table 2
	// benchmarks under disk.fig4.* / disk.table2.*.
	Obs *obs.Registry
}

// Recovery configures fault injection and checkpoint/resume for the
// aging replays. The arm slugs passed to Sink and Resume are stable:
// "age-ffs", "age-realloc" and "age-ground-truth".
type Recovery struct {
	// Faults is the injection plan; it is Clone()d into each arm so
	// concurrent arms do not share its one-shot counters.
	Faults *faults.Plan
	// CheckpointEvery emits a checkpoint every k completed simulated
	// days (0 disables). Requires Sink.
	CheckpointEvery int
	// Sink returns the checkpoint consumer for an arm.
	Sink func(arm string) func(*trace.Checkpoint) error
	// Resume, when non-nil, is asked for each arm's starting
	// checkpoint; returning (nil, nil) starts the arm fresh.
	Resume func(arm string) (*trace.Checkpoint, error)
}

// agingOpts returns the replay options this configuration implies.
func (c Config) agingOpts() aging.Options {
	return aging.Options{SlowScore: c.SlowScore, NoArena: c.NoArena}
}

// Full returns the paper-scale configuration.
func Full(seed int64) Config {
	return Config{
		Seed:        seed,
		FsParams:    ffs.PaperParams(),
		WorkloadCfg: workload.DefaultConfig(seed),
		NFSCfg:      workload.DefaultNFSTraceConfig(seed + 1),
		DiskParams:  disk.PaperParams(),
		BenchTotal:  32 << 20,
		BenchSizes:  bench.PaperSizes(),
		HotWindow:   30,
	}
}

// Quick returns a scaled-down configuration: a 128 MB file system aged
// for 60 days, an 8 MB benchmark corpus, and a coarser size sweep. The
// qualitative effects (policy gap, indirect cliff, hot-set contrast)
// all survive the scaling.
func Quick(seed int64) Config {
	fp := ffs.PaperParams()
	fp.SizeBytes = 128 << 20
	fp.NumCg = 12
	wc := workload.DefaultConfig(seed)
	wc.Days = 60
	wc.NumCg = fp.NumCg
	wc.FsBytes = fp.SizeBytes
	wc.RampDays = 15
	wc.ChurnBytesPerDay = 26 << 20
	wc.ShortPairsPerDay = 180
	wc.LongSize.MaxBytes = 8 << 20
	nc := workload.DefaultNFSTraceConfig(seed + 1)
	nc.PairsPerDay = 150
	kb := func(n int64) int64 { return n << 10 }
	return Config{
		Seed:        seed,
		FsParams:    fp,
		WorkloadCfg: wc,
		NFSCfg:      nc,
		DiskParams:  disk.PaperParams(),
		BenchTotal:  8 << 20,
		BenchSizes:  []int64{kb(16), kb(32), kb(64), kb(96), kb(104), kb(256), kb(1024), kb(4096)},
		HotWindow:   12,
	}
}

// Micro returns a further-scaled-down configuration — a 64 MB file
// system aged for 16 days — sized so that a full workload build plus
// two aged images costs a few seconds. It is the fixture scale of
// internal/perfbench (and of unit tests that need an aged image but
// not the Quick suite's fidelity); the policy gap survives even this
// scaling, but the paper's quantitative claims do not, so Micro is
// never used for exhibit generation.
func Micro(seed int64) Config {
	fp := ffs.PaperParams()
	fp.SizeBytes = 64 << 20
	fp.NumCg = 6
	wc := workload.DefaultConfig(seed)
	wc.Days = 16
	wc.NumCg = fp.NumCg
	wc.FsBytes = fp.SizeBytes
	wc.RampDays = 4
	wc.ChurnBytesPerDay = 13 << 20
	wc.ShortPairsPerDay = 90
	wc.LongSize.MaxBytes = 4 << 20
	nc := workload.DefaultNFSTraceConfig(seed + 1)
	nc.PairsPerDay = 60
	kb := func(n int64) int64 { return n << 10 }
	return Config{
		Seed:        seed,
		FsParams:    fp,
		WorkloadCfg: wc,
		NFSCfg:      nc,
		DiskParams:  disk.PaperParams(),
		BenchTotal:  4 << 20,
		BenchSizes:  []int64{kb(16), kb(64), kb(96), kb(256), kb(1024)},
		HotWindow:   5,
	}
}

// Suite holds the shared state of one reproduction run.
type Suite struct {
	Cfg   Config
	Build *workload.Build

	// AgedFFS and AgedRealloc are replays of the reconstructed aging
	// workload under the two policies — the paper's two test systems.
	AgedFFS     *aging.Result
	AgedRealloc *aging.Result
	// RealFFS replays the ground-truth stream; it stands in for the
	// paper's original file server in Figure 1.
	RealFFS *aging.Result

	fig4 *Fig4Data
}

// NewSuite generates the workload and ages the three file systems.
// The replays are independent simulations on separate file systems, so
// they run concurrently on the shared runner; both the workload build
// and the aged images come from the process-wide cache, so a second
// Suite (or an ablation arm with identical inputs) reuses them and
// only pays for an ffs.Clone.
func NewSuite(cfg Config) (*Suite, error) {
	b, err := CachedBuild(cfg.WorkloadCfg, cfg.NFSCfg)
	if err != nil {
		return nil, err
	}
	s := &Suite{Cfg: cfg, Build: b}
	wlKey := workloadKey(cfg.WorkloadCfg, cfg.NFSCfg)
	runs := []struct {
		name   string
		policy ffs.Policy
		wl     *trace.Workload
		key    string
		dst    **aging.Result
	}{
		{"age ffs", core.Original{}, b.Reconstructed, wlKey + "|reconstructed", &s.AgedFFS},
		{"age realloc", core.Realloc{}, b.Reconstructed, wlKey + "|reconstructed", &s.AgedRealloc},
		{"age ground-truth", core.Original{}, b.Reference.GroundTruth, wlKey + "|ground-truth", &s.RealFFS},
	}
	g := runner.New(context.Background())
	for i := range runs {
		r := runs[i]
		g.Go(r.name, func(context.Context) error {
			var res *aging.Result
			var err error
			if cfg.Recovery != nil {
				res, err = ageArm(cfg, strings.ReplaceAll(r.name, " ", "-"), r.policy, r.wl)
			} else {
				res, err = CachedAgedImage(cfg.FsParams, r.policy, r.wl, r.key, cfg.agingOpts())
			}
			if err != nil {
				return fmt.Errorf("%s: %w", r.name, err)
			}
			*r.dst = res
			return nil
		})
	}
	if _, err := g.Wait(); err != nil {
		return nil, err
	}
	if cfg.Obs != nil {
		// Publish sequentially, in arm order, after the barrier: the
		// metrics are pure functions of each arm's (resume-safe) result,
		// so the snapshot is identical for every -j level and for
		// resumed runs.
		for _, p := range []struct {
			arm string
			res *aging.Result
			wl  *trace.Workload
		}{
			{"age-ffs", s.AgedFFS, b.Reconstructed},
			{"age-realloc", s.AgedRealloc, b.Reconstructed},
			{"age-ground-truth", s.RealFFS, b.Reference.GroundTruth},
		} {
			aging.PublishResult(cfg.Obs.Scope("aging."+p.arm), p.res, p.wl)
		}
	}
	return s, nil
}

// ageArm runs one aging replay with the Recovery wiring: resume from a
// checkpoint when one is offered, otherwise replay from scratch with
// the arm's private clone of the fault plan.
func ageArm(cfg Config, arm string, policy ffs.Policy, wl *trace.Workload) (*aging.Result, error) {
	rec := cfg.Recovery
	opts := cfg.agingOpts()
	if cfg.Obs != nil {
		// During-replay incident stream (checkpoints, faults, crashes).
		// Arms write to disjoint scopes, so concurrent arms never share
		// a tracer.
		opts.Obs = cfg.Obs.Scope("aging." + arm)
	}
	if rec.CheckpointEvery > 0 && rec.Sink != nil {
		opts.CheckpointEvery = rec.CheckpointEvery
		opts.Checkpoint = rec.Sink(arm)
	}
	if rec.Resume != nil {
		cp, err := rec.Resume(arm)
		if err != nil {
			return nil, fmt.Errorf("resuming %s: %w", arm, err)
		}
		if cp != nil {
			// A resumed run finishes the remainder; the original plan's
			// faults already fired and are not replayed.
			return aging.ResumeReplay(policy, wl, cp, opts)
		}
	}
	opts.Faults = rec.Faults.Clone()
	return aging.Replay(cfg.FsParams, policy, wl, opts)
}

// Days returns the simulated period length.
func (s *Suite) Days() int { return s.Cfg.WorkloadCfg.Days }

// hotFromDay returns the first day of the hot window.
func (s *Suite) hotFromDay() int { return s.Days() - s.Cfg.HotWindow }

// Fig1 returns the aging-validation series: the "real" system (ground
// truth) and the "simulated" one (snapshot-reconstructed workload),
// both under the original allocator, as in the paper's Figure 1.
func (s *Suite) Fig1() (real, sim stats.Series) {
	return s.RealFFS.LayoutByDay, s.AgedFFS.LayoutByDay
}

// Fig2 returns the aggregate layout series of the two policies over the
// aging period.
func (s *Suite) Fig2() (orig, realloc stats.Series) {
	return s.AgedFFS.LayoutByDay, s.AgedRealloc.LayoutByDay
}

// sizeBuckets returns the x axis of the by-size figures.
func (s *Suite) sizeBuckets() []stats.SizeBucket {
	return stats.PowerOfTwoBuckets(16<<10, 16<<20)
}

// Fig3 returns layout score by file size for the files living on the
// two aged images.
func (s *Suite) Fig3() (orig, realloc []stats.SizeBucket) {
	fpb := s.Cfg.FsParams.FragsPerBlock()
	orig = layout.BySize(layout.AllFiles(s.AgedFFS.Fs), fpb, s.sizeBuckets())
	realloc = layout.BySize(layout.AllFiles(s.AgedRealloc.Fs), fpb, s.sizeBuckets())
	return orig, realloc
}

// Fig4Data is the sequential I/O sweep on both aged images plus the
// raw-device reference lines (bytes/second).
type Fig4Data struct {
	Orig     []bench.SeqResult
	Realloc  []bench.SeqResult
	RawRead  float64
	RawWrite float64
}

// Fig4 runs (once) and returns the sequential benchmark sweep.
func (s *Suite) Fig4() (*Fig4Data, error) {
	if s.fig4 != nil {
		return s.fig4, nil
	}
	day := s.Days()
	orig, err := bench.SequentialSweep(s.AgedFFS.Fs, s.Cfg.DiskParams, s.Cfg.BenchSizes, s.Cfg.BenchTotal, day)
	if err != nil {
		return nil, fmt.Errorf("sweep on ffs image: %w", err)
	}
	re, err := bench.SequentialSweep(s.AgedRealloc.Fs, s.Cfg.DiskParams, s.Cfg.BenchSizes, s.Cfg.BenchTotal, day)
	if err != nil {
		return nil, fmt.Errorf("sweep on realloc image: %w", err)
	}
	s.fig4 = &Fig4Data{
		Orig:     orig,
		Realloc:  re,
		RawRead:  bench.RawThroughput(s.Cfg.FsParams.SizeBytes, s.Cfg.DiskParams, s.Cfg.BenchTotal, false),
		RawWrite: bench.RawThroughput(s.Cfg.FsParams.SizeBytes, s.Cfg.DiskParams, s.Cfg.BenchTotal, true),
	}
	if s.Cfg.Obs != nil {
		// Published once (the sweep is memoized); sweep results are
		// indexed by size, so this aggregation order is fixed.
		disk.PublishStats(s.Cfg.Obs.Scope("disk.fig4.ffs"), AggregateSeqStats(orig))
		disk.PublishStats(s.Cfg.Obs.Scope("disk.fig4.realloc"), AggregateSeqStats(re))
		publishSweepSpans(s.Cfg.Obs.Scope("disk.fig4.ffs"), "sweep", seqSplits(orig))
		publishSweepSpans(s.Cfg.Obs.Scope("disk.fig4.realloc"), "sweep", seqSplits(re))
	}
	return s.fig4, nil
}

// seqSplits flattens a sweep into the span publisher's point shape.
func seqSplits(rs []bench.SeqResult) []spanPoint {
	pts := make([]spanPoint, len(rs))
	for i, r := range rs {
		pts[i] = spanPoint{
			name:  "point",
			attrs: []obs.Attr{obs.I("size", r.FileSize), obs.F("read_bps", r.ReadBps), obs.F("write_bps", r.WriteBps)},
			stats: r.Disk,
		}
	}
	return pts
}

// spanPoint is one top-level unit of a benchmark's span timeline.
type spanPoint struct {
	name  string
	attrs []obs.Attr
	stats disk.Stats
}

// publishSweepSpans renders a benchmark's disk accounting as a span
// hierarchy on "<scope>.spans", time in simulated disk seconds laid
// end to end: one root span for the whole run, one span per point, and
// one child span per request class whose width is exactly the seconds
// the attribution matrix charges that class — so the root's length
// equals the disk model's total service time bit for bit. Everything
// is a pure function of the memoized results, published once in point
// order, keeping the stream byte-identical across worker counts and
// crash/resume.
func publishSweepSpans(sc *obs.Scope, root string, pts []spanPoint) {
	tr := sc.SpanTracer("spans")
	tr.Start(0, root, obs.I("points", int64(len(pts))))
	t := 0.0
	for _, p := range pts {
		tr.Start(t, p.name, p.attrs...)
		for c := disk.ReqClass(0); c < disk.NumReqClasses; c++ {
			ts := p.stats.Attr.Class(c)
			if ts.Count == 0 {
				continue
			}
			tr.Start(t, disk.ClassLabel(c),
				obs.I("requests", ts.Count),
				obs.F("seek_s", ts.Seek), obs.F("rot_s", ts.Rot),
				obs.F("xfer_s", ts.Transfer), obs.F("ovhd_s", ts.Overhead))
			t += ts.Total()
			tr.End(t)
		}
		tr.End(t)
	}
	tr.End(t, obs.F("total_s", t))
}

// AggregateSeqStats folds a sweep's per-point disk accounting into one
// Stats, in point order. The time totals are recomputed from the merged
// attribution matrix (disk.Stats.Add), so they still reconcile exactly.
func AggregateSeqStats(rs []bench.SeqResult) disk.Stats {
	var agg disk.Stats
	for _, r := range rs {
		agg = agg.Add(r.Disk)
	}
	return agg
}

// Fig5 returns the layout scores of the benchmark-created files, one
// point per swept size (it shares Fig4's run).
func (s *Suite) Fig5() (orig, realloc []bench.SeqResult, err error) {
	d, err := s.Fig4()
	if err != nil {
		return nil, nil, err
	}
	return d.Orig, d.Realloc, nil
}

// Table2 runs the hot-file benchmark on both images. With Cfg.Obs set
// it also publishes both runs' disk accounting (once per call; repro
// calls it once).
func (s *Suite) Table2() (orig, realloc bench.HotResult, err error) {
	orig, err = bench.HotFiles(s.AgedFFS.Fs, s.Cfg.DiskParams, s.hotFromDay())
	if err != nil {
		return
	}
	realloc, err = bench.HotFiles(s.AgedRealloc.Fs, s.Cfg.DiskParams, s.hotFromDay())
	if err == nil && s.Cfg.Obs != nil {
		disk.PublishStats(s.Cfg.Obs.Scope("disk.table2.ffs"), orig.Disk)
		disk.PublishStats(s.Cfg.Obs.Scope("disk.table2.realloc"), realloc.Disk)
		publishSweepSpans(s.Cfg.Obs.Scope("disk.table2.ffs"), "hotfiles", hotSplits(orig))
		publishSweepSpans(s.Cfg.Obs.Scope("disk.table2.realloc"), "hotfiles", hotSplits(realloc))
	}
	return
}

// hotSplits adapts the hot-file benchmark to the span publisher: one
// point covering the whole run.
func hotSplits(r bench.HotResult) []spanPoint {
	return []spanPoint{{
		name: "hot",
		attrs: []obs.Attr{
			obs.I("files", int64(r.NFiles)),
			obs.I("bytes", r.TotalBytes),
			obs.F("read_bps", r.ReadBps), obs.F("write_bps", r.WriteBps),
		},
		stats: r.Disk,
	}}
}

// Fig6 returns the hot files' layout by size on both images (the
// sequential-benchmark overlay comes from Fig5).
func (s *Suite) Fig6() (orig, realloc []stats.SizeBucket) {
	fpb := s.Cfg.FsParams.FragsPerBlock()
	orig = layout.BySize(layout.HotFiles(s.AgedFFS.Fs, s.hotFromDay()), fpb, s.sizeBuckets())
	realloc = layout.BySize(layout.HotFiles(s.AgedRealloc.Fs, s.hotFromDay()), fpb, s.sizeBuckets())
	return orig, realloc
}

// Table1Row is one line of the benchmark-configuration table.
type Table1Row struct{ Section, Name, Value string }

// Table1 reproduces the configuration table from the model parameters
// actually in use.
func (s *Suite) Table1() []Table1Row {
	g := s.Cfg.DiskParams.Geom
	fp := s.Cfg.FsParams
	mb := func(b int64) string { return fmt.Sprintf("%d MB", b>>20) }
	return []Table1Row{
		{"Disk", "Disk Type", "Seagate ST32430N (model)"},
		{"Disk", "Total Disk Space", fmt.Sprintf("%.1f GB", float64(g.TotalBytes())/1e9)},
		{"Disk", "Rotational Speed", fmt.Sprintf("%d RPM", g.RPM)},
		{"Disk", "Sector Size", fmt.Sprintf("%d Bytes", g.SectorSize)},
		{"Disk", "Cylinders", fmt.Sprintf("%d", g.Cylinders)},
		{"Disk", "Heads", fmt.Sprintf("%d", g.Heads)},
		{"Disk", "Sectors per Track", fmt.Sprintf("%d (average)", g.SectorsPerTrack)},
		{"Disk", "Track Buffer", fmt.Sprintf("%d KB", s.Cfg.DiskParams.TrackBuffer>>10)},
		{"Disk", "Average Seek", fmt.Sprintf("%.0f ms", s.Cfg.DiskParams.Seek.Time(g.Cylinders/3)*1e3)},
		{"Disk", "Max Transfer", fmt.Sprintf("%d KB", s.Cfg.DiskParams.MaxTransfer>>10)},
		{"File System", "Size", mb(fp.SizeBytes)},
		{"File System", "Fragment Size", fmt.Sprintf("%d KB", fp.FragSize>>10)},
		{"File System", "Block Size", fmt.Sprintf("%d KB", fp.BlockSize>>10)},
		{"File System", "Max. Cluster Size", fmt.Sprintf("%d KB", fp.ClusterBytes()>>10)},
		{"File System", "Rotational Gap", fmt.Sprintf("%d", fp.RotDelay)},
		{"File System", "Cylinder Groups", fmt.Sprintf("%d", fp.NumCg)},
		{"File System", "Heads (fs notion)", fmt.Sprintf("%d", fp.LogicalHeads)},
		{"File System", "Sectors per Track (fs notion)", fmt.Sprintf("%d", fp.LogicalSectors)},
	}
}

// HeadlineNumbers are the paper's summary statistics for quick
// comparison (Sections 4 and 5).
type HeadlineNumbers struct {
	Day1Orig, Day1Realloc   float64
	FinalOrig, FinalRealloc float64
	// NonOptimalImprovement is the reduction in non-optimally
	// allocated blocks (paper: 56.8%).
	NonOptimalImprovement float64
	// SeekReduction is the drop in intra-file disk seeks on the aged
	// images (the paper's §7 claim: "more than 50%").
	SeekReduction float64
	SeeksOrig     int
	SeeksRealloc  int
	// Fig1RealFinal / Fig1SimFinal are the validation endpoints
	// (paper: 0.68 real vs 0.77 simulated).
	Fig1RealFinal, Fig1SimFinal float64
}

// Headlines computes the summary comparison numbers. It errors instead
// of panicking when an aging series is empty (a zero-day or truncated
// run has no final layout to compare).
func (s *Suite) Headlines() (HeadlineNumbers, error) {
	o, r := s.Fig2()
	realSeries, sim := s.Fig1()
	if len(o) == 0 || len(r) == 0 || len(realSeries) == 0 || len(sim) == 0 {
		return HeadlineNumbers{}, fmt.Errorf("experiments: empty aging series (%d/%d/%d/%d days); headline numbers need at least one completed day",
			len(o), len(r), len(realSeries), len(sim))
	}
	nonOptO := 1 - o.Final()
	nonOptR := 1 - r.Final()
	improvement := 0.0
	if nonOptO > 0 {
		improvement = (nonOptO - nonOptR) / nonOptO
	}
	fpb := s.Cfg.FsParams.FragsPerBlock()
	seeksO := layout.IntraFileSeeks(layout.AllFiles(s.AgedFFS.Fs), fpb)
	seeksR := layout.IntraFileSeeks(layout.AllFiles(s.AgedRealloc.Fs), fpb)
	seekRed := 0.0
	if seeksO > 0 {
		seekRed = float64(seeksO-seeksR) / float64(seeksO)
	}
	return HeadlineNumbers{
		Day1Orig:              o.At(o[0].Day),
		Day1Realloc:           r.At(r[0].Day),
		FinalOrig:             o.Final(),
		FinalRealloc:          r.Final(),
		NonOptimalImprovement: improvement,
		SeekReduction:         seekRed,
		SeeksOrig:             seeksO,
		SeeksRealloc:          seeksR,
		Fig1RealFinal:         realSeries.Final(),
		Fig1SimFinal:          sim.Final(),
	}, nil
}
