package experiments

import (
	"sync"
	"testing"
)

var (
	quickOnce  sync.Once
	quickSuite *Suite
	quickErr   error
)

// sharedQuick builds the Quick-scale suite once for the whole package.
func sharedQuick(t *testing.T) *Suite {
	t.Helper()
	quickOnce.Do(func() {
		quickSuite, quickErr = NewSuite(Quick(1996))
	})
	if quickErr != nil {
		t.Fatal(quickErr)
	}
	return quickSuite
}

func TestSuiteHeadlines(t *testing.T) {
	s := sharedQuick(t)
	h, err := s.Headlines()
	if err != nil {
		t.Fatal(err)
	}
	if h.FinalRealloc <= h.FinalOrig {
		t.Errorf("realloc %.3f not better than ffs %.3f", h.FinalRealloc, h.FinalOrig)
	}
	if h.NonOptimalImprovement <= 0.2 {
		t.Errorf("improvement %.2f, want > 20%%", h.NonOptimalImprovement)
	}
	if h.Day1Orig < 0.8 || h.Day1Realloc < 0.8 {
		t.Errorf("day-1 scores %.3f/%.3f suspiciously low", h.Day1Orig, h.Day1Realloc)
	}
	// The reconstruction loses intra-day churn, so the simulated aging
	// fragments no more than the real one (paper Figure 1's gap).
	if h.Fig1SimFinal < h.Fig1RealFinal-0.05 {
		t.Errorf("simulated %.3f fragments much more than real %.3f", h.Fig1SimFinal, h.Fig1RealFinal)
	}
}

func TestSuiteSeriesCoverAllDays(t *testing.T) {
	s := sharedQuick(t)
	o, r := s.Fig2()
	if len(o) != s.Days() || len(r) != s.Days() {
		t.Errorf("series lengths %d/%d, want %d", len(o), len(r), s.Days())
	}
	realSeries, sim := s.Fig1()
	if len(realSeries) != s.Days() || len(sim) != s.Days() {
		t.Errorf("fig1 lengths %d/%d", len(realSeries), len(sim))
	}
}

func TestSuiteFig3Shape(t *testing.T) {
	s := sharedQuick(t)
	orig, realloc := s.Fig3()
	if len(orig) != len(realloc) || len(orig) == 0 {
		t.Fatal("empty fig3")
	}
	var better, total int
	for i := range orig {
		if orig[i].Files == 0 || realloc[i].Files == 0 {
			continue
		}
		total++
		if realloc[i].Score >= orig[i].Score {
			better++
		}
	}
	if total == 0 {
		t.Fatal("no populated buckets")
	}
	if better*2 < total {
		t.Errorf("realloc better in only %d/%d buckets", better, total)
	}
}

func TestSuiteFig4Fig5(t *testing.T) {
	s := sharedQuick(t)
	d, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Orig) != len(s.Cfg.BenchSizes) {
		t.Fatalf("%d sweep points", len(d.Orig))
	}
	if d.RawRead <= d.RawWrite {
		t.Error("raw read not above raw write")
	}
	// The indirect cliff: read throughput at 104 KB below 96 KB.
	var r96, r104 float64
	for _, p := range d.Realloc {
		switch p.FileSize {
		case 96 << 10:
			r96 = p.ReadBps
		case 104 << 10:
			r104 = p.ReadBps
		}
	}
	if r104 >= r96 {
		t.Errorf("no indirect cliff: 96KB %.0f ≤ 104KB %.0f", r96, r104)
	}
	// Fig5 shares the same run.
	o5, r5, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(o5) != len(d.Orig) || len(r5) != len(d.Realloc) {
		t.Error("fig5 shape mismatch")
	}
	// Realloc lays benchmark files out at least as well as the
	// original policy at every size.
	for i := range r5 {
		if r5[i].LayoutScore+0.05 < o5[i].LayoutScore {
			t.Errorf("size %d: realloc bench layout %.3f below ffs %.3f",
				r5[i].FileSize, r5[i].LayoutScore, o5[i].LayoutScore)
		}
	}
}

func TestSuiteTable2Fig6(t *testing.T) {
	s := sharedQuick(t)
	o, r, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if r.LayoutScore <= o.LayoutScore {
		t.Errorf("hot layout: realloc %.3f not above ffs %.3f", r.LayoutScore, o.LayoutScore)
	}
	if r.ReadBps <= o.ReadBps {
		t.Errorf("hot read: realloc %.0f not above ffs %.0f", r.ReadBps, o.ReadBps)
	}
	ho, hr := s.Fig6()
	if len(ho) == 0 || len(hr) == 0 {
		t.Fatal("empty fig6")
	}
}

func TestTable1(t *testing.T) {
	s := sharedQuick(t)
	rows := s.Table1()
	if len(rows) < 15 {
		t.Fatalf("%d rows", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if r.Section == "" || r.Name == "" || r.Value == "" {
			t.Errorf("incomplete row %+v", r)
		}
		seen[r.Name] = true
	}
	for _, want := range []string{"Block Size", "Max. Cluster Size", "Rotational Speed"} {
		if !seen[want] {
			t.Errorf("missing row %q", want)
		}
	}
}

func TestAblationQuirkQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	cfg := Quick(7)
	rs, err := AblationQuirk(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("%d results", len(rs))
	}
	// Engaging realloc for single-block runs must not hurt the
	// two-block bucket.
	if rs[1].TwoBlockScore+0.1 < rs[0].TwoBlockScore {
		t.Errorf("single-block variant %.3f worse than stock %.3f",
			rs[1].TwoBlockScore, rs[0].TwoBlockScore)
	}
}

func TestAblationCrossCgQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	cfg := Quick(7)
	rs, err := AblationCrossCg(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-group search must not age worse than in-group only.
	if rs[0].FinalLayout+0.02 < rs[1].FinalLayout {
		t.Errorf("cross-group %.3f worse than in-group %.3f",
			rs[0].FinalLayout, rs[1].FinalLayout)
	}
}

// The paper's §7 headline: realloc cuts intra-file disk seeks by more
// than 50%.
func TestSeekReductionHeadline(t *testing.T) {
	s := sharedQuick(t)
	h, err := s.Headlines()
	if err != nil {
		t.Fatal(err)
	}
	if h.SeeksOrig <= h.SeeksRealloc {
		t.Fatalf("seeks %d → %d: no reduction", h.SeeksOrig, h.SeeksRealloc)
	}
	if h.SeekReduction < 0.4 {
		t.Errorf("seek reduction %.2f, want ≥ 0.4 (paper: >0.5)", h.SeekReduction)
	}
}
