package experiments

import (
	"bytes"
	"strings"
	"testing"

	"ffsage/internal/ffs"
	"ffsage/internal/layout"
	"ffsage/internal/obs"
	"ffsage/internal/policy"
	"ffsage/internal/runner"
)

// tournamentCfg is the seeded 30-day quick-scale configuration the
// tournament property test runs under.
func tournamentCfg() Config {
	cfg := Quick(1996)
	cfg.WorkloadCfg.Days = 30
	return cfg
}

// allPolicies instantiates every registered policy in Names() order.
func allPolicies(t *testing.T) []ffs.Policy {
	t.Helper()
	pols, err := RegisteredPolicies(policy.Names()...)
	if err != nil {
		t.Fatal(err)
	}
	return pols
}

// runTournament runs the full field on a cold cache under the given
// worker bound and returns the entries plus the rendered report.
func runTournament(t *testing.T, workers int) ([]TournamentEntry, string) {
	t.Helper()
	ResetCaches()
	runner.SetWorkers(workers)
	defer runner.SetWorkers(0)
	cfg := tournamentCfg()
	entries, err := Tournament(cfg, allPolicies(t)...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderTournament(&buf, "quick", cfg.Seed, cfg.WorkloadCfg.Days, entries); err != nil {
		t.Fatal(err)
	}
	return entries, buf.String()
}

// TestTournamentProperty is the registry-wide property test: every
// registered policy, aged 30 days at quick scale, must leave a clean
// file system whose incremental layout score agrees with the full
// -slowscore rescan, and the comparative report must be byte-identical
// between a serial (-j1) and a parallel (-j8) run.
func TestTournamentProperty(t *testing.T) {
	_, report1 := runTournament(t, 1)
	entries8, report8 := runTournament(t, 8)
	if report1 != report8 {
		t.Errorf("tournament report differs between -j1 and -j8\n-j1:\n%s\n-j8:\n%s", report1, report8)
	}
	if len(entries8) != len(policy.Names()) {
		t.Fatalf("%d entries for %d registered policies", len(entries8), len(policy.Names()))
	}
	// The -j8 run left the cache warm: re-fetch each aged image (a
	// private clone) and check the per-policy invariants on it.
	cfg := tournamentCfg()
	b, err := CachedBuild(cfg.WorkloadCfg, cfg.NFSCfg)
	if err != nil {
		t.Fatal(err)
	}
	key := workloadKey(cfg.WorkloadCfg, cfg.NFSCfg) + "|reconstructed"
	for i, name := range policy.Names() {
		pol, err := policy.New(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CachedAgedImage(cfg.FsParams, pol, b.Reconstructed, key, cfg.agingOpts())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Fs.Check(); err != nil {
			t.Errorf("%s: aged image fails Check: %v", name, err)
		}
		if got, want := res.Fs.LayoutScore(), layout.FsAggregate(res.Fs); got != want {
			t.Errorf("%s: incremental layout score %v != -slowscore rescan %v", name, got, want)
		}
		if entries8[i].Name != name {
			t.Errorf("entry %d is %q, want %q (input order must be preserved)", i, entries8[i].Name, name)
		}
		if got := entries8[i].LayoutByDay.FinalOr(-1); got != res.Fs.LayoutScore() {
			t.Errorf("%s: entry final layout %v != aged image score %v", name, got, res.Fs.LayoutScore())
		}
		if len(entries8[i].Seq) != len(cfg.BenchSizes) {
			t.Errorf("%s: %d sweep points, want %d", name, len(entries8[i].Seq), len(cfg.BenchSizes))
		}
	}
	_, _, ah, _ := CacheCounts()
	if ah < int64(len(policy.Names())) {
		t.Errorf("aged-image cache hits %d; invariant pass should have reused the tournament images", ah)
	}
}

// TestTournamentReportAssembles pins the fan-in contract: assembling
// the report from per-policy fragments reproduces the single-process
// rendering byte for byte, and the report names every policy.
func TestTournamentReportAssembles(t *testing.T) {
	entries, report := runTournament(t, 0)
	cfg := tournamentCfg()
	names := make([]string, len(entries))
	fragments := make([][]byte, len(entries))
	for i := range entries {
		names[i] = entries[i].Name
		fragments[i] = entries[i].Fragment(cfg.WorkloadCfg.Days)
	}
	var buf bytes.Buffer
	if err := WriteTournamentReport(&buf, "quick", cfg.Seed, cfg.WorkloadCfg.Days, names, fragments); err != nil {
		t.Fatal(err)
	}
	if buf.String() != report {
		t.Errorf("assembled report differs from single-process rendering\nassembled:\n%s\nfull:\n%s", buf.String(), report)
	}
	for _, name := range policy.Names() {
		if !strings.Contains(report, "## "+name) {
			t.Errorf("report missing section for %s", name)
		}
	}
}

// TestTournamentRejects pins the argument validation.
func TestTournamentRejects(t *testing.T) {
	cfg := tournamentCfg()
	if _, err := Tournament(cfg); err == nil {
		t.Error("empty tournament accepted")
	}
	p1, err := policy.New("ffs")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := policy.New("ffs")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Tournament(cfg, p1, p2); err == nil {
		t.Error("duplicate policy names accepted")
	}
}

// TestTournamentPublishesObs checks the tournament's metric scopes are
// present and disjoint from the Suite's aging.<arm> namespace.
func TestTournamentPublishesObs(t *testing.T) {
	ResetCaches()
	reg := obs.NewRegistry()
	cfg := tinyCfg(79)
	cfg.Obs = reg
	pols, err := RegisteredPolicies("ffs", "ffs+realloc", "ssd")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Tournament(cfg, pols...); err != nil {
		t.Fatal(err)
	}
	var m bytes.Buffer
	if err := reg.WriteMetrics(&m); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"tournament.ffs.alloc.blocks",
		"tournament.ffs-realloc.alloc.cluster_moves",
		"tournament.ssd.alloc.blocks",
	} {
		if !strings.Contains(m.String(), want) {
			t.Errorf("tournament metrics missing %q", want)
		}
	}
}
