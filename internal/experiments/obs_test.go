package experiments

import (
	"bytes"
	"strings"
	"testing"

	"ffsage/internal/obs"
	"ffsage/internal/runner"
)

// tinyCfg is a further-scaled-down Quick configuration so the
// determinism differential can afford to build the suite twice.
func tinyCfg(seed int64) Config {
	cfg := Quick(seed)
	cfg.FsParams.SizeBytes = 64 << 20
	cfg.FsParams.NumCg = 8
	cfg.WorkloadCfg.Days = 12
	cfg.WorkloadCfg.NumCg = 8
	cfg.WorkloadCfg.FsBytes = 64 << 20
	cfg.WorkloadCfg.RampDays = 3
	cfg.WorkloadCfg.ChurnBytesPerDay = 12 << 20
	cfg.WorkloadCfg.ShortPairsPerDay = 60
	cfg.WorkloadCfg.LongSize.MaxBytes = 4 << 20
	cfg.NFSCfg.PairsPerDay = 40
	cfg.BenchTotal = 4 << 20
	cfg.BenchSizes = []int64{16 << 10, 96 << 10, 1 << 20}
	cfg.HotWindow = 4
	return cfg
}

// obsSnapshot builds the tiny suite with the given worker bound on a
// cold cache and returns the metrics, events, and span dumps.
func obsSnapshot(t *testing.T, workers int) (metrics, events, spans string) {
	t.Helper()
	ResetCaches()
	runner.SetWorkers(workers)
	defer runner.SetWorkers(0)
	reg := obs.NewRegistry()
	cfg := tinyCfg(77)
	cfg.Obs = reg
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fig4(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Table2(); err != nil {
		t.Fatal(err)
	}
	var m, e, sb bytes.Buffer
	if err := reg.WriteMetrics(&m); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteEvents(&e); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteSpans(&sb); err != nil {
		t.Fatal(err)
	}
	return m.String(), e.String(), sb.String()
}

// TestMetricsIdenticalAcrossWorkers is the -j differential: the full
// metrics snapshot and event dump of a suite built on one worker must
// be byte-identical to one built on eight. Counters commute, and every
// float-bearing metric has a single writer publishing in a fixed
// sequential order, so scheduling must not leak into the output.
func TestMetricsIdenticalAcrossWorkers(t *testing.T) {
	m1, e1, s1 := obsSnapshot(t, 1)
	m8, e8, s8 := obsSnapshot(t, 8)
	if m1 != m8 {
		t.Errorf("metrics differ between -j1 and -j8\n-j1:\n%s\n-j8:\n%s", m1, m8)
	}
	if e1 != e8 {
		t.Errorf("events differ between -j1 and -j8\n-j1:\n%s\n-j8:\n%s", e1, e8)
	}
	if s1 != s8 {
		t.Errorf("spans differ between -j1 and -j8\n-j1:\n%s\n-j8:\n%s", s1, s8)
	}
	// Guard against vacuous success: the snapshot must actually carry
	// the aging summaries and the benchmark disk attribution.
	for _, want := range []string{
		"counter aging.age-ffs.alloc.blocks",
		"counter aging.age-realloc.alloc.cluster_moves",
		"counter aging.age-ground-truth.days",
		"hist disk.fig4.ffs.read.mech.seek_s",
		"hist disk.table2.realloc.write.rot_s",
	} {
		if !strings.Contains(m1, want) {
			t.Errorf("snapshot missing %q", want)
		}
	}
	if !strings.Contains(e1, `"stream":"aging.age-ffs.days"`) {
		t.Error("events missing per-day stream")
	}
	// Same guard for spans: every arm and benchmark must contribute a
	// stream, with the expected roots.
	for _, want := range []string{
		`"stream":"aging.age-ffs.spans"`,
		`"span":"replay"`,
		`"stream":"disk.fig4.realloc.spans"`,
		`"span":"sweep"`,
		`"stream":"disk.table2.ffs.spans"`,
		`"span":"hotfiles"`,
	} {
		if !strings.Contains(s1, want) {
			t.Errorf("span dump missing %s", want)
		}
	}
}

// TestCacheCountsTally checks the footer counters: a cold suite build
// misses, an identical rebuild hits.
func TestCacheCountsTally(t *testing.T) {
	ResetCaches()
	cfg := tinyCfg(78)
	if _, err := NewSuite(cfg); err != nil {
		t.Fatal(err)
	}
	bh, bm, ah, am := CacheCounts()
	if bh != 0 || bm != 1 {
		t.Errorf("cold build counts hit=%d miss=%d, want 0/1", bh, bm)
	}
	// Three arms, two distinct (params, policy, workload) triples share
	// one entry: age-ffs and age-ground-truth differ by workload, so all
	// three are distinct keys here.
	if ah != 0 || am != 3 {
		t.Errorf("cold image counts hit=%d miss=%d, want 0/3", ah, am)
	}
	if _, err := NewSuite(cfg); err != nil {
		t.Fatal(err)
	}
	bh, bm, ah, am = CacheCounts()
	if bh != 1 || bm != 1 || ah != 3 || am != 3 {
		t.Errorf("warm rebuild counts %d/%d/%d/%d, want 1/1/3/3", bh, bm, ah, am)
	}
}
