package experiments

import (
	"context"
	"fmt"

	"ffsage/internal/aging"
	"ffsage/internal/bench"
	"ffsage/internal/disk"
	"ffsage/internal/runner"
)

// BusStudyResult reproduces the paper's §5.1 discussion: the same two
// aged images benchmarked behind two host paths. On the fast (PCI)
// path, seek time dominates transfer time, so better layout buys a
// large relative speedup; on the SparcStation-class path the slow bus
// dominates everything and the same layout difference buys much less —
// which is how the paper reconciles its >50% gains with the ~15% of
// the earlier study.
type BusStudyResult struct {
	Label string
	// ReadFFS/ReadRealloc are hot-set read throughputs (bytes/second).
	ReadFFS     float64
	ReadRealloc float64
}

// Gain returns the realloc read advantage as a fraction.
func (r BusStudyResult) Gain() float64 { return r.ReadRealloc/r.ReadFFS - 1 }

// BusStudy runs the hot-file benchmark on the suite's aged images
// under the paper's PCI configuration and the SparcStation-1
// configuration.
func BusStudy(s *Suite) ([]BusStudyResult, error) {
	from := s.hotFromDay()
	configs := []struct {
		label string
		p     disk.Params
	}{
		{"PCI / BusLogic 946C (paper)", s.Cfg.DiskParams},
		{"SparcStation 1 ([Seltzer95])", disk.SparcStation1Params()},
	}
	// The four benchmark runs (two host paths × two images) are
	// independent: each clones its image, so they fan out on the runner.
	out := make([]BusStudyResult, len(configs))
	g := runner.New(context.Background())
	for i, c := range configs {
		out[i].Label = c.label
		for _, img := range []struct {
			name string
			fs   *aging.Result
			dst  *float64
		}{
			{"ffs", s.AgedFFS, &out[i].ReadFFS},
			{"realloc", s.AgedRealloc, &out[i].ReadRealloc},
		} {
			g.Go(fmt.Sprintf("bus %s %s", c.label, img.name), func(context.Context) error {
				r, err := bench.HotFiles(img.fs.Fs, c.p, from)
				if err != nil {
					return fmt.Errorf("bus study %s: %w", c.label, err)
				}
				*img.dst = r.ReadBps
				return nil
			})
		}
	}
	if _, err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}
