package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
)

// vetConfig mirrors the JSON configuration cmd/go writes for
// `go vet -vettool` tools (the unitchecker protocol): one file per
// compilation unit, naming the sources and the export data of every
// direct import.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// RunVetTool analyzes the single compilation unit described by
// cfgFile, printing findings to stderr in file:line:col form. The
// returned exit code follows the vettool convention: 0 clean, 1
// findings, 2 tool failure. cmd/go invokes the tool once per package
// in the build graph; dependency-only units arrive with VetxOnly set
// and are skipped outright — ffsvet exports no facts, but the facts
// file (VetxOutput) must still be written for cmd/go to cache the
// run. The unit is analyzed as a Partial program: the whole-program
// analyzers degrade to optimistic reachability there (see Program),
// and the standalone driver remains the authoritative run.
func RunVetTool(cfgFile string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffsvet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ffsvet: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	writeVetx := func() bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, []byte("ffsvet: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "ffsvet: %v\n", err)
			return false
		}
		return true
	}
	if cfg.VetxOnly {
		if !writeVetx() {
			return 2
		}
		return 0
	}

	fset := token.NewFileSet()
	files, err := ParseFiles(fset, cfg.GoFiles)
	if err == nil {
		var pkg *Package
		imp := NewExportImporter(fset, cfg.ImportMap, cfg.PackageFile)
		pkg, err = TypeCheck(fset, cfg.ImportPath, cfg.GoVersion, files, imp)
		if err == nil {
			// One compilation unit is a partial program: the
			// whole-program analyzers run with opaque-callee optimism so
			// they under-report rather than over-report here; the
			// standalone driver and TestRepoIsClean are authoritative.
			prog := NewProgram([]*Package{pkg})
			prog.Partial = true
			diags := RunProgram(prog, analyzers)
			for _, d := range diags {
				fmt.Fprintln(os.Stderr, d)
			}
			if !writeVetx() {
				return 2
			}
			if len(diags) > 0 {
				return 1
			}
			return 0
		}
	}
	if cfg.SucceedOnTypecheckFailure {
		if !writeVetx() {
			return 2
		}
		return 0
	}
	fmt.Fprintf(os.Stderr, "ffsvet: %s: %v\n", cfg.ImportPath, err)
	return 2
}

// VersionString identifies the tool build for cmd/go's result caching
// (the `-V=full` handshake). Hashing the executable means editing an
// analyzer invalidates cached vet verdicts, where a constant string
// would keep serving stale passes.
func VersionString() string {
	self, err := os.Executable()
	if err == nil {
		if f, err := os.Open(self); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("ffsvet version %x", h.Sum(nil)[:12])
			}
		}
	}
	return "ffsvet version unknown"
}
