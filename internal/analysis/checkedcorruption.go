package analysis

import (
	"go/ast"
	"go/types"
)

// CheckedCorruptionConfig names the packages whose error returns carry
// *ffs.CorruptionError and therefore must never be dropped.
type CheckedCorruptionConfig struct {
	Packages []string
}

// DefaultCheckedCorruptionConfig guards the mutating ffs API: every
// exported mutator recovers in-flight corruption panics into a returned
// *CorruptionError, so a discarded error is a corrupted file system
// silently replayed onward.
func DefaultCheckedCorruptionConfig() CheckedCorruptionConfig {
	return CheckedCorruptionConfig{Packages: []string{"ffsage/internal/ffs"}}
}

// CheckedCorruption builds the error-discipline analyzer: a call to a
// function or method of one of cfg.Packages whose final result is an
// error must not appear as a bare statement (or go/defer statement),
// and the error position of a multi-assign must not be the blank
// identifier. Test files are exempt — test helpers assert through the
// testing.T — but non-test code in every package, including cmd/ and
// examples/, is checked.
func CheckedCorruption(cfg CheckedCorruptionConfig) *Analyzer {
	guarded := map[string]bool{}
	for _, p := range cfg.Packages {
		guarded[p] = true
	}
	return &Analyzer{
		Name: "checkedcorruption",
		Doc:  "forbid discarding errors returned by the corruption-carrying ffs API",
		Run: func(pass *Pass) {
			for _, f := range pass.Files {
				if pass.InTestFile(f.Package) {
					continue
				}
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.ExprStmt:
						reportDroppedError(pass, guarded, n.X, "discarded")
					case *ast.GoStmt:
						reportDroppedError(pass, guarded, n.Call, "discarded by go statement")
					case *ast.DeferStmt:
						reportDroppedError(pass, guarded, n.Call, "discarded by defer")
					case *ast.AssignStmt:
						checkBlankError(pass, guarded, n)
					}
					return true
				})
			}
		},
	}
}

// errFunc returns the called guarded function when call's final result
// is an error, else nil.
func errFunc(pass *Pass, guarded map[string]bool, call *ast.CallExpr) *types.Func {
	fn := pass.Callee(call)
	if fn == nil || fn.Pkg() == nil || !guarded[fn.Pkg().Path()] {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !types.Implements(last, errorInterface()) {
		return nil
	}
	return fn
}

var errIface *types.Interface

func errorInterface() *types.Interface {
	if errIface == nil {
		errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	}
	return errIface
}

func reportDroppedError(pass *Pass, guarded map[string]bool, expr ast.Expr, how string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return
	}
	if fn := errFunc(pass, guarded, call); fn != nil {
		pass.Reportf(call.Pos(), "error result of %s %s; handle it — a dropped *ffs.CorruptionError leaves the image silently corrupt (detect with errors.As, mend with Repair)", fn.FullName(), how)
	}
}

// checkBlankError flags `v, _ := pkg.Mutate(...)` where the blank slot
// is the trailing error of a guarded call. Single-call multi-assign
// only: tuple-unpacking is the only way a guarded error lands in an
// explicit blank.
func checkBlankError(pass *Pass, guarded map[string]bool, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 || len(as.Lhs) < 2 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := errFunc(pass, guarded, call)
	if fn == nil {
		return
	}
	last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if ok && last.Name == "_" {
		pass.Reportf(last.Pos(), "error result of %s assigned to _; handle it — a dropped *ffs.CorruptionError leaves the image silently corrupt (detect with errors.As, mend with Repair)", fn.FullName())
	}
}
