package analysis

import (
	"testing"
)

func TestDetrandFixtures(t *testing.T) {
	// detrand/perfbench mirrors ffsage/internal/perfbench: covered,
	// but NOT on the TimeOK allowlist — wall-clock reads pass only
	// under a justified //lint:ignore in its measurement core.
	a := Detrand(DetrandConfig{
		Packages: []string{"detrand/a", "detrand/bench", "detrand/obs", "detrand/perfbench", "detrand/policy"},
		TimeOK:   []string{"detrand/bench"},
	})
	for _, path := range []string{"detrand/a", "detrand/bench", "detrand/other", "detrand/obs", "detrand/perfbench", "detrand/policy"} {
		t.Run(path, func(t *testing.T) { runFixture(t, a, path) })
	}
}

func TestMaporderFixtures(t *testing.T) {
	for _, path := range []string{"maporder/a", "maporder/obs"} {
		t.Run(path, func(t *testing.T) { runFixture(t, Maporder(), path) })
	}
}

func TestCheckedCorruptionFixtures(t *testing.T) {
	a := CheckedCorruption(CheckedCorruptionConfig{Packages: []string{"checkedcorruption/ffs"}})
	runFixture(t, a, "checkedcorruption/a")
}

func TestDirmapFixtures(t *testing.T) {
	// dirmap/ffs mirrors ffsage/internal/ffs (covered, every forbidden
	// shape flagged); dirmap/other holds the same shapes outside the
	// configured packages and must stay silent.
	a := Dirmap(DirmapConfig{Packages: []string{"dirmap/ffs"}})
	for _, path := range []string{"dirmap/ffs", "dirmap/other"} {
		t.Run(path, func(t *testing.T) { runFixture(t, a, path) })
	}
}

func TestNopanicFixtures(t *testing.T) {
	a := Nopanic(NopanicConfig{AllowFiles: []string{"nopanic/a/corrupt.go"}})
	for _, path := range []string{"nopanic/a", "nopanic/mainpkg"} {
		t.Run(path, func(t *testing.T) { runFixture(t, a, path) })
	}
}

func TestFsyncackFixtures(t *testing.T) {
	// fsyncack/queue mirrors an ack-bearing package; fsyncack/other
	// holds the same unsynced shapes outside the config and must stay
	// silent.
	a := Fsyncack(FsyncackConfig{Packages: []string{"fsyncack/queue"}})
	for _, path := range []string{"fsyncack/queue", "fsyncack/other"} {
		t.Run(path, func(t *testing.T) { runFixture(t, a, path) })
	}
}

func TestAtomicwriteFixtures(t *testing.T) {
	a := Atomicwrite(AtomicwriteConfig{Packages: []string{"atomicwrite/state"}})
	runFixture(t, a, "atomicwrite/state")
}

func TestSnapshotpureFixtures(t *testing.T) {
	a := Snapshotpure(SnapshotpureConfig{
		Roots: []string{"snapshotpure/snap.WriteSnapshot", "snapshotpure/snap.ReadSnapshot"},
		Sinks: []string{"(*snapshotpure/snap.pool).Stats", "snapshotpure/snap.Ops"},
	})
	runFixture(t, a, "snapshotpure/snap")
}

func TestCtxloopFixtures(t *testing.T) {
	a := Ctxloop(CtxloopConfig{Packages: []string{"ctxloop/loop"}})
	runFixture(t, a, "ctxloop/loop")
}

func TestPkgPathOf(t *testing.T) {
	cases := map[string]string{
		"ffsage/internal/ffs":                                 "ffsage/internal/ffs",
		"ffsage/internal/ffs [ffsage/internal/ffs.test]":      "ffsage/internal/ffs",
		"ffsage/internal/ffs_test [ffsage/internal/ffs.test]": "ffsage/internal/ffs",
		"ffsage_test": "ffsage",
	}
	for in, want := range cases {
		if got := PkgPathOf(in); got != want {
			t.Errorf("PkgPathOf(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRepoIsClean runs the default suite over the whole module's
// non-test sources, pinning the acceptance criterion — ffsvet passes
// clean on its own tree — into the ordinary test tier. (The vettool
// path in CI additionally covers test files.)
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list -export over the whole module")
	}
	pkgs, err := LoadPatterns("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	// One Program spanning every package: the authoritative run, where
	// the whole-program analyzers see cross-package reachability (the
	// vettool path degrades to per-unit partial programs).
	for _, d := range RunProgram(NewProgram(pkgs), DefaultSuite()) {
		t.Errorf("%s", d)
	}
}
