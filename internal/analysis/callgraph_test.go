package analysis

import (
	"strings"
	"testing"
)

// edgeTo reports whether the node keyed from has any edge to the node
// keyed to.
func edgeTo(g *CallGraph, from, to string) bool {
	n := g.Nodes[from]
	if n == nil {
		return false
	}
	for _, e := range n.Edges {
		if e.Callee == to {
			return true
		}
	}
	return false
}

// TestCallGraphEdges pins the three edge kinds on the snapshotpure
// fixture: static calls, interface-dispatch union, and bound
// function-value expansion.
func TestCallGraphEdges(t *testing.T) {
	l := newFixtureLoader(t)
	pkg, err := l.load("snapshotpure/snap")
	if err != nil {
		t.Fatal(err)
	}
	g := NewProgram([]*Package{pkg}).Graph

	// Static: root → helper → helper → stdlib leaf.
	for _, e := range [][2]string{
		{"snapshotpure/snap.WriteSnapshot", "snapshotpure/snap.encodeHeader"},
		{"snapshotpure/snap.encodeHeader", "snapshotpure/snap.stamp"},
		{"snapshotpure/snap.stamp", "time.Now"},
	} {
		if !edgeTo(g, e[0], e[1]) {
			t.Errorf("missing static edge %s → %s", e[0], e[1])
		}
	}
	if n := g.Nodes["time.Now"]; n == nil || n.HasBody {
		t.Errorf("time.Now should be a body-less leaf, got %+v", n)
	}

	// Interface dispatch: calling encoder.Encode unions in the concrete
	// randEncoder.Encode.
	if !edgeTo(g, "snapshotpure/snap.WriteSnapshot", "(snapshotpure/snap.randEncoder).Encode") {
		t.Error("interface call enc.Encode did not expand to (randEncoder).Encode")
	}

	// Function value: mentioning nowMillis binds it, and calling the
	// value links to it.
	if !edgeTo(g, "snapshotpure/snap.WriteSnapshot", "snapshotpure/snap.nowMillis") {
		t.Error("function-value call did not link WriteSnapshot → nowMillis")
	}
}

// TestReachesWitnessPath pins the rendered witness chain used in
// diagnostics.
func TestReachesWitnessPath(t *testing.T) {
	l := newFixtureLoader(t)
	pkg, err := l.load("snapshotpure/snap")
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram([]*Package{pkg})
	path, ok := prog.Reaches("snapshotpure/snap.encodeHeader", func(n *Node) bool {
		return n.Key == "time.Now"
	})
	if !ok {
		t.Fatal("encodeHeader should reach time.Now")
	}
	if got, want := path.String(), "snap.encodeHeader → snap.stamp → time.Now"; got != want {
		t.Errorf("witness path = %q, want %q", got, want)
	}
	if _, ok := prog.Reaches("snapshotpure/snap.encodeBody", func(n *Node) bool {
		return n.Key == "time.Now"
	}); ok {
		t.Error("encodeBody must not reach time.Now")
	}
}

// TestPollsCtxMarking pins the context-polling detection on the ctxloop
// fixture.
func TestPollsCtxMarking(t *testing.T) {
	l := newFixtureLoader(t)
	pkg, err := l.load("ctxloop/loop")
	if err != nil {
		t.Fatal(err)
	}
	g := NewProgram([]*Package{pkg}).Graph
	for key, want := range map[string]bool{
		"ctxloop/loop.step":              true,
		"(*ctxloop/loop.ctxWorker).Step": true,
		"ctxloop/loop.work":              false,
		"ctxloop/loop.helperNoPoll":      false,
	} {
		n := g.Nodes[key]
		if n == nil {
			t.Errorf("missing node %s", key)
			continue
		}
		if n.PollsCtx != want {
			t.Errorf("%s PollsCtx = %v, want %v", key, n.PollsCtx, want)
		}
	}
}

// TestReachesOrOpaque pins the partial-program semantics: a call into
// an opaque function of the same module answers true only when the
// program is marked Partial.
func TestReachesOrOpaque(t *testing.T) {
	g := &CallGraph{Nodes: map[string]*Node{}}
	a := g.node("mod/pkg.A")
	a.Pkg = "mod/pkg"
	a.HasBody = true
	a.Edges = append(a.Edges,
		Edge{Callee: "mod/other.Helper"}, // same module, unseen body: opaque
		Edge{Callee: "os.Getenv"},        // other module: stays a plain leaf
	)
	g.node("mod/other.Helper")
	g.node("os.Getenv")
	never := func(*Node) bool { return false }

	full := &Program{Graph: g}
	if full.ReachesOrOpaque("mod/pkg.A", never) {
		t.Error("full program: opaque optimism must not apply")
	}
	partial := &Program{Graph: g, Partial: true}
	if !partial.ReachesOrOpaque("mod/pkg.A", never) {
		t.Error("partial program: unseen same-module callee must answer true")
	}

	// A node whose only unseen callees are other-module leaves gets no
	// optimism even in partial mode.
	b := g.node("mod/pkg.B")
	b.Pkg = "mod/pkg"
	b.HasBody = true
	b.Edges = append(b.Edges, Edge{Callee: "os.Getenv"})
	if partial.ReachesOrOpaque("mod/pkg.B", never) {
		t.Error("stdlib leaves must not count as opaque module-internal code")
	}
}

// TestFuncKeyNormalization pins test-variant stripping.
func TestFuncKeyNormalization(t *testing.T) {
	cases := map[string]string{
		"ffsage/internal/ffs.New": "ffsage/internal/ffs.New",
		"(*ffsage/internal/ffs.FileSystem [ffsage/internal/ffs.test]).PoolStats": "(*ffsage/internal/ffs.FileSystem).PoolStats",
	}
	for in, want := range cases {
		if got := normalizeKey(in); got != want {
			t.Errorf("normalizeKey(%q) = %q, want %q", in, got, want)
		}
	}
	if got, want := keyPkgPath("(*ffsage/internal/queue.WAL).append"), "ffsage/internal/queue"; got != want {
		t.Errorf("keyPkgPath = %q, want %q", got, want)
	}
	if got, want := keyPkgPath("os.WriteFile"), "os"; got != want {
		t.Errorf("keyPkgPath = %q, want %q", got, want)
	}
}

// TestSuppressMalformedStillReported guards the suppression contract on
// the whole-program path: an ignore without a reason is a finding, not
// a silencer. (The per-package path is covered by the nopanic fixture.)
func TestSuppressMalformedStillReported(t *testing.T) {
	l := newFixtureLoader(t)
	pkg, err := l.load("ctxloop/loop")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunProgram(NewProgram([]*Package{pkg}),
		[]*Analyzer{Ctxloop(CtxloopConfig{Packages: []string{"ctxloop/loop"}})})
	for _, d := range diags {
		if !strings.Contains(d.Message, "neither polls") && d.Analyzer != "suppress" {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}
