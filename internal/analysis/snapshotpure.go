package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// SnapshotpureConfig declares the roots and extra sinks of the
// snapshot-purity check. Roots are call-graph node keys — package-level
// functions as "pkg/path.Func", methods as "(*pkg/path.T).Method" — of
// the checkpoint/snapshot/resume encode paths. Sinks beyond the
// built-in wall-clock and global-rand sets (process-local state that
// must not leak into resume-deterministic output) are added the same
// way.
type SnapshotpureConfig struct {
	Roots []string
	Sinks []string
}

// DefaultSnapshotpureConfig roots the check at every function whose
// output must be byte-identical between an uninterrupted run and a
// crash+resume: the checkpoint codec, the aged-image codec, the
// resume-safe metrics/events publisher, and the job manager's
// checkpoint and artifact writers. (*FileSystem).PoolStats joins the
// sink set because arena counters describe this process's execution —
// a resumed run starts with an empty pool — which is exactly the kind
// of state the contract excludes; PublishArenaStats stays a sanctioned
// opt-in because it is not reachable from any root. obs.Ops is a sink
// for the same reason: it hands out the process-wide wall-clock
// operational registry (request latencies, queue gauges), which must
// stay reachable only from serving paths, never from anything that
// encodes resume-deterministic output.
func DefaultSnapshotpureConfig() SnapshotpureConfig {
	return SnapshotpureConfig{
		Roots: []string{
			"ffsage/internal/trace.WriteCheckpoint",
			"ffsage/internal/trace.ReadCheckpoint",
			"ffsage/internal/aging.PublishResult",
			"(*ffsage/internal/jobs.Manager).saveCheckpoint",
			"(*ffsage/internal/jobs.Manager).loadCheckpoint",
			"(*ffsage/internal/jobs.Manager).writeArtifacts",
			"(*ffsage/internal/ffs.FileSystem).SaveImage",
			"ffsage/internal/ffs.LoadImage",
		},
		Sinks: []string{
			"(*ffsage/internal/ffs.FileSystem).PoolStats",
			"ffsage/internal/obs.Ops",
		},
	}
}

// snapshotSinkClass classifies a call-graph key as a determinism sink,
// returning a short phrase for the diagnostic, or "" when clean.
func snapshotSinkClass(key string, extra map[string]bool) string {
	if extra[key] {
		return "process-local state that differs under resume"
	}
	if name, ok := strings.CutPrefix(key, "time."); ok && timeForbidden[name] {
		return "the wall clock"
	}
	for _, prefix := range []string{"math/rand.", "math/rand/v2."} {
		if name, ok := strings.CutPrefix(key, prefix); ok && !randConstructors[name] && !strings.Contains(name, ".") {
			return "the process-global random generator"
		}
	}
	return ""
}

// Snapshotpure builds the snapshot-purity analyzer: no function
// reachable from a configured root may call a wall-clock or global-rand
// function, or a configured process-local sink. This is detrand
// generalized from syntactic to semantic — the root's package may
// legitimately use time (internal/jobs schedules retries with it), but
// its snapshot paths may not, however many calls deep, through however
// many interfaces or stored callbacks the reach goes. Each finding is
// reported at the offending call with one witness path from a root.
func Snapshotpure(cfg SnapshotpureConfig) *Analyzer {
	roots := map[string]bool{}
	for _, r := range cfg.Roots {
		roots[r] = true
	}
	extraSinks := map[string]bool{}
	for _, s := range cfg.Sinks {
		extraSinks[s] = true
	}
	return &Analyzer{
		Name: "snapshotpure",
		Doc:  "checkpoint/snapshot/resume paths must not reach wall-clock, global rand, or process-local state",
		RunProgram: func(pass *ProgramPass) {
			g := pass.Prog.Graph
			var rootKeys []string
			for key := range g.Nodes {
				if roots[key] {
					rootKeys = append(rootKeys, key)
				}
			}
			sort.Strings(rootKeys)
			type finding struct {
				pos   token.Position
				sink  string
				class string
				path  Path
			}
			reported := map[string]*finding{} // keyed by position+sink; first (sorted) root wins
			var order []string
			for _, root := range rootKeys {
				parent := map[string]string{root: ""}
				queue := []string{root}
				for len(queue) > 0 {
					key := queue[0]
					queue = queue[1:]
					n := g.Nodes[key]
					if n == nil || !n.HasBody {
						continue
					}
					for _, e := range sortedEdges(n) {
						if class := snapshotSinkClass(e.Callee, extraSinks); class != "" {
							id := e.Pos.String() + "|" + e.Callee
							if reported[id] == nil {
								var path Path
								for k := key; k != ""; k = parent[k] {
									path = append(Path{g.Nodes[k]}, path...)
								}
								reported[id] = &finding{pos: e.Pos, sink: e.Callee, class: class, path: path}
								order = append(order, id)
							}
							continue
						}
						if _, seen := parent[e.Callee]; !seen {
							parent[e.Callee] = key
							queue = append(queue, e.Callee)
						}
					}
				}
			}
			for _, id := range order {
				f := reported[id]
				pass.ReportAt(f.pos, "%s reads %s inside a snapshot path (%s); checkpoint, image, and resume-safe metrics output must be byte-identical between a fresh run and a crash+resume — derive the value from simulated/persisted state, or move the call out of the encode path", f.sink, f.class, f.path)
			}
		},
	}
}
