package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Maporder flags `range` over a map whose loop body makes iteration
// order observable: writing to an io.Writer or fmt printer, calling an
// emit/report-style function, or appending to a slice that outlives the
// loop. Go randomizes map iteration order per run, so any of these
// silently breaks the byte-identical-report guarantee. The sanctioned
// idiom — collect keys, sort, range the sorted slice — is recognized:
// an append whose slice is later passed to sort.*/slices.Sort* is not
// flagged.
func Maporder() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "flag map iterations whose order leaks into output or accumulated slices",
		Run:  runMaporder,
	}
}

func runMaporder(pass *Pass) {
	for _, f := range pass.Files {
		// The node stack gives each range statement its enclosing
		// function body, where the collect-then-sort idiom is sought.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if rs, ok := n.(*ast.RangeStmt); ok {
				checkMapRange(pass, rs, enclosingBody(stack))
			}
			stack = append(stack, n)
			return true
		})
	}
}

// enclosingBody returns the body of the innermost function on the
// traversal stack.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// checkMapRange reports order-sensitive effects inside rs when rs
// ranges over a map.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := pass.Callee(n); fn != nil && emitsOutput(fn) {
				pass.Reportf(n.Pos(), "%s inside range over a map makes iteration order observable; iterate deterministically: range over slices.Sorted(maps.Keys(m)) instead of the map", fn.FullName())
			}
		case *ast.AssignStmt:
			checkOrderedAppend(pass, rs, n, enclosing)
		}
		return true
	})
}

// emitsOutput reports whether fn writes somewhere a reader can see
// ordering: fmt printers, io.Writer-shaped methods, or emit/report
// helpers by name.
func emitsOutput(fn *types.Func) bool {
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "WriteTo",
			"Print", "Printf", "Println", "Encode":
			return true
		}
	}
	lower := strings.ToLower(name)
	return strings.Contains(lower, "emit") || strings.Contains(lower, "report")
}

// checkOrderedAppend flags `dst = append(dst, ...)` inside a map range
// when dst is declared outside the loop and is not sorted afterwards in
// the same function.
func checkOrderedAppend(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt, enclosing *ast.BlockStmt) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
			continue
		}
		dst := as.Lhs[i]
		if declaredWithin(pass, dst, rs) {
			continue
		}
		if enclosing != nil && sortedAfter(pass, dst, rs, enclosing) {
			continue
		}
		name := types.ExprString(dst)
		pass.Reportf(as.Pos(), "%s accumulates elements in map-iteration order; sort %s after the loop, or range over slices.Sorted(maps.Keys(m)) instead of the map", name, name)
	}
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredWithin reports whether expr is (or is rooted at) a variable
// declared inside the range statement, in which case the accumulated
// order cannot escape the loop through it.
func declaredWithin(pass *Pass, expr ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false // selector/index targets necessarily outlive the loop
	}
	obj := pass.TypesInfo.ObjectOf(id)
	return obj != nil && rs.Pos() <= obj.Pos() && obj.Pos() < rs.End()
}

// sortFuncs are the std sorters that make a collected key slice safe.
var sortFuncs = map[string]map[string]bool{
	"sort":   {"Strings": true, "Ints": true, "Float64s": true, "Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedAfter reports whether dst is passed to a sorting function after
// the range statement, anywhere later in the enclosing function body —
// the collect-then-sort idiom.
func sortedAfter(pass *Pass, dst ast.Expr, rs *ast.RangeStmt, enclosing *ast.BlockStmt) bool {
	want := types.ExprString(dst)
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rs.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := pass.Callee(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if names := sortFuncs[fn.Pkg().Path()]; names != nil && names[fn.Name()] {
			if types.ExprString(call.Args[0]) == want {
				found = true
			}
		}
		return !found
	})
	return found
}
