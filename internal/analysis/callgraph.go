package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// This file is the whole-program half of ffsvet: a conservative,
// types-resolved call graph built once per Program, which the
// reachability analyzers (fsyncack, atomicwrite, snapshotpure, ctxloop)
// query. The graph is deliberately simple — it must stay auditable —
// and errs in the conservative direction for each client:
//
//   - Static calls resolve to their *types.Func and are linked by a
//     stable textual key (package path + qualified name), so a call
//     into a sibling package links to that package's own definition
//     even though the two type-checks used distinct object identities.
//   - Interface dispatch is expanded by implementing-type union: a call
//     to an interface method adds edges to every concrete method in
//     the program with the same name and signature. Matching by
//     name+signature over-approximates the true implements relation,
//     which is the safe direction for taint ("may reach").
//   - Function values are tracked flow-insensitively: every function
//     or method whose value is mentioned outside call position — and
//     every func literal not immediately invoked — joins a global
//     bound set, and a call through a function-typed value adds edges
//     to every bound function with an identical signature.
//   - Func literals are synthetic nodes (keyed by position); literals
//     invoked at their definition site (including `go` and `defer`)
//     get a direct edge from the enclosing function.
//
// Functions outside the analyzed packages (standard library, packages
// loaded only as export data) appear as body-less leaf nodes, which is
// exactly what sink matching needs: `time.Now` is identified by key,
// not by AST.

// A Node is one function in the call graph.
type Node struct {
	Key     string         // stable identity, e.g. "os.WriteFile" or "(*ffsage/internal/queue.WAL).append"
	Pkg     string         // normalized import path of the defining package ("" for leaves outside the program)
	Display string         // short human form for witness paths, e.g. "(*WAL).append"
	Pos     token.Position // declaration site (zero for leaves)
	InTest  bool           // declared in a _test.go file
	HasBody bool           // body analyzed (false for leaves)
	Edges   []Edge

	// PollsCtx records that the body itself consults a
	// context.Context (ctx.Err() or ctx.Done()); see ctxloop.
	PollsCtx bool

	ifaceCalls []siteSig // interface-method calls awaiting union expansion
	dynCalls   []siteSig // function-value calls awaiting bound-set expansion
}

// An Edge is one call site: who is (or may be) called, from where.
type Edge struct {
	Callee string
	Pos    token.Position
	// Dyn marks edges added by interface or function-value expansion;
	// a !Dyn edge is a statically resolved direct call.
	Dyn bool
}

type siteSig struct {
	name string // method name ("" for function-value calls)
	sig  string // normalized signature string
	pos  token.Position
}

// A CallGraph holds every node of one Program, keyed by Node.Key.
type CallGraph struct {
	Nodes map[string]*Node

	methodIndex map[string][]string // name+"|"+sig -> concrete method keys
	boundBySig  map[string][]string // sig -> bound function keys
}

// A Program is the unit the whole-program analyzers run over: one or
// more type-checked packages and the call graph spanning them.
type Program struct {
	Pkgs  []*Package
	Graph *CallGraph

	// Partial marks a Program that covers less than the full module —
	// the `go vet -vettool` protocol hands over one compilation unit at
	// a time. Reachability queries that would *suppress* a finding
	// treat calls into unseen module-internal code optimistically, so
	// partial runs under-report rather than over-report; the standalone
	// driver and TestRepoIsClean run the authoritative full program.
	Partial bool
}

// NewProgram builds the call graph over pkgs.
func NewProgram(pkgs []*Package) *Program {
	g := &CallGraph{
		Nodes:       map[string]*Node{},
		methodIndex: map[string][]string{},
		boundBySig:  map[string][]string{},
	}
	p := &Program{Pkgs: pkgs, Graph: g}
	for _, pkg := range pkgs {
		g.addPackage(pkg)
	}
	g.expand()
	return p
}

var testVariantRE = regexp.MustCompile(` \[[^\]]*\]`)

// normalizeKey strips test-variant qualifiers (`pkg [pkg.test]`) so a
// package and its internal test build share one node per function.
func normalizeKey(s string) string {
	if strings.Contains(s, " [") {
		s = testVariantRE.ReplaceAllString(s, "")
	}
	return s
}

// qualifier renders package paths in full, normalized form inside
// signature strings, so signatures compare equal across packages that
// type-checked the same named types under different object identities.
func qualifier(p *types.Package) string {
	return PkgPathOf(p.Path())
}

// sigString normalizes a signature for matching. The receiver is not
// part of a Go signature string, so method values and plain functions
// with the same parameter/result shape compare equal — which is what
// bound-method tracking needs.
func sigString(sig *types.Signature) string {
	return types.TypeString(sig, qualifier)
}

// FuncKey returns the stable graph key for fn.
func FuncKey(fn *types.Func) string {
	if orig := fn.Origin(); orig != nil {
		fn = orig
	}
	return normalizeKey(fn.FullName())
}

func displayName(fn *types.Func) string {
	full := FuncKey(fn)
	// Trim the package path down to its last element for readability:
	// "(*ffsage/internal/queue.WAL).append" -> "(*queue.WAL).append".
	if fn.Pkg() != nil {
		path := PkgPathOf(fn.Pkg().Path())
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return strings.ReplaceAll(full, path+".", path[i+1:]+".")
		}
	}
	return full
}

// node returns (creating if needed) the graph node for key.
func (g *CallGraph) node(key string) *Node {
	n := g.Nodes[key]
	if n == nil {
		n = &Node{Key: key, Display: key}
		g.Nodes[key] = n
	}
	return n
}

// addPackage walks every function body in pkg into the graph.
func (g *CallGraph) addPackage(pkg *Package) {
	pkgPath := PkgPathOf(pkg.Types.Path())
	for _, f := range pkg.Files {
		inTest := strings.HasSuffix(pkg.Fset.Position(f.Package).Filename, "_test.go")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			n := g.node(FuncKey(fn))
			n.Pkg = pkgPath
			n.Display = displayName(fn)
			n.Pos = pkg.Fset.Position(fd.Pos())
			n.InTest = inTest
			n.HasBody = true
			b := &bodyWalker{g: g, pkg: pkg, pkgPath: pkgPath, inTest: inTest, node: n}
			b.walk(fd.Body)
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if !types.IsInterface(sig.Recv().Type()) {
					mk := fn.Name() + "|" + sigString(sig)
					g.methodIndex[mk] = append(g.methodIndex[mk], n.Key)
				}
			}
		}
	}
}

// bodyWalker builds one function node's edges, spawning synthetic
// nodes for the func literals it encounters.
type bodyWalker struct {
	g       *CallGraph
	pkg     *Package
	pkgPath string
	inTest  bool
	node    *Node

	// invoked marks func literals that are the Fun of a call (their
	// edge is direct, so they are not bound values); calledIdents marks
	// identifiers in call position (a call is not a value mention).
	invoked      map[*ast.FuncLit]bool
	calledIdents map[*ast.Ident]bool
}

func (b *bodyWalker) pos(p token.Pos) token.Position { return b.pkg.Fset.Position(p) }

// litNode creates the synthetic node for a func literal.
func (b *bodyWalker) litNode(lit *ast.FuncLit) *Node {
	pos := b.pos(lit.Pos())
	key := fmt.Sprintf("%s.func@%s:%d:%d", b.pkgPath, pos.Filename, pos.Line, pos.Column)
	n := b.g.node(key)
	n.Pkg = b.pkgPath
	n.Display = fmt.Sprintf("func literal at %s:%d (in %s)", shortFile(pos.Filename), pos.Line, b.node.Display)
	n.Pos = pos
	n.InTest = b.inTest
	n.HasBody = true
	return n
}

func shortFile(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// walk visits one function body attributed to b.node. A node's
// children are visited in syntax order, so a CallExpr is seen before
// the identifier in its function position — call() marks that
// identifier, and the Ident case then knows it was a call, not a value
// mention. Nested func literals recurse with a fresh walker bound to
// their synthetic node.
func (b *bodyWalker) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ln := b.litNode(n)
			nb := &bodyWalker{g: b.g, pkg: b.pkg, pkgPath: b.pkgPath, inTest: b.inTest, node: ln}
			nb.walk(n.Body)
			// A literal that is not immediately invoked is a bound
			// function value; call() handles the direct-invocation case.
			if !b.invoked[n] {
				if tv, ok := b.pkg.Info.Types[n]; ok {
					if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
						s := sigString(sig)
						b.g.boundBySig[s] = append(b.g.boundBySig[s], ln.Key)
					}
				}
			}
			return false // literal body handled by nb
		case *ast.CallExpr:
			b.call(n)
			// Arguments and the Fun sub-expression are still visited,
			// for bound values and nested calls.
			return true
		case *ast.SelectorExpr:
			b.pollCheck(n)
		case *ast.Ident:
			b.maybeBind(n)
		}
		return true
	})
}

// pollCheck marks the node as context-polling when it selects Done or
// Err on a context.Context value.
func (b *bodyWalker) pollCheck(sel *ast.SelectorExpr) {
	if sel.Sel.Name != "Done" && sel.Sel.Name != "Err" {
		return
	}
	tv, ok := b.pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return
	}
	if types.TypeString(tv.Type, qualifier) == "context.Context" {
		b.node.PollsCtx = true
	}
}

// call records the edges for one call expression.
func (b *bodyWalker) call(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	pos := b.pos(call.Pos())

	if lit, ok := fun.(*ast.FuncLit); ok {
		// Immediately-invoked literal: direct edge; mark it so the
		// FuncLit case skips binding it.
		if b.invoked == nil {
			b.invoked = map[*ast.FuncLit]bool{}
		}
		b.invoked[lit] = true
		ln := b.litNode(lit)
		b.node.Edges = append(b.node.Edges, Edge{Callee: ln.Key, Pos: pos})
		return
	}

	// Conversions and builtins are not calls for graph purposes.
	if tv, ok := b.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}

	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	}
	if id != nil {
		if b.calledIdents == nil {
			b.calledIdents = map[*ast.Ident]bool{}
		}
		b.calledIdents[id] = true
		switch obj := b.pkg.Info.Uses[id].(type) {
		case *types.Builtin:
			return
		case *types.Func:
			edge := Edge{Callee: FuncKey(obj), Pos: pos}
			b.node.Edges = append(b.node.Edges, edge)
			leaf := b.g.node(edge.Callee)
			if leaf.Display == leaf.Key && obj.Pkg() != nil {
				leaf.Display = displayName(obj)
			}
			// A call through an interface also fans out to every
			// concrete method of the same name and signature.
			if b.isInterfaceCall(fun, obj) {
				if sig, ok := obj.Type().(*types.Signature); ok {
					b.node.ifaceCalls = append(b.node.ifaceCalls,
						siteSig{name: obj.Name(), sig: sigString(sig), pos: pos})
				}
			}
			return
		}
	}

	// A call of a function-typed value (variable, field, parameter,
	// result of another call): resolved against the bound set.
	if tv, ok := b.pkg.Info.Types[call.Fun]; ok && tv.Type != nil {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			b.node.dynCalls = append(b.node.dynCalls,
				siteSig{sig: sigString(sig), pos: pos})
		}
	}
}

// isInterfaceCall reports whether the (method) call dispatches through
// an interface value.
func (b *bodyWalker) isInterfaceCall(fun ast.Expr, fn *types.Func) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := b.pkg.Info.Selections[sel]
	if !ok {
		// Package-qualified call (os.WriteFile): not dispatch.
		return false
	}
	if s.Kind() != types.MethodVal {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type())
}

// maybeBind adds the named function to the bound set when id mentions
// it as a value rather than calling it (passed as a callback, stored in
// a struct field, assigned to a variable).
func (b *bodyWalker) maybeBind(id *ast.Ident) {
	if b.calledIdents[id] {
		return
	}
	fn, ok := b.pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	key := FuncKey(fn)
	b.g.boundBySig[sigString(sig)] = append(b.g.boundBySig[sigString(sig)], key)
	leaf := b.g.node(key)
	if leaf.Display == leaf.Key && fn.Pkg() != nil {
		leaf.Display = displayName(fn)
	}
	// Mentioning a function's value also means the mentioner may call
	// it; a direct edge here keeps value-then-call within one function
	// from needing dataflow. Conservative: taint may over-approximate.
	b.node.Edges = append(b.node.Edges, Edge{Callee: key, Pos: b.pos(id.Pos()), Dyn: true})
}

// expand resolves the deferred interface and function-value calls now
// that every package has contributed its methods and bound functions.
func (g *CallGraph) expand() {
	for s := range g.boundBySig {
		g.boundBySig[s] = dedupe(g.boundBySig[s])
	}
	for s := range g.methodIndex {
		g.methodIndex[s] = dedupe(g.methodIndex[s])
	}
	for _, n := range g.SortedNodes() {
		for _, ic := range n.ifaceCalls {
			for _, key := range g.methodIndex[ic.name+"|"+ic.sig] {
				n.Edges = append(n.Edges, Edge{Callee: key, Pos: ic.pos, Dyn: true})
			}
		}
		for _, dc := range n.dynCalls {
			for _, key := range g.boundBySig[dc.sig] {
				n.Edges = append(n.Edges, Edge{Callee: key, Pos: dc.pos, Dyn: true})
			}
		}
		n.ifaceCalls, n.dynCalls = nil, nil
	}
}

func dedupe(keys []string) []string {
	sort.Strings(keys)
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || keys[i-1] != k {
			out = append(out, k)
		}
	}
	return out
}

// SortedNodes returns the graph's nodes ordered by key, for
// deterministic iteration (diagnostics are position-sorted afterwards,
// but witness paths must not depend on map order either).
func (g *CallGraph) SortedNodes() []*Node {
	keys := make([]string, 0, len(g.Nodes))
	for k := range g.Nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	nodes := make([]*Node, len(keys))
	for i, k := range keys {
		nodes[i] = g.Nodes[k]
	}
	return nodes
}

// sortedEdges returns n's edges ordered by callee key then position,
// deduplicated, for deterministic traversal.
func sortedEdges(n *Node) []Edge {
	edges := append([]Edge(nil), n.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Callee != edges[j].Callee {
			return edges[i].Callee < edges[j].Callee
		}
		return posLess(edges[i].Pos, edges[j].Pos)
	})
	out := edges[:0]
	for i, e := range edges {
		if i == 0 || edges[i-1].Callee != e.Callee {
			out = append(out, e)
		}
	}
	return out
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// A Path is a witness call chain, rendered for diagnostics.
type Path []*Node

// String renders "a → b → c" using display names.
func (p Path) String() string {
	parts := make([]string, len(p))
	for i, n := range p {
		parts[i] = n.Display
	}
	return strings.Join(parts, " → ")
}

// Reaches reports whether pred holds for any node reachable from the
// node keyed start (inclusive), returning a shortest witness path.
func (p *Program) Reaches(start string, pred func(*Node) bool) (Path, bool) {
	g := p.Graph
	root := g.Nodes[start]
	if root == nil {
		return nil, false
	}
	parent := map[string]string{start: ""}
	queue := []string{start}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		n := g.Nodes[key]
		if n == nil {
			continue
		}
		if pred(n) {
			var path Path
			for k := key; k != ""; k = parent[k] {
				path = append(Path{g.Nodes[k]}, path...)
			}
			return path, true
		}
		for _, e := range sortedEdges(n) {
			if _, seen := parent[e.Callee]; !seen {
				parent[e.Callee] = key
				queue = append(queue, e.Callee)
			}
		}
	}
	return nil, false
}

// ReachesOrOpaque is Reaches with partial-program optimism: in a
// Partial program a traversal that runs into module-internal code whose
// body is not part of this compilation unit answers true, so that
// single-package (vettool) runs never report a finding the full program
// would not. moduleOf(start) defines "module-internal" as sharing the
// first import-path element with the start node's package.
func (p *Program) ReachesOrOpaque(start string, pred func(*Node) bool) bool {
	if _, ok := p.Reaches(start, pred); ok {
		return true
	}
	if !p.Partial {
		return false
	}
	root := p.Graph.Nodes[start]
	if root == nil {
		return false
	}
	module := firstPathElem(root.Pkg)
	if module == "" {
		return false
	}
	opaque := func(n *Node) bool {
		return !n.HasBody && firstPathElem(keyPkgPath(n.Key)) == module
	}
	_, ok := p.Reaches(start, opaque)
	return ok
}

func firstPathElem(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// keyPkgPath extracts the package path from a node key:
// "(*pkg/path.T).M" -> "pkg/path", "pkg/path.F" -> "pkg/path".
func keyPkgPath(key string) string {
	key = strings.TrimPrefix(key, "(*")
	key = strings.TrimPrefix(key, "(")
	if i := strings.LastIndexByte(key, ')'); i >= 0 {
		key = key[:i]
	}
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		return key[:i]
	}
	return ""
}
