// Package a is a checkedcorruption fixture: errors returned by the
// guarded ffs API must be handled, not dropped.
package a

import "checkedcorruption/ffs"

func drops(fs *ffs.FileSystem, f *ffs.File) {
	fs.Delete(f) // want `error result of \(\*checkedcorruption/ffs\.FileSystem\)\.Delete discarded; handle it — a dropped \*ffs\.CorruptionError leaves the image silently corrupt \(detect with errors\.As, mend with Repair\)`
}

func dropsPackageFunc() {
	ffs.Load("image.img") // want `error result of checkedcorruption/ffs\.Load discarded`
}

func blanks(fs *ffs.FileSystem) *ffs.File {
	f, _ := fs.CreateFile("x") // want `error result of \(\*checkedcorruption/ffs\.FileSystem\)\.CreateFile assigned to _; handle it`
	return f
}

func deferred(fs *ffs.FileSystem, f *ffs.File) {
	defer fs.Delete(f) // want `error result of \(\*checkedcorruption/ffs\.FileSystem\)\.Delete discarded by defer`
}

func concurrent(fs *ffs.FileSystem, f *ffs.File) {
	go fs.Delete(f) // want `error result of \(\*checkedcorruption/ffs\.FileSystem\)\.Delete discarded by go statement`
}

// handled is the sanctioned pattern.
func handled(fs *ffs.FileSystem, f *ffs.File) error {
	if err := fs.Delete(f); err != nil {
		return err
	}
	return nil
}

// errorless results may be discarded freely.
func scores(fs *ffs.FileSystem) {
	fs.Score()
}

func suppressed(fs *ffs.FileSystem, f *ffs.File) {
	//lint:ignore ffsvet/checkedcorruption best-effort cleanup on an image being discarded
	fs.Delete(f)
}
