package a

import "checkedcorruption/ffs"

// Test files are exempt: helpers assert through testing.T, and a
// dropped error here cannot corrupt a replayed image.
func discardInTest(fs *ffs.FileSystem, f *ffs.File) {
	fs.Delete(f)
}
