// Package ffs is the stand-in for the guarded mutating API in the
// checkedcorruption fixtures.
package ffs

type FileSystem struct{}

type File struct{}

func (fs *FileSystem) Delete(f *File) error { return nil }

func (fs *FileSystem) CreateFile(name string) (*File, error) { return nil, nil }

func (fs *FileSystem) Score() float64 { return 0 }

func Load(path string) (*FileSystem, error) { return nil, nil }
