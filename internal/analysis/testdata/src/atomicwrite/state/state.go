// Package state is the atomicwrite fixture: a guarded package whose
// files must be replaced via tmp+rename, never created or truncated at
// their final path.
package state

import "os"

// saveInPlace is the basic violation: a crash mid-WriteFile leaves a
// torn file where the previous state used to be.
func saveInPlace(path string, p []byte) error {
	return os.WriteFile(path, p, 0o644) // want `os\.WriteFile in state\.saveInPlace writes a state file in place`
}

// createInPlace covers the os.Create primitive, which truncates the
// target on open.
func createInPlace(path string) error {
	f, err := os.Create(path) // want `os\.Create in state\.createInPlace writes a state file in place`
	if err != nil {
		return err
	}
	return f.Close()
}

// saveAtomic is the sanctioned idiom: the in-place primitives hit a
// temp path only, and the rename in the same closure marks this
// function as a helper.
func saveAtomic(path string, p []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, p, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// commit delegates the rename one static edge away.
func commit(tmp, path string) error { return os.Rename(tmp, path) }

// saveViaHelper writes in place by primitive but reaches os.Rename
// through commit: helper-shaped, not flagged.
func saveViaHelper(path string, p []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, p, 0o644); err != nil {
		return err
	}
	return commit(tmp, path)
}

// committer is the interface-dispatch case: the concrete implementation
// renames, so the write is committed even though no os.Rename is
// textually visible from the caller.
type committer interface {
	Commit(tmp, path string) error
}

type renameCommitter struct{}

func (renameCommitter) Commit(tmp, path string) error { return os.Rename(tmp, path) }

func saveViaInterface(c committer, path string, p []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, p, 0o644); err != nil {
		return err
	}
	return c.Commit(tmp, path)
}

// saveSuppressed documents the escape hatch for genuinely disposable
// files.
func saveSuppressed(path string, p []byte) error {
	//lint:ignore ffsvet/atomicwrite scratch report regenerated on every run; a torn copy costs nothing
	return os.WriteFile(path, p, 0o644)
}
