// Package obs is a maporder fixture mirroring ffsage/internal/obs's
// snapshot writer: a metrics registry holds its instruments in maps,
// and a snapshot must not leak map-iteration order to its writer. The
// sanctioned shape is collect-sort-range.
package obs

import (
	"fmt"
	"io"
	"sort"
)

type registry struct {
	counters map[string]int64
}

// writeNaive streams while ranging the map — flagged.
func (r *registry) writeNaive(w io.Writer) {
	for name, v := range r.counters {
		fmt.Fprintf(w, "counter %s %d\n", name, v) // want `fmt\.Fprintf inside range over a map makes iteration order observable`
	}
}

// collectUnsorted escapes iteration order through the returned slice —
// flagged.
func (r *registry) collectUnsorted() []string {
	var lines []string
	for name, v := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", name, v)) // want `lines accumulates elements in map-iteration order`
	}
	return lines
}

// writeSnapshot is the sanctioned idiom the real registry uses:
// collect, sort by name, then emit.
func (r *registry) writeSnapshot(w io.Writer) {
	type line struct {
		name string
		v    int64
	}
	var lines []line
	for name, v := range r.counters {
		lines = append(lines, line{name, v})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	for _, l := range lines {
		fmt.Fprintf(w, "counter %s %d\n", l.name, l.v)
	}
}
