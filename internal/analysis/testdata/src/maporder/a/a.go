// Package a is a maporder fixture: map iterations whose order reaches
// an io.Writer, a printer, or an outer slice are flagged; the
// collect-then-sort idiom and loop-local scratch are not.
package a

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func emits(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside range over a map makes iteration order observable; iterate deterministically: range over slices\.Sorted\(maps\.Keys\(m\)\) instead of the map`
	}
}

func prints(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `fmt\.Println inside range over a map makes iteration order observable`
	}
}

func builds(m map[string]bool) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `\(\*strings\.Builder\)\.WriteString inside range over a map makes iteration order observable`
	}
	return b.String()
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `keys accumulates elements in map-iteration order; sort keys after the loop, or range over slices\.Sorted\(maps\.Keys\(m\)\) instead of the map`
	}
	return keys
}

// collectSorted is the sanctioned idiom: the collected keys are sorted
// before anyone can observe their order.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// localScratch appends only to a slice declared inside the loop, whose
// order cannot escape an iteration.
func localScratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		doubled := []int{}
		doubled = append(doubled, vs...)
		total += len(doubled)
	}
	return total
}

// overSlice ranges a slice, which is ordered; nothing to flag.
func overSlice(w io.Writer, s []string) {
	for _, v := range s {
		fmt.Fprintln(w, v)
	}
}

func suppressed(w io.Writer, m map[string]struct{}) {
	for k := range m {
		//lint:ignore ffsvet/maporder order-insensitive set dump, the consumer sorts
		fmt.Fprintln(w, k)
	}
}
