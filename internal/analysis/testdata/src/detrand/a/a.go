// Package a is a detrand fixture: a fully deterministic package where
// both the global generator and the wall clock are forbidden.
package a

import (
	"math/rand"
	"time"
)

func draws() int {
	return rand.Intn(6) // want `rand\.Intn draws from the process-global generator and breaks replay determinism; thread the replay's seeded \*rand\.Rand here instead`
}

func shuffles(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the process-global generator`
}

func stamps() time.Time {
	return time.Now() // want `time\.Now reads the wall clock and breaks replay determinism; derive time from the simulated day counter, or keep timing in telemetry packages like internal/runner`
}

func waits() {
	<-time.After(time.Second) // want `time\.After reads the wall clock`
}

// seeded constructions and methods of an injected generator are the
// sanctioned pattern.
func seeded(n int) int {
	rng := rand.New(rand.NewSource(37))
	return rng.Intn(n)
}

// pure time arithmetic (methods, constants) is fine.
func elapsed(start, end time.Time) time.Duration {
	return end.Sub(start)
}

func suppressed() int64 {
	//lint:ignore ffsvet/detrand seeding the sanctioned root generator from entropy at startup
	return rand.Int63()
}
