package a

import randv2 "math/rand/v2"

func drawsV2() int {
	return randv2.IntN(9) // want `rand\.IntN draws from the process-global generator`
}

func seededV2() uint64 {
	return randv2.NewPCG(1, 2).Uint64()
}
