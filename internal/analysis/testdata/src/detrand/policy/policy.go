// Package policy is a detrand fixture mirroring ffsage/internal/policy:
// allocation policies that decide where a file's blocks land. Placement
// must depend only on the file system's state and the caller's seeded
// generator — a policy that jitters placement with the global generator
// or tie-breaks on the wall clock would age a different image every run
// and break the tournament's byte-identical report guarantee.
package policy

import (
	"math/rand"
	"time"
)

type fs struct {
	nextFree int
}

type file struct {
	blocks []int
}

// flushNear is the sanctioned shape: placement is a pure function of
// file-system state.
func flushNear(f *fs, fl *file, n int) {
	for i := 0; i < n; i++ {
		fl.blocks = append(fl.blocks, f.nextFree)
		f.nextFree++
	}
}

// flushJittered perturbs placement with the global generator — flagged.
func flushJittered(f *fs, fl *file, n int) {
	for i := 0; i < n; i++ {
		slot := f.nextFree + rand.Intn(2) // want `rand\.Intn draws from the process-global generator`
		fl.blocks = append(fl.blocks, slot)
		f.nextFree = slot + 1
	}
}

// tieBreak picks between two equal runs by the wall clock — flagged.
func tieBreak(a, b int) int {
	if time.Now().UnixNano()%2 == 0 { // want `time\.Now reads the wall clock and breaks replay determinism`
		return a
	}
	return b
}

// shuffledProbe is fine: the generator is explicitly seeded by the
// caller's replay seed, not the process-global one.
func shuffledProbe(seed int64, cgs []int) []int {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(cgs), func(i, j int) { cgs[i], cgs[j] = cgs[j], cgs[i] })
	return cgs
}
