// Package obs is a detrand fixture mirroring ffsage/internal/obs: an
// observability core whose events must be keyed on *simulated* time.
// Reading the wall clock to stamp an event, or jittering with the
// global generator, would make metrics differ run to run; carrying a
// caller-supplied duration is fine (the caller is a telemetry package
// allowed to time itself).
package obs

import (
	"math/rand"
	"time"
)

type event struct {
	T    float64 // simulated seconds
	Name string
}

type tracer struct {
	ring []event
}

// emitSim is the sanctioned shape: the simulated timestamp comes in as
// an argument.
func (tr *tracer) emitSim(simT float64, name string) {
	tr.ring = append(tr.ring, event{T: simT, Name: name})
}

// emitWall stamps events with the wall clock — flagged.
func (tr *tracer) emitWall(name string) {
	t := time.Now() // want `time\.Now reads the wall clock and breaks replay determinism`
	tr.ring = append(tr.ring, event{T: float64(t.Unix()), Name: name})
}

// sampled drops events with the global generator — flagged.
func (tr *tracer) sampled(simT float64, name string) {
	if rand.Float64() < 0.5 { // want `rand\.Float64 draws from the process-global generator`
		tr.emitSim(simT, name)
	}
}

type jobStat struct {
	Label string
	Wall  time.Duration
}

// record carries a wall-clock duration measured elsewhere; duration
// arithmetic on values handed in is not a clock read.
func record(stats []jobStat, label string, wall time.Duration) []jobStat {
	return append(stats, jobStat{Label: label, Wall: wall.Round(time.Millisecond)})
}
