// Package other is a detrand fixture for the package allowlist: it is
// not on the deterministic list at all (telemetry tier, like
// internal/runner), so nothing here is flagged.
package other

import (
	"math/rand"
	"time"
)

func telemetry() (time.Time, int) {
	return time.Now(), rand.Int()
}
