// Package perfbench is a detrand fixture mirroring
// ffsage/internal/perfbench: a benchmark harness that is covered by
// the determinism check with NO TimeOK exemption. Wall-clock reads are
// legal only behind a justified //lint:ignore in the measurement core;
// anywhere else they are flagged, and random draws must always come
// from an injected seeded generator.
package perfbench

import (
	"math/rand"
	"time"
)

// sample is the sanctioned measurement core: the suppression names the
// analyzer and carries a reason, so the read is allowed.
func sample() time.Duration {
	//lint:ignore ffsvet/detrand wall-clock reads here ARE the measurement; samples are reported, never fed into simulated state
	t0 := time.Now()
	//lint:ignore ffsvet/detrand wall-clock reads here ARE the measurement; samples are reported, never fed into simulated state
	return time.Since(t0)
}

// leakedClock is a wall-clock read outside the measurement core —
// exactly what coverage without TimeOK must catch.
func leakedClock() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

// bootstrap resamples with an injected seeded generator: the required
// idiom, no finding.
func bootstrap(rng *rand.Rand, xs []float64) float64 {
	return xs[rng.Intn(len(xs))]
}

// jitter draws from the process-global generator, which is forbidden
// even in a benchmark harness.
func jitter() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the process-global generator`
}

// reseed builds a seeded generator, the sanctioned constructor path.
func reseed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

var _ = sample
var _ = leakedClock
var _ = bootstrap
var _ = jitter
var _ = reseed
