// Package bench is a detrand fixture on the TimeOK allowlist:
// benchmark harnesses may time themselves with the wall clock, but
// must still keep every random draw seeded.
package bench

import (
	"math/rand"
	"time"
)

func timing() time.Time {
	return time.Now() // sanctioned: package is on the TimeOK allowlist
}

func jitter() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the process-global generator`
}
