// Package loop is the ctxloop fixture: a guarded package whose
// unbounded loops must consult a context.Context — directly, or through
// any call whose closure reaches a polling function.
package loop

import "context"

func work() {}

// drainNoPoll is the basic violation: nothing in the loop can observe
// cancellation.
func drainNoPoll() {
	for { // want `unbounded loop in drainNoPoll neither polls a context\.Context nor calls anything that does`
		work()
	}
}

// drainDirect polls ctx.Err itself.
func drainDirect(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		work()
	}
}

// drainSelect polls via a ctx.Done select case.
func drainSelect(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
			work()
		}
	}
}

// step polls one static call-graph edge away.
func step(ctx context.Context) bool {
	return ctx.Err() != nil
}

// drainViaHelper is covered by step's polling.
func drainViaHelper(ctx context.Context) {
	for {
		if step(ctx) {
			return
		}
		work()
	}
}

// helperNoPoll does not poll; delegating to it leaves the loop
// uninterruptible, and the traversal runs the edge and still flags.
func helperNoPoll() { work() }

func drainViaWrongHelper() {
	for { // want `unbounded loop in drainViaWrongHelper neither polls a context\.Context nor calls anything that does`
		helperNoPoll()
	}
}

// worker is the interface-dispatch case: the concrete implementation
// polls, so stepping through the interface covers the loop.
type worker interface {
	Step() bool
}

type ctxWorker struct{ ctx context.Context }

func (w *ctxWorker) Step() bool { return w.ctx.Err() != nil }

func drainViaInterface(w worker) {
	for {
		if w.Step() {
			return
		}
		work()
	}
}

// drainViaFuncValue is covered through a stored function value bound to
// step.
func drainViaFuncValue(ctx context.Context) {
	fn := step
	for {
		if fn(ctx) {
			return
		}
		work()
	}
}

// rangeChan blocks on a channel that cancellation cannot close.
func rangeChan(ch chan int) {
	for range ch { // want `unbounded loop in rangeChan neither polls a context\.Context nor calls anything that does`
		work()
	}
}

// rangeSlice is bounded by construction.
func rangeSlice(xs []int) {
	for range xs {
		work()
	}
}

// drainSuppressed documents the termination-argument escape hatch.
func drainSuppressed(n int) int {
	i := 0
	//lint:ignore ffsvet/ctxloop bounded: i strictly increases toward n every iteration
	for {
		if i >= n {
			return i
		}
		i++
	}
}
