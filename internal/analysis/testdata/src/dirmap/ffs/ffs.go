// Package ffs is a dirmap fixture standing in for ffsage/internal/ffs:
// directory tables here are sorted entry slices, so any
// map[string]*File — declared, made, literal'd, or ranged over — is a
// finding. Maps with other keys or elements are not.
package ffs

import "sort"

// File mirrors the real package's central type.
type File struct {
	Name string
	Size int64
}

type badDir struct {
	files map[string]*File // want `map\[string\]\*File directory table: allocates on every insert and iterates in random order; use a sorted entries slice with binary search instead`
}

func makeBad() map[string]*File { // want `map\[string\]\*File directory table`
	return make(map[string]*File) // want `map\[string\]\*File directory table`
}

// aliased shapes are caught through the underlying type.
type table = map[string]*File // want `map\[string\]\*File directory table`

func walk(m map[string]*File) []string { // want `map\[string\]\*File directory table`
	var names []string
	for name := range m { // want `range over a map\[string\]\*File directory table: iteration order is randomized; use a sorted entries slice instead`
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// The sanctioned representation and unrelated maps pass untouched.
type goodDir struct {
	entries []dirEnt
	byIno   map[int64]*File // int64 key: the live-file index, not a directory table
	sizes   map[string]int64
}

type dirEnt struct {
	name string
	file *File
}

func (d *goodDir) lookup(name string) *File {
	i := sort.Search(len(d.entries), func(i int) bool { return d.entries[i].name >= name })
	if i < len(d.entries) && d.entries[i].name == name {
		return d.entries[i].file
	}
	return nil
}
