// Package other is a dirmap fixture for scoping: the same forbidden
// shape outside the configured packages raises nothing.
package other

type File struct{ Name string }

type dir struct {
	files map[string]*File
}

func collect(m map[string]*File) int {
	n := 0
	for range m {
		n++
	}
	return n
}
