// Package a is a nopanic fixture: library packages surface failures as
// errors; panics and process-terminating calls are flagged.
package a

import (
	"log"
	"os"
)

func boom() {
	panic("invariant") // want `panic in library package nopanic/a kills every caller; return an error instead \(use throwCorrupt for on-disk invariant breaches — it surfaces as \*ffs\.CorruptionError\)`
}

func fatal(err error) {
	log.Fatalf("x: %v", err) // want `log\.Fatalf terminates the process from library package nopanic/a; return the error and let main decide`
}

func exits() {
	os.Exit(2) // want `os\.Exit terminates the process from library package nopanic/a`
}

func guarded(ok bool) {
	if !ok {
		//lint:ignore ffsvet/nopanic precondition panic: caller bug, not replayed disk state
		panic("caller bug")
	}
}

// a value named like a killer is not a call of one.
func decoys(l *log.Logger, err error) {
	l.Printf("recovered: %v", err)
}
