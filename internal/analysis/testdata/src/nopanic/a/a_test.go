package a

// Test files are exempt: a panic here fails the test, nothing more.
func helperPanics() {
	panic("test helper")
}
