package a

// The reasonless directive below suppresses nothing and is itself
// flagged, as is the panic it failed to cover.
// want@8 `malformed //lint:ignore: want "//lint:ignore ffsvet/<name>\[,\.\.\.\] reason"; the reason is mandatory, so this comment suppresses nothing`
// want@9 `panic in library package`

//lint:ignore ffsvet/nopanic
func reasonless() { panic("unjustified") }
