package a

// This file stands in for internal/ffs/corrupt.go: the test puts it on
// the AllowFiles list, sanctioning its panics.
func deliberateCorruption() {
	panic("sanctioned corruption path")
}
