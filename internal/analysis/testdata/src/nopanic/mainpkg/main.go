// Command mainpkg is a nopanic fixture: main packages decide process
// lifetime, so log.Fatal and friends are sanctioned here.
package main

import (
	"errors"
	"log"
	"os"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
	os.Exit(0)
}

func run() error {
	if len(os.Args) > 9 {
		panic("too many args")
	}
	return errors.New("nothing to do")
}
