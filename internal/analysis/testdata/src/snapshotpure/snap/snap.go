// Package snap is the snapshotpure fixture: WriteSnapshot and
// ReadSnapshot are configured as roots, (*pool).Stats as an extra
// process-local sink. Functions reachable from a root must not read
// the wall clock, the global random generator, or a configured sink —
// however many call-graph edges away; everything outside the root
// closures may do all of it.
package snap

import (
	"io"
	"math/rand"
	"time"
)

// WriteSnapshot is a configured root.
func WriteSnapshot(w io.Writer) error {
	if err := encodeHeader(w); err != nil {
		return err
	}
	enc := encoder(randEncoder{})
	if err := enc.Encode(w); err != nil {
		return err
	}
	fn := nowMillis
	_ = fn()
	return encodeBody(w)
}

// encodeHeader is one edge below the root; stamp is two. The wall-clock
// read is reported where it happens, with the witness path from the
// root.
func encodeHeader(w io.Writer) error {
	return stamp(w)
}

func stamp(w io.Writer) error {
	t := time.Now() // want `time\.Now reads the wall clock inside a snapshot path \(snap\.WriteSnapshot → snap\.encodeHeader → snap\.stamp\)`
	_ = t
	_, err := w.Write([]byte("hdr"))
	return err
}

// encoder is the interface-dispatch case: the root calls Encode through
// the interface, and the union expansion reaches the concrete method's
// global-rand read.
type encoder interface {
	Encode(w io.Writer) error
}

type randEncoder struct{}

func (randEncoder) Encode(w io.Writer) error {
	pad := rand.Int() // want `math/rand\.Int reads the process-global random generator inside a snapshot path`
	_ = pad
	_, err := w.Write([]byte("enc"))
	return err
}

// nowMillis is called through a stored function value in the root; the
// bound set carries the taint.
func nowMillis() int64 {
	return time.Now().UnixMilli() // want `time\.Now reads the wall clock inside a snapshot path`
}

// encodeBody stays pure: no finding anywhere below it.
func encodeBody(w io.Writer) error {
	_, err := w.Write([]byte("body"))
	return err
}

// pool.Stats is the configured extra sink: process-local counters that
// an interrupted-and-resumed run would report differently.
type pool struct{ hits int }

func (p *pool) Stats() int { return p.hits }

// Ops mirrors the real repo's operational-registry accessor: a
// package-level function configured as a sink by its plain function
// key (not a method key like (*pool).Stats).
func Ops() *pool { return &opsState }

var opsState pool

// ReadSnapshot is the second root; reading either sink form inside its
// closure is the violation.
func ReadSnapshot(r io.Reader, p *pool) error {
	n := p.Stats() // want `\(\*snapshotpure/snap\.pool\)\.Stats reads process-local state that differs under resume`
	_ = n
	o := Ops() // want `snapshotpure/snap\.Ops reads process-local state that differs under resume`
	_ = o
	return nil
}

// notARoot may use all of it: time, rand, and the pool are only
// forbidden inside root closures.
func notARoot(p *pool) int64 {
	return time.Now().UnixNano() + int64(rand.Int()) + int64(p.Stats())
}
