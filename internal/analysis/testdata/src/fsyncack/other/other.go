// Package other holds the same unsynced-write shapes as the guarded
// fixture but lies outside the configured packages: fsyncack must stay
// silent here.
package other

import "os"

func writeNoSync(f *os.File, p []byte) error {
	_, err := f.Write(p)
	return err
}

func writeFileNoSync(path string, p []byte) error {
	return os.WriteFile(path, p, 0o644)
}
