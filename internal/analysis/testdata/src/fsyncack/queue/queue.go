// Package queue is the fsyncack fixture: it mirrors an ack-bearing
// package (configured as guarded) whose durable writes must reach an
// fsync through the call graph before success is returned.
package queue

import "os"

// writeAckedNoSync is the basic violation: bytes reach the page cache,
// the caller is told they are durable, and no path syncs them.
func writeAckedNoSync(f *os.File, p []byte) error {
	_, err := f.Write(p) // want `no path from queue.writeAckedNoSync reaches \(\*os\.File\)\.Sync`
	return err
}

// writeFileNoSync covers the os.WriteFile primitive.
func writeFileNoSync(path string, p []byte) error {
	return os.WriteFile(path, p, 0o644) // want `no path from queue.writeFileNoSync reaches \(\*os\.File\)\.Sync`
}

// writeThenSync is the direct good case: one Sync in the same body
// covers the write.
func writeThenSync(f *os.File, p []byte) error {
	if _, err := f.Write(p); err != nil {
		return err
	}
	return f.Sync()
}

// syncHelper exists to be one static call-graph edge away.
func syncHelper(f *os.File) error { return f.Sync() }

// writeViaHelper reaches Sync through a helper: the analyzer must
// follow the static edge rather than scan the body's text.
func writeViaHelper(f *os.File, p []byte) error {
	if _, err := f.Write(p); err != nil {
		return err
	}
	return syncHelper(f)
}

// nonSyncHelper closes without syncing; delegating to it does not make
// a write durable.
func nonSyncHelper(f *os.File) error { return f.Close() }

// writeViaWrongHelper delegates to a helper that never syncs: the
// traversal runs one edge deep and still finds no Sync, so the write
// is flagged.
func writeViaWrongHelper(f *os.File, p []byte) error {
	if _, err := f.Write(p); err != nil { // want `no path from queue.writeViaWrongHelper reaches \(\*os\.File\)\.Sync`
		return err
	}
	return nonSyncHelper(f)
}

// flusher is the interface-dispatch case: the concrete implementation
// syncs, so a write followed by a flush through the interface is
// durable even though no Sync is textually visible from the caller.
type flusher interface {
	Flush() error
}

type fileFlusher struct{ f *os.File }

func (ff *fileFlusher) Flush() error { return ff.f.Sync() }

func writeViaInterface(f *os.File, fl flusher, p []byte) error {
	if _, err := f.Write(p); err != nil {
		return err
	}
	return fl.Flush()
}

// writeViaFuncValue reaches Sync through a stored function value: the
// bound set links the dynamic call to syncHelper by signature.
func writeViaFuncValue(f *os.File, p []byte) error {
	commit := syncHelper
	if _, err := f.Write(p); err != nil {
		return err
	}
	return commit(f)
}

// writeSuppressed documents the sanctioned escape hatch: a scratch file
// the caller never treats as durable.
func writeSuppressed(f *os.File, p []byte) error {
	//lint:ignore ffsvet/fsyncack scratch spill file; contents are re-derived on restart, never acknowledged as durable
	_, err := f.Write(p)
	return err
}
