package analysis

import (
	"go/ast"
	"go/types"
)

// DetrandConfig scopes the determinism check. Packages is the set of
// import paths (normalized per PkgPathOf, so tests of a listed package
// are covered too) in which replay determinism is load-bearing; TimeOK
// is the subset that may read the wall clock (benchmark harnesses
// report real elapsed time) but must still keep randomness seeded.
type DetrandConfig struct {
	Packages []string
	TimeOK   []string
}

// DefaultDetrandConfig covers the packages whose state feeds the
// byte-identical replay guarantee, plus the benchmark tier which may
// time itself but must not perturb workloads. internal/runner is
// deliberately absent: its telemetry (per-job wall-clock timings) is
// reporting, not replay state.
func DefaultDetrandConfig() DetrandConfig {
	return DetrandConfig{
		Packages: []string{
			"ffsage/internal/ffs",
			"ffsage/internal/aging",
			"ffsage/internal/workload",
			"ffsage/internal/trace",
			"ffsage/internal/faults",
			"ffsage/internal/bitset",
			"ffsage/internal/core",
			"ffsage/internal/disk",
			"ffsage/internal/layout",
			// Allocation policies decide block placement; a wall-clock
			// or global-rand read here would make aged images differ
			// run to run and break the tournament's byte-identical
			// report guarantee.
			"ffsage/internal/policy",
			"ffsage/internal/stats",
			"ffsage/internal/experiments",
			"ffsage/internal/bench",
			"ffsage/internal/obs",
			// The queue's WAL replay must be deterministic for the
			// daemon's crash-equivalence guarantee; internal/jobs is
			// deliberately absent (backoff sleeps and poll tickers
			// legitimately read the wall clock).
			"ffsage/internal/queue",
			// perfbench is covered WITHOUT a TimeOK entry: its
			// wall-clock reads are confined to the measurement core
			// (clock.go), each behind a justified //lint:ignore, so a
			// time.Now creeping into fixtures or summaries is flagged.
			"ffsage/internal/perfbench",
			"ffsage",
		},
		TimeOK: []string{
			"ffsage/internal/bench",
			"ffsage",
		},
	}
}

// randConstructors are the math/rand and math/rand/v2 functions that
// build explicitly seeded generators rather than consulting the global
// one; everything else at package level is forbidden in deterministic
// packages.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// timeForbidden are the time functions that read the wall clock (or
// schedule on it) and therefore differ run to run.
var timeForbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Detrand builds the determinism analyzer: inside cfg.Packages, every
// random draw must come through an injected seeded *rand.Rand — global
// math/rand functions are forbidden — and the wall clock is off limits
// outside cfg.TimeOK.
func Detrand(cfg DetrandConfig) *Analyzer {
	inSet := func(list []string, path string) bool {
		for _, p := range list {
			if p == path {
				return true
			}
		}
		return false
	}
	return &Analyzer{
		Name: "detrand",
		Doc:  "forbid global math/rand and wall-clock reads in deterministic packages",
		Run: func(pass *Pass) {
			path := PkgPathOf(pass.Pkg.Path())
			if !inSet(cfg.Packages, path) {
				return
			}
			timeOK := inSet(cfg.TimeOK, path)
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := pass.Callee(call)
					if fn == nil || fn.Pkg() == nil {
						return true
					}
					if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
						return true // methods (e.g. (*rand.Rand).Intn) are fine
					}
					switch fn.Pkg().Path() {
					case "math/rand", "math/rand/v2":
						if !randConstructors[fn.Name()] {
							pass.Reportf(call.Pos(), "%s.%s draws from the process-global generator and breaks replay determinism; thread the replay's seeded *rand.Rand here instead", fn.Pkg().Name(), fn.Name())
						}
					case "time":
						if !timeOK && timeForbidden[fn.Name()] {
							pass.Reportf(call.Pos(), "time.%s reads the wall clock and breaks replay determinism; derive time from the simulated day counter, or keep timing in telemetry packages like internal/runner", fn.Name())
						}
					}
					return true
				})
			}
		},
	}
}
