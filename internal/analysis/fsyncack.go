package analysis

// FsyncackConfig scopes the durability check to the packages whose
// writes are acknowledged to callers as durable (import paths,
// normalized per PkgPathOf).
type FsyncackConfig struct {
	Packages []string
}

// DefaultFsyncackConfig guards the WAL queue and the job manager: both
// acknowledge operations (WAL append → Enqueue/Ack returns nil; job
// artifacts written → job acked) that a crash must not un-happen.
func DefaultFsyncackConfig() FsyncackConfig {
	return FsyncackConfig{Packages: []string{
		"ffsage/internal/queue",
		"ffsage/internal/jobs",
	}}
}

// writePrimitives are the durable-append sinks: a function that calls
// one of these has put bytes in the page cache that a caller may be
// told are safe.
var writePrimitives = map[string]bool{
	"os.WriteFile":           true,
	"(*os.File).Write":       true,
	"(*os.File).WriteString": true,
}

// syncPrimitives actually force bytes to stable storage.
var syncPrimitives = map[string]bool{
	"(*os.File).Sync": true,
}

// Fsyncack builds the fsync-before-acknowledge analyzer: inside
// cfg.Packages, any function that directly performs a durable write
// (os.WriteFile, (*os.File).Write/WriteString) must also reach
// (*os.File).Sync through its own call closure — otherwise the write
// can be acknowledged, and then lost with the page cache on power
// failure. The Sync may be any number of calls away (a helper, an
// interface method, a stored function value): the call graph is
// consulted, not the file's text. Only the function that issues the
// write is flagged, so a missing fsync reports once, at the write,
// rather than cascading up every caller.
func Fsyncack(cfg FsyncackConfig) *Analyzer {
	guarded := map[string]bool{}
	for _, p := range cfg.Packages {
		guarded[p] = true
	}
	return &Analyzer{
		Name: "fsyncack",
		Doc:  "durable writes in ack-bearing packages must reach an fsync before success is returned",
		RunProgram: func(pass *ProgramPass) {
			reachesSync := func(key string) bool {
				return pass.Prog.ReachesOrOpaque(key, func(n *Node) bool {
					return syncPrimitives[n.Key]
				})
			}
			for _, n := range pass.Prog.Graph.SortedNodes() {
				if !n.HasBody || n.InTest || !guarded[n.Pkg] {
					continue
				}
				for _, e := range sortedEdges(n) {
					if !writePrimitives[e.Callee] || e.Dyn {
						continue
					}
					if reachesSync(n.Key) {
						break // one Sync in the closure covers every write here
					}
					pass.ReportAt(e.Pos, "%s appends durable state in %s, but no path from %s reaches (*os.File).Sync; a crash after the caller is acknowledged would silently lose the operation — Sync before returning success, or route the write through a syncing helper like queue.replaceFile / jobs.writeAtomic", e.Callee, n.Display, n.Display)
				}
			}
		},
	}
}
