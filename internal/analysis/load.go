package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// An ExportImporter resolves imports against compiler export data, the
// way cmd/vet does: importMap translates source import paths to
// canonical package paths, exports maps those to export-data files
// produced by the gc compiler (vet.cfg PackageFile, or go list -export).
type ExportImporter struct {
	inner types.ImporterFrom
}

// NewExportImporter builds an importer over the given tables. A nil
// importMap means the identity mapping.
func NewExportImporter(fset *token.FileSet, importMap, exports map[string]string) *ExportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &ExportImporter{inner: importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)}
}

func (ei *ExportImporter) Import(path string) (*types.Package, error) {
	return ei.inner.ImportFrom(path, "", 0)
}

// TypeCheck parses nothing itself: it type-checks already-parsed files
// into a Package ready for Run.
func TypeCheck(fset *token.FileSet, path, goVersion string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := NewInfo()
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", envOr("GOARCH", runtime.GOARCH)),
		GoVersion: goVersion,
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

func envOr(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return fallback
}

// ParseFiles parses the named files (absolute paths) with comments,
// which the suppression scanner needs.
func ParseFiles(fset *token.FileSet, filenames []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// LoadPatterns loads the non-test compilation of every package matching
// the go list patterns, type-checked against fresh gc export data.
// Test files are covered by the `go vet -vettool` path, which receives
// them from cmd/go; the standalone loader keeps to the production
// sources.
func LoadPatterns(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,Export,GoFiles,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, &p)
		}
	}

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		fset := token.NewFileSet()
		var filenames []string
		for _, f := range t.GoFiles {
			filenames = append(filenames, filepath.Join(t.Dir, f))
		}
		files, err := ParseFiles(fset, filenames)
		if err != nil {
			return nil, err
		}
		pkg, err := TypeCheck(fset, t.ImportPath, goVersionOf(dir), files, NewExportImporter(fset, nil, exports))
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goVersionOf asks go list for the module's language version so the
// type-checker matches the build.
func goVersionOf(dir string) string {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.GoVersion}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	v := strings.TrimSpace(string(out))
	if err != nil || v == "" {
		return ""
	}
	return "go" + v
}
