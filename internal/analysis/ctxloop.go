package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxloopConfig scopes the cancellation check to the packages whose
// loops replay traces, simulate days, or drain queues (import paths,
// normalized per PkgPathOf).
type CtxloopConfig struct {
	Packages []string
}

// DefaultCtxloopConfig guards the long-running layers: the WAL queue
// (drain/replay loops), the job manager (dispatch/retry loops), the
// aging engine (day loops), and the runner (experiment loops). A stuck
// loop in any of these turns a cancel request into a hang.
func DefaultCtxloopConfig() CtxloopConfig {
	return CtxloopConfig{Packages: []string{
		"ffsage/internal/queue",
		"ffsage/internal/jobs",
		"ffsage/internal/aging",
		"ffsage/internal/runner",
	}}
}

// Ctxloop builds the cancellation-polling analyzer: an unbounded loop
// (`for {`, `for cond-less;;`, or `for range ch` over a channel) in a
// guarded package must either consult a context.Context itself
// (ctx.Err(), a ctx.Done() select case) or call — possibly many edges
// away, through an interface or a stored function value — something
// that does. Loops whose termination is structurally guaranteed are
// suppressed with //lint:ignore ffsvet/ctxloop plus the termination
// argument, which keeps the argument next to the loop it justifies.
func Ctxloop(cfg CtxloopConfig) *Analyzer {
	guarded := map[string]bool{}
	for _, p := range cfg.Packages {
		guarded[p] = true
	}
	return &Analyzer{
		Name: "ctxloop",
		Doc:  "unbounded replay/day/drain loops must poll context cancellation",
		RunProgram: func(pass *ProgramPass) {
			for _, pkg := range pass.Prog.Pkgs {
				if !guarded[PkgPathOf(pkg.Types.Path())] {
					continue
				}
				checkCtxloops(pass, pkg)
			}
		},
	}
}

func checkCtxloops(pass *ProgramPass, pkg *Package) {
	for _, f := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(f.Package).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch loop := n.(type) {
				case *ast.ForStmt:
					if loop.Cond != nil {
						return true
					}
					body = loop.Body
				case *ast.RangeStmt:
					// Ranging a slice/map/int is bounded by construction;
					// ranging a channel blocks until the sender closes it,
					// which cancellation cannot force.
					tv, ok := pkg.Info.Types[loop.X]
					if !ok || tv.Type == nil {
						return true
					}
					if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
						return true
					}
					body = loop.Body
				default:
					return true
				}
				if !loopPollsCtx(pass.Prog, pkg, body) {
					pass.ReportAt(pkg.Fset.Position(n.Pos()),
						"unbounded loop in %s neither polls a context.Context nor calls anything that does; cancellation (SIGINT, job timeout) cannot interrupt it — check ctx.Err() per iteration or select on ctx.Done(), or, if termination is structurally guaranteed, suppress with //lint:ignore ffsvet/ctxloop <why it terminates>",
						fd.Name.Name)
				}
				return true
			})
		}
	}
}

// loopPollsCtx reports whether the loop body consults a context —
// directly, or through any call whose closure reaches a
// context-polling function.
func loopPollsCtx(prog *Program, pkg *Package, body *ast.BlockStmt) bool {
	g := prog.Graph
	pollsCtx := func(n *Node) bool { return n.PollsCtx }
	anyReaches := func(keys []string) bool {
		for _, key := range keys {
			if prog.ReachesOrOpaque(key, pollsCtx) {
				return true
			}
		}
		return false
	}
	polls := false
	ast.Inspect(body, func(n ast.Node) bool {
		if polls {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// ctx.Done() / ctx.Err() in the body itself.
			if n.Sel.Name == "Done" || n.Sel.Name == "Err" {
				if tv, ok := pkg.Info.Types[n.X]; ok && tv.Type != nil &&
					types.TypeString(tv.Type, qualifier) == "context.Context" {
					polls = true
				}
			}
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			var id *ast.Ident
			switch f := fun.(type) {
			case *ast.Ident:
				id = f
			case *ast.SelectorExpr:
				id = f.Sel
			}
			if id != nil {
				if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
					sig, _ := fn.Type().(*types.Signature)
					if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
						// Interface dispatch: the loop is covered if any
						// concrete implementation polls.
						if anyReaches(g.methodIndex[fn.Name()+"|"+sigString(sig)]) {
							polls = true
						}
						return !polls
					}
					if prog.ReachesOrOpaque(FuncKey(fn), pollsCtx) {
						polls = true
					}
					return !polls
				}
			}
			// A call of a function-typed value: covered if any bound
			// function of this signature polls.
			if tv, ok := pkg.Info.Types[n.Fun]; ok && tv.Type != nil && !tv.IsType() {
				if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
					if anyReaches(g.boundBySig[sigString(sig)]) {
						polls = true
					}
				}
			}
		}
		return !polls
	})
	return polls
}
