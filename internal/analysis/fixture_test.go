package analysis

// A minimal analogue of golang.org/x/tools/go/analysis/analysistest:
// fixture packages live under testdata/src/<path>, and every expected
// finding is declared in the fixture source as a trailing comment
//
//	// want `regexp` [`regexp` ...]
//
// matched against the diagnostics raised on that line. A comment of
// the form `// want@N ...` anchors the expectation to line N instead,
// for findings on lines that cannot carry a trailing comment (e.g. a
// malformed //lint:ignore directive, which is itself a finding).
// The test fails on any unexpected diagnostic and on any unmatched
// expectation, so the fixtures are golden: they pin the full remedy
// text of each message.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// stdFixtureImports are the standard-library packages fixtures may
// import; their export data is listed once per test binary.
var stdFixtureImports = []string{
	"bytes", "context", "errors", "fmt", "io", "log", "maps",
	"math/rand", "math/rand/v2", "os", "slices", "sort", "strings",
	"time",
}

var (
	stdExportsOnce sync.Once
	stdExports     map[string]string
	stdExportsErr  error
)

func stdExportTable(t *testing.T) map[string]string {
	t.Helper()
	stdExportsOnce.Do(func() {
		args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, stdFixtureImports...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			stdExportsErr = fmt.Errorf("go list: %v\n%s", err, stderr.String())
			return
		}
		stdExports = map[string]string{}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				stdExportsErr = err
				return
			}
			if p.Export != "" {
				stdExports[p.ImportPath] = p.Export
			}
		}
	})
	if stdExportsErr != nil {
		t.Fatalf("loading stdlib export data: %v", stdExportsErr)
	}
	return stdExports
}

// fixtureLoader type-checks fixture packages, resolving imports first
// against sibling fixture directories, then against stdlib export data.
type fixtureLoader struct {
	t       *testing.T
	fset    *token.FileSet
	srcRoot string
	std     types.Importer
	cache   map[string]*Package
}

func newFixtureLoader(t *testing.T) *fixtureLoader {
	fset := token.NewFileSet()
	return &fixtureLoader{
		t:       t,
		fset:    fset,
		srcRoot: filepath.Join("testdata", "src"),
		std:     NewExportImporter(fset, nil, stdExportTable(t)),
		cache:   map[string]*Package{},
	}
}

func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.srcRoot, filepath.FromSlash(path)); isDir(dir) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

func (l *fixtureLoader) load(path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	files, err := ParseFiles(l.fset, filenames)
	if err != nil {
		return nil, err
	}
	info := NewInfo()
	conf := types.Config{Importer: l, GoVersion: "go1.22"}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	pkg := &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = pkg
	return pkg, nil
}

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("// want(@[0-9]+)? (.+)$")
var wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectExpectations extracts // want comments from the fixture files.
func collectExpectations(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					line, _ = strconv.Atoi(m[1][1:])
				}
				args := wantArgRE.FindAllString(m[2], -1)
				if len(args) == 0 {
					t.Fatalf("%s: malformed want comment: %s", pos, c.Text)
				}
				for _, arg := range args {
					pat, err := strconv.Unquote(arg)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, arg, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					exps = append(exps, &expectation{file: pos.Filename, line: line, re: re})
				}
			}
		}
	}
	return exps
}

// runFixture analyzes one fixture package with one analyzer and diffs
// the findings against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	l := newFixtureLoader(t)
	pkg, err := l.load(path)
	if err != nil {
		t.Fatal(err)
	}
	exps := collectExpectations(t, pkg.Fset, pkg.Files)
	diags := Run(pkg, []*Analyzer{a})
outer:
	for _, d := range diags {
		for _, e := range exps {
			if !e.matched && e.file == d.Pos.Filename && e.line == d.Pos.Line && e.re.MatchString(d.Message) {
				e.matched = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, e := range exps {
		if !e.matched {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}
