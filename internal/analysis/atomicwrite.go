package analysis

// AtomicwriteConfig scopes the torn-write check to the packages that
// persist artifact or state files (import paths, normalized per
// PkgPathOf).
type AtomicwriteConfig struct {
	Packages []string
}

// DefaultAtomicwriteConfig guards the layers that own crash-safe state:
// the WAL queue, the job manager's artifact/checkpoint writes, the
// aging checkpoints, and the trace codecs. cmd/* packages write
// human-facing reports where a torn file costs a re-run, not
// correctness, so they are deliberately absent.
func DefaultAtomicwriteConfig() AtomicwriteConfig {
	return AtomicwriteConfig{Packages: []string{
		"ffsage/internal/queue",
		"ffsage/internal/jobs",
		"ffsage/internal/aging",
		"ffsage/internal/trace",
	}}
}

// inPlacePrimitives create or replace a file at its final path; a crash
// mid-call leaves a torn or empty file where state used to be.
var inPlacePrimitives = map[string]bool{
	"os.WriteFile": true,
	"os.Create":    true,
}

// renamePrimitive is the commit point of the sanctioned tmp+rename
// idiom.
const renamePrimitive = "os.Rename"

// Atomicwrite builds the atomic-replacement analyzer: inside
// cfg.Packages, a direct call to os.WriteFile or os.Create is an error
// unless the calling function is itself an atomic-write helper — that
// is, its call closure also reaches os.Rename, committing the bytes
// via a temp file. The rename may be delegated (a helper, an interface
// method): the call graph is consulted. Everything else must route
// writes through such a helper, so no state file is ever truncated in
// place.
func Atomicwrite(cfg AtomicwriteConfig) *Analyzer {
	guarded := map[string]bool{}
	for _, p := range cfg.Packages {
		guarded[p] = true
	}
	return &Analyzer{
		Name: "atomicwrite",
		Doc:  "state files must be written via tmp+rename helpers, never created or truncated in place",
		RunProgram: func(pass *ProgramPass) {
			reachesRename := func(key string) bool {
				return pass.Prog.ReachesOrOpaque(key, func(n *Node) bool {
					return n.Key == renamePrimitive
				})
			}
			for _, n := range pass.Prog.Graph.SortedNodes() {
				if !n.HasBody || n.InTest || !guarded[n.Pkg] {
					continue
				}
				for _, e := range sortedEdges(n) {
					if !inPlacePrimitives[e.Callee] || e.Dyn {
						continue
					}
					if reachesRename(n.Key) {
						break // helper-shaped: writes a temp path, then commits by rename
					}
					pass.ReportAt(e.Pos, "%s in %s writes a state file in place — a crash mid-write leaves a torn file at its final path; write to a same-directory temp file and os.Rename it into place (jobs.writeAtomic is the model), or call an existing atomic helper", e.Callee, n.Display)
				}
			}
		},
	}
}
