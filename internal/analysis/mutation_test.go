package analysis

// Mutation tests: seed the defects the whole-program analyzers exist to
// catch into the real sources, re-typecheck against the module's export
// data, and require the finding. A fixture proves an analyzer works on
// a toy; these prove that the configured roots, package lists, and
// primitive keys match the actual tree — a renamed function or a stale
// root would make the analyzer silently vacuous, and this is the test
// that would notice.

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// loadRepoPackage loads one package of this module, with patch applied
// to each source file's bytes before parsing (nil patch = verbatim).
func loadRepoPackage(t *testing.T, importPath string, patch func(name string, src []byte) []byte) *Package {
	t.Helper()
	cmd := exec.Command("go", "list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,Export,GoFiles,Standard,DepOnly", importPath)
	cmd.Dir = "../.."
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list: %v\n%s", err, stderr.String())
	}
	exports := map[string]string{}
	var target *listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.ImportPath == importPath {
			pv := p
			target = &pv
		}
	}
	if target == nil {
		t.Fatalf("go list did not return %s", importPath)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range target.GoFiles {
		full := filepath.Join(target.Dir, name)
		var src any
		if patch != nil {
			data, err := os.ReadFile(full)
			if err != nil {
				t.Fatal(err)
			}
			src = patch(full, data)
		}
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing mutated %s: %v", name, err)
		}
		files = append(files, f)
	}
	pkg, err := TypeCheck(fset, importPath, goVersionOf("../.."), files, NewExportImporter(fset, nil, exports))
	if err != nil {
		t.Fatalf("type-checking mutated %s: %v", importPath, err)
	}
	return pkg
}

// mustReplace asserts the mutation anchor still exists in the source —
// a refactor that moves it should fail loudly here, not silently turn
// the test into a no-op.
func mustReplace(t *testing.T, src []byte, old, new string) []byte {
	t.Helper()
	if !bytes.Contains(src, []byte(old)) {
		t.Fatalf("mutation anchor %q not found; update the mutation test alongside the refactor", old)
	}
	return bytes.Replace(src, []byte(old), []byte(new), 1)
}

// TestMutationDeletedSyncIsFlagged deletes the fsync from the WAL
// append path — the exact defect that turns an acknowledged enqueue
// into data loss on power failure — and requires fsyncack to flag the
// now-unsynced write.
func TestMutationDeletedSyncIsFlagged(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list -export over the module")
	}
	load := func(patch func(name string, src []byte) []byte) []Diagnostic {
		pkg := loadRepoPackage(t, "ffsage/internal/queue", patch)
		return RunProgram(NewProgram([]*Package{pkg}),
			[]*Analyzer{Fsyncack(DefaultFsyncackConfig())})
	}
	if diags := load(nil); len(diags) != 0 {
		t.Fatalf("unmutated queue is not clean: %v", diags)
	}
	diags := load(func(name string, src []byte) []byte {
		if filepath.Base(name) != "wal.go" {
			return src
		}
		return mustReplace(t, src, "w.f.Sync()", "error(nil)")
	})
	if len(diags) == 0 {
		t.Fatal("deleting the Sync in (*WAL).append produced no fsyncack finding")
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "(*queue.WAL).append") {
			t.Errorf("finding does not name the append path: %s", d)
		}
	}
}

// TestMutationInjectedClockIsFlagged injects a wall-clock read two
// call-graph edges below the checkpoint codec roots (ReadCheckpoint →
// ReadFrame → corruptWrap) and requires snapshotpure to carry the taint
// down to it.
func TestMutationInjectedClockIsFlagged(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list -export over the module")
	}
	load := func(patch func(name string, src []byte) []byte) []Diagnostic {
		pkg := loadRepoPackage(t, "ffsage/internal/trace", patch)
		return RunProgram(NewProgram([]*Package{pkg}),
			[]*Analyzer{Snapshotpure(DefaultSnapshotpureConfig())})
	}
	if diags := load(nil); len(diags) != 0 {
		t.Fatalf("unmutated trace is not clean: %v", diags)
	}
	diags := load(func(name string, src []byte) []byte {
		if filepath.Base(name) != "frame.go" {
			return src
		}
		src = mustReplace(t, src, "\t\"io\"\n)", "\t\"io\"\n\t\"time\"\n)")
		return mustReplace(t, src,
			"func corruptWrap(what, msg string, err error) error {\n",
			"func corruptWrap(what, msg string, err error) error {\n\t_ = time.Now()\n")
	})
	if len(diags) == 0 {
		t.Fatal("injecting time.Now two edges below the checkpoint roots produced no snapshotpure finding")
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "time.Now") && strings.Contains(d.Message, "corruptWrap") {
			found = true
		}
	}
	if !found {
		var lines []string
		for _, d := range diags {
			lines = append(lines, d.String())
		}
		t.Errorf("no finding names both time.Now and the corruptWrap witness:\n%s", strings.Join(lines, "\n"))
	}
}
