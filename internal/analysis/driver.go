package analysis

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// Suite instantiates the full analyzer suite from the given configs.
func Suite(dr DetrandConfig, cc CheckedCorruptionConfig, np NopanicConfig, dm DirmapConfig) []*Analyzer {
	return []*Analyzer{
		Detrand(dr),
		Maporder(),
		CheckedCorruption(cc),
		Nopanic(np),
		Dirmap(dm),
	}
}

// DefaultSuite is the suite with the repository's sanctioned
// configuration — what CI enforces.
func DefaultSuite() []*Analyzer {
	return Suite(DefaultDetrandConfig(), DefaultCheckedCorruptionConfig(), DefaultNopanicConfig(), DefaultDirmapConfig())
}

// Main implements cmd/ffsvet. Two modes share the analyzers:
//
//   - vettool: `go vet -vettool=$(which ffsvet) ./...` — cmd/go drives
//     the tool per package (including test files) through the
//     unitchecker protocol; this is what CI runs.
//   - standalone: `ffsvet [patterns]` — loads matching packages via
//     `go list -export` and analyzes their non-test sources directly.
//
// Returns the process exit code.
func Main(args []string) int {
	// The -V=full and -flags handshakes arrive before flag parsing and
	// must produce exactly one line on stdout.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			fmt.Println(VersionString())
			return 0
		case "-flags", "--flags":
			fmt.Println("[]")
			return 0
		}
	}

	fs := flag.NewFlagSet("ffsvet", flag.ContinueOnError)
	dr := DefaultDetrandConfig()
	cc := DefaultCheckedCorruptionConfig()
	np := DefaultNopanicConfig()
	dm := DefaultDirmapConfig()
	csv := func(p *[]string, name, usage string) {
		def := strings.Join(*p, ",")
		fs.Func(name, usage+" (comma-separated; default "+def+")", func(v string) error {
			*p = splitCSV(v)
			return nil
		})
	}
	csv(&dr.Packages, "detrand.pkgs", "packages where global rand and wall-clock reads are forbidden")
	csv(&dr.TimeOK, "detrand.timeok", "subset of detrand.pkgs that may read the wall clock")
	csv(&cc.Packages, "checkedcorruption.pkgs", "packages whose returned errors must be handled")
	csv(&np.AllowFiles, "nopanic.allow", "file suffixes sanctioned to panic")
	csv(&dm.Packages, "dirmap.pkgs", "packages where map[string]*File directory tables are forbidden")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: ffsvet [flags] [package patterns]\n")
		fmt.Fprintf(fs.Output(), "       go vet -vettool=$(which ffsvet) ./...\n\nAnalyzers:\n")
		for _, a := range DefaultSuite() {
			fmt.Fprintf(fs.Output(), "  ffsvet/%-18s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nSuppress a finding with a justified comment on the line or the line above:\n")
		fmt.Fprintf(fs.Output(), "  //lint:ignore ffsvet/<name> reason\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := Suite(dr, cc, np, dm)

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return RunVetTool(rest[0], analyzers)
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := LoadPatterns(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffsvet: %v\n", err)
		return 2
	}
	exit := 0
	for _, pkg := range pkgs {
		for _, d := range Run(pkg, analyzers) {
			fmt.Fprintln(os.Stderr, d)
			exit = 1
		}
	}
	return exit
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
