package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// Suite instantiates the full analyzer suite from the given configs:
// the per-package syntactic checkers first, then the whole-program
// reachability checkers.
func Suite(dr DetrandConfig, cc CheckedCorruptionConfig, np NopanicConfig, dm DirmapConfig,
	fa FsyncackConfig, aw AtomicwriteConfig, sp SnapshotpureConfig, cl CtxloopConfig) []*Analyzer {
	return []*Analyzer{
		Detrand(dr),
		Maporder(),
		CheckedCorruption(cc),
		Nopanic(np),
		Dirmap(dm),
		Fsyncack(fa),
		Atomicwrite(aw),
		Snapshotpure(sp),
		Ctxloop(cl),
	}
}

// DefaultSuite is the suite with the repository's sanctioned
// configuration — what CI enforces.
func DefaultSuite() []*Analyzer {
	return Suite(DefaultDetrandConfig(), DefaultCheckedCorruptionConfig(), DefaultNopanicConfig(), DefaultDirmapConfig(),
		DefaultFsyncackConfig(), DefaultAtomicwriteConfig(), DefaultSnapshotpureConfig(), DefaultCtxloopConfig())
}

// Main implements cmd/ffsvet. Two modes share the analyzers:
//
//   - vettool: `go vet -vettool=$(which ffsvet) ./...` — cmd/go drives
//     the tool per package (including test files) through the
//     unitchecker protocol; this is what CI runs.
//   - standalone: `ffsvet [patterns]` — loads matching packages via
//     `go list -export` and analyzes their non-test sources directly.
//
// Returns the process exit code.
func Main(args []string) int {
	// The -V=full and -flags handshakes arrive before flag parsing and
	// must produce exactly one line on stdout.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			fmt.Println(VersionString())
			return 0
		case "-flags", "--flags":
			fmt.Println("[]")
			return 0
		}
	}

	fs := flag.NewFlagSet("ffsvet", flag.ContinueOnError)
	dr := DefaultDetrandConfig()
	cc := DefaultCheckedCorruptionConfig()
	np := DefaultNopanicConfig()
	dm := DefaultDirmapConfig()
	fa := DefaultFsyncackConfig()
	aw := DefaultAtomicwriteConfig()
	sp := DefaultSnapshotpureConfig()
	cl := DefaultCtxloopConfig()
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout (standalone mode only)")
	csv := func(p *[]string, name, usage string) {
		def := strings.Join(*p, ",")
		fs.Func(name, usage+" (comma-separated; default "+def+")", func(v string) error {
			*p = splitCSV(v)
			return nil
		})
	}
	csv(&dr.Packages, "detrand.pkgs", "packages where global rand and wall-clock reads are forbidden")
	csv(&dr.TimeOK, "detrand.timeok", "subset of detrand.pkgs that may read the wall clock")
	csv(&cc.Packages, "checkedcorruption.pkgs", "packages whose returned errors must be handled")
	csv(&np.AllowFiles, "nopanic.allow", "file suffixes sanctioned to panic")
	csv(&dm.Packages, "dirmap.pkgs", "packages where map[string]*File directory tables are forbidden")
	csv(&fa.Packages, "fsyncack.pkgs", "packages whose durable writes must reach an fsync")
	csv(&aw.Packages, "atomicwrite.pkgs", "packages whose state files must be written via tmp+rename")
	csv(&sp.Roots, "snapshotpure.roots", "call-graph roots of the snapshot/checkpoint encode paths")
	csv(&sp.Sinks, "snapshotpure.sinks", "extra process-local sinks forbidden under snapshot roots")
	csv(&cl.Packages, "ctxloop.pkgs", "packages whose unbounded loops must poll context cancellation")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: ffsvet [flags] [package patterns]\n")
		fmt.Fprintf(fs.Output(), "       go vet -vettool=$(which ffsvet) ./...\n\nAnalyzers:\n")
		for _, a := range DefaultSuite() {
			fmt.Fprintf(fs.Output(), "  ffsvet/%-18s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nSuppress a finding with a justified comment on the line or the line above:\n")
		fmt.Fprintf(fs.Output(), "  //lint:ignore ffsvet/<name> reason\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := Suite(dr, cc, np, dm, fa, aw, sp, cl)

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return RunVetTool(rest[0], analyzers)
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := LoadPatterns(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ffsvet: %v\n", err)
		return 2
	}
	// Standalone mode is the authoritative whole-program run: one call
	// graph spanning every loaded package, so reachability crosses
	// package boundaries (vettool mode sees one unit at a time and
	// degrades to under-reporting; see Program.Partial).
	diags := RunProgram(NewProgram(pkgs), analyzers)
	if *jsonOut {
		if err := WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "ffsvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// A JSONDiagnostic is the stable machine-readable finding shape emitted
// by `ffsvet -json`, consumed by CI tooling.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"` // qualified, e.g. "ffsvet/fsyncack"
	Message  string `json:"message"`
}

// WriteJSON renders diags as an indented JSON array (an empty run emits
// "[]", never "null", so consumers can always range the result).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: "ffsvet/" + d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
