// Package analysis implements ffsvet, a suite of static invariant
// checkers for this repository. The reproduction's headline claims —
// byte-identical layout-score series across -j levels and across
// checkpoint/resume — rest on source-level invariants: deterministic
// packages draw randomness only from an injected seeded *rand.Rand,
// nothing ordered is emitted from a raw map iteration, errors from the
// mutating ffs API (which may carry *ffs.CorruptionError) are never
// dropped, and library packages do not panic outside the sanctioned
// corruption path. The durability claims rest on whole-program ones:
// acknowledged writes reach an fsync, state files are replaced via
// tmp+rename, checkpoint/snapshot paths never reach wall-clock or
// global-rand reads, and unbounded drain loops poll cancellation. The
// analyzers here enforce all of it; cmd/ffsvet drives them standalone
// (one call graph over every matched package — the authoritative run)
// or as a `go vet -vettool` (per compilation unit, partial).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is self-contained: it depends only
// on the standard library's go/ast, go/types and go/importer, so the
// module keeps its zero-dependency footprint. The whole-program half —
// the call graph, reachability, and Program — lives in callgraph.go.
//
// A finding may be suppressed with a staticcheck-style comment on the
// offending line or the line directly above it:
//
//	//lint:ignore ffsvet/nopanic precondition panic: caller bug, not runtime state
//
// The reason is mandatory; a reasonless //lint:ignore is itself
// reported and does not suppress anything.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. Exactly one of Run and
// RunProgram is set: Run sees one type-checked package at a time (the
// syntactic checkers), RunProgram sees the whole Program and its call
// graph (the reachability checkers).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// comments, as "ffsvet/<Name>".
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects a type-checked package and reports findings
	// through the pass.
	Run func(*Pass)
	// RunProgram inspects a whole Program (packages + call graph).
	RunProgram func(*ProgramPass)
}

// A Pass presents one type-checked package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is a single finding, positioned and attributed to the
// analyzer that raised it.
type Diagnostic struct {
	Analyzer string // bare analyzer name, e.g. "nopanic"
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the canonical
// "file:line:col: ffsvet/<name>: message" form used by cmd/ffsvet and
// matched by the golden tests.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: ffsvet/%s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos. Suppression comments are applied
// afterwards by Run, so analyzers need not know about them.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Callee resolves the called function or method of call, or nil when
// the callee is not a statically known *types.Func (builtins, calls of
// function-typed values, type conversions).
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// A Package bundles everything the analyzers need about one
// type-checked package, however it was loaded (go list, vet.cfg, or a
// test fixture).
type Package struct {
	Path  string // import path, e.g. "ffsage/internal/ffs"
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// A ProgramPass presents one whole Program to one analyzer.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags *[]Diagnostic
}

// ReportAt records a finding at an already-resolved position — the
// call graph stores token.Position, not token.Pos, because nodes span
// packages with distinct FileSets.
func (p *ProgramPass) ReportAt(pos token.Position, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies analyzers to the single package pkg. It exists for the
// per-package callers (fixtures, the vettool path builds its own
// Program); whole-program analyzers see a one-package Program.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunProgram(NewProgram([]*Package{pkg}), analyzers)
}

// RunProgram applies analyzers to prog, filters findings through every
// package's //lint:ignore comments, and returns the surviving
// diagnostics sorted by position. Malformed suppression comments are
// reported as findings of the pseudo-analyzer "suppress".
func RunProgram(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		if a.Run != nil {
			for _, pkg := range prog.Pkgs {
				pass := &Pass{
					Analyzer:  a,
					Fset:      pkg.Fset,
					Files:     pkg.Files,
					Pkg:       pkg.Types,
					TypesInfo: pkg.Info,
					diags:     &raw,
				}
				a.Run(pass)
			}
		}
		if a.RunProgram != nil {
			a.RunProgram(&ProgramPass{Analyzer: a, Prog: prog, diags: &raw})
		}
	}

	var out []Diagnostic
	sup := suppressionSet{}
	for _, pkg := range prog.Pkgs {
		pkgSup, malformed := collectSuppressions(pkg.Fset, pkg.Files)
		for file, lines := range pkgSup {
			sup[file] = lines
		}
		out = append(out, malformed...)
	}
	for _, d := range raw {
		if sup.covers(d) {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// PkgPathOf normalizes an import path for allowlist matching: the
// " [pkg.test]" qualifier of test variants and the "_test" suffix of
// external test packages both resolve to the package under test, so an
// allowlist entry covers the package and its tests alike.
func PkgPathOf(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, "_test")
}
