package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// NopanicConfig scopes the panic-freedom check. AllowFiles are path
// suffixes (slash-separated) of files sanctioned to panic — the
// deliberate-corruption path. Main packages and _test.go files are
// always exempt.
type NopanicConfig struct {
	AllowFiles []string
}

// DefaultNopanicConfig sanctions only internal/ffs/corrupt.go, the
// deliberate corruption-injection path.
func DefaultNopanicConfig() NopanicConfig {
	return NopanicConfig{AllowFiles: []string{"internal/ffs/corrupt.go"}}
}

// processKillers are the std functions that terminate the process and
// so must not be reachable from library code; the decision to die
// belongs to main.
var processKillers = map[string]map[string]bool{
	"log": {"Fatal": true, "Fatalf": true, "Fatalln": true, "Panic": true, "Panicf": true, "Panicln": true},
	"os":  {"Exit": true},
}

// Nopanic builds the panic-freedom analyzer: library packages must
// surface failures as errors (corruption via throwCorrupt, recovered at
// the exported-API boundary into *ffs.CorruptionError), not by calling
// panic, log.Fatal*, log.Panic*, or os.Exit. Precondition panics that
// guard against caller bugs are expected to carry an explicit
// //lint:ignore ffsvet/nopanic justification.
func Nopanic(cfg NopanicConfig) *Analyzer {
	allowed := func(filename string) bool {
		slashed := filepath.ToSlash(filename)
		for _, suffix := range cfg.AllowFiles {
			if strings.HasSuffix(slashed, suffix) {
				return true
			}
		}
		return false
	}
	return &Analyzer{
		Name: "nopanic",
		Doc:  "forbid panic and process-terminating calls in library packages",
		Run: func(pass *Pass) {
			if pass.Pkg.Name() == "main" {
				return
			}
			for _, f := range pass.Files {
				if pass.InTestFile(f.Package) || allowed(pass.Fset.Position(f.Package).Filename) {
					continue
				}
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
						if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
							pass.Reportf(call.Pos(), "panic in library package %s kills every caller; return an error instead (use throwCorrupt for on-disk invariant breaches — it surfaces as *ffs.CorruptionError)", pass.Pkg.Path())
						}
						return true
					}
					if fn := pass.Callee(call); fn != nil && fn.Pkg() != nil {
						if names := processKillers[fn.Pkg().Path()]; names != nil && names[fn.Name()] {
							if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
								pass.Reportf(call.Pos(), "%s.%s terminates the process from library package %s; return the error and let main decide", fn.Pkg().Name(), fn.Name(), pass.Pkg.Path())
							}
						}
					}
					return true
				})
			}
		},
	}
}
