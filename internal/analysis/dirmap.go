package analysis

import (
	"go/ast"
	"go/types"
)

// DirmapConfig names the packages in which map[string]*File directory
// tables are forbidden (import paths, normalized per PkgPathOf).
type DirmapConfig struct {
	Packages []string
}

// DefaultDirmapConfig guards internal/ffs, where directory tables are
// kept as sorted entry slices: a map[string]*File there would reopen
// both regressions the slice representation closed — per-insert heap
// allocation in the zero-alloc replay loop, and randomized iteration
// order leaking into anything that walks a directory.
func DefaultDirmapConfig() DirmapConfig {
	return DirmapConfig{Packages: []string{"ffsage/internal/ffs"}}
}

// Dirmap builds the directory-table-representation analyzer: inside
// cfg.Packages, any map type with a string key and a *File element —
// declared, composite-literal'd, made, or ranged over — is flagged.
// Test files are exempt; they may build ad-hoc maps to assert against.
func Dirmap(cfg DirmapConfig) *Analyzer {
	guarded := map[string]bool{}
	for _, p := range cfg.Packages {
		guarded[p] = true
	}
	return &Analyzer{
		Name: "dirmap",
		Doc:  "forbid map[string]*File directory tables in packages using sorted entry slices",
		Run: func(pass *Pass) {
			if !guarded[PkgPathOf(pass.Pkg.Path())] {
				return
			}
			for _, f := range pass.Files {
				if pass.InTestFile(f.Package) {
					continue
				}
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.MapType:
						if tv, ok := pass.TypesInfo.Types[n]; ok && isDirMap(tv.Type) {
							pass.Reportf(n.Pos(), "map[string]*File directory table: allocates on every insert and iterates in random order; use a sorted entries slice with binary search instead")
						}
					case *ast.RangeStmt:
						// Catches values of the forbidden shape that were
						// built elsewhere (another package, an any) — the
						// type expression itself is not in this package.
						if tv, ok := pass.TypesInfo.Types[n.X]; ok && isDirMap(tv.Type) {
							if _, declaredHere := n.X.(*ast.MapType); !declaredHere {
								pass.Reportf(n.Pos(), "range over a map[string]*File directory table: iteration order is randomized; use a sorted entries slice instead")
							}
						}
					}
					return true
				})
			}
		},
	}
}

// isDirMap reports whether t is (or has underlying) map[string]*File
// for any named type called File.
func isDirMap(t types.Type) bool {
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	key, ok := m.Key().Underlying().(*types.Basic)
	if !ok || key.Kind() != types.String {
		return false
	}
	ptr, ok := m.Elem().Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "File"
}
