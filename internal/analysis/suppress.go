package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// A suppression is one well-formed //lint:ignore comment: the set of
// analyzer names it silences and the line it is written on. It covers
// findings on its own line (end-of-line form) and on the line directly
// below (comment-above form).
type suppression struct {
	checks map[string]bool // bare analyzer names
}

type suppressionSet map[string]map[int]*suppression // filename -> line

func (s suppressionSet) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if sup := lines[line]; sup != nil && sup.checks[d.Analyzer] {
			return true
		}
	}
	return false
}

// collectSuppressions scans every comment of every file for
// "//lint:ignore <checks> <reason>" directives. Checks is a
// comma-separated list of analyzer names, each either bare ("nopanic")
// or qualified ("ffsvet/nopanic"). A directive without both a check
// list and a non-empty reason suppresses nothing and is itself
// reported, so a silencing comment can never silently lose its
// justification.
func collectSuppressions(fset *token.FileSet, files []*ast.File) (suppressionSet, []Diagnostic) {
	set := suppressionSet{}
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				checksField, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
				if checksField == "" || strings.TrimSpace(reason) == "" {
					malformed = append(malformed, Diagnostic{
						Analyzer: "suppress",
						Pos:      pos,
						Message:  "malformed //lint:ignore: want \"//lint:ignore ffsvet/<name>[,...] reason\"; the reason is mandatory, so this comment suppresses nothing",
					})
					continue
				}
				sup := &suppression{checks: map[string]bool{}}
				for _, check := range strings.Split(checksField, ",") {
					check = strings.TrimPrefix(strings.TrimSpace(check), "ffsvet/")
					if check != "" {
						sup.checks[check] = true
					}
				}
				if set[pos.Filename] == nil {
					set[pos.Filename] = map[int]*suppression{}
				}
				set[pos.Filename][pos.Line] = sup
			}
		}
	}
	return set, malformed
}
