package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestResultsInSubmissionOrder(t *testing.T) {
	const n = 50
	out := make([]int, n)
	g := NewWithWorkers(context.Background(), 8)
	for i := 0; i < n; i++ {
		i := i
		g.Go(fmt.Sprintf("job%d", i), func(context.Context) error {
			// Finish in roughly reverse submission order.
			time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
			out[i] = i * i
			return nil
		})
	}
	stats, err := g.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != n {
		t.Fatalf("got %d stats, want %d", len(stats), n)
	}
	for i, st := range stats {
		if st.Label != fmt.Sprintf("job%d", i) {
			t.Errorf("stat %d label %q", i, st.Label)
		}
		if out[i] != i*i {
			t.Errorf("slot %d = %d, want %d", i, out[i], i*i)
		}
	}
}

func TestWorkerBoundRespected(t *testing.T) {
	const bound = 3
	var running, peak atomic.Int64
	g := NewWithWorkers(context.Background(), bound)
	for i := 0; i < 20; i++ {
		g.Go("j", func(context.Context) error {
			cur := running.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			running.Add(-1)
			return nil
		})
	}
	if _, err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > bound {
		t.Fatalf("peak concurrency %d exceeds bound %d", p, bound)
	}
}

func TestLowestSubmittedErrorWins(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	started := make(chan struct{})
	g := NewWithWorkers(context.Background(), 4)
	g.Go("ok", func(context.Context) error { return nil })
	g.Go("slow-fail", func(context.Context) error {
		close(started)
		time.Sleep(10 * time.Millisecond)
		return errA
	})
	g.Go("fast-fail", func(context.Context) error {
		<-started // fail strictly after slow-fail began running
		return errB
	})
	if _, err := g.Wait(); !errors.Is(err, errA) {
		t.Fatalf("got %v, want the lowest-submitted error %v", err, errA)
	}
}

func TestCancellationSkipsQueuedJobs(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	g := NewWithWorkers(context.Background(), 1)
	g.Go("fail", func(context.Context) error {
		time.Sleep(time.Millisecond)
		return boom
	})
	for i := 0; i < 10; i++ {
		g.Go("later", func(context.Context) error {
			ran.Add(1)
			return nil
		})
	}
	stats, err := g.Wait()
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	skipped := 0
	for _, st := range stats[1:] {
		if errors.Is(st.Err, context.Canceled) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Errorf("no queued job was skipped after the failure (ran=%d)", ran.Load())
	}
}

// TestExternalCancelDrainsPoolPromptly is the daemon-shutdown contract:
// cancelling the context a Group was built on must (a) interrupt
// running jobs that honour their context, (b) skip every queued job
// without running it, and (c) let Wait return promptly — the pool never
// insists on finishing the whole batch.
func TestExternalCancelDrainsPoolPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const workersN = 2
	var started, finished atomic.Int64
	release := make(chan struct{}) // never closed: jobs end only via ctx
	g := NewWithWorkers(ctx, workersN)
	for i := 0; i < 10; i++ {
		g.Go("blocker", func(jctx context.Context) error {
			started.Add(1)
			select {
			case <-jctx.Done():
				return jctx.Err()
			case <-release:
				finished.Add(1)
				return nil
			}
		})
	}
	// Wait for the first workersN jobs to occupy the pool, then pull the
	// plug on the whole group from outside.
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() < workersN {
		if time.Now().After(deadline) {
			t.Fatal("workers never started")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()

	done := make(chan struct{})
	var stats []Stat
	var err error
	go func() {
		stats, err = g.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not return after cancellation: the pool ran the whole batch")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait returned %v, want context.Canceled", err)
	}
	if got := started.Load(); got != workersN {
		t.Errorf("%d jobs started, want exactly the %d in flight at cancel time", got, workersN)
	}
	if finished.Load() != 0 {
		t.Errorf("%d jobs ran to completion after cancel", finished.Load())
	}
	for i, st := range stats {
		if st.Err == nil {
			t.Errorf("job %d reported success after cancellation", i)
		}
	}
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(2)
	if Workers() != 2 {
		t.Fatalf("Workers() = %d after SetWorkers(2)", Workers())
	}
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS", Workers())
	}
}

func TestTelemetryCapture(t *testing.T) {
	CaptureTelemetry(true)
	defer CaptureTelemetry(false)
	g := NewWithWorkers(context.Background(), 2)
	g.Go("alpha", func(context.Context) error { return nil })
	g.Go("beta", func(context.Context) error { return nil })
	if _, err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	tel := Telemetry()
	if len(tel) != 2 || tel[0].Label != "alpha" || tel[1].Label != "beta" {
		t.Fatalf("telemetry = %+v", tel)
	}
}

func TestRunHelper(t *testing.T) {
	out := make([]int, 16)
	err := Run(context.Background(), len(out), nil, func(_ context.Context, i int) error {
		out[i] = i + 1
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// spin burns CPU for roughly d without sleeping, so the speedup
// benchmark measures genuine parallel execution.
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 0
	for time.Now().Before(deadline) {
		for i := 0; i < 1000; i++ {
			x += i
		}
	}
	_ = x
}

// BenchmarkGroupSpeedup runs a fixed set of CPU-bound jobs serially
// (one worker) and on all cores, reporting the wall-time ratio. On a
// machine with ≥4 cores the x-speedup metric demonstrates the ≥2×
// reduction the parallel harness buys; on one core it reports ~1.
func BenchmarkGroupSpeedup(b *testing.B) {
	const jobs = 8
	const work = 3 * time.Millisecond
	run := func(workersN int) time.Duration {
		start := time.Now()
		g := NewWithWorkers(context.Background(), workersN)
		for i := 0; i < jobs; i++ {
			g.Go("spin", func(context.Context) error { spin(work); return nil })
		}
		if _, err := g.Wait(); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		serial := run(1)
		parallel := run(runtime.GOMAXPROCS(0))
		speedup = serial.Seconds() / parallel.Seconds()
	}
	b.ReportMetric(speedup, "x-speedup")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
}
