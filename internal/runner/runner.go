// Package runner schedules the experiment harness's independent jobs —
// policy pairs, ablation arms, sequential-sweep size points — across a
// bounded worker pool. Every simulation in this repository is a pure
// function of its inputs, so arms may execute in any order and on any
// number of workers without changing a single reported number; the
// Group guarantees it by collecting results in submission order and
// surfacing the lowest-submitted error, independent of completion
// order. cmd/repro's -j flag sets the process-wide worker bound.
//
// Each job records wall-clock telemetry (and an approximate allocation
// figure); when capture is enabled (repro does so at startup) finished
// groups append their stats to a process-wide log that the timing
// footer prints.
package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ffsage/internal/obs"
)

// workers is the process-wide worker bound; 0 means GOMAXPROCS.
var workers atomic.Int64

// SetWorkers sets the process-wide worker bound for subsequently
// created Groups (cmd/repro's -j). n <= 0 restores the default.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers returns the current worker bound.
func Workers() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Stat is one finished job's telemetry. It is the obs registry's job
// record: the process-wide log lives in obs.Default, so commands that
// snapshot metrics and commands that print the timing footer read from
// one place. Wall-clock stats stay out of metrics snapshots by
// construction (obs.Registry.WriteMetrics excludes jobs).
type Stat = obs.JobStat

// CaptureTelemetry enables (or disables) the process-wide telemetry
// log and clears it. While disabled — the default — Wait discards
// job stats after returning them, so long-running test processes do
// not accumulate history.
func CaptureTelemetry(on bool) { obs.Default.CaptureJobs(on) }

// Telemetry returns a copy of the captured job stats, in the order the
// groups finished and, within a group, in submission order.
func Telemetry() []Stat { return obs.Default.Jobs() }

// Group runs jobs on a bounded worker pool. Submit with Go, then call
// Wait exactly once. The zero value is unusable; construct with New.
//
// Nested groups (a job that itself creates a Group) each get their own
// worker bound rather than sharing one global pool: a shared pool
// would deadlock when every outer job held a slot while waiting for
// inner jobs, so the harness accepts bounded oversubscription instead.
type Group struct {
	ctx     context.Context
	cancel  context.CancelFunc
	sem     chan struct{}
	wg      sync.WaitGroup
	mu      sync.Mutex
	stats   []Stat
	nextIdx int
}

// New returns a Group bounded by the process-wide worker count whose
// jobs observe ctx (nil means Background). The first job error cancels
// the group's context, so queued jobs that honour it are skipped.
func New(ctx context.Context) *Group { return NewWithWorkers(ctx, Workers()) }

// NewWithWorkers returns a Group with an explicit worker bound
// (n <= 0 means the process-wide count).
func NewWithWorkers(ctx context.Context, n int) *Group {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		n = Workers()
	}
	gctx, cancel := context.WithCancel(ctx)
	return &Group{ctx: gctx, cancel: cancel, sem: make(chan struct{}, n)}
}

// Go submits one job. fn runs on some worker once a slot frees up; if
// the group was cancelled first (an earlier job failed), fn is skipped
// and the job records the cancellation error. Results belong in
// caller-owned slots captured by the closure — the Group only carries
// errors and telemetry — which is what makes result ordering
// independent of completion order.
func (g *Group) Go(label string, fn func(context.Context) error) {
	g.mu.Lock()
	idx := g.nextIdx
	g.nextIdx++
	g.stats = append(g.stats, Stat{Label: label})
	g.mu.Unlock()

	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		g.sem <- struct{}{}
		defer func() { <-g.sem }()

		var st Stat
		st.Label = label
		if err := g.ctx.Err(); err != nil {
			st.Err = err
		} else {
			var m0 runtime.MemStats
			runtime.ReadMemStats(&m0)
			start := time.Now()
			st.Err = fn(g.ctx)
			st.Wall = time.Since(start)
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			st.AllocBytes = m1.TotalAlloc - m0.TotalAlloc
		}
		g.mu.Lock()
		g.stats[idx] = st
		g.mu.Unlock()
		if st.Err != nil {
			g.cancel()
		}
	}()
}

// Wait blocks until every submitted job finished (or was skipped),
// then returns the per-job stats in submission order and the error of
// the lowest-submitted failed job — a deterministic choice no matter
// which job failed first on the clock. Skipped-job cancellation errors
// are only reported when no real error exists.
func (g *Group) Wait() ([]Stat, error) {
	g.wg.Wait()
	g.cancel()
	var firstErr error
	var firstCancel error
	for _, st := range g.stats {
		if st.Err == nil {
			continue
		}
		if st.Err == context.Canceled && st.Wall == 0 {
			if firstCancel == nil {
				firstCancel = st.Err
			}
			continue
		}
		firstErr = st.Err
		break
	}
	if firstErr == nil {
		firstErr = firstCancel
	}
	obs.Default.AppendJobs(g.stats)
	publishOps(g.stats)
	return g.stats, firstErr
}

// runnerSecondsBounds buckets job wall time from milliseconds to
// minutes — wide enough for both sweep points and whole aging runs.
var runnerSecondsBounds = []float64{0.001, 0.01, 0.1, 1, 10, 60, 600}

// publishOps records finished jobs' wall-clock telemetry in the
// process-wide operational registry (obs.Ops()), where the daemon's
// /metrics endpoint reads it. This is the one place runner touches
// wall-time metrics; the deterministic registry never sees them.
func publishOps(stats []Stat) {
	ops := obs.Ops()
	done := ops.Counter("runner_jobs_total")
	failed := ops.Counter("runner_jobs_failed_total")
	h := ops.Histogram("runner_job_seconds", runnerSecondsBounds)
	for _, st := range stats {
		done.Inc()
		if st.Err != nil {
			failed.Inc()
		}
		s := st.Wall.Seconds()
		h.Observe(s, s)
	}
}

// Run is the common fan-out: invoke fn(i) for i in [0, n) on the pool
// and return the first error (by submission order). label names job i
// for telemetry; nil labels jobs "job".
func Run(ctx context.Context, n int, label func(i int) string, fn func(ctx context.Context, i int) error) error {
	g := New(ctx)
	for i := 0; i < n; i++ {
		name := "job"
		if label != nil {
			name = label(i)
		}
		i := i
		g.Go(name, func(ctx context.Context) error { return fn(ctx, i) })
	}
	_, err := g.Wait()
	return err
}
