package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanHierarchyAndIDs(t *testing.T) {
	r := NewRegistry()
	tr := r.Scope("x").SpanTracer("spans")
	root := tr.Start(0, "replay")
	day := tr.Start(0, "day", I("day", 1))
	op := tr.Start(0.25, "op", S("kind", "create"))
	tr.End(0.5)             // op
	tr.End(1)               // day
	tr.End(2, I("days", 2)) // replay, with a closing attr
	if d := tr.OpenDepth(); d != 0 {
		t.Fatalf("OpenDepth = %d after balanced start/end", d)
	}
	sps := tr.Spans()
	if len(sps) != 3 {
		t.Fatalf("got %d spans", len(sps))
	}
	// Recorded in End order: op, day, replay.
	if sps[0].Name != "op" || sps[0].ID != op || sps[0].Parent != day {
		t.Errorf("op span = %+v", sps[0])
	}
	if sps[1].Name != "day" || sps[1].ID != day || sps[1].Parent != root {
		t.Errorf("day span = %+v", sps[1])
	}
	if sps[2].Name != "replay" || sps[2].ID != root || sps[2].Parent != 0 {
		t.Errorf("root span = %+v", sps[2])
	}
	if sps[2].Attrs[0].Key != "days" {
		t.Errorf("closing attr missing: %+v", sps[2].Attrs)
	}
	if sps[0].Start != 0.25 || sps[0].End != 0.5 {
		t.Errorf("op interval = [%v, %v]", sps[0].Start, sps[0].End)
	}
}

func TestSpanRingWraparoundAndDropped(t *testing.T) {
	r := NewRegistry()
	tr := r.SpanTracerCap("s", 3)
	for i := 0; i < 5; i++ {
		tr.Start(float64(i), "w", I("i", int64(i)))
		tr.End(float64(i) + 1)
	}
	if tr.Len() != 3 || tr.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 3/2", tr.Len(), tr.Dropped())
	}
	sps := tr.Spans()
	// Oldest retained span is the third emitted (ID 3); IDs stay
	// absolute across eviction.
	if sps[0].ID != 3 || sps[2].ID != 5 {
		t.Errorf("ring kept wrong window: %+v", sps)
	}
	if sps[0].Start != 2 || sps[2].End != 5 {
		t.Errorf("ring intervals wrong: %+v", sps)
	}
	var buf bytes.Buffer
	if err := r.WriteSpans(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), `{"stream":"s","header":"spans","spans":3,"dropped":2}`) {
		t.Errorf("missing spans header: %q", buf.String())
	}
}

func TestStrayEndIsNoOp(t *testing.T) {
	r := NewRegistry()
	tr := r.SpanTracer("s")
	tr.End(1)
	if tr.Len() != 0 || tr.OpenDepth() != 0 {
		t.Errorf("stray End recorded something: len=%d open=%d", tr.Len(), tr.OpenDepth())
	}
}

// TestWriteSpansValidJSONAndDeterministic decodes every line with the
// stock decoder and requires two identical emission sequences to render
// byte-identically.
func TestWriteSpansValidJSONAndDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		tr := r.SpanTracer("b.spans")
		tr.Start(0, "outer", S("s", "a\"b\\c\nd"))
		tr.Start(0.5, "inner", F("f", 0.125), B("ok", true))
		tr.End(1)
		tr.End(2, I("n", -7))
		r.SpanTracer("a.spans").Start(0, "solo")
		r.SpanTracer("a.spans").End(1)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteSpans(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteSpans(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("span dumps differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	// Streams sorted: a.spans first despite being created second.
	if !strings.Contains(lines[0], `"stream":"a.spans"`) {
		t.Errorf("streams not sorted: %q", lines[0])
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSON %q: %v", line, err)
		}
	}
}

// chromeTraceDoc mirrors the trace-event JSON schema (the subset the
// exporter emits): a complete ("X") event carries name, category,
// microsecond timestamp and duration, and pid/tid; a metadata ("M")
// event names a process or thread. DisallowUnknownFields in the test
// decoder means any stray key the exporter invents fails the test.
type chromeTraceDoc struct {
	DisplayTimeUnit string             `json:"displayTimeUnit"`
	TraceEvents     []chromeTraceEvent `json:"traceEvents"`
}

type chromeTraceEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat,omitempty"`
	Ph   string          `json:"ph"`
	Ts   *float64        `json:"ts,omitempty"`
	Dur  *float64        `json:"dur,omitempty"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Args json.RawMessage `json:"args,omitempty"`
}

// TestChromeTraceValidatesAgainstSchema exports a small hierarchy and
// validates the document against the trace-event schema: well-formed
// JSON, only known fields, required fields per phase, non-negative
// durations, and parentage riding in args.
func TestChromeTraceValidatesAgainstSchema(t *testing.T) {
	r := NewRegistry()
	tr := r.SpanTracer("job.spans")
	tr.Start(0, "replay", S("policy", "realloc"))
	tr.Start(0, "day", I("day", 1))
	tr.End(1)
	tr.End(2)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	var doc chromeTraceDoc
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("trace does not match schema: %v\n%s", err, buf.String())
	}
	var complete, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Name == "" || ev.Cat == "" || ev.Ts == nil || ev.Dur == nil {
				t.Errorf("complete event missing required fields: %+v", ev)
			}
			if ev.Dur != nil && *ev.Dur < 0 {
				t.Errorf("negative duration: %+v", ev)
			}
			var args struct {
				ID     int64           `json:"id"`
				Parent int64           `json:"parent"`
				Extra  json.RawMessage `json:"-"`
			}
			if err := json.Unmarshal(ev.Args, &args); err != nil {
				t.Errorf("args not an object: %v", err)
			}
			if args.ID == 0 {
				t.Errorf("complete event without span id: %s", ev.Args)
			}
		case "M":
			meta++
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				t.Errorf("unknown metadata event %q", ev.Name)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != 2 {
		t.Errorf("%d complete events, want 2", complete)
	}
	if meta != 2 { // process_name + one thread_name
		t.Errorf("%d metadata events, want 2", meta)
	}
	// The day span (ended first) must come before its parent and carry
	// the scaled timestamps: day [0,1] → ts 0, dur 1e6.
	first := doc.TraceEvents[2]
	if first.Name != "day" || *first.Ts != 0 || *first.Dur != 1e6 {
		t.Errorf("first complete event = %+v", first)
	}
}

// TestSpanEmitSteadyStateAllocs is the in-package half of the span.emit
// perfbench budget: once the ring and open stack are warm, Start/End
// cycles must not allocate.
func TestSpanEmitSteadyStateAllocs(t *testing.T) {
	r := NewRegistry()
	tr := r.SpanTracerCap("s", 64)
	cycle := func() {
		tr.Start(0, "outer", I("a", 1), S("b", "x"))
		tr.Start(0.5, "inner", F("c", 2.5))
		tr.End(1, B("ok", true))
		tr.End(2)
	}
	for i := 0; i < 128; i++ { // warm ring, open stack, and attr backing
		cycle()
	}
	if n := testing.AllocsPerRun(100, cycle); n != 0 {
		t.Errorf("steady-state span emission allocates %v allocs/op, want 0", n)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`agesrv_http_requests_total{path="/jobs",code="200"}`).Add(3)
	r.Counter(`agesrv_http_requests_total{path="/jobs",code="429"}`).Add(1)
	r.Counter("agesrv_jobs_submitted_total").Add(4)
	r.Gauge("agesrv_queue_depth").Set(2)
	h := r.Histogram(`agesrv_http_request_seconds{path="/jobs"}`, []float64{0.01, 0.1})
	h.Observe(0.005, 0.005)
	h.Observe(0.05, 0.05)
	h.Observe(1, 1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `# TYPE agesrv_http_request_seconds histogram
agesrv_http_request_seconds_bucket{path="/jobs",le="0.01"} 1
agesrv_http_request_seconds_bucket{path="/jobs",le="0.1"} 2
agesrv_http_request_seconds_bucket{path="/jobs",le="+Inf"} 3
agesrv_http_request_seconds_sum{path="/jobs"} 1.055
agesrv_http_request_seconds_count{path="/jobs"} 3
# TYPE agesrv_http_requests_total counter
agesrv_http_requests_total{path="/jobs",code="200"} 3
agesrv_http_requests_total{path="/jobs",code="429"} 1
# TYPE agesrv_jobs_submitted_total counter
agesrv_jobs_submitted_total 4
# TYPE agesrv_queue_depth gauge
agesrv_queue_depth 2
`
	if got != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

// TestOpsIsSeparateFromDefault pins the registry split: writing
// operational telemetry must not leak into the deterministic registry.
func TestOpsIsSeparateFromDefault(t *testing.T) {
	if Ops() == Default {
		t.Fatal("Ops() and Default are the same registry")
	}
	Ops().Counter("split_check_total").Inc()
	if _, found := Default.CounterValue("split_check_total"); found {
		t.Error("operational counter visible in Default")
	}
}
