package obs

// ops is the process-wide operational registry, split off from Default
// on purpose: Default carries the deterministic, simulated-time domain
// (what WriteMetrics / WriteEvents / WriteSpans snapshot), while ops
// carries wall-clock serving telemetry — request latencies, queue
// depths, retry counts — that legitimately differs run to run. The two
// must never mix: nothing reachable from a checkpoint, image, or
// resume-safe publish path may touch ops, a reachability property the
// ffsvet snapshotpure analyzer enforces by listing Ops as a sink.
var ops = NewRegistry()

// Ops returns the process-wide operational registry. Serving paths (the
// jobs HTTP layer, the runner's wall telemetry) write here and the
// Prometheus exposition endpoint reads it; deterministic snapshot code
// must not.
func Ops() *Registry { return ops }
