package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"unicode/utf8"
)

// DefaultRingCap is the per-stream event capacity when none is given:
// large enough to hold every per-day event of a paper-scale run, small
// enough that a runaway per-operation instrument cannot exhaust memory.
const DefaultRingCap = 4096

// Attr is one typed event attribute. Attributes are an ordered list,
// not a map, so encoded events are byte-identical run to run.
type Attr struct {
	Key   string
	Value attrValue
}

// attrValue is the closed set of attribute payloads.
type attrValue struct {
	kind byte // 'i', 'f', 's', 'b'
	i    int64
	f    float64
	s    string
	b    bool
}

// I returns an int64 attribute.
func I(key string, v int64) Attr { return Attr{key, attrValue{kind: 'i', i: v}} }

// F returns a float64 attribute.
func F(key string, v float64) Attr { return Attr{key, attrValue{kind: 'f', f: v}} }

// S returns a string attribute.
func S(key, v string) Attr { return Attr{key, attrValue{kind: 's', s: v}} }

// B returns a bool attribute.
func B(key string, v bool) Attr { return Attr{key, attrValue{kind: 'b', b: v}} }

// Event is one traced occurrence at a point in simulated time. The
// unit of T is the stream's choice (the aging streams use days); it is
// never wall-clock.
type Event struct {
	Seq   int64 // position in the stream, counting from 0, drops included
	T     float64
	Name  string
	Attrs []Attr
}

// Tracer is one bounded event stream: a ring buffer that keeps the
// most recent cap events and counts what it dropped. Streams follow
// the same single-writer convention as float metrics; emitting is
// nevertheless mutex-guarded so a misbehaving caller corrupts nothing.
type Tracer struct {
	name string

	mu      sync.Mutex
	cap     int
	seq     int64
	dropped int64
	ring    []Event
	start   int // index of the oldest event in ring once full
}

// Tracer returns (creating if needed) the named event stream with the
// default ring capacity.
func (r *Registry) Tracer(name string) *Tracer { return r.TracerCap(name, DefaultRingCap) }

// TracerCap is Tracer with an explicit ring capacity for new streams;
// an existing stream keeps its capacity.
func (r *Registry) TracerCap(name string, cap int) *Tracer {
	if cap < 1 {
		cap = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tracers[name]
	if t == nil {
		t = &Tracer{name: name, cap: cap}
		r.tracers[name] = t
	}
	return t
}

// Name returns the stream name.
func (t *Tracer) Name() string { return t.name }

// Emit appends an event at simulated time simT.
func (t *Tracer) Emit(simT float64, name string, attrs ...Attr) {
	t.mu.Lock()
	ev := Event{Seq: t.seq, T: simT, Name: name, Attrs: attrs}
	t.seq++
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.start] = ev
		t.start = (t.start + 1) % t.cap
		t.dropped++
	}
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Dropped returns how many events the ring has evicted.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.start:]...)
	out = append(out, t.ring[:t.start]...)
	return out
}

// WriteEvents writes every stream's buffered events as JSONL: streams
// in sorted name order, each led by one header record carrying the
// stream's retained and dropped counts, then its events oldest first
// with attributes in emission order. The header makes a ring-truncated
// trace detectable — dropped is the exact eviction count, never
// silently omitted.
func (r *Registry) WriteEvents(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.tracers))
	for name := range r.tracers {
		names = append(names, name)
	}
	byName := make(map[string]*Tracer, len(r.tracers))
	for name, t := range r.tracers {
		byName[name] = t
	}
	r.mu.Unlock()
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		t := byName[name]
		fmt.Fprintf(bw, `{"stream":%s,"header":"events","events":%d,"dropped":%d}`+"\n",
			jsonString(name), t.Len(), t.Dropped())
		for _, ev := range t.Events() {
			writeEventJSON(bw, name, ev)
		}
	}
	return bw.Flush()
}

// AppendEventJSON writes ev as the same one-line JSONL record
// WriteEvents emits — the hook incremental consumers (the aging
// daemon's follow-mode event stream) use to ship events one at a time
// without snapshotting the whole registry.
func AppendEventJSON(w io.Writer, stream string, ev Event) error {
	bw := bufio.NewWriter(w)
	writeEventJSON(bw, stream, ev)
	return bw.Flush()
}

func writeEventJSON(w *bufio.Writer, stream string, ev Event) {
	fmt.Fprintf(w, `{"stream":%s,"seq":%d,"t":%s,"event":%s`,
		jsonString(stream), ev.Seq, formatFloat(ev.T), jsonString(ev.Name))
	for _, a := range ev.Attrs {
		w.WriteByte(',')
		w.WriteString(jsonString(a.Key))
		w.WriteByte(':')
		switch a.Value.kind {
		case 'i':
			w.WriteString(strconv.FormatInt(a.Value.i, 10))
		case 'f':
			w.WriteString(formatFloat(a.Value.f))
		case 's':
			w.WriteString(jsonString(a.Value.s))
		case 'b':
			w.WriteString(strconv.FormatBool(a.Value.b))
		}
	}
	w.WriteString("}\n")
}

// jsonString renders s as a JSON string literal. Only the escapes JSON
// requires are applied, so output is stable and minimal.
func jsonString(s string) string {
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for _, r := range s {
		switch {
		case r == '"':
			out = append(out, '\\', '"')
		case r == '\\':
			out = append(out, '\\', '\\')
		case r == '\n':
			out = append(out, '\\', 'n')
		case r == '\t':
			out = append(out, '\\', 't')
		case r == '\r':
			out = append(out, '\\', 'r')
		case r < 0x20:
			out = append(out, fmt.Sprintf(`\u%04x`, r)...)
		default:
			var buf [utf8.UTFMax]byte
			n := utf8.EncodeRune(buf[:], r)
			out = append(out, buf[:n]...)
		}
	}
	return string(append(out, '"'))
}
