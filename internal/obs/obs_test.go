package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := r.Counter("a.count").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("a.gauge")
	g.Set(1.5)
	g.Set(-2.25)
	if got := r.Gauge("a.gauge").Value(); got != -2.25 {
		t.Errorf("gauge = %v, want -2.25", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 20})
	if h.NumBuckets() != 3 {
		t.Fatalf("NumBuckets = %d", h.NumBuckets())
	}
	h.Observe(5, 0.5)   // bucket 0 (≤10)
	h.Observe(10, 1.0)  // bucket 0 (inclusive upper bound)
	h.Observe(15, 2.0)  // bucket 1
	h.Observe(100, 4.0) // +Inf bucket
	if n, s := h.Bucket(0); n != 2 || s != 1.5 {
		t.Errorf("bucket 0 = (%d, %v), want (2, 1.5)", n, s)
	}
	if n, s := h.Bucket(2); n != 1 || s != 4.0 {
		t.Errorf("bucket 2 = (%d, %v), want (1, 4)", n, s)
	}
	if h.Count() != 4 || h.Sum() != 7.5 {
		t.Errorf("totals = (%d, %v), want (4, 7.5)", h.Count(), h.Sum())
	}
	h.AddBucket(1, 3, 0.25)
	if n, s := h.Bucket(1); n != 4 || s != 2.25 {
		t.Errorf("after AddBucket: bucket 1 = (%d, %v)", n, s)
	}
}

func TestScopePrefixing(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope("aging").Scope("age-ffs")
	sc.Counter("ops").Add(7)
	if got := r.Counter("aging.age-ffs.ops").Value(); got != 7 {
		t.Errorf("scoped counter = %d, want 7", got)
	}
	sc.Tracer("days").Emit(1, "day")
	var buf bytes.Buffer
	if err := r.WriteEvents(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"stream":"aging.age-ffs.days"`) {
		t.Errorf("events missing scoped stream: %q", buf.String())
	}
}

func TestWriteMetricsSortedAndStable(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Insertion order deliberately scrambled relative to name order.
		r.Gauge("z.final").Set(0.5)
		r.Counter("a.count").Add(3)
		r.Histogram("m.hist", []float64{1, 2}).Observe(1.5, 0.125)
		r.Counter("b.count").Add(1)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("snapshots differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	want := `# ffsage metrics snapshot v1
counter a.count 3
counter b.count 1
hist m.hist le=1 count=0 sum=0
hist m.hist le=2 count=1 sum=0.125
hist m.hist le=+Inf count=0 sum=0
hist m.hist total count=1 sum=0.125
gauge z.final 0.5
`
	if a.String() != want {
		t.Errorf("snapshot:\n%s\nwant:\n%s", a.String(), want)
	}
}

func TestTracerRingDropsOldest(t *testing.T) {
	r := NewRegistry()
	tr := r.TracerCap("s", 3)
	for i := 0; i < 5; i++ {
		tr.Emit(float64(i), "e", I("i", int64(i)))
	}
	if tr.Len() != 3 || tr.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	evs := tr.Events()
	if evs[0].T != 2 || evs[2].T != 4 {
		t.Errorf("ring kept wrong window: %+v", evs)
	}
	if evs[0].Seq != 2 || evs[2].Seq != 4 {
		t.Errorf("seq not absolute: %+v", evs)
	}
	var buf bytes.Buffer
	if err := r.WriteEvents(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `{"stream":"s","header":"events","events":3,"dropped":2}`) {
		t.Errorf("missing header record with drop count: %q", buf.String())
	}
}

// TestEventsHeaderAlwaysPresent pins the satellite contract: every
// stream's JSONL dump leads with a header line even when nothing was
// dropped, so consumers can always distinguish "complete" from
// "truncated" without guessing.
func TestEventsHeaderAlwaysPresent(t *testing.T) {
	r := NewRegistry()
	r.Tracer("clean").Emit(1, "e")
	var buf bytes.Buffer
	if err := r.WriteEvents(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), `{"stream":"clean","header":"events","events":1,"dropped":0}`) {
		t.Errorf("missing zero-drop header: %q", buf.String())
	}
}

// TestEventsAreValidJSON decodes every emitted line with the stock
// decoder, pinning the hand-rolled encoder to real JSON.
func TestEventsAreValidJSON(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer("json")
	tr.Emit(1.5, "weird", S("s", "a\"b\\c\nd\tߜ"), I("n", -3), F("f", 0.1), B("ok", true))
	var buf bytes.Buffer
	if err := r.WriteEvents(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSON %q: %v", line, err)
		}
		if m["header"] != nil {
			continue
		}
		if m["s"] != "a\"b\\c\nd\tߜ" {
			t.Errorf("string attr round-trip: %q", m["s"])
		}
	}
}

func TestJobCapture(t *testing.T) {
	r := NewRegistry()
	r.AppendJobs([]JobStat{{Label: "ignored"}})
	if len(r.Jobs()) != 0 {
		t.Error("jobs captured while disabled")
	}
	r.CaptureJobs(true)
	r.AppendJobs([]JobStat{
		{Label: "a", Wall: time.Second},
		{Label: "b", Err: errors.New("boom")},
	})
	jobs := r.Jobs()
	if len(jobs) != 2 || jobs[0].Label != "a" || jobs[1].Err == nil {
		t.Errorf("jobs = %+v", jobs)
	}
	// Job telemetry must never reach the metrics snapshot.
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "a") && strings.Contains(buf.String(), "boom") {
		t.Errorf("job telemetry leaked into metrics: %q", buf.String())
	}
	r.CaptureJobs(false)
	if len(r.Jobs()) != 0 {
		t.Error("CaptureJobs(false) did not clear")
	}
}
