// Package obs is the simulator's observability core: a deterministic
// metrics registry (counters, gauges, fixed-bucket weighted histograms)
// and a structured event tracer ([Tracer], in events.go) keyed on
// simulated time. Everything here is zero-dependency and deliberately
// free of wall-clock reads in the metric path, so two runs of the same
// simulation — on any worker count, interrupted and resumed or not —
// produce byte-identical snapshots. The one wall-clock-adjacent corner,
// the job-telemetry log the runner feeds ([Registry.AppendJobs]), is
// kept out of the snapshot entirely: it backs the stdout-only timing
// footer and never reaches a metrics or events file.
//
// Determinism contract:
//
//   - Snapshot iteration is sorted (name, then kind), never map order.
//   - Counter increments are commutative, so concurrent writers are
//     safe. Float accumulation (gauges, histogram weights) is NOT
//     order-independent; by convention each float-bearing metric has a
//     single writer — instruments scope metric names per simulation
//     arm — and publishing happens sequentially after the parallel
//     phase, in submission order.
//   - Values are formatted with strconv's shortest round-trip form, so
//     equal float64 values always print identically.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins float64 metric. Writers must be
// deterministic (a single goroutine, or a value that does not depend on
// scheduling) for snapshots to stay byte-identical.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket weighted histogram: observations are
// bucketed by their x value (upper-bound inclusive, with an implicit
// +Inf bucket last) and each bucket accumulates a count and a weight
// sum. With weight 1 it is an ordinary histogram; the disk layer uses
// the weights to attribute seconds to request-size classes, which is
// what lets bucket sums reconcile exactly with aggregate totals.
type Histogram struct {
	bounds []float64
	mu     sync.Mutex
	counts []int64
	sums   []float64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]int64, len(b)+1),
		sums:   make([]float64, len(b)+1),
	}
}

// NumBuckets returns the bucket count (len(bounds)+1 for +Inf).
func (h *Histogram) NumBuckets() int { return len(h.bounds) + 1 }

// BucketIndex returns the bucket x falls into.
func (h *Histogram) BucketIndex(x float64) int {
	for i, ub := range h.bounds {
		if x <= ub {
			return i
		}
	}
	return len(h.bounds)
}

// Observe records one observation at x with weight w.
func (h *Histogram) Observe(x, w float64) { h.AddBucket(h.BucketIndex(x), 1, w) }

// AddBucket adds count observations totalling weight w directly to
// bucket i — the path instruments use to publish pre-bucketed
// attribution matrices without re-deriving x values.
func (h *Histogram) AddBucket(i int, count int64, w float64) {
	h.mu.Lock()
	h.counts[i] += count
	h.sums[i] += w
	h.mu.Unlock()
}

// Bucket returns bucket i's count and weight sum.
func (h *Histogram) Bucket(i int) (count int64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.counts[i], h.sums[i]
}

// Count returns the total observation count.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var n int64
	for _, c := range h.counts {
		n += c
	}
	return n
}

// Sum returns the total weight, accumulated in bucket order — the same
// fixed order every run, so the value is deterministic.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var s float64
	for _, w := range h.sums {
		s += w
	}
	return s
}

// Registry holds named metrics and event tracers. The zero value is
// not usable; construct with NewRegistry. All methods are safe for
// concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	tracers  map[string]*Tracer
	spans    map[string]*SpanTracer

	jobsMu sync.Mutex
	jobsOn bool
	jobs   []JobStat
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		tracers:  map[string]*Tracer{},
		spans:    map[string]*SpanTracer{},
	}
}

// Default is the process-wide registry the commands publish into.
var Default = NewRegistry()

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// CounterValue returns the named counter's current value without
// creating it. It is the read-only probe consumers like
// internal/perfbench use to derive throughput metrics (ops/s, MB/s)
// from counters an instrumented run already published, instead of
// re-measuring the quantities themselves.
func (r *Registry) CounterValue(name string) (int64, bool) {
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	if c == nil {
		return 0, false
	}
	return c.Value(), true
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given bucket upper bounds. The bounds of an existing histogram win;
// callers are expected to use one bound set per name.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Scope returns a view of the registry that prefixes every metric and
// stream name with prefix + ".".
func (r *Registry) Scope(prefix string) *Scope { return &Scope{r: r, prefix: prefix} }

// Scope is a name-prefixed view of a Registry. Scoping is the
// convention that gives every float-bearing metric a single writer:
// each simulation arm publishes under its own prefix.
type Scope struct {
	r      *Registry
	prefix string
}

// Registry returns the underlying registry.
func (s *Scope) Registry() *Registry { return s.r }

// Scope returns a sub-scope.
func (s *Scope) Scope(sub string) *Scope { return &Scope{r: s.r, prefix: s.full(sub)} }

func (s *Scope) full(name string) string {
	if s.prefix == "" {
		return name
	}
	return s.prefix + "." + name
}

// Counter returns the scoped counter.
func (s *Scope) Counter(name string) *Counter { return s.r.Counter(s.full(name)) }

// Gauge returns the scoped gauge.
func (s *Scope) Gauge(name string) *Gauge { return s.r.Gauge(s.full(name)) }

// Histogram returns the scoped histogram.
func (s *Scope) Histogram(name string, bounds []float64) *Histogram {
	return s.r.Histogram(s.full(name), bounds)
}

// Tracer returns the scoped event stream.
func (s *Scope) Tracer(name string) *Tracer { return s.r.Tracer(s.full(name)) }

// TracerCap returns the scoped tracer with an explicit ring capacity.
func (s *Scope) TracerCap(name string, cap int) *Tracer { return s.r.TracerCap(s.full(name), cap) }

// formatFloat renders v in the shortest form that round-trips, the
// snapshot's canonical float syntax.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// snapshotLine is one rendered metric plus its sort key.
type snapshotLine struct {
	name, kind string
	lines      []string
}

// WriteMetrics writes the deterministic text snapshot: one block per
// metric, sorted by name then kind; histogram buckets appear in bucket
// order inside their block. Job telemetry (wall-clock domain) is
// excluded by design.
func (r *Registry) WriteMetrics(w io.Writer) error {
	r.mu.Lock()
	entries := make([]snapshotLine, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		entries = append(entries, snapshotLine{name, "counter",
			[]string{fmt.Sprintf("counter %s %d", name, c.Value())}})
	}
	for name, g := range r.gauges {
		entries = append(entries, snapshotLine{name, "gauge",
			[]string{fmt.Sprintf("gauge %s %s", name, formatFloat(g.Value()))}})
	}
	for name, h := range r.hists {
		var lines []string
		h.mu.Lock()
		for i := range h.counts {
			ub := "+Inf"
			if i < len(h.bounds) {
				ub = formatFloat(h.bounds[i])
			}
			lines = append(lines, fmt.Sprintf("hist %s le=%s count=%d sum=%s",
				name, ub, h.counts[i], formatFloat(h.sums[i])))
		}
		h.mu.Unlock()
		lines = append(lines, fmt.Sprintf("hist %s total count=%d sum=%s",
			name, h.Count(), formatFloat(h.Sum())))
		entries = append(entries, snapshotLine{name, "hist", lines})
	}
	r.mu.Unlock()

	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].kind < entries[j].kind
	})
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# ffsage metrics snapshot v1")
	for _, e := range entries {
		for _, l := range e.lines {
			fmt.Fprintln(bw, l)
		}
	}
	return bw.Flush()
}

// JobStat is one finished runner job's wall-clock telemetry. It lives
// here so the runner's capture state and the metrics registry share one
// snapshot path, but it is never part of WriteMetrics: wall-clock
// readings differ run to run and belong to the stdout footer only.
type JobStat struct {
	Label string
	Wall  time.Duration
	// AllocBytes is the process-wide heap allocation delta observed
	// while the job ran. With concurrent jobs it includes their
	// allocations too, so read it as an upper bound.
	AllocBytes uint64
	Err        error
}

// CaptureJobs enables (or disables) the job-telemetry log and clears
// it. While disabled — the default — AppendJobs discards its input, so
// long-running test processes do not accumulate history.
func (r *Registry) CaptureJobs(on bool) {
	r.jobsMu.Lock()
	defer r.jobsMu.Unlock()
	r.jobsOn = on
	r.jobs = nil
}

// AppendJobs appends finished-job stats in the order given (the
// runner's submission order), preserving that order in Jobs.
func (r *Registry) AppendJobs(stats []JobStat) {
	r.jobsMu.Lock()
	defer r.jobsMu.Unlock()
	if r.jobsOn {
		r.jobs = append(r.jobs, stats...)
	}
}

// Jobs returns a copy of the captured job telemetry.
func (r *Registry) Jobs() []JobStat {
	r.jobsMu.Lock()
	defer r.jobsMu.Unlock()
	return append([]JobStat(nil), r.jobs...)
}
