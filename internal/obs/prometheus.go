package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). It is the serving-side sibling of
// WriteMetrics, meant for the operational registry behind GET /metrics;
// nothing stops it rendering a deterministic registry, but exposition
// conventions (cumulative buckets, _total suffixes) are tuned for
// scrapers, not for byte-diffing.
//
// Metric names may carry a label set in curly braces, e.g.
//
//	agesrv_http_requests_total{path="/jobs",code="200"}
//
// the renderer splits the name at the first brace, groups series by
// base name under one # TYPE line, and emits them in sorted order.
// Characters outside [a-zA-Z0-9_:] in the base name become underscores.
// Histograms are exported with cumulative bucket counts; by convention
// their writers observe with weight == value (Observe(x, x)), so the
// exported _sum is the total of observed values as Prometheus expects.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type series struct {
		base, labels, kind string
		render             func(bw *bufio.Writer, base, labels string)
	}
	var all []series
	add := func(name, kind string, render func(bw *bufio.Writer, base, labels string)) {
		base, labels := splitLabels(name)
		all = append(all, series{promName(base), labels, kind, render})
	}

	r.mu.Lock()
	for _, name := range sortedNames(r.counters) {
		v := r.counters[name].Value()
		add(name, "counter", func(bw *bufio.Writer, base, labels string) {
			fmt.Fprintf(bw, "%s%s %d\n", base, labels, v)
		})
	}
	for _, name := range sortedNames(r.gauges) {
		v := r.gauges[name].Value()
		add(name, "gauge", func(bw *bufio.Writer, base, labels string) {
			fmt.Fprintf(bw, "%s%s %s\n", base, labels, formatFloat(v))
		})
	}
	for _, name := range sortedNames(r.hists) {
		h := r.hists[name]
		h.mu.Lock()
		bounds := append([]float64(nil), h.bounds...)
		counts := append([]int64(nil), h.counts...)
		sums := append([]float64(nil), h.sums...)
		h.mu.Unlock()
		add(name, "histogram", func(bw *bufio.Writer, base, labels string) {
			var cum int64
			var sum float64
			for i, c := range counts {
				cum += c
				sum += sums[i]
				ub := "+Inf"
				if i < len(bounds) {
					ub = formatFloat(bounds[i])
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", base, withLabel(labels, "le", ub), cum)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", base, labels, formatFloat(sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", base, labels, cum)
		})
	}
	r.mu.Unlock()

	sort.Slice(all, func(i, j int) bool {
		if all[i].base != all[j].base {
			return all[i].base < all[j].base
		}
		return all[i].labels < all[j].labels
	})
	bw := bufio.NewWriter(w)
	lastBase := ""
	for _, s := range all {
		if s.base != lastBase {
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.base, s.kind)
			lastBase = s.base
		}
		s.render(bw, s.base, s.labels)
	}
	return bw.Flush()
}

// sortedNames returns a map's keys in sorted order, so series creation
// (and with it closure evaluation order) never follows map iteration.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// splitLabels separates "name{a=\"b\"}" into name and its brace suffix.
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// withLabel inserts one more label pair into an existing (possibly
// empty) label set.
func withLabel(labels, key, val string) string {
	pair := fmt.Sprintf("%s=%q", key, val)
	if labels == "" {
		return "{" + pair + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + pair + "}"
}

// promName maps a metric name onto the Prometheus identifier charset.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
