package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// SpanID identifies a span within its stream. IDs are assigned
// sequentially from 1 in Start order, so they are deterministic for any
// deterministic emission sequence; 0 means "no parent" (a root span).
type SpanID int64

// Span is one completed interval of simulated time. Like Event.T, the
// unit of Start/End is the stream's choice (the aging streams use days,
// the disk streams seconds); it is never wall-clock. Parent links spans
// into a hierarchy: a span started while another span of the same
// stream was open becomes its child.
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Start  float64
	End    float64
	Attrs  []Attr
}

// SpanTracer is one bounded stream of hierarchical spans: Start pushes
// an open span (child of the innermost still-open one), End closes the
// innermost and records it in a ring that keeps the most recent cap
// completed spans, counting evictions exactly like Tracer. Spans are
// recorded in End order — the deterministic emission order — and a
// retained span may reference a parent the ring has since evicted;
// Dropped says how many are missing.
//
// Start and End reuse the ring's and the open stack's attribute
// storage, so steady-state emission allocates nothing — the property
// the span.emit benchmark pins.
type SpanTracer struct {
	name string

	mu      sync.Mutex
	cap     int
	nextID  int64
	dropped int64
	ring    []Span
	start   int // index of the oldest span in ring once full
	open    []Span
}

// SpanTracer returns (creating if needed) the named span stream with
// the default ring capacity.
func (r *Registry) SpanTracer(name string) *SpanTracer { return r.SpanTracerCap(name, DefaultRingCap) }

// SpanTracerCap is SpanTracer with an explicit ring capacity for new
// streams; an existing stream keeps its capacity.
func (r *Registry) SpanTracerCap(name string, cap int) *SpanTracer {
	if cap < 1 {
		cap = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.spans[name]
	if t == nil {
		t = &SpanTracer{name: name, cap: cap}
		r.spans[name] = t
	}
	return t
}

// SpanTracer returns the scoped span stream.
func (s *Scope) SpanTracer(name string) *SpanTracer { return s.r.SpanTracer(s.full(name)) }

// SpanTracerCap returns the scoped span stream with an explicit ring
// capacity.
func (s *Scope) SpanTracerCap(name string, cap int) *SpanTracer {
	return s.r.SpanTracerCap(s.full(name), cap)
}

// Name returns the stream name.
func (t *SpanTracer) Name() string { return t.name }

// Start opens a span at simulated time simT, child of the innermost
// open span, and returns its ID.
func (t *SpanTracer) Start(simT float64, name string, attrs ...Attr) SpanID {
	t.mu.Lock()
	t.nextID++
	id := SpanID(t.nextID)
	var parent SpanID
	if n := len(t.open); n > 0 {
		parent = t.open[n-1].ID
	}
	// Reuse a popped slot's attribute storage instead of appending a
	// fresh Span value over it.
	if len(t.open) < cap(t.open) {
		t.open = t.open[:len(t.open)+1]
	} else {
		t.open = append(t.open, Span{})
	}
	sp := &t.open[len(t.open)-1]
	sp.ID, sp.Parent, sp.Name, sp.Start, sp.End = id, parent, name, simT, simT
	sp.Attrs = append(sp.Attrs[:0], attrs...)
	t.mu.Unlock()
	return id
}

// End closes the innermost open span at simT, appends any extra
// attributes, and records it. A stray End with no span open is a no-op.
func (t *SpanTracer) End(simT float64, attrs ...Attr) {
	t.mu.Lock()
	n := len(t.open)
	if n == 0 {
		t.mu.Unlock()
		return
	}
	sp := &t.open[n-1]
	sp.End = simT
	sp.Attrs = append(sp.Attrs, attrs...)
	t.record(sp)
	// Pop but keep the slot (and its Attrs backing) for the next Start.
	t.open = t.open[:n-1]
	t.mu.Unlock()
}

// record copies *sp into the ring, evicting the oldest span when full.
func (t *SpanTracer) record(sp *Span) {
	var dst *Span
	if len(t.ring) < t.cap {
		if len(t.ring) < cap(t.ring) {
			t.ring = t.ring[:len(t.ring)+1]
		} else {
			t.ring = append(t.ring, Span{})
		}
		dst = &t.ring[len(t.ring)-1]
	} else {
		dst = &t.ring[t.start]
		t.start = (t.start + 1) % t.cap
		t.dropped++
	}
	dst.ID, dst.Parent, dst.Name, dst.Start, dst.End = sp.ID, sp.Parent, sp.Name, sp.Start, sp.End
	dst.Attrs = append(dst.Attrs[:0], sp.Attrs...)
}

// Len returns the number of buffered completed spans.
func (t *SpanTracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// OpenDepth returns the number of started-but-unfinished spans.
func (t *SpanTracer) OpenDepth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.open)
}

// Dropped returns how many completed spans the ring has evicted.
func (t *SpanTracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns copies of the buffered spans, oldest first. The copies
// own their attribute slices, so callers may hold them across further
// emission.
func (t *SpanTracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	for _, src := range append(append([]Span(nil), t.ring[t.start:]...), t.ring[:t.start]...) {
		src.Attrs = append([]Attr(nil), src.Attrs...)
		out = append(out, src)
	}
	return out
}

// spanStreams returns the registry's span streams sorted by name.
func (r *Registry) spanStreams() []*SpanTracer {
	r.mu.Lock()
	ts := make([]*SpanTracer, 0, len(r.spans))
	for _, t := range r.spans {
		ts = append(ts, t)
	}
	r.mu.Unlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	return ts
}

// WriteSpans writes every span stream as JSONL: streams in sorted name
// order, each led by one header record carrying the stream's retained
// and dropped counts (so a ring-truncated trace is detectable, never
// silently short), then its spans oldest first. Output is deterministic
// for deterministic emission: same spans, same IDs, same bytes.
func (r *Registry) WriteSpans(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range r.spanStreams() {
		t.mu.Lock()
		fmt.Fprintf(bw, `{"stream":%s,"header":"spans","spans":%d,"dropped":%d}`+"\n",
			jsonString(t.name), len(t.ring), t.dropped)
		for i := 0; i < len(t.ring); i++ {
			writeSpanJSON(bw, t.name, &t.ring[(t.start+i)%len(t.ring)])
		}
		t.mu.Unlock()
	}
	return bw.Flush()
}

func writeSpanJSON(w *bufio.Writer, stream string, sp *Span) {
	fmt.Fprintf(w, `{"stream":%s,"id":%d,"parent":%d,"span":%s,"start":%s,"end":%s`,
		jsonString(stream), sp.ID, sp.Parent, jsonString(sp.Name),
		formatFloat(sp.Start), formatFloat(sp.End))
	for _, a := range sp.Attrs {
		w.WriteByte(',')
		w.WriteString(jsonString(a.Key))
		w.WriteByte(':')
		writeAttrValue(w, a.Value)
	}
	w.WriteString("}\n")
}

// WriteChromeTrace exports every span stream as one Chrome trace-event
// JSON document (the format chrome://tracing and Perfetto load): one
// complete ("X") event per span, one thread per stream, simulated time
// mapped microsecond-for-unit onto the trace clock. Span IDs, parent
// links, and attributes ride in args. Like WriteSpans the output is
// deterministic byte for byte.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	bw.WriteString("\n")
	bw.WriteString(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"ffsage"}}`)
	for tid, t := range r.spanStreams() {
		fmt.Fprintf(bw, ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":%s}}",
			tid+1, jsonString(t.name))
		t.mu.Lock()
		for i := 0; i < len(t.ring); i++ {
			sp := &t.ring[(t.start+i)%len(t.ring)]
			fmt.Fprintf(bw, ",\n{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d,\"args\":{\"id\":%d,\"parent\":%d",
				jsonString(sp.Name), jsonString(t.name),
				formatFloat(sp.Start*1e6), formatFloat((sp.End-sp.Start)*1e6), tid+1, sp.ID, sp.Parent)
			for _, a := range sp.Attrs {
				bw.WriteByte(',')
				bw.WriteString(jsonString(a.Key))
				bw.WriteByte(':')
				writeAttrValue(bw, a.Value)
			}
			bw.WriteString("}}")
		}
		t.mu.Unlock()
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// writeAttrValue renders one attribute payload as its JSON value.
func writeAttrValue(w *bufio.Writer, v attrValue) {
	switch v.kind {
	case 'i':
		w.WriteString(strconv.FormatInt(v.i, 10))
	case 'f':
		w.WriteString(formatFloat(v.f))
	case 's':
		w.WriteString(jsonString(v.s))
	case 'b':
		w.WriteString(strconv.FormatBool(v.b))
	}
}
