package queue

import (
	"fmt"
	"sort"
	"sync"
)

// Memory is the in-process queue backend: the reference implementation
// of the Queue state machine, used directly in tests and embedded by
// the WAL backend (which logs each transition before applying it here).
type Memory struct {
	mu      sync.Mutex
	recs    map[string]*Record
	pending []string // FIFO dispatch order
}

// NewMemory returns an empty in-memory queue.
func NewMemory() *Memory {
	return &Memory{recs: map[string]*Record{}}
}

var _ Queue = (*Memory)(nil)

// Enqueue implements Queue.
func (m *Memory) Enqueue(id string, spec []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.enqueueLocked(id, spec)
}

func (m *Memory) enqueueLocked(id string, spec []byte) error {
	if id == "" {
		return fmt.Errorf("%w: empty id", ErrState)
	}
	if m.recs[id] != nil {
		return fmt.Errorf("%w: %q", ErrExists, id)
	}
	m.recs[id] = &Record{ID: id, Spec: append([]byte(nil), spec...), State: Pending}
	m.pending = append(m.pending, id)
	return nil
}

// peekLocked returns the job Dequeue would hand out next.
func (m *Memory) peekLocked() (string, bool) {
	if len(m.pending) == 0 {
		return "", false
	}
	return m.pending[0], true
}

// peek exposes peekLocked to the WAL backend, which must know the next
// job's ID before logging the dequeue that claims it.
func (m *Memory) peek() (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peekLocked()
}

// restore installs a full record verbatim — how compaction snapshots
// are replayed. Pending order follows restore call order.
func (m *Memory) restore(r Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r.ID == "" {
		return fmt.Errorf("%w: empty id", ErrState)
	}
	if m.recs[r.ID] != nil {
		return fmt.Errorf("%w: %q", ErrExists, r.ID)
	}
	c := r.copy()
	c.Spec = append([]byte(nil), r.Spec...)
	m.recs[r.ID] = &c
	if r.State == Pending {
		m.pending = append(m.pending, r.ID)
	}
	return nil
}

// Dequeue implements Queue.
func (m *Memory) Dequeue() (Record, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id, ok := m.peekLocked()
	if !ok {
		return Record{}, false, nil
	}
	return m.dequeueLocked(id), true, nil
}

func (m *Memory) dequeueLocked(id string) Record {
	m.pending = m.pending[1:]
	r := m.recs[id]
	r.State = Running
	r.Attempt++
	return r.copy()
}

// transitionLocked validates that id is Running and applies the state
// change shared by Ack, Nack, and Bury.
func (m *Memory) transitionLocked(op, id string, to State, cause string) error {
	r := m.recs[id]
	if r == nil {
		return fmt.Errorf("%s %q: %w", op, id, ErrNotFound)
	}
	if r.State != Running {
		return fmt.Errorf("%s %q: %w: job is %s, not running", op, id, ErrState, r.State)
	}
	r.State = to
	r.Cause = cause
	if to == Pending {
		m.pending = append(m.pending, id)
	}
	return nil
}

// Ack implements Queue.
func (m *Memory) Ack(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.transitionLocked("ack", id, Done, "")
}

// Nack implements Queue.
func (m *Memory) Nack(id, cause string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.transitionLocked("nack", id, Pending, cause)
}

// Bury implements Queue.
func (m *Memory) Bury(id, cause string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.transitionLocked("bury", id, Dead, cause)
}

// Get implements Queue.
func (m *Memory) Get(id string) (Record, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.recs[id]
	if r == nil {
		return Record{}, false
	}
	return r.copy(), true
}

// List implements Queue.
func (m *Memory) List() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, 0, len(m.recs))
	for _, r := range m.recs {
		out = append(out, r.copy())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PendingIDs implements Queue.
func (m *Memory) PendingIDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.pending...)
}

// Depth implements Queue.
func (m *Memory) Depth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// Running implements Queue.
func (m *Memory) Running() []Record {
	var out []Record
	for _, r := range m.List() {
		if r.State == Running {
			out = append(out, r)
		}
	}
	return out
}

// Err implements Queue. The in-memory backend cannot wedge.
func (m *Memory) Err() error { return nil }

// Close implements Queue. The in-memory backend has nothing to release.
func (m *Memory) Close() error { return nil }

// copy returns a detached copy of r (the Spec bytes are shared
// read-only by convention: nothing in this package mutates them).
func (r *Record) copy() Record {
	c := *r
	return c
}
