package queue

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
)

// TestBackendEquivalence is the property test behind the package's core
// claim: the Memory and WAL backends implement the same state machine.
// For many seeded random operation sequences it applies each operation
// to both backends, requires identical outcomes (success and typed
// failure alike), and compares the complete visible state after every
// step. The WAL is additionally closed and reopened at random points
// mid-sequence — durability must be invisible to the state machine.
func TestBackendEquivalence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			path := filepath.Join(t.TempDir(), "queue.wal")
			wal, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { wal.Close() }()
			mem := NewMemory()

			ids := []string{"a", "b", "c", "d", "e", "f"}
			for step := 0; step < 400; step++ {
				id := ids[rng.Intn(len(ids))]
				cause := fmt.Sprintf("cause-%d", rng.Intn(3))
				var op string
				var errM, errW error
				switch rng.Intn(6) {
				case 0:
					op = "enqueue " + id
					spec := []byte(fmt.Sprintf("spec-%s-%d", id, step))
					errM = mem.Enqueue(id, spec)
					errW = wal.Enqueue(id, spec)
				case 1:
					op = "dequeue"
					rm, okM, em := mem.Dequeue()
					rw, okW, ew := wal.Dequeue()
					errM, errW = em, ew
					if okM != okW || !sameRecord(rm, rw) {
						t.Fatalf("step %d %s: memory (%+v, %v) != wal (%+v, %v)", step, op, rm, okM, rw, okW)
					}
				case 2:
					op = "ack " + id
					errM = mem.Ack(id)
					errW = wal.Ack(id)
				case 3:
					op = "nack " + id
					errM = mem.Nack(id, cause)
					errW = wal.Nack(id, cause)
				case 4:
					op = "bury " + id
					errM = mem.Bury(id, cause)
					errW = wal.Bury(id, cause)
				case 5:
					op = "reopen"
					if err := wal.Close(); err != nil {
						t.Fatalf("step %d: close: %v", step, err)
					}
					wal, err = Open(path)
					if err != nil {
						t.Fatalf("step %d: reopen: %v", step, err)
					}
					if wal.Recovered.TruncatedTail {
						t.Fatalf("step %d: clean close reopened torn: %+v", step, wal.Recovered)
					}
				}
				if !sameOutcome(errM, errW) {
					t.Fatalf("step %d %s: memory err %v, wal err %v", step, op, errM, errW)
				}
				requireSameState(t, step, op, mem, wal)
			}
		})
	}
}

// sameOutcome: both nil, or both wrapping the same sentinel.
func sameOutcome(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	for _, sentinel := range []error{ErrExists, ErrNotFound, ErrState} {
		if errors.Is(a, sentinel) != errors.Is(b, sentinel) {
			return false
		}
	}
	return true
}

func sameRecord(a, b Record) bool {
	return a.ID == b.ID && a.State == b.State && a.Attempt == b.Attempt &&
		a.Cause == b.Cause && string(a.Spec) == string(b.Spec)
}

// requireSameState compares everything a caller can observe.
func requireSameState(t *testing.T, step int, op string, a, b Queue) {
	t.Helper()
	la, lb := a.List(), b.List()
	if len(la) != len(lb) {
		t.Fatalf("step %d %s: %d records vs %d", step, op, len(la), len(lb))
	}
	for i := range la {
		if !sameRecord(la[i], lb[i]) {
			t.Fatalf("step %d %s: record %d: %+v vs %+v", step, op, i, la[i], lb[i])
		}
	}
	if pa, pb := a.PendingIDs(), b.PendingIDs(); !reflect.DeepEqual(pa, pb) {
		t.Fatalf("step %d %s: pending %v vs %v", step, op, pa, pb)
	}
	if a.Depth() != b.Depth() {
		t.Fatalf("step %d %s: depth %d vs %d", step, op, a.Depth(), b.Depth())
	}
	if ra, rb := a.Running(), b.Running(); len(ra) != len(rb) {
		t.Fatalf("step %d %s: running %+v vs %+v", step, op, ra, rb)
	}
}
