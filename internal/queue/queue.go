// Package queue is the aging daemon's durable job queue: a small,
// strict state machine (Pending → Running → Done, with Nack retries
// back to Pending and Bury into a Dead dead-letter state) behind one
// interface and two backends. Memory is the in-process reference
// implementation tests reason about; WAL layers the same semantics over
// a CRC-checksummed write-ahead log built from internal/trace frames,
// so every acknowledged transition survives a process kill. The two are
// property-tested to be behaviorally equivalent (equiv_test.go): any
// sequence of queue operations produces the same visible state on both,
// with the WAL additionally surviving close/reopen at every step.
//
// The queue deliberately knows nothing about jobs, retries, backoff, or
// HTTP: it stores opaque spec bytes and owns only ordering and state.
// Policy (when to Nack versus Bury, how long to wait) lives in
// internal/jobs.
package queue

import "errors"

// State is a job's position in the queue lifecycle.
type State uint8

const (
	// Pending jobs wait in FIFO order for a Dequeue.
	Pending State = iota
	// Running jobs have been handed to a worker and not yet resolved.
	// After a crash, Running jobs are the resume set.
	Running
	// Done jobs completed; their record is kept so a restarted daemon
	// never runs an acknowledged job twice.
	Done
	// Dead jobs exhausted their retries (or failed fatally) and hold
	// their failure cause for inspection — the dead-letter state.
	Dead
)

// String returns the lowercase state name used in APIs and logs.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Done:
		return "done"
	case Dead:
		return "dead"
	}
	return "invalid"
}

// Record is one job's queue entry. Spec is opaque to the queue.
type Record struct {
	ID      string
	Spec    []byte
	State   State
	Attempt int    // deliveries so far: incremented on every Dequeue
	Cause   string // last failure cause; the dead-letter reason once Dead
}

// Queue operation errors. Backends return them wrapped with context;
// test with errors.Is.
var (
	// ErrExists rejects an Enqueue whose ID is already present.
	ErrExists = errors.New("queue: job id already exists")
	// ErrNotFound reports an operation on an unknown job ID.
	ErrNotFound = errors.New("queue: no such job")
	// ErrState reports an operation invalid for the job's current state
	// (e.g. acking a job that was never dequeued).
	ErrState = errors.New("queue: operation invalid for job state")
)

// Queue is the durable job queue contract shared by the Memory and WAL
// backends. All methods are safe for concurrent use. Mutating methods
// return only after the transition is durable to the backend's degree
// (for WAL: appended and fsynced), which is what makes an acknowledged
// job unlosable.
type Queue interface {
	// Enqueue adds a new Pending job at the tail.
	Enqueue(id string, spec []byte) error
	// Dequeue hands out the oldest Pending job, marking it Running and
	// counting the delivery attempt; ok is false when none is pending.
	Dequeue() (rec Record, ok bool, err error)
	// Ack resolves a Running job as Done.
	Ack(id string) error
	// Nack returns a Running job to the Pending tail for another
	// attempt, recording why this one failed.
	Nack(id, cause string) error
	// Bury moves a Running job to the Dead dead-letter state with its
	// terminal failure cause.
	Bury(id, cause string) error
	// Get returns a copy of the job's record.
	Get(id string) (Record, bool)
	// List returns copies of every record, sorted by ID.
	List() []Record
	// PendingIDs returns the Pending jobs in dispatch (FIFO) order.
	PendingIDs() []string
	// Depth returns the number of Pending jobs — the load-shedding
	// signal.
	Depth() int
	// Running returns the in-flight jobs sorted by ID — the set a
	// restarted daemon must resume.
	Running() []Record
	// Err reports whether the backend can still accept writes: nil when
	// healthy, the wedging failure otherwise (a WAL whose log hit an
	// append or sync error refuses all further mutations). This is the
	// daemon's readiness signal.
	Err() error
	// Close releases backend resources. The queue must not be used
	// afterwards.
	Close() error
}
