package queue

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"ffsage/internal/trace"
)

// The WAL backend logs every queue transition as one CRC-checksummed
// frame (the internal/trace frame codec that also protects aging
// checkpoints) appended to a single file and fsynced before the
// operation is acknowledged. Reopening the file replays the log to
// rebuild the exact queue state; a tail torn by a crash — the only
// damage a single-writer append-only log can self-inflict — is detected
// by the frame checksum and truncated away, which discards at most the
// one operation that was never acknowledged to its caller.

var walMagic = [4]byte{'F', 'F', 'Q', '1'}

// walVersion is bumped whenever record encoding changes.
const walVersion = 1

// maxWALRecord bounds a single record's payload; specs are small JSON
// documents, so anything larger is corruption.
const maxWALRecord = 1 << 24

// walWhat names the artifact in CorruptError messages.
const walWhat = "queue WAL record"

// Record kinds, one per queue transition, plus the compaction snapshot.
const (
	walEnqueue = 'E'
	walDequeue = 'D'
	walAck     = 'A'
	walNack    = 'N'
	walBury    = 'B'
	walSnap    = 'S' // full-record snapshot written by compaction
)

// compactionSlack: a log holding more than this many records per live
// job (plus a flat grace) is rewritten on open. The threshold only has
// to keep the file from growing without bound; precision buys nothing.
const compactionSlack = 4

// RecoveryInfo describes what Open found in an existing log.
type RecoveryInfo struct {
	Records       int    // valid records replayed
	TruncatedTail bool   // a torn or corrupt tail was dropped
	TailError     string // what was wrong with the dropped tail
	Compacted     bool   // the log was rewritten as snapshots
}

// WAL is the durable queue backend. Construct with Open.
type WAL struct {
	mu     sync.Mutex
	mem    *Memory
	f      *os.File
	path   string
	broken error // first append/sync failure; the queue refuses further writes

	// Recovered reports what Open found; informational.
	Recovered RecoveryInfo
}

var _ Queue = (*WAL)(nil)

// Open loads (or creates) the write-ahead log at path and rebuilds the
// queue state it encodes. A torn tail is truncated away; damage earlier
// in the file surfaces as a *trace.CorruptError without any state
// applied past it — Open degrades to the longest consistent prefix and
// reports it, rather than guessing.
func Open(path string) (*WAL, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("queue: reading WAL: %w", err)
	}
	w := &WAL{mem: NewMemory(), path: path}

	// Replay the longest valid frame prefix.
	goodOff := 0
	rest := data
	//lint:ignore ffsvet/ctxloop bounded: consumes the file's remaining bytes; exits at EOF or the first bad frame
	for {
		payload, err := trace.ReadFrame(newSliceReader(&rest), walMagic, walVersion, maxWALRecord, walWhat)
		if err == io.EOF {
			break
		}
		if err != nil {
			// A torn or corrupt tail: keep the consistent prefix, drop
			// the rest. The dropped operation was never acknowledged.
			w.Recovered.TruncatedTail = true
			w.Recovered.TailError = err.Error()
			break
		}
		if err := w.apply(payload); err != nil {
			return nil, err
		}
		goodOff = len(data) - len(rest)
		w.Recovered.Records++
	}
	if w.Recovered.TruncatedTail {
		if err := replaceFile(path, data[:goodOff]); err != nil {
			return nil, fmt.Errorf("queue: truncating torn WAL tail: %w", err)
		}
	}

	if w.Recovered.Records > compactionSlack*len(w.mem.List())+16 {
		if err := w.compact(); err != nil {
			return nil, err
		}
		w.Recovered.Compacted = true
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("queue: opening WAL for append: %w", err)
	}
	w.f = f
	return w, nil
}

// sliceReader reads from *rest, consuming it in place so the caller can
// measure how many bytes each frame took.
type sliceReader struct{ rest *[]byte }

func newSliceReader(rest *[]byte) sliceReader { return sliceReader{rest} }

func (s sliceReader) Read(p []byte) (int, error) {
	if len(*s.rest) == 0 {
		return 0, io.EOF
	}
	n := copy(p, *s.rest)
	*s.rest = (*s.rest)[n:]
	return n, nil
}

// compact rewrites the log as one snapshot record per live job —
// pending jobs first in dispatch order (so FIFO order survives), then
// the rest sorted by ID — and atomically replaces the old file.
func (w *WAL) compact() error {
	var buf []byte
	seen := map[string]bool{}
	emit := func(r Record) error {
		payload := encodeSnap(r)
		var frame bytesWriter
		if err := trace.WriteFrame(&frame, walMagic, walVersion, payload); err != nil {
			return err
		}
		buf = append(buf, frame...)
		seen[r.ID] = true
		return nil
	}
	for _, id := range w.mem.PendingIDs() {
		if r, ok := w.mem.Get(id); ok {
			if err := emit(r); err != nil {
				return err
			}
		}
	}
	for _, r := range w.mem.List() {
		if !seen[r.ID] {
			if err := emit(r); err != nil {
				return err
			}
		}
	}
	if err := replaceFile(w.path, buf); err != nil {
		return fmt.Errorf("queue: compacting WAL: %w", err)
	}
	return nil
}

// replaceFile atomically replaces path with data: write a
// same-directory temp file, fsync it, then rename over the target.
// Rename alone is not enough — it commits the name, not the bytes, and
// a power failure after an unsynced rename can leave the new file empty
// or torn at its final path, destroying the log prefix that truncation
// and compaction were trying to preserve.
func replaceFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// append logs one record payload durably: frame, write, fsync. A
// failure wedges the queue (broken) so state and log cannot diverge
// silently; the daemon surfaces that as a fatal degradation.
func (w *WAL) append(payload []byte) error {
	if w.broken != nil {
		return fmt.Errorf("queue: WAL previously failed: %w", w.broken)
	}
	var frame bytesWriter
	if err := trace.WriteFrame(&frame, walMagic, walVersion, payload); err != nil {
		w.broken = err
		return fmt.Errorf("queue: encoding WAL record: %w", err)
	}
	if _, err := w.f.Write(frame); err != nil {
		w.broken = err
		return fmt.Errorf("queue: appending WAL record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.broken = err
		return fmt.Errorf("queue: syncing WAL: %w", err)
	}
	return nil
}

// bytesWriter is an io.Writer that appends to itself.
type bytesWriter []byte

func (b *bytesWriter) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

// Enqueue implements Queue: validate, log durably, then apply.
func (w *WAL) Enqueue(id string, spec []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if id == "" {
		return fmt.Errorf("%w: empty id", ErrState)
	}
	if _, ok := w.mem.Get(id); ok {
		return fmt.Errorf("%w: %q", ErrExists, id)
	}
	payload := appendString(appendString([]byte{walEnqueue}, id), string(spec))
	if err := w.append(payload); err != nil {
		return err
	}
	return w.mem.Enqueue(id, spec)
}

// Dequeue implements Queue.
func (w *WAL) Dequeue() (Record, bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	id, ok := w.mem.peek()
	if !ok {
		return Record{}, false, nil
	}
	if err := w.append(appendString([]byte{walDequeue}, id)); err != nil {
		return Record{}, false, err
	}
	rec, ok, err := w.mem.Dequeue()
	if err == nil && (!ok || rec.ID != id) {
		err = fmt.Errorf("queue: dequeue raced its own log record (%q)", id)
	}
	return rec, ok, err
}

// transition logs and applies one Running → to move.
func (w *WAL) transition(kind byte, id, cause string, apply func() error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	r, ok := w.mem.Get(id)
	if !ok {
		return fmt.Errorf("%q: %w", id, ErrNotFound)
	}
	if r.State != Running {
		return fmt.Errorf("%q: %w: job is %s, not running", id, ErrState, r.State)
	}
	payload := appendString([]byte{kind}, id)
	if kind != walAck {
		payload = appendString(payload, cause)
	}
	if err := w.append(payload); err != nil {
		return err
	}
	return apply()
}

// Ack implements Queue.
func (w *WAL) Ack(id string) error {
	return w.transition(walAck, id, "", func() error { return w.mem.Ack(id) })
}

// Nack implements Queue.
func (w *WAL) Nack(id, cause string) error {
	return w.transition(walNack, id, cause, func() error { return w.mem.Nack(id, cause) })
}

// Bury implements Queue.
func (w *WAL) Bury(id, cause string) error {
	return w.transition(walBury, id, cause, func() error { return w.mem.Bury(id, cause) })
}

// Get implements Queue.
func (w *WAL) Get(id string) (Record, bool) { return w.mem.Get(id) }

// List implements Queue.
func (w *WAL) List() []Record { return w.mem.List() }

// PendingIDs implements Queue.
func (w *WAL) PendingIDs() []string { return w.mem.PendingIDs() }

// Depth implements Queue.
func (w *WAL) Depth() int { return w.mem.Depth() }

// Running implements Queue.
func (w *WAL) Running() []Record { return w.mem.Running() }

// Path returns the log file's path (for operational reporting — the
// daemon's /metrics gauges the file's size).
func (w *WAL) Path() string { return w.path }

// Err implements Queue: nil while the log accepts writes, the wedging
// append/sync failure once it stopped. A wedged WAL still serves reads,
// so the daemon can report itself unready while staying inspectable.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.broken
}

// Close implements Queue. It does not drain anything: a WAL closed with
// jobs in flight reopens into exactly that state, which is the point.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	w.broken = errors.New("queue: WAL closed")
	return err
}

// apply replays one logged record into the in-memory state. Failures
// mean the log is internally inconsistent, which reads as corruption.
func (w *WAL) apply(payload []byte) error {
	d := walDec{b: payload}
	kind, err := d.u8()
	if err != nil {
		return err
	}
	id, err := d.str()
	if err != nil {
		return err
	}
	switch kind {
	case walEnqueue:
		spec, err := d.str()
		if err != nil {
			return err
		}
		return w.applyErr(w.mem.Enqueue(id, []byte(spec)))
	case walDequeue:
		rec, ok, err := w.mem.Dequeue()
		if err == nil && (!ok || rec.ID != id) {
			err = fmt.Errorf("dequeue of %q does not match queue head", id)
		}
		return w.applyErr(err)
	case walAck:
		return w.applyErr(w.mem.Ack(id))
	case walNack:
		cause, err := d.str()
		if err != nil {
			return err
		}
		return w.applyErr(w.mem.Nack(id, cause))
	case walBury:
		cause, err := d.str()
		if err != nil {
			return err
		}
		return w.applyErr(w.mem.Bury(id, cause))
	case walSnap:
		rec, err := decodeSnapBody(id, &d)
		if err != nil {
			return err
		}
		return w.applyErr(w.mem.restore(rec))
	default:
		return &trace.CorruptError{What: walWhat, Msg: fmt.Sprintf("unknown record kind %q", kind)}
	}
}

func (w *WAL) applyErr(err error) error {
	if err == nil {
		return nil
	}
	return &trace.CorruptError{What: walWhat, Msg: "log replays to an inconsistent state", Err: err}
}

// encodeSnap encodes a full record as a compaction snapshot payload.
func encodeSnap(r Record) []byte {
	p := appendString([]byte{walSnap}, r.ID)
	p = append(p, byte(r.State))
	p = binary.AppendUvarint(p, uint64(r.Attempt))
	p = appendString(p, r.Cause)
	p = appendString(p, string(r.Spec))
	return p
}

// decodeSnapBody decodes the snapshot fields following the common id.
func decodeSnapBody(id string, d *walDec) (Record, error) {
	st, err := d.u8()
	if err != nil {
		return Record{}, err
	}
	if State(st) > Dead {
		return Record{}, &trace.CorruptError{What: walWhat, Msg: fmt.Sprintf("snapshot state %d out of range", st)}
	}
	attempt, err := d.uv()
	if err != nil {
		return Record{}, err
	}
	cause, err := d.str()
	if err != nil {
		return Record{}, err
	}
	spec, err := d.str()
	if err != nil {
		return Record{}, err
	}
	return Record{ID: id, Spec: []byte(spec), State: State(st), Attempt: int(attempt), Cause: cause}, nil
}

// appendString appends a uvarint-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// walDec decodes a record payload, returning typed corruption errors on
// any overrun so damaged records never panic the reader.
type walDec struct {
	b   []byte
	off int
}

func (d *walDec) fail(what string) error {
	return &trace.CorruptError{What: walWhat, Msg: fmt.Sprintf("truncated %s at offset %d", what, d.off), Err: io.ErrUnexpectedEOF}
}

func (d *walDec) u8() (byte, error) {
	if d.off >= len(d.b) {
		return 0, d.fail("byte")
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *walDec) uv() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, d.fail("varint")
	}
	d.off += n
	return v, nil
}

func (d *walDec) str() (string, error) {
	n, err := d.uv()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.b)-d.off) {
		return "", d.fail("string")
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}
