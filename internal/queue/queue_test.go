package queue

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ffsage/internal/trace"
)

// backends returns one fresh instance of each backend, the WAL one
// rooted in a test temp dir.
func backends(t *testing.T) map[string]Queue {
	t.Helper()
	w, err := Open(filepath.Join(t.TempDir(), "queue.wal"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Queue{"memory": NewMemory(), "wal": w}
}

func TestLifecycle(t *testing.T) {
	for name, q := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer q.Close()
			if err := q.Enqueue("a", []byte(`{"days":1}`)); err != nil {
				t.Fatal(err)
			}
			if err := q.Enqueue("b", nil); err != nil {
				t.Fatal(err)
			}
			if err := q.Enqueue("a", nil); !errors.Is(err, ErrExists) {
				t.Fatalf("duplicate enqueue: %v", err)
			}
			if d := q.Depth(); d != 2 {
				t.Fatalf("depth %d", d)
			}

			// FIFO delivery, attempt counting.
			r, ok, err := q.Dequeue()
			if err != nil || !ok || r.ID != "a" || r.State != Running || r.Attempt != 1 {
				t.Fatalf("first dequeue: %+v ok=%v err=%v", r, ok, err)
			}
			if string(r.Spec) != `{"days":1}` {
				t.Fatalf("spec %q", r.Spec)
			}

			// Nack returns it to the tail with a cause; next delivery
			// increments the attempt.
			if err := q.Nack("a", "transient"); err != nil {
				t.Fatal(err)
			}
			if got := q.PendingIDs(); len(got) != 2 || got[0] != "b" || got[1] != "a" {
				t.Fatalf("pending after nack: %v", got)
			}
			if r, _ := q.Get("a"); r.State != Pending || r.Cause != "transient" {
				t.Fatalf("nacked record: %+v", r)
			}

			r, _, _ = q.Dequeue() // b
			if err := q.Ack("b"); err != nil {
				t.Fatal(err)
			}
			r, _, _ = q.Dequeue() // a again
			if r.ID != "a" || r.Attempt != 2 {
				t.Fatalf("redelivery: %+v", r)
			}
			if err := q.Bury("a", "exhausted retries"); err != nil {
				t.Fatal(err)
			}

			if r, _ := q.Get("a"); r.State != Dead || r.Cause != "exhausted retries" {
				t.Fatalf("buried record: %+v", r)
			}
			if r, _ := q.Get("b"); r.State != Done {
				t.Fatalf("acked record: %+v", r)
			}
			if _, ok, _ := q.Dequeue(); ok {
				t.Fatal("dequeue from drained queue succeeded")
			}
			if l := q.List(); len(l) != 2 || l[0].ID != "a" || l[1].ID != "b" {
				t.Fatalf("list: %+v", l)
			}
		})
	}
}

func TestInvalidTransitions(t *testing.T) {
	for name, q := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer q.Close()
			if err := q.Enqueue("", nil); !errors.Is(err, ErrState) {
				t.Fatalf("empty id: %v", err)
			}
			if err := q.Ack("ghost"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("ack unknown: %v", err)
			}
			if err := q.Enqueue("a", nil); err != nil {
				t.Fatal(err)
			}
			// a is Pending, not Running: every resolution must refuse.
			for _, op := range []func() error{
				func() error { return q.Ack("a") },
				func() error { return q.Nack("a", "x") },
				func() error { return q.Bury("a", "x") },
			} {
				if err := op(); !errors.Is(err, ErrState) {
					t.Fatalf("resolving a pending job: %v", err)
				}
			}
			if _, _, err := q.Dequeue(); err != nil {
				t.Fatal(err)
			}
			if err := q.Ack("a"); err != nil {
				t.Fatal(err)
			}
			if err := q.Ack("a"); !errors.Is(err, ErrState) {
				t.Fatalf("double ack: %v", err)
			}
		})
	}
}

// TestWALSurvivesReopen is the durability contract: every acknowledged
// transition is visible after close + reopen, including in-flight
// (Running) jobs, which form the resume set.
func TestWALSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustDo(t, w.Enqueue("done", []byte("d")))
	mustDo(t, w.Enqueue("inflight", []byte("i")))
	mustDo(t, w.Enqueue("waiting", []byte("w")))
	mustDo(t, w.Enqueue("dead", []byte("x")))
	mustDeq(t, w, "done")
	mustDo(t, w.Ack("done"))
	mustDeq(t, w, "inflight")
	mustDeq(t, w, "waiting")
	mustDo(t, w.Nack("waiting", "try again")) // waiting re-pends behind dead
	mustDeq(t, w, "dead")
	mustDo(t, w.Bury("dead", "fatal: bad spec"))
	mustDeq(t, w, "waiting")
	mustDo(t, w.Nack("waiting", "later"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Recovered.TruncatedTail || r.Recovered.Records == 0 {
		t.Fatalf("recovery info: %+v", r.Recovered)
	}
	want := map[string]Record{
		"done":     {State: Done, Attempt: 1, Spec: []byte("d")},
		"inflight": {State: Running, Attempt: 1, Spec: []byte("i")},
		"waiting":  {State: Pending, Attempt: 2, Cause: "later", Spec: []byte("w")},
		"dead":     {State: Dead, Attempt: 1, Cause: "fatal: bad spec", Spec: []byte("x")},
	}
	for id, wr := range want {
		got, ok := r.Get(id)
		if !ok || got.State != wr.State || got.Attempt != wr.Attempt ||
			got.Cause != wr.Cause || string(got.Spec) != string(wr.Spec) {
			t.Fatalf("%s after reopen: %+v, want %+v", id, got, wr)
		}
	}
	if run := r.Running(); len(run) != 1 || run[0].ID != "inflight" {
		t.Fatalf("resume set: %+v", run)
	}
	if p := r.PendingIDs(); len(p) != 1 || p[0] != "waiting" {
		t.Fatalf("pending after reopen: %v", p)
	}
}

// TestWALTornTailRecovery: a partial final record — the signature of a
// kill between write and fsync landing — is truncated away on open, and
// only the unacknowledged operation is lost.
func TestWALTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustDo(t, w.Enqueue("a", []byte("spec-a")))
	mustDo(t, w.Enqueue("b", []byte("spec-b")))
	mustDo(t, w.Close())
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Cut the file at every point inside the final record.
	var firstLen int
	{
		rest := whole
		if _, err := trace.ReadFrame(newSliceReader(&rest), walMagic, walVersion, maxWALRecord, walWhat); err != nil {
			t.Fatal(err)
		}
		firstLen = len(whole) - len(rest)
	}
	for cut := firstLen + 1; cut < len(whole); cut++ {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path)
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		if !r.Recovered.TruncatedTail || r.Recovered.Records != 1 {
			t.Fatalf("cut=%d: recovery %+v", cut, r.Recovered)
		}
		if _, ok := r.Get("a"); !ok {
			t.Fatalf("cut=%d: acknowledged job lost", cut)
		}
		if _, ok := r.Get("b"); ok {
			t.Fatalf("cut=%d: torn record resurrected", cut)
		}
		// The truncated log must now be clean: append works, and a
		// further reopen sees both the old and the new records.
		mustDo(t, r.Enqueue("c", []byte("spec-c")))
		mustDo(t, r.Close())
		rr, err := Open(path)
		if err != nil {
			t.Fatalf("cut=%d: reopen after repair: %v", cut, err)
		}
		if rr.Recovered.TruncatedTail {
			t.Fatalf("cut=%d: repaired log still torn", cut)
		}
		if p := rr.PendingIDs(); len(p) != 2 || p[0] != "a" || p[1] != "c" {
			t.Fatalf("cut=%d: pending %v", cut, p)
		}
		mustDo(t, rr.Close())
	}
}

// TestWALBitRotIsNotSilentlyAccepted: flipping a bit mid-log must never
// replay into a state that pretends the log was fine — Open either
// truncates at the damage (tail case) and says so, or refuses.
func TestWALBitRotIsNotSilentlyAccepted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustDo(t, w.Enqueue("a", []byte("spec-a")))
	mustDeq(t, w, "a")
	mustDo(t, w.Ack("a"))
	mustDo(t, w.Close())
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(whole); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), whole...)
			mut[pos] ^= 1 << bit
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			r, err := Open(path)
			if err != nil {
				continue // refused: acceptable
			}
			if !r.Recovered.TruncatedTail && r.Recovered.Records == 3 {
				// All three records "replayed" from a damaged file: only
				// legal if the flip produced a byte-identical state.
				got, ok := r.Get("a")
				if !ok || got.State != Done || got.Attempt != 1 || string(got.Spec) != "spec-a" {
					t.Fatalf("pos=%d bit=%d: damaged log accepted with state %+v", pos, bit, got)
				}
			}
			r.Close()
		}
	}
}

// TestWALCompaction: a long history of resolved jobs compacts to
// snapshots on open, preserving state and FIFO order while shrinking
// the file.
func TestWALCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.wal")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Lots of churn per live job: repeated retry cycles write many log
	// records that all collapse to one snapshot each.
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("churn%02d", i)
		mustDo(t, w.Enqueue(id, []byte("s")))
		for try := 0; try < 10; try++ {
			mustDeq(t, w, id)
			mustDo(t, w.Nack(id, "retry"))
		}
		mustDeq(t, w, id)
		mustDo(t, w.Ack(id))
	}
	// Survivors in interesting states.
	mustDo(t, w.Enqueue("p1", []byte("first")))
	mustDo(t, w.Enqueue("p2", []byte("second")))
	mustDo(t, w.Enqueue("r1", []byte("running")))
	// Dequeue order is FIFO, so claim p1+p2 and re-pend them after r1
	// to scramble pending order away from insertion order.
	mustDeq(t, w, "p1")
	mustDeq(t, w, "p2")
	mustDeq(t, w, "r1")
	mustDo(t, w.Nack("p2", "requeued"))
	mustDo(t, w.Nack("p1", "requeued"))
	before := stat(t, path)
	mustDo(t, w.Close())

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Recovered.Compacted {
		t.Fatalf("log not compacted: %+v", r.Recovered)
	}
	if after := stat(t, path); after >= before {
		t.Fatalf("compaction grew the log: %d -> %d bytes", before, after)
	}
	if p := r.PendingIDs(); len(p) != 2 || p[0] != "p2" || p[1] != "p1" {
		t.Fatalf("pending order lost in compaction: %v", p)
	}
	if run := r.Running(); len(run) != 1 || run[0].ID != "r1" || run[0].Attempt != 1 {
		t.Fatalf("running set after compaction: %+v", run)
	}
	if got, _ := r.Get("churn05"); got.State != Done {
		t.Fatalf("history lost: %+v", got)
	}
	if got, _ := r.Get("p1"); got.Attempt != 1 || got.Cause != "requeued" {
		t.Fatalf("snapshot dropped fields: %+v", got)
	}
	// The compacted log still appends and reopens.
	mustDo(t, r.Enqueue("fresh", nil))
	mustDo(t, r.Close())
	rr, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	if p := rr.PendingIDs(); len(p) != 3 || p[2] != "fresh" {
		t.Fatalf("append after compaction: %v", p)
	}
}

func TestWALRefusesAfterClose(t *testing.T) {
	w, err := Open(filepath.Join(t.TempDir(), "q.wal"))
	if err != nil {
		t.Fatal(err)
	}
	mustDo(t, w.Close())
	if err := w.Enqueue("a", nil); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("enqueue after close: %v", err)
	}
}

func mustDo(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func mustDeq(t *testing.T, q Queue, want string) Record {
	t.Helper()
	r, ok, err := q.Dequeue()
	if err != nil || !ok || r.ID != want {
		t.Fatalf("dequeue: got %q ok=%v err=%v, want %q", r.ID, ok, err, want)
	}
	return r
}

func stat(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
