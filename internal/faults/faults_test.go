package faults

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestParseRejectsMalformedSpecs(t *testing.T) {
	for _, spec := range []string{
		"ioerr",             // no point
		"ioerr@alloc",       // no count
		"ioerr@alloc:x",     // bad count
		"ioerr@alloc:-1",    // negative
		"ioerr@alloc:0",     // allocations are 1-based
		"diskerr@io:0",      // I/Os are 1-based
		"boom@op:3",         // unknown kind
		"crash@alloc:3",     // mismatched point
		"crash@op:1,zzz@io", // second event bad
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", spec)
		}
	}
}

// TestParseErrorMessages pins the parser's position-annotated
// diagnostics: every malformed spec must name the offending event, its
// 1-based index and byte offset, and say what valid input looks like.
func TestParseErrorMessages(t *testing.T) {
	for _, tc := range []struct {
		spec         string
		event        int
		offset       int
		text         string
		wantContains string
	}{
		{"ioerr", 1, 0, "ioerr", `missing "@": want kind@where:N, e.g. crash@op:120`},
		{"ioerr@alloc", 1, 0, "ioerr@alloc", `missing ":" after "alloc": want kind@where:N, e.g. ioerr@alloc:5`},
		{"ioerr@alloc:x", 1, 0, "ioerr@alloc:x", `count "x" is not a non-negative integer`},
		{"ioerr@alloc:-1", 1, 0, "ioerr@alloc:-1", `count "-1" is not a non-negative integer`},
		{"ioerr@alloc:0", 1, 0, "ioerr@alloc:0", "allocations are numbered from 1"},
		{"diskerr@io:0", 1, 0, "diskerr@io:0", "drive requests are numbered from 1"},
		{"boom@op:3", 1, 0, "boom@op:3", `unknown event kind "boom"; valid events: ioerr@alloc:N`},
		{"crash@alloc:3", 1, 0, "crash@alloc:3", `crash does not take point "alloc"`},
		{"crash@op:1,zzz@io", 2, 11, "zzz@io", `missing ":" after "io"`},
		{"crash@op:1, tear@dy:4", 2, 12, "tear@dy:4", `tear does not take point "dy"`},
		{"crash@op:1,,crash@op:2", 2, 11, "", "empty event (stray comma?)"},
	} {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", tc.spec)
			continue
		}
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("Parse(%q) error %T is not a *SpecError", tc.spec, err)
			continue
		}
		if se.Event != tc.event || se.Offset != tc.offset || se.Text != tc.text {
			t.Errorf("Parse(%q): event %d offset %d text %q, want %d/%d/%q",
				tc.spec, se.Event, se.Offset, se.Text, tc.event, tc.offset, tc.text)
		}
		if !strings.Contains(err.Error(), tc.wantContains) {
			t.Errorf("Parse(%q) = %q, want substring %q", tc.spec, err, tc.wantContains)
		}
		// The caret diagram points at the offending event.
		if !strings.Contains(err.Error(), "\n\t"+tc.spec+"\n") {
			t.Errorf("Parse(%q) diagnostic lacks the spec line:\n%s", tc.spec, err)
		}
	}
}

func TestEmptyPlan(t *testing.T) {
	p, err := Parse("  ")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Fatal("blank spec not empty")
	}
	if p.BeforeAlloc(8) != nil || p.BeforeIO(true, 0, 1) != nil || p.CrashBefore(0, 0) != nil {
		t.Fatal("empty plan fired")
	}
	var nilPlan *Plan
	if !nilPlan.Empty() || nilPlan.CrashBefore(0, 0) != nil {
		t.Fatal("nil plan misbehaved")
	}
}

func TestAllocFaultFiresOnceAtN(t *testing.T) {
	p := MustParse("ioerr@alloc:3")
	var failures []int
	for i := 1; i <= 6; i++ {
		if err := p.BeforeAlloc(8); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("wrong error type: %v", err)
			}
			failures = append(failures, i)
		}
	}
	if !reflect.DeepEqual(failures, []int{3}) {
		t.Fatalf("failures at %v, want [3]", failures)
	}
}

func TestDiskFaultFiresOnceAtN(t *testing.T) {
	p := MustParse("diskerr@io:2")
	var failures []int
	for i := 1; i <= 4; i++ {
		if err := p.BeforeIO(i%2 == 0, int64(i), 1); err != nil {
			failures = append(failures, i)
		}
	}
	if !reflect.DeepEqual(failures, []int{2}) {
		t.Fatalf("failures at %v, want [2]", failures)
	}
}

func TestCrashAtOpAndDay(t *testing.T) {
	p := MustParse("crash@op:5")
	for op := 0; op < 5; op++ {
		if c := p.CrashBefore(op, 0); c != nil {
			t.Fatalf("fired early at op %d: %v", op, c)
		}
	}
	c := p.CrashBefore(5, 2)
	if c == nil || c.Op != 5 || c.Day != 2 || c.Torn {
		t.Fatalf("crash = %+v, want op 5 day 2 untorn", c)
	}
	if p.CrashBefore(5, 2) != nil {
		t.Fatal("crash fired twice")
	}

	// A day-crash fires at the first boundary at or past the target,
	// even when the exact day has no operations.
	p = MustParse("tear@day:10")
	if p.CrashBefore(40, 9) != nil {
		t.Fatal("day crash fired early")
	}
	c = p.CrashBefore(41, 12)
	if c == nil || !c.Torn {
		t.Fatalf("crash = %+v, want torn crash", c)
	}
}

func TestCloneResetsCounters(t *testing.T) {
	p := MustParse("ioerr@alloc:2")
	p.BeforeAlloc(8)
	if err := p.BeforeAlloc(8); err == nil {
		t.Fatal("original did not fire")
	}
	c := p.Clone()
	if err := c.BeforeAlloc(8); err != nil {
		t.Fatal("clone inherited the original's counter")
	}
	if err := c.BeforeAlloc(8); err == nil {
		t.Fatal("clone did not fire at its own 2nd allocation")
	}
}

func TestCrashPointsDeterministicAndDistinct(t *testing.T) {
	a := CrashPoints(42, 100, 5000)
	b := CrashPoints(42, 100, 5000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) != 100 {
		t.Fatalf("got %d points, want 100", len(a))
	}
	seen := map[int]bool{}
	for i, pt := range a {
		if pt < 0 || pt >= 5000 {
			t.Fatalf("point %d out of range", pt)
		}
		if seen[pt] {
			t.Fatalf("duplicate point %d", pt)
		}
		seen[pt] = true
		if i > 0 && a[i-1] > pt {
			t.Fatal("schedule not sorted")
		}
	}
	if c := CrashPoints(7, 10, 4); len(c) != 4 {
		t.Fatalf("n>maxOp not clamped: %d points", len(c))
	}
}
