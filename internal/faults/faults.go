// Package faults provides deterministic fault plans for the simulator:
// allocation failures on the Nth allocation, disk medium errors on the
// Nth drive request, torn writes, and crashes at operation or day
// boundaries. A plan is parsed from a compact spec string and fires the
// same events at the same points on every run, so any failure a plan
// provokes is reproducible from the (spec, seed) pair alone.
//
// The package deliberately imports nothing from the rest of the
// simulator. It plugs in through structural interfaces:
//
//   - *Plan satisfies ffs.AllocFaultHook via BeforeAlloc;
//   - *Plan satisfies disk.IOFaultHook via BeforeIO;
//   - the aging replayer polls CrashBefore at each operation boundary.
//
// Spec grammar (comma-separated events):
//
//	ioerr@alloc:N      fail the Nth allocation (1-based) with ErrInjected
//	diskerr@io:N       medium error on the Nth drive request (retried)
//	crash@op:N         crash before applying operation N (0-based)
//	crash@day:D        crash at the first operation of day D
//	tear@op:N          like crash@op:N, but the crash also tears the
//	                   most recent multi-fragment write (torn pointer
//	                   update), leaving corruption for Repair to mend
//	tear@day:D         likewise at a day boundary
//
// Each event fires exactly once. Plans are stateful (they count
// allocations and I/Os); use Clone to give concurrent runs independent
// counters.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// ErrInjected is the error injected into allocations by ioerr events.
var ErrInjected = errors.New("faults: injected I/O error")

// Crash reports that a plan called for a crash at a specific point.
// The replayer returns it (wrapped) and stops; *Crash is the signal
// that the run ended at a planned crash rather than on a real failure.
type Crash struct {
	Op   int  // operation index the crash preceded
	Day  int  // simulated day at the crash
	Torn bool // whether the crash also tore the last write
}

func (c *Crash) Error() string {
	kind := "crash"
	if c.Torn {
		kind = "crash with torn write"
	}
	return fmt.Sprintf("faults: %s before op %d (day %d)", kind, c.Op, c.Day)
}

type eventKind int

const (
	evAllocErr eventKind = iota
	evDiskErr
	evCrashOp
	evCrashDay
)

type event struct {
	kind eventKind
	n    int64 // allocation/io ordinal, op index, or day
	torn bool
	done bool
}

// Plan is a parsed fault plan. The zero value is a plan with no events.
type Plan struct {
	spec   string
	events []event

	allocs int64 // allocations seen so far
	ios    int64 // drive requests seen so far
}

// SpecError pinpoints the malformed event inside a fault-plan spec:
// which comma-separated event failed to parse (1-based Event, byte
// Offset into the original spec string), what was wrong, and what valid
// input looks like. It renders a caret diagram so a typo in the middle
// of a long multi-event spec is located at a glance.
type SpecError struct {
	Spec   string // the full spec as given
	Text   string // the offending event, whitespace-trimmed
	Event  int    // 1-based position among the comma-separated events
	Offset int    // byte offset of Text within Spec
	Msg    string // what is wrong, with a hint toward valid input
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("faults: event %d at offset %d: %q: %s\n\t%s\n\t%s^",
		e.Event, e.Offset, e.Text, e.Msg, e.Spec, strings.Repeat(" ", e.Offset))
}

// validEvents is the hint appended to unknown-event diagnostics.
const validEvents = "valid events: ioerr@alloc:N, diskerr@io:N, crash@op:N, crash@day:D, tear@op:N, tear@day:D"

// Parse builds a plan from a spec string; see the package comment for
// the grammar. An empty spec yields an empty plan; a malformed one
// yields a *SpecError locating the offending event.
func Parse(spec string) (*Plan, error) {
	p := &Plan{spec: spec}
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	pos := 0
	for idx := 0; ; idx++ {
		rest := spec[pos:]
		raw, _, more := strings.Cut(rest, ",")
		part := strings.TrimSpace(raw)
		off := pos + strings.Index(raw, part) // where the trimmed event starts
		fail := func(format string, args ...any) error {
			return &SpecError{Spec: spec, Text: part, Event: idx + 1, Offset: off,
				Msg: fmt.Sprintf(format, args...)}
		}
		ev, err := parseEvent(part, fail)
		if err != nil {
			return nil, err
		}
		p.events = append(p.events, ev)
		if !more {
			return p, nil
		}
		pos += len(raw) + 1
	}
}

// parseEvent parses one kind@where:N event; fail builds the located
// *SpecError for this event.
func parseEvent(part string, fail func(string, ...any) error) (event, error) {
	if part == "" {
		return event{}, fail("empty event (stray comma?); %s", validEvents)
	}
	kind, point, ok := strings.Cut(part, "@")
	if !ok {
		return event{}, fail("missing %q: want kind@where:N, e.g. crash@op:120", "@")
	}
	where, num, ok := strings.Cut(point, ":")
	if !ok {
		return event{}, fail("missing %q after %q: want kind@where:N, e.g. %s@%s:5", ":", where, kind, where)
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil || n < 0 {
		return event{}, fail("count %q is not a non-negative integer", num)
	}
	ev := event{n: n}
	switch {
	case kind == "ioerr" && where == "alloc":
		if n < 1 {
			return event{}, fail("allocations are numbered from 1; ioerr@alloc:1 fails the first allocation")
		}
		ev.kind = evAllocErr
	case kind == "diskerr" && where == "io":
		if n < 1 {
			return event{}, fail("drive requests are numbered from 1; diskerr@io:1 fails the first request")
		}
		ev.kind = evDiskErr
	case (kind == "crash" || kind == "tear") && where == "op":
		ev.kind = evCrashOp
		ev.torn = kind == "tear"
	case (kind == "crash" || kind == "tear") && where == "day":
		ev.kind = evCrashDay
		ev.torn = kind == "tear"
	case kind != "ioerr" && kind != "diskerr" && kind != "crash" && kind != "tear":
		return event{}, fail("unknown event kind %q; %s", kind, validEvents)
	default:
		return event{}, fail("%s does not take point %q; %s", kind, where, validEvents)
	}
	return ev, nil
}

// MustParse is Parse for specs known good at compile time; it panics on
// error.
func MustParse(spec string) *Plan {
	p, err := Parse(spec)
	if err != nil {
		//lint:ignore ffsvet/nopanic Must* constructor idiom: reachable only from compile-time-constant fault specs
		panic(err)
	}
	return p
}

// Spec returns the spec string the plan was parsed from.
func (p *Plan) Spec() string { return p.spec }

// Empty reports whether the plan has no events.
func (p *Plan) Empty() bool { return p == nil || len(p.events) == 0 }

// Clone returns a plan with the same events and fresh counters, for
// running the same plan against another replay concurrently.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	c := &Plan{spec: p.spec, events: make([]event, len(p.events))}
	copy(c.events, p.events)
	for i := range c.events {
		c.events[i].done = false
	}
	return c
}

// BeforeAlloc implements ffs.AllocFaultHook: it counts allocations and
// fails the ones an ioerr@alloc event names with ErrInjected.
func (p *Plan) BeforeAlloc(frags int) error {
	p.allocs++
	for i := range p.events {
		ev := &p.events[i]
		if ev.kind == evAllocErr && !ev.done && ev.n == p.allocs {
			ev.done = true
			return fmt.Errorf("%w (allocation %d, %d frags)", ErrInjected, p.allocs, frags)
		}
	}
	return nil
}

// BeforeIO implements disk.IOFaultHook: it counts drive requests and
// injects a medium error into the ones a diskerr@io event names.
func (p *Plan) BeforeIO(write bool, lba int64, nsect int) error {
	p.ios++
	for i := range p.events {
		ev := &p.events[i]
		if ev.kind == evDiskErr && !ev.done && ev.n == p.ios {
			ev.done = true
			return fmt.Errorf("%w (request %d at lba %d)", ErrInjected, p.ios, lba)
		}
	}
	return nil
}

// CrashBefore reports whether the plan calls for a crash before
// applying operation op on the given simulated day. Each crash event
// fires at most once; a day-crash fires at the first boundary whose day
// is at least the target (days with no operations are skipped over).
func (p *Plan) CrashBefore(op, day int) *Crash {
	if p == nil {
		return nil
	}
	for i := range p.events {
		ev := &p.events[i]
		if ev.done {
			continue
		}
		fire := (ev.kind == evCrashOp && int64(op) == ev.n) ||
			(ev.kind == evCrashDay && int64(day) >= ev.n)
		if fire {
			ev.done = true
			return &Crash{Op: op, Day: day, Torn: ev.torn}
		}
	}
	return nil
}

// CrashPoints returns n distinct operation indices in [0, maxOp),
// deterministically derived from seed and sorted ascending — the crash
// schedule the differential recovery harness sweeps.
func CrashPoints(seed int64, n, maxOp int) []int {
	if n > maxOp {
		n = maxOp
	}
	rng := rand.New(rand.NewSource(seed))
	out := append([]int(nil), rng.Perm(maxOp)[:n]...)
	sort.Ints(out)
	return out
}
