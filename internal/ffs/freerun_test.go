package ffs

import "testing"

// carveRuns allocates every data block of group cg and then frees the
// given (start, len) block runs, leaving a free map whose runs are
// exactly the ones listed.
func carveRuns(t *testing.T, c *CylGroup, runs [][2]int) {
	t.Helper()
	fpb := c.fs.fpb
	c.mutateFrags(c.DataStart(), c.nfrags, true)
	for _, r := range runs {
		c.mutateFrags(r[0]*fpb, (r[0]+r[1])*fpb, false)
	}
}

func TestFindFreeRunDisciplines(t *testing.T) {
	fs := newSmallFs(t)
	c := fs.Cg(1)
	ds := c.DataStart() / fs.fpb
	// Runs: len 3, 7, 2, 4, 2, 7 — separated so none merge.
	carveRuns(t, c, [][2]int{
		{ds + 2, 3}, {ds + 10, 7}, {ds + 20, 2}, {ds + 30, 4}, {ds + 40, 2}, {ds + 50, 7},
	})
	cases := []struct {
		n    int
		fit  RunFit
		want int
	}{
		{2, FirstFit, ds + 2},    // first run with ≥ 2
		{2, BestFit, ds + 20},    // exact fit beats the earlier len-3 run
		{2, LargestFit, ds + 10}, // earliest of the two len-7 runs
		{4, FirstFit, ds + 10},
		{4, BestFit, ds + 30}, // exact fit
		{5, BestFit, ds + 10}, // only the len-7 runs qualify; earliest wins
		{7, FirstFit, ds + 10},
		{7, BestFit, ds + 10},
		{7, LargestFit, ds + 10},
	}
	for _, tc := range cases {
		if got := c.FindFreeRun(tc.n, tc.fit); got != tc.want {
			t.Errorf("FindFreeRun(%d, %v) = %d, want %d", tc.n, tc.fit, got, tc.want)
		}
	}
}

func TestFindFreeRunExhausted(t *testing.T) {
	fs := newSmallFs(t)
	c := fs.Cg(1)
	ds := c.DataStart() / fs.fpb
	carveRuns(t, c, [][2]int{{ds + 2, 3}, {ds + 8, 4}})
	for _, fit := range []RunFit{FirstFit, BestFit, LargestFit} {
		if got := c.FindFreeRun(5, fit); got != -1 {
			t.Errorf("FindFreeRun(5, %v) = %d, want -1", fit, got)
		}
	}
}

func TestFreeRunLenAt(t *testing.T) {
	fs := newSmallFs(t)
	c := fs.Cg(1)
	ds := c.DataStart() / fs.fpb
	carveRuns(t, c, [][2]int{{ds + 10, 7}})
	if got := c.FreeRunLenAt(ds+10, 100); got != 7 {
		t.Errorf("FreeRunLenAt(full) = %d, want 7", got)
	}
	if got := c.FreeRunLenAt(ds+12, 100); got != 5 {
		t.Errorf("FreeRunLenAt(mid) = %d, want 5", got)
	}
	if got := c.FreeRunLenAt(ds+10, 3); got != 3 {
		t.Errorf("FreeRunLenAt(capped) = %d, want 3", got)
	}
	if got := c.FreeRunLenAt(ds, 5); got != 0 {
		t.Errorf("FreeRunLenAt(allocated) = %d, want 0", got)
	}
	if got := c.FreeRunLenAt(-1, 5); got != 0 {
		t.Errorf("FreeRunLenAt(-1) = %d, want 0", got)
	}
	if got := c.FreeRunLenAt(c.NBlocks(), 5); got != 0 {
		t.Errorf("FreeRunLenAt(past end) = %d, want 0", got)
	}
}

func TestBlockAddrAndFreeRunAfter(t *testing.T) {
	fs := newSmallFs(t)
	c := fs.Cg(1)
	ds := c.DataStart() / fs.fpb
	carveRuns(t, c, [][2]int{{ds + 2, 3}})
	if got := fs.BlockAddr(1, 0); got != fs.CgStart(1) {
		t.Errorf("BlockAddr(1,0) = %d, want group start %d", got, fs.CgStart(1))
	}
	addr := fs.BlockAddr(1, ds+2)
	if got := fs.CgIndexOfAddr(addr); got != 1 {
		t.Errorf("CgIndexOfAddr = %d, want 1", got)
	}
	// Two free blocks follow the first block of the run.
	if got := fs.FreeRunAfter(addr, 100); got != 2 {
		t.Errorf("FreeRunAfter(run head) = %d, want 2", got)
	}
	if got := fs.FreeRunAfter(fs.BlockAddr(1, ds+4), 100); got != 0 {
		t.Errorf("FreeRunAfter(run tail) = %d, want 0", got)
	}
	if got := fs.FreeRunAfter(addr, 1); got != 1 {
		t.Errorf("FreeRunAfter(capped) = %d, want 1", got)
	}
}
