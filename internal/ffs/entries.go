package ffs

// Directory entries are kept in a slice sorted by name. Directories in
// the aging workloads are small (one per cylinder group plus the root),
// so binary search beats hashing once map overhead is counted, the
// entry table recycles with its File through the arena without
// reallocating, and iteration order is deterministic by construction —
// the one place the maporder invariant used to need careful sorting.

// dirEnt is one directory entry.
type dirEnt struct {
	name string
	file *File
}

// entryIndex returns name's position in d's sorted entry table and
// whether it is present; absent names return their insertion point.
func (d *File) entryIndex(name string) (int, bool) {
	lo, hi := 0, len(d.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d.entries[mid].name < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(d.entries) && d.entries[lo].name == name
}

// lookupEntry returns the child named name.
func (d *File) lookupEntry(name string) (*File, bool) {
	if i, ok := d.entryIndex(name); ok {
		return d.entries[i].file, true
	}
	return nil, false
}

// NumEntries returns the number of entries in the directory.
func (d *File) NumEntries() int { return len(d.entries) }

// EachEntry calls fn for every entry in ascending name order.
func (d *File) EachEntry(fn func(name string, f *File)) {
	for _, e := range d.entries {
		fn(e.name, e.file)
	}
}

// putEntry inserts or replaces name → f in the sorted table.
func (d *File) putEntry(name string, f *File) {
	i, ok := d.entryIndex(name)
	if ok {
		d.entries[i].file = f
		return
	}
	d.entries = append(d.entries, dirEnt{})
	copy(d.entries[i+1:], d.entries[i:])
	d.entries[i] = dirEnt{name: name, file: f}
}

// deleteEntry removes name; absent names are a no-op.
func (d *File) deleteEntry(name string) {
	i, ok := d.entryIndex(name)
	if !ok {
		return
	}
	copy(d.entries[i:], d.entries[i+1:])
	d.entries[len(d.entries)-1] = dirEnt{}
	d.entries = d.entries[:len(d.entries)-1]
}
