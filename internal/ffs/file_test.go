package ffs

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCreate(t *testing.T, fs *FileSystem, dir *File, name string, size int64) *File {
	t.Helper()
	f, err := fs.CreateFile(dir, name, size, 0)
	if err != nil {
		t.Fatalf("create %s (%d bytes): %v", name, size, err)
	}
	return f
}

func checkAll(t *testing.T, fs *FileSystem) {
	t.Helper()
	if err := fs.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateSmallFile(t *testing.T) {
	fs := newSmallFs(t)
	f := mustCreate(t, fs, fs.Root(), "a", 3000)
	if len(f.Blocks) != 1 || f.TailFrags != 3 {
		t.Errorf("3000-byte file: %d blocks, tail %d (want 1, 3)", len(f.Blocks), f.TailFrags)
	}
	checkAll(t, fs)
}

func TestCreateExactBlockFile(t *testing.T) {
	fs := newSmallFs(t)
	f := mustCreate(t, fs, fs.Root(), "a", 8192)
	if len(f.Blocks) != 1 || f.TailFrags != 8 {
		t.Errorf("8KB file: %d blocks, tail %d", len(f.Blocks), f.TailFrags)
	}
	checkAll(t, fs)
}

func TestCreateTwoBlockFile(t *testing.T) {
	fs := newSmallFs(t)
	f := mustCreate(t, fs, fs.Root(), "a", 9000)
	if len(f.Blocks) != 2 || f.TailFrags != 1 {
		t.Errorf("9000-byte file: %d blocks, tail %d (want 2, 1)", len(f.Blocks), f.TailFrags)
	}
	checkAll(t, fs)
}

func TestCreateZeroByteFile(t *testing.T) {
	fs := newSmallFs(t)
	f := mustCreate(t, fs, fs.Root(), "empty", 0)
	if len(f.Blocks) != 0 || f.TailFrags != 0 || f.Size != 0 {
		t.Errorf("empty file has blocks: %+v", f)
	}
	checkAll(t, fs)
}

func TestCreateDuplicateName(t *testing.T) {
	fs := newSmallFs(t)
	mustCreate(t, fs, fs.Root(), "a", 100)
	if _, err := fs.CreateFile(fs.Root(), "a", 100, 0); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create: %v, want ErrExists", err)
	}
}

func TestCreateFileContiguousOnEmptyFs(t *testing.T) {
	fs := newSmallFs(t)
	f := mustCreate(t, fs, fs.Root(), "seq", 64<<10) // 8 blocks
	if len(f.Blocks) != 8 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	if !f.RunIsContiguous(0, 8, fs.fpb) {
		t.Errorf("64KB file on empty fs not contiguous: %v", f.Blocks)
	}
	checkAll(t, fs)
}

func TestIndirectBoundaryChangesGroup(t *testing.T) {
	fs := newSmallFs(t)
	// 13 blocks (104 KB): block 12 must live in a different group than
	// block 11, and a single indirect block must exist.
	f := mustCreate(t, fs, fs.Root(), "big", 104<<10)
	if len(f.Blocks) != 13 {
		t.Fatalf("blocks = %d, want 13", len(f.Blocks))
	}
	if len(f.Indirects) != 1 || f.Indirects[0].BeforeLbn != NDirect || f.Indirects[0].Level != 1 {
		t.Fatalf("indirects = %+v", f.Indirects)
	}
	cg11 := fs.cgIndexOf(f.Blocks[11])
	cg12 := fs.cgIndexOf(f.Blocks[12])
	if cg11 == cg12 {
		t.Errorf("blocks 11 and 12 both in cg %d; want a section switch", cg11)
	}
	if fs.cgIndexOf(f.Indirects[0].Addr) != cg12 {
		t.Errorf("indirect in cg %d, data in cg %d", fs.cgIndexOf(f.Indirects[0].Addr), cg12)
	}
	// The 13th block is never contiguous with the 12th: the paper's
	// mandatory seek.
	if f.Blocks[12] == f.Blocks[11]+Daddr(fs.fpb) {
		t.Error("block 12 contiguous with block 11 despite section switch")
	}
	checkAll(t, fs)
}

func TestNoIndirectAtTwelveBlocks(t *testing.T) {
	fs := newSmallFs(t)
	f := mustCreate(t, fs, fs.Root(), "exact", 96<<10) // 12 blocks
	if len(f.Blocks) != 12 || len(f.Indirects) != 0 {
		t.Errorf("96KB file: %d blocks, %d indirects", len(f.Blocks), len(f.Indirects))
	}
	checkAll(t, fs)
}

func TestDoubleIndirectBoundary(t *testing.T) {
	p := smallParams()
	p.SizeBytes = 64 << 20
	p.NumCg = 4
	p.MaxBpg = 64 // shrink sections so the test fs stays small
	fs, err := NewFileSystem(p, nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// With 2048 pointers per indirect the double boundary is at block
	// 2060 — too big for a small fs. Use a fake by checking only the
	// maxbpg switch here: a 70-block file must switch groups at 64.
	f, err := fs.CreateFile(fs.Root(), "big", 70*8192, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fs.cgIndexOf(f.Blocks[63]) == fs.cgIndexOf(f.Blocks[64]) {
		t.Error("no group switch at maxbpg boundary")
	}
	if len(f.Indirects) != 1 {
		t.Errorf("indirects = %d, want 1 (single at 12)", len(f.Indirects))
	}
	checkAll(t, fs)
}

func TestAppendGrowsTailInPlace(t *testing.T) {
	fs := newSmallFs(t)
	f := mustCreate(t, fs, fs.Root(), "grow", 1024) // 1 frag
	addr := f.Blocks[0]
	if err := fs.Append(f, 1024, 1); err != nil { // → 2 frags
		t.Fatal(err)
	}
	if f.Blocks[0] != addr {
		t.Errorf("tail moved on in-place extension")
	}
	if f.TailFrags != 2 || f.Size != 2048 {
		t.Errorf("tail %d size %d", f.TailFrags, f.Size)
	}
	if fs.Stats.FragExtends == 0 {
		t.Error("no fragextend recorded")
	}
	checkAll(t, fs)
}

func TestAppendRelocatesBlockedTail(t *testing.T) {
	fs := newSmallFs(t)
	f := mustCreate(t, fs, fs.Root(), "grow", 1024)
	// Occupy the fragment right after the tail.
	c := fs.CgOf(f.Blocks[0])
	rel := c.relFrag(f.Blocks[0])
	c.mutateFrags(rel+1, rel+2, true)
	addr := f.Blocks[0]
	if err := fs.Append(f, 2048, 1); err != nil {
		t.Fatal(err)
	}
	if f.Blocks[0] == addr {
		t.Error("tail did not move despite blocker")
	}
	if fs.Stats.FragRelocations == 0 {
		t.Error("no relocation recorded")
	}
	// Undo the raw blocker so the extent check passes.
	c.mutateFrags(rel+1, rel+2, false)
	checkAll(t, fs)
}

func TestAppendPromotesTailToBlock(t *testing.T) {
	fs := newSmallFs(t)
	f := mustCreate(t, fs, fs.Root(), "grow", 3000)
	if err := fs.Append(f, 20000, 1); err != nil {
		t.Fatal(err)
	}
	if f.Size != 23000 {
		t.Fatalf("size = %d", f.Size)
	}
	if len(f.Blocks) != 3 || f.TailFrags != fs.fragsForBytes(23000-2*8192) {
		t.Errorf("blocks %d tail %d", len(f.Blocks), f.TailFrags)
	}
	checkAll(t, fs)
}

func TestTruncateToZero(t *testing.T) {
	fs := newSmallFs(t)
	f := mustCreate(t, fs, fs.Root(), "t", 200<<10)
	free := fs.FreeFrags()
	if err := fs.Truncate(f, 0, 1); err != nil {
		t.Fatal(err)
	}
	if f.Size != 0 || len(f.Blocks) != 0 || len(f.Indirects) != 0 {
		t.Errorf("truncate left %d blocks %d indirects", len(f.Blocks), len(f.Indirects))
	}
	if fs.FreeFrags() <= free {
		t.Error("truncate freed nothing")
	}
	checkAll(t, fs)
}

func TestTruncatePartial(t *testing.T) {
	fs := newSmallFs(t)
	f := mustCreate(t, fs, fs.Root(), "t", 200<<10) // 25 blocks, indirect
	if err := fs.Truncate(f, 100<<10, 1); err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 13 || len(f.Indirects) != 1 {
		t.Errorf("13 blocks expected, got %d (%d indirects)", len(f.Blocks), len(f.Indirects))
	}
	checkAll(t, fs)
	if err := fs.Truncate(f, 50<<10, 2); err != nil { // 7 blocks: drop indirect
		t.Fatal(err)
	}
	if len(f.Blocks) != 7 || len(f.Indirects) != 0 {
		t.Errorf("7 blocks expected, got %d (%d indirects)", len(f.Blocks), len(f.Indirects))
	}
	checkAll(t, fs)
	if err := fs.Truncate(f, 1000, 3); err != nil { // 1 frag tail
		t.Fatal(err)
	}
	if len(f.Blocks) != 1 || f.TailFrags != 1 {
		t.Errorf("blocks %d tail %d", len(f.Blocks), f.TailFrags)
	}
	checkAll(t, fs)
	// Growing through Truncate is rejected.
	if err := fs.Truncate(f, 5000, 4); err == nil {
		t.Error("growing truncate succeeded")
	}
}

func TestDeleteFreesEverything(t *testing.T) {
	fs := newSmallFs(t)
	free := fs.FreeFrags()
	inodesFree := fs.Cg(0).NIFree()
	f := mustCreate(t, fs, fs.Root(), "d", 300<<10)
	if err := fs.Delete(f); err != nil {
		t.Fatal(err)
	}
	// Directory growth for the entry is not undone (FFS semantics), so
	// compare against the state captured before the create, allowing
	// the root directory to have grown.
	rootGrowth := int64(fs.Root().BlocksOnDisk(fs.fpb))*int64(fs.P.FragSize) - 1024
	_ = rootGrowth
	if got := fs.FreeFrags(); got < free-8 { // root may have grown a frag or two
		t.Errorf("free frags %d, want ≈ %d", got, free)
	}
	if fs.Cg(0).NIFree() != inodesFree {
		t.Errorf("inode not freed")
	}
	if _, ok := fs.Lookup(fs.Root(), "d"); ok {
		t.Error("entry survived delete")
	}
	checkAll(t, fs)
}

func TestDeleteDirectoryRules(t *testing.T) {
	fs := newSmallFs(t)
	d, err := fs.Mkdir(fs.Root(), "sub", 0)
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, fs, d, "child", 100)
	if err := fs.Delete(d); err == nil {
		t.Error("deleted non-empty directory")
	}
	child, _ := fs.Lookup(d, "child")
	if err := fs.Delete(child); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(d); err != nil {
		t.Errorf("delete empty dir: %v", err)
	}
	if err := fs.Delete(fs.Root()); err == nil {
		t.Error("deleted root")
	}
	checkAll(t, fs)
}

func TestDirprefSpreadsDirectories(t *testing.T) {
	fs := newSmallFs(t)
	seen := map[int]bool{}
	for i := 0; i < fs.NumCg(); i++ {
		d, err := fs.Mkdir(fs.Root(), fmt.Sprintf("d%d", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		seen[fs.InoToCg(d.Ino)] = true
	}
	if len(seen) != fs.NumCg() {
		t.Errorf("%d directories landed in %d groups; dirpref should spread them",
			fs.NumCg(), len(seen))
	}
	checkAll(t, fs)
}

func TestFilesInheritDirectoryGroup(t *testing.T) {
	fs := newSmallFs(t)
	d, _ := fs.Mkdir(fs.Root(), "sub", 0)
	dirCg := fs.InoToCg(d.Ino)
	f := mustCreate(t, fs, d, "f", 30<<10)
	if fs.InoToCg(f.Ino) != dirCg {
		t.Errorf("file inode in cg %d, dir in cg %d", fs.InoToCg(f.Ino), dirCg)
	}
	if fs.cgIndexOf(f.Blocks[0]) != dirCg {
		t.Errorf("file data in cg %d, dir in cg %d", fs.cgIndexOf(f.Blocks[0]), dirCg)
	}
	checkAll(t, fs)
}

func TestNoSpaceCleanup(t *testing.T) {
	p := smallParams()
	p.SizeBytes = 4 << 20 // tiny
	p.NumCg = 2
	fs, err := NewFileSystem(p, nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Ask for far more than fits.
	if _, err := fs.CreateFile(fs.Root(), "huge", 8<<20, 0); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("create huge: %v, want ErrNoSpace", err)
	}
	if _, ok := fs.Lookup(fs.Root(), "huge"); ok {
		t.Error("failed create left an entry")
	}
	checkAll(t, fs)
	if fs.Stats.NoSpaceFailures == 0 {
		t.Error("no ENOSPC recorded")
	}
}

func TestMinfreeReserveHonoured(t *testing.T) {
	p := smallParams()
	p.SizeBytes = 8 << 20
	p.NumCg = 2
	fs, err := NewFileSystem(p, nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Fill until failure; utilization must stop near 1 - minfree.
	var i int
	for i = 0; i < 10000; i++ {
		if _, err := fs.CreateFile(fs.Root(), fmt.Sprintf("f%d", i), 64<<10, 0); err != nil {
			break
		}
	}
	u := fs.Utilization()
	if u > 0.92 || u < 0.80 {
		t.Errorf("utilization at ENOSPC = %v, want ≈ 0.90", u)
	}
	checkAll(t, fs)
}

func TestExtentsMergeContiguous(t *testing.T) {
	fs := newSmallFs(t)
	f := mustCreate(t, fs, fs.Root(), "e", 56<<10) // one cluster
	ext := f.DataExtents(fs.fpb)
	if len(ext) != 1 || ext[0].Frags != 56 {
		t.Errorf("extents = %+v, want one 56-frag extent", ext)
	}
	if f.ExtentCount(fs.fpb) != 1 {
		t.Error("ExtentCount != 1")
	}
}

func TestReadSequenceIncludesIndirects(t *testing.T) {
	fs := newSmallFs(t)
	f := mustCreate(t, fs, fs.Root(), "e", 104<<10) // 13 blocks + indirect
	seq := f.ReadSequence(fs.fpb)
	metaSeen := false
	for i, e := range seq {
		if e.Meta {
			metaSeen = true
			// The indirect must come before the final data extent.
			if i == len(seq)-1 {
				t.Error("indirect block last in read sequence")
			}
		}
	}
	if !metaSeen {
		t.Error("no indirect block in read sequence")
	}
	var frags int
	for _, e := range seq {
		frags += e.Frags
	}
	if frags != f.BlocksOnDisk(fs.fpb)+fs.fpb {
		t.Errorf("sequence frags = %d, want data+indirect = %d", frags, f.BlocksOnDisk(fs.fpb)+fs.fpb)
	}
}

func TestCloneIndependence(t *testing.T) {
	fs := newSmallFs(t)
	mustCreate(t, fs, fs.Root(), "a", 30<<10)
	cl := fs.Clone()
	if err := cl.Check(); err != nil {
		t.Fatalf("clone inconsistent: %v", err)
	}
	// Mutate the clone; original must not change.
	freeBefore := fs.FreeFrags()
	mustCreateOn := func(fsys *FileSystem, name string) {
		if _, err := fsys.CreateFile(fsys.Root(), name, 100<<10, 1); err != nil {
			t.Fatal(err)
		}
	}
	mustCreateOn(cl, "b")
	if fs.FreeFrags() != freeBefore {
		t.Error("mutating clone changed original free count")
	}
	if _, ok := fs.Lookup(fs.Root(), "b"); ok {
		t.Error("clone file visible in original")
	}
	checkAll(t, fs)
	checkAll(t, cl)
}

func TestPathNames(t *testing.T) {
	fs := newSmallFs(t)
	d, _ := fs.Mkdir(fs.Root(), "sub", 0)
	f := mustCreate(t, fs, d, "leaf", 10)
	if got := f.Path(); got != "/sub/leaf" {
		t.Errorf("Path = %q", got)
	}
}

func TestInodeDaddrWithinMetadata(t *testing.T) {
	fs := newSmallFs(t)
	f := mustCreate(t, fs, fs.Root(), "x", 10)
	d := fs.InodeDaddr(f.Ino)
	c := fs.CgOf(d)
	if rel := c.relFrag(d); rel >= c.metaFrags {
		t.Errorf("inode daddr %d (rel %d) outside metadata area (%d)", d, rel, c.metaFrags)
	}
}

// Property: a random workload of creates, appends, truncates and
// deletes leaves the file system fully consistent.
func TestQuickFileOpsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs, err := NewFileSystem(smallParams(), nopPolicy{})
		if err != nil {
			return false
		}
		var live []*File
		for op := 0; op < 150; op++ {
			switch {
			case len(live) > 0 && rng.Intn(4) == 0:
				k := rng.Intn(len(live))
				if err := fs.Delete(live[k]); err != nil {
					return false
				}
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			case len(live) > 0 && rng.Intn(3) == 0:
				k := rng.Intn(len(live))
				newSize := rng.Int63n(live[k].Size + 1)
				if err := fs.Truncate(live[k], newSize, op); err != nil {
					return false
				}
			case len(live) > 0 && rng.Intn(3) == 0:
				k := rng.Intn(len(live))
				if err := fs.Append(live[k], rng.Int63n(64<<10), op); err != nil &&
					!errors.Is(err, ErrNoSpace) {
					return false
				}
			default:
				size := rng.Int63n(150 << 10)
				f, err := fs.CreateFile(fs.Root(), fmt.Sprintf("f%d", op), size, op)
				if errors.Is(err, ErrNoSpace) {
					continue
				}
				if err != nil {
					return false
				}
				live = append(live, f)
			}
		}
		return fs.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRename(t *testing.T) {
	fs := newSmallFs(t)
	a, _ := fs.Mkdir(fs.Root(), "a", 0)
	b, _ := fs.Mkdir(fs.Root(), "b", 0)
	f := mustCreate(t, fs, a, "doc", 30<<10)

	if err := fs.Rename(f, b, "doc2", 1); err != nil {
		t.Fatal(err)
	}
	if f.Path() != "/b/doc2" {
		t.Errorf("path = %q", f.Path())
	}
	if _, ok := fs.Lookup(a, "doc"); ok {
		t.Error("old entry survived")
	}
	if got, ok := fs.Lookup(b, "doc2"); !ok || got != f {
		t.Error("new entry missing")
	}
	checkAll(t, fs)

	// Same-directory rename.
	if err := fs.Rename(f, b, "doc3", 2); err != nil {
		t.Fatal(err)
	}
	if f.Path() != "/b/doc3" {
		t.Errorf("path = %q", f.Path())
	}
	checkAll(t, fs)
}

func TestRenameRejections(t *testing.T) {
	fs := newSmallFs(t)
	a, _ := fs.Mkdir(fs.Root(), "a", 0)
	sub, _ := fs.Mkdir(a, "sub", 0)
	f := mustCreate(t, fs, a, "doc", 10<<10)
	other := mustCreate(t, fs, sub, "doc", 10<<10)

	if err := fs.Rename(f, other, "x", 1); err == nil {
		t.Error("rename into a plain file accepted")
	}
	if err := fs.Rename(f, sub, "doc", 1); !errors.Is(err, ErrExists) {
		t.Errorf("clobbering rename: %v", err)
	}
	if err := fs.Rename(fs.Root(), a, "r", 1); err == nil {
		t.Error("renaming root accepted")
	}
	if err := fs.Rename(a, sub, "loop", 1); err == nil {
		t.Error("moving a directory into its descendant accepted")
	}
	checkAll(t, fs)
}
