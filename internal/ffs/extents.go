package ffs

// Extent is a physically contiguous run of fragments belonging to one
// file, in logical order. The benchmark harness turns extents into disk
// requests; every extent boundary is a potential seek.
type Extent struct {
	Addr  Daddr
	Frags int
	Meta  bool // an indirect block rather than file data
}

// DataExtents returns f's data blocks merged into maximal physically
// contiguous extents, in logical order.
func (f *File) DataExtents(fpb int) []Extent {
	var out []Extent
	for i, addr := range f.Blocks {
		n := fpb
		if i == len(f.Blocks)-1 {
			n = f.TailFrags
		}
		if len(out) > 0 && !out[len(out)-1].Meta &&
			out[len(out)-1].Addr+Daddr(out[len(out)-1].Frags) == addr {
			out[len(out)-1].Frags += n
			continue
		}
		out = append(out, Extent{Addr: addr, Frags: n})
	}
	return out
}

// ReadSequence returns the on-disk access sequence of a sequential read
// of f: indirect blocks are visited immediately before the first data
// block they map, as the kernel must fetch them to learn the addresses
// that follow. Contiguous accesses are merged.
func (f *File) ReadSequence(fpb int) []Extent {
	// Indirect blocks sorted by the data block they precede; Level 2
	// (double parent) is read before its first child.
	next := 0 // index into f.Indirects, which Append builds in order
	var out []Extent
	add := func(addr Daddr, n int, meta bool) {
		if len(out) > 0 && !out[len(out)-1].Meta && !meta &&
			out[len(out)-1].Addr+Daddr(out[len(out)-1].Frags) == addr {
			out[len(out)-1].Frags += n
			return
		}
		out = append(out, Extent{Addr: addr, Frags: n, Meta: meta})
	}
	for i, addr := range f.Blocks {
		for next < len(f.Indirects) && f.Indirects[next].BeforeLbn == i {
			add(f.Indirects[next].Addr, fpb, true)
			next++
		}
		n := fpb
		if i == len(f.Blocks)-1 {
			n = f.TailFrags
		}
		add(addr, n, false)
	}
	return out
}

// ExtentCount returns the number of data extents — 1 for a perfectly
// laid out file.
func (f *File) ExtentCount(fpb int) int { return len(f.DataExtents(fpb)) }
