package ffs

// BlockState classifies one block of a cylinder group for map dumps.
type BlockState byte

// Block map cell states.
const (
	// BlockMeta is superblock/cg-header/inode-table space.
	BlockMeta BlockState = 'M'
	// BlockFree is a fully free block.
	BlockFree BlockState = '.'
	// BlockFull is a fully allocated block.
	BlockFull BlockState = '#'
	// BlockPartial holds a mix of free and allocated fragments.
	BlockPartial BlockState = '+'
)

// BlockMap returns group cg's per-block states in block order — the
// raw material for allocation-map visualizations (cmd/fsmap). The
// string form makes fragmentation visible at a glance: long '#' runs
// are clustered data, '.' runs are free pools, alternating '#.#.'
// bands are the crumb fields the original policy leaves behind.
func (fs *FileSystem) BlockMap(cg int) []BlockState {
	c := fs.cgs[cg]
	fpb := fs.fpb
	metaBlocks := (c.metaFrags + fpb - 1) / fpb
	out := make([]BlockState, c.nblk)
	for b := 0; b < c.nblk; b++ {
		switch {
		case b < metaBlocks:
			out[b] = BlockMeta
		case c.blkfree.Test(b):
			out[b] = BlockFree
		case c.pattern(b).nf == 0:
			out[b] = BlockFull
		default:
			out[b] = BlockPartial
		}
	}
	return out
}
