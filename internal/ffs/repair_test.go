package ffs

import (
	"bytes"
	"errors"
	"testing"
)

// Each repair test corrupts a healthy file system the way the Check
// tests do, then asserts Repair returns a report of the damage and
// leaves the file system Check-clean.

func mustRepair(t *testing.T, fs *FileSystem) *RepairReport {
	t.Helper()
	rep, err := fs.Repair()
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if err := fs.Check(); err != nil {
		t.Fatalf("Check after Repair: %v", err)
	}
	return rep
}

func TestRepairOnCleanFsIsNoop(t *testing.T) {
	fs, _ := corruptibleFs(t)
	rep := mustRepair(t, fs)
	if rep.Any() {
		t.Fatalf("repair of a clean fs reported changes: %v", rep)
	}
}

func TestRepairFixesEachCorruptionClass(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(fs *FileSystem, f *File)
	}{
		{"leaked fragment", func(fs *FileSystem, f *File) {
			c := fs.CgOf(f.Blocks[0])
			c.free.Clear(c.free.NextSet(0))
		}},
		{"counter drift", func(fs *FileSystem, f *File) {
			fs.Cg(1).nffree++
		}},
		{"frsum drift", func(fs *FileSystem, f *File) {
			fs.Cg(0).frsum[3]++
		}},
		{"clusterSum drift", func(fs *FileSystem, f *File) {
			c := fs.Cg(2)
			c.clusterSum[fs.P.MaxContig]--
			c.clusterSum[1]++
		}},
		{"block map drift", func(fs *FileSystem, f *File) {
			c := fs.Cg(2)
			c.blkfree.Clear(c.blkfree.NextSet(0))
		}},
		{"size shape mismatch", func(fs *FileSystem, f *File) {
			f.Size += 9000
		}},
		{"missing indirect", func(fs *FileSystem, f *File) {
			fs.freeRange(f.Indirects[0].Addr, fs.fpb)
			f.Indirects = nil
		}},
		{"orphan indirect", func(fs *FileSystem, f *File) {
			addr, err := fs.allocBlockMech(0, NilDaddr)
			if err != nil {
				panic(err)
			}
			f.Indirects = append(f.Indirects, Indirect{BeforeLbn: 5, Addr: addr, Level: 1})
		}},
		{"inode bitmap drift", func(fs *FileSystem, f *File) {
			fs.ifree(f.Ino)
		}},
		{"ndir drift", func(fs *FileSystem, f *File) {
			fs.Cg(0).ndir++
		}},
		{"broken dir linkage", func(fs *FileSystem, f *File) {
			f.Parent.deleteEntry(f.Name)
		}},
		{"renamed entry", func(fs *FileSystem, f *File) {
			parent := f.Parent
			parent.deleteEntry(f.Name)
			parent.putEntry("sneaky", f)
		}},
		{"layout counter drift", func(fs *FileSystem, f *File) {
			fs.layoutOpt++
		}},
		{"negative size", func(fs *FileSystem, f *File) {
			// The blocks become leaks; the file shrinks to empty.
			f.Size = -5
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs, f := corruptibleFs(t)
			tc.corrupt(fs, f)
			if err := fs.Check(); err == nil {
				t.Fatal("fixture corruption was not detectable")
			}
			rep := mustRepair(t, fs)
			if !rep.Any() {
				t.Fatalf("repair fixed %q but reported no changes", tc.name)
			}
		})
	}
}

func TestRepairDoubleAllocationTruncatesLaterClaimant(t *testing.T) {
	fs, f := corruptibleFs(t)
	// Two logical blocks point at the same disk block; the fragments of
	// the abandoned block leak.
	fs.freeRange(f.Blocks[3], fs.fpb)
	f.Blocks[3] = f.Blocks[4]
	wantCheckError(t, fs, "doubly allocated")
	rep := mustRepair(t, fs)
	if rep.TruncatedFiles != 1 {
		t.Fatalf("TruncatedFiles = %d, want 1", rep.TruncatedFiles)
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("victim keeps %d blocks, want 4 (cut at the conflict)", len(f.Blocks))
	}
}

func TestRepairTornWrite(t *testing.T) {
	fs, f := corruptibleFs(t)
	freeBefore := fs.FreeFrags()
	nblocks := len(f.Blocks)
	if !fs.TearFile(f) {
		t.Fatal("TearFile refused a multi-block file")
	}
	if err := fs.Check(); err == nil {
		t.Fatal("torn write not detected")
	}
	rep := mustRepair(t, fs)
	if rep.TruncatedFiles != 0 && rep.ShapeFixes == 0 {
		t.Fatalf("unexpected report: %v", rep)
	}
	if rep.LeakedFrags == 0 {
		t.Fatalf("torn block's fragments not reported leaked: %v", rep)
	}
	if len(f.Blocks) != nblocks-1 {
		t.Fatalf("file has %d blocks, want %d", len(f.Blocks), nblocks-1)
	}
	// The torn block's fragments are free again.
	if got := fs.FreeFrags(); got != freeBefore+int64(fs.fpb) {
		t.Fatalf("FreeFrags = %d, want %d", got, freeBefore+int64(fs.fpb))
	}
}

func TestRepairReattachesOrphan(t *testing.T) {
	fs, f := corruptibleFs(t)
	// Sever both directions: no entry, dangling parent pointer.
	f.Parent.deleteEntry(f.Name)
	f.Parent = &File{Ino: f.Parent.Ino, IsDir: true} // dead copy
	rep := mustRepair(t, fs)
	if rep.ReattachedOrphans != 1 {
		t.Fatalf("ReattachedOrphans = %d, want 1", rep.ReattachedOrphans)
	}
	if f.Parent != fs.Root() {
		t.Fatal("orphan not reattached to the root")
	}
}

func TestRepairBreaksParentCycle(t *testing.T) {
	fs, _ := corruptibleFs(t)
	a, err := fs.Mkdir(fs.Root(), "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fs.Mkdir(a, "b", 0)
	if err != nil {
		t.Fatal(err)
	}
	// a and b point at each other; neither reaches the root.
	fs.Root().deleteEntry("a")
	a.Parent = b
	b.putEntry("a", a)
	rep := mustRepair(t, fs)
	if rep.ReattachedOrphans == 0 {
		t.Fatalf("cycle not reported: %v", rep)
	}
	for f := b; ; f = f.Parent {
		if f == fs.Root() {
			break
		}
		if f.Parent == nil || f.Parent == f {
			t.Fatal("cycle member still cannot reach the root")
		}
	}
}

func TestLoadImageLenientThenRepair(t *testing.T) {
	fs, f := corruptibleFs(t)
	if !fs.TearFile(f) {
		t.Fatal("TearFile failed")
	}
	var buf bytes.Buffer
	if err := fs.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	// Strict load refuses the damaged image.
	if _, err := LoadImage(bytes.NewReader(buf.Bytes()), nopPolicy{}); err == nil {
		t.Fatal("strict LoadImage accepted a torn image")
	}
	loaded, err := LoadImageLenient(bytes.NewReader(buf.Bytes()), nopPolicy{})
	if err != nil {
		t.Fatalf("LoadImageLenient: %v", err)
	}
	if _, err := loaded.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if err := loaded.Check(); err != nil {
		t.Fatalf("Check after lenient load + repair: %v", err)
	}
	if loaded.FileCount() != fs.FileCount() {
		t.Fatalf("lenient load kept %d files, want %d", loaded.FileCount(), fs.FileCount())
	}
}

func TestImageRoundTripPreservesAllocatorState(t *testing.T) {
	fs, _ := corruptibleFs(t)
	var buf bytes.Buffer
	if err := fs.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadImage(bytes.NewReader(buf.Bytes()), nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats != fs.Stats {
		t.Fatalf("Stats not preserved: %+v vs %+v", loaded.Stats, fs.Stats)
	}
	for i := 0; i < fs.NumCg(); i++ {
		if loaded.Cg(i).rotor != fs.Cg(i).rotor {
			t.Fatalf("cg %d rotor %d, want %d", i, loaded.Cg(i).rotor, fs.Cg(i).rotor)
		}
	}
	// Future allocations are identical: byte-identical resume depends on
	// this.
	a1, err1 := fs.allocBlockMech(1, NilDaddr)
	a2, err2 := loaded.allocBlockMech(1, NilDaddr)
	if err1 != nil || err2 != nil {
		t.Fatalf("alloc errors: %v, %v", err1, err2)
	}
	if a1 != a2 {
		t.Fatalf("post-load allocation diverged: %d vs %d", a1, a2)
	}
}

func TestCorruptionErrorSurfacesNotPanics(t *testing.T) {
	fs, f := corruptibleFs(t)
	// Make the allocator's world inconsistent: a group claims free
	// blocks its bitmap does not have.
	c := fs.CgOf(f.Blocks[0])
	c.free.ClearRange(0, c.nfrags)
	c.blkfree.ClearRange(0, c.nblk)
	// Exhaust other groups so the allocator must use the broken one.
	for i := 0; i < fs.NumCg(); i++ {
		g := fs.Cg(i)
		if g == c {
			continue
		}
		g.free.ClearRange(0, g.nfrags)
		g.blkfree.ClearRange(0, g.nblk)
		g.nffree, g.nbfree = 0, 0
		for k := range g.frsum {
			g.frsum[k] = 0
		}
		for k := range g.clusterSum {
			g.clusterSum[k] = 0
		}
	}
	fs.IgnoreReserve = true
	err := fs.Append(f, 64<<10, 1)
	if err == nil {
		t.Fatal("append on a gutted fs succeeded")
	}
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("got %T (%v), want *CorruptionError", err, err)
	}
	// And Repair makes the fs usable again.
	mustRepair(t, fs)
}
