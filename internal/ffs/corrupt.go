package ffs

// TearFile simulates a torn multi-fragment write against f: the inode
// (with its updated size) reached disk, but the final block-pointer
// update did not, so the last block's fragments remain marked allocated
// while no pointer references them. The file system is deliberately
// left inconsistent — Size disagrees with the block count, the
// fragments leak, and the layout counters go stale — exactly the state
// a crash mid-write leaves behind. Check() reports it; Repair() mends
// it by truncating f to the blocks actually present and freeing the
// leak. Returns false when f has no blocks to tear.
func (fs *FileSystem) TearFile(f *File) bool {
	if len(f.Blocks) == 0 {
		return false
	}
	f.Blocks = f.Blocks[:len(f.Blocks)-1]
	return true
}
