package ffs

import "fmt"

// ptrsPerIndirect returns the number of block pointers an indirect
// block holds (4-byte pointers, as in 4.4BSD), cached at newfs time.
func (fs *FileSystem) ptrsPerIndirect() int { return fs.ppi }

// isSectionStart reports whether logical block lbn begins a new
// allocation section: the first block mapped by each indirect block
// (lbn 12, 12+2048, ...) and every fs_maxbpg multiple. At a section
// start FFS deliberately abandons contiguity and moves the file to a
// new cylinder group — the paper's "mandatory seek".
func (fs *FileSystem) isSectionStart(lbn int) bool {
	if lbn <= 0 {
		return false
	}
	if lbn >= NDirect && (lbn-NDirect)%fs.ptrsPerIndirect() == 0 {
		return true
	}
	return lbn%fs.P.MaxBpg == 0
}

// pickSectionCg implements the section-switch scan of ffs_blkpref:
// starting just past the previous block's group, take the first group
// with at least the file-system-average number of free blocks.
func (fs *FileSystem) pickSectionCg(prevCg int) int {
	avg := fs.AvgBFree()
	ncg := len(fs.cgs)
	start := (prevCg + 1) % ncg
	for i := 0; i < ncg; i++ {
		cg := (start + i) % ncg
		if int64(fs.cgs[cg].nbfree) >= avg && fs.cgs[cg].nbfree > 0 {
			return cg
		}
	}
	return start
}

// frontPref returns the allocation preference ffs_blkpref produces for
// a block with no previous block: the start of the group's data area
// (cgbase + fs_frag in the BSD source). Front-first sweeping keeps
// small allocations packed at the front of each group, preserving the
// pools at the back — the free-space discipline the realloc policy's
// cluster searches depend on.
func (fs *FileSystem) frontPref(cgIdx int) Daddr {
	c := fs.cgs[cgIdx]
	return c.absFrag(c.DataStart())
}

// blkpref returns the preferred cylinder group and fragment address for
// f's logical block lbn, following ffs_blkpref (paper Section 2 and
// footnote 1):
//
//   - block 0: the inode's group, from the front of its data area;
//   - a section start: a fresh group with above-average free space,
//     again from the front;
//   - otherwise: the fragment immediately after the previous block.
func (fs *FileSystem) blkpref(f *File, lbn int) (cgIdx int, pref Daddr) {
	if lbn == 0 {
		return f.sectionCg, fs.frontPref(f.sectionCg)
	}
	if fs.isSectionStart(lbn) {
		prev := fs.cgIndexOf(f.Blocks[lbn-1])
		cg := fs.pickSectionCg(prev)
		fs.Stats.SectionSwitches++
		return cg, fs.frontPref(cg)
	}
	prevAddr := f.Blocks[lbn-1]
	pref = prevAddr + Daddr(fs.fpb)
	// Pre-clustering FFS spaced successive blocks by the rotational
	// delay instead of placing them adjacently.
	pref += Daddr(fs.P.RotDelayFrags())
	if pref >= Daddr(fs.P.TotalFrags()) {
		return fs.cgIndexOf(prevAddr), NilDaddr
	}
	return fs.cgIndexOf(pref), pref
}

// allocBlockMech allocates one full block, preferring (cgIdx, pref) and
// falling back across groups. Returns the block's fragment address.
func (fs *FileSystem) allocBlockMech(cgIdx int, pref Daddr) (Daddr, error) {
	if fs.FaultHook != nil {
		if err := fs.FaultHook.BeforeAlloc(fs.fpb); err != nil {
			return 0, err
		}
	}
	if fs.freespace() < int64(fs.fpb) {
		fs.Stats.NoSpaceFailures++
		return 0, ErrNoSpace
	}
	chosen := fs.hashalloc(cgIdx, func(c *CylGroup) bool { return c.nbfree > 0 })
	if chosen < 0 {
		fs.Stats.NoSpaceFailures++
		return 0, ErrNoSpace
	}
	if chosen != cgIdx {
		fs.Stats.CgFallbacks++
		pref = NilDaddr
	}
	c := fs.cgs[chosen]
	prefRel := -1
	if pref != NilDaddr && pref >= c.startFrag && pref < c.startFrag+Daddr(c.nfrags) {
		prefRel = c.relFrag(pref)
	}
	b := c.allocBlockNear(prefRel)
	if b < 0 {
		throwCorrupt("allocBlock", chosen, "nbfree>0 but allocBlockNear failed")
	}
	fs.Stats.BlocksAllocated++
	got := c.absFrag(b * fs.fpb)
	if prefRel >= 0 {
		if got == pref {
			fs.Stats.PrefHits++
		} else {
			fs.Stats.SameCgFallbacks++
		}
	}
	return got, nil
}

// allocFragsMech allocates a run of n fragments (1 ≤ n < fpb),
// preferring (cgIdx, pref) and falling back across groups.
func (fs *FileSystem) allocFragsMech(cgIdx int, pref Daddr, n int) (Daddr, error) {
	if n <= 0 || n >= fs.fpb {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("ffs: allocFragsMech n=%d", n))
	}
	if fs.FaultHook != nil {
		if err := fs.FaultHook.BeforeAlloc(n); err != nil {
			return 0, err
		}
	}
	if fs.freespace() < int64(n) {
		fs.Stats.NoSpaceFailures++
		return 0, ErrNoSpace
	}
	canSatisfy := func(c *CylGroup) bool {
		if c.nbfree > 0 {
			return true
		}
		for k := n; k < fs.fpb; k++ {
			if c.frsum[k] > 0 {
				return true
			}
		}
		return false
	}
	chosen := fs.hashalloc(cgIdx, canSatisfy)
	if chosen < 0 {
		fs.Stats.NoSpaceFailures++
		return 0, ErrNoSpace
	}
	if chosen != cgIdx {
		fs.Stats.CgFallbacks++
		pref = NilDaddr
	}
	c := fs.cgs[chosen]
	prefRel := -1
	if pref != NilDaddr && pref >= c.startFrag && pref < c.startFrag+Daddr(c.nfrags) {
		prefRel = c.relFrag(pref)
	}
	idx := c.allocFrags(n, prefRel)
	if idx < 0 {
		throwCorrupt("allocFrags", chosen, "canSatisfy(%d) but allocFrags failed", n)
	}
	fs.Stats.FragAllocs++
	if prefRel >= 0 {
		if idx == prefRel {
			fs.Stats.PrefHits++
		} else {
			fs.Stats.SameCgFallbacks++
		}
	}
	return c.absFrag(idx), nil
}

// freeRange releases nfrags fragments starting at d. The range must lie
// within one cylinder group (callers free one block or one tail at a
// time, which always satisfies this). cgIndexOf's arithmetic guess
// avoids CgOf's linear scan on this per-free path; relFrag still
// validates that d lies inside the chosen group.
func (fs *FileSystem) freeRange(d Daddr, nfrags int) {
	if d < 0 || d >= Daddr(fs.P.TotalFrags()) {
		throwCorrupt("freeRange", -1, "daddr %d outside file system", d)
	}
	c := fs.cgs[fs.cgIndexOf(d)]
	c.freeFrags(c.relFrag(d), nfrags)
}

// TryReallocRun is the relocation mechanism behind the realloc policy
// (ffs_reallocblks + ffs_clusteralloc): attempt to move f's logical
// blocks [start, end) — all full blocks — into a single free run of
// end-start blocks in the group containing pref (or group cgIdx when
// pref is NilDaddr). Placement exactly at pref is tried first so that
// successive clusters chain end to end; otherwise the group's first
// sufficient run is taken. On success the old blocks are freed, the
// file's map is updated, and true is returned. The map is untouched on
// failure.
//
// The move happens before the data reaches disk (the blocks are dirty
// in the buffer cache), so it costs no extra I/O — only the allocator
// bookkeeping modelled here.
func (fs *FileSystem) TryReallocRun(f *File, start, end, cgIdx int, pref Daddr) bool {
	n := end - start
	if n <= 0 || n > fs.P.MaxContig {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("ffs: TryReallocRun [%d,%d) maxcontig %d", start, end, fs.P.MaxContig))
	}
	if end > len(f.Blocks) {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("ffs: TryReallocRun [%d,%d) beyond %d blocks", start, end, len(f.Blocks)))
	}
	if end == len(f.Blocks) && f.TailFrags != fs.fpb {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic("ffs: TryReallocRun includes a fragment tail")
	}
	c := fs.cgs[cgIdx]
	prefBlock := -1
	if pref != NilDaddr {
		c = fs.CgOf(pref)
		cgIdx = c.Index
		prefBlock = c.relFrag(pref) / fs.fpb
	}
	b := c.allocCluster(prefBlock, n)
	if b < 0 {
		return false
	}
	newAddr := c.absFrag(b * fs.fpb)
	for i := start; i < end; i++ {
		fs.freeRange(f.Blocks[i], fs.fpb)
		f.Blocks[i] = newAddr + Daddr((i-start)*fs.fpb)
	}
	fs.Stats.ClusterMoves++
	fs.relayout(f)
	return true
}

// FindClusterCg locates a cylinder group holding a free run of at
// least n blocks, visiting groups in hashalloc order from prefCg — the
// search ffs_reallocblks performs via ffs_hashalloc(ffs_clusteralloc),
// which is what lets the realloc policy keep finding clusters somewhere
// on the disk long after the busiest groups have none. Returns -1 when
// no group qualifies.
func (fs *FileSystem) FindClusterCg(prefCg, n int) int {
	return fs.hashalloc(prefCg, func(c *CylGroup) bool { return c.HasCluster(n) })
}

// RunIsContiguous reports whether f's logical blocks [start, end) are
// physically contiguous.
func (f *File) RunIsContiguous(start, end, fpb int) bool {
	for i := start + 1; i < end; i++ {
		if f.Blocks[i] != f.Blocks[i-1]+Daddr(fpb) {
			return false
		}
	}
	return true
}

// ReallocPref computes the placement preference the realloc policy
// should chain a cluster beginning at logical block start to: the
// fragment after the previous block, unless start begins a section (or
// the file), in which case there is no preference and the cluster
// belongs wherever it already is. The second result is the target
// group.
func (fs *FileSystem) ReallocPref(f *File, start int) (Daddr, int) {
	if start == 0 || fs.isSectionStart(start) {
		return NilDaddr, fs.cgIndexOf(f.Blocks[start])
	}
	pref := f.Blocks[start-1] + Daddr(fs.fpb)
	if pref >= Daddr(fs.P.TotalFrags()) {
		return NilDaddr, fs.cgIndexOf(f.Blocks[start])
	}
	return pref, fs.cgIndexOf(pref)
}
