package ffs

// File recycling. The aging replay loop creates and deletes files at a
// rate that makes per-operation File construction (and the block-map
// slices hanging off it) the dominant source of garbage in long runs.
// Instead of dropping deleted files to the GC, the file system keeps a
// per-instance free list and hands the structures back out on the next
// create, with their Blocks/Indirects/entries capacity retained. In the
// steady state — the regime every aging experiment spends nearly all
// its time in — create after delete touches the heap zero times.
//
// The pool is an implementation detail of one FileSystem: Clone builds
// fresh Files for the copy (never aliasing pooled memory across the
// concurrency boundary), and SetPooling(false) restores the plain
// allocate-and-drop behaviour for A/B comparison. Pooling never changes
// allocation decisions, only where the Go objects come from; the
// arena-on/off differential tests pin that down byte for byte.

// filePool is a LIFO free list of recycled File structures.
type filePool struct {
	free []*File

	news     int64 // Files allocated fresh from the heap
	reuses   int64 // Files handed back out of the pool
	recycles int64 // Files returned to the pool on delete
}

// PoolStats reports the file-recycling pool's activity, for the
// observability gauge and the zero-alloc tests.
type PoolStats struct {
	Pooled   int   // Files currently parked in the pool
	News     int64 // heap allocations
	Reuses   int64 // pool hits
	Recycles int64 // returns
}

// PoolStats returns a snapshot of the pool counters.
func (fs *FileSystem) PoolStats() PoolStats {
	return PoolStats{
		Pooled:   len(fs.pool.free),
		News:     fs.pool.news,
		Reuses:   fs.pool.reuses,
		Recycles: fs.pool.recycles,
	}
}

// SetPooling enables or disables File recycling (the -arena CLI flag).
// Disabling drops any parked Files so later creates come from the heap.
func (fs *FileSystem) SetPooling(on bool) {
	fs.pooling = on
	if !on {
		fs.pool.free = nil
	}
}

// PoolingEnabled reports whether File recycling is active.
func (fs *FileSystem) PoolingEnabled() bool { return fs.pooling }

// newFile returns a zeroed File, from the pool when one is parked
// there. Pooled Files keep their slice capacities, so a recycled File's
// block map grows without reallocating up to the largest size the slot
// has ever held.
func (fs *FileSystem) newFile() *File {
	if fs.pooling {
		if n := len(fs.pool.free); n > 0 {
			f := fs.pool.free[n-1]
			fs.pool.free[n-1] = nil
			fs.pool.free = fs.pool.free[:n-1]
			fs.pool.reuses++
			return f
		}
	}
	fs.pool.news++
	return &File{}
}

// recycleFile parks a dead File for reuse, clearing every field but
// keeping slice capacity. Callers guarantee the File is fully detached
// (no parent entry, no extents, not in the inode table).
func (fs *FileSystem) recycleFile(f *File) {
	if !fs.pooling {
		return
	}
	blocks := f.Blocks[:0]
	inds := f.Indirects[:0]
	ents := f.entries
	clear(ents) // drop child pointers so the GC can collect them
	*f = File{Blocks: blocks, Indirects: inds, entries: ents[:0]}
	fs.pool.free = append(fs.pool.free, f)
	fs.pool.recycles++
}
