package ffs

import "fmt"

// File is an inode: a plain file or a directory. Contents are not
// stored; Blocks records where each logical block lives on disk, which
// is what fragmentation analysis and I/O timing need.
type File struct {
	Ino   int
	Name  string
	IsDir bool
	Size  int64

	// Blocks holds the fragment address of each logical data block.
	// Every entry is a full block except possibly the last, which holds
	// TailFrags fragments (TailFrags == FragsPerBlock when full).
	Blocks    []Daddr
	TailFrags int

	// Indirects records the file's indirect metadata blocks and the
	// logical data block each precedes on a sequential walk.
	Indirects []Indirect

	Parent *File
	// entries is the directory entry table, sorted by name; see
	// entries.go. Directories only.
	entries []dirEnt

	CreateDay int
	ModDay    int

	// sectionCg is the cylinder group the current allocation section
	// draws from: the inode's group at first, changing at every
	// section boundary.
	sectionCg int

	// scoreOpt and scoreTotal cache this file's contribution to the
	// file system's incremental layout counters; see layoutacct.go.
	scoreOpt   int
	scoreTotal int
}

// Indirect is one allocated indirect block.
type Indirect struct {
	BeforeLbn int // first data block it maps
	Addr      Daddr
	Level     int // 1 = single, 2 = double parent
}

// BlocksOnDisk returns the number of fragments the file's data occupies.
func (f *File) BlocksOnDisk(fpb int) int {
	if len(f.Blocks) == 0 {
		return 0
	}
	return (len(f.Blocks)-1)*fpb + f.TailFrags
}

// Path returns the file's path from the root, for diagnostics.
func (f *File) Path() string {
	if f.Parent == nil {
		return f.Name
	}
	p := f.Parent.Path()
	if p == "/" {
		return p + f.Name
	}
	return p + "/" + f.Name
}

// fragsForBytes returns the fragments needed for n bytes in one block.
func (fs *FileSystem) fragsForBytes(n int64) int {
	fr := int64(fs.P.FragSize)
	return int((n + fr - 1) / fr)
}

// Append extends f by n bytes, allocating fragments and blocks with the
// original FFS mechanism and handing each newly written run of full
// blocks to the policy (realloc hook) before it is "committed". On
// ErrNoSpace the file keeps the bytes that fit and Size reflects them.
// A returned *CorruptionError means the allocator found inconsistent
// state; the file system is then unspecified until Repair() runs.
func (fs *FileSystem) Append(f *File, n int64, day int) (err error) {
	defer recoverCorruption(&err)
	if n < 0 {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("ffs: Append %d bytes", n))
	}
	f.ModDay = day
	if n == 0 {
		return nil
	}
	bs := int64(fs.P.BlockSize)
	fpb := fs.fpb
	bytesLeft := n
	appended := int64(0)

	runStart := -1
	flush := func(endLbn int) {
		if runStart >= 0 && endLbn > runStart {
			fs.policy.FlushCluster(fs, f, runStart, endLbn)
		}
		runStart = -1
	}
	fail := func(err error) error {
		flush(len(f.Blocks))
		f.Size += appended
		fs.Stats.BytesWritten += appended
		fs.relayout(f)
		return err
	}

	// Consume the slack inside fragments that are already allocated
	// (a partially used tail fragment, or the unused remainder of a
	// full final block past the direct range).
	if len(f.Blocks) > 0 {
		capacity := int64(f.BlocksOnDisk(fpb)) * int64(fs.P.FragSize)
		if slack := capacity - f.Size; slack > 0 {
			take := slack
			if bytesLeft < take {
				take = bytesLeft
			}
			bytesLeft -= take
			appended += take
		}
	}
	// Grow a partial fragment tail toward a full block.
	if bytesLeft > 0 && len(f.Blocks) > 0 && f.TailFrags < fpb {
		lastIdx := len(f.Blocks) - 1
		used := int64(f.TailFrags) * int64(fs.P.FragSize) // slack already consumed
		target := used + bytesLeft
		if target > bs {
			target = bs
		}
		targetFrags := fs.fragsForBytes(target)
		if targetFrags > f.TailFrags {
			if err := fs.growTail(f, targetFrags); err != nil {
				return fail(err)
			}
			if f.TailFrags == fpb {
				// The tail became a full dirty block: it joins the
				// cluster being written.
				runStart = lastIdx
			}
		}
		consumed := target - used
		bytesLeft -= consumed
		appended += consumed
	}

	for bytesLeft > 0 {
		lbn := len(f.Blocks)
		if bytesLeft < bs && lbn < NDirect {
			nf := fs.fragsForBytes(bytesLeft)
			if nf < fpb {
				// Final fragment tail.
				flush(lbn)
				cgIdx, pref := fs.blkpref(f, lbn)
				addr, err := fs.allocFragsMech(cgIdx, pref, nf)
				if err != nil {
					return fail(err)
				}
				f.Blocks = append(f.Blocks, addr)
				f.TailFrags = nf
				appended += bytesLeft
				bytesLeft = 0
				break
			}
		}
		// Full block.
		if fs.isSectionStart(lbn) {
			flush(lbn)
			if err := fs.enterSection(f, lbn); err != nil {
				return fail(err)
			}
		}
		cgIdx, pref := fs.blkpref(f, lbn)
		addr, err := fs.allocBlockMech(cgIdx, pref)
		if err != nil {
			return fail(err)
		}
		f.Blocks = append(f.Blocks, addr)
		f.TailFrags = fpb
		if runStart < 0 {
			runStart = lbn
		}
		if lbn+1-runStart == fs.P.MaxContig {
			flush(lbn + 1)
		}
		take := bs
		if bytesLeft < bs {
			take = bytesLeft
		}
		appended += take
		bytesLeft -= take
	}
	flush(len(f.Blocks))
	f.Size += appended
	fs.Stats.BytesWritten += appended
	fs.relayout(f)
	return nil
}

// growTail extends f's fragment tail to targetFrags fragments, in place
// when the neighbouring fragments are free (ffs_fragextend), otherwise
// by reallocating the tail elsewhere and "copying".
func (fs *FileSystem) growTail(f *File, targetFrags int) error {
	fpb := fs.fpb
	lastIdx := len(f.Blocks) - 1
	addr := f.Blocks[lastIdx]
	c := fs.cgs[fs.cgIndexOf(addr)]
	if fs.freespace() < int64(targetFrags-f.TailFrags) {
		fs.Stats.NoSpaceFailures++
		return ErrNoSpace
	}
	if c.extendFrags(c.relFrag(addr), f.TailFrags, targetFrags) {
		fs.Stats.FragExtends++
		f.TailFrags = targetFrags
		return nil
	}
	// Relocate: prefer right after the previous block, like a fresh
	// allocation at this lbn.
	cgIdx, pref := fs.blkpref(f, lastIdx)
	var newAddr Daddr
	var err error
	if targetFrags == fpb {
		newAddr, err = fs.allocBlockMech(cgIdx, pref)
	} else {
		newAddr, err = fs.allocFragsMech(cgIdx, pref, targetFrags)
	}
	if err != nil {
		return err
	}
	fs.freeRange(addr, f.TailFrags)
	f.Blocks[lastIdx] = newAddr
	f.TailFrags = targetFrags
	fs.Stats.FragRelocations++
	return nil
}

// enterSection switches f to a new cylinder group at the section
// boundary lbn and allocates whatever indirect blocks become necessary
// there (the single indirect before block 12, the double-indirect
// parent and each of its children at their boundaries).
func (fs *FileSystem) enterSection(f *File, lbn int) error {
	prevCg := f.sectionCg
	if lbn > 0 {
		prevCg = fs.cgIndexOf(f.Blocks[lbn-1])
	}
	f.sectionCg = fs.pickSectionCg(prevCg)
	fs.Stats.SectionSwitches++

	if lbn < NDirect || (lbn-NDirect)%fs.ptrsPerIndirect() != 0 {
		return nil // a maxbpg switch: no new indirect block
	}
	ppi := fs.ptrsPerIndirect()
	idx := (lbn - NDirect) / ppi
	if idx > ppi {
		return fmt.Errorf("ffs: file too large (triple indirect unsupported at lbn %d)", lbn)
	}
	if idx == 1 {
		// First double-indirect child: the parent is allocated too.
		addr, err := fs.allocBlockMech(f.sectionCg, fs.frontPref(f.sectionCg))
		if err != nil {
			return err
		}
		f.Indirects = append(f.Indirects, Indirect{BeforeLbn: lbn, Addr: addr, Level: 2})
	}
	addr, err := fs.allocBlockMech(f.sectionCg, fs.frontPref(f.sectionCg))
	if err != nil {
		return err
	}
	f.Indirects = append(f.Indirects, Indirect{BeforeLbn: lbn, Addr: addr, Level: 1})
	return nil
}

// CreateFile creates a plain file of the given size in dir, writing its
// contents in one pass (the aging workload's unit of work). On
// ErrNoSpace the partially written file is removed and the error
// returned.
func (fs *FileSystem) CreateFile(dir *File, name string, size int64, day int) (f *File, err error) {
	defer recoverCorruption(&err)
	if !dir.IsDir {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic("ffs: CreateFile in non-directory")
	}
	if _, exists := dir.lookupEntry(name); exists {
		return nil, ErrExists
	}
	ino, err := fs.ialloc(fs.InoToCg(dir.Ino))
	if err != nil {
		return nil, err
	}
	f = fs.newFile()
	f.Ino = ino
	f.Name = name
	f.CreateDay = day
	f.ModDay = day
	f.sectionCg = fs.InoToCg(ino)
	fs.files[ino] = f
	if err := fs.addEntry(dir, f, day); err != nil {
		fs.ifree(ino)
		delete(fs.files, ino)
		fs.recycleFile(f)
		return nil, err
	}
	fs.Stats.FilesCreated++
	if err := fs.Append(f, size, day); err != nil {
		fs.removeFile(f)
		return nil, err
	}
	return f, nil
}

// Delete removes f (directories must be empty).
func (fs *FileSystem) Delete(f *File) (err error) {
	defer recoverCorruption(&err)
	if f.IsDir {
		if len(f.entries) > 0 {
			return fmt.Errorf("ffs: directory %s not empty", f.Path())
		}
		if f.Parent == nil {
			return fmt.Errorf("ffs: cannot delete root")
		}
		fs.cgs[fs.InoToCg(f.Ino)].ndir--
	}
	fs.removeFile(f)
	fs.Stats.FilesDeleted++
	return nil
}

func (fs *FileSystem) removeFile(f *File) {
	fs.dropLayout(f)
	fs.freeFileBlocks(f, 0)
	if f.Parent != nil {
		f.Parent.deleteEntry(f.Name)
	}
	fs.ifree(f.Ino)
	delete(fs.files, f.Ino)
	fs.recycleFile(f)
}

// freeFileBlocks releases all data blocks with logical index ≥ keep and
// any indirect blocks that only serve the released range.
func (fs *FileSystem) freeFileBlocks(f *File, keep int) {
	fpb := fs.fpb
	freedAny := keep < len(f.Blocks)
	for i := len(f.Blocks) - 1; i >= keep; i-- {
		n := fpb
		if i == len(f.Blocks)-1 {
			n = f.TailFrags
		}
		fs.freeRange(f.Blocks[i], n)
	}
	f.Blocks = f.Blocks[:keep]
	kept := f.Indirects[:0]
	for _, ind := range f.Indirects {
		if ind.BeforeLbn < keep {
			kept = append(kept, ind)
		} else {
			fs.freeRange(ind.Addr, fpb)
		}
	}
	f.Indirects = kept
	if keep == 0 {
		f.TailFrags = 0
	} else if freedAny {
		// The new last block was an interior block, hence full.
		f.TailFrags = fpb
	}
}

// Truncate shrinks f to newSize bytes, releasing blocks, surplus tail
// fragments, and orphaned indirect blocks. Growing is done with Append.
func (fs *FileSystem) Truncate(f *File, newSize int64, day int) (err error) {
	defer recoverCorruption(&err)
	if newSize > f.Size {
		return fmt.Errorf("ffs: Truncate %d > size %d (use Append to grow)", newSize, f.Size)
	}
	f.ModDay = day
	if newSize == f.Size {
		return nil
	}
	bs := int64(fs.P.BlockSize)
	keep := 0
	if newSize > 0 {
		keep = int((newSize + bs - 1) / bs)
	}
	fs.freeFileBlocks(f, keep)
	if keep > 0 {
		lastIdx := keep - 1
		// Shrink the (now) last block to a fragment tail when the
		// direct-block rule allows it.
		cur := f.TailFrags
		want := cur
		if lastIdx < NDirect {
			want = fs.fragsForBytes(newSize - int64(lastIdx)*bs)
		}
		if want < cur {
			fs.freeRange(f.Blocks[lastIdx]+Daddr(want), cur-want)
			f.TailFrags = want
		}
		f.sectionCg = fs.cgIndexOf(f.Blocks[lastIdx])
	} else {
		f.sectionCg = fs.InoToCg(f.Ino)
	}
	f.Size = newSize
	fs.relayout(f)
	return nil
}

// Lookup finds name in dir.
func (fs *FileSystem) Lookup(dir *File, name string) (*File, bool) {
	return dir.lookupEntry(name)
}
