package ffs

import "fmt"

// inodeBytes is the on-disk inode size (struct dinode).
const inodeBytes = 128

// Policy is the in-cylinder-group allocation policy hook. The
// FileSystem performs the original FFS block-at-a-time allocation for
// every write; when a run of newly written, logically consecutive full
// blocks is about to be committed, FlushCluster is invoked and may
// relocate the run (the realloc algorithm) or leave it alone (the
// original algorithm). Runs never span an indirect-section boundary.
type Policy interface {
	// Name identifies the policy in reports ("ffs", "ffs+realloc").
	Name() string
	// FlushCluster may reallocate f's logical blocks [start, end).
	FlushCluster(fs *FileSystem, f *File, start, end int)
}

// FileSystem is a simulated FFS instance. It is not safe for concurrent
// use.
type FileSystem struct {
	P   Params
	fpb int // fragments per block
	ipg int // inodes per group

	cgs    []*CylGroup
	files  map[int]*File // by inode number; includes directories
	root   *File
	policy Policy

	// IgnoreReserve allocates from the minfree reserve, as FFS permits
	// the superuser to; the benchmark harness sets it so a 32 MB corpus
	// fits on a 90%-utilized aged image, as in the paper's runs.
	IgnoreReserve bool

	// FaultHook, when non-nil, is consulted before every block and
	// fragment allocation; a non-nil error aborts the allocation and is
	// returned to the caller (without counting as a no-space failure).
	// Fault plans from internal/faults satisfy this. Clones do not
	// inherit the hook.
	FaultHook AllocFaultHook

	// Stats counts allocator events for the ablation reports.
	Stats AllocStats

	// layoutOpt and layoutTotal are the incrementally maintained
	// aggregate layout-score numerator and denominator over all plain
	// files; see layoutacct.go.
	layoutOpt   int64
	layoutTotal int64

	// patterns is the shared read-only block-pattern table, indexed by a
	// block's fragment free-mask; see buildPatternTable.
	patterns []blockPattern

	// freeFrags and freeBlks cache the file-system-wide free counts so
	// freespace() and the section-switch scans stop summing every group
	// on each allocation. applyPatternDelta maintains them; Check
	// verifies them against the per-group counters.
	freeFrags int64
	freeBlks  int64

	// ppi caches BlockSize/4 (block pointers per indirect block).
	ppi int

	// pool recycles File structures between delete and create so the
	// steady-state replay loop allocates nothing; see arena.go.
	pool    filePool
	pooling bool
}

// AllocFaultHook is the fault-injection point for the allocator. It is
// a structural interface so fault plans can live in a package that does
// not import ffs.
type AllocFaultHook interface {
	// BeforeAlloc is called with the number of fragments about to be
	// allocated. Returning a non-nil error injects that error as the
	// allocation's failure.
	BeforeAlloc(frags int) error
}

// AllocStats counts allocator activity.
type AllocStats struct {
	BlocksAllocated  int64
	FragAllocs       int64
	FragExtends      int64
	FragRelocations  int64
	ClusterMoves     int64 // realloc relocations performed
	ClusterAttempts  int64 // FlushCluster invocations with a fragmented run
	SectionSwitches  int64 // cylinder-group changes at section starts
	PrefHits         int64 // allocations placed exactly at ffs_blkpref's preference
	SameCgFallbacks  int64 // allocations that stayed in the preferred group but missed the preferred address
	CgFallbacks      int64 // allocations that left the preferred group
	FilesCreated     int64
	FilesDeleted     int64
	BytesWritten     int64
	NoSpaceFailures  int64
	InodeExhaustions int64
}

// NewFileSystem creates an empty file system ("newfs") with the given
// parameters and allocation policy.
func NewFileSystem(p Params, policy Policy) (*FileSystem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("ffs: nil policy")
	}
	fs := &FileSystem{
		P:       p,
		fpb:     p.FragsPerBlock(),
		files:   make(map[int]*File),
		policy:  policy,
		pooling: true,
	}
	fs.patterns = buildPatternTable(fs.fpb)
	fs.ppi = p.BlockSize / 4

	// Carve the partition into cylinder groups of whole blocks; the
	// first groups absorb the remainder, one block each.
	totalBlocks := p.TotalBlocks()
	blocksPer := totalBlocks / int64(p.NumCg)
	extra := totalBlocks % int64(p.NumCg)

	// Inode density rounds up to whole fragments of inodes.
	inodesPerFrag := p.FragSize / inodeBytes
	ipg := int(blocksPer) * p.BlockSize / p.BytesPerInode
	ipg = (ipg + inodesPerFrag - 1) / inodesPerFrag * inodesPerFrag
	if ipg < inodesPerFrag {
		ipg = inodesPerFrag
	}
	fs.ipg = ipg

	// Per-group metadata: one block for the superblock copy, one for
	// the cylinder-group header and maps, plus the inode table.
	inodeFrags := ipg / inodesPerFrag
	metaFrags := 2*fs.fpb + inodeFrags

	start := Daddr(0)
	for i := 0; i < p.NumCg; i++ {
		nb := blocksPer
		if int64(i) < extra {
			nb++
		}
		nfrags := int(nb) * fs.fpb
		if metaFrags >= nfrags {
			return nil, fmt.Errorf("ffs: cg %d too small for metadata (%d ≤ %d frags)",
				i, nfrags, metaFrags)
		}
		fs.cgs = append(fs.cgs, newCylGroup(fs, i, start, nfrags, metaFrags))
		start += Daddr(nfrags)
	}

	// The root directory lives in group 0.
	root, err := fs.makeDirectory(nil, "/", 0)
	if err != nil {
		return nil, fmt.Errorf("ffs: creating root: %w", err)
	}
	fs.root = root
	return fs, nil
}

// Policy returns the file system's allocation policy.
func (fs *FileSystem) Policy() Policy { return fs.policy }

// Root returns the root directory.
func (fs *FileSystem) Root() *File { return fs.root }

// NumCg returns the number of cylinder groups.
func (fs *FileSystem) NumCg() int { return len(fs.cgs) }

// Cg returns cylinder group i.
func (fs *FileSystem) Cg(i int) *CylGroup { return fs.cgs[i] }

// InodesPerGroup returns the inode capacity of each group.
func (fs *FileSystem) InodesPerGroup() int { return fs.ipg }

// FragsPerBlock returns the fragment-per-block ratio.
func (fs *FileSystem) FragsPerBlock() int { return fs.fpb }

// CgOf returns the cylinder group containing the fragment address d.
func (fs *FileSystem) CgOf(d Daddr) *CylGroup {
	for _, c := range fs.cgs {
		if d >= c.startFrag && d < c.startFrag+Daddr(c.nfrags) {
			return c
		}
	}
	throwCorrupt("CgOf", -1, "daddr %d outside file system", d)
	return nil // unreachable
}

// cgIndexOf returns the index of the group containing d without a scan
// when groups are near-uniform; falls back to CgOf.
func (fs *FileSystem) cgIndexOf(d Daddr) int {
	guess := int(d / Daddr(fs.cgs[0].nfrags))
	if guess >= len(fs.cgs) {
		guess = len(fs.cgs) - 1
	}
	for guess > 0 && d < fs.cgs[guess].startFrag {
		guess--
	}
	for guess < len(fs.cgs)-1 && d >= fs.cgs[guess].startFrag+Daddr(fs.cgs[guess].nfrags) {
		guess++
	}
	return guess
}

// InoToCg returns the cylinder group index an inode number belongs to.
func (fs *FileSystem) InoToCg(ino int) int { return (ino / fs.ipg) % len(fs.cgs) }

func (fs *FileSystem) inoNumber(cg, slot int) int { return cg*fs.ipg + slot }

// FreeFrags returns the number of free fragments file-system wide,
// including the reserve. The count is maintained incrementally by
// applyPatternDelta, so this is O(1).
func (fs *FileSystem) FreeFrags() int64 { return fs.freeFrags }

// FreeBlocksTotal returns the number of fully free blocks, maintained
// incrementally like FreeFrags.
func (fs *FileSystem) FreeBlocksTotal() int64 { return fs.freeBlks }

// recountFree recomputes the cached file-system-wide free counts from
// the per-group counters, for callers (repair) that rebuild groups
// wholesale instead of going through applyPatternDelta.
func (fs *FileSystem) recountFree() {
	fs.freeFrags, fs.freeBlks = 0, 0
	for _, c := range fs.cgs {
		fs.freeFrags += int64(c.FreeFrags())
		fs.freeBlks += int64(c.nbfree)
	}
}

// AvgBFree returns the mean free-block count per group, the threshold
// blkpref's section-switch scan uses.
func (fs *FileSystem) AvgBFree() int64 {
	return fs.FreeBlocksTotal() / int64(len(fs.cgs))
}

// Utilization returns allocated fragments as a fraction of all
// fragments (the paper's utilization metric, which counts the minfree
// reserve as free space).
func (fs *FileSystem) Utilization() float64 {
	total := float64(fs.P.TotalFrags())
	return (total - float64(fs.FreeFrags())) / total
}

// freespace mirrors the FFS freespace() macro: fragments available to
// ordinary allocations after honouring the minfree reserve (which the
// superuser may consume).
func (fs *FileSystem) freespace() int64 {
	if fs.IgnoreReserve {
		return fs.FreeFrags()
	}
	return fs.FreeFrags() - fs.P.TotalFrags()*int64(fs.P.MinFreePct)/100
}

// Files returns the live file table, keyed by inode number. Callers
// must not mutate it; directories are included.
func (fs *FileSystem) Files() map[int]*File { return fs.files }

// FileCount returns the number of live files, excluding directories.
func (fs *FileSystem) FileCount() int {
	n := 0
	for _, f := range fs.files {
		if !f.IsDir {
			n++
		}
	}
	return n
}

// ialloc allocates an inode, preferring prefCg (the directory's group
// for plain files; dirpref's choice for directories) and falling back
// across groups in the quadratic-hash order.
func (fs *FileSystem) ialloc(prefCg int) (int, error) {
	cg := fs.hashalloc(prefCg, func(c *CylGroup) bool { return c.nifree > 0 })
	if cg < 0 {
		fs.Stats.InodeExhaustions++
		return 0, ErrNoInodes
	}
	slot := fs.cgs[cg].allocInode()
	if slot < 0 {
		throwCorrupt("ialloc", cg, "nifree>0 but no slot")
	}
	return fs.inoNumber(cg, slot), nil
}

func (fs *FileSystem) ifree(ino int) {
	fs.cgs[fs.InoToCg(ino)].freeInode(ino % fs.ipg)
}

// hashalloc visits cylinder groups in the FFS order — the preference,
// then quadratic rehash, then linear scan — returning the first group
// accepted by ok, or -1.
func (fs *FileSystem) hashalloc(pref int, ok func(*CylGroup) bool) int {
	ncg := len(fs.cgs)
	pref = ((pref % ncg) + ncg) % ncg
	if ok(fs.cgs[pref]) {
		return pref
	}
	for i := 1; i < ncg; i *= 2 {
		cg := (pref + i) % ncg
		if ok(fs.cgs[cg]) {
			return cg
		}
	}
	for i := 0; i < ncg; i++ {
		cg := (pref + i) % ncg
		if ok(fs.cgs[cg]) {
			return cg
		}
	}
	return -1
}

// InodeDaddr returns the fragment address of the inode's slot in its
// group's inode table, used by the benchmark harness to charge
// synchronous metadata writes to a real disk location.
func (fs *FileSystem) InodeDaddr(ino int) Daddr {
	cg := fs.cgs[fs.InoToCg(ino)]
	inodesPerFrag := fs.P.FragSize / inodeBytes
	slotFrag := (ino % fs.ipg) / inodesPerFrag
	return cg.startFrag + Daddr(2*fs.fpb+slotFrag)
}

// CgStart returns the absolute fragment address of group i's start.
func (fs *FileSystem) CgStart(i int) Daddr { return fs.cgs[i].startFrag }

// absFrag converts a group-relative fragment index to a Daddr.
func (c *CylGroup) absFrag(idx int) Daddr { return c.startFrag + Daddr(idx) }

// relFrag converts a Daddr inside the group to a group-relative index.
func (c *CylGroup) relFrag(d Daddr) int {
	idx := int(d - c.startFrag)
	if idx < 0 || idx >= c.nfrags {
		throwCorrupt("relFrag", c.Index, "daddr %d not in cg %d", d, c.Index)
	}
	return idx
}
