package ffs

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// Image serialization: an aged file system is fully reconstructible
// from its parameters and file table (every fragment's allocation state
// follows from the files' extents), so that is what SaveImage writes.
// Group rotors are not persisted; a loaded image's future allocations
// may differ microscopically from the in-memory original, which none of
// the benchmarks are sensitive to.

type imageFile struct {
	Ino       int
	Name      string
	IsDir     bool
	Size      int64
	Blocks    []Daddr
	TailFrags int
	Indirects []Indirect
	ParentIno int // -1 for root
	CreateDay int
	ModDay    int
	SectionCg int
}

type imageData struct {
	Params     Params
	PolicyName string
	Files      []imageFile
	RootIno    int
}

// SaveImage writes the file system to w.
func (fs *FileSystem) SaveImage(w io.Writer) error {
	img := imageData{Params: fs.P, PolicyName: fs.policy.Name(), RootIno: fs.root.Ino}
	for _, f := range fs.files {
		parent := -1
		if f.Parent != nil {
			parent = f.Parent.Ino
		}
		img.Files = append(img.Files, imageFile{
			Ino:       f.Ino,
			Name:      f.Name,
			IsDir:     f.IsDir,
			Size:      f.Size,
			Blocks:    f.Blocks,
			TailFrags: f.TailFrags,
			Indirects: f.Indirects,
			ParentIno: parent,
			CreateDay: f.CreateDay,
			ModDay:    f.ModDay,
			SectionCg: f.sectionCg,
		})
	}
	sort.Slice(img.Files, func(i, j int) bool { return img.Files[i].Ino < img.Files[j].Ino })
	return gob.NewEncoder(w).Encode(&img)
}

// LoadImage reconstructs a file system from r under the given policy
// (the policy choice governs only future allocations; the image's
// layout is preserved exactly). The result is consistency-checked.
func LoadImage(r io.Reader, policy Policy) (*FileSystem, error) {
	var img imageData
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("ffs: decoding image: %w", err)
	}
	fs, err := NewFileSystem(img.Params, policy)
	if err != nil {
		return nil, err
	}
	// Discard the fresh root; the image carries its own tree.
	fs.cgs[fs.InoToCg(fs.root.Ino)].ndir--
	fs.removeFile(fs.root)
	fs.root = nil

	// First pass: claim inodes and extents, build File objects.
	for _, inf := range img.Files {
		cg := fs.cgs[fs.InoToCg(inf.Ino)]
		slot := inf.Ino % fs.ipg
		if !cg.inodes.Test(slot) {
			return nil, fmt.Errorf("ffs: image reuses inode %d", inf.Ino)
		}
		cg.inodes.Clear(slot)
		cg.nifree--
		f := &File{
			Ino:       inf.Ino,
			Name:      inf.Name,
			IsDir:     inf.IsDir,
			Size:      inf.Size,
			Blocks:    inf.Blocks,
			TailFrags: inf.TailFrags,
			Indirects: inf.Indirects,
			CreateDay: inf.CreateDay,
			ModDay:    inf.ModDay,
			sectionCg: inf.SectionCg,
		}
		if f.IsDir {
			f.Entries = make(map[string]*File)
			fs.cgs[fs.InoToCg(f.Ino)].ndir++
		}
		for i, addr := range f.Blocks {
			n := fs.fpb
			if i == len(f.Blocks)-1 {
				n = f.TailFrags
			}
			c := fs.CgOf(addr)
			c.mutateFrags(c.relFrag(addr), c.relFrag(addr)+n, true)
		}
		for _, ind := range f.Indirects {
			c := fs.CgOf(ind.Addr)
			c.mutateFrags(c.relFrag(ind.Addr), c.relFrag(ind.Addr)+fs.fpb, true)
		}
		fs.files[f.Ino] = f
		fs.relayout(f)
	}
	// Second pass: tree linkage.
	for _, inf := range img.Files {
		f := fs.files[inf.Ino]
		if inf.ParentIno < 0 {
			if fs.root != nil {
				return nil, fmt.Errorf("ffs: image has two roots")
			}
			fs.root = f
			continue
		}
		parent, ok := fs.files[inf.ParentIno]
		if !ok || !parent.IsDir {
			return nil, fmt.Errorf("ffs: file %d has bad parent %d", inf.Ino, inf.ParentIno)
		}
		parent.Entries[f.Name] = f
		f.Parent = parent
	}
	if fs.root == nil {
		return nil, fmt.Errorf("ffs: image has no root")
	}
	if err := fs.Check(); err != nil {
		return nil, fmt.Errorf("ffs: loaded image inconsistent: %w", err)
	}
	return fs, nil
}
