package ffs

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// Image serialization: an aged file system is fully reconstructible
// from its parameters and file table (every fragment's allocation state
// follows from the files' extents), so that is what SaveImage writes,
// plus the per-group allocation rotors and accumulated Stats so that a
// loaded image's future allocations are byte-for-byte identical to the
// in-memory original — checkpoint/resume depends on this.

type imageFile struct {
	Ino       int
	Name      string
	IsDir     bool
	Size      int64
	Blocks    []Daddr
	TailFrags int
	Indirects []Indirect
	ParentIno int // -1 for root
	CreateDay int
	ModDay    int
	SectionCg int
}

type imageData struct {
	Params     Params
	PolicyName string
	Files      []imageFile
	RootIno    int

	// Added for checkpoint/resume; absent (zero) in images written by
	// older versions, which gob decodes compatibly.
	Rotors        []int
	Stats         AllocStats
	IgnoreReserve bool
}

// SaveImage writes the file system to w.
func (fs *FileSystem) SaveImage(w io.Writer) error {
	img := imageData{
		Params:        fs.P,
		PolicyName:    fs.policy.Name(),
		RootIno:       fs.root.Ino,
		Stats:         fs.Stats,
		IgnoreReserve: fs.IgnoreReserve,
	}
	for _, c := range fs.cgs {
		img.Rotors = append(img.Rotors, c.rotor)
	}
	for _, f := range fs.files {
		parent := -1
		if f.Parent != nil {
			parent = f.Parent.Ino
		}
		img.Files = append(img.Files, imageFile{
			Ino:       f.Ino,
			Name:      f.Name,
			IsDir:     f.IsDir,
			Size:      f.Size,
			Blocks:    f.Blocks,
			TailFrags: f.TailFrags,
			Indirects: f.Indirects,
			ParentIno: parent,
			CreateDay: f.CreateDay,
			ModDay:    f.ModDay,
			SectionCg: f.sectionCg,
		})
	}
	sort.Slice(img.Files, func(i, j int) bool { return img.Files[i].Ino < img.Files[j].Ino })
	return gob.NewEncoder(w).Encode(&img)
}

// LoadImage reconstructs a file system from r under the given policy
// (the policy choice governs only future allocations; the image's
// layout is preserved exactly). The result is consistency-checked; a
// damaged image yields an error (possibly a *CorruptionError). Use
// LoadImageLenient + Repair to salvage one.
func LoadImage(r io.Reader, policy Policy) (*FileSystem, error) {
	return loadImage(r, policy, false)
}

// LoadImageLenient reconstructs as much of an image as possible without
// validating it: extents are not claimed in the allocation maps, orphans
// and duplicate inodes are tolerated, and no consistency check runs.
// The result is NOT usable until Repair() has rebuilt the maps and
// counters from the file table; cmd/fsck is the intended caller.
func LoadImageLenient(r io.Reader, policy Policy) (*FileSystem, error) {
	return loadImage(r, policy, true)
}

// claimLenient marks [addr, addr+n) allocated where possible: fragments
// outside the file system, outside the group, or already claimed are
// skipped rather than faulted. Only the lenient image loader uses it;
// Repair rebuilds the maps authoritatively afterwards.
func (fs *FileSystem) claimLenient(addr Daddr, n int) {
	if n < 1 || n > fs.fpb {
		n = fs.fpb
	}
	var c *CylGroup
	for _, g := range fs.cgs {
		if addr >= g.startFrag && addr < g.startFrag+Daddr(g.nfrags) {
			c = g
			break
		}
	}
	if c == nil {
		return
	}
	lo := int(addr - c.startFrag)
	for i := lo; i < lo+n && i < c.nfrags; i++ {
		if c.free.Test(i) {
			c.mutateFrags(i, i+1, true)
		}
	}
}

func loadImage(r io.Reader, policy Policy, lenient bool) (fs *FileSystem, err error) {
	defer recoverCorruption(&err)
	var img imageData
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("ffs: decoding image: %w", err)
	}
	fs, err = NewFileSystem(img.Params, policy)
	if err != nil {
		return nil, err
	}
	fs.IgnoreReserve = img.IgnoreReserve
	// Discard the fresh root; the image carries its own tree.
	fs.cgs[fs.InoToCg(fs.root.Ino)].ndir--
	fs.removeFile(fs.root)
	fs.root = nil

	// First pass: claim inodes and extents, build File objects.
	for _, inf := range img.Files {
		cg := fs.cgs[fs.InoToCg(inf.Ino)]
		slot := inf.Ino % fs.ipg
		if !cg.inodes.Test(slot) {
			if lenient {
				continue // duplicate inode: keep the first occurrence
			}
			return nil, fmt.Errorf("ffs: image reuses inode %d", inf.Ino)
		}
		cg.inodes.Clear(slot)
		cg.nifree--
		f := &File{
			Ino:       inf.Ino,
			Name:      inf.Name,
			IsDir:     inf.IsDir,
			Size:      inf.Size,
			Blocks:    inf.Blocks,
			TailFrags: inf.TailFrags,
			Indirects: inf.Indirects,
			CreateDay: inf.CreateDay,
			ModDay:    inf.ModDay,
			sectionCg: inf.SectionCg,
		}
		if f.IsDir {
			fs.cgs[fs.InoToCg(f.Ino)].ndir++
		}
		if !lenient {
			// Claiming a fragment twice (or out of range) panics with a
			// CorruptionError, recovered above into the returned error.
			for i, addr := range f.Blocks {
				n := fs.fpb
				if i == len(f.Blocks)-1 {
					n = f.TailFrags
				}
				c := fs.CgOf(addr)
				c.mutateFrags(c.relFrag(addr), c.relFrag(addr)+n, true)
			}
			for _, ind := range f.Indirects {
				c := fs.CgOf(ind.Addr)
				c.mutateFrags(c.relFrag(ind.Addr), c.relFrag(ind.Addr)+fs.fpb, true)
			}
			fs.relayout(f)
		} else {
			// Best-effort claims: skip conflicts and bad addresses so
			// Repair's group rebuild measures the image's real damage
			// instead of diffing against all-free maps.
			for i, addr := range f.Blocks {
				n := fs.fpb
				if i == len(f.Blocks)-1 {
					n = f.TailFrags
				}
				fs.claimLenient(addr, n)
			}
			for _, ind := range f.Indirects {
				fs.claimLenient(ind.Addr, fs.fpb)
			}
		}
		fs.files[f.Ino] = f
	}
	// Second pass: tree linkage.
	for _, inf := range img.Files {
		f, ok := fs.files[inf.Ino]
		if !ok {
			continue // skipped duplicate (lenient only)
		}
		if inf.ParentIno < 0 {
			if fs.root != nil {
				if lenient {
					continue // extra root becomes an orphan for Repair
				}
				return nil, fmt.Errorf("ffs: image has two roots")
			}
			fs.root = f
			continue
		}
		parent, ok := fs.files[inf.ParentIno]
		if !ok || !parent.IsDir {
			if lenient {
				continue // orphan; Repair reattaches it
			}
			return nil, fmt.Errorf("ffs: file %d has bad parent %d", inf.Ino, inf.ParentIno)
		}
		parent.putEntry(f.Name, f)
		f.Parent = parent
	}
	if fs.root == nil {
		if !lenient {
			return nil, fmt.Errorf("ffs: image has no root")
		}
		// Salvage: adopt the lowest-numbered directory as the root.
		rootIno := -1
		for ino, f := range fs.files {
			if f.IsDir && f.Parent == nil && (rootIno < 0 || ino < rootIno) {
				rootIno = ino
			}
		}
		if rootIno < 0 {
			return nil, fmt.Errorf("ffs: image has no directory usable as root")
		}
		fs.root = fs.files[rootIno]
	}
	for i, rot := range img.Rotors {
		if i < len(fs.cgs) {
			fs.cgs[i].rotor = rot
		}
	}
	fs.Stats = img.Stats
	if !lenient {
		if err := fs.Check(); err != nil {
			return nil, fmt.Errorf("ffs: loaded image inconsistent: %w", err)
		}
	}
	return fs, nil
}
