// Package ffs implements a block-allocation-level simulator of the
// 4.4BSD Fast File System: superblock parameters, cylinder groups with
// fragment bitmaps, per-fragment-size summaries (frsum) and free-cluster
// summaries, inodes with direct and indirect block chains, directories,
// and the complete allocation mechanism (blkpref, alloccg, fragextend,
// clusteralloc, quadratic hashing across groups, block and fragment
// free). File *contents* are not stored — only sizes and disk addresses
// — which is all the paper's fragmentation and throughput analyses need.
//
// The allocation *policy* under study (original vs. realloc) is supplied
// by the caller through the Policy interface; implementations live in
// internal/core.
package ffs

import "fmt"

// Params are the newfs-time file system parameters. PaperParams matches
// Table 1's file-system column.
type Params struct {
	// SizeBytes is the partition size.
	SizeBytes int64
	// BlockSize and FragSize are the FFS block and fragment sizes;
	// BlockSize must be a power-of-two multiple of FragSize, at most 8×.
	BlockSize int
	FragSize  int
	// NumCg is the number of cylinder groups.
	NumCg int
	// MaxContig is the largest cluster, in blocks, that the clustering
	// code will build (fs_maxcontig; 7 × 8 KB = 56 KB in the paper).
	MaxContig int
	// MaxBpg is the largest number of blocks a single file may allocate
	// from one cylinder group before being forced to move on
	// (fs_maxbpg; BSD default is blocks-per-indirect-block).
	MaxBpg int
	// MinFreePct is the free-space reserve percentage (fs_minfree).
	MinFreePct int
	// BytesPerInode sets inode density (newfs -i).
	BytesPerInode int
	// RotDelay is fs_rotdelay in milliseconds; the paper's file systems
	// use 0 (the modern setting), which makes "next rotationally
	// optimal block" simply "the next block". A non-zero value
	// reproduces the pre-clustering FFS discipline: successive blocks
	// of a file are deliberately spaced by the distance the platter
	// travels in RotDelay ms, so block-at-a-time I/O does not lose a
	// revolution per block (the A8 study).
	RotDelay int
	// LogicalRPS is the fs's notion of revolutions per second
	// (fs_rps), used only to convert RotDelay into a fragment skip.
	LogicalRPS int
	// FirstFitClusters switches the cluster search to the literal
	// 4.4BSD first-fit scan instead of the default chain-aware fit
	// (which prefers runs with room for the file's next cluster). The
	// A4 ablation bench measures the difference; see DESIGN.md §5.2.
	FirstFitClusters bool
	// LogicalHeads / LogicalSectors mirror the fs's notion of disk
	// geometry (Table 1 italic values). They are retained for fidelity
	// of reporting; block-to-sector mapping is linear.
	LogicalHeads   int
	LogicalSectors int
}

// PaperParams returns the paper's 502 MB file system configuration.
func PaperParams() Params {
	return Params{
		SizeBytes:      502 << 20,
		BlockSize:      8 << 10,
		FragSize:       1 << 10,
		NumCg:          27,
		MaxContig:      7,
		MaxBpg:         2048, // 8192/4 bytes per block pointer
		MinFreePct:     10,
		BytesPerInode:  4096,
		RotDelay:       0,
		LogicalRPS:     90, // 5411 RPM ≈ 90 rev/s
		LogicalHeads:   22,
		LogicalSectors: 118,
	}
}

// Validate checks the parameter set for internal consistency.
func (p Params) Validate() error {
	switch {
	case p.SizeBytes <= 0:
		return fmt.Errorf("ffs: non-positive size %d", p.SizeBytes)
	case p.FragSize <= 0 || p.BlockSize <= 0:
		return fmt.Errorf("ffs: non-positive block/frag size")
	case p.BlockSize%p.FragSize != 0:
		return fmt.Errorf("ffs: block size %d not a multiple of frag size %d", p.BlockSize, p.FragSize)
	}
	fpb := p.BlockSize / p.FragSize
	if fpb != 1 && fpb != 2 && fpb != 4 && fpb != 8 {
		return fmt.Errorf("ffs: frags per block %d not in {1,2,4,8}", fpb)
	}
	switch {
	case p.NumCg <= 0:
		return fmt.Errorf("ffs: non-positive cylinder group count %d", p.NumCg)
	case p.MaxContig < 1:
		return fmt.Errorf("ffs: maxcontig %d < 1", p.MaxContig)
	case p.MaxBpg < 1:
		return fmt.Errorf("ffs: maxbpg %d < 1", p.MaxBpg)
	case p.MinFreePct < 0 || p.MinFreePct > 99:
		return fmt.Errorf("ffs: minfree %d%% out of range", p.MinFreePct)
	case p.BytesPerInode < p.FragSize:
		return fmt.Errorf("ffs: bytes-per-inode %d below frag size", p.BytesPerInode)
	}
	if p.SizeBytes/int64(p.BlockSize)/int64(p.NumCg) < 64 {
		return fmt.Errorf("ffs: cylinder groups too small (%d blocks each)",
			p.SizeBytes/int64(p.BlockSize)/int64(p.NumCg))
	}
	return nil
}

// FragsPerBlock returns BlockSize/FragSize.
func (p Params) FragsPerBlock() int { return p.BlockSize / p.FragSize }

// TotalFrags returns the number of fragments on the partition.
func (p Params) TotalFrags() int64 { return p.SizeBytes / int64(p.FragSize) }

// TotalBlocks returns the number of whole blocks on the partition.
func (p Params) TotalBlocks() int64 { return p.SizeBytes / int64(p.BlockSize) }

// ClusterBytes returns the maximum cluster size in bytes (56 KB for the
// paper's configuration).
func (p Params) ClusterBytes() int64 { return int64(p.MaxContig) * int64(p.BlockSize) }

// RotDelayFrags converts the rotational-delay parameter into the
// fragment skip ffs_blkpref adds between successive blocks: the
// sectors passing under the head in RotDelay milliseconds, rounded up
// to whole blocks (a preference must be block-aligned).
func (p Params) RotDelayFrags() int {
	if p.RotDelay <= 0 || p.LogicalRPS <= 0 {
		return 0
	}
	sectors := float64(p.RotDelay) / 1000 * float64(p.LogicalRPS) * float64(p.LogicalSectors)
	frags := int(sectors * 512 / float64(p.FragSize))
	fpb := p.FragsPerBlock()
	if frags <= 0 {
		return 0
	}
	return (frags + fpb - 1) / fpb * fpb
}
