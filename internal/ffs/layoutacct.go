package ffs

// Incremental layout accounting. The paper's aggregate layout score —
// optimally placed blocks over scoreable blocks, across every plain
// file — used to be recomputed with a full O(files × blocks) rescan
// after each simulated day, 300 times per aging run. Instead the file
// system maintains the two integer totals at mutation time: every
// operation that changes a file's block map refreshes that one file's
// cached contribution (O(blocks of that file)), so the daily score is
// an O(1) division. internal/layout.FsAggregate remains as the
// independent rescan; Check() asserts the two agree, and cmd/repro
// -slowscore routes the aging replayer through the rescan as a
// cross-check path.

// fileLayoutCounts returns f's contribution to the aggregate layout
// score: the number of optimally placed blocks (physically contiguous
// with their predecessor) and the number of scoreable blocks (all but
// the first). Files with fewer than two blocks contribute nothing, and
// directories are never counted by the callers.
func fileLayoutCounts(f *File, fpb int) (opt, total int) {
	n := len(f.Blocks)
	if n < 2 {
		return 0, 0
	}
	for i := 1; i < n; i++ {
		if f.Blocks[i] == f.Blocks[i-1]+Daddr(fpb) {
			opt++
		}
	}
	return opt, n - 1
}

// relayout refreshes f's cached layout contribution in the file-system
// totals after a mutation of its block map. It recomputes from the
// current map, so calling it more than once per mutation is harmless.
func (fs *FileSystem) relayout(f *File) {
	if f.IsDir {
		return
	}
	opt, total := fileLayoutCounts(f, fs.fpb)
	fs.layoutOpt += int64(opt - f.scoreOpt)
	fs.layoutTotal += int64(total - f.scoreTotal)
	f.scoreOpt, f.scoreTotal = opt, total
}

// dropLayout removes f's cached contribution (file deletion).
func (fs *FileSystem) dropLayout(f *File) {
	if f.IsDir {
		return
	}
	fs.layoutOpt -= int64(f.scoreOpt)
	fs.layoutTotal -= int64(f.scoreTotal)
	f.scoreOpt, f.scoreTotal = 0, 0
}

// LayoutScore returns the aggregate layout score of every plain file,
// from the incrementally maintained counters: identical to
// layout.FsAggregate but O(1). An empty (or all-small-file) system
// scores 1.0, as in the paper's convention.
func (fs *FileSystem) LayoutScore() float64 {
	if fs.layoutTotal == 0 {
		return 1.0
	}
	return float64(fs.layoutOpt) / float64(fs.layoutTotal)
}

// LayoutCounts exposes the raw incremental totals (optimal, scoreable)
// for tests and the consistency checker.
func (fs *FileSystem) LayoutCounts() (opt, total int64) {
	return fs.layoutOpt, fs.layoutTotal
}
