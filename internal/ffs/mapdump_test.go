package ffs

import "testing"

func TestBlockMap(t *testing.T) {
	fs := newSmallFs(t)
	f := mustCreate(t, fs, fs.Root(), "data", 64<<10) // 8 full blocks
	mustCreate(t, fs, fs.Root(), "tail", 3<<10)       // a partial block

	counts := map[BlockState]int{}
	var total int
	for cg := 0; cg < fs.NumCg(); cg++ {
		m := fs.BlockMap(cg)
		total += len(m)
		for _, s := range m {
			counts[s]++
		}
	}
	if total != int(fs.P.TotalBlocks()) {
		t.Fatalf("map covers %d blocks, fs has %d", total, fs.P.TotalBlocks())
	}
	if counts[BlockMeta] == 0 {
		t.Error("no metadata blocks")
	}
	if counts[BlockFull] < 8 {
		t.Errorf("%d full blocks, want ≥ 8", counts[BlockFull])
	}
	if counts[BlockPartial] == 0 {
		t.Error("no partial block despite a fragment tail")
	}
	if counts[BlockFree] == 0 {
		t.Error("no free blocks on a fresh fs")
	}

	// The file's own blocks must show as full.
	cg := fs.cgIndexOf(f.Blocks[0])
	m := fs.BlockMap(cg)
	rel := fs.CgOf(f.Blocks[0]).relFrag(f.Blocks[0]) / fs.fpb
	if m[rel] != BlockFull {
		t.Errorf("file block state %c, want %c", m[rel], BlockFull)
	}
	// Cell totals agree with the group's counters.
	c := fs.Cg(cg)
	freeCells := 0
	for _, s := range fs.BlockMap(cg) {
		if s == BlockFree {
			freeCells++
		}
	}
	if freeCells != c.NBFree() {
		t.Errorf("map free cells %d, counter %d", freeCells, c.NBFree())
	}
}
