package ffs

import (
	"fmt"

	"ffsage/internal/bitset"
)

// CylGroup is one cylinder group: a fragment-granularity free map plus
// the summary structures FFS keeps to avoid scanning it — per-run-length
// free fragment counts (cg_frsum) and per-run-length free block cluster
// counts (cg_clustersum) — and the inode map.
//
// Fragment indices and block indices in this type are group-relative;
// the FileSystem converts to and from absolute Daddr.
type CylGroup struct {
	fs    *FileSystem
	Index int

	startFrag Daddr // absolute address of group-relative fragment 0
	nfrags    int   // fragments in this group (multiple of fpb)
	nblk      int   // whole blocks in this group
	metaFrags int   // fragments reserved for sb copy, cg header, inodes

	free    *bitset.Set // fragment-level: set = free
	blkfree *bitset.Set // block-level: set = block fully free

	nffree int // free fragments in partially-allocated blocks
	nbfree int // fully free blocks

	// frsum[k] counts maximal runs of exactly k free fragments inside
	// partially-allocated blocks, 1 ≤ k < fpb.
	frsum []int
	// clusterSum[k] counts maximal runs of free blocks of length k,
	// with k capped at maxcontig (the last bin counts all runs of at
	// least maxcontig blocks), 1 ≤ k ≤ maxcontig.
	clusterSum []int

	inodes *bitset.Set // set = free inode
	nifree int
	ndir   int

	rotor int // fragment index where the next block search begins
}

func newCylGroup(fs *FileSystem, index int, startFrag Daddr, nfrags, metaFrags int) *CylGroup {
	fpb := fs.fpb
	if nfrags%fpb != 0 {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("ffs: cg %d size %d not block aligned", index, nfrags))
	}
	c := &CylGroup{
		fs:         fs,
		Index:      index,
		startFrag:  startFrag,
		nfrags:     nfrags,
		nblk:       nfrags / fpb,
		metaFrags:  metaFrags,
		free:       bitset.New(nfrags),
		blkfree:    bitset.New(nfrags / fpb),
		frsum:      make([]int, fpb),
		clusterSum: make([]int, fs.P.MaxContig+1),
		inodes:     bitset.New(fs.ipg),
		nifree:     fs.ipg,
	}
	c.inodes.SetRange(0, fs.ipg)
	// Everything starts free...
	c.free.SetRange(0, nfrags)
	c.blkfree.SetRange(0, c.nblk)
	c.nbfree = c.nblk
	fs.freeFrags += int64(nfrags)
	fs.freeBlks += int64(c.nblk)
	c.clusterAdd(c.nblk)
	// ...except the metadata area.
	if metaFrags > 0 {
		c.mutateFrags(0, metaFrags, true)
	}
	c.rotor = blkRoundUp(metaFrags, fpb)
	return c
}

func blkRoundUp(x, fpb int) int { return (x + fpb - 1) / fpb * fpb }

// NFrags returns the number of fragments in the group.
func (c *CylGroup) NFrags() int { return c.nfrags }

// NBFree returns the number of fully free blocks.
func (c *CylGroup) NBFree() int { return c.nbfree }

// NFFree returns the number of free fragments outside free blocks.
func (c *CylGroup) NFFree() int { return c.nffree }

// FreeFrags returns the total free fragment count.
func (c *CylGroup) FreeFrags() int { return c.nffree + c.nbfree*c.fs.fpb }

// NIFree returns the number of free inodes.
func (c *CylGroup) NIFree() int { return c.nifree }

// NDir returns the number of directories allocated in the group.
func (c *CylGroup) NDir() int { return c.ndir }

// DataStart returns the group-relative fragment index of the first
// fragment past the metadata area.
func (c *CylGroup) DataStart() int { return blkRoundUp(c.metaFrags, c.fs.fpb) }

// clusterAdd records a maximal free-block run of the given length
// appearing (lengths bin-capped at maxcontig).
func (c *CylGroup) clusterAdd(length int) {
	if length <= 0 {
		return
	}
	if length > c.fs.P.MaxContig {
		length = c.fs.P.MaxContig
	}
	c.clusterSum[length]++
}

func (c *CylGroup) clusterRemove(length int) {
	if length <= 0 {
		return
	}
	if length > c.fs.P.MaxContig {
		length = c.fs.P.MaxContig
	}
	if c.clusterSum[length] == 0 {
		throwCorrupt("clusterAcct", c.Index, "clusterSum[%d] underflow", length)
	}
	c.clusterSum[length]--
}

// clusterAcct updates the cluster summary when block b transitions
// between free and allocated, in the style of ffs_clusteracct: measure
// the free runs on either side (capped at maxcontig), remove their old
// bins, add the new configuration's bins.
func (c *CylGroup) clusterAcct(b int, becomingFree bool) {
	max := c.fs.P.MaxContig
	back := 0
	for i := b - 1; i >= 0 && back < max && c.blkfree.Test(i); i-- {
		back++
	}
	fwd := 0
	for i := b + 1; i < c.nblk && fwd < max && c.blkfree.Test(i); i++ {
		fwd++
	}
	if becomingFree {
		c.clusterRemove(back)
		c.clusterRemove(fwd)
		c.clusterAdd(back + 1 + fwd)
	} else {
		c.clusterRemove(back + 1 + fwd)
		c.clusterAdd(back)
		c.clusterAdd(fwd)
	}
}

// HasCluster reports whether the group contains a free run of at least
// n blocks (n ≤ maxcontig).
func (c *CylGroup) HasCluster(n int) bool {
	if n <= 0 {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic("ffs: HasCluster length <= 0")
	}
	if n > c.fs.P.MaxContig {
		return false
	}
	for k := n; k <= c.fs.P.MaxContig; k++ {
		if c.clusterSum[k] > 0 {
			return true
		}
	}
	return false
}

// blockPattern summarizes one block's fragment bitmap.
type blockPattern struct {
	full    bool // all fragments free
	nf      int  // free fragments if not full
	runs    [9]int
	maxFree int
}

// freeTotal returns the block's total free fragment count, whether the
// block is whole or partial.
func (p *blockPattern) freeTotal(fpb int) int {
	if p.full {
		return fpb
	}
	return p.nf
}

// buildPatternTable precomputes the blockPattern of every possible
// fragment free-mask for one block. Params.Validate restricts fpb to
// {1, 2, 4, 8}, so a block's free bits always fit in one byte and the
// table has at most 256 entries; pattern lookups become a single table
// index instead of a per-bit bitmap scan (the busiest loop in replay
// profiles before this table existed).
func buildPatternTable(fpb int) []blockPattern {
	t := make([]blockPattern, 1<<uint(fpb))
	for m := range t {
		p := &t[m]
		run := 0
		for i := 0; i < fpb; i++ {
			if m&(1<<uint(i)) != 0 {
				p.nf++
				run++
				if run > p.maxFree {
					p.maxFree = run
				}
			} else if run > 0 {
				p.runs[run]++
				run = 0
			}
		}
		if run == fpb {
			p.full = true
			p.nf = 0
			p.maxFree = fpb
			continue
		}
		if run > 0 {
			p.runs[run]++
		}
	}
	return t
}

// freeMask returns block b's fragment free bits packed into a byte
// (bit i = fragment b*fpb+i free).
func (c *CylGroup) freeMask(b int) uint8 {
	return c.free.Mask8(b*c.fs.fpb, c.fs.fpb)
}

// pattern returns block b's summary. The result points into the file
// system's shared read-only pattern table and must not be mutated.
func (c *CylGroup) pattern(b int) *blockPattern {
	return &c.fs.patterns[c.freeMask(b)]
}

// mutateFrags flips the allocation state of group-relative fragments
// [lo, hi) to allocated (alloc=true) or free, updating every summary.
// It panics if any fragment is already in the requested state — the
// simulator's equivalent of a "freeing free block" kernel panic.
func (c *CylGroup) mutateFrags(lo, hi int, alloc bool) {
	if lo < 0 || hi > c.nfrags || lo >= hi {
		throwCorrupt("mutateFrags", c.Index, "range [%d,%d) of %d", lo, hi, c.nfrags)
	}
	fpb := c.fs.fpb
	patterns := c.fs.patterns
	for b := lo / fpb; b <= (hi-1)/fpb; b++ {
		base := b * fpb
		blo, bhi := base, base+fpb
		if blo < lo {
			blo = lo
		}
		if bhi > hi {
			bhi = hi
		}
		beforeMask := c.free.Mask8(base, fpb)
		seg := uint8(uint(1)<<uint(bhi-base)-1) &^ uint8(uint(1)<<uint(blo-base)-1)
		var afterMask uint8
		if alloc {
			// Allocating requires every targeted fragment free.
			if beforeMask&seg != seg {
				c.badMutate(blo, bhi, alloc)
			}
			c.free.ClearRange(blo, bhi)
			afterMask = beforeMask &^ seg
		} else {
			// Freeing requires every targeted fragment allocated.
			if beforeMask&seg != 0 {
				c.badMutate(blo, bhi, alloc)
			}
			c.free.SetRange(blo, bhi)
			afterMask = beforeMask | seg
		}
		c.applyPatternDelta(b, &patterns[beforeMask], &patterns[afterMask])
	}
}

// badMutate reports the first fragment of [lo, hi) already in the
// requested state, preserving the per-fragment diagnostic of the old
// bit-at-a-time loop.
func (c *CylGroup) badMutate(lo, hi int, alloc bool) {
	state := "free"
	if alloc {
		state = "allocated"
	}
	bad := lo
	for i := lo; i < hi; i++ {
		if c.free.Test(i) != alloc {
			bad = i
			break
		}
	}
	throwCorrupt("mutateFrags", c.Index, "frag %d already %s", bad, state)
}

func (c *CylGroup) applyPatternDelta(b int, before, after *blockPattern) {
	if before.full != after.full {
		if after.full {
			c.nbfree++
			c.fs.freeBlks++
			c.blkfree.Set(b)
			c.clusterAcct(b, true)
		} else {
			c.nbfree--
			c.fs.freeBlks--
			c.blkfree.Clear(b)
			c.clusterAcct(b, false)
		}
	}
	c.nffree += after.nf - before.nf
	c.fs.freeFrags += int64(after.freeTotal(c.fs.fpb) - before.freeTotal(c.fs.fpb))
	for k := 1; k < c.fs.fpb; k++ {
		c.frsum[k] += after.runs[k] - before.runs[k]
		if c.frsum[k] < 0 {
			throwCorrupt("applyPatternDelta", c.Index, "frsum[%d] underflow", k)
		}
	}
}

// allocBlockAt claims the fully free block b. It panics if b is not
// fully free; callers test first.
func (c *CylGroup) allocBlockAt(b int) {
	if !c.blkfree.Test(b) {
		throwCorrupt("allocBlockAt", c.Index, "block %d not free", b)
	}
	fpb := c.fs.fpb
	c.mutateFrags(b*fpb, (b+1)*fpb, true)
	c.rotor = b * fpb
}

// allocBlockNear allocates a fully free block, preferring the block
// containing prefFrag (group-relative), then scanning forward with
// wrap-around — the ffs_mapsearch discipline, which takes the first free
// block it meets with no regard for the free run it sits in (the
// original policy's defect the paper studies). prefFrag < 0 means "use
// the group rotor". Returns the block index, or -1 when the group has
// no free block.
func (c *CylGroup) allocBlockNear(prefFrag int) int {
	if c.nbfree == 0 {
		return -1
	}
	fpb := c.fs.fpb
	start := c.rotor / fpb
	if prefFrag >= 0 {
		start = prefFrag / fpb
		if start >= c.nblk {
			start = 0
		}
	}
	b := c.blkfree.NextSet(start)
	if b < 0 {
		b = c.blkfree.NextSet(0)
	}
	if b < 0 {
		throwCorrupt("allocBlockNear", c.Index, "nbfree=%d but no free block found", c.nbfree)
	}
	c.allocBlockAt(b)
	return b
}

// allocFrags allocates a run of n fragments (1 ≤ n < fpb) using the
// frsum best-fit discipline of ffs_alloccg: find the smallest free run
// size ≥ n that exists in a partial block; if none exists, break a full
// block. Returns the group-relative fragment index, or -1 when the
// group cannot satisfy the request.
func (c *CylGroup) allocFrags(n, prefFrag int) int {
	fpb := c.fs.fpb
	if n <= 0 || n >= fpb {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("ffs: allocFrags n=%d", n))
	}
	allocsiz := 0
	for k := n; k < fpb; k++ {
		if c.frsum[k] > 0 {
			allocsiz = k
			break
		}
	}
	if allocsiz == 0 {
		// No suitable fragment run anywhere: split a full block.
		b := c.allocBlockNearFree(prefFrag)
		if b < 0 {
			return -1
		}
		// Claim only the first n fragments; the pattern delta turns the
		// remaining fpb-n into a free run in frsum.
		c.mutateFrags(b*fpb, b*fpb+n, true)
		c.rotor = b * fpb
		return b * fpb
	}
	// Scan partial blocks from the preference (or rotor) for a maximal
	// run of exactly allocsiz fragments.
	start := c.rotor / fpb
	if prefFrag >= 0 && prefFrag/fpb < c.nblk {
		start = prefFrag / fpb
	}
	for i := 0; i < c.nblk; i++ {
		b := (start + i) % c.nblk
		if c.blkfree.Test(b) {
			continue // full blocks are not fragment donors
		}
		p := c.pattern(b)
		if p.runs[allocsiz] == 0 {
			continue
		}
		// Find the run of exactly allocsiz within the block.
		idx := c.findRunInBlock(b, allocsiz)
		c.mutateFrags(idx, idx+n, true)
		c.rotor = b * fpb
		return idx
	}
	throwCorrupt("allocFrags", c.Index, "frsum[%d]=%d but no run found", allocsiz, c.frsum[allocsiz])
	return -1 // unreachable
}

// allocBlockNearFree is allocBlockNear without claiming the block; it
// returns a free block index or -1. Used by the split path, which wants
// to claim only part of the block.
func (c *CylGroup) allocBlockNearFree(prefFrag int) int {
	if c.nbfree == 0 {
		return -1
	}
	fpb := c.fs.fpb
	start := c.rotor / fpb
	if prefFrag >= 0 {
		start = prefFrag / fpb
		if start >= c.nblk {
			start = 0
		}
	}
	b := c.blkfree.NextSet(start)
	if b < 0 {
		b = c.blkfree.NextSet(0)
	}
	return b
}

// findRunInBlock locates the first maximal free run of exactly length
// inside block b and returns its group-relative fragment index.
func (c *CylGroup) findRunInBlock(b, length int) int {
	fpb := c.fs.fpb
	base := b * fpb
	mask := c.freeMask(b)
	run, runStart := 0, -1
	for i := 0; i <= fpb; i++ {
		if i < fpb && mask&(1<<uint(i)) != 0 {
			if run == 0 {
				runStart = base + i
			}
			run++
			continue
		}
		if run == length {
			return runStart
		}
		run = 0
	}
	throwCorrupt("findRunInBlock", c.Index, "block %d has no run of %d", b, length)
	return -1 // unreachable
}

// extendFrags grows an existing fragment run in place from oldN to newN
// fragments (the ffs_fragextend path). It reports whether the extension
// succeeded; on failure the map is unchanged.
func (c *CylGroup) extendFrags(fragIdx, oldN, newN int) bool {
	fpb := c.fs.fpb
	if oldN <= 0 || newN <= oldN || newN > fpb {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("ffs: extendFrags %d→%d", oldN, newN))
	}
	if fragIdx/fpb != (fragIdx+newN-1)/fpb {
		return false // would cross a block boundary
	}
	if !c.free.TestRange(fragIdx+oldN, fragIdx+newN) {
		return false
	}
	c.mutateFrags(fragIdx+oldN, fragIdx+newN, true)
	return true
}

// allocCluster claims a run of n fully free blocks (the
// ffs_clusteralloc mechanism used by the realloc policy). The search
// honours prefBlock first (exact placement, so clusters chain end to
// end), then takes the tightest fit: the first free run whose length is
// as close to n as available. Best-fit keeps the group's large free
// runs intact for future clusters, which is what lets the realloc
// system retain its allocation advantage as the disk fills; taking the
// first sufficient run instead shreds exactly the free space the policy
// depends on (measured in the A4 ablation bench).
func (c *CylGroup) allocCluster(prefBlock, n int) int {
	if n <= 0 || n > c.fs.P.MaxContig {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("ffs: allocCluster n=%d", n))
	}
	if !c.HasCluster(n) {
		return -1
	}
	b := -1
	switch {
	case prefBlock >= 0 && prefBlock+n <= c.nblk && c.blkfree.TestRange(prefBlock, prefBlock+n):
		b = prefBlock
	case c.fs.P.FirstFitClusters:
		b = c.blkfree.FindRun(0, c.nblk, n)
	default:
		b = c.findClusterBestFit(n)
	}
	if b < 0 {
		throwCorrupt("allocCluster", c.Index, "HasCluster(%d) but search failed", n)
	}
	fpb := c.fs.fpb
	c.mutateFrags(b*fpb, (b+n)*fpb, true)
	c.rotor = b * fpb
	return b
}

// findClusterBestFit returns the start of the first free run that can
// hold n blocks *with room left over* (length > n), so the file's next
// cluster can chain directly after this one; only when no such run
// exists does it settle for an exact fit. The allocation is taken from
// the head of the run, leaving the tail free.
func (c *CylGroup) findClusterBestFit(n int) int {
	b := 0
	fallback := -1
	for {
		start := c.blkfree.NextSet(b)
		if start < 0 {
			return fallback
		}
		length := 0
		end := start
		for end < c.nblk && c.blkfree.Test(end) {
			length++
			end++
		}
		if length > n {
			return start
		}
		if length == n && fallback < 0 {
			fallback = start
		}
		b = end
	}
}

// freeFrags releases group-relative fragments [fragIdx, fragIdx+n).
func (c *CylGroup) freeFrags(fragIdx, n int) {
	c.mutateFrags(fragIdx, fragIdx+n, false)
}

// allocInode claims the lowest free inode slot, or returns -1.
func (c *CylGroup) allocInode() int {
	i := c.inodes.NextSet(0)
	if i < 0 {
		return -1
	}
	c.inodes.Clear(i)
	c.nifree--
	return i
}

// freeInode releases inode slot i.
func (c *CylGroup) freeInode(i int) {
	if c.inodes.Test(i) {
		throwCorrupt("freeInode", c.Index, "inode %d already free", i)
	}
	c.inodes.Set(i)
	c.nifree++
}
