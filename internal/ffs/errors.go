package ffs

import "fmt"

// CorruptionError reports an on-"disk" state inconsistency discovered
// mid-operation: a free-map bit disagreeing with an allocation request,
// a summary counter promising space the map does not hold, a fragment
// address outside the file system. These are the conditions a real FFS
// turns into a kernel panic ("freeing free block"); here they are typed
// errors so a damaged simulation can be stopped, inspected with
// Check(), and mended with Repair() instead of killing the process.
//
// Internally the mutation paths still unwind with panic — threading an
// error through every bitmap update would bury the allocator in
// plumbing — but every exported mutator recovers *CorruptionError
// specifically (and only it) and returns it to the caller. A file
// system that has returned a CorruptionError is in an unspecified
// state: run Repair() before using it further.
//
// Panics that indicate caller bugs (negative sizes, out-of-range
// arguments to internal helpers) are NOT converted; those remain
// programmer errors.
type CorruptionError struct {
	// Op names the operation that tripped over the corruption
	// ("mutateFrags", "alloc", "ialloc", ...).
	Op string
	// Cg is the cylinder group involved, or -1 when not group-local.
	Cg int
	// Detail is the human-readable description.
	Detail string
}

func (e *CorruptionError) Error() string {
	if e.Cg >= 0 {
		return fmt.Sprintf("ffs: corruption in %s (cg %d): %s", e.Op, e.Cg, e.Detail)
	}
	return fmt.Sprintf("ffs: corruption in %s: %s", e.Op, e.Detail)
}

// corruptf builds a CorruptionError; throwCorrupt panics with one, to
// be recovered at the public API boundary by recoverCorruption.
func corruptf(op string, cg int, format string, args ...interface{}) *CorruptionError {
	return &CorruptionError{Op: op, Cg: cg, Detail: fmt.Sprintf(format, args...)}
}

func throwCorrupt(op string, cg int, format string, args ...interface{}) {
	//lint:ignore ffsvet/nopanic corruption trampoline: recovered into a returned *CorruptionError at every exported-API boundary
	panic(corruptf(op, cg, format, args...))
}

// recoverCorruption converts an in-flight *CorruptionError panic into a
// returned error; any other panic is re-raised. Exported mutators use
// it as `defer recoverCorruption(&err)` so corruption surfaces to
// callers instead of killing the process.
func recoverCorruption(err *error) {
	r := recover()
	if r == nil {
		return
	}
	if ce, ok := r.(*CorruptionError); ok {
		*err = ce
		return
	}
	//lint:ignore ffsvet/nopanic re-raise of a non-corruption panic from the recovery trampoline, not a new failure path
	panic(r)
}
