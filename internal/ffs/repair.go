package ffs

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"ffsage/internal/bitset"
)

// Repair is the fsck counterpart to Check: it rebuilds the file system
// into a consistent state from the file table, which it treats as the
// ground truth (the inode/block-pointer data a real fsck reads back
// from disk). The passes mirror fsck_ffs:
//
//  1. directory linkage — choose/confirm the root, reattach orphans and
//     cycle members to it, rebuild every directory's entry map from the
//     files' parent pointers (renaming on collision);
//  2. file shapes — reconcile Size, the block count, the fragment tail,
//     and the indirect-block list; a torn write (size recorded, block
//     pointer lost) truncates the file to the blocks actually present;
//  3. extents — claim every file's fragments in ascending inode order;
//     a conflicting or out-of-range extent truncates the owning file at
//     the conflict (first claim wins, like fsck's duplicate-block pass);
//  4. allocation maps — rebuild each group's fragment bitmap as the
//     complement of the claimed set, then recompute the block map,
//     nffree/nbfree, frsum, and the cluster summary from it, freeing
//     leaked fragments and reclaiming phantoms as a side effect;
//  5. inode maps — rebuild each group's inode bitmap, nifree, and ndir
//     from the file table;
//  6. layout counters — recompute the incremental layout-score caches.
//
// The returned report says what changed. Repair ends by running Check;
// a non-nil error means the state defeated repair (a bug, not a
// property of the input).
func (fs *FileSystem) Repair() (*RepairReport, error) {
	rep := &RepairReport{}
	inos := fs.sortedInos()
	fs.repairTree(inos, rep)
	inos = fs.sortedInos() // repairTree may synthesize a root

	claimed := bitset.New(int(fs.P.TotalFrags()))
	for _, c := range fs.cgs {
		if c.metaFrags > 0 {
			claimed.SetRange(int(c.startFrag), int(c.startFrag)+c.metaFrags)
		}
	}
	for _, ino := range inos {
		fs.repairFile(fs.files[ino], claimed, rep)
	}
	fs.rebuildGroups(claimed, rep)
	fs.rebuildInodes(rep)
	fs.rebuildLayout(rep)

	if err := fs.Check(); err != nil {
		return rep, fmt.Errorf("ffs: repair left inconsistency: %w", err)
	}
	return rep, nil
}

// RepairReport records what Repair changed.
type RepairReport struct {
	ReattachedOrphans int   // files re-parented to the root
	RenamedFiles      int   // renamed to resolve a directory collision
	RelinkedFiles     int   // files whose (parent, name) linkage changed
	TruncatedFiles    int   // files cut short by torn writes or extent conflicts
	ShapeFixes        int   // size/tail/indirect canonicalizations
	LeakedFrags       int64 // fragments marked allocated but owned by no file
	PhantomFrags      int64 // fragments owned by a file but marked free
	GroupsRebuilt     int   // groups whose maps or counters were wrong
	InodeMapFixes     int   // groups whose inode map or counters were wrong
	LayoutFixed       bool  // layout-score counters were wrong
}

// Any reports whether the repair changed anything.
func (r *RepairReport) Any() bool {
	return r.ReattachedOrphans > 0 || r.RenamedFiles > 0 || r.RelinkedFiles > 0 ||
		r.TruncatedFiles > 0 || r.ShapeFixes > 0 || r.LeakedFrags > 0 ||
		r.PhantomFrags > 0 || r.GroupsRebuilt > 0 || r.InodeMapFixes > 0 || r.LayoutFixed
}

func (r *RepairReport) String() string {
	if !r.Any() {
		return "clean"
	}
	var parts []string
	add := func(n int64, what string) {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, what))
		}
	}
	add(int64(r.ReattachedOrphans), "orphans reattached")
	add(int64(r.RenamedFiles), "files renamed")
	add(int64(r.RelinkedFiles), "entries relinked")
	add(int64(r.TruncatedFiles), "files truncated")
	add(int64(r.ShapeFixes), "shapes fixed")
	add(r.LeakedFrags, "leaked frags freed")
	add(r.PhantomFrags, "phantom frags reclaimed")
	add(int64(r.GroupsRebuilt), "groups rebuilt")
	add(int64(r.InodeMapFixes), "inode maps fixed")
	if r.LayoutFixed {
		parts = append(parts, "layout counters fixed")
	}
	return strings.Join(parts, ", ")
}

func (fs *FileSystem) sortedInos() []int {
	inos := make([]int, 0, len(fs.files))
	for ino := range fs.files {
		inos = append(inos, ino)
	}
	sort.Ints(inos)
	return inos
}

// repairTree fixes pass 1: root identity, orphans, cycles, and entry
// maps. Files are processed in ascending inode order so repair is
// deterministic.
func (fs *FileSystem) repairTree(inos []int, rep *RepairReport) {
	for _, ino := range inos {
		if f := fs.files[ino]; f.Ino != ino {
			f.Ino = ino
			rep.ShapeFixes++
		}
	}
	live := func(f *File) bool { return f != nil && fs.files[f.Ino] == f }

	// Choose the root: the recorded one if it is a live directory, else
	// the lowest-numbered parentless directory, else the lowest-numbered
	// directory, else a synthesized empty one.
	root := fs.root
	if !live(root) || !root.IsDir {
		root = nil
	}
	if root == nil {
		for _, ino := range inos {
			f := fs.files[ino]
			if f.IsDir && !live(f.Parent) {
				root = f
				break
			}
		}
	}
	if root == nil {
		for _, ino := range inos {
			if f := fs.files[ino]; f.IsDir {
				root = f
				break
			}
		}
	}
	if root == nil {
		ino := 0
		for fs.files[ino] != nil {
			ino++
		}
		root = &File{Ino: ino, Name: "/", IsDir: true}
		fs.files[ino] = root
		rep.ReattachedOrphans++ // counts the synthesized root
	}
	if root != fs.root || root.Parent != nil {
		root.Parent = nil
		fs.root = root
	}

	type link struct {
		parent int
		name   string
	}
	old := make(map[int]link, len(fs.files))
	for _, ino := range inos {
		f := fs.files[ino]
		p := -1
		if f.Parent != nil {
			p = f.Parent.Ino
		}
		old[ino] = link{p, f.Name}
	}

	// Count the entry-table damage the rebuild below will erase: stale
	// or aliased entries, and canonical entries that are missing.
	for _, ino := range inos {
		f := fs.files[ino]
		for _, e := range f.entries {
			if !f.IsDir || !live(e.file) || e.file.Parent != f || e.file.Name != e.name {
				rep.RelinkedFiles++
			}
		}
		if f != root && live(f.Parent) && f.Parent.IsDir {
			if got, ok := f.Parent.lookupEntry(f.Name); !ok || got != f {
				rep.RelinkedFiles++
			}
		}
	}

	// Entry tables are rebuilt from scratch below.
	for _, ino := range inos {
		f := fs.files[ino]
		clear(f.entries)
		f.entries = f.entries[:0]
	}

	// Reattach files whose parent is dead, not a directory, or itself.
	for _, ino := range inos {
		f := fs.files[ino]
		if f == root {
			continue
		}
		if !live(f.Parent) || !f.Parent.IsDir || f.Parent == f {
			f.Parent = root
			rep.ReattachedOrphans++
		}
	}
	// Break parent-pointer cycles that never reach the root.
	const unknown, visiting, settled = 0, 1, 2
	state := make(map[*File]int, len(fs.files))
	var reach func(f *File)
	reach = func(f *File) {
		if f == root || state[f] == settled {
			return
		}
		if state[f] == visiting {
			f.Parent = root
			rep.ReattachedOrphans++
			state[f] = settled
			return
		}
		state[f] = visiting
		reach(f.Parent)
		state[f] = settled
	}
	for _, ino := range inos {
		reach(fs.files[ino])
	}
	// Rebuild the entry tables, renaming on collision.
	for _, ino := range inos {
		f := fs.files[ino]
		if f == root {
			continue
		}
		name := f.Name
		if name == "" {
			name = fmt.Sprintf("ino%d", ino)
		}
		if _, taken := f.Parent.lookupEntry(name); taken {
			name = fmt.Sprintf("%s~%d", name, ino)
			rep.RenamedFiles++
		}
		f.Name = name
		f.Parent.putEntry(name, f)
	}
	for _, ino := range inos {
		f := fs.files[ino]
		p := -1
		if f.Parent != nil {
			p = f.Parent.Ino
		}
		if ol := old[ino]; ol.parent != p || ol.name != f.Name {
			rep.RelinkedFiles++
		}
	}
}

// repairFile canonicalizes one file's shape and claims its fragments in
// the global claimed set. Conflicting, missing, or out-of-range extents
// truncate the file at the offending logical block.
func (fs *FileSystem) repairFile(f *File, claimed *bitset.Set, rep *RepairReport) {
	bs := int64(fs.P.BlockSize)
	fpb := fs.fpb
	shapeChanged := false

	if f.Size < 0 {
		f.Size = 0
		shapeChanged = true
	}
	wantBlocks := 0
	if f.Size > 0 {
		wantBlocks = int((f.Size + bs - 1) / bs)
	}
	if len(f.Blocks) > wantBlocks {
		// Blocks beyond the recorded size: drop the pointers; the map
		// rebuild frees the fragments.
		f.Blocks = f.Blocks[:wantBlocks]
		shapeChanged = true
	}
	if len(f.Blocks) < wantBlocks {
		// Torn write: the size outran the blocks that reached disk.
		if len(f.Blocks) == 0 {
			f.Size, f.TailFrags = 0, 0
		} else {
			if f.TailFrags < 1 || f.TailFrags > fpb {
				f.TailFrags = fpb
			}
			f.Size = int64(f.BlocksOnDisk(fpb)) * int64(fs.P.FragSize)
		}
		shapeChanged = true
	}
	// Canonical fragment tail for the (current) last block.
	if len(f.Blocks) == 0 {
		if f.TailFrags != 0 {
			f.TailFrags = 0
			shapeChanged = true
		}
	} else {
		lastIdx := len(f.Blocks) - 1
		wantTail := fpb
		if lastIdx < NDirect {
			wantTail = fs.fragsForBytes(f.Size - int64(lastIdx)*bs)
		}
		if f.TailFrags != wantTail {
			f.TailFrags = wantTail
			shapeChanged = true
		}
	}

	// Index the recorded indirect blocks; duplicates and bad levels drop.
	type indKey struct{ lbn, level int }
	indAt := make(map[indKey]Daddr, len(f.Indirects))
	for _, ind := range f.Indirects {
		k := indKey{ind.BeforeLbn, ind.Level}
		if _, dup := indAt[k]; !dup && (ind.Level == 1 || ind.Level == 2) {
			indAt[k] = ind.Addr
		} else {
			shapeChanged = true
		}
	}

	claim := func(d Daddr, n int) bool {
		lo := int(d)
		if lo < 0 || n <= 0 || lo+n > claimed.Len() {
			return false
		}
		if claimed.CountRange(lo, lo+n) != 0 {
			return false
		}
		claimed.SetRange(lo, lo+n)
		return true
	}

	// Walk logical blocks in order, claiming each boundary's indirect
	// blocks and then the data block; truncate at the first failure.
	ppi := fs.ptrsPerIndirect()
	var newInd []Indirect
	truncAt := -1
	for lbn := 0; lbn < len(f.Blocks); lbn++ {
		var stepClaims []Indirect // this lbn's indirects, for rollback
		ok := true
		if lbn >= NDirect && (lbn-NDirect)%ppi == 0 {
			if lbn == NDirect+ppi {
				addr, have := indAt[indKey{lbn, 2}]
				if have && claim(addr, fpb) {
					stepClaims = append(stepClaims, Indirect{BeforeLbn: lbn, Addr: addr, Level: 2})
				} else {
					ok = false
				}
			}
			if ok {
				addr, have := indAt[indKey{lbn, 1}]
				if have && claim(addr, fpb) {
					stepClaims = append(stepClaims, Indirect{BeforeLbn: lbn, Addr: addr, Level: 1})
				} else {
					ok = false
				}
			}
		}
		if ok {
			n := fpb
			if lbn == len(f.Blocks)-1 {
				n = f.TailFrags
			}
			ok = claim(f.Blocks[lbn], n)
		}
		if !ok {
			for _, ind := range stepClaims {
				claimed.ClearRange(int(ind.Addr), int(ind.Addr)+fpb)
			}
			truncAt = lbn
			break
		}
		newInd = append(newInd, stepClaims...)
	}
	if truncAt >= 0 {
		f.Blocks = f.Blocks[:truncAt]
		if truncAt == 0 {
			f.Size, f.TailFrags = 0, 0
		} else {
			// Interior blocks are full; the claims above already cover
			// them at fpb fragments each, matching this shape.
			f.TailFrags = fpb
			f.Size = int64(truncAt) * bs
		}
		rep.TruncatedFiles++
	}
	if len(newInd) != len(f.Indirects) {
		shapeChanged = true
	}
	f.Indirects = newInd
	if len(f.Blocks) > 0 {
		if cg := fs.cgIndexOf(f.Blocks[len(f.Blocks)-1]); f.sectionCg != cg && truncAt >= 0 {
			f.sectionCg = cg
		}
	}
	if f.sectionCg < 0 || f.sectionCg >= len(fs.cgs) {
		f.sectionCg = fs.InoToCg(f.Ino)
		shapeChanged = true
	}
	if shapeChanged {
		rep.ShapeFixes++
	}
}

// rebuildGroups makes every group's maps and summaries agree with the
// claimed set, counting leaked and phantom fragments along the way.
func (fs *FileSystem) rebuildGroups(claimed *bitset.Set, rep *RepairReport) {
	for _, c := range fs.cgs {
		newFree := bitset.New(c.nfrags)
		for i := 0; i < c.nfrags; i++ {
			abs := int(c.startFrag) + i
			inUse := claimed.Test(abs)
			wasFree := c.free.Test(i)
			if !inUse {
				newFree.Set(i)
				if !wasFree {
					rep.LeakedFrags++
				}
			} else if wasFree {
				rep.PhantomFrags++
			}
		}
		changed := !newFree.Equal(c.free)
		c.free = newFree

		blk := bitset.New(c.nblk)
		nffree, nbfree := 0, 0
		frsum := make([]int, fs.fpb)
		for b := 0; b < c.nblk; b++ {
			p := c.pattern(b)
			if p.full {
				nbfree++
				blk.Set(b)
				continue
			}
			nffree += p.nf
			for k := 1; k < fs.fpb; k++ {
				frsum[k] += p.runs[k]
			}
		}
		sum := make([]int, fs.P.MaxContig+1)
		run := 0
		for b := 0; b <= c.nblk; b++ {
			if b < c.nblk && blk.Test(b) {
				run++
				continue
			}
			if run > 0 {
				capped := run
				if capped > fs.P.MaxContig {
					capped = fs.P.MaxContig
				}
				sum[capped]++
				run = 0
			}
		}
		if !changed {
			changed = nffree != c.nffree || nbfree != c.nbfree ||
				!blk.Equal(c.blkfree) || !slices.Equal(frsum, c.frsum) ||
				!slices.Equal(sum, c.clusterSum)
		}
		c.blkfree, c.nffree, c.nbfree, c.frsum, c.clusterSum = blk, nffree, nbfree, frsum, sum
		if c.rotor < 0 || c.rotor >= c.nfrags {
			c.rotor = c.DataStart()
			changed = true
		}
		if changed {
			rep.GroupsRebuilt++
		}
	}
	// The wholesale rebuild bypassed applyPatternDelta; refresh the
	// file-system-wide cached free counts from the new group counters.
	fs.recountFree()
}

// rebuildInodes makes every group's inode bitmap, nifree, and ndir agree
// with the file table.
func (fs *FileSystem) rebuildInodes(rep *RepairReport) {
	maps := make([]*bitset.Set, len(fs.cgs))
	ndir := make([]int, len(fs.cgs))
	for i := range maps {
		maps[i] = bitset.New(fs.ipg)
		maps[i].SetRange(0, fs.ipg)
	}
	for ino, f := range fs.files {
		cg := fs.InoToCg(ino)
		maps[cg].Clear(ino % fs.ipg)
		if f.IsDir {
			ndir[cg]++
		}
	}
	for _, c := range fs.cgs {
		nifree := maps[c.Index].Count()
		if !maps[c.Index].Equal(c.inodes) || nifree != c.nifree || ndir[c.Index] != c.ndir {
			rep.InodeMapFixes++
		}
		c.inodes = maps[c.Index]
		c.nifree = nifree
		c.ndir = ndir[c.Index]
	}
}

// rebuildLayout recomputes the incremental layout-score caches.
func (fs *FileSystem) rebuildLayout(rep *RepairReport) {
	var opt, total int64
	for _, f := range fs.files {
		if f.IsDir {
			if f.scoreOpt != 0 || f.scoreTotal != 0 {
				f.scoreOpt, f.scoreTotal = 0, 0
				rep.LayoutFixed = true
			}
			continue
		}
		o, t := fileLayoutCounts(f, fs.fpb)
		if o != f.scoreOpt || t != f.scoreTotal {
			f.scoreOpt, f.scoreTotal = o, t
			rep.LayoutFixed = true
		}
		opt += int64(o)
		total += int64(t)
	}
	if opt != fs.layoutOpt || total != fs.layoutTotal {
		fs.layoutOpt, fs.layoutTotal = opt, total
		rep.LayoutFixed = true
	}
}
