package ffs

import (
	"fmt"

	"ffsage/internal/bitset"
)

// Check verifies the file system's internal consistency, recomputing
// every summary from first principles — an in-memory fsck. It returns
// the first inconsistency found, or nil. Tests run it after every
// scenario; the aging replayer runs it at checkpoints.
//
// Verified invariants:
//
//  1. per-group counters (nffree, nbfree, frsum, cluster summary, block
//     map) match a recomputation from the fragment bitmap;
//  2. the union of all file extents, indirect blocks, and metadata
//     areas exactly equals the allocated fragments (no leaks, no double
//     allocation);
//  3. every file's shape is legal: size vs. block count, tail fragment
//     rules, indirect blocks present exactly where required;
//  4. inode maps agree with the live file table;
//  5. directory tree linkage is coherent.
func (fs *FileSystem) Check() error {
	if err := fs.checkGroups(); err != nil {
		return err
	}
	if err := fs.checkExtents(); err != nil {
		return err
	}
	if err := fs.checkFiles(); err != nil {
		return err
	}
	if err := fs.checkLayoutCounts(); err != nil {
		return err
	}
	return fs.checkInodesAndDirs()
}

// checkLayoutCounts verifies the incremental layout-score counters —
// both the per-file caches and the file-system totals — against a full
// rescan of every plain file's block map.
func (fs *FileSystem) checkLayoutCounts() error {
	var opt, total int64
	for ino, f := range fs.files {
		if f.IsDir {
			if f.scoreOpt != 0 || f.scoreTotal != 0 {
				return fmt.Errorf("dir ino %d carries layout cache %d/%d", ino, f.scoreOpt, f.scoreTotal)
			}
			continue
		}
		o, t := fileLayoutCounts(f, fs.fpb)
		if o != f.scoreOpt || t != f.scoreTotal {
			return fmt.Errorf("ino %d: layout cache %d/%d, rescan %d/%d",
				ino, f.scoreOpt, f.scoreTotal, o, t)
		}
		opt += int64(o)
		total += int64(t)
	}
	if opt != fs.layoutOpt || total != fs.layoutTotal {
		return fmt.Errorf("layout counters %d/%d, rescan %d/%d",
			fs.layoutOpt, fs.layoutTotal, opt, total)
	}
	return nil
}

func (fs *FileSystem) checkGroups() error {
	for _, c := range fs.cgs {
		nffree, nbfree := 0, 0
		frsum := make([]int, fs.fpb)
		blk := bitset.New(c.nblk)
		for b := 0; b < c.nblk; b++ {
			p := c.pattern(b)
			if p.full {
				nbfree++
				blk.Set(b)
				continue
			}
			nffree += p.nf
			for k := 1; k < fs.fpb; k++ {
				frsum[k] += p.runs[k]
			}
		}
		if nffree != c.nffree || nbfree != c.nbfree {
			return fmt.Errorf("cg %d: counters nffree=%d/%d nbfree=%d/%d (recomputed/stored)",
				c.Index, nffree, c.nffree, nbfree, c.nbfree)
		}
		for k := 1; k < fs.fpb; k++ {
			if frsum[k] != c.frsum[k] {
				return fmt.Errorf("cg %d: frsum[%d]=%d, stored %d", c.Index, k, frsum[k], c.frsum[k])
			}
		}
		if !blk.Equal(c.blkfree) {
			return fmt.Errorf("cg %d: block free map disagrees with fragment map", c.Index)
		}
		// Cluster summary: recompute maximal free-block runs, capped.
		sum := make([]int, fs.P.MaxContig+1)
		run := 0
		for b := 0; b <= c.nblk; b++ {
			if b < c.nblk && blk.Test(b) {
				run++
				continue
			}
			if run > 0 {
				capped := run
				if capped > fs.P.MaxContig {
					capped = fs.P.MaxContig
				}
				sum[capped]++
				run = 0
			}
		}
		for k := 1; k <= fs.P.MaxContig; k++ {
			if sum[k] != c.clusterSum[k] {
				return fmt.Errorf("cg %d: clusterSum[%d]=%d, stored %d", c.Index, k, sum[k], c.clusterSum[k])
			}
		}
	}
	// The per-group counters are sound; the cached file-system-wide
	// totals must agree with their sum.
	var sumFrags, sumBlks int64
	for _, c := range fs.cgs {
		sumFrags += int64(c.FreeFrags())
		sumBlks += int64(c.nbfree)
	}
	if sumFrags != fs.freeFrags || sumBlks != fs.freeBlks {
		return fmt.Errorf("cached free counts frags=%d blks=%d, groups sum to %d/%d",
			fs.freeFrags, fs.freeBlks, sumFrags, sumBlks)
	}
	return nil
}

func (fs *FileSystem) checkExtents() error {
	want := bitset.New(int(fs.P.TotalFrags()))
	claim := func(d Daddr, n int, what string) error {
		lo := int(d)
		if lo < 0 || lo+n > want.Len() {
			return fmt.Errorf("%s: extent [%d,%d) out of range", what, lo, lo+n)
		}
		for i := lo; i < lo+n; i++ {
			if want.Test(i) {
				return fmt.Errorf("%s: fragment %d doubly allocated", what, i)
			}
			want.Set(i)
		}
		return nil
	}
	for _, c := range fs.cgs {
		if c.metaFrags > 0 {
			if err := claim(c.startFrag, c.metaFrags, fmt.Sprintf("cg %d metadata", c.Index)); err != nil {
				return err
			}
		}
	}
	for ino, f := range fs.files {
		for i, addr := range f.Blocks {
			n := fs.fpb
			if i == len(f.Blocks)-1 {
				n = f.TailFrags
			}
			if err := claim(addr, n, fmt.Sprintf("ino %d block %d", ino, i)); err != nil {
				return err
			}
		}
		for _, ind := range f.Indirects {
			if err := claim(ind.Addr, fs.fpb, fmt.Sprintf("ino %d indirect@%d", ino, ind.BeforeLbn)); err != nil {
				return err
			}
		}
	}
	for _, c := range fs.cgs {
		for i := 0; i < c.nfrags; i++ {
			abs := int(c.startFrag) + i
			allocated := !c.free.Test(i)
			if allocated != want.Test(abs) {
				return fmt.Errorf("cg %d frag %d: map says allocated=%v, files say %v",
					c.Index, i, allocated, want.Test(abs))
			}
		}
	}
	return nil
}

func (fs *FileSystem) checkFiles() error {
	bs := int64(fs.P.BlockSize)
	for ino, f := range fs.files {
		if f.Ino != ino {
			return fmt.Errorf("ino %d: table key disagrees with File.Ino %d", ino, f.Ino)
		}
		wantBlocks := 0
		if f.Size > 0 {
			wantBlocks = int((f.Size + bs - 1) / bs)
		}
		if len(f.Blocks) != wantBlocks {
			return fmt.Errorf("ino %d: %d blocks for size %d (want %d)", ino, len(f.Blocks), f.Size, wantBlocks)
		}
		if wantBlocks > 0 {
			lastIdx := wantBlocks - 1
			wantTail := fs.fpb
			if lastIdx < NDirect {
				wantTail = fs.fragsForBytes(f.Size - int64(lastIdx)*bs)
			}
			if f.TailFrags != wantTail {
				return fmt.Errorf("ino %d: tail %d frags for size %d (want %d)", ino, f.TailFrags, f.Size, wantTail)
			}
		} else if f.TailFrags != 0 {
			return fmt.Errorf("ino %d: empty file with tail %d", ino, f.TailFrags)
		}
		// Indirect blocks exactly at their boundaries.
		ppi := fs.ptrsPerIndirect()
		wantInd := map[int][2]int{} // BeforeLbn → {level1, level2} counts
		for lbn := NDirect; lbn < wantBlocks; lbn += ppi {
			w := wantInd[lbn]
			w[0]++
			if lbn == NDirect+ppi {
				w[1]++
			}
			wantInd[lbn] = w
		}
		got := map[int][2]int{}
		for _, ind := range f.Indirects {
			g := got[ind.BeforeLbn]
			switch ind.Level {
			case 1:
				g[0]++
			case 2:
				g[1]++
			default:
				return fmt.Errorf("ino %d: indirect level %d", ino, ind.Level)
			}
			got[ind.BeforeLbn] = g
		}
		for lbn, w := range wantInd {
			if got[lbn] != w {
				return fmt.Errorf("ino %d: indirects at lbn %d = %v, want %v", ino, lbn, got[lbn], w)
			}
		}
		for lbn := range got {
			if _, ok := wantInd[lbn]; !ok {
				return fmt.Errorf("ino %d: orphan indirect at lbn %d", ino, lbn)
			}
		}
	}
	return nil
}

func (fs *FileSystem) checkInodesAndDirs() error {
	for ino, f := range fs.files {
		cg := fs.cgs[fs.InoToCg(ino)]
		if cg.inodes.Test(ino % fs.ipg) {
			return fmt.Errorf("ino %d live but marked free", ino)
		}
		if f.Parent == nil {
			if f != fs.root {
				return fmt.Errorf("ino %d (%s) has no parent and is not root", ino, f.Name)
			}
			continue
		}
		if got, ok := f.Parent.lookupEntry(f.Name); !ok || got != f {
			return fmt.Errorf("ino %d (%s): parent entry missing or wrong", ino, f.Path())
		}
	}
	ndir := make([]int, len(fs.cgs))
	nAlloc := make([]int, len(fs.cgs))
	for ino, f := range fs.files {
		if f.IsDir {
			ndir[fs.InoToCg(ino)]++
		}
		nAlloc[fs.InoToCg(ino)]++
		for i, e := range f.entries {
			if e.file.Parent != f || e.file.Name != e.name {
				return fmt.Errorf("dir %s: entry %q badly linked", f.Path(), e.name)
			}
			if i > 0 && f.entries[i-1].name >= e.name {
				return fmt.Errorf("dir %s: entry table out of order at %q", f.Path(), e.name)
			}
		}
	}
	for _, c := range fs.cgs {
		if c.ndir != ndir[c.Index] {
			return fmt.Errorf("cg %d: ndir=%d, counted %d", c.Index, c.ndir, ndir[c.Index])
		}
		if free := c.inodes.Count(); free != c.nifree {
			return fmt.Errorf("cg %d: nifree=%d, bitmap %d", c.Index, c.nifree, free)
		}
		if fs.ipg-c.inodes.Count() != nAlloc[c.Index] {
			return fmt.Errorf("cg %d: %d inodes marked used, %d live files",
				c.Index, fs.ipg-c.inodes.Count(), nAlloc[c.Index])
		}
	}
	return nil
}
