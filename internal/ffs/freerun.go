package ffs

import "fmt"

// Free-run search disciplines exposed to allocation policies. The
// realloc mechanism (allocCluster) hard-wires the chain-aware scan of
// findClusterBestFit; the policy lab's contenders want to choose the
// placement themselves, so the scan variants are exported here on the
// cylinder group, operating on the same block-level free map and
// cluster summaries. Every search is a deterministic forward walk —
// no randomness, no iteration-order dependence — so policies built on
// them inherit the repo's byte-identical replay guarantee.

// RunFit selects the free-run search discipline of FindFreeRun.
type RunFit int

const (
	// FirstFit takes the first free run of at least n blocks — the
	// discipline of the A4 ablation's FirstFitClusters knob.
	FirstFit RunFit = iota
	// BestFit takes the tightest free run of at least n blocks (the
	// full-scan variant of the first-fit search: every run is visited,
	// the one whose length is closest to n wins, earliest on ties).
	BestFit
	// LargestFit takes the longest free run of at least n blocks
	// (earliest on ties) — the reservation discipline of the extent
	// policy, which wants maximal headroom after the run it places.
	LargestFit
)

// NBlocks returns the number of whole blocks in the group.
func (c *CylGroup) NBlocks() int { return c.nblk }

// FindFreeRun returns the group-relative block index of a free run of
// at least n blocks chosen by the given discipline, or -1 when the
// group has none. n must be in (0, maxcontig]; the cluster summary
// answers the existence question in O(1) before any scan runs.
func (c *CylGroup) FindFreeRun(n int, fit RunFit) int {
	if n <= 0 || n > c.fs.P.MaxContig {
		//lint:ignore ffsvet/nopanic precondition panic: rejects a caller bug (API misuse), never reachable from replayed disk state
		panic(fmt.Sprintf("ffs: FindFreeRun n=%d maxcontig %d", n, c.fs.P.MaxContig))
	}
	if !c.HasCluster(n) {
		return -1
	}
	if fit == FirstFit {
		return c.blkfree.FindRun(0, c.nblk, n)
	}
	best, bestLen := -1, 0
	b := 0
	for {
		start := c.blkfree.NextSet(b)
		if start < 0 {
			break
		}
		length := 0
		end := start
		for end < c.nblk && c.blkfree.Test(end) {
			length++
			end++
		}
		b = end
		if length < n {
			continue
		}
		switch fit {
		case BestFit:
			if best < 0 || length < bestLen {
				best, bestLen = start, length
				if length == n {
					return best // cannot fit tighter
				}
			}
		case LargestFit:
			if length > bestLen {
				best, bestLen = start, length
			}
		}
	}
	if best < 0 {
		throwCorrupt("FindFreeRun", c.Index, "HasCluster(%d) but scan found nothing", n)
	}
	return best
}

// FreeRunLenAt returns the length of the free block run starting at
// group-relative block b, capped at max (0 when b is allocated or out
// of range). The extent policy uses it to measure the headroom left
// after a placed run.
func (c *CylGroup) FreeRunLenAt(b, max int) int {
	n := 0
	for b >= 0 && b < c.nblk && n < max && c.blkfree.Test(b) {
		n++
		b++
	}
	return n
}

// CgIndexOfAddr returns the index of the cylinder group containing the
// fragment address d (the exported form of the allocator's internal
// arithmetic lookup).
func (fs *FileSystem) CgIndexOfAddr(d Daddr) int { return fs.cgIndexOf(d) }

// BlockAddr converts group cg's group-relative block index b to the
// absolute fragment address policies hand to TryReallocRun as an exact
// placement preference.
func (fs *FileSystem) BlockAddr(cg, b int) Daddr {
	return fs.cgs[cg].absFrag(b * fs.fpb)
}

// FreeRunAfter returns the number of free blocks immediately following
// the block containing d, capped at max and stopping at the group
// boundary. A policy that just placed a run ending in d uses it to ask
// whether the next cluster can chain in place.
func (fs *FileSystem) FreeRunAfter(d Daddr, max int) int {
	c := fs.cgs[fs.cgIndexOf(d)]
	return c.FreeRunLenAt(c.relFrag(d)/fs.fpb+1, max)
}
