package ffs

import "errors"

// Daddr is a disk address in fragment units, absolute within the file
// system (0 ≤ Daddr < TotalFrags). NilDaddr marks an unallocated slot.
type Daddr int64

// NilDaddr is the "no address" sentinel.
const NilDaddr Daddr = -1

// NDirect is the number of direct block pointers in an FFS inode; the
// thirteenth block of a file is reached through an indirect block, which
// FFS places in a different cylinder group — the source of the paper's
// 96→104 KB performance cliff.
const NDirect = 12

// ErrNoSpace is returned when an allocation cannot be satisfied
// anywhere on the file system (the free reserve is honoured).
var ErrNoSpace = errors.New("ffs: file system full")

// ErrNoInodes is returned when no inode is free.
var ErrNoInodes = errors.New("ffs: out of inodes")

// ErrExists and ErrNotFound report name-space errors from the
// directory layer.
var (
	ErrExists   = errors.New("ffs: file exists")
	ErrNotFound = errors.New("ffs: no such file")
)
