package ffs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// smallParams returns a compact file system for unit tests: 16 MB, 4
// groups, paper-like block/frag geometry.
func smallParams() Params {
	p := PaperParams()
	p.SizeBytes = 16 << 20
	p.NumCg = 4
	return p
}

type nopPolicy struct{}

func (nopPolicy) Name() string                              { return "nop" }
func (nopPolicy) FlushCluster(*FileSystem, *File, int, int) {}

func newSmallFs(t *testing.T) *FileSystem {
	t.Helper()
	fs, err := NewFileSystem(smallParams(), nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestNewFsInvariants(t *testing.T) {
	fs := newSmallFs(t)
	if err := fs.Check(); err != nil {
		t.Fatalf("fresh fs: %v", err)
	}
	if fs.NumCg() != 4 {
		t.Errorf("NumCg = %d", fs.NumCg())
	}
	if fs.Root() == nil || !fs.Root().IsDir {
		t.Fatal("no root directory")
	}
	// Root and the per-group metadata are the only consumers.
	if u := fs.Utilization(); u > 0.10 {
		t.Errorf("fresh utilization = %v, want small", u)
	}
}

func TestPaperParamsShape(t *testing.T) {
	p := PaperParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.FragsPerBlock() != 8 {
		t.Errorf("fpb = %d", p.FragsPerBlock())
	}
	if p.ClusterBytes() != 56<<10 {
		t.Errorf("cluster = %d, want 56KB", p.ClusterBytes())
	}
	if p.TotalFrags() != 502*1024 {
		t.Errorf("total frags = %d", p.TotalFrags())
	}
	fs, err := NewFileSystem(p, nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.SizeBytes = 0 },
		func(p *Params) { p.BlockSize = 0 },
		func(p *Params) { p.FragSize = 3000 },
		func(p *Params) { p.FragSize = p.BlockSize / 16 },
		func(p *Params) { p.NumCg = 0 },
		func(p *Params) { p.MaxContig = 0 },
		func(p *Params) { p.MaxBpg = 0 },
		func(p *Params) { p.MinFreePct = 100 },
		func(p *Params) { p.BytesPerInode = 16 },
		func(p *Params) { p.NumCg = 100000 },
	}
	for i, mutate := range bad {
		p := PaperParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad params validated", i)
		}
	}
}

func TestCgClusterAccounting(t *testing.T) {
	fs := newSmallFs(t)
	c := fs.Cg(1) // untouched by root
	start := c.DataStart() / fs.fpb

	if !c.HasCluster(fs.P.MaxContig) {
		t.Fatal("fresh group has no maxcontig cluster")
	}
	// Allocate a block in the middle of the free expanse and watch the
	// summary split.
	mid := start + 20
	c.allocBlockAt(mid)
	if err := fs.checkGroups(); err != nil {
		t.Fatalf("after single block alloc: %v", err)
	}
	c.freeFrags(mid*fs.fpb, fs.fpb)
	if err := fs.checkGroups(); err != nil {
		t.Fatalf("after free: %v", err)
	}
}

func TestAllocBlockNearPrefersExact(t *testing.T) {
	fs := newSmallFs(t)
	c := fs.Cg(2)
	want := c.DataStart()/fs.fpb + 5
	got := c.allocBlockNear(want * fs.fpb)
	if got != want {
		t.Errorf("allocBlockNear = block %d, want %d", got, want)
	}
	// Same preference again: taken, should give the next one forward.
	got2 := c.allocBlockNear(want * fs.fpb)
	if got2 != want+1 {
		t.Errorf("second allocBlockNear = %d, want %d", got2, want+1)
	}
}

func TestAllocBlockNearWraps(t *testing.T) {
	fs := newSmallFs(t)
	c := fs.Cg(2)
	// Prefer the very last block; take it, then the next request with
	// the same preference must wrap to the front data area.
	last := c.nblk - 1
	if got := c.allocBlockNear(last * fs.fpb); got != last {
		t.Fatalf("got block %d, want %d", got, last)
	}
	got := c.allocBlockNear(last * fs.fpb)
	if got != c.DataStart()/fs.fpb {
		t.Errorf("wrap allocation = %d, want first data block %d", got, c.DataStart()/fs.fpb)
	}
}

func TestAllocFragsBestFit(t *testing.T) {
	fs := newSmallFs(t)
	c := fs.Cg(3)
	// Split a block by taking 5 frags: leaves a free run of 3.
	idx := c.allocFrags(5, -1)
	if idx < 0 {
		t.Fatal("allocFrags failed on empty group")
	}
	if c.frsum[3] != 1 {
		t.Fatalf("frsum[3] = %d after 5-frag alloc, want 1", c.frsum[3])
	}
	// A 2-frag request must carve the existing 3-run (best fit), not
	// split another block.
	nb := c.nbfree
	idx2 := c.allocFrags(2, -1)
	if c.nbfree != nb {
		t.Error("2-frag alloc split a new block despite a free 3-run")
	}
	if idx2/fs.fpb != idx/fs.fpb {
		t.Errorf("2-frag alloc went to block %d, want %d", idx2/fs.fpb, idx/fs.fpb)
	}
	if c.frsum[3] != 0 || c.frsum[1] != 1 {
		t.Errorf("frsum after carve: [1]=%d [3]=%d, want 1,0", c.frsum[1], c.frsum[3])
	}
	if err := fs.checkGroups(); err != nil {
		t.Fatal(err)
	}
}

func TestExtendFrags(t *testing.T) {
	fs := newSmallFs(t)
	c := fs.Cg(1)
	idx := c.allocFrags(2, -1)
	if !c.extendFrags(idx, 2, 5) {
		t.Fatal("extend 2→5 failed with free neighbours")
	}
	// Occupy the next fragment; further extension must fail.
	blocked := c.allocFrags(1, idx+5)
	if blocked != idx+5 {
		t.Fatalf("blocker landed at %d, want %d", blocked, idx+5)
	}
	if c.extendFrags(idx, 5, 6) {
		t.Error("extend into allocated fragment succeeded")
	}
	if err := fs.checkGroups(); err != nil {
		t.Fatal(err)
	}
}

func TestExtendFragsRejectsCrossBlock(t *testing.T) {
	fs := newSmallFs(t)
	c := fs.Cg(1)
	idx := c.allocFrags(2, -1)
	// Place the run at the end of its block? Instead simulate by
	// computing a fragIdx near a boundary: take last 2 frags of a
	// block directly.
	b := c.DataStart()/fs.fpb + 3
	base := b*fs.fpb + fs.fpb - 2
	c.mutateFrags(base, base+2, true)
	if c.extendFrags(base, 2, 4) {
		t.Error("extension across block boundary succeeded")
	}
	_ = idx
}

func TestAllocCluster(t *testing.T) {
	fs := newSmallFs(t)
	c := fs.Cg(2)
	start := c.DataStart() / fs.fpb
	// Exact preference honoured.
	b := c.allocCluster(start+10, 7)
	if b != start+10 {
		t.Errorf("cluster at %d, want %d", b, start+10)
	}
	// Preference occupied: first fit from the front.
	b2 := c.allocCluster(start+10, 3)
	if b2 != start {
		t.Errorf("fallback cluster at %d, want first fit %d", b2, start)
	}
	if err := fs.checkGroups(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocClusterExhaustion(t *testing.T) {
	fs := newSmallFs(t)
	c := fs.Cg(1)
	// Chop the whole group into runs of ≤2 by allocating every third
	// block.
	for b := c.DataStart() / fs.fpb; b < c.nblk; b += 3 {
		c.allocBlockAt(b)
	}
	if c.HasCluster(3) {
		t.Fatal("HasCluster(3) true after chopping")
	}
	if got := c.allocCluster(-1, 3); got != -1 {
		t.Errorf("allocCluster(3) = %d, want -1", got)
	}
	if got := c.allocCluster(-1, 2); got < 0 {
		t.Error("allocCluster(2) failed with 2-runs available")
	}
	if err := fs.checkGroups(); err != nil {
		t.Fatal(err)
	}
}

func TestInodeAllocFree(t *testing.T) {
	fs := newSmallFs(t)
	c := fs.Cg(3)
	before := c.NIFree()
	i := c.allocInode()
	if i < 0 || c.NIFree() != before-1 {
		t.Fatalf("allocInode = %d, nifree %d", i, c.NIFree())
	}
	c.freeInode(i)
	if c.NIFree() != before {
		t.Errorf("nifree = %d after free, want %d", c.NIFree(), before)
	}
	defer func() {
		if recover() == nil {
			t.Error("double inode free did not panic")
		}
	}()
	c.freeInode(i)
}

func TestMutateFragsPanicsOnDoubleAlloc(t *testing.T) {
	fs := newSmallFs(t)
	c := fs.Cg(1)
	idx := c.allocFrags(3, -1)
	defer func() {
		if recover() == nil {
			t.Error("double allocation did not panic")
		}
	}()
	c.mutateFrags(idx, idx+1, true)
}

func TestHashallocOrder(t *testing.T) {
	fs := newSmallFs(t)
	// Only accept group 3; preference 0 must still find it.
	got := fs.hashalloc(0, func(c *CylGroup) bool { return c.Index == 3 })
	if got != 3 {
		t.Errorf("hashalloc = %d, want 3", got)
	}
	// Nothing acceptable → -1.
	if got := fs.hashalloc(2, func(*CylGroup) bool { return false }); got != -1 {
		t.Errorf("hashalloc = %d, want -1", got)
	}
	// Preference honoured first.
	if got := fs.hashalloc(2, func(*CylGroup) bool { return true }); got != 2 {
		t.Errorf("hashalloc = %d, want 2", got)
	}
}

// Property: after any random sequence of block/frag allocations and
// frees, every cylinder-group summary matches a recomputation.
func TestQuickCgAccountingConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs, err := NewFileSystem(smallParams(), nopPolicy{})
		if err != nil {
			return false
		}
		c := fs.Cg(rng.Intn(4))
		type alloc struct{ idx, n int }
		var live []alloc
		for op := 0; op < 200; op++ {
			switch {
			case len(live) > 0 && rng.Intn(3) == 0:
				k := rng.Intn(len(live))
				c.freeFrags(live[k].idx, live[k].n)
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			case rng.Intn(2) == 0:
				if b := c.allocBlockNear(rng.Intn(c.nfrags)); b >= 0 {
					live = append(live, alloc{b * fs.fpb, fs.fpb})
				}
			default:
				n := 1 + rng.Intn(fs.fpb-1)
				if idx := c.allocFrags(n, rng.Intn(c.nfrags)); idx >= 0 {
					live = append(live, alloc{idx, n})
				}
			}
		}
		return fs.checkGroups() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
