package ffs

// Clone returns a deep copy of the file system, sharing nothing with
// the original except the read-only pattern table. The benchmark
// harness clones each aged image so every benchmark run starts from
// identical state, the way the paper reran its benchmarks on freshly
// restored aged file systems. Every File in the copy is freshly
// allocated — nothing aliases the source's recycling pool, so the
// clone is safe to use from another goroutine.
func (fs *FileSystem) Clone() *FileSystem {
	c := &FileSystem{
		P:           fs.P,
		fpb:         fs.fpb,
		ipg:         fs.ipg,
		files:       make(map[int]*File, len(fs.files)),
		policy:      fs.policy,
		Stats:       fs.Stats,
		layoutOpt:   fs.layoutOpt,
		layoutTotal: fs.layoutTotal,
		patterns:    fs.patterns, // immutable after construction
		freeFrags:   fs.freeFrags,
		freeBlks:    fs.freeBlks,
		ppi:         fs.ppi,
		pooling:     fs.pooling,
	}
	c.IgnoreReserve = fs.IgnoreReserve
	for _, g := range fs.cgs {
		c.cgs = append(c.cgs, &CylGroup{
			fs:         c,
			Index:      g.Index,
			startFrag:  g.startFrag,
			nfrags:     g.nfrags,
			nblk:       g.nblk,
			metaFrags:  g.metaFrags,
			free:       g.free.Clone(),
			blkfree:    g.blkfree.Clone(),
			nffree:     g.nffree,
			nbfree:     g.nbfree,
			frsum:      append([]int(nil), g.frsum...),
			clusterSum: append([]int(nil), g.clusterSum...),
			inodes:     g.inodes.Clone(),
			nifree:     g.nifree,
			ndir:       g.ndir,
			rotor:      g.rotor,
		})
	}
	// First pass: copy files; second pass: rebuild the tree links.
	for ino, f := range fs.files {
		nf := &File{
			Ino:        f.Ino,
			Name:       f.Name,
			IsDir:      f.IsDir,
			Size:       f.Size,
			Blocks:     append([]Daddr(nil), f.Blocks...),
			TailFrags:  f.TailFrags,
			Indirects:  append([]Indirect(nil), f.Indirects...),
			CreateDay:  f.CreateDay,
			ModDay:     f.ModDay,
			sectionCg:  f.sectionCg,
			scoreOpt:   f.scoreOpt,
			scoreTotal: f.scoreTotal,
		}
		if f.IsDir && len(f.entries) > 0 {
			nf.entries = make([]dirEnt, len(f.entries))
		}
		c.files[ino] = nf
	}
	for ino, f := range fs.files {
		nf := c.files[ino]
		if f.Parent != nil {
			nf.Parent = c.files[f.Parent.Ino]
		}
		// The source table is sorted; copying positionally keeps it so.
		for i, e := range f.entries {
			nf.entries[i] = dirEnt{name: e.name, file: c.files[e.file.Ino]}
		}
	}
	c.root = c.files[fs.root.Ino]
	return c
}

// WithPolicy returns the same file system with a different allocation
// policy installed, for before/after experiments on one image.
func (fs *FileSystem) WithPolicy(p Policy) *FileSystem {
	fs.policy = p
	return fs
}
