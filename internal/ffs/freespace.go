package ffs

// FreeRunHistogram counts maximal free-block runs by length across all
// cylinder groups: hist[k] counts runs of exactly k blocks for k < 7,
// hist[7] counts runs of 7 or more. It characterizes free-space quality
// — the paper's realloc policy depends on long runs surviving — and
// feeds the free-space ablation bench.
func (fs *FileSystem) FreeRunHistogram() (hist [8]int, freeBlocks int) {
	for _, c := range fs.cgs {
		run := 0
		for b := 0; b <= c.nblk; b++ {
			if b < c.nblk && c.blkfree.Test(b) {
				run++
				freeBlocks++
				continue
			}
			if run > 0 {
				if run >= 7 {
					hist[7]++
				} else {
					hist[run]++
				}
				run = 0
			}
		}
	}
	return hist, freeBlocks
}

// CgUtilizations returns each cylinder group's allocated fraction.
// Group-level imbalance is what makes the paper's busiest groups run
// out of clusters long before the disk is full.
func (fs *FileSystem) CgUtilizations() []float64 {
	var out []float64
	for _, c := range fs.cgs {
		out = append(out, 1-float64(c.FreeFrags())/float64(c.nfrags))
	}
	return out
}
