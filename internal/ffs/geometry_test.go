package ffs

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// The simulator is parameterized over block/fragment geometry; FFS
// deployments of the era used everything from 4K/512 to 16K/2K, and a
// fragment-free configuration is legal (block == fragment). Exercise a
// churn workload plus the checker across the matrix.
func TestGeometryMatrix(t *testing.T) {
	geometries := []struct {
		block, frag int
	}{
		{8192, 1024},  // the paper's
		{4096, 512},   // fpb 8
		{4096, 1024},  // fpb 4
		{16384, 2048}, // fpb 8, big blocks
		{8192, 4096},  // fpb 2
		{4096, 4096},  // fpb 1: no fragments at all
	}
	for _, g := range geometries {
		g := g
		t.Run(fmt.Sprintf("%d_%d", g.block, g.frag), func(t *testing.T) {
			p := PaperParams()
			p.SizeBytes = 32 << 20
			p.NumCg = 4
			p.BlockSize = g.block
			p.FragSize = g.frag
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			fs, err := NewFileSystem(p, nopPolicy{})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(g.block + g.frag)))
			var live []*File
			for op := 0; op < 400; op++ {
				switch {
				case len(live) > 10 && rng.Intn(3) == 0:
					k := rng.Intn(len(live))
					if err := fs.Delete(live[k]); err != nil {
						t.Fatal(err)
					}
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
				case len(live) > 0 && rng.Intn(4) == 0:
					k := rng.Intn(len(live))
					if err := fs.Append(live[k], rng.Int63n(100<<10), op); err != nil &&
						!errors.Is(err, ErrNoSpace) {
						t.Fatal(err)
					}
				default:
					size := rng.Int63n(300 << 10)
					f, err := fs.CreateFile(fs.Root(), fmt.Sprintf("f%d", op), size, op)
					if errors.Is(err, ErrNoSpace) {
						continue
					}
					if err != nil {
						t.Fatal(err)
					}
					live = append(live, f)
				}
			}
			if err := fs.Check(); err != nil {
				t.Fatalf("geometry %d/%d: %v", g.block, g.frag, err)
			}
			// Tail rules hold for every geometry.
			fpb := fs.FragsPerBlock()
			for _, f := range live {
				if len(f.Blocks) == 0 {
					continue
				}
				if f.TailFrags < 1 || f.TailFrags > fpb {
					t.Fatalf("tail %d outside [1,%d]", f.TailFrags, fpb)
				}
			}
		})
	}
}

// Fragment-free geometry still supports the realloc policy.
func TestGeometryNoFragsWithRealloc(t *testing.T) {
	p := PaperParams()
	p.SizeBytes = 32 << 20
	p.NumCg = 4
	p.BlockSize = 8192
	p.FragSize = 8192
	p.BytesPerInode = 8192
	fs, err := NewFileSystem(p, reallocForTest{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.CreateFile(fs.Root(), "x", 100<<10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.TailFrags != 1 {
		t.Errorf("tail frags %d, want 1 (block-sized fragments)", f.TailFrags)
	}
	if err := fs.Check(); err != nil {
		t.Fatal(err)
	}
}

// reallocForTest relocates fragmented runs like core.Realloc without
// importing it (ffs cannot depend on core).
type reallocForTest struct{}

func (reallocForTest) Name() string { return "test-realloc" }
func (reallocForTest) FlushCluster(fs *FileSystem, f *File, start, end int) {
	if end-start < 2 || end-start > fs.P.MaxContig {
		return
	}
	if f.RunIsContiguous(start, end, fs.fpb) {
		return
	}
	pref, cg := fs.ReallocPref(f, start)
	fs.TryReallocRun(f, start, end, cg, pref)
}
