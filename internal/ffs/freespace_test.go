package ffs

import "testing"

func TestFreeRunHistogram(t *testing.T) {
	fs := newSmallFs(t)
	hist, free := fs.FreeRunHistogram()
	if free != int(fs.FreeBlocksTotal()) {
		t.Errorf("free blocks %d, want %d", free, fs.FreeBlocksTotal())
	}
	// A fresh file system's free space is a handful of huge runs.
	if hist[7] == 0 || hist[1] != 0 {
		t.Errorf("fresh histogram = %v", hist)
	}
	// Punch single-block holes: allocate pairs, free one of each.
	c := fs.Cg(1)
	base := c.DataStart() / fs.fpb
	for i := 0; i < 10; i++ {
		c.allocBlockAt(base + 2*i)
		c.allocBlockAt(base + 2*i + 1)
	}
	for i := 0; i < 10; i++ {
		c.freeFrags((base+2*i)*fs.fpb, fs.fpb)
	}
	hist2, _ := fs.FreeRunHistogram()
	if hist2[1] < 9 {
		t.Errorf("histogram after holes = %v, want ≥9 single runs", hist2)
	}
}

func TestCgUtilizations(t *testing.T) {
	fs := newSmallFs(t)
	u := fs.CgUtilizations()
	if len(u) != fs.NumCg() {
		t.Fatalf("%d entries", len(u))
	}
	for i, v := range u {
		if v < 0 || v > 1 {
			t.Errorf("cg %d utilization %v", i, v)
		}
	}
	// Fill one group and watch its utilization rise above the others.
	c := fs.Cg(2)
	for c.NBFree() > 0 {
		c.allocBlockNear(-1)
	}
	u2 := fs.CgUtilizations()
	if u2[2] < 0.9 {
		t.Errorf("filled group utilization %v", u2[2])
	}
	if u2[2] <= u2[1] {
		t.Errorf("filled group %v not above untouched %v", u2[2], u2[1])
	}
}
