package ffs

import (
	"bytes"
	"fmt"
	"testing"
)

func TestImageRoundTrip(t *testing.T) {
	fs := newSmallFs(t)
	d, err := fs.Mkdir(fs.Root(), "sub", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, size := range []int64{0, 3000, 9000, 96 << 10, 300 << 10} {
		if _, err := fs.CreateFile(d, fmt.Sprintf("f%d", i), size, i); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := fs.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadImage(&buf, nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Check(); err != nil {
		t.Fatal(err)
	}
	if got.FileCount() != fs.FileCount() {
		t.Errorf("files %d vs %d", got.FileCount(), fs.FileCount())
	}
	if got.FreeFrags() != fs.FreeFrags() {
		t.Errorf("free frags %d vs %d", got.FreeFrags(), fs.FreeFrags())
	}
	// Every file's layout survives bit-exactly.
	for ino, f := range fs.Files() {
		g, ok := got.Files()[ino]
		if !ok {
			t.Fatalf("ino %d missing", ino)
		}
		if g.Size != f.Size || g.TailFrags != f.TailFrags || len(g.Blocks) != len(f.Blocks) {
			t.Fatalf("ino %d shape differs", ino)
		}
		for i := range f.Blocks {
			if g.Blocks[i] != f.Blocks[i] {
				t.Fatalf("ino %d block %d: %d vs %d", ino, i, g.Blocks[i], f.Blocks[i])
			}
		}
		if g.Path() != f.Path() {
			t.Fatalf("ino %d path %q vs %q", ino, g.Path(), f.Path())
		}
	}
	// The loaded image keeps working: create and delete on it.
	nf, err := got.CreateFile(got.Root(), "after", 50<<10, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Delete(nf); err != nil {
		t.Fatal(err)
	}
	if err := got.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadImageRejectsGarbage(t *testing.T) {
	if _, err := LoadImage(bytes.NewReader([]byte("not a gob")), nopPolicy{}); err == nil {
		t.Error("garbage accepted")
	}
}
