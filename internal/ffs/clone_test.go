package ffs

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

// populate fills fs with n small files of varying shapes under a few
// directories, returning the plain files created.
func populate(t *testing.T, fs *FileSystem, n int) []*File {
	t.Helper()
	bs := int64(fs.P.BlockSize)
	var dirs []*File
	for i := 0; i < 4; i++ {
		d, err := fs.Mkdir(fs.Root(), fmt.Sprintf("d%d", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, d)
	}
	var files []*File
	for i := 0; i < n; i++ {
		size := int64(i%9+1) * bs / 2 // mix of fragment tails and multi-block files
		f, err := fs.CreateFile(dirs[i%len(dirs)], fmt.Sprintf("f%d", i), size, 0)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	return files
}

// cgEqual reports whether the structural state of group i is identical
// in both file systems: fragment bitmap, block bitmap, cluster
// summaries, fragment-size summaries, inode map and counters.
func cgEqual(a, b *FileSystem, i int) bool {
	ca, cb := a.cgs[i], b.cgs[i]
	if !ca.free.Equal(cb.free) || !ca.blkfree.Equal(cb.blkfree) || !ca.inodes.Equal(cb.inodes) {
		return false
	}
	if ca.nffree != cb.nffree || ca.nbfree != cb.nbfree || ca.nifree != cb.nifree || ca.ndir != cb.ndir {
		return false
	}
	for k := range ca.frsum {
		if ca.frsum[k] != cb.frsum[k] {
			return false
		}
	}
	for k := range ca.clusterSum {
		if ca.clusterSum[k] != cb.clusterSum[k] {
			return false
		}
	}
	return true
}

// TestCloneSharesNothing verifies the deep-copy audit: a clone starts
// structurally identical, shares no mutable state with the original
// (mutating both concurrently is race-free), and afterwards the two
// have fully diverged — bitmaps, cluster summaries and inode tables —
// while each remains internally consistent. Run under -race this is
// the concurrency-boundary guarantee the aged-image cache relies on.
func TestCloneSharesNothing(t *testing.T) {
	p := smallParams()
	orig, err := NewFileSystem(p, nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	populate(t, orig, 60)
	clone := orig.Clone()

	for i := range orig.cgs {
		if !cgEqual(orig, clone, i) {
			t.Fatalf("cg %d differs immediately after Clone", i)
		}
	}
	if o, c := orig.LayoutScore(), clone.LayoutScore(); o != c {
		t.Fatalf("clone layout score %v, original %v", c, o)
	}

	// Mutate both concurrently with divergent operations.
	bs := int64(p.BlockSize)
	mutate := func(fs *FileSystem, tag string, createN int, deleteStride int) error {
		var victims []*File
		for _, f := range fs.files {
			if !f.IsDir {
				victims = append(victims, f)
			}
		}
		// Map order would vary the victim set run to run; pick by inode.
		sort.Slice(victims, func(i, j int) bool { return victims[i].Ino < victims[j].Ino })
		for i := 0; i < len(victims); i += deleteStride {
			if err := fs.Delete(victims[i]); err != nil {
				return err
			}
		}
		for i := 0; i < createN; i++ {
			d, err := fs.Mkdir(fs.Root(), fmt.Sprintf("%s%d", tag, i), 1)
			if err != nil {
				return err
			}
			if _, err := fs.CreateFile(d, "x", int64(i%5+1)*bs, 1); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = mutate(orig, "o", 20, 2) }()
	go func() { defer wg.Done(); errs[1] = mutate(clone, "c", 7, 3) }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("mutator %d: %v", i, err)
		}
	}

	// Both remain internally consistent...
	if err := orig.Check(); err != nil {
		t.Fatalf("original inconsistent after concurrent mutation: %v", err)
	}
	if err := clone.Check(); err != nil {
		t.Fatalf("clone inconsistent after concurrent mutation: %v", err)
	}
	// ...and have structurally diverged.
	diverged := 0
	for i := range orig.cgs {
		if !cgEqual(orig, clone, i) {
			diverged++
		}
	}
	if diverged == 0 {
		t.Fatal("no cylinder group diverged after divergent mutation")
	}
	if len(orig.files) == len(clone.files) {
		t.Fatalf("file tables did not diverge (%d files each)", len(orig.files))
	}
	if o, c := orig.LayoutScore(), clone.LayoutScore(); o == c {
		t.Logf("layout scores coincide (%v); acceptable but unexpected", o)
	}
}

// TestCloneFileIndependence pins the per-file deep copy: appending to a
// cloned file must not disturb the original's block map or tree links.
func TestCloneFileIndependence(t *testing.T) {
	fs, err := NewFileSystem(smallParams(), nopPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	files := populate(t, fs, 10)
	f := files[3]
	before := append([]Daddr(nil), f.Blocks...)

	clone := fs.Clone()
	cf := clone.files[f.Ino]
	if cf == f {
		t.Fatal("clone shares *File pointers")
	}
	if cf.Parent == f.Parent {
		t.Fatal("clone shares parent directory pointers")
	}
	if err := clone.Append(cf, int64(3*clone.P.BlockSize), 2); err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != len(before) {
		t.Fatalf("original grew from %d to %d blocks", len(before), len(f.Blocks))
	}
	for i, a := range before {
		if f.Blocks[i] != a {
			t.Fatalf("original block %d moved", i)
		}
	}
	if err := fs.Check(); err != nil {
		t.Fatal(err)
	}
}
