package ffs

import "fmt"

// dirBlkSize is DIRBLKSIZ: the unit in which directories are extended.
const dirBlkSize = 512

// dirpref chooses the cylinder group for a new directory: among groups
// with at least the average number of free inodes, the one containing
// the fewest directories (ffs_dirpref). This is what spreads the aging
// replayer's per-group directories one per cylinder group.
func (fs *FileSystem) dirpref() int {
	var totIfree int64
	for _, c := range fs.cgs {
		totIfree += int64(c.nifree)
	}
	avg := totIfree / int64(len(fs.cgs))
	best, bestDirs := -1, int(^uint(0)>>1)
	for _, c := range fs.cgs {
		if int64(c.nifree) >= avg && c.ndir < bestDirs {
			best, bestDirs = c.Index, c.ndir
		}
	}
	if best < 0 {
		// Every group is below average (only possible with wildly
		// uneven inode exhaustion); fall back to most free inodes.
		most := 0
		for _, c := range fs.cgs {
			if c.nifree > fs.cgs[most].nifree {
				most = c.Index
			}
		}
		best = most
	}
	return best
}

// entryBytes returns the directory space an entry consumes: the
// 8-byte header plus the name padded to a 4-byte boundary (struct
// direct).
func entryBytes(name string) int64 {
	return int64(8 + (len(name)+4)&^3)
}

// makeDirectory allocates a directory inode in dirpref's group, charges
// the parent for the entry, and writes the initial directory block.
func (fs *FileSystem) makeDirectory(parent *File, name string, day int) (*File, error) {
	cg := 0 // root goes to group 0
	if parent != nil {
		if _, exists := parent.lookupEntry(name); exists {
			return nil, ErrExists
		}
		cg = fs.dirpref()
	}
	ino, err := fs.ialloc(cg)
	if err != nil {
		return nil, err
	}
	d := fs.newFile()
	d.Ino = ino
	d.Name = name
	d.IsDir = true
	d.CreateDay = day
	d.ModDay = day
	d.sectionCg = fs.InoToCg(ino)
	fs.files[ino] = d
	fs.cgs[fs.InoToCg(ino)].ndir++
	if parent != nil {
		if err := fs.addEntry(parent, d, day); err != nil {
			fs.cgs[fs.InoToCg(ino)].ndir--
			fs.ifree(ino)
			delete(fs.files, ino)
			return nil, err
		}
	}
	// "." and ".." occupy the first directory block.
	if err := fs.Append(d, dirBlkSize, day); err != nil {
		fs.cgs[fs.InoToCg(ino)].ndir--
		fs.removeFile(d)
		return nil, err
	}
	return d, nil
}

// Mkdir creates a subdirectory of parent. A returned *CorruptionError
// means the file system tripped over inconsistent on-disk state; see
// CorruptionError.
func (fs *FileSystem) Mkdir(parent *File, name string, day int) (d *File, err error) {
	defer recoverCorruption(&err)
	if !parent.IsDir {
		return nil, fmt.Errorf("ffs: Mkdir in non-directory %s", parent.Path())
	}
	return fs.makeDirectory(parent, name, day)
}

// Rename moves f to newDir under newName. Like the kernel's rename, it
// charges the target directory for the new entry (directories never
// shrink, so the old entry's space simply becomes slack) and refuses to
// clobber an existing name or to move a directory into itself.
func (fs *FileSystem) Rename(f *File, newDir *File, newName string, day int) (err error) {
	defer recoverCorruption(&err)
	if !newDir.IsDir {
		return fmt.Errorf("ffs: rename target %s not a directory", newDir.Path())
	}
	if f.Parent == nil {
		return fmt.Errorf("ffs: cannot rename the root")
	}
	if _, exists := newDir.lookupEntry(newName); exists {
		return ErrExists
	}
	if f.IsDir {
		for d := newDir; d != nil; d = d.Parent {
			if d == f {
				return fmt.Errorf("ffs: cannot move %s into itself", f.Path())
			}
		}
	}
	oldParent, oldName := f.Parent, f.Name
	oldParent.deleteEntry(oldName)
	f.Name = newName
	if err := fs.addEntry(newDir, f, day); err != nil {
		f.Name = oldName
		oldParent.putEntry(oldName, f)
		f.Parent = oldParent
		return err
	}
	return nil
}

// addEntry links f into dir, growing the directory when the new entry
// does not fit in the space already allocated (FFS extends directories
// in DIRBLKSIZ units and never shrinks them). On a full file system
// the growth can fail; the entry is then not added.
func (fs *FileSystem) addEntry(dir *File, f *File, day int) error {
	need := entryBytes(f.Name)
	allocated := int64(dir.BlocksOnDisk(fs.fpb)) * int64(fs.P.FragSize)
	grow := dir.Size + need - allocated
	if grow > 0 {
		// Round the extension to directory blocks.
		grow = (grow + dirBlkSize - 1) / dirBlkSize * dirBlkSize
		before := dir.Size
		if err := fs.Append(dir, grow, day); err != nil {
			// Undo whatever partial growth happened.
			if terr := fs.Truncate(dir, before, day); terr != nil {
				throwCorrupt("addEntry", -1, "rolling back directory %s: %v", dir.Path(), terr)
			}
			return fmt.Errorf("ffs: growing directory %s: %w", dir.Path(), err)
		}
		// Append advanced Size by the rounded growth; rewind to the
		// true byte count so future entries pack correctly.
		dir.Size = dir.Size - grow + need
	} else {
		dir.Size += need
		dir.ModDay = day
	}
	dir.putEntry(f.Name, f)
	f.Parent = dir
	return nil
}
