package ffs

import (
	"strings"
	"testing"
)

// Failure injection: each test corrupts one invariant on a healthy file
// system and verifies the checker reports it. A checker that cannot
// see corruption would silently vouch for broken simulations, so these
// are load-bearing tests.

// corruptibleFs builds a file system with enough structure for every
// corruption: directories, multi-block files, fragment tails, indirect
// blocks.
func corruptibleFs(t *testing.T) (*FileSystem, *File) {
	t.Helper()
	fs := newSmallFs(t)
	d, err := fs.Mkdir(fs.Root(), "d", 0)
	if err != nil {
		t.Fatal(err)
	}
	f := mustCreate(t, fs, d, "victim", 200<<10) // 25 blocks + indirect
	mustCreate(t, fs, d, "tail", 3<<10)
	if err := fs.Check(); err != nil {
		t.Fatalf("fixture unhealthy: %v", err)
	}
	return fs, f
}

func wantCheckError(t *testing.T, fs *FileSystem, fragment string) {
	t.Helper()
	err := fs.Check()
	if err == nil {
		t.Fatalf("checker missed corruption (want %q)", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("checker reported %q, want mention of %q", err, fragment)
	}
}

func TestCheckDetectsLeakedFragments(t *testing.T) {
	fs, f := corruptibleFs(t)
	// Mark an extra fragment allocated that no file owns.
	c := fs.CgOf(f.Blocks[0])
	idx := c.free.NextSet(0)
	c.free.Clear(idx) // bypass accounting entirely
	if err := fs.Check(); err == nil {
		t.Fatal("checker missed a leaked fragment")
	}
}

func TestCheckDetectsDoubleAllocation(t *testing.T) {
	fs, f := corruptibleFs(t)
	// Point two logical blocks of the file at the same disk blocks.
	old := f.Blocks[3]
	fs.freeRange(old, fs.fpb)
	f.Blocks[3] = f.Blocks[4]
	wantCheckError(t, fs, "doubly allocated")
}

func TestCheckDetectsCounterDrift(t *testing.T) {
	fs, _ := corruptibleFs(t)
	fs.Cg(1).nffree++
	wantCheckError(t, fs, "counters")
}

func TestCheckDetectsFrsumDrift(t *testing.T) {
	fs, _ := corruptibleFs(t)
	fs.Cg(0).frsum[3]++
	wantCheckError(t, fs, "frsum")
}

func TestCheckDetectsClusterSumDrift(t *testing.T) {
	fs, _ := corruptibleFs(t)
	c := fs.Cg(2)
	c.clusterSum[fs.P.MaxContig]--
	c.clusterSum[1]++
	wantCheckError(t, fs, "clusterSum")
}

func TestCheckDetectsBlockMapDrift(t *testing.T) {
	fs, _ := corruptibleFs(t)
	c := fs.Cg(2)
	// Flip a block-level bit without touching the fragment map or the
	// counters; only the map cross-check can see this.
	c.blkfree.Clear(c.blkfree.NextSet(0))
	wantCheckError(t, fs, "block free map")
}

func TestCheckDetectsSizeShapeMismatch(t *testing.T) {
	fs, f := corruptibleFs(t)
	f.Size += 9000 // size now implies one more block than mapped
	wantCheckError(t, fs, "blocks for size")
}

func TestCheckDetectsBadTail(t *testing.T) {
	fs, _ := corruptibleFs(t)
	var tail *File
	for _, f := range fs.Files() {
		if f.Name == "tail" {
			tail = f
		}
	}
	// Claim one more tail fragment than the size implies, keeping the
	// maps in sync so only the shape check can catch it.
	c := fs.CgOf(tail.Blocks[0])
	rel := c.relFrag(tail.Blocks[0])
	if !c.extendFrags(rel, tail.TailFrags, tail.TailFrags+1) {
		t.Skip("neighbouring fragment not free; fixture layout changed")
	}
	tail.TailFrags++
	wantCheckError(t, fs, "tail")
}

func TestCheckDetectsMissingIndirect(t *testing.T) {
	fs, f := corruptibleFs(t)
	fs.freeRange(f.Indirects[0].Addr, fs.fpb)
	f.Indirects = nil
	wantCheckError(t, fs, "indirect")
}

func TestCheckDetectsOrphanIndirect(t *testing.T) {
	fs, f := corruptibleFs(t)
	addr, err := fs.allocBlockMech(0, NilDaddr)
	if err != nil {
		t.Fatal(err)
	}
	f.Indirects = append(f.Indirects, Indirect{BeforeLbn: 5, Addr: addr, Level: 1})
	wantCheckError(t, fs, "indirect")
}

func TestCheckDetectsInodeBitmapDrift(t *testing.T) {
	fs, f := corruptibleFs(t)
	fs.ifree(f.Ino) // live file marked free
	wantCheckError(t, fs, "marked free")
}

func TestCheckDetectsNdirDrift(t *testing.T) {
	fs, _ := corruptibleFs(t)
	fs.Cg(0).ndir++
	wantCheckError(t, fs, "ndir")
}

func TestCheckDetectsBrokenDirLinkage(t *testing.T) {
	fs, f := corruptibleFs(t)
	f.Parent.deleteEntry(f.Name)
	wantCheckError(t, fs, "parent entry")
}

func TestCheckDetectsRenamedEntry(t *testing.T) {
	fs, f := corruptibleFs(t)
	parent := f.Parent
	parent.deleteEntry(f.Name)
	parent.putEntry("sneaky", f)
	// Caught either as a missing canonical entry or as a badly linked
	// alias, depending on which the checker reaches first.
	wantCheckError(t, fs, "entry")
}
