package plot

import (
	"bytes"
	"strings"
	"testing"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "Test <Chart> & Friends",
		XLabel: "Time (Days)",
		YLabel: "Aggregate Layout Score",
		YMin:   0,
		YMax:   1,
		Series: []Series{
			{Label: "ffs", X: []float64{1, 2, 3}, Y: []float64{0.9, 0.8, 0.7}},
			{Label: "realloc", X: []float64{1, 2, 3}, Y: []float64{0.95, 0.93, 0.9}},
		},
	}
}

func TestWriteSVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "Aggregate Layout Score",
		"Time (Days)", "ffs", "realloc",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
	// The title must be escaped.
	if strings.Contains(svg, "<Chart>") {
		t.Error("unescaped title")
	}
	if !strings.Contains(svg, "Test &lt;Chart&gt; &amp; Friends") {
		t.Error("escaped title missing")
	}
	// Two series → two polylines.
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
}

func TestWriteSVGLogX(t *testing.T) {
	c := &Chart{
		Title: "sizes", XLabel: "File Size", YLabel: "Score", LogX: true,
		Series: []Series{{Label: "s", X: []float64{16 << 10, 1 << 20, 16 << 20}, Y: []float64{1, 2, 3}}},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	// Size labels in K/M units.
	if !strings.Contains(svg, "K<") && !strings.Contains(svg, "M<") {
		t.Error("no size-unit tick labels")
	}
}

func TestWriteSVGValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Chart{Title: "empty"}).WriteSVG(&buf); err == nil {
		t.Error("empty chart accepted")
	}
	bad := &Chart{Series: []Series{{Label: "x", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := bad.WriteSVG(&buf); err == nil {
		t.Error("mismatched series accepted")
	}
	empty := &Chart{Series: []Series{{Label: "x"}}}
	if err := empty.WriteSVG(&buf); err == nil {
		t.Error("empty series accepted")
	}
}

func TestSortedByX(t *testing.T) {
	s := SortedByX(Series{Label: "z", X: []float64{3, 1, 2}, Y: []float64{30, 10, 20}})
	if s.X[0] != 1 || s.Y[0] != 10 || s.X[2] != 3 || s.Y[2] != 30 {
		t.Errorf("sorted = %+v", s)
	}
}

func TestFlatSeriesDoesNotPanic(t *testing.T) {
	c := &Chart{
		Title: "flat", Series: []Series{{Label: "f", X: []float64{5}, Y: []float64{2}}},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
}
