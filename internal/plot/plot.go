// Package plot renders simple SVG line charts — enough to draw the
// paper's six figures from reproduction data with axes, ticks, legends
// and log-scale x axes, using only the standard library.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one labelled line.
type Series struct {
	Label string
	X, Y  []float64
}

// Chart describes one figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogX draws the x axis in log₂ space (the paper's file-size axes).
	LogX bool
	// YMin/YMax fix the y range; when equal the range is computed.
	YMin, YMax float64
	Series     []Series
}

const (
	width   = 640
	height  = 420
	marginL = 62
	marginR = 16
	marginT = 34
	marginB = 48
)

// palette holds line colors chosen to stay distinguishable in print.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#8c564b", "#e377c2"}

// WriteSVG renders the chart.
func (c *Chart) WriteSVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x vs %d y", s.Label, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return fmt.Errorf("plot: series %q is empty", s.Label)
		}
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := c.YMin, c.YMax
	autoY := ymin == ymax
	if autoY {
		ymin, ymax = math.Inf(1), math.Inf(-1)
	}
	for _, s := range c.Series {
		for i := range s.X {
			x := c.xval(s.X[i])
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
			if autoY {
				if s.Y[i] < ymin {
					ymin = s.Y[i]
				}
				if s.Y[i] > ymax {
					ymax = s.Y[i]
				}
			}
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if autoY {
		pad := (ymax - ymin) * 0.08
		ymin -= pad
		ymax += pad
	}

	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	px := func(x float64) float64 { return marginL + (c.xval(x)-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(height-marginB) - (y-ymin)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14" text-anchor="middle" font-weight="bold">%s</text>`+"\n",
		width/2, esc(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)

	// Y ticks: five divisions.
	for i := 0; i <= 5; i++ {
		y := ymin + (ymax-ymin)*float64(i)/5
		yy := py(y)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>`+"\n",
			marginL, yy, width-marginR, yy)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, yy+4, trimNum(y))
	}
	// X ticks.
	for _, x := range c.xticks(xmin, xmax) {
		xx := px(x)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			xx, height-marginB, xx, height-marginB+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			xx, height-marginB+18, c.xtickLabel(x))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+int(plotW/2), height-10, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		marginT+int(plotH/2), marginT+int(plotH/2), esc(c.YLabel))

	// Lines and legend.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		var pts []string
		for j := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[j]), py(s.Y[j])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.Join(pts, " "), color)
		lx, ly := width-marginR-150, marginT+14+i*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly-4, lx+22, ly-4, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+28, ly, esc(s.Label))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func (c *Chart) xval(x float64) float64 {
	if c.LogX {
		return math.Log2(x)
	}
	return x
}

// xticks picks tick positions in data space.
func (c *Chart) xticks(xmin, xmax float64) []float64 {
	var out []float64
	if c.LogX {
		for e := math.Ceil(xmin); e <= math.Floor(xmax); e++ {
			out = append(out, math.Exp2(e))
		}
		// Thin to at most 8 labels.
		for len(out) > 8 {
			thinned := out[:0]
			for i := 0; i < len(out); i += 2 {
				thinned = append(thinned, out[i])
			}
			out = thinned
		}
		return out
	}
	span := xmax - xmin
	step := math.Pow(10, math.Floor(math.Log10(span/5)))
	for _, m := range []float64{1, 2, 5, 10} {
		if span/(step*m) <= 6 {
			step *= m
			break
		}
	}
	start := math.Ceil(xmin/step) * step
	for x := start; x <= xmax+1e-9; x += step {
		out = append(out, x)
	}
	return out
}

func (c *Chart) xtickLabel(x float64) string {
	if c.LogX {
		// File sizes: label in KB/MB.
		switch {
		case x >= 1<<20:
			return fmt.Sprintf("%gM", x/(1<<20))
		case x >= 1<<10:
			return fmt.Sprintf("%gK", x/(1<<10))
		default:
			return trimNum(x)
		}
	}
	return trimNum(x)
}

func trimNum(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SortedByX returns a copy of the series with points ordered by x, as
// polylines require.
func SortedByX(s Series) Series {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	out := Series{Label: s.Label, X: make([]float64, len(idx)), Y: make([]float64, len(idx))}
	for i, j := range idx {
		out.X[i], out.Y[i] = s.X[j], s.Y[j]
	}
	return out
}
