// Package bench implements the paper's performance benchmarks on aged
// file system images (Section 5): the sequential create/write + read
// sweep over file sizes (Figures 4 and 5), the hot-file benchmark over
// the files modified in the last simulated month (Table 2, Figure 6),
// and the raw-device reference measurements. Timing comes from the
// internal/disk model, driven by the exact block addresses the
// simulated allocator chose.
package bench

import (
	"fmt"

	"ffsage/internal/disk"
	"ffsage/internal/ffs"
)

// fileIO issues a file's disk traffic against a partition.
type fileIO struct {
	part *disk.Partition
	fs   *ffs.FileSystem
}

func (io fileIO) fragOff(d ffs.Daddr) int64 {
	return int64(d) * int64(io.fs.P.FragSize)
}

// writeCreate charges the cost of creating and writing f: the two
// synchronous metadata writes FFS performs at create time (directory
// block, inode block) followed by the data and indirect blocks in
// logical order. It returns the elapsed time in seconds.
func (io fileIO) writeCreate(f *ffs.File) float64 {
	t := 0.0
	// Synchronous metadata: the directory's first fragment, then the
	// fragment holding the inode. These dominate small-file creates
	// (Section 5.1).
	if f.Parent != nil && len(f.Parent.Blocks) > 0 {
		t += io.part.Write(io.fragOff(f.Parent.Blocks[0]), int64(io.fs.P.FragSize))
	}
	t += io.part.Write(io.fragOff(io.fs.InodeDaddr(f.Ino)), int64(io.fs.P.FragSize))
	return t + io.writeData(f)
}

// writeData writes f's data (and indirect blocks) in logical order,
// merging physically contiguous runs; the disk model splits requests at
// the controller's 64 KB limit, where sequential writes lose rotations.
func (io fileIO) writeData(f *ffs.File) float64 {
	t := 0.0
	for _, e := range f.ReadSequence(io.fs.FragsPerBlock()) {
		t += io.part.Write(io.fragOff(e.Addr), int64(e.Frags)*int64(io.fs.P.FragSize))
	}
	return t
}

// overwrite rewrites f's existing data blocks in place (the hot-file
// benchmark's write phase: no allocation, no create metadata).
func (io fileIO) overwrite(f *ffs.File) float64 {
	t := 0.0
	for _, e := range f.DataExtents(io.fs.FragsPerBlock()) {
		t += io.part.Write(io.fragOff(e.Addr), int64(e.Frags)*int64(io.fs.P.FragSize))
	}
	return t
}

// readBlockAtATime reads f the way pre-clustering file systems did: one
// request per file-system block, no request merging. Combined with a
// drive that has no track buffer, this is the régime the old rotdelay
// parameter was designed for (paper §1's [McVoy90] context, study A8).
func (io fileIO) readBlockAtATime(f *ffs.File) float64 {
	fpb := io.fs.FragsPerBlock()
	t := io.part.Read(io.fragOff(io.fs.InodeDaddr(f.Ino)), int64(io.fs.P.FragSize))
	for _, e := range f.ReadSequence(fpb) {
		for off := 0; off < e.Frags; off += fpb {
			n := fpb
			if off+n > e.Frags {
				n = e.Frags - off
			}
			t += io.part.Read(io.fragOff(e.Addr+ffs.Daddr(off)), int64(n)*int64(io.fs.P.FragSize))
		}
	}
	return t
}

// read reads f sequentially: the inode, then data with indirect blocks
// visited where the kernel needs them.
func (io fileIO) read(f *ffs.File) float64 {
	t := io.part.Read(io.fragOff(io.fs.InodeDaddr(f.Ino)), int64(io.fs.P.FragSize))
	for _, e := range f.ReadSequence(io.fs.FragsPerBlock()) {
		t += io.part.Read(io.fragOff(e.Addr), int64(e.Frags)*int64(io.fs.P.FragSize))
	}
	return t
}

// newRig builds a disk and partition sized for the file system and
// returns the I/O helper. The partition must be at least as large as
// the file system.
func newRig(fsys *ffs.FileSystem, p disk.Params) (fileIO, error) {
	d := disk.New(p)
	sectors := fsys.P.SizeBytes / int64(p.Geom.SectorSize)
	if sectors > d.Params().Geom.TotalSectors()/2 {
		return fileIO{}, fmt.Errorf("bench: file system (%d MB) too large for disk model",
			fsys.P.SizeBytes>>20)
	}
	start := d.Params().Geom.TotalSectors() / 4
	part := disk.NewPartition(d, start, sectors)
	return fileIO{part: part, fs: fsys}, nil
}

// RawThroughput measures raw-device sequential throughput over a
// partition the size of the file system (Figure 4's reference lines).
// Returns bytes/second.
func RawThroughput(fsBytes int64, p disk.Params, totalBytes int64, write bool) float64 {
	d := disk.New(p)
	sectors := fsBytes / int64(p.Geom.SectorSize)
	part := disk.NewPartition(d, d.Params().Geom.TotalSectors()/4, sectors)
	return part.RawThroughput(totalBytes, int64(p.MaxTransfer), write)
}
