package bench

import (
	"fmt"
	"sort"

	"ffsage/internal/disk"
	"ffsage/internal/ffs"
	"ffsage/internal/layout"
)

// SchedStudyRow is one (image, discipline) cell of the A10 study.
type SchedStudyRow struct {
	Image      string
	Discipline disk.Discipline
	WriteBps   float64
}

// SchedulingStudy separates what layout buys from what request
// scheduling buys: overwrite every hot file on an aged image, but
// instead of issuing writes file by file, submit them all to a driver
// queue and drain it under each discipline. The instructive outcome:
// sorting alone (the elevator) can lose to arrival order, because it
// converts long seeks — whose rotational landing phase is effectively
// random — into short hops that each wait nearly a full revolution;
// only sorting plus coalescing recovers both the seek and the rotation
// costs. That combination is precisely what the file system's
// clustering performs at allocation time, which is why the paper
// attacks layout rather than scheduling.
func SchedulingStudy(images map[string]*ffs.FileSystem, p disk.Params, fromDay int) ([]SchedStudyRow, error) {
	names := make([]string, 0, len(images))
	for name := range images {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []SchedStudyRow
	for _, name := range names {
		image := images[name]
		fsys := image.Clone()
		files := layout.HotFiles(fsys, fromDay)
		if len(files) == 0 {
			return nil, fmt.Errorf("bench: image %s has no hot files from day %d", name, fromDay)
		}
		total := layout.TotalBytes(files)
		for _, disc := range []disk.Discipline{disk.FCFS, disk.Elevator, disk.ElevatorCoalesce} {
			d := disk.New(p)
			start := d.Params().Geom.TotalSectors() / 4
			ss := int64(p.Geom.SectorSize)
			q := disk.NewQueue(d, disc)
			for _, f := range files {
				for _, e := range f.DataExtents(fsys.FragsPerBlock()) {
					lba := start + int64(e.Addr)*int64(fsys.P.FragSize)/ss
					q.Submit(lba, e.Frags*fsys.P.FragSize/int(ss), true)
				}
			}
			elapsed := q.Drain()
			out = append(out, SchedStudyRow{
				Image:      name,
				Discipline: disc,
				WriteBps:   float64(total) / elapsed,
			})
		}
	}
	return out, nil
}
