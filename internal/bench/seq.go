package bench

import (
	"context"
	"fmt"

	"ffsage/internal/disk"
	"ffsage/internal/ffs"
	"ffsage/internal/layout"
	"ffsage/internal/runner"
)

// SeqResult is one point of the sequential I/O sweep (Figure 4) plus
// the layout score of the files the benchmark created (Figure 5).
type SeqResult struct {
	FileSize    int64
	NFiles      int
	WriteBps    float64 // create+write phase throughput, bytes/second
	ReadBps     float64
	LayoutScore float64 // of the benchmark-created files
	// Disk is the point's full disk-model accounting, including the
	// per-request time-attribution matrix behind the report's time
	// attribution table.
	Disk disk.Stats
}

// maxFilesPerDir matches the paper: "the data was divided into
// subdirectories, each containing no more than twenty-five files",
// spreading the corpus across cylinder groups.
const maxFilesPerDir = 25

// ioUnit is the benchmark's write granularity: "Large files were
// created using as many four megabyte writes as necessary."
const ioUnit int64 = 4 << 20

// SequentialIO runs the paper's sequential benchmark for one file size
// on a clone of the aged image: create totalBytes/fileSize files
// (write phase), then read them back in creation order. The image is
// not modified.
func SequentialIO(image *ffs.FileSystem, p disk.Params, fileSize, totalBytes int64, day int) (SeqResult, error) {
	if fileSize <= 0 || totalBytes < fileSize {
		return SeqResult{}, fmt.Errorf("bench: bad sizes file=%d total=%d", fileSize, totalBytes)
	}
	fsys := image.Clone()
	// The paper's benchmarks ran as root: the minfree reserve is
	// available, so a 32 MB corpus fits on a ~90%-utilized aged image.
	fsys.IgnoreReserve = true
	io, err := newRig(fsys, p)
	if err != nil {
		return SeqResult{}, err
	}
	nFiles := int(totalBytes / fileSize)
	res := SeqResult{FileSize: fileSize, NFiles: nFiles}

	// Create phase.
	var files []*ffs.File
	var dir *ffs.File
	writeTime := 0.0
	for i := 0; i < nFiles; i++ {
		if i%maxFilesPerDir == 0 {
			dir, err = fsys.Mkdir(fsys.Root(), fmt.Sprintf("seq%03d", i/maxFilesPerDir), day)
			if err != nil {
				return SeqResult{}, fmt.Errorf("bench: mkdir: %w", err)
			}
		}
		f, err := fsys.CreateFile(dir, fmt.Sprintf("f%04d", i), 0, day)
		if err != nil {
			return SeqResult{}, fmt.Errorf("bench: create %d: %w", i, err)
		}
		// Write in 4 MB units, as the paper's benchmark did.
		for remaining := fileSize; remaining > 0; {
			chunk := remaining
			if chunk > ioUnit {
				chunk = ioUnit
			}
			if err := fsys.Append(f, chunk, day); err != nil {
				return SeqResult{}, fmt.Errorf("bench: write %d: %w", i, err)
			}
			remaining -= chunk
		}
		writeTime += io.writeCreate(f)
		files = append(files, f)
	}

	// Read phase: same order as creation.
	readTime := 0.0
	for _, f := range files {
		readTime += io.read(f)
	}

	written := int64(nFiles) * fileSize
	res.WriteBps = float64(written) / writeTime
	res.ReadBps = float64(written) / readTime
	res.LayoutScore = layout.Aggregate(files, fsys.FragsPerBlock())
	res.Disk = io.part.Disk().Stats()
	return res, nil
}

// SequentialSweep runs SequentialIO for each file size. PaperSizes
// lists the sweep the paper's figures cover, including the off-power
// points that expose the 96→104 KB indirect-block cliff and the 64 KB
// transfer-limit effect. Size points are independent (each runs on its
// own clone and its own disk), so they execute concurrently on the
// runner's configured worker count.
func SequentialSweep(image *ffs.FileSystem, p disk.Params, sizes []int64, totalBytes int64, day int) ([]SeqResult, error) {
	return SequentialSweepN(image, p, sizes, totalBytes, day, runner.Workers())
}

// SequentialSweepN is SequentialSweep with an explicit worker bound
// (the speedup benchmarks compare workers=1 against the default).
// Results are indexed by size regardless of completion order.
func SequentialSweepN(image *ffs.FileSystem, p disk.Params, sizes []int64, totalBytes int64, day, workers int) ([]SeqResult, error) {
	out := make([]SeqResult, len(sizes))
	g := runner.NewWithWorkers(context.Background(), workers)
	for i, size := range sizes {
		g.Go(fmt.Sprintf("seq %dK", size>>10), func(context.Context) error {
			r, err := SequentialIO(image, p, size, totalBytes, day)
			if err != nil {
				return fmt.Errorf("bench: size %d: %w", size, err)
			}
			out[i] = r
			return nil
		})
	}
	if _, err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// PaperSizes returns the file sizes of the Figure 4/5 sweep: 16 KB to
// 32 MB with intermediate points around the interesting cliffs.
func PaperSizes() []int64 {
	kb := func(n int64) int64 { return n << 10 }
	return []int64{
		kb(16), kb(24), kb(32), kb(48), kb(64), kb(96), kb(104), kb(128),
		kb(192), kb(256), kb(384), kb(512), kb(1024), kb(2048), kb(4096),
		kb(8192), kb(16384), kb(32768),
	}
}
