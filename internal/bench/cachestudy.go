package bench

import (
	"fmt"

	"ffsage/internal/disk"
	"ffsage/internal/ffs"
	"ffsage/internal/layout"
)

// CacheStudyRow is one buffer-cache size in the A9 study.
type CacheStudyRow struct {
	CacheBytes int64
	// FirstPassBps and SecondPassBps are the hot-set read throughputs
	// of two consecutive passes (bytes/second).
	FirstPassBps  float64
	SecondPassBps float64
	// HitRate is the second pass's cache hit fraction.
	HitRate float64
}

// CacheStudy justifies the paper's hot-set construction ("Since these
// files cannot all fit in the buffer cache, their layout and
// performance should have a large effect on the overall performance"):
// it reads the aged image's hot set twice through an LRU buffer cache
// of each given size. Once the cache is larger than the set, the
// second pass runs at memory speed and on-disk layout stops mattering;
// below that, LRU's sequential-scan behaviour keeps the hit rate at
// zero and every pass pays full disk cost.
func CacheStudy(image *ffs.FileSystem, p disk.Params, fromDay int, cacheSizes []int64) ([]CacheStudyRow, error) {
	fsys := image.Clone()
	files := layout.HotFiles(fsys, fromDay)
	if len(files) == 0 {
		return nil, fmt.Errorf("bench: no hot files from day %d", fromDay)
	}
	total := layout.TotalBytes(files)
	var out []CacheStudyRow
	for _, size := range cacheSizes {
		d := disk.New(p)
		sectors := fsys.P.SizeBytes / int64(p.Geom.SectorSize)
		part := disk.NewPartition(d, d.Params().Geom.TotalSectors()/4, sectors)
		cache := disk.NewBlockCache(part, int64(fsys.P.BlockSize), size)

		pass := func() float64 {
			elapsed := 0.0
			for _, f := range files {
				for _, e := range f.ReadSequence(fsys.FragsPerBlock()) {
					off := int64(e.Addr) * int64(fsys.P.FragSize)
					elapsed += cache.Read(off, int64(e.Frags)*int64(fsys.P.FragSize))
				}
			}
			return elapsed
		}
		t1 := pass()
		h0, m0 := cache.Stats()
		t2 := pass()
		h1, m1 := cache.Stats()
		row := CacheStudyRow{
			CacheBytes:    size,
			FirstPassBps:  float64(total) / t1,
			SecondPassBps: float64(total) / t2,
		}
		if dh, dm := h1-h0, m1-m0; dh+dm > 0 {
			row.HitRate = float64(dh) / float64(dh+dm)
		}
		out = append(out, row)
	}
	return out, nil
}
