package bench

import (
	"fmt"

	"ffsage/internal/disk"
	"ffsage/internal/ffs"
	"ffsage/internal/stats"
)

// The paper ran every benchmark ten times and reported standard
// deviations ("smaller than 1.5% of the mean" for the sequential
// benchmark, "less than 2%" for the hot files). In a deterministic
// simulation the honest analogue of run-to-run noise is the arbitrary
// rotational phase each run begins at; the Repeated variants sweep the
// initial platter angle across one revolution.

// HotRepeatResult is the hot-file benchmark's repeated-run summary.
type HotRepeatResult struct {
	Runs        int
	Read, Write stats.Summary // bytes/second
	LayoutScore float64       // layout is phase-independent
}

// HotFilesRepeated runs the hot-file benchmark `runs` times.
func HotFilesRepeated(image *ffs.FileSystem, p disk.Params, fromDay, runs int) (HotRepeatResult, error) {
	if runs < 1 {
		return HotRepeatResult{}, fmt.Errorf("bench: runs = %d", runs)
	}
	var reads, writes []float64
	var out HotRepeatResult
	for i := 0; i < runs; i++ {
		pp := p
		pp.InitialSpin = p.Geom.RotationPeriod() * float64(i) / float64(runs)
		r, err := HotFiles(image, pp, fromDay)
		if err != nil {
			return HotRepeatResult{}, err
		}
		reads = append(reads, r.ReadBps)
		writes = append(writes, r.WriteBps)
		out.LayoutScore = r.LayoutScore
	}
	out.Runs = runs
	out.Read = stats.Summarize(reads)
	out.Write = stats.Summarize(writes)
	return out, nil
}

// SeqRepeatResult is one sequential size point's repeated-run summary.
type SeqRepeatResult struct {
	FileSize    int64
	Runs        int
	Read, Write stats.Summary
	LayoutScore float64
}

// SequentialIORepeated runs one sequential size point `runs` times.
func SequentialIORepeated(image *ffs.FileSystem, p disk.Params, fileSize, totalBytes int64, day, runs int) (SeqRepeatResult, error) {
	if runs < 1 {
		return SeqRepeatResult{}, fmt.Errorf("bench: runs = %d", runs)
	}
	var reads, writes []float64
	out := SeqRepeatResult{FileSize: fileSize, Runs: runs}
	for i := 0; i < runs; i++ {
		pp := p
		pp.InitialSpin = p.Geom.RotationPeriod() * float64(i) / float64(runs)
		r, err := SequentialIO(image, pp, fileSize, totalBytes, day)
		if err != nil {
			return SeqRepeatResult{}, err
		}
		reads = append(reads, r.ReadBps)
		writes = append(writes, r.WriteBps)
		out.LayoutScore = r.LayoutScore
	}
	out.Read = stats.Summarize(reads)
	out.Write = stats.Summarize(writes)
	return out, nil
}
