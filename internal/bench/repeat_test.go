package bench

import (
	"fmt"
	"testing"

	"ffsage/internal/core"
	"ffsage/internal/disk"
)

func TestHotFilesRepeated(t *testing.T) {
	img := smallImage(t, core.Realloc{})
	dir, _ := img.Mkdir(img.Root(), "h", 280)
	for i := 0; i < 10; i++ {
		if _, err := img.CreateFile(dir, fmt.Sprintf("f%d", i), 200<<10, 290); err != nil {
			t.Fatal(err)
		}
	}
	res, err := HotFilesRepeated(img, disk.PaperParams(), 280, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 10 || res.Read.N != 10 || res.Write.N != 10 {
		t.Fatalf("res = %+v", res)
	}
	// The paper: standard deviations below 2% of the mean. Rotational
	// phase is the only noise source, so ours should satisfy the same
	// bound.
	if rel := res.Read.RelStdDev(); rel > 0.02 {
		t.Errorf("read sd/mean = %.3f, want < 0.02", rel)
	}
	if rel := res.Write.RelStdDev(); rel > 0.02 {
		t.Errorf("write sd/mean = %.3f, want < 0.02", rel)
	}
	// Phase must actually vary the measurements (a zero spread would
	// mean InitialSpin is not wired through).
	if res.Read.Min == res.Read.Max && res.Write.Min == res.Write.Max {
		t.Error("no run-to-run variation at all")
	}
	if _, err := HotFilesRepeated(img, disk.PaperParams(), 280, 0); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestSequentialIORepeated(t *testing.T) {
	img := smallImage(t, core.Original{})
	res, err := SequentialIORepeated(img, disk.PaperParams(), 64<<10, 2<<20, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 5 || res.Read.N != 5 {
		t.Fatalf("res = %+v", res)
	}
	// Sequential benchmark: sd < 1.5% of mean (the paper's bound).
	if rel := res.Read.RelStdDev(); rel > 0.015 {
		t.Errorf("read sd/mean = %.3f, want < 0.015", rel)
	}
	if res.LayoutScore <= 0 {
		t.Error("no layout score")
	}
	if _, err := SequentialIORepeated(img, disk.PaperParams(), 64<<10, 2<<20, 0, 0); err == nil {
		t.Error("zero runs accepted")
	}
}
