package bench

import (
	"fmt"
	"testing"

	"ffsage/internal/core"
	"ffsage/internal/disk"
)

func TestCacheStudyKnee(t *testing.T) {
	img := smallImage(t, core.Realloc{})
	// A ~6 MB hot set.
	dir, err := img.Mkdir(img.Root(), "hot", 250)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := img.CreateFile(dir, fmt.Sprintf("h%d", i), 512<<10, 290); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := CacheStudy(img, disk.PaperParams(), 280, []int64{2 << 20, 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	small, big := rows[0], rows[1]
	// Below the set size, LRU thrashes: no hits, second pass as slow as
	// the first.
	if small.HitRate > 0.05 {
		t.Errorf("small cache hit rate %.2f, want ~0", small.HitRate)
	}
	if small.SecondPassBps > 1.5*small.FirstPassBps {
		t.Errorf("small cache second pass %.2f not ≈ first %.2f",
			small.SecondPassBps/1e6, small.FirstPassBps/1e6)
	}
	// Above the set size, the second pass runs from memory.
	if big.HitRate < 0.95 {
		t.Errorf("big cache hit rate %.2f, want ~1", big.HitRate)
	}
	if big.SecondPassBps < 5*big.FirstPassBps {
		t.Errorf("big cache second pass %.2f not ≫ first %.2f",
			big.SecondPassBps/1e6, big.FirstPassBps/1e6)
	}
}

func TestCacheStudyValidation(t *testing.T) {
	img := smallImage(t, core.Original{})
	if _, err := CacheStudy(img, disk.PaperParams(), 0, []int64{1 << 20}); err == nil {
		t.Error("empty hot set accepted")
	}
}
