package bench

import (
	"testing"

	"ffsage/internal/core"
	"ffsage/internal/disk"
	"ffsage/internal/ffs"
)

func smallImage(t *testing.T, policy ffs.Policy) *ffs.FileSystem {
	t.Helper()
	p := ffs.PaperParams()
	p.SizeBytes = 64 << 20
	p.NumCg = 8
	fsys, err := ffs.NewFileSystem(p, policy)
	if err != nil {
		t.Fatal(err)
	}
	return fsys
}

func TestSequentialIOBasics(t *testing.T) {
	img := smallImage(t, core.Realloc{})
	res, err := SequentialIO(img, disk.PaperParams(), 64<<10, 4<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NFiles != 64 {
		t.Errorf("NFiles = %d", res.NFiles)
	}
	if res.WriteBps <= 0 || res.ReadBps <= 0 {
		t.Fatalf("throughput %v / %v", res.WriteBps, res.ReadBps)
	}
	// On an empty image with realloc, 64 KB files lay out perfectly.
	if res.LayoutScore < 0.99 {
		t.Errorf("layout = %v, want ~1 on empty fs", res.LayoutScore)
	}
	// Reads benefit from the track buffer; writes pay sync metadata —
	// reads must be faster.
	if res.ReadBps <= res.WriteBps {
		t.Errorf("read %v not faster than write %v", res.ReadBps, res.WriteBps)
	}
	// The image itself must be untouched (benchmark runs on a clone).
	if _, ok := img.Lookup(img.Root(), "seq000"); ok {
		t.Error("benchmark mutated the input image")
	}
}

func TestSequentialIOSmallVsLargeWrites(t *testing.T) {
	img := smallImage(t, core.Realloc{})
	small, err := SequentialIO(img, disk.PaperParams(), 16<<10, 2<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	large, err := SequentialIO(img, disk.PaperParams(), 1<<20, 8<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Synchronous metadata dominates small creates: large-file writes
	// must be several times faster (Figure 4, bottom).
	if large.WriteBps < 2*small.WriteBps {
		t.Errorf("large write %v not ≫ small write %v", large.WriteBps, small.WriteBps)
	}
}

func TestSequentialIndirectCliff(t *testing.T) {
	img := smallImage(t, core.Realloc{})
	at96, err := SequentialIO(img, disk.PaperParams(), 96<<10, 4<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	at104, err := SequentialIO(img, disk.PaperParams(), 104<<10, 4<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The 13th block forces a seek to another cylinder group: read
	// throughput drops across the boundary (Figure 4's sharp dip).
	if at104.ReadBps >= at96.ReadBps {
		t.Errorf("no indirect cliff: 96KB %v ≤ 104KB %v", at96.ReadBps, at104.ReadBps)
	}
}

func TestSequentialIOValidation(t *testing.T) {
	img := smallImage(t, core.Original{})
	if _, err := SequentialIO(img, disk.PaperParams(), 0, 1<<20, 0); err == nil {
		t.Error("zero file size accepted")
	}
	if _, err := SequentialIO(img, disk.PaperParams(), 2<<20, 1<<20, 0); err == nil {
		t.Error("total < file size accepted")
	}
}

func TestSequentialSweep(t *testing.T) {
	img := smallImage(t, core.Original{})
	rs, err := SequentialSweep(img, disk.PaperParams(), []int64{16 << 10, 64 << 10}, 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].FileSize != 16<<10 || rs[1].FileSize != 64<<10 {
		t.Errorf("sweep = %+v", rs)
	}
}

func TestPaperSizes(t *testing.T) {
	sizes := PaperSizes()
	if sizes[0] != 16<<10 || sizes[len(sizes)-1] != 32<<20 {
		t.Errorf("sweep bounds %d..%d", sizes[0], sizes[len(sizes)-1])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Error("sizes not increasing")
		}
	}
	has := func(want int64) bool {
		for _, s := range sizes {
			if s == want {
				return true
			}
		}
		return false
	}
	// The two cliffs the paper discusses must be sampled.
	if !has(96<<10) || !has(104<<10) || !has(64<<10) {
		t.Error("sweep misses 64/96/104 KB")
	}
}

func TestHotFiles(t *testing.T) {
	img := smallImage(t, core.Realloc{})
	// Old cold files and young hot files.
	for i, day := range []int{1, 2, 270, 280, 299} {
		name := []string{"a", "b", "c", "d", "e"}[i]
		if _, err := img.CreateFile(img.Root(), name, 50<<10, day); err != nil {
			t.Fatal(err)
		}
	}
	res, err := HotFiles(img, disk.PaperParams(), 270)
	if err != nil {
		t.Fatal(err)
	}
	if res.NFiles != 3 {
		t.Fatalf("hot files = %d, want 3", res.NFiles)
	}
	if res.TotalBytes != 3*50<<10 {
		t.Errorf("bytes = %d", res.TotalBytes)
	}
	if res.FracFiles < 0.59 || res.FracFiles > 0.61 {
		t.Errorf("frac files = %v, want 0.6", res.FracFiles)
	}
	if res.ReadBps <= 0 || res.WriteBps <= 0 || res.LayoutScore <= 0 {
		t.Errorf("result %+v", res)
	}
	if _, err := HotFiles(img, disk.PaperParams(), 400); err == nil {
		t.Error("empty hot set accepted")
	}
}

func TestRawThroughput(t *testing.T) {
	p := disk.PaperParams()
	read := RawThroughput(502<<20, p, 8<<20, false)
	write := RawThroughput(502<<20, p, 8<<20, true)
	if read <= write {
		t.Errorf("raw read %v not above raw write %v", read, write)
	}
	if read < 3e6 || read > 6e6 {
		t.Errorf("raw read %v outside plausible band", read)
	}
}

func TestRigRejectsOversizeFs(t *testing.T) {
	p := ffs.PaperParams()
	p.SizeBytes = 2 << 30
	p.NumCg = 64
	fsys, err := ffs.NewFileSystem(p, core.Original{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newRig(fsys, disk.PaperParams()); err == nil {
		t.Error("oversize fs accepted")
	}
}
