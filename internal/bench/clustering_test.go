package bench

import (
	"testing"

	"ffsage/internal/disk"
	"ffsage/internal/ffs"
)

// The intro's claim ([McVoy90]/[Seltzer93]): clustering beats
// block-at-a-time I/O by a factor of two or three. The rotdelay row
// shows the historical mitigation working as designed.
func TestClusteringStudy(t *testing.T) {
	rows, err := ClusteringStudy(4<<20, disk.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	naive, rotdelay, clustered := rows[0], rows[1], rows[2]

	// The naive world loses a rotation per block: ~bsize/rev.
	p := disk.PaperParams()
	lostRotationBound := 8192 / p.Geom.RotationPeriod() // one block per revolution
	if naive.ReadBps > 1.3*lostRotationBound {
		t.Errorf("naive read %.2f MB/s too fast for one block/rev (%.2f)",
			naive.ReadBps/1e6, lostRotationBound/1e6)
	}
	if naive.LayoutScore < 0.99 { // one break at the indirect boundary
		t.Errorf("naive world layout %.3f, want ~contiguous", naive.LayoutScore)
	}

	// Rotdelay spacing helps block-at-a-time I/O substantially...
	if rotdelay.ReadBps < 1.5*naive.ReadBps {
		t.Errorf("rotdelay %.2f MB/s not ≥1.5× naive %.2f", rotdelay.ReadBps/1e6, naive.ReadBps/1e6)
	}
	// ...and by design its layout is fully non-contiguous.
	if rotdelay.LayoutScore > 0.01 {
		t.Errorf("rotdelay layout %.3f, want ~0 (deliberate spacing)", rotdelay.LayoutScore)
	}

	// Clustering wins by the paper's "factor of two or three" over the
	// old discipline, and far more over the naive one.
	if clustered.ReadBps < 2*rotdelay.ReadBps {
		t.Errorf("clustered %.2f MB/s not ≥2× rotdelay %.2f",
			clustered.ReadBps/1e6, rotdelay.ReadBps/1e6)
	}
	if clustered.ReadBps < 4*naive.ReadBps {
		t.Errorf("clustered %.2f MB/s not ≥4× naive %.2f",
			clustered.ReadBps/1e6, naive.ReadBps/1e6)
	}
}

func TestClusteringStudyValidation(t *testing.T) {
	if _, err := ClusteringStudy(1000, disk.PaperParams()); err == nil {
		t.Error("tiny file accepted")
	}
}

func TestRotDelayFrags(t *testing.T) {
	// Covered here because the study depends on it: 4 ms at 90 rev/s
	// over 118 sectors/track ≈ 42 sectors ≈ 21 KB → 24 KB block-rounded
	// → 24 fragments.
	p := ffs.PaperParams()
	p.RotDelay = 4
	if got := p.RotDelayFrags(); got != 24 {
		t.Errorf("RotDelayFrags = %d, want 24", got)
	}
	p.RotDelay = 0
	if got := p.RotDelayFrags(); got != 0 {
		t.Errorf("RotDelayFrags = %d, want 0", got)
	}
}
