package bench

import (
	"fmt"
	"testing"

	"ffsage/internal/core"
	"ffsage/internal/disk"
	"ffsage/internal/ffs"
)

func TestSchedulingStudy(t *testing.T) {
	img := smallImage(t, core.Original{})
	// Region 1: churn that leaves hot files whose inode order zigzags
	// across disk addresses (deleted inodes are reused by files placed
	// in the holes), giving the elevator seeks to eliminate.
	dirA, err := img.Mkdir(img.Root(), "zigzag", 280)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ffs.File
	for i := 0; i < 40; i++ {
		f, err := img.CreateFile(dirA, fmt.Sprintf("f%d", i), 24<<10, 290)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	for i := 0; i < len(files); i += 2 {
		if err := img.Delete(files[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := img.CreateFile(dirA, fmt.Sprintf("r%d", i), 24<<10, 290); err != nil {
			t.Fatal(err)
		}
	}
	// Region 2: back-to-back files whose extents abut, giving the
	// coalescer requests to merge.
	dirB, err := img.Mkdir(img.Root(), "adjacent", 280)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := img.CreateFile(dirB, fmt.Sprintf("c%d", i), 24<<10, 290); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := SchedulingStudy(map[string]*ffs.FileSystem{"test": img}, disk.PaperParams(), 280)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	by := map[disk.Discipline]float64{}
	for _, r := range rows {
		if r.WriteBps <= 0 {
			t.Fatalf("row %+v", r)
		}
		by[r.Discipline] = r.WriteBps
	}
	// Sorting alone may win or lose (short sorted hops each wait a
	// near-full rotation), but sorting plus coalescing beats both.
	if by[disk.ElevatorCoalesce] <= by[disk.Elevator] {
		t.Errorf("coalesce %.2f not above elevator %.2f",
			by[disk.ElevatorCoalesce]/1e6, by[disk.Elevator]/1e6)
	}
	if by[disk.ElevatorCoalesce] <= by[disk.FCFS] {
		t.Errorf("coalesce %.2f not above fcfs %.2f",
			by[disk.ElevatorCoalesce]/1e6, by[disk.FCFS]/1e6)
	}
	if _, err := SchedulingStudy(map[string]*ffs.FileSystem{"x": img}, disk.PaperParams(), 400); err == nil {
		t.Error("empty hot set accepted")
	}
}
