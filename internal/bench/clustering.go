package bench

import (
	"fmt"

	"ffsage/internal/disk"
	"ffsage/internal/ffs"
	"ffsage/internal/layout"
)

// ClusteringStudyRow is one configuration of the A8 study: how a fresh
// multi-megabyte file reads back under an I/O discipline and layout
// policy pairing.
type ClusteringStudyRow struct {
	Label   string
	ReadBps float64
	// Layout of the measured file.
	LayoutScore float64
}

// ClusteringStudy reproduces the claim in the paper's introduction that
// clustered I/O improves on block-at-a-time file systems "by a factor
// of two or three" ([McVoy90], [Seltzer93]) — the motivation for the
// clustering whose long-term behaviour the paper studies. Three worlds
// read the same freshly written file:
//
//  1. a pre-clustering FFS: contiguous layout, one request per block,
//     a drive with no read-ahead — every block waits a full rotation;
//  2. the same world with rotdelay spacing — the gap absorbs the
//     per-request overhead, the historical fix;
//  3. the paper's world: clustered layout and requests, track-buffer
//     read-ahead.
func ClusteringStudy(fileBytes int64, p disk.Params) ([]ClusteringStudyRow, error) {
	if fileBytes < 1<<20 {
		return nil, fmt.Errorf("bench: clustering study wants ≥ 1 MB, got %d", fileBytes)
	}
	type world struct {
		label      string
		rotDelayMs int
		blockwise  bool
		trackBuf   bool
	}
	worlds := []world{
		{"block-at-a-time, contiguous, no read-ahead", 0, true, false},
		{"block-at-a-time, rotdelay-spaced (old FFS)", 4, true, false},
		{"clustered I/O + read-ahead (paper's FFS)", 0, false, true},
	}
	var out []ClusteringStudyRow
	for _, w := range worlds {
		fp := ffs.PaperParams()
		fp.SizeBytes = 64 << 20
		fp.NumCg = 4
		fp.RotDelay = w.rotDelayMs
		// Keep the whole file in one section so the discipline, not
		// the section switches, dominates.
		fp.MaxBpg = 1 << 20
		fsys, err := ffs.NewFileSystem(fp, nopPolicy{})
		if err != nil {
			return nil, err
		}
		f, err := fsys.CreateFile(fsys.Root(), "subject", fileBytes, 0)
		if err != nil {
			return nil, err
		}
		dp := p
		if !w.trackBuf {
			dp.TrackBuffer = 0
		}
		io, err := newRig(fsys, dp)
		if err != nil {
			return nil, err
		}
		var elapsed float64
		if w.blockwise {
			elapsed = io.readBlockAtATime(f)
		} else {
			elapsed = io.read(f)
		}
		score, _, _ := layout.FileScore(f, fsys.FragsPerBlock())
		out = append(out, ClusteringStudyRow{
			Label:       w.label,
			ReadBps:     float64(fileBytes) / elapsed,
			LayoutScore: score,
		})
	}
	return out, nil
}

// nopPolicy is a no-reallocation policy for the study's fixtures (the
// rotdelay world predates the clustering code entirely).
type nopPolicy struct{}

func (nopPolicy) Name() string                                      { return "none" }
func (nopPolicy) FlushCluster(*ffs.FileSystem, *ffs.File, int, int) {}
