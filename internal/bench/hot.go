package bench

import (
	"fmt"

	"ffsage/internal/disk"
	"ffsage/internal/ffs"
	"ffsage/internal/layout"
	"ffsage/internal/stats"
)

// HotResult reproduces Table 2: the layout score and read/write
// throughput of the files modified during the last month of the aging
// simulation, plus the by-size breakdown behind Figure 6.
type HotResult struct {
	NFiles     int
	TotalBytes int64
	// FracFiles and FracBytes report the hot set's share of the file
	// system (the paper: 10.5% of files, 19% of allocated space).
	FracFiles float64
	FracBytes float64

	LayoutScore float64
	ReadBps     float64
	WriteBps    float64

	// Disk is the benchmark's full disk-model accounting, including the
	// per-request time-attribution matrix.
	Disk disk.Stats

	BySize []stats.SizeBucket
}

// HotFiles measures the hot set of the aged image: all plain files
// modified on or after fromDay, visited in directory order (one
// cylinder group's files together) as in Section 5.2. Reads include
// inode fetches; the write phase overwrites files in place, so it
// carries no allocation or create-metadata cost.
func HotFiles(image *ffs.FileSystem, p disk.Params, fromDay int) (HotResult, error) {
	fsys := image.Clone()
	files := layout.HotFiles(fsys, fromDay)
	if len(files) == 0 {
		return HotResult{}, fmt.Errorf("bench: no files modified on or after day %d", fromDay)
	}
	io, err := newRig(fsys, p)
	if err != nil {
		return HotResult{}, err
	}
	var res HotResult
	res.NFiles = len(files)
	res.TotalBytes = layout.TotalBytes(files)
	all := layout.AllFiles(fsys)
	res.FracFiles = float64(len(files)) / float64(len(all))
	res.FracBytes = float64(res.TotalBytes) / float64(layout.TotalBytes(all))
	res.LayoutScore = layout.Aggregate(files, fsys.FragsPerBlock())

	readTime := 0.0
	for _, f := range files {
		readTime += io.read(f)
	}
	writeTime := 0.0
	for _, f := range files {
		writeTime += io.overwrite(f)
	}
	res.ReadBps = float64(res.TotalBytes) / readTime
	res.WriteBps = float64(res.TotalBytes) / writeTime
	res.Disk = io.part.Disk().Stats()

	buckets := stats.PowerOfTwoBuckets(16<<10, 16<<20)
	res.BySize = layout.BySize(files, fsys.FragsPerBlock(), buckets)
	return res, nil
}
