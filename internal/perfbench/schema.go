package perfbench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SchemaVersion names the report layout. Readers reject reports from a
// different schema instead of mis-parsing them; bump it whenever a
// field changes meaning.
const SchemaVersion = "ffsage-perfbench/v1"

// Result is one benchmark's summary in the report: the raw samples
// (so a future reader can re-derive any statistic), the robust
// summary, and derived throughput metrics. All durations are
// nanoseconds.
type Result struct {
	Name      string    `json:"name"`
	Units     int64     `json:"units"`
	Reps      int       `json:"reps"`
	SamplesNs []float64 `json:"samples_ns"`
	MedianNs  float64   `json:"median_ns"`
	MADNs     float64   `json:"mad_ns"`
	CILoNs    float64   `json:"ci_lo_ns"`
	CIHiNs    float64   `json:"ci_hi_ns"`
	NsPerOp   float64   `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap-allocation rates per inner
	// operation, from runtime.MemStats deltas around the timed reps.
	// Additive fields: reports without them (pre-v6 baselines) decode
	// with zeros, so the schema version is unchanged.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Metrics holds derived rates (ops_per_s, mb_per_s, ...).
	// encoding/json marshals map keys sorted, so output stays
	// byte-stable.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the versioned machine-readable output of one suite run —
// the BENCH_*.json trajectory format. It deliberately carries no
// timestamp or hostname: the committed baseline must be byte-stable
// under re-summarization, and detrand keeps wall-clock identity out of
// this package anyway.
type Report struct {
	Schema     string   `json:"schema"`
	Suite      string   `json:"suite"`
	Seed       int64    `json:"seed"`
	Reps       int      `json:"reps"`
	Confidence float64  `json:"confidence"`
	Resamples  int      `json:"resamples"`
	Benchmarks []Result `json:"benchmarks"`
}

// Find returns the named benchmark's result, or nil.
func (r *Report) Find(name string) *Result {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// WriteReport writes the canonical JSON encoding: two-space indent,
// trailing newline, benchmarks in the order the report holds them
// (RunSuite sorts by name).
func WriteReport(w io.Writer, r *Report) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteReportFile writes the report to path.
func WriteReportFile(path string, r *Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteReport(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReport parses and validates a report.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("perfbench: parsing report: %w", err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("perfbench: report schema %q, want %q", r.Schema, SchemaVersion)
	}
	return &r, nil
}

// ReadReportFile reads a report from path.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := ReadReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
