package perfbench

import (
	"fmt"
	"sync"

	"ffsage/internal/aging"
	"ffsage/internal/core"
	"ffsage/internal/experiments"
	"ffsage/internal/obs"
	"ffsage/internal/workload"
)

// Fixture is the shared state every benchmark closes over: the
// micro-scale workload and the two aged images, built once per seed.
// Both come through internal/experiments' process-wide caches, so the
// fixture, the root bench_test.go, and any unit test asking for the
// same seed pay for one build between them. Obs carries the metrics
// the aged replays published (allocation counters, op totals); macro
// benchmarks derive their throughput numbers from those counters
// instead of re-measuring.
type Fixture struct {
	Seed  int64
	Cfg   experiments.Config
	Build *workload.Build
	// AgedFFS and AgedRealloc are the micro images aged under the two
	// policies. Benchmarks treat them as read-only; anything mutating
	// works on a Clone.
	AgedFFS     *aging.Result
	AgedRealloc *aging.Result
	// Obs is the fixture's private registry. NewFixture publishes the
	// two aged replays under aging.micro-ffs / aging.micro-realloc;
	// the single-day replay benchmark publishes under aging.day on
	// first setup.
	Obs *obs.Registry

	dayOnce sync.Once
}

// NewFixture builds (or fetches from the experiments cache) the
// perfbench fixture for a seed.
func NewFixture(seed int64) (*Fixture, error) {
	cfg := experiments.Micro(seed)
	b, err := experiments.CachedBuild(cfg.WorkloadCfg, cfg.NFSCfg)
	if err != nil {
		return nil, fmt.Errorf("perfbench: building micro workload: %w", err)
	}
	key := fmt.Sprintf("perfbench-micro|seed=%d|reconstructed", seed)
	aged, err := experiments.CachedAgedImage(cfg.FsParams, core.Original{}, b.Reconstructed, key, aging.Options{})
	if err != nil {
		return nil, fmt.Errorf("perfbench: aging micro image (ffs): %w", err)
	}
	agedRe, err := experiments.CachedAgedImage(cfg.FsParams, core.Realloc{}, b.Reconstructed, key, aging.Options{})
	if err != nil {
		return nil, fmt.Errorf("perfbench: aging micro image (realloc): %w", err)
	}
	fx := &Fixture{
		Seed:        seed,
		Cfg:         cfg,
		Build:       b,
		AgedFFS:     aged,
		AgedRealloc: agedRe,
		Obs:         obs.NewRegistry(),
	}
	aging.PublishResult(fx.Obs.Scope("aging.micro-ffs"), aged, b.Reconstructed)
	aging.PublishResult(fx.Obs.Scope("aging.micro-realloc"), agedRe, b.Reconstructed)
	return fx, nil
}

// counter returns a published counter's value, failing loudly when the
// name is missing: a metric derivation reading a counter nobody
// published is a wiring bug, not a zero.
func (fx *Fixture) counter(name string) (int64, error) {
	v, ok := fx.Obs.CounterValue(name)
	if !ok {
		return 0, fmt.Errorf("perfbench: no published counter %q", name)
	}
	return v, nil
}
