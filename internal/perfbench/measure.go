package perfbench

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"regexp"
	"runtime"
	"sort"

	"ffsage/internal/stats"
)

// Options tune a suite run. The zero value is not useful; start from
// DefaultOptions.
type Options struct {
	// Reps is the number of timed repetitions per benchmark; Warmup
	// runs precede them unmeasured (cache warming, JIT-free Go still
	// wants page faults and branch predictors settled).
	Reps   int
	Warmup int
	// Seed feeds the fixture and every summary's bootstrap generator,
	// so a report built from the same samples is byte-identical.
	Seed int64
	// Confidence is the bootstrap interval's coverage (default 0.95);
	// Resamples the bootstrap's resample count (default 200).
	Confidence float64
	Resamples  int
	// Full includes the benchmarks outside the quick suite.
	Full bool
	// Run, when non-nil, keeps only benchmarks whose name matches.
	Run *regexp.Regexp
	// Progress, when non-nil, is called before each benchmark runs.
	Progress func(name string)
}

// DefaultOptions returns the settings CI's bench-smoke job uses.
func DefaultOptions(seed int64) Options {
	return Options{
		Reps:       7,
		Warmup:     1,
		Seed:       seed,
		Confidence: 0.95,
		Resamples:  200,
	}
}

func (o Options) withDefaults() Options {
	if o.Reps <= 0 {
		o.Reps = 7
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.95
	}
	if o.Resamples <= 0 {
		o.Resamples = 200
	}
	return o
}

// RunSuite measures every selected benchmark and returns the report,
// benchmarks sorted by name.
func RunSuite(fx *Fixture, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	var results []Result
	for _, bm := range All() {
		if !opts.Full && !bm.Quick {
			continue
		}
		if opts.Run != nil && !opts.Run.MatchString(bm.Name) {
			continue
		}
		if opts.Progress != nil {
			opts.Progress(bm.Name)
		}
		inst, err := bm.Setup(fx)
		if err != nil {
			return nil, fmt.Errorf("perfbench: setup %s: %w", bm.Name, err)
		}
		samples, allocs, bytes, err := measure(inst, opts)
		if err != nil {
			return nil, fmt.Errorf("perfbench: measuring %s: %w", bm.Name, err)
		}
		if bm.CheckAllocs {
			// Budget-gated benchmarks need an exact count: the timed
			// window above also catches ambient allocations from other
			// Ps (GC workers, runtime timers), which would break a hard
			// zero budget. Re-measure quiesced, the way
			// testing.AllocsPerRun does.
			allocs, bytes, err = measureAllocs(inst, opts.Reps)
			if err != nil {
				return nil, fmt.Errorf("perfbench: measuring %s allocs: %w", bm.Name, err)
			}
		}
		res := Summarize(bm.Name, inst, samples, opts)
		res.AllocsPerOp = allocs
		res.BytesPerOp = bytes
		results = append(results, res)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("perfbench: no benchmarks selected")
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	suite := "quick"
	if opts.Full {
		suite = "full"
	}
	return &Report{
		Schema:     SchemaVersion,
		Suite:      suite,
		Seed:       opts.Seed,
		Reps:       opts.Reps,
		Confidence: opts.Confidence,
		Resamples:  opts.Resamples,
		Benchmarks: results,
	}, nil
}

// measure runs the warmup and timed repetitions, returning per-rep
// nanosecond samples plus the heap allocation rates (allocations and
// bytes per inner operation, averaged over all timed reps) from
// runtime.MemStats deltas taken outside the timed region. The GC
// barrier between warmup and measurement puts every benchmark's timed
// loop behind the same heap state: without it, allocation-heavy
// benchmarks (checkpoint encode, clone) measure whatever garbage the
// previous benchmark left behind, and medians swing several-fold
// between otherwise identical runs.
func measure(inst *Instance, opts Options) (samples []float64, allocsPerOp, bytesPerOp float64, err error) {
	for i := 0; i < opts.Warmup; i++ {
		if err := inst.Op(); err != nil {
			return nil, 0, 0, err
		}
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	samples = make([]float64, opts.Reps)
	for i := range samples {
		t0 := now()
		err := inst.Op()
		d := since(t0)
		if err != nil {
			return nil, 0, 0, err
		}
		samples[i] = float64(d.Nanoseconds())
	}
	runtime.ReadMemStats(&m1)
	units := inst.Units
	if units <= 0 {
		units = 1
	}
	denom := float64(opts.Reps) * float64(units)
	allocsPerOp = float64(m1.Mallocs-m0.Mallocs) / denom
	bytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / denom
	return samples, allocsPerOp, bytesPerOp, nil
}

// measureAllocs counts heap allocations per inner operation with the
// scheduler quiesced to one P (the testing.AllocsPerRun technique):
// with a single P and no timed section, the MemStats delta contains
// only what Op itself allocates, so an exact zero is measurable.
func measureAllocs(inst *Instance, runs int) (allocsPerOp, bytesPerOp float64, err error) {
	if runs <= 0 {
		runs = 1
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	// One settling run under the new scheduler state.
	if err := inst.Op(); err != nil {
		return 0, 0, err
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < runs; i++ {
		if err := inst.Op(); err != nil {
			return 0, 0, err
		}
	}
	runtime.ReadMemStats(&m1)
	units := inst.Units
	if units <= 0 {
		units = 1
	}
	denom := float64(runs) * float64(units)
	allocsPerOp = float64(m1.Mallocs-m0.Mallocs) / denom
	bytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / denom
	return allocsPerOp, bytesPerOp, nil
}

// Summarize reduces one benchmark's samples to its Result. It is a
// pure function of (name, instance, samples, opts): the bootstrap
// generator is seeded from opts.Seed and the benchmark name, so the
// summary does not depend on suite order or filtering, and fixed
// samples always produce identical output.
func Summarize(name string, inst *Instance, samplesNs []float64, opts Options) Result {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed ^ nameSeed(name)))
	med := stats.Median(samplesNs)
	lo, hi := stats.BootstrapCI(samplesNs, opts.Confidence, opts.Resamples, rng)
	units := inst.Units
	if units <= 0 {
		units = 1
	}
	res := Result{
		Name:      name,
		Units:     units,
		Reps:      len(samplesNs),
		SamplesNs: samplesNs,
		MedianNs:  med,
		MADNs:     stats.MAD(samplesNs),
		CILoNs:    lo,
		CIHiNs:    hi,
		NsPerOp:   med / float64(units),
	}
	if med > 0 {
		res.Metrics = map[string]float64{"ops_per_s": float64(units) / (med * 1e-9)}
	}
	if inst.Metrics != nil {
		for k, v := range inst.Metrics(med * 1e-9) {
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[k] = v
		}
	}
	return res
}

// nameSeed folds a benchmark name into a stable 63-bit seed component.
func nameSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() >> 1)
}
