package perfbench

import (
	"bytes"
	"fmt"
	"math/rand"

	"ffsage/internal/aging"
	"ffsage/internal/bench"
	"ffsage/internal/bitset"
	"ffsage/internal/core"
	"ffsage/internal/disk"
	"ffsage/internal/experiments"
	"ffsage/internal/ffs"
	"ffsage/internal/layout"
	"ffsage/internal/obs"
	"ffsage/internal/policy"
	"ffsage/internal/trace"
	"ffsage/internal/workload"
)

// All returns the benchmark registry in its canonical order. Every
// entry measures a code path the reproduction actually exercises; the
// Quick subset is what CI's bench-smoke job runs on each push.
func All() []Benchmark {
	bs := []Benchmark{
		{Name: "bitset.runscan", Quick: true, Setup: setupBitsetRunScan},
		{Name: "ffs.alloc.ffs", Quick: true, Setup: setupAlloc(core.Original{})},
		{Name: "ffs.alloc.realloc", Quick: true, Setup: setupAlloc(core.Realloc{})},
		{Name: "aging.day", Quick: true, Setup: setupAgingDay},
		{Name: "replay.steady", Quick: true, Setup: setupReplaySteady, CheckAllocs: true, MaxAllocsPerOp: 0},
		{Name: "span.emit", Quick: true, Setup: setupSpanEmit, CheckAllocs: true, MaxAllocsPerOp: 0},
		{Name: "layout.rescan", Quick: true, Setup: setupLayoutRescan},
		{Name: "layout.incremental", Quick: true, Setup: setupLayoutIncremental},
		{Name: "disk.requests", Quick: true, Setup: setupDiskRequests},
		{Name: "ffs.clone", Quick: true, Setup: setupClone},
		{Name: "checkpoint.encode", Quick: true, Setup: setupCheckpointEncode},
		{Name: "checkpoint.decode", Quick: true, Setup: setupCheckpointDecode},
		{Name: "workload.build", Quick: false, Setup: setupWorkloadBuild},
		{Name: "bench.seqsweep", Quick: false, Setup: setupSeqSweep},
		{Name: "bench.hotfiles", Quick: false, Setup: setupHotFiles},
	}
	// One FlushCluster micro per registered policy (the benchmark name
	// uses the slug, so -run regexes never meet a '+').
	for _, name := range policy.Names() {
		bs = append(bs, Benchmark{
			Name:  "policy.flushcluster." + policy.Slug(name),
			Quick: true,
			Setup: setupFlushCluster(name),
		})
	}
	return bs
}

// setupFlushCluster measures one policy's write-time relocation path: a
// state-neutral cycle creating and deleting cluster-spanning files on a
// clone of the aged (fragmented) micro image with the named policy
// swapped in. Every create flushes full-block runs through the policy's
// FlushCluster against an aged free map — the free-run scans, the
// cluster claim, and the old-run frees are all on the measured path.
func setupFlushCluster(name string) func(fx *Fixture) (*Instance, error) {
	return func(fx *Fixture) (*Instance, error) {
		pol, err := policy.New(name)
		if err != nil {
			return nil, err
		}
		fsys := fx.AgedFFS.Fs.Clone().WithPolicy(pol)
		// The aged image sits near the minfree reserve; the cycle's
		// transient working set may legitimately dip into it.
		fsys.IgnoreReserve = true
		root := fsys.Root()
		const perOp = 16
		clusterBytes := int64(fx.Cfg.FsParams.MaxContig * fx.Cfg.FsParams.BlockSize)
		op := func() error {
			files := make([]*ffs.File, perOp)
			for i := range files {
				f, err := fsys.CreateFile(root, fmt.Sprintf("pb%02d", i), clusterBytes, 0)
				if err != nil {
					return err
				}
				files[i] = f
			}
			for _, f := range files {
				if err := fsys.Delete(f); err != nil {
					return err
				}
			}
			return nil
		}
		// Prime once: settles the arena and directory tables, and proves
		// the cycle is state-neutral enough to repeat.
		if err := op(); err != nil {
			return nil, err
		}
		if name != "ffs" && fsys.Stats.ClusterAttempts == 0 {
			return nil, fmt.Errorf("policy.flushcluster.%s: relocation machinery never engaged", policy.Slug(name))
		}
		return &Instance{Op: op, Units: perOp}, nil
	}
}

// Names returns the registered benchmark names in registry order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	return names
}

// setupBitsetRunScan measures the word-wise free-map scans the
// allocator leans on: FindRun/FindRunNearest sweeps over a seeded,
// moderately fragmented map — the access pattern of block allocation
// on an aged file system.
func setupBitsetRunScan(fx *Fixture) (*Instance, error) {
	const nbits = 1 << 17
	rng := rand.New(rand.NewSource(fx.Seed))
	s := bitset.New(nbits)
	// ~55% occupancy in clustered runs, the shape of an aged free map.
	for s.Count() < nbits*55/100 {
		start := rng.Intn(nbits)
		run := 1 + rng.Intn(24)
		if start+run > nbits {
			run = nbits - start
		}
		s.SetRange(start, start+run)
	}
	prefs := make([]int, 64)
	for i := range prefs {
		prefs[i] = rng.Intn(nbits)
	}
	var units int64
	op := func() error {
		sink := 0
		for run := 1; run <= 64; run *= 2 {
			sink += s.FindRun(0, nbits, run)
			for _, p := range prefs {
				sink += s.FindRunNearest(0, nbits, run, p)
			}
		}
		if sink == 0 {
			return fmt.Errorf("bitset.runscan: degenerate sink")
		}
		return nil
	}
	units = int64(7 * (1 + len(prefs))) // 7 run lengths × (FindRun + nearest sweeps)
	return &Instance{Op: op, Units: units}, nil
}

// setupAlloc measures the block-allocation path end to end by
// replaying the micro workload onto a fresh file system under the
// given policy. The plain-vs-realloc pair is the paper's comparison
// applied to our own allocator implementation.
func setupAlloc(policy ffs.Policy) func(fx *Fixture) (*Instance, error) {
	return func(fx *Fixture) (*Instance, error) {
		wl := fx.Build.Reconstructed
		op := func() error {
			_, err := aging.Replay(fx.Cfg.FsParams, policy, wl, aging.Options{})
			return err
		}
		return &Instance{Op: op, Units: int64(len(wl.Ops))}, nil
	}
}

// setupAgingDay measures single-day replay throughput: the micro
// workload's busiest day, rebased to day zero and replayed onto a
// fresh file system. ops/s falls out of Units; MB/s comes from the
// alloc.bytes_written counter the priming run published — the replay's
// own deterministic accounting, not a re-measurement.
func setupAgingDay(fx *Fixture) (*Instance, error) {
	day := busiestDay(fx.Build.Reconstructed)
	var ops []trace.Op
	for _, o := range fx.Build.Reconstructed.Ops {
		if o.Day == day {
			o.Day = 0
			ops = append(ops, o)
		}
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("perfbench: micro workload has no ops on day %d", day)
	}
	wl := &trace.Workload{Days: 1, Ops: ops}
	var primed *aging.Result
	op := func() error {
		res, err := aging.Replay(fx.Cfg.FsParams, core.Original{}, wl, aging.Options{})
		if err != nil {
			return err
		}
		primed = res
		return nil
	}
	// Prime once so the day's metrics are published before measurement.
	if err := op(); err != nil {
		return nil, err
	}
	fx.dayOnce.Do(func() {
		aging.PublishResult(fx.Obs.Scope("aging.day"), primed, wl)
	})
	inst := &Instance{Op: op, Units: int64(len(ops))}
	inst.Metrics = func(medianSec float64) map[string]float64 {
		written, err := fx.counter("aging.day.alloc.bytes_written")
		if err != nil || medianSec <= 0 {
			return nil
		}
		return map[string]float64{"mb_per_s": float64(written) / 1e6 / medianSec}
	}
	return inst, nil
}

// setupReplaySteady measures the steady-state replay loop with a
// state-neutral operation cycle: a fixed set of files is created and
// deleted through aging.Stepper — the exact production op path — so
// every repetition starts and ends with the same live-file population.
// After the warmup cycles (which grow the File arena, the directory
// entry tables, and the ID/name caches to their steady sizes) the
// cycle performs zero heap allocations per operation; the benchmark
// carries a hard allocs/op budget of 0 that -check enforces, and
// TestSteadyReplayZeroAllocs pins the same property with
// testing.AllocsPerRun.
func setupReplaySteady(fx *Fixture) (*Instance, error) {
	fsys, err := ffs.NewFileSystem(fx.Cfg.FsParams, core.Realloc{})
	if err != nil {
		return nil, err
	}
	st, err := aging.NewStepper(fsys)
	if err != nil {
		return nil, err
	}
	ops := steadyCycle(fx.Cfg.FsParams.NumCg, fx.Seed)
	op := func() error {
		for i := range ops {
			if err := st.Apply(ops[i]); err != nil {
				return err
			}
		}
		if st.NoSpace > 0 {
			return fmt.Errorf("replay.steady: cycle ran out of space")
		}
		return nil
	}
	// Two priming cycles: the first populates the caches and pools, the
	// second lets recycled capacities settle.
	if err := op(); err != nil {
		return nil, err
	}
	if err := op(); err != nil {
		return nil, err
	}
	return &Instance{Op: op, Units: int64(len(ops))}, nil
}

// setupSpanEmit measures the span tracer's steady-state emission path:
// nested Start/End pairs with mixed-type attributes against a warmed
// ring, the shape PublishResult drives per replay op. After warmup the
// ring slots, the open stack, and each slot's attr backing are at
// capacity and every emission reuses them; the benchmark carries a hard
// allocs/op budget of 0 that -check enforces, mirroring
// TestSpanEmitSteadyStateAllocs.
func setupSpanEmit(fx *Fixture) (*Instance, error) {
	tr := obs.NewRegistry().SpanTracerCap("bench", 256)
	const cycles = 512
	op := func() error {
		t := 0.0
		for i := 0; i < cycles; i++ {
			tr.Start(t, "outer", obs.I("file", int64(i)), obs.S("kind", "create"))
			tr.Start(t+0.25, "alloc", obs.F("bytes", 4096))
			tr.End(t+0.5, obs.B("contig", true))
			tr.End(t + 1)
			t += 1
		}
		if tr.OpenDepth() != 0 {
			return fmt.Errorf("span.emit: unbalanced cycle left %d spans open", tr.OpenDepth())
		}
		return nil
	}
	// Two warmup ops: the first grows the ring to capacity, the second
	// lets recycled attr backings settle.
	if err := op(); err != nil {
		return nil, err
	}
	if err := op(); err != nil {
		return nil, err
	}
	return &Instance{Op: op, Units: 2 * cycles}, nil
}

// steadyCycle builds one state-neutral op cycle: create a working set
// of files across every group (sizes spanning the frag, full-block,
// and indirect paths), rewrite a third of them, then delete them all.
func steadyCycle(numCg int, seed int64) []trace.Op {
	rng := rand.New(rand.NewSource(seed + 3))
	sizes := []int64{600, 2 << 10, 7 << 10, 64 << 10, 300 << 10}
	const perCg = 8
	var ops []trace.Op
	id := int64(1)
	var created []trace.Op
	for cg := 0; cg < numCg; cg++ {
		for k := 0; k < perCg; k++ {
			op := trace.Op{
				Day: 0, Sec: float64(len(ops)), Kind: trace.OpCreate,
				ID: id, Cg: cg, Size: sizes[rng.Intn(len(sizes))],
			}
			ops = append(ops, op)
			created = append(created, op)
			id++
		}
	}
	for i, c := range created {
		if i%3 == 0 {
			ops = append(ops, trace.Op{
				Day: 0, Sec: float64(len(ops)), Kind: trace.OpRewrite,
				ID: c.ID, Cg: c.Cg, Size: c.Size,
			})
		}
	}
	for _, c := range created {
		ops = append(ops, trace.Op{
			Day: 0, Sec: float64(len(ops)), Kind: trace.OpDelete,
			ID: c.ID, Cg: c.Cg,
		})
	}
	return ops
}

// busiestDay returns the day carrying the most operations (lowest day
// wins ties, so the choice is deterministic).
func busiestDay(wl *trace.Workload) int {
	counts := make([]int, wl.Days+1)
	for _, o := range wl.Ops {
		if o.Day >= 0 && o.Day < len(counts) {
			counts[o.Day]++
		}
	}
	best, bestN := 0, -1
	for d, n := range counts {
		if n > bestN {
			best, bestN = d, n
		}
	}
	return best
}

// setupLayoutRescan measures the full O(files × blocks) layout rescan
// over the aged image — the cross-check path behind -slowscore.
func setupLayoutRescan(fx *Fixture) (*Instance, error) {
	fsys := fx.AgedFFS.Fs
	op := func() error {
		if agg := layout.FsAggregate(fsys); agg < 0 || agg > 1 {
			return fmt.Errorf("layout.rescan: aggregate %v out of range", agg)
		}
		return nil
	}
	return &Instance{Op: op, Units: 1}, nil
}

// setupLayoutIncremental measures the allocator-maintained O(1)
// counters the daily score now comes from; the loop amortizes the
// sub-nanosecond read into a measurable work unit.
func setupLayoutIncremental(fx *Fixture) (*Instance, error) {
	const inner = 4096
	fsys := fx.AgedFFS.Fs
	want := layout.FsAggregate(fsys)
	if got := fsys.LayoutScore(); got != want {
		return nil, fmt.Errorf("perfbench: incremental score %v != rescan %v", got, want)
	}
	op := func() error {
		var sink float64
		for i := 0; i < inner; i++ {
			sink += fsys.LayoutScore()
		}
		if sink < 0 {
			return fmt.Errorf("layout.incremental: negative sink")
		}
		return nil
	}
	return &Instance{Op: op, Units: inner}, nil
}

// setupDiskRequests measures the disk model's request loop: a seeded,
// fixed mix of sequential bursts and random jumps, reads and writes,
// on a fresh disk per repetition (so cache state is identical every
// time). The MB/s metric reuses the disk's own Stats accounting from a
// priming run.
func setupDiskRequests(fx *Fixture) (*Instance, error) {
	p := fx.Cfg.DiskParams
	total := p.Geom.TotalSectors()
	rng := rand.New(rand.NewSource(fx.Seed + 2))
	type req struct {
		lba   int64
		nsect int
		write bool
	}
	const nreqs = 4096
	reqs := make([]req, 0, nreqs)
	lba := int64(0)
	for len(reqs) < nreqs {
		// A burst of sequential requests from a random start, ~30% writes.
		lba = rng.Int63n(total - 1024)
		burst := 1 + rng.Intn(8)
		write := rng.Float64() < 0.3
		for b := 0; b < burst && len(reqs) < nreqs; b++ {
			nsect := 8 << rng.Intn(4) // 8..64 sectors
			reqs = append(reqs, req{lba, nsect, write})
			lba += int64(nsect)
		}
	}
	op := func() error {
		d := disk.New(p)
		for _, r := range reqs {
			if r.write {
				d.Write(r.lba, r.nsect)
			} else {
				d.Read(r.lba, r.nsect)
			}
		}
		return nil
	}
	// Prime once for the deterministic byte count.
	d := disk.New(p)
	for _, r := range reqs {
		if r.write {
			d.Write(r.lba, r.nsect)
		} else {
			d.Read(r.lba, r.nsect)
		}
	}
	st := d.Stats()
	bytesMoved := (st.SectorsRead + st.SectorsWritten) * int64(p.Geom.SectorSize)
	inst := &Instance{Op: op, Units: nreqs}
	inst.Metrics = func(medianSec float64) map[string]float64 {
		if medianSec <= 0 {
			return nil
		}
		return map[string]float64{"mb_per_s": float64(bytesMoved) / 1e6 / medianSec}
	}
	return inst, nil
}

// setupClone measures ffs.Clone of the aged realloc image — the cost
// every cached-image consumer and every benchmark run pays.
func setupClone(fx *Fixture) (*Instance, error) {
	fsys := fx.AgedRealloc.Fs
	op := func() error {
		if c := fsys.Clone(); c == nil {
			return fmt.Errorf("ffs.clone: nil clone")
		}
		return nil
	}
	return &Instance{Op: op, Units: 1}, nil
}

// fixtureCheckpoint builds the checkpoint the codec benchmarks
// exercise: the aged micro image with its replay cursor and series,
// exactly what aging emits at a checkpoint boundary.
func fixtureCheckpoint(fx *Fixture) (*trace.Checkpoint, error) {
	wl := fx.Build.Reconstructed
	res := fx.AgedFFS
	var img bytes.Buffer
	if err := res.Fs.SaveImage(&img); err != nil {
		return nil, fmt.Errorf("perfbench: serializing fixture image: %w", err)
	}
	return &trace.Checkpoint{
		Day:          wl.Days - 1,
		NextOp:       len(wl.Ops),
		SkippedOps:   int64(res.SkippedOps),
		NoSpaceOps:   int64(res.NoSpaceOps),
		FaultedOps:   int64(res.FaultedOps),
		LayoutByDay:  res.LayoutByDay.Values(),
		UtilByDay:    res.UtilByDay.Values(),
		WorkloadHash: trace.HashWorkload(wl),
		Image:        img.Bytes(),
	}, nil
}

// setupCheckpointEncode measures checkpoint serialization (varint
// payload + CRC).
func setupCheckpointEncode(fx *Fixture) (*Instance, error) {
	cp, err := fixtureCheckpoint(fx)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := trace.WriteCheckpoint(&buf, cp); err != nil {
		return nil, err
	}
	size := buf.Len()
	op := func() error {
		buf.Reset()
		return trace.WriteCheckpoint(&buf, cp)
	}
	inst := &Instance{Op: op, Units: 1}
	inst.Metrics = func(medianSec float64) map[string]float64 {
		if medianSec <= 0 {
			return nil
		}
		return map[string]float64{"mb_per_s": float64(size) / 1e6 / medianSec}
	}
	return inst, nil
}

// setupCheckpointDecode measures checkpoint deserialization, CRC check
// included.
func setupCheckpointDecode(fx *Fixture) (*Instance, error) {
	cp, err := fixtureCheckpoint(fx)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := trace.WriteCheckpoint(&buf, cp); err != nil {
		return nil, err
	}
	enc := buf.Bytes()
	op := func() error {
		_, err := trace.ReadCheckpoint(bytes.NewReader(enc))
		return err
	}
	inst := &Instance{Op: op, Units: 1}
	inst.Metrics = func(medianSec float64) map[string]float64 {
		if medianSec <= 0 {
			return nil
		}
		return map[string]float64{"mb_per_s": float64(len(enc)) / 1e6 / medianSec}
	}
	return inst, nil
}

// setupWorkloadBuild measures the uncached Section 3.1 pipeline at
// micro scale: reference simulation, snapshots, diff, NFS merge.
func setupWorkloadBuild(fx *Fixture) (*Instance, error) {
	wc, nc := fx.Cfg.WorkloadCfg, fx.Cfg.NFSCfg
	op := func() error {
		_, err := workload.BuildWorkload(wc, nc)
		return err
	}
	return &Instance{Op: op, Units: int64(len(fx.Build.Reconstructed.Ops))}, nil
}

// setupSeqSweep measures the Figure 4 sequential create/write + read
// sweep on the aged realloc image. The byte total driving the MB/s
// metric comes from the sweep's own aggregated disk accounting.
func setupSeqSweep(fx *Fixture) (*Instance, error) {
	day := fx.Cfg.WorkloadCfg.Days
	rs, err := bench.SequentialSweep(fx.AgedRealloc.Fs, fx.Cfg.DiskParams,
		fx.Cfg.BenchSizes, fx.Cfg.BenchTotal, day)
	if err != nil {
		return nil, err
	}
	st := experiments.AggregateSeqStats(rs)
	bytesMoved := (st.SectorsRead + st.SectorsWritten) * int64(fx.Cfg.DiskParams.Geom.SectorSize)
	op := func() error {
		_, err := bench.SequentialSweep(fx.AgedRealloc.Fs, fx.Cfg.DiskParams,
			fx.Cfg.BenchSizes, fx.Cfg.BenchTotal, day)
		return err
	}
	inst := &Instance{Op: op, Units: int64(len(fx.Cfg.BenchSizes))}
	inst.Metrics = func(medianSec float64) map[string]float64 {
		if medianSec <= 0 {
			return nil
		}
		return map[string]float64{"mb_per_s": float64(bytesMoved) / 1e6 / medianSec}
	}
	return inst, nil
}

// setupHotFiles measures the Table 2 hot-file benchmark on both aged
// images.
func setupHotFiles(fx *Fixture) (*Instance, error) {
	from := fx.Cfg.WorkloadCfg.Days - fx.Cfg.HotWindow
	op := func() error {
		if _, err := bench.HotFiles(fx.AgedFFS.Fs, fx.Cfg.DiskParams, from); err != nil {
			return err
		}
		_, err := bench.HotFiles(fx.AgedRealloc.Fs, fx.Cfg.DiskParams, from)
		return err
	}
	return &Instance{Op: op, Units: 2}, nil
}
