package perfbench

import (
	"testing"
)

// TestSteadyReplayZeroAllocs pins the tentpole property directly with
// the runtime's own counter: after warmup, one full state-neutral
// replay cycle — creates, rewrites, and deletes through the production
// aging.Stepper path — performs zero heap allocations.
func TestSteadyReplayZeroAllocs(t *testing.T) {
	fx, err := NewFixture(1996)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := setupReplaySteady(fx)
	if err != nil {
		t.Fatal(err)
	}
	// Setup already primed two cycles; a couple more let every recycled
	// capacity reach its steady state before the measured runs.
	for i := 0; i < 2; i++ {
		if err := inst.Op(); err != nil {
			t.Fatal(err)
		}
	}
	var opErr error
	allocs := testing.AllocsPerRun(5, func() {
		if err := inst.Op(); err != nil {
			opErr = err
		}
	})
	if opErr != nil {
		t.Fatal(opErr)
	}
	if allocs != 0 {
		t.Fatalf("steady replay cycle allocates: %v allocs/cycle, want 0", allocs)
	}
}
