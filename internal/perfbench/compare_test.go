package perfbench

import (
	"bytes"
	"strings"
	"testing"
)

// synthReport builds a report whose single benchmark has the given
// fixed samples, summarized exactly like a real run.
func synthReport(t *testing.T, name string, samples []float64) *Report {
	t.Helper()
	res := Summarize(name, &Instance{Units: 100}, samples, DefaultOptions(1996))
	return &Report{
		Schema:     SchemaVersion,
		Suite:      "quick",
		Seed:       1996,
		Reps:       len(samples),
		Confidence: 0.95,
		Resamples:  200,
		Benchmarks: []Result{res},
	}
}

func deltaFor(t *testing.T, base, cand []float64) Delta {
	t.Helper()
	deltas := Compare(synthReport(t, "bm", base), synthReport(t, "bm", cand), 10)
	if len(deltas) != 1 {
		t.Fatalf("got %d deltas, want 1", len(deltas))
	}
	return deltas[0]
}

// Tight sample sets around a center: spread small relative to the
// center, so the bootstrap CIs are narrow.
func tight(center float64) []float64 {
	return []float64{center, center * 1.01, center * 0.99, center, center * 1.005, center * 0.995, center}
}

// wide is a noisy sample set: same median as tight(center) but with a
// spread that swallows a 2x movement.
func wide(center float64) []float64 {
	return []float64{center, center * 2.5, center * 0.4, center * 1.8, center * 0.6, center * 2.2, center * 0.5}
}

func TestCompareNoChange(t *testing.T) {
	d := deltaFor(t, tight(1000), tight(1000))
	if d.Verdict != VerdictSame {
		t.Fatalf("identical runs: verdict %q, want %q (pct %.1f)", d.Verdict, VerdictSame, d.Pct)
	}
	if ExitCode([]Delta{d}) != 0 {
		t.Errorf("no-change comparison must exit 0")
	}
}

func TestCompareRealRegression(t *testing.T) {
	d := deltaFor(t, tight(1000), tight(2000))
	if d.Verdict != VerdictSlower {
		t.Fatalf("2x slowdown with tight CIs: verdict %q, want %q", d.Verdict, VerdictSlower)
	}
	if d.Pct < 90 || d.Pct > 110 {
		t.Errorf("delta %.1f%%, want ~100%%", d.Pct)
	}
	if ExitCode([]Delta{d}) != 1 {
		t.Errorf("confirmed regression must exit 1")
	}
}

func TestCompareRealImprovement(t *testing.T) {
	d := deltaFor(t, tight(2000), tight(1000))
	if d.Verdict != VerdictFaster {
		t.Fatalf("2x speedup with tight CIs: verdict %q, want %q", d.Verdict, VerdictFaster)
	}
	if ExitCode([]Delta{d}) != 0 {
		t.Errorf("improvement must exit 0")
	}
}

func TestCompareNoisyOverlapIsNotARegression(t *testing.T) {
	// Median moves well past the 10% tolerance, but both sample sets
	// are so noisy that the bootstrap intervals overlap: the detector
	// must call it noise, and -check must pass.
	d := deltaFor(t, wide(1000), wide(1400))
	if d.Verdict != VerdictNoise {
		t.Fatalf("noisy overlap: verdict %q, want %q (pct %.1f)", d.Verdict, VerdictNoise, d.Pct)
	}
	if ExitCode([]Delta{d}) != 0 {
		t.Errorf("noisy-but-overlapping comparison must exit 0")
	}
}

func TestCompareSmallDriftWithinTolerance(t *testing.T) {
	// 5% movement with disjoint CIs is still under the 10% tolerance:
	// both gates must agree before anything counts.
	d := deltaFor(t, tight(1000), tight(1050))
	if d.Verdict != VerdictSame {
		t.Fatalf("5%% drift: verdict %q, want %q", d.Verdict, VerdictSame)
	}
}

func TestCompareMissingAndNew(t *testing.T) {
	base := synthReport(t, "old", tight(1000))
	cand := synthReport(t, "new", tight(1000))
	deltas := Compare(base, cand, 10)
	var verdicts []Verdict
	for _, d := range deltas {
		verdicts = append(verdicts, d.Verdict)
	}
	if len(deltas) != 2 || verdicts[0] != VerdictNew || verdicts[1] != VerdictMissing {
		t.Fatalf("got verdicts %v, want [new missing]", verdicts)
	}
	// A vanished benchmark fails the check; a new one alone does not.
	if ExitCode(deltas) != 1 {
		t.Errorf("missing benchmark must fail the check")
	}
	if ExitCode(deltas[:1]) != 0 {
		t.Errorf("a new benchmark alone must pass")
	}
	// Across different suites (quick vs full), absent benchmarks are
	// expected, not regressions.
	full := synthReport(t, "new", tight(1000))
	full.Suite = "full"
	if code := ExitCode(Compare(base, full, 10)); code != 0 {
		t.Errorf("cross-suite comparison flagged missing benchmarks: exit %d", code)
	}
}

func TestDeltaTableRenders(t *testing.T) {
	deltas := Compare(synthReport(t, "bm", tight(1000)), synthReport(t, "bm", tight(2000)), 10)
	var buf bytes.Buffer
	if err := WriteDeltaTable(&buf, deltas); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"benchmark", "bm", "slower", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("delta table missing %q:\n%s", want, out)
		}
	}
}
