package perfbench

import "time"

// The measurement core's only contact with the wall clock. perfbench
// is covered by ffsvet's detrand analyzer, so these two functions are
// the package's sanctioned timing primitives: samples they produce are
// reported, never fed back into simulated state.

// now returns the monotonic clock reading a sample starts from.
func now() time.Time {
	//lint:ignore ffsvet/detrand wall-clock reads here ARE the measurement; samples are reported, never fed into simulated state
	return time.Now()
}

// since returns the elapsed time of one sample.
func since(t0 time.Time) time.Duration {
	//lint:ignore ffsvet/detrand wall-clock reads here ARE the measurement; samples are reported, never fed into simulated state
	return time.Since(t0)
}
