// Package perfbench is the repository's continuous-benchmarking
// harness: a registry of fixed-work measurements of the simulator's
// real hot paths (bitset run scans, block allocation under both
// policies, layout accounting, the disk model's request loop, aging
// replay, ffs.Clone, the checkpoint codec), a wall-clock measurement
// core with warmup and fixed repetition counts, and robust
// seeded-deterministic summaries (median, MAD, bootstrap confidence
// intervals) written to a versioned JSON report.
//
// The wall-clock timing samples themselves necessarily vary run to
// run; everything computed *from* a set of samples is a pure function
// of (samples, seed), so a report built from fixed samples is
// byte-identical across runs. cmd/perfbench drives this package from
// the command line, the root bench_test.go drives the same registry
// through `go test -bench`, and CI's bench-smoke job compares a fresh
// quick-suite run against the committed BENCH_6.json baseline with the
// noise-aware detector in compare.go.
//
// The package sits under ffsvet's detrand analyzer like every other
// deterministic package: wall-clock reads are confined to clock.go,
// where each one carries a justified suppression, and every random
// draw (fixture synthesis, bootstrap resampling) comes from an
// explicitly seeded generator.
package perfbench

// Benchmark is one registered measurement. Quick marks membership in
// the fast suite CI runs on every push; the weekly scheduled job and
// `-full` run everything.
type Benchmark struct {
	Name  string
	Quick bool
	// Setup builds the benchmark's closed-over state from the shared
	// fixture and returns the measured instance. Setup cost (image
	// clones, workload slicing, one priming run) is excluded from
	// measurement.
	Setup func(fx *Fixture) (*Instance, error)
	// CheckAllocs subjects the benchmark to the allocation budget:
	// -check fails when the measured allocs/op exceeds MaxAllocsPerOp.
	// A separate flag (not a sentinel value of the budget) so the
	// zero-valued entries above stay ungated.
	CheckAllocs    bool
	MaxAllocsPerOp float64
}

// Instance is a ready-to-measure benchmark: Op performs one fixed work
// unit — the same work every call, so repetitions are comparable —
// and Units says how many inner operations that unit contains (for
// ns/op and ops/s normalization).
type Instance struct {
	Op    func() error
	Units int64
	// Metrics, optional, derives benchmark-specific throughput numbers
	// from the measured median seconds per Op call. Implementations
	// read quantities an instrumented run already published (obs
	// counters, disk.Stats) rather than re-measuring them.
	Metrics func(medianSec float64) map[string]float64
}
