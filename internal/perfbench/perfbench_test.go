package perfbench

import (
	"bytes"
	"regexp"
	"sync"
	"testing"
)

// The fixture ages two micro images; build it once per test binary.
var (
	fxOnce sync.Once
	fxVal  *Fixture
	fxErr  error
)

func testFixture(t *testing.T) *Fixture {
	t.Helper()
	fxOnce.Do(func() { fxVal, fxErr = NewFixture(1996) })
	if fxErr != nil {
		t.Fatal(fxErr)
	}
	return fxVal
}

// TestReportBytesIdenticalForFixedSamples pins the determinism
// contract: a report assembled from fixed samples with the same seed
// marshals to identical bytes, run after run.
func TestReportBytesIdenticalForFixedSamples(t *testing.T) {
	samples := []float64{1200, 1180, 1250, 1190, 1210, 1205, 1195}
	build := func() []byte {
		inst := &Instance{Units: 64, Metrics: func(medianSec float64) map[string]float64 {
			return map[string]float64{"mb_per_s": 1e-6 / medianSec}
		}}
		rep := &Report{
			Schema:     SchemaVersion,
			Suite:      "quick",
			Seed:       1996,
			Reps:       len(samples),
			Confidence: 0.95,
			Resamples:  200,
			Benchmarks: []Result{Summarize("fixed", inst, samples, DefaultOptions(1996))},
		}
		var buf bytes.Buffer
		if err := WriteReport(&buf, rep); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("same samples + same seed produced different report bytes:\n%s\n----\n%s", a, b)
	}
}

// TestSummarizeSeedIndependentOfOrder: a benchmark's summary must not
// depend on which other benchmarks ran (the bootstrap seed mixes the
// name, not a shared stream).
func TestSummarizeSeedIndependentOfOrder(t *testing.T) {
	samples := []float64{900, 1100, 1000, 950, 1050, 980, 1020}
	opts := DefaultOptions(7)
	first := Summarize("alpha", &Instance{Units: 1}, samples, opts)
	// "Run" another benchmark in between; alpha's summary must not move.
	_ = Summarize("beta", &Instance{Units: 1}, samples, opts)
	again := Summarize("alpha", &Instance{Units: 1}, samples, opts)
	if first.CILoNs != again.CILoNs || first.CIHiNs != again.CIHiNs {
		t.Fatalf("alpha's CI changed between calls: [%v,%v] vs [%v,%v]",
			first.CILoNs, first.CIHiNs, again.CILoNs, again.CIHiNs)
	}
	other := Summarize("beta", &Instance{Units: 1}, samples, opts)
	if other.CILoNs == first.CILoNs && other.CIHiNs == first.CIHiNs {
		t.Logf("note: alpha and beta drew identical CIs; allowed but unexpected")
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := synthReport(t, "rt", []float64{100, 105, 95, 102, 98, 101, 99})
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || len(got.Benchmarks) != 1 || got.Benchmarks[0].Name != "rt" {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Benchmarks[0].MedianNs != rep.Benchmarks[0].MedianNs {
		t.Errorf("median changed in round trip")
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	if _, err := ReadReport(bytes.NewReader([]byte(`{"schema":"something/v9"}`))); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestQuickSuiteRuns drives the real quick suite (tiny rep count) end
// to end on the micro fixture: every registered quick benchmark must
// set up, run, and summarize.
func TestQuickSuiteRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("ages the micro fixture")
	}
	fx := testFixture(t)
	rep, err := RunSuite(fx, Options{Reps: 2, Warmup: 0, Seed: 1996})
	if err != nil {
		t.Fatal(err)
	}
	var quick int
	for _, bm := range All() {
		if bm.Quick {
			quick++
		}
	}
	if len(rep.Benchmarks) != quick {
		t.Fatalf("quick suite ran %d benchmarks, registry has %d quick", len(rep.Benchmarks), quick)
	}
	for _, r := range rep.Benchmarks {
		if r.MedianNs <= 0 {
			t.Errorf("%s: non-positive median %v", r.Name, r.MedianNs)
		}
		if r.CILoNs > r.MedianNs || r.MedianNs > r.CIHiNs {
			t.Errorf("%s: median %v outside CI [%v, %v]", r.Name, r.MedianNs, r.CILoNs, r.CIHiNs)
		}
		if _, ok := r.Metrics["ops_per_s"]; !ok {
			t.Errorf("%s: missing ops_per_s metric", r.Name)
		}
	}
	// The throughput-bearing benchmarks must have derived their MB/s
	// from published accounting.
	for _, name := range []string{"aging.day", "disk.requests", "checkpoint.encode", "checkpoint.decode"} {
		r := rep.Find(name)
		if r == nil {
			t.Fatalf("quick suite missing %s", name)
		}
		if v := r.Metrics["mb_per_s"]; v <= 0 {
			t.Errorf("%s: mb_per_s = %v, want > 0", name, v)
		}
	}
}

// TestFullSuiteSetupsWork verifies the non-quick setups construct and
// run once (single rep, filtered to full-only entries).
func TestFullSuiteSetupsWork(t *testing.T) {
	if testing.Short() {
		t.Skip("ages the micro fixture")
	}
	fx := testFixture(t)
	rep, err := RunSuite(fx, Options{Reps: 1, Warmup: 0, Seed: 1996, Full: true,
		Run: regexp.MustCompile(`^(workload\.build|bench\.)`)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("full-only filter ran %d benchmarks, want 3", len(rep.Benchmarks))
	}
	if rep.Suite != "full" {
		t.Errorf("suite = %q, want full", rep.Suite)
	}
}

// TestCheckCatchesInjectedSlowdown pins the acceptance criterion: a
// deliberate slowdown of one benchmark against an otherwise-identical
// baseline makes the detector exit nonzero.
func TestCheckCatchesInjectedSlowdown(t *testing.T) {
	if testing.Short() {
		t.Skip("ages the micro fixture")
	}
	fx := testFixture(t)
	opts := Options{Reps: 3, Warmup: 0, Seed: 1996, Run: regexp.MustCompile(`^layout\.`)}
	base, err := RunSuite(fx, opts)
	if err != nil {
		t.Fatal(err)
	}
	cand := *base
	cand.Benchmarks = append([]Result(nil), base.Benchmarks...)
	// Inject a 10x slowdown into layout.rescan: scale the whole summary
	// the way a real regression would move it.
	for i := range cand.Benchmarks {
		if cand.Benchmarks[i].Name == "layout.rescan" {
			r := &cand.Benchmarks[i]
			r.MedianNs *= 10
			r.CILoNs *= 10
			r.CIHiNs *= 10
			r.NsPerOp *= 10
		}
	}
	deltas := Compare(base, &cand, 25)
	if code := ExitCode(deltas); code != 1 {
		t.Fatalf("injected 10x slowdown: exit code %d, want 1 (deltas %+v)", code, deltas)
	}
	// And the unmodified run against itself stays clean.
	if code := ExitCode(Compare(base, base, 25)); code != 0 {
		t.Fatalf("self-comparison: exit code %d, want 0", code)
	}
}
