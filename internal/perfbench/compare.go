package perfbench

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// The regression detector. Two reports are compared benchmark by
// benchmark on the median; a difference counts only when BOTH noise
// tests agree it is real:
//
//   - the medians differ by more than the tolerance percentage, AND
//   - the bootstrap confidence intervals do not overlap.
//
// CI overlap is the noise-awareness: on a loaded machine a benchmark's
// samples spread out, the intervals widen, and a jittery median stops
// being actionable instead of failing the build.

// Verdict classifies one benchmark's baseline/candidate pair.
type Verdict string

const (
	// VerdictSame: medians within tolerance.
	VerdictSame Verdict = "same"
	// VerdictNoise: medians differ beyond tolerance but the confidence
	// intervals overlap — not statistically distinguishable.
	VerdictNoise Verdict = "noise"
	// VerdictFaster: a real improvement (beyond tolerance, disjoint
	// intervals, candidate lower).
	VerdictFaster Verdict = "faster"
	// VerdictSlower: a real regression. Fails -check.
	VerdictSlower Verdict = "slower"
	// VerdictMissing: present in the baseline but not the candidate.
	// Fails -check when the suites match: silently dropping a
	// benchmark would blind the trajectory.
	VerdictMissing Verdict = "missing"
	// VerdictNew: present in the candidate only; informational.
	VerdictNew Verdict = "new"
)

// Delta is one benchmark's comparison row.
type Delta struct {
	Name         string
	BaseMedianNs float64
	CandMedianNs float64
	// Pct is the median movement in percent; positive is slower.
	Pct     float64
	Verdict Verdict
}

// Compare diffs candidate against baseline with the given tolerance
// (percent median movement below which differences are ignored).
// Rows come back in candidate-then-baseline name order.
func Compare(base, cand *Report, tolPct float64) []Delta {
	sameSuite := base.Suite == cand.Suite
	var deltas []Delta
	for _, c := range cand.Benchmarks {
		b := base.Find(c.Name)
		if b == nil {
			deltas = append(deltas, Delta{Name: c.Name, CandMedianNs: c.MedianNs, Verdict: VerdictNew})
			continue
		}
		deltas = append(deltas, compareOne(b, &c, tolPct))
	}
	for _, b := range base.Benchmarks {
		if cand.Find(b.Name) == nil && sameSuite {
			deltas = append(deltas, Delta{Name: b.Name, BaseMedianNs: b.MedianNs, Verdict: VerdictMissing})
		}
	}
	return deltas
}

func compareOne(b, c *Result, tolPct float64) Delta {
	d := Delta{
		Name:         b.Name,
		BaseMedianNs: b.MedianNs,
		CandMedianNs: c.MedianNs,
	}
	if b.MedianNs > 0 {
		d.Pct = (c.MedianNs - b.MedianNs) / b.MedianNs * 100
	}
	overlap := c.CILoNs <= b.CIHiNs && b.CILoNs <= c.CIHiNs
	switch {
	case d.Pct > tolPct && !overlap:
		d.Verdict = VerdictSlower
	case d.Pct < -tolPct && !overlap:
		d.Verdict = VerdictFaster
	case d.Pct > tolPct || d.Pct < -tolPct:
		d.Verdict = VerdictNoise
	default:
		d.Verdict = VerdictSame
	}
	return d
}

// Regressions returns the deltas that should fail a -check run:
// confirmed slowdowns and benchmarks that vanished from a same-suite
// candidate.
func Regressions(deltas []Delta) []Delta {
	var bad []Delta
	for _, d := range deltas {
		if d.Verdict == VerdictSlower || d.Verdict == VerdictMissing {
			bad = append(bad, d)
		}
	}
	return bad
}

// BudgetViolations checks a report against the registry's allocation
// budgets: every benchmark registered with CheckAllocs whose measured
// allocs/op exceeds its MaxAllocsPerOp yields one message naming the
// benchmark. Unlike the median comparison this needs no baseline — the
// budget is absolute.
func BudgetViolations(rep *Report) []string {
	var bad []string
	for _, bm := range All() {
		if !bm.CheckAllocs {
			continue
		}
		r := rep.Find(bm.Name)
		if r == nil {
			continue // not selected this run
		}
		if r.AllocsPerOp > bm.MaxAllocsPerOp {
			bad = append(bad, fmt.Sprintf("%s: %.3f allocs/op exceeds budget %.3f",
				bm.Name, r.AllocsPerOp, bm.MaxAllocsPerOp))
		}
	}
	return bad
}

// ExitCode maps a comparison to the process exit status cmd/perfbench
// uses: 0 clean, 1 regression.
func ExitCode(deltas []Delta) int {
	if len(Regressions(deltas)) > 0 {
		return 1
	}
	return 0
}

// WriteDeltaTable renders the per-benchmark comparison.
func WriteDeltaTable(w io.Writer, deltas []Delta) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tbase median\tnew median\tdelta\tverdict")
	for _, d := range deltas {
		base, cand, pct := "-", "-", "-"
		if d.BaseMedianNs > 0 {
			base = formatNs(d.BaseMedianNs)
		}
		if d.CandMedianNs > 0 {
			cand = formatNs(d.CandMedianNs)
		}
		if d.Verdict != VerdictNew && d.Verdict != VerdictMissing {
			pct = fmt.Sprintf("%+.1f%%", d.Pct)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", d.Name, base, cand, pct, d.Verdict)
	}
	return tw.Flush()
}

// formatNs renders a nanosecond duration with a human unit.
func formatNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
