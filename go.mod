module ffsage

go 1.22
