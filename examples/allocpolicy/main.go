// Allocpolicy: a microscope on one allocation decision. Fragment a
// cylinder group's free space into one-block holes plus a single free
// cluster, then create the same 32 KB file under both policies and
// print exactly where each block landed — the scenario from the paper's
// Section 2: "if there is just one free block in a good location and a
// cluster of ten free blocks in a slightly worse location, FFS will
// allocate the single free block".
package main

import (
	"fmt"
	"log"

	"ffsage/internal/core"
	"ffsage/internal/ffs"
)

func buildFragmentedFs(policy ffs.Policy) (*ffs.FileSystem, error) {
	p := ffs.PaperParams()
	p.SizeBytes = 16 << 20
	p.NumCg = 4
	fsys, err := ffs.NewFileSystem(p, policy)
	if err != nil {
		return nil, err
	}
	// Fill group 0 with single-block files...
	var fill []*ffs.File
	for i := 0; fsys.Cg(0).NBFree() > 0; i++ {
		f, err := fsys.CreateFile(fsys.Root(), fmt.Sprintf("fill%04d", i), 8<<10, 0)
		if err != nil {
			return nil, err
		}
		if fsys.CgOf(f.Blocks[0]).Index == 0 {
			fill = append(fill, f)
		}
	}
	// ...then free every other one in a band (one-block holes), and a
	// run of eight consecutive ones (the free cluster).
	for i := 10; i < 50; i += 2 {
		if err := fsys.Delete(fill[i]); err != nil {
			return nil, err
		}
	}
	fpb := fsys.FragsPerBlock()
	for j := 52; j+8 < len(fill); j++ {
		ok := true
		for k := 1; k < 8; k++ {
			if fill[j+k].Blocks[0] != fill[j].Blocks[0]+ffs.Daddr(k*fpb) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for k := 0; k < 8; k++ {
			if err := fsys.Delete(fill[j+k]); err != nil {
				return nil, err
			}
		}
		return fsys, nil
	}
	return nil, fmt.Errorf("no contiguous fill files found")
}

func main() {
	for _, policy := range []ffs.Policy{core.Original{}, core.Realloc{}} {
		fsys, err := buildFragmentedFs(policy)
		if err != nil {
			log.Fatal(err)
		}
		f, err := fsys.CreateFile(fsys.Root(), "victim", 32<<10, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s placed the 32 KB file at blocks:", policy.Name())
		fpb := ffs.Daddr(fsys.FragsPerBlock())
		for _, b := range f.Blocks {
			fmt.Printf(" %d", b/fpb)
		}
		if f.RunIsContiguous(0, len(f.Blocks), fsys.FragsPerBlock()) {
			fmt.Printf("   → contiguous (in the free cluster)\n")
		} else {
			fmt.Printf("   → scattered across the one-block holes\n")
		}
		fmt.Printf("             relocations performed: %d\n\n", fsys.Stats.ClusterMoves)
	}
	fmt.Println("The original policy takes the first free block it meets, chopping the")
	fmt.Println("file across the holes; the realloc policy gathers the dirty blocks and")
	fmt.Println("moves them into the cluster before they ever reach the disk.")
}
