// Quickstart: create a simulated FFS with the realloc allocation
// policy, write a few files, and look at their on-disk layout and the
// time the modelled disk would take to read them back.
package main

import (
	"fmt"
	"log"

	"ffsage/internal/core"
	"ffsage/internal/disk"
	"ffsage/internal/ffs"
	"ffsage/internal/layout"
)

func main() {
	// A 64 MB file system with the paper's block geometry (8 KB blocks,
	// 1 KB fragments, 56 KB clusters) under the realloc policy.
	params := ffs.PaperParams()
	params.SizeBytes = 64 << 20
	params.NumCg = 8
	fsys, err := ffs.NewFileSystem(params, core.Realloc{})
	if err != nil {
		log.Fatal(err)
	}

	// Create a project directory and a few files in it.
	dir, err := fsys.Mkdir(fsys.Root(), "project", 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range []struct {
		name string
		size int64
	}{
		{"notes.txt", 3 << 10},   // a fragment-tail file
		{"paper.ps", 96 << 10},   // exactly the twelve direct blocks
		{"trace.dat", 500 << 10}, // needs an indirect block
		{"checkpoint", 4 << 20},  // a big one
	} {
		if _, err := fsys.CreateFile(dir, f.name, f.size, 0); err != nil {
			log.Fatal(err)
		}
	}

	// Inspect the layout.
	fmt.Println("file layout:")
	for _, f := range layout.AllFiles(fsys) {
		score, blocks, ok := layout.FileScore(f, fsys.FragsPerBlock())
		extents := f.ExtentCount(fsys.FragsPerBlock())
		if !ok {
			fmt.Printf("  %-22s %8d bytes  (single block, no score)\n", f.Path(), f.Size)
			continue
		}
		fmt.Printf("  %-22s %8d bytes  score %.2f over %d blocks, %d extent(s)\n",
			f.Path(), f.Size, score, blocks+1, extents)
	}
	fmt.Printf("aggregate layout score: %.3f\n\n", layout.FsAggregate(fsys))

	// Time a sequential read of the biggest file on the modelled disk
	// (Seagate ST32430N behind a BusLogic 946C, as in the paper).
	d := disk.New(disk.PaperParams())
	part := disk.NewPartition(d, d.Params().Geom.TotalSectors()/4,
		params.SizeBytes/int64(d.Params().Geom.SectorSize))
	checkpoint, _ := fsys.Lookup(dir, "checkpoint")
	elapsed := 0.0
	for _, e := range checkpoint.ReadSequence(fsys.FragsPerBlock()) {
		off := int64(e.Addr) * int64(params.FragSize)
		elapsed += part.Read(off, int64(e.Frags)*int64(params.FragSize))
	}
	fmt.Printf("sequential read of %s (%d KB): %.1f ms → %.2f MB/s\n",
		checkpoint.Name, checkpoint.Size>>10, elapsed*1e3,
		float64(checkpoint.Size)/elapsed/1e6)
}
