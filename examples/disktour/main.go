// Disktour: the anatomy of the disk model — the seek curve, rotational
// cost, the track buffer's effect on sequential reads, and the lost
// rotation that makes sequential writes so much slower than reads,
// which is the physics behind the paper's Figure 4.
package main

import (
	"fmt"

	"ffsage/internal/disk"
)

func main() {
	p := disk.PaperParams()
	g := p.Geom
	fmt.Printf("Seagate ST32430N model: %.1f GB, %d RPM (%.2f ms/rev), media rate %.2f MB/s\n\n",
		float64(g.TotalBytes())/1e9, g.RPM, g.RotationPeriod()*1e3, g.MediaRate()/1e6)

	fmt.Println("seek curve (t = a + b·√d + c·d fitted to 1.7 ms / 11 ms / 21 ms):")
	for _, d := range []int{1, 10, 100, 500, 1330, 3000, 3991} {
		fmt.Printf("  %5d cylinders → %5.2f ms\n", d, p.Seek.Time(d)*1e3)
	}

	// Sequential reads vs writes of the same 1 MB region.
	fmt.Println("\nsequential 1 MB in 64 KB requests at the same location:")
	run := func(write bool) float64 {
		d := disk.New(p)
		part := disk.PaperPartition(d)
		elapsed := 0.0
		for off := int64(0); off < 1<<20; off += 64 << 10 {
			if write {
				elapsed += part.Write(off, 64<<10)
			} else {
				elapsed += part.Read(off, 64<<10)
			}
		}
		return elapsed
	}
	readT, writeT := run(false), run(true)
	fmt.Printf("  read:  %6.1f ms → %.2f MB/s (track buffer read-ahead: no lost rotations)\n",
		readT*1e3, (1<<20)/readT/1e6)
	fmt.Printf("  write: %6.1f ms → %.2f MB/s (each request waits ~a full rotation)\n",
		writeT*1e3, (1<<20)/writeT/1e6)

	// The paper's surprise: writes to slightly imperfect layouts beat
	// writes to perfectly sequential ones, because a short seek plus
	// rotational positioning costs less than a full lost rotation.
	fmt.Println("\nwriting 8 × 56 KB clusters, perfectly sequential vs 1-block gaps:")
	cluster := func(gapFrags int64) float64 {
		d := disk.New(p)
		part := disk.PaperPartition(d)
		elapsed, off := 0.0, int64(0)
		for i := 0; i < 8; i++ {
			elapsed += part.Write(off, 56<<10)
			off += 56<<10 + gapFrags*1024
		}
		return elapsed
	}
	seq, gapped := cluster(0), cluster(8)
	fmt.Printf("  contiguous:   %6.1f ms → %.2f MB/s\n", seq*1e3, 8*(56<<10)/seq/1e6)
	fmt.Printf("  8 KB gaps:    %6.1f ms → %.2f MB/s\n", gapped*1e3, 8*(56<<10)/gapped/1e6)
	fmt.Println("  — the gapped layout is FASTER to write: the head skips forward a few")
	fmt.Println("    sectors instead of waiting for the platter to come all the way around.")
	fmt.Println("    This is why the paper measured realloc file systems out-writing the raw disk.")
}
