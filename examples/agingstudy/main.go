// Agingstudy: a miniature of the paper's Figure 2 — age two file
// systems through the same two-month workload, one under the original
// FFS allocator and one under realloc, and plot the aggregate layout
// score day by day as an ASCII chart.
package main

import (
	"fmt"
	"log"
	"strings"

	"ffsage/internal/aging"
	"ffsage/internal/core"
	"ffsage/internal/ffs"
	"ffsage/internal/workload"
)

func main() {
	// A scaled-down workload: 60 days on a 128 MB file system.
	cfg := workload.DefaultConfig(42)
	cfg.Days = 60
	cfg.FsBytes = 128 << 20
	cfg.NumCg = 12
	cfg.RampDays = 15
	cfg.ChurnBytesPerDay = 26 << 20
	cfg.ShortPairsPerDay = 180
	cfg.LongSize.MaxBytes = 8 << 20
	build, err := workload.BuildWorkload(cfg, workload.DefaultNFSTraceConfig(43))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %v\n\n", build.Reconstructed.Summarize())

	params := ffs.PaperParams()
	params.SizeBytes = cfg.FsBytes
	params.NumCg = cfg.NumCg

	age := func(policy ffs.Policy) *aging.Result {
		res, err := aging.Replay(params, policy, build.Reconstructed, aging.Options{})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	orig := age(core.Original{})
	realloc := age(core.Realloc{})

	// ASCII chart: one row per 0.02 of layout score, columns are days.
	fmt.Println("aggregate layout score over time ('o' = ffs, 'r' = ffs+realloc, '*' = both):")
	const lo, hi = 0.70, 1.00
	rows := 15
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cfg.Days))
	}
	plot := func(series []byte, day int, v float64, mark byte) {
		r := int((hi - v) / (hi - lo) * float64(rows))
		if r < 0 {
			r = 0
		}
		if r >= rows {
			r = rows - 1
		}
		if grid[r][day] != ' ' && grid[r][day] != mark {
			grid[r][day] = '*'
		} else {
			grid[r][day] = mark
		}
		_ = series
	}
	for d := 0; d < cfg.Days; d++ {
		plot(nil, d, orig.LayoutByDay.At(d), 'o')
		plot(nil, d, realloc.LayoutByDay.At(d), 'r')
	}
	for i, row := range grid {
		label := hi - (float64(i)+0.5)/float64(rows)*(hi-lo)
		fmt.Printf(" %.2f |%s|\n", label, row)
	}
	fmt.Printf("       day 1%sday %d\n\n", strings.Repeat(" ", cfg.Days-10), cfg.Days)

	fmt.Printf("final layout: ffs %.3f vs ffs+realloc %.3f\n",
		orig.LayoutByDay.Final(), realloc.LayoutByDay.Final())
	fmt.Printf("non-optimal blocks: %.1f%% vs %.1f%% — the realloc policy roughly halves"+
		" fragmentation, as the paper found at full scale\n",
		100*(1-orig.LayoutByDay.Final()), 100*(1-realloc.LayoutByDay.Final()))
}
