// Package ffsage is a from-scratch reproduction of Smith & Seltzer,
// "A Comparison of FFS Disk Allocation Policies" (USENIX 1996): a
// 4.4BSD FFS block-allocation simulator with the original and realloc
// allocation policies, a file-system aging pipeline, a timing model of
// the paper's disk, and a benchmark harness that regenerates every
// table and figure of the paper's evaluation.
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory); cmd/repro runs the complete evaluation; the
// benchmarks in bench_test.go regenerate each exhibit at reduced scale.
package ffsage
