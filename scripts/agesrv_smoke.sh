#!/usr/bin/env bash
# agesrv_smoke.sh — end-to-end crash-safety check for the aging daemon.
#
# Runs the same job twice through a real agesrv process: once
# uninterrupted, once with the daemon SIGKILLed mid-run and restarted
# over the same state directory. The restarted daemon must replay its
# queue WAL, resume the job from its latest checkpoint exactly once,
# and produce artifacts byte-identical to the uninterrupted run.
#
# Usage: scripts/agesrv_smoke.sh [path-to-agesrv]
set -euo pipefail

AGESRV=${1:-bin/agesrv}
ADDR=127.0.0.1:8399
URL="http://$ADDR"
WORK=$(mktemp -d)
DAEMON_PID=
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

SPEC='{"id":"smoke","days":60,"seed":1996,"checkpoint_days":5}'

start_daemon() { # $1: state dir
    "$AGESRV" -addr "$ADDR" -dir "$1" -workers 1 &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        curl -sf "$URL/jobs" > /dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "daemon never came up" >&2
    exit 1
}

wait_state() { # $1: job id, $2: state
    for _ in $(seq 1 600); do
        state=$(curl -sf "$URL/jobs/$1" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p')
        [ "$state" = "$2" ] && return 0
        if [ "$state" = dead ]; then
            echo "job $1 dead-lettered:" >&2
            curl -sf "$URL/jobs/$1" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "job $1 never reached $2 (last: ${state:-none})" >&2
    exit 1
}

echo "== reference run (uninterrupted)"
start_daemon "$WORK/ref"
curl -sf -d "$SPEC" "$URL/jobs" > /dev/null
wait_state smoke done

echo "== operational surface: health, readiness, metrics exposition"
curl -sf "$URL/healthz" | grep -qx ok
curl -sf "$URL/readyz" | grep -qx ok
curl -sf "$URL/metrics" > "$WORK/metrics.txt"
grep -q '^# TYPE agesrv_jobs_submitted_total counter$' "$WORK/metrics.txt"
grep -q '^agesrv_jobs_submitted_total 1$' "$WORK/metrics.txt"
grep -q '^agesrv_jobs{state="done"} 1$' "$WORK/metrics.txt"
grep -q '^agesrv_wal_bytes ' "$WORK/metrics.txt"
grep -q '^agesrv_http_request_seconds_bucket{path="/jobs",le="+Inf"} ' "$WORK/metrics.txt"
# Every non-comment line must be "name value" or "name{labels} value".
# The label match is greedy because label values may themselves
# contain braces (the bounded "/jobs/{id}" route label).
if grep -vE '^(# (TYPE|HELP) |[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? (-?[0-9][0-9eE.+-]*|[+-]Inf|NaN)$)' "$WORK/metrics.txt"; then
    echo "malformed exposition line(s) above" >&2
    exit 1
fi
# Responses carry request ids.
curl -sfi "$URL/healthz" | grep -qi '^x-request-id:'

echo "== artifact endpoints: spans and the streamed image"
curl -sf "$URL/jobs/smoke/spans" > "$WORK/spans.get"
cmp "$WORK/spans.get" "$WORK/ref/jobs/smoke/spans.jsonl"
head -1 "$WORK/spans.get" | grep -q '"header":"spans"'
curl -sf -D "$WORK/image.hdr" "$URL/jobs/smoke/image" > "$WORK/image.get"
cmp "$WORK/image.get" "$WORK/ref/jobs/smoke/image.ffi"
grep -qi '^content-type: application/octet-stream' "$WORK/image.hdr"
want_len=$(wc -c < "$WORK/image.get" | tr -d ' ')
grep -qi "^content-length: $want_len" "$WORK/image.hdr"

kill -TERM "$DAEMON_PID" && wait "$DAEMON_PID"
DAEMON_PID=

echo "== interrupted run: SIGKILL after the first checkpoint appears"
start_daemon "$WORK/kill"
curl -sf -d "$SPEC" "$URL/jobs" > /dev/null
for _ in $(seq 1 600); do
    [ -f "$WORK/kill/jobs/smoke/checkpoint.ffc" ] && break
    sleep 0.05
done
[ -f "$WORK/kill/jobs/smoke/checkpoint.ffc" ] || { echo "no checkpoint appeared" >&2; exit 1; }
kill -KILL "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=

echo "== restart over the same state directory"
start_daemon "$WORK/kill"
attempt=$(curl -sf "$URL/jobs/smoke" | sed -n 's/.*"attempt": \([0-9]*\).*/\1/p')
[ "$attempt" = 1 ] || { echo "restart re-delivered the job (attempt=$attempt)" >&2; exit 1; }
wait_state smoke done
kill -TERM "$DAEMON_PID" && wait "$DAEMON_PID"
DAEMON_PID=

echo "== diff artifacts against the uninterrupted run"
for f in image.ffi metrics.txt events.jsonl spans.jsonl result.json; do
    cmp "$WORK/ref/jobs/smoke/$f" "$WORK/kill/jobs/smoke/$f"
done
echo "OK: resumed run is byte-identical to the uninterrupted run"
