// Command seqbench runs the paper's sequential I/O benchmark (Section
// 5.1, Figures 4 and 5) against a saved aged image: for each file size,
// create a corpus, write it in 4 MB units, read it back, and report
// throughput and the created files' layout scores.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"ffsage/internal/bench"
	"ffsage/internal/core"
	"ffsage/internal/disk"
	"ffsage/internal/ffs"
)

func main() {
	var (
		imagePath = flag.String("image", "aged.img", "file-system image from agefs")
		total     = flag.Int64("total", 32<<20, "benchmark corpus bytes per size point")
		sizesFlag = flag.String("sizes", "", "comma-separated file sizes in KB (default: paper sweep)")
		day       = flag.Int("day", 300, "ModDay to stamp benchmark files with")
		attr      = flag.Bool("attr", false, "also print the sweep's aggregate time attribution")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err == nil {
			err = pprof.StartCPUProfile(f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "seqbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	err := run(*imagePath, *total, *sizesFlag, *day, *attr)
	if *memProf != "" && err == nil {
		if f, ferr := os.Create(*memProf); ferr != nil {
			err = ferr
		} else {
			runtime.GC()
			err = pprof.WriteHeapProfile(f)
			f.Close()
		}
	}
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "seqbench:", err)
		os.Exit(1)
	}
}

// printAttribution renders an aggregate per-class time split.
func printAttribution(st disk.Stats) {
	fmt.Printf("\ntime attribution (seconds by request class):\n")
	fmt.Printf("%12s %10s %10s %10s %10s %10s %10s\n",
		"class", "requests", "seek", "rot", "xfer", "ovhd", "total")
	for c := disk.ReqClass(0); c < disk.NumReqClasses; c++ {
		t := st.Attr.Class(c)
		fmt.Printf("%12s %10d %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			disk.ClassLabel(c), t.Count, t.Seek, t.Rot, t.Transfer, t.Overhead, t.Total())
	}
	fmt.Printf("%12s %10s %10.3f %10.3f %10.3f %10.3f %10.3f\n", "all", "",
		st.SeekTime, st.RotTime, st.TransferTime, st.OverheadTime,
		st.SeekTime+st.RotTime+st.TransferTime+st.OverheadTime)
}

func run(imagePath string, total int64, sizesFlag string, day int, attr bool) error {
	f, err := os.Open(imagePath)
	if err != nil {
		return err
	}
	fsys, err := ffs.LoadImage(f, core.Realloc{})
	f.Close()
	if err != nil {
		return err
	}
	sizes := bench.PaperSizes()
	if sizesFlag != "" {
		sizes = sizes[:0]
		for _, s := range strings.Split(sizesFlag, ",") {
			kb, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				return fmt.Errorf("bad size %q: %w", s, err)
			}
			sizes = append(sizes, kb<<10)
		}
	}
	dp := disk.PaperParams()
	fmt.Printf("raw device: read %.2f MB/s, write %.2f MB/s\n",
		bench.RawThroughput(fsys.P.SizeBytes, dp, total, false)/1e6,
		bench.RawThroughput(fsys.P.SizeBytes, dp, total, true)/1e6)
	fmt.Printf("%10s %8s %12s %12s %8s\n", "size", "files", "write MB/s", "read MB/s", "layout")
	var agg disk.Stats
	for _, size := range sizes {
		r, err := bench.SequentialIO(fsys, dp, size, total, day)
		if err != nil {
			return fmt.Errorf("size %d: %w", size, err)
		}
		fmt.Printf("%9dK %8d %12.2f %12.2f %8.3f\n",
			r.FileSize>>10, r.NFiles, r.WriteBps/1e6, r.ReadBps/1e6, r.LayoutScore)
		agg = agg.Add(r.Disk)
	}
	if attr {
		printAttribution(agg)
	}
	return nil
}
