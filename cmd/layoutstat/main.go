// Command layoutstat reports the fragmentation of a saved file-system
// image: the aggregate layout score, the score by file size (the
// paper's Figure 3 view), and the free-space run histogram.
package main

import (
	"flag"
	"fmt"
	"os"

	"ffsage/internal/core"
	"ffsage/internal/ffs"
	"ffsage/internal/layout"
	"ffsage/internal/stats"
)

func main() {
	var (
		imagePath = flag.String("image", "aged.img", "file-system image from agefs")
		hotFrom   = flag.Int("hotfrom", -1, "also report files modified on/after this day")
	)
	flag.Parse()
	if err := run(*imagePath, *hotFrom); err != nil {
		fmt.Fprintln(os.Stderr, "layoutstat:", err)
		os.Exit(1)
	}
}

func run(imagePath string, hotFrom int) error {
	f, err := os.Open(imagePath)
	if err != nil {
		return err
	}
	defer f.Close()
	fsys, err := ffs.LoadImage(f, core.Original{})
	if err != nil {
		return err
	}
	files := layout.AllFiles(fsys)
	fmt.Printf("%s: %d files, %.1f MB, utilization %.1f%%\n",
		imagePath, len(files), float64(layout.TotalBytes(files))/(1<<20), 100*fsys.Utilization())
	fmt.Printf("aggregate layout score: %.3f (%.1f%% of blocks non-optimal)\n",
		layout.FsAggregate(fsys), 100*layout.NonOptimalFraction(files, fsys.FragsPerBlock()))

	fmt.Println("\nlayout score by file size:")
	buckets := layout.BySize(files, fsys.FragsPerBlock(), stats.PowerOfTwoBuckets(16<<10, 16<<20))
	for _, b := range buckets {
		if b.Files == 0 {
			continue
		}
		fmt.Printf("  %8s  %6d files  %8d blocks  %.3f\n", b.Label, b.Files, b.Blocks, b.Score)
	}

	hist, free := fsys.FreeRunHistogram()
	fmt.Printf("\nfree space: %d blocks in runs ", free)
	for k := 1; k <= 6; k++ {
		fmt.Printf("%d:%d ", k, hist[k])
	}
	fmt.Printf("7+:%d\n", hist[7])

	if hotFrom >= 0 {
		hot := layout.HotFiles(fsys, hotFrom)
		if len(hot) == 0 {
			fmt.Printf("\nno files modified on or after day %d\n", hotFrom)
			return nil
		}
		fmt.Printf("\nhot set (modified ≥ day %d): %d files, %.1f MB, layout %.3f\n",
			hotFrom, len(hot), float64(layout.TotalBytes(hot))/(1<<20),
			layout.Aggregate(hot, fsys.FragsPerBlock()))
	}
	return nil
}
