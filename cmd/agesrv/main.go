// Command agesrv is the aging-experiment daemon: it serves the HTTP
// JSON API of internal/jobs over a crash-safe, WAL-backed job queue.
// An acknowledged submission is never lost — kill the process at any
// instant and the restarted daemon replays its queue log, resumes
// in-flight jobs from their latest checkpoint, and produces results
// byte-identical to an uninterrupted run (scripts/agesrv_smoke.sh
// demonstrates exactly that with a real SIGKILL).
//
//	agesrv -dir /var/lib/agesrv -addr :8377
//
// Submit work and read results with plain curl:
//
//	curl -d '{"days":30,"seed":7}' localhost:8377/jobs
//	curl localhost:8377/jobs/job-000001
//	curl localhost:8377/jobs/job-000001/events?follow=1
//	curl localhost:8377/jobs/job-000001/result
//	curl localhost:8377/jobs/job-000001/spans
//	curl -O localhost:8377/jobs/job-000001/image
//
// The daemon also serves an operational surface: Prometheus-format
// telemetry at /metrics, liveness at /healthz, readiness at /readyz
// (503 while draining or after a WAL write failure), and — with
// -pprof — the standard profiling endpoints under /debug/pprof/.
//
// SIGTERM drains gracefully: running jobs checkpoint at their exact
// operation cursor and stay marked in-flight, so the next start picks
// them up with no work lost and no work repeated.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ffsage/internal/faults"
	"ffsage/internal/jobs"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8377", "HTTP listen address")
		dir        = flag.String("dir", "agesrv-state", "state directory (queue WAL, checkpoints, artifacts)")
		workers    = flag.Int("workers", 2, "concurrently running jobs")
		maxPending = flag.Int("max-pending", 64, "queued-job bound before submissions shed with 429")
		pprof      = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (trusted networks only)")
	)
	flag.Parse()
	if err := run(*addr, *dir, *workers, *maxPending, *pprof); err != nil {
		fmt.Fprintln(os.Stderr, "agesrv:", err)
		os.Exit(1)
	}
}

func run(addr, dir string, workers, maxPending int, pprofOn bool) error {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "agesrv: "+format+"\n", args...)
	}
	m, err := jobs.Open(jobs.Options{
		Dir:        dir,
		Workers:    workers,
		MaxPending: maxPending,
		Logf:       logf,
		// A fault-plan crash simulates sudden process death, so die for
		// real: skip every drain path, leaving the queue record Running
		// and the checkpoint as-is. Exit 3 mirrors cmd/agefs's crash
		// status so harnesses can tell a planned crash from a failure.
		OnCrash: func(id string, c *faults.Crash) {
			logf("%s: %v; dying as planned", id, c)
			os.Exit(3)
		},
	})
	if err != nil {
		return err
	}

	handler := m.Handler()
	if pprofOn {
		// Opt-in only: profiling endpoints expose heap contents and can
		// stall the process, so they never ship on by default.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		logf("pprof enabled under /debug/pprof/")
	}
	srv := &http.Server{Addr: addr, Handler: handler}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	logf("listening on %s, state in %s", addr, dir)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errc:
		m.Close()
		return err
	case <-ctx.Done():
	}
	logf("shutting down: draining workers to checkpoints")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logf("http shutdown: %v", err)
	}
	if err := m.Close(); err != nil {
		return err
	}
	logf("state persisted; in-flight jobs will resume on next start")
	return nil
}
