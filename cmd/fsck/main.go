// Command fsck checks a saved file-system image (agefs -image, or a
// checkpoint written by repro -checkpoint-every — the image inside is
// found by its magic) and, with -repair, runs the fsck-style repair
// pass: rebuilding per-group bitmaps and summaries, freeing leaked
// fragments, resolving double allocations and torn writes, and
// reattaching orphaned files.
//
// Exit status: 0 the image is (or was repaired to) consistent; 1 the
// image is inconsistent and -repair was not given; 2 the image could
// not be loaded or could not be repaired.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"ffsage/internal/ffs"
	"ffsage/internal/obs"
	ffspolicy "ffsage/internal/policy"
	"ffsage/internal/trace"
)

func main() {
	var (
		policy  = flag.String("policy", "realloc", "allocation policy the image was aged under (any registered name)")
		repair  = flag.Bool("repair", false, "repair inconsistencies instead of only reporting them")
		out     = flag.String("o", "", "write the (repaired) image here")
		metrics = flag.String("metrics", "", "write a metrics snapshot (check outcome, repair action counts) to this file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fsck [-policy ffs|realloc] [-repair] [-o out.img] [-metrics out] image-or-checkpoint")
		os.Exit(2)
	}
	code, err := run(flag.Arg(0), *policy, *repair, *out)
	if *metrics != "" {
		if merr := writeMetrics(*metrics); merr != nil {
			fmt.Fprintln(os.Stderr, "fsck:", merr)
			if code == 0 {
				code = 2
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsck:", err)
	}
	os.Exit(code)
}

func writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default.WriteMetrics(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// publishRepair records the repair pass's action counts.
func publishRepair(rep *ffs.RepairReport) {
	sc := obs.Default.Scope("fsck.repair")
	sc.Counter("orphans_reattached").Add(int64(rep.ReattachedOrphans))
	sc.Counter("files_renamed").Add(int64(rep.RenamedFiles))
	sc.Counter("files_relinked").Add(int64(rep.RelinkedFiles))
	sc.Counter("files_truncated").Add(int64(rep.TruncatedFiles))
	sc.Counter("shapes_fixed").Add(int64(rep.ShapeFixes))
	sc.Counter("leaked_frags").Add(rep.LeakedFrags)
	sc.Counter("phantom_frags").Add(rep.PhantomFrags)
	sc.Counter("groups_rebuilt").Add(int64(rep.GroupsRebuilt))
	sc.Counter("inode_map_fixes").Add(int64(rep.InodeMapFixes))
	if rep.LayoutFixed {
		sc.Counter("layout_fixed").Inc()
	}
}

func pickPolicy(name string) (ffs.Policy, error) {
	return ffspolicy.Resolve(name)
}

// imageBytes reads path and unwraps a checkpoint container when the
// file carries one (checkpoints embed the image as an opaque blob).
func imageBytes(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(raw, []byte("FFC1")) {
		cp, err := trace.ReadCheckpoint(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("reading checkpoint: %w", err)
		}
		fmt.Printf("%s: checkpoint (day %d, next op %d); checking embedded image\n",
			path, cp.Day, cp.NextOp)
		return cp.Image, nil
	}
	return raw, nil
}

func run(path, policyName string, repair bool, out string) (int, error) {
	pol, err := pickPolicy(policyName)
	if err != nil {
		return 2, err
	}
	raw, err := imageBytes(path)
	if err != nil {
		return 2, err
	}

	// First try the strict loader: it validates as it builds, so a
	// clean load plus a clean Check is a consistent image.
	fsys, strictErr := ffs.LoadImage(bytes.NewReader(raw), pol)
	if strictErr == nil {
		if err := fsys.Check(); err == nil {
			obs.Default.Counter("fsck.clean").Inc()
			fmt.Printf("%s: clean: %d files, utilization %.1f%%, layout %.3f\n",
				path, fsys.FileCount(), 100*fsys.Utilization(), fsys.LayoutScore())
			return 0, writeImage(fsys, out)
		} else {
			strictErr = err
		}
	}
	obs.Default.Counter("fsck.inconsistent").Inc()
	fmt.Printf("%s: inconsistent: %v\n", path, strictErr)
	if !repair {
		return 1, fmt.Errorf("re-run with -repair to fix")
	}

	fsys, err = ffs.LoadImageLenient(bytes.NewReader(raw), pol)
	if err != nil {
		return 2, fmt.Errorf("image not salvageable: %w", err)
	}
	rep, err := fsys.Repair()
	if err != nil {
		return 2, fmt.Errorf("repair failed: %w", err)
	}
	publishRepair(rep)
	fmt.Printf("repaired: %s\n", rep)
	if err := fsys.Check(); err != nil {
		return 2, fmt.Errorf("still inconsistent after repair: %w", err)
	}
	fmt.Printf("%s: now clean: %d files, utilization %.1f%%, layout %.3f\n",
		path, fsys.FileCount(), 100*fsys.Utilization(), fsys.LayoutScore())
	return 0, writeImage(fsys, out)
}

func writeImage(fsys *ffs.FileSystem, out string) error {
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := fsys.SaveImage(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
