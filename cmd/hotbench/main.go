// Command hotbench runs the paper's hot-file benchmark (Section 5.2,
// Table 2 and Figure 6) against a saved aged image: read and then
// overwrite every file modified during the last month of aging,
// reporting throughput, the set's layout score, and the by-size
// breakdown.
package main

import (
	"flag"
	"fmt"
	"os"

	"ffsage/internal/bench"
	"ffsage/internal/core"
	"ffsage/internal/disk"
	"ffsage/internal/ffs"
)

func main() {
	var (
		imagePath = flag.String("image", "aged.img", "file-system image from agefs")
		fromDay   = flag.Int("fromday", 270, "hot set = files modified on/after this day")
	)
	flag.Parse()
	if err := run(*imagePath, *fromDay); err != nil {
		fmt.Fprintln(os.Stderr, "hotbench:", err)
		os.Exit(1)
	}
}

func run(imagePath string, fromDay int) error {
	f, err := os.Open(imagePath)
	if err != nil {
		return err
	}
	fsys, err := ffs.LoadImage(f, core.Original{})
	f.Close()
	if err != nil {
		return err
	}
	res, err := bench.HotFiles(fsys, disk.PaperParams(), fromDay)
	if err != nil {
		return err
	}
	fmt.Printf("hot set: %d files (%.1f%% of files), %.1f MB (%.1f%% of bytes)\n",
		res.NFiles, 100*res.FracFiles, float64(res.TotalBytes)/(1<<20), 100*res.FracBytes)
	fmt.Printf("layout score:     %.3f\n", res.LayoutScore)
	fmt.Printf("read throughput:  %.2f MB/s\n", res.ReadBps/1e6)
	fmt.Printf("write throughput: %.2f MB/s\n", res.WriteBps/1e6)
	fmt.Println("\nlayout by size:")
	for _, b := range res.BySize {
		if b.Files == 0 {
			continue
		}
		fmt.Printf("  %8s  %6d files  %.3f\n", b.Label, b.Files, b.Score)
	}
	return nil
}
