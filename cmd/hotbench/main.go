// Command hotbench runs the paper's hot-file benchmark (Section 5.2,
// Table 2 and Figure 6) against a saved aged image: read and then
// overwrite every file modified during the last month of aging,
// reporting throughput, the set's layout score, and the by-size
// breakdown.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"ffsage/internal/bench"
	"ffsage/internal/core"
	"ffsage/internal/disk"
	"ffsage/internal/ffs"
)

func main() {
	var (
		imagePath = flag.String("image", "aged.img", "file-system image from agefs")
		fromDay   = flag.Int("fromday", 270, "hot set = files modified on/after this day")
		attr      = flag.Bool("attr", false, "also print the benchmark's time attribution")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err == nil {
			err = pprof.StartCPUProfile(f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hotbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	err := run(*imagePath, *fromDay, *attr)
	if *memProf != "" && err == nil {
		if f, ferr := os.Create(*memProf); ferr != nil {
			err = ferr
		} else {
			runtime.GC()
			err = pprof.WriteHeapProfile(f)
			f.Close()
		}
	}
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hotbench:", err)
		os.Exit(1)
	}
}

func run(imagePath string, fromDay int, attr bool) error {
	f, err := os.Open(imagePath)
	if err != nil {
		return err
	}
	fsys, err := ffs.LoadImage(f, core.Original{})
	f.Close()
	if err != nil {
		return err
	}
	res, err := bench.HotFiles(fsys, disk.PaperParams(), fromDay)
	if err != nil {
		return err
	}
	fmt.Printf("hot set: %d files (%.1f%% of files), %.1f MB (%.1f%% of bytes)\n",
		res.NFiles, 100*res.FracFiles, float64(res.TotalBytes)/(1<<20), 100*res.FracBytes)
	fmt.Printf("layout score:     %.3f\n", res.LayoutScore)
	fmt.Printf("read throughput:  %.2f MB/s\n", res.ReadBps/1e6)
	fmt.Printf("write throughput: %.2f MB/s\n", res.WriteBps/1e6)
	fmt.Println("\nlayout by size:")
	for _, b := range res.BySize {
		if b.Files == 0 {
			continue
		}
		fmt.Printf("  %8s  %6d files  %.3f\n", b.Label, b.Files, b.Score)
	}
	if attr {
		st := res.Disk
		fmt.Printf("\ntime attribution (seconds by request class):\n")
		fmt.Printf("%12s %10s %10s %10s %10s %10s %10s\n",
			"class", "requests", "seek", "rot", "xfer", "ovhd", "total")
		for c := disk.ReqClass(0); c < disk.NumReqClasses; c++ {
			t := st.Attr.Class(c)
			fmt.Printf("%12s %10d %10.3f %10.3f %10.3f %10.3f %10.3f\n",
				disk.ClassLabel(c), t.Count, t.Seek, t.Rot, t.Transfer, t.Overhead, t.Total())
		}
		fmt.Printf("%12s %10s %10.3f %10.3f %10.3f %10.3f %10.3f\n", "all", "",
			st.SeekTime, st.RotTime, st.TransferTime, st.OverheadTime,
			st.SeekTime+st.RotTime+st.TransferTime+st.OverheadTime)
	}
	return nil
}
