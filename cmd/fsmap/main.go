// Command fsmap renders a saved file-system image's allocation maps as
// ASCII art, one cylinder group at a time — the fastest way to *see*
// what ten months of aging did to the free space:
//
//	M metadata   # fully allocated   + partially allocated   . free
//
// Long '#' runs are clustered files, '.' runs are the free pools the
// realloc policy feeds on, and alternating '#.+.' bands are the crumb
// fields the original policy chops new files across.
package main

import (
	"flag"
	"fmt"
	"os"

	"ffsage/internal/core"
	"ffsage/internal/ffs"
)

func main() {
	var (
		imagePath = flag.String("image", "aged.img", "file-system image from agefs")
		group     = flag.Int("cg", -1, "show only this cylinder group (-1 = all)")
		cols      = flag.Int("w", 96, "blocks per output row")
	)
	flag.Parse()
	if err := run(*imagePath, *group, *cols); err != nil {
		fmt.Fprintln(os.Stderr, "fsmap:", err)
		os.Exit(1)
	}
}

func run(imagePath string, group, cols int) error {
	if cols < 8 {
		return fmt.Errorf("width %d too narrow", cols)
	}
	f, err := os.Open(imagePath)
	if err != nil {
		return err
	}
	defer f.Close()
	fsys, err := ffs.LoadImage(f, core.Original{})
	if err != nil {
		return err
	}
	lo, hi := 0, fsys.NumCg()
	if group >= 0 {
		if group >= fsys.NumCg() {
			return fmt.Errorf("cylinder group %d out of range [0,%d)", group, fsys.NumCg())
		}
		lo, hi = group, group+1
	}
	hist, freeBlocks := fsys.FreeRunHistogram()
	fmt.Printf("%s: utilization %.1f%%, %d free blocks (runs 1:%d 2:%d 3-6:%d 7+:%d)\n",
		imagePath, 100*fsys.Utilization(), freeBlocks,
		hist[1], hist[2], hist[3]+hist[4]+hist[5]+hist[6], hist[7])
	for cg := lo; cg < hi; cg++ {
		m := fsys.BlockMap(cg)
		free, partial := 0, 0
		for _, s := range m {
			switch s {
			case ffs.BlockFree:
				free++
			case ffs.BlockPartial:
				partial++
			}
		}
		fmt.Printf("\ncg %2d: %d blocks, %d free, %d partial\n", cg, len(m), free, partial)
		for row := 0; row < len(m); row += cols {
			end := row + cols
			if end > len(m) {
				end = len(m)
			}
			line := make([]byte, end-row)
			for i := row; i < end; i++ {
				line[i-row] = byte(m[i])
			}
			fmt.Printf("  %5d %s\n", row, line)
		}
	}
	return nil
}
