// Command tournament runs the N-way allocation-policy tournament: it
// ages one file-system image per registered policy through the same
// seeded workload, scores every image, runs the sequential and
// hot-file benchmarks on each, and prints one comparative report.
//
// Usage:
//
//	tournament -list
//	tournament [-seed N] [-quick] [-days N] [-j N] [-policies all|a,b]
//	           [-o report.txt] [-fragments dir]
//	tournament -assemble dir [-seed N] [-quick] [-days N] [-policies ...]
//
// The report is byte-identical for every -j level. It also decomposes
// into per-policy fragments (-fragments writes one <slug>.frag per
// policy): the CI policy matrix runs one leg per policy, uploads each
// leg's fragment, and the fan-in job reassembles them with -assemble —
// producing, by construction, the same bytes as a single-process run
// with the same flags. -assemble performs no simulation; it only needs
// the flags that shape the report header.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ffsage/internal/experiments"
	"ffsage/internal/policy"
	"ffsage/internal/runner"
)

func main() {
	var (
		list      = flag.Bool("list", false, "print the registered policy names, one per line, and exit")
		seed      = flag.Int64("seed", 1996, "workload generation seed")
		quick     = flag.Bool("quick", false, "quick scale (128 MB file system) instead of paper scale")
		days      = flag.Int("days", 0, "override the aging period in simulated days (0 = the scale's default)")
		jobs      = flag.Int("j", 0, "max concurrent jobs (0 = GOMAXPROCS)")
		policies  = flag.String("policies", "all", "comma-separated policy names, or all")
		outPath   = flag.String("o", "", "write the report to this file as well as stdout")
		fragDir   = flag.String("fragments", "", "also write each policy's report fragment to <dir>/<slug>.frag")
		assemble  = flag.String("assemble", "", "assemble the report from the fragments in this directory instead of simulating")
		slowScore = flag.Bool("slowscore", false, "compute daily layout scores by full rescan (cross-check)")
	)
	flag.Parse()
	if *list {
		for _, name := range policy.Names() {
			fmt.Println(name)
		}
		return
	}
	if *jobs > 0 {
		runner.SetWorkers(*jobs)
	}
	if err := run(*seed, *quick, *days, *policies, *outPath, *fragDir, *assemble, *slowScore); err != nil {
		fmt.Fprintln(os.Stderr, "tournament:", err)
		os.Exit(1)
	}
}

// selectPolicies resolves the -policies flag to registered names in a
// deterministic order: registry order for "all", flag order otherwise.
func selectPolicies(spec string) ([]string, error) {
	if spec == "" || spec == "all" {
		return policy.Names(), nil
	}
	var names []string
	for _, n := range strings.Split(spec, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-policies %q selects nothing", spec)
	}
	return names, nil
}

func run(seed int64, quick bool, days int, policies, outPath, fragDir, assemble string, slowScore bool) error {
	names, err := selectPolicies(policies)
	if err != nil {
		return err
	}
	cfg := experiments.Full(seed)
	scale := "full scale"
	if quick {
		cfg = experiments.Quick(seed)
		scale = "quick scale"
	}
	cfg.SlowScore = slowScore
	if days > 0 {
		cfg.WorkloadCfg.Days = days
	}
	if cfg.HotWindow >= cfg.WorkloadCfg.Days {
		cfg.HotWindow = cfg.WorkloadCfg.Days / 2
	}

	var report bytes.Buffer
	if assemble != "" {
		fragments := make([][]byte, len(names))
		for i, name := range names {
			frag, err := os.ReadFile(filepath.Join(assemble, policy.Slug(name)+".frag"))
			if err != nil {
				return fmt.Errorf("missing fragment for %s: %w", name, err)
			}
			fragments[i] = frag
		}
		if err := experiments.WriteTournamentReport(&report, scale, seed, cfg.WorkloadCfg.Days, names, fragments); err != nil {
			return err
		}
	} else {
		pols, err := experiments.RegisteredPolicies(names...)
		if err != nil {
			return err
		}
		entries, err := experiments.Tournament(cfg, pols...)
		if err != nil {
			return err
		}
		if fragDir != "" {
			if err := os.MkdirAll(fragDir, 0o777); err != nil {
				return err
			}
			for i := range entries {
				path := filepath.Join(fragDir, policy.Slug(entries[i].Name)+".frag")
				if err := os.WriteFile(path, entries[i].Fragment(cfg.WorkloadCfg.Days), 0o666); err != nil {
					return err
				}
			}
		}
		if err := experiments.RenderTournament(&report, scale, seed, cfg.WorkloadCfg.Days, entries); err != nil {
			return err
		}
	}
	os.Stdout.Write(report.Bytes())
	if outPath != "" {
		if err := os.WriteFile(outPath, report.Bytes(), 0o666); err != nil {
			return err
		}
	}
	return nil
}
